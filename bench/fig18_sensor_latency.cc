/**
 * @file
 * Fig. 18: worst-case detection latency versus the number of
 * deployed acoustic sensors, for 2.0/2.5/3.0 GHz cores on a 1 mm^2
 * die. Reproduces the analytical sensor model's curves, including
 * the paper's anchor points (300 sensors at 2.5 GHz -> 10 cycles,
 * 30 sensors -> ~30 cycles).
 */

#include "bench/common.hh"
#include "sim/sensors.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Figure 18", "detection latency vs number of sensors");

    Table table({"sensors", "2.0GHz (cycles)", "2.5GHz (cycles)",
                 "3.0GHz (cycles)", "area overhead"});
    for (uint32_t n : {10u, 20u, 30u, 50u, 100u, 200u, 300u, 500u}) {
        table.addRow({
            cell(static_cast<uint64_t>(n)),
            cell(static_cast<uint64_t>(
                worstCaseDetectionLatency({n, 2.0, 1.0}))),
            cell(static_cast<uint64_t>(
                worstCaseDetectionLatency({n, 2.5, 1.0}))),
            cell(static_cast<uint64_t>(
                worstCaseDetectionLatency({n, 3.0, 1.0}))),
            pct(sensorAreaOverhead({n, 2.5, 1.0}), 2),
        });
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper anchors: 300 sensors @2.5GHz -> 10 cycles; "
                "30 sensors -> ~30 cycles; <=1%% die area\n");
    return 0;
}
