/**
 * @file
 * Extension study (beyond the paper's figures): execution-time
 * overhead as a function of the soft-error strike rate. The paper
 * evaluates fault-free performance and argues recovery is rare; this
 * harness quantifies the recovery tax — Turnpike and Turnstile under
 * strike rates from one per 100k cycles up to one per 2k cycles
 * (astronomically above any real environment, to expose the trend),
 * verifying the golden image at every point.
 */

#include "bench/common.hh"
#include "util/rng.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Extension", "overhead vs soft-error strike rate "
                        "(WCDL=20)");
    const std::vector<std::pair<std::string, std::string>> picks = {
        {"CPU2006", "mcf"},
        {"CPU2006", "milc"},
        {"CPU2017", "leela"},
        {"SPLASH3", "radix"},
    };
    const std::vector<uint64_t> cycles_per_strike = {
        100000, 20000, 5000, 2000};
    uint64_t insts = benchInstBudget();

    Table table({"workload", "scheme", "fault-free", "1/100k",
                 "1/20k", "1/5k", "1/2k", "recovered"});

    // Phase 1: fault-free runs, needed to size each fault plan.
    std::vector<RunRequest> clean_reqs;
    for (const auto &[suite, name] : picks) {
        const WorkloadSpec &spec = findWorkload(suite, name);
        for (const char *scheme : {"turnstile", "turnpike"}) {
            ResilienceConfig cfg = scheme == std::string("turnstile")
                ? ResilienceConfig::turnstile(20)
                : ResilienceConfig::turnpike(20);
            clean_reqs.push_back({spec, cfg, insts, {}, false});
        }
    }
    std::vector<RunResult> cleans = runCampaign(clean_reqs);

    // Phase 2: every (row, strike rate) cell as one campaign.
    std::vector<RunRequest> fault_reqs;
    for (size_t i = 0; i < clean_reqs.size(); i++) {
        const RunResult &clean = cleans[i];
        for (uint64_t per : cycles_per_strike) {
            uint32_t count = static_cast<uint32_t>(
                std::max<uint64_t>(1, clean.pipe.cycles / per));
            Rng rng(clean_reqs[i].spec.seed * 97 + per);
            RunRequest q = clean_reqs[i];
            q.faults = makeFaultPlan(rng, clean.pipe.cycles, 20,
                                     count);
            fault_reqs.push_back(std::move(q));
        }
    }
    std::vector<RunResult> faulted = runCampaign(fault_reqs);

    size_t i = 0, k = 0;
    for (const auto &[suite, name] : picks) {
        for (const char *scheme : {"turnstile", "turnpike"}) {
            const RunResult &clean = cleans[i++];
            double base = static_cast<double>(clean.pipe.cycles);
            std::vector<std::string> row{suite + "/" + name, scheme,
                                         cell(1.0)};
            bool all_recovered = true;
            for (uint64_t per : cycles_per_strike) {
                (void)per;
                const RunResult &r = faulted[k++];
                row.push_back(
                    cell(static_cast<double>(r.pipe.cycles) / base));
                if (r.dataHash != clean.goldenHash)
                    all_recovered = false;
            }
            row.push_back(all_recovered ? "yes" : "NO");
            table.addRow(row);
        }
    }
    std::printf("%s\n", table.toText().c_str());
    std::printf("Every faulted run must still produce the golden "
                "image; the recovery tax stays\nsmall because a "
                "recovery costs one region re-execution plus the "
                "recovery program.\n");
    return 0;
}
