/**
 * @file
 * Fig. 20: Turnstile (the state of the art adapted to in-order
 * cores) normalized execution time across WCDLs of 10-50 cycles.
 * The paper reports 29-84% average overhead, with individual
 * benchmarks up to 5.8x.
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Figure 20", "Turnstile normalized exec time, WCDL 10-50");
    const std::vector<uint32_t> wcdls = {10, 20, 30, 40, 50};
    BaselineCache base(benchInstBudget());
    base.prewarm(workloadSuite());

    Table table({"suite", "workload", "DL10", "DL20", "DL30", "DL40",
                 "DL50"});
    std::map<uint32_t, GeoMeans> geo;
    std::vector<RunRequest> reqs;
    for (const WorkloadSpec &spec : workloadSuite())
        for (uint32_t w : wcdls)
            reqs.push_back({spec, ResilienceConfig::turnstile(w),
                            base.insts(), {}, false});
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (const WorkloadSpec &spec : workloadSuite()) {
        std::vector<std::string> row{spec.suite, spec.name};
        double b = static_cast<double>(base.get(spec).pipe.cycles);
        for (uint32_t w : wcdls) {
            const RunResult &r = results[k++];
            double norm = static_cast<double>(r.pipe.cycles) / b;
            row.push_back(cell(norm));
            geo[w].add(spec.suite, norm);
        }
        table.addRow(row);
    }
    for (const std::string &s : suiteOrder()) {
        std::vector<std::string> row{s, "geomean"};
        for (uint32_t w : wcdls)
            row.push_back(cell(geo[w].suite(s)));
        table.addRow(row);
    }
    std::vector<std::string> row{"all", "geomean"};
    for (uint32_t w : wcdls)
        row.push_back(cell(geo[w].all()));
    table.addRow(row);
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper: 29%% (DL10) to 84%% (DL50) average "
                "overhead\n");
    return 0;
}
