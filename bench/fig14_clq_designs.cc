/**
 * @file
 * Fig. 14: run-time overhead of the ideal (infinite, exact-address)
 * CLQ versus Turnpike's compact 2-entry range CLQ, with only the
 * hardware fast release enabled (WAR-free checking + coloring, no
 * compiler optimizations) — as the paper isolates the hardware.
 * The paper reports only ~3% loss for the compact design.
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Figure 14", "ideal vs compact CLQ run-time overhead "
                        "(fast release only)");
    ResilienceConfig compact = ResilienceConfig::fastRelease(10);
    ResilienceConfig ideal = compact;
    ideal.label = "ideal-clq";
    ideal.clqDesign = ClqDesign::Ideal;
    ideal.clqEntries = 1u << 20; // effectively infinite
    BaselineCache base(benchInstBudget());
    base.prewarm(workloadSuite());

    Table table({"suite", "workload", "ideal CLQ", "compact CLQ"});
    GeoMeans gi, gc;
    std::vector<RunRequest> reqs;
    for (const WorkloadSpec &spec : workloadSuite()) {
        reqs.push_back({spec, ideal, base.insts(), {}, false});
        reqs.push_back({spec, compact, base.insts(), {}, false});
    }
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (const WorkloadSpec &spec : workloadSuite()) {
        double b = static_cast<double>(base.get(spec).pipe.cycles);
        const RunResult &ri = results[k++];
        const RunResult &rc = results[k++];
        double ni = static_cast<double>(ri.pipe.cycles) / b;
        double nc = static_cast<double>(rc.pipe.cycles) / b;
        table.addRow({spec.suite, spec.name, cell(ni), cell(nc)});
        gi.add(spec.suite, ni);
        gc.add(spec.suite, nc);
    }
    for (const std::string &s : suiteOrder())
        table.addRow({s, "geomean", cell(gi.suite(s)),
                      cell(gc.suite(s))});
    table.addRow({"all", "geomean", cell(gi.all()), cell(gc.all())});
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper: compact CLQ costs only ~3%% versus the "
                "infinite ideal CLQ\n");
    return 0;
}
