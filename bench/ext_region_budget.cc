/**
 * @file
 * Extension study: the region store-budget design choice. The paper
 * partitions so a region holds at most SB/2 regular stores, arguing
 * that lets one region's verification overlap the next region's
 * execution (§4.3.1) — but never quantifies the choice. This
 * harness sweeps the budget from 1 to SB for Turnstile and Turnpike
 * at the default 4-entry SB and 10/30-cycle WCDLs: small budgets
 * mean more regions (more checkpoints, more boundaries); large
 * budgets mean longer SB residency per region.
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Extension", "region store-budget sweep (SB=4)");
    const std::vector<uint32_t> budgets = {1, 2, 3, 4};
    BaselineCache base(benchInstBudget());
    base.prewarm(workloadSuite());

    std::vector<RunRequest> reqs;
    for (uint32_t wcdl : {10u, 30u})
        for (const char *scheme : {"turnstile", "turnpike"})
            for (uint32_t budget : budgets)
                for (const WorkloadSpec &spec : workloadSuite()) {
                    ResilienceConfig cfg =
                        scheme == std::string("turnstile")
                            ? ResilienceConfig::turnstile(wcdl)
                            : ResilienceConfig::turnpike(wcdl);
                    cfg.regionStoreBudget = budget;
                    reqs.push_back({spec, cfg, base.insts(), {},
                                    false});
                }
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (uint32_t wcdl : {10u, 30u}) {
        Table table({"scheme", "budget=1", "budget=2 (paper)",
                     "budget=3", "budget=4"});
        for (const char *scheme : {"turnstile", "turnpike"}) {
            std::vector<std::string> row{std::string(scheme) + " @DL" +
                                         std::to_string(wcdl)};
            for (uint32_t budget : budgets) {
                (void)budget;
                GeoMeans g;
                for (const WorkloadSpec &spec : workloadSuite()) {
                    const RunResult &r = results[k++];
                    g.add(spec.suite,
                          static_cast<double>(r.pipe.cycles) /
                              static_cast<double>(
                                  base.get(spec).pipe.cycles));
                }
                row.push_back(cell(g.all()));
            }
            table.addRow(row);
        }
        std::printf("%s\n", table.toText().c_str());
    }
    std::printf("The paper's SB/2 rule balances checkpoint count "
                "against verification overlap;\nthe sweep shows "
                "where that balance sits on this substrate.\n");
    return 0;
}
