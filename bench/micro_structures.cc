/**
 * @file
 * Google-benchmark microbenchmarks for the simulator's hot
 * structures (CLQ lookups, store-buffer operations, color-map
 * assignment) and end-to-end throughput (compilation, functional
 * interpretation, cycle-level simulation). These track the
 * simulator's own performance, not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "core/compiler.hh"
#include "core/parallel.hh"
#include "core/runner.hh"
#include "machine/minterp.hh"
#include "sim/clq.hh"
#include "sim/color_maps.hh"
#include "sim/pipeline.hh"
#include "sim/store_buffer.hh"
#include "util/rng.hh"

namespace turnpike {
namespace {

void
BM_ClqInsertAndCheck(benchmark::State &state)
{
    ClqDesign design = state.range(0) ? ClqDesign::Ideal
                                      : ClqDesign::Compact;
    Rng rng(1);
    for (auto _ : state) {
        Clq clq(design, 4);
        for (uint64_t i = 0; i < 64; i++)
            clq.insertLoad(i / 16, 0x1000 + rng.below(4096) * 8);
        bool ok = false;
        for (int i = 0; i < 64; i++)
            ok ^= clq.isWarFree(0x1000 + rng.below(8192) * 8);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_ClqInsertAndCheck)->Arg(0)->Arg(1);

void
BM_StoreBufferOps(benchmark::State &state)
{
    for (auto _ : state) {
        StoreBuffer sb(4);
        for (int round = 0; round < 32; round++) {
            for (uint64_t i = 0; i < 4; i++)
                sb.push({0x100 + i * 8, static_cast<int64_t>(i),
                         static_cast<uint64_t>(round),
                         StoreKind::App, false});
            benchmark::DoNotOptimize(sb.youngestFor(0x108));
            sb.release(static_cast<uint64_t>(round));
            while (sb.headReleasable())
                benchmark::DoNotOptimize(sb.pop());
        }
    }
}
BENCHMARK(BM_StoreBufferOps);

void
BM_ColorMaps(benchmark::State &state)
{
    for (auto _ : state) {
        ColorMaps cm;
        for (int round = 0; round < 64; round++) {
            Reg r = static_cast<Reg>(round % 8);
            int c = cm.tryAssign(r);
            if (c >= 0)
                cm.applyVerified({{r, c}});
        }
        benchmark::DoNotOptimize(cm.verifiedSlot(3));
    }
}
BENCHMARK(BM_ColorMaps);

void
BM_CompileTurnpike(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "hmmer");
    for (auto _ : state) {
        auto mod = buildWorkload(spec, 20000);
        CompiledProgram prog =
            compileWorkload(*mod, ResilienceConfig::turnpike(10));
        benchmark::DoNotOptimize(prog.mf->size());
    }
}
BENCHMARK(BM_CompileTurnpike)->Unit(benchmark::kMillisecond);

void
BM_FunctionalInterp(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "hmmer");
    auto mod = buildWorkload(spec, 50000);
    CompiledProgram prog =
        compileWorkload(*mod, ResilienceConfig::turnpike(10));
    uint64_t insts = 0;
    for (auto _ : state) {
        InterpResult r = interpretMachine(*mod, *prog.mf);
        insts += r.stats.insts;
        benchmark::DoNotOptimize(r.stats.insts);
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_FunctionalInterp)->Unit(benchmark::kMillisecond);

void
BM_PipelineSimulation(benchmark::State &state)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "hmmer");
    auto mod = buildWorkload(spec, 50000);
    ResilienceConfig cfg = ResilienceConfig::turnpike(10);
    CompiledProgram prog = compileWorkload(*mod, cfg);
    uint64_t cycles = 0;
    for (auto _ : state) {
        InOrderPipeline pipe(*mod, *prog.mf, cfg.toPipelineConfig());
        PipelineResult r = pipe.run();
        cycles += r.stats.cycles;
        benchmark::DoNotOptimize(r.stats.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(cycles));
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

void
BM_ParallelCampaign(benchmark::State &state)
{
    // End-to-end campaign throughput: 8 independent cells, spread
    // over the TURNPIKE_JOBS worker pool by runCampaign().
    std::vector<RunRequest> reqs;
    for (const char *name : {"mcf", "milc", "hmmer", "astar"}) {
        const WorkloadSpec &spec = findWorkload("CPU2006", name);
        reqs.push_back({spec, ResilienceConfig::turnstile(10), 20000,
                        {}, false});
        reqs.push_back({spec, ResilienceConfig::turnpike(10), 20000,
                        {}, false});
    }
    uint64_t cells = 0;
    for (auto _ : state) {
        std::vector<RunResult> results = runCampaign(reqs);
        cells += results.size();
        benchmark::DoNotOptimize(results.front().pipe.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(cells));
}
BENCHMARK(BM_ParallelCampaign)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace turnpike

BENCHMARK_MAIN();
