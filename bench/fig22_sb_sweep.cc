/**
 * @file
 * Fig. 22: store-buffer-size sensitivity at WCDL=10 — Turnstile
 * with SB of 8/10/20/30/40 entries versus Turnpike with its default
 * 4 (plus 8/10). The paper's point: even a 10x larger SB leaves
 * Turnstile behind Turnpike (9% vs 0% average).
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

namespace {

ResilienceConfig
withSb(ResilienceConfig cfg, uint32_t sb)
{
    cfg.sbSize = sb;
    cfg.label += "-sb" + std::to_string(sb);
    return cfg;
}

} // namespace

int
main()
{
    banner("Figure 22", "SB size sensitivity at WCDL=10");
    const std::vector<std::pair<std::string, ResilienceConfig>> cols = {
        {"TP(4)", ResilienceConfig::turnpike(10)},
        {"TP(8)", withSb(ResilienceConfig::turnpike(10), 8)},
        {"TP(10)", withSb(ResilienceConfig::turnpike(10), 10)},
        {"TS(8)", withSb(ResilienceConfig::turnstile(10), 8)},
        {"TS(10)", withSb(ResilienceConfig::turnstile(10), 10)},
        {"TS(20)", withSb(ResilienceConfig::turnstile(10), 20)},
        {"TS(30)", withSb(ResilienceConfig::turnstile(10), 30)},
        {"TS(40)", withSb(ResilienceConfig::turnstile(10), 40)},
    };
    BaselineCache base(benchInstBudget());
    base.prewarm(workloadSuite());

    std::vector<std::string> headers{"suite", "workload"};
    for (const auto &[label, cfg] : cols)
        headers.push_back(label);
    Table table(headers);
    std::map<std::string, GeoMeans> geo;

    std::vector<RunRequest> reqs;
    for (const WorkloadSpec &spec : workloadSuite())
        for (const auto &[label, cfg] : cols)
            reqs.push_back({spec, cfg, base.insts(), {}, false});
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (const WorkloadSpec &spec : workloadSuite()) {
        std::vector<std::string> row{spec.suite, spec.name};
        double b = static_cast<double>(base.get(spec).pipe.cycles);
        for (const auto &[label, cfg] : cols) {
            const RunResult &r = results[k++];
            double norm = static_cast<double>(r.pipe.cycles) / b;
            row.push_back(cell(norm));
            geo[label].add(spec.suite, norm);
        }
        table.addRow(row);
    }
    std::vector<std::string> row{"all", "geomean"};
    for (const auto &[label, cfg] : cols)
        row.push_back(cell(geo[label].all()));
    table.addRow(row);
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper: Turnstile averages 20%%/18%%/13%%/11%%/9%% "
                "for SB 8/10/20/30/40; Turnpike stays ~0%%\n");
    return 0;
}
