/**
 * @file
 * Fig. 15: fraction of all stores (checkpoints included) detected as
 * WAR-free and released without verification, for the ideal and the
 * compact CLQ designs. The paper reports the ideal design detecting
 * ~10.6 percentage points more.
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

namespace {

double
warFreeRatio(const RunResult &r)
{
    uint64_t total = r.pipe.storesTotal();
    return total == 0
        ? 0.0
        : static_cast<double>(r.pipe.storesWarFree) /
            static_cast<double>(total);
}

} // namespace

int
main()
{
    banner("Figure 15", "WAR-free stores detected, ideal vs compact "
                        "CLQ");
    ResilienceConfig compact = ResilienceConfig::fastRelease(10);
    ResilienceConfig ideal = compact;
    ideal.label = "ideal-clq";
    ideal.clqDesign = ClqDesign::Ideal;
    ideal.clqEntries = 1u << 20;
    uint64_t insts = benchInstBudget();

    Table table({"suite", "workload", "ideal CLQ", "compact CLQ"});
    std::vector<double> vi, vc;
    std::vector<RunRequest> reqs;
    for (const WorkloadSpec &spec : workloadSuite()) {
        reqs.push_back({spec, ideal, insts, {}, false});
        reqs.push_back({spec, compact, insts, {}, false});
    }
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (const WorkloadSpec &spec : workloadSuite()) {
        const RunResult &ri = results[k++];
        const RunResult &rc = results[k++];
        table.addRow({spec.suite, spec.name, pct(warFreeRatio(ri)),
                      pct(warFreeRatio(rc))});
        vi.push_back(warFreeRatio(ri));
        vc.push_back(warFreeRatio(rc));
    }
    table.addRow({"all", "mean", pct(mean(vi)), pct(mean(vc))});
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper: the ideal CLQ detects ~10.6pp more WAR-free "
                "stores than the compact design\n");
    return 0;
}
