/**
 * @file
 * Extension study (beyond the paper's figures): Monte Carlo
 * soft-error vulnerability campaign. The paper argues every detected
 * fault is recovered; this harness measures what happens to the
 * architectural results when strikes land across the whole
 * vulnerable state (registers, SB, PC, latches, RBB, CLQ, color
 * maps, cache data) *and* a fraction of strikes escapes the acoustic
 * sensors entirely. Each strike is classified Masked / Recovered /
 * SDC / Hang by differential comparison against the fault-free
 * golden run, per workload and scheme, then aggregated per scheme
 * into an AVF-style report written as turnpike-stats-v1 JSON.
 *
 * Output is deterministic at any TURNPIKE_JOBS: every trial's fault
 * is a pure function of (seed, trial index), and results are keyed
 * by submission order.
 *
 * Environment:
 *  - TURNPIKE_BENCH_ICOUNT: per-run instruction budget (as usual);
 *  - TURNPIKE_AVF_TRIALS: Monte Carlo trials per (workload, scheme)
 *    cell (default 48; the CI smoke uses a small count).
 */

#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "bench/common.hh"
#include "core/avf.hh"
#include "workloads/suite.hh"

using namespace turnpike;
using namespace turnpike::bench;

namespace {

uint32_t
avfTrials()
{
    constexpr uint32_t kDefault = 48;
    const char *env = std::getenv("TURNPIKE_AVF_TRIALS");
    if (!env)
        return kDefault;
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < 1) {
        warn("TURNPIKE_AVF_TRIALS='%s' is not a positive trial "
             "count; using the default %u", env, kDefault);
        return kDefault;
    }
    return static_cast<uint32_t>(v);
}

} // namespace

int
main()
{
    banner("Extension", "Monte Carlo vulnerability campaign "
                        "(WCDL=20, 25% sensor-miss rate)");
    const std::vector<std::pair<std::string, std::string>> picks = {
        {"CPU2006", "mcf"},
        {"CPU2006", "gcc"},
        {"SPLASH3", "radix"},
    };
    const uint32_t trials = avfTrials();
    const uint64_t insts = benchInstBudget();
    std::printf("%u trials per (workload, scheme) cell, one upset "
                "each\n\n", trials);

    uint64_t combo = 0;
    for (const char *scheme : {"turnstile", "turnpike"}) {
        AvfReport aggregate;
        aggregate.workload = "aggregate";
        aggregate.sensorMissRate = 0.25;
        for (const auto &[suite, name] : picks) {
            AvfCampaignConfig cfg;
            cfg.spec = findWorkload(suite, name);
            cfg.scheme = scheme == std::string("turnstile")
                ? ResilienceConfig::turnstile(20)
                : ResilienceConfig::turnpike(20);
            cfg.icount = insts;
            cfg.trials = trials;
            cfg.seed = 12345 + combo++;
            cfg.sensorMissRate = 0.25;
            AvfReport rep = runAvfCampaign(cfg);
            std::printf("-- %s %s (golden %llu cycles) --\n%s\n",
                        rep.workload.c_str(), rep.scheme.c_str(),
                        static_cast<unsigned long long>(
                            rep.goldenCycles),
                        avfReportTable(rep).c_str());
            aggregate.merge(rep);
        }
        std::printf("== %s aggregate over %zu workloads: "
                    "vulnerability %.3f (SDC %.3f, hang %.3f) ==\n%s\n",
                    scheme, picks.size(), aggregate.vulnerability(),
                    aggregate.rate(FaultOutcome::Sdc),
                    aggregate.rate(FaultOutcome::Hang),
                    avfReportTable(aggregate).c_str());

        StatRegistry reg;
        reg.setMeta("workload", "aggregate");
        reg.setMeta("scheme", scheme);
        reg.setMeta("trials_per_cell", std::to_string(trials));
        exportAvfStats(reg, aggregate);
        std::string path = std::string("BENCH_avf_") + scheme +
            ".json";
        std::ofstream f(path);
        if (!f)
            fatal("cannot open %s", path.c_str());
        reg.dumpJson(f, /*include_host=*/false);
        std::printf("wrote %s\n\n", path.c_str());
        appendHistory(std::string("ext_avf.") + scheme, path,
                      {{"vulnerability", aggregate.vulnerability()},
                       {"sdc_rate",
                        aggregate.rate(FaultOutcome::Sdc)},
                       {"hang_rate",
                        aggregate.rate(FaultOutcome::Hang)},
                       {"trials", double(aggregate.trials)}});
    }
    std::printf("Detected strikes must never produce SDC (the "
                "paper's guarantee); undetected ones\nexpose the "
                "residual vulnerability this campaign quantifies.\n");
    return 0;
}
