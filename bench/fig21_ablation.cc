/**
 * @file
 * Fig. 21: the optimization ablation at the default 10-cycle WCDL —
 * Turnstile, +WAR-free checking, +hardware coloring (fast release),
 * +pruning, +LICM, +instruction scheduling, +store-aware RA, and
 * full Turnpike (adds LIVM). The paper's averages walk from 29%
 * down to 0%.
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Figure 21", "optimization ablation at WCDL=10");
    const std::vector<std::pair<std::string, ResilienceConfig>> steps = {
        {"TS", ResilienceConfig::turnstile(10)},
        {"+WAR", ResilienceConfig::warFreeOnly(10)},
        {"+Color", ResilienceConfig::fastRelease(10)},
        {"+Prune", ResilienceConfig::fastReleasePruning(10)},
        {"+LICM", ResilienceConfig::fastReleasePruningLicm(10)},
        {"+Sched", ResilienceConfig::fastReleasePruningLicmSched(10)},
        {"+RA", ResilienceConfig::fastReleasePruningLicmSchedRa(10)},
        {"TP", ResilienceConfig::turnpike(10)},
    };
    BaselineCache base(benchInstBudget());
    base.prewarm(workloadSuite());

    std::vector<std::string> headers{"suite", "workload"};
    for (const auto &[label, cfg] : steps)
        headers.push_back(label);
    Table table(headers);
    std::map<std::string, GeoMeans> geo;

    std::vector<RunRequest> reqs;
    for (const WorkloadSpec &spec : workloadSuite())
        for (const auto &[label, cfg] : steps)
            reqs.push_back({spec, cfg, base.insts(), {}, false});
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (const WorkloadSpec &spec : workloadSuite()) {
        std::vector<std::string> row{spec.suite, spec.name};
        double b = static_cast<double>(base.get(spec).pipe.cycles);
        for (const auto &[label, cfg] : steps) {
            const RunResult &r = results[k++];
            double norm = static_cast<double>(r.pipe.cycles) / b;
            row.push_back(cell(norm));
            geo[label].add(spec.suite, norm);
        }
        table.addRow(row);
    }
    for (const std::string &s : suiteOrder()) {
        std::vector<std::string> row{s, "geomean"};
        for (const auto &[label, cfg] : steps)
            row.push_back(cell(geo[label].suite(s)));
        table.addRow(row);
    }
    std::vector<std::string> row{"all", "geomean"};
    for (const auto &[label, cfg] : steps)
        row.push_back(cell(geo[label].all()));
    table.addRow(row);
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper averages: 1.29 -> 1.25 -> 1.22 -> 1.12 -> "
                "1.10 -> 1.07 -> 1.02 -> 1.00\n");
    return 0;
}
