/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: suite
 * iteration in the paper's order, per-suite geometric means, and a
 * cache of baseline runs that is safe to hit from campaign workers.
 */

#ifndef TURNPIKE_BENCH_COMMON_HH_
#define TURNPIKE_BENCH_COMMON_HH_

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "core/parallel.hh"
#include "core/runner.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace turnpike {
namespace bench {

/** Paper suite order. */
inline const std::vector<std::string> &
suiteOrder()
{
    static const std::vector<std::string> order = {"CPU2006",
                                                   "CPU2017",
                                                   "SPLASH3"};
    return order;
}

/** Accumulates per-suite and overall geometric means. */
class GeoMeans
{
  public:
    void add(const std::string &suite, double v)
    {
        per_suite_[suite].push_back(v);
        all_.push_back(v);
    }

    double suite(const std::string &s) const
    {
        auto it = per_suite_.find(s);
        // A typo'd suite name would otherwise print a perfect 1.0
        // geomean; that must never pass silently.
        TP_ASSERT(it != per_suite_.end(),
                  "GeoMeans::suite: suite '%s' was never add()ed",
                  s.c_str());
        return geomean(it->second);
    }

    double all() const { return geomean(all_); }

  private:
    std::map<std::string, std::vector<double>> per_suite_;
    std::vector<double> all_;
};

/**
 * Cache of baseline runs keyed by workload. Thread-safe: concurrent
 * get() calls for the same workload simulate the baseline exactly
 * once (the losers block on the winner's once-flag), so campaign
 * workers may share one instance. prewarm() fills the cache for a
 * whole spec list with a parallel campaign up front.
 */
class BaselineCache
{
  public:
    explicit BaselineCache(uint64_t insts) : insts_(insts) {}

    const RunResult &get(const WorkloadSpec &spec)
    {
        Slot &s = slot(spec.suite + "/" + spec.name);
        std::call_once(s.once, [&] {
            s.result = runWorkload(spec,
                                   ResilienceConfig::baseline(),
                                   insts_);
        });
        return s.result;
    }

    /** Run every missing baseline as one parallel campaign. */
    void prewarm(const std::vector<WorkloadSpec> &specs)
    {
        std::vector<RunRequest> reqs;
        for (const WorkloadSpec &spec : specs)
            reqs.push_back({spec, ResilienceConfig::baseline(),
                            insts_, {}, false});
        std::vector<RunResult> results = runCampaign(reqs);
        for (size_t i = 0; i < specs.size(); i++) {
            Slot &s = slot(specs[i].suite + "/" + specs[i].name);
            std::call_once(s.once, [&] {
                s.result = std::move(results[i]);
            });
        }
    }

    uint64_t insts() const { return insts_; }

  private:
    struct Slot
    {
        std::once_flag once;
        RunResult result;
    };

    Slot &slot(const std::string &key)
    {
        // std::map nodes are address-stable, so the reference
        // stays valid while other threads insert.
        std::lock_guard<std::mutex> lock(mu_);
        return cache_[key];
    }

    uint64_t insts_;
    std::mutex mu_;
    std::map<std::string, Slot> cache_;
};

/** Standard harness banner. */
inline void
banner(const char *figure, const char *description)
{
    std::printf("== %s: %s ==\n", figure, description);
    std::printf("   (synthetic benchmark proxies; icount budget %llu"
                " per run, override with TURNPIKE_BENCH_ICOUNT)\n\n",
                static_cast<unsigned long long>(benchInstBudget()));
}

/**
 * Best-effort git revision for history records: GITHUB_SHA when CI
 * exported it, otherwise `git rev-parse HEAD`, otherwise "unknown"
 * (running from a tarball must not fail the bench).
 */
inline std::string
gitRevision()
{
    if (const char *sha = std::getenv("GITHUB_SHA"))
        return sha;
    std::string out;
    if (FILE *p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[80];
        if (std::fgets(buf, sizeof(buf), p))
            out = buf;
        ::pclose(p);
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

/**
 * Append one run record to the perf-trajectory log. Every harness
 * that writes a BENCH_*.json artifact also appends a JSONL line here
 * (git sha, UTC timestamp, host, icount budget, headline metrics) so
 * plotting throughput over the PR history is one file read, not an
 * archaeology dig through CI artifacts.
 *
 * TURNPIKE_BENCH_HISTORY overrides the path; "0" or the empty string
 * disables the record (the determinism CI diff uses this). Failures
 * warn and return — history is telemetry, never a bench failure.
 */
inline void
appendHistory(const std::string &bench, const std::string &artifact,
              const std::vector<std::pair<std::string, double>> &metrics)
{
    std::string path = "BENCH_history.jsonl";
    if (const char *env = std::getenv("TURNPIKE_BENCH_HISTORY")) {
        path = env;
        if (path.empty() || path == "0")
            return;
    }
    std::ofstream f(path, std::ios::app);
    if (!f) {
        warn("cannot append to %s", path.c_str());
        return;
    }
    char stamp[32] = "unknown";
    std::time_t now = std::time(nullptr);
    if (std::tm tm_utc; gmtime_r(&now, &tm_utc))
        std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    char host[256] = "unknown";
    if (::gethostname(host, sizeof(host)) != 0)
        std::snprintf(host, sizeof(host), "unknown");
    host[sizeof(host) - 1] = '\0';

    JsonWriter jw(f, /*indent_step=*/0);
    jw.beginObject();
    jw.field("schema", "turnpike-bench-history-v1");
    jw.field("bench", bench);
    jw.field("artifact", artifact);
    jw.field("git_sha", gitRevision());
    jw.field("timestamp_utc", std::string(stamp));
    jw.field("host", std::string(host));
    jw.field("icount", benchInstBudget());
    jw.key("metrics");
    jw.beginObject();
    for (const auto &[name, v] : metrics)
        jw.field(name, v);
    jw.endObject();
    jw.endObject();
    jw.newline();
}

} // namespace bench
} // namespace turnpike

#endif // TURNPIKE_BENCH_COMMON_HH_
