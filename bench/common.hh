/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: suite
 * iteration in the paper's order, per-suite geometric means, and a
 * cache of baseline runs that is safe to hit from campaign workers.
 */

#ifndef TURNPIKE_BENCH_COMMON_HH_
#define TURNPIKE_BENCH_COMMON_HH_

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/parallel.hh"
#include "core/runner.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace turnpike {
namespace bench {

/** Paper suite order. */
inline const std::vector<std::string> &
suiteOrder()
{
    static const std::vector<std::string> order = {"CPU2006",
                                                   "CPU2017",
                                                   "SPLASH3"};
    return order;
}

/** Accumulates per-suite and overall geometric means. */
class GeoMeans
{
  public:
    void add(const std::string &suite, double v)
    {
        per_suite_[suite].push_back(v);
        all_.push_back(v);
    }

    double suite(const std::string &s) const
    {
        auto it = per_suite_.find(s);
        // A typo'd suite name would otherwise print a perfect 1.0
        // geomean; that must never pass silently.
        TP_ASSERT(it != per_suite_.end(),
                  "GeoMeans::suite: suite '%s' was never add()ed",
                  s.c_str());
        return geomean(it->second);
    }

    double all() const { return geomean(all_); }

  private:
    std::map<std::string, std::vector<double>> per_suite_;
    std::vector<double> all_;
};

/**
 * Cache of baseline runs keyed by workload. Thread-safe: concurrent
 * get() calls for the same workload simulate the baseline exactly
 * once (the losers block on the winner's once-flag), so campaign
 * workers may share one instance. prewarm() fills the cache for a
 * whole spec list with a parallel campaign up front.
 */
class BaselineCache
{
  public:
    explicit BaselineCache(uint64_t insts) : insts_(insts) {}

    const RunResult &get(const WorkloadSpec &spec)
    {
        Slot &s = slot(spec.suite + "/" + spec.name);
        std::call_once(s.once, [&] {
            s.result = runWorkload(spec,
                                   ResilienceConfig::baseline(),
                                   insts_);
        });
        return s.result;
    }

    /** Run every missing baseline as one parallel campaign. */
    void prewarm(const std::vector<WorkloadSpec> &specs)
    {
        std::vector<RunRequest> reqs;
        for (const WorkloadSpec &spec : specs)
            reqs.push_back({spec, ResilienceConfig::baseline(),
                            insts_, {}, false});
        std::vector<RunResult> results = runCampaign(reqs);
        for (size_t i = 0; i < specs.size(); i++) {
            Slot &s = slot(specs[i].suite + "/" + specs[i].name);
            std::call_once(s.once, [&] {
                s.result = std::move(results[i]);
            });
        }
    }

    uint64_t insts() const { return insts_; }

  private:
    struct Slot
    {
        std::once_flag once;
        RunResult result;
    };

    Slot &slot(const std::string &key)
    {
        // std::map nodes are address-stable, so the reference
        // stays valid while other threads insert.
        std::lock_guard<std::mutex> lock(mu_);
        return cache_[key];
    }

    uint64_t insts_;
    std::mutex mu_;
    std::map<std::string, Slot> cache_;
};

/** Standard harness banner. */
inline void
banner(const char *figure, const char *description)
{
    std::printf("== %s: %s ==\n", figure, description);
    std::printf("   (synthetic benchmark proxies; icount budget %llu"
                " per run, override with TURNPIKE_BENCH_ICOUNT)\n\n",
                static_cast<unsigned long long>(benchInstBudget()));
}

} // namespace bench
} // namespace turnpike

#endif // TURNPIKE_BENCH_COMMON_HH_
