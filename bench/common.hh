/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: suite
 * iteration in the paper's order, per-suite geometric means, and a
 * small cache of baseline runs.
 */

#ifndef TURNPIKE_BENCH_COMMON_HH_
#define TURNPIKE_BENCH_COMMON_HH_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace turnpike {
namespace bench {

/** Paper suite order. */
inline const std::vector<std::string> &
suiteOrder()
{
    static const std::vector<std::string> order = {"CPU2006",
                                                   "CPU2017",
                                                   "SPLASH3"};
    return order;
}

/** Accumulates per-suite and overall geometric means. */
class GeoMeans
{
  public:
    void add(const std::string &suite, double v)
    {
        per_suite_[suite].push_back(v);
        all_.push_back(v);
    }

    double suite(const std::string &s) const
    {
        auto it = per_suite_.find(s);
        return it == per_suite_.end() ? 1.0 : geomean(it->second);
    }

    double all() const { return geomean(all_); }

  private:
    std::map<std::string, std::vector<double>> per_suite_;
    std::vector<double> all_;
};

/** Cache of baseline runs keyed by workload. */
class BaselineCache
{
  public:
    explicit BaselineCache(uint64_t insts) : insts_(insts) {}

    const RunResult &get(const WorkloadSpec &spec)
    {
        std::string key = spec.suite + "/" + spec.name;
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            it = cache_.emplace(key,
                                runWorkload(spec,
                                            ResilienceConfig::baseline(),
                                            insts_)).first;
        }
        return it->second;
    }

    uint64_t insts() const { return insts_; }

  private:
    uint64_t insts_;
    std::map<std::string, RunResult> cache_;
};

/** Standard harness banner. */
inline void
banner(const char *figure, const char *description)
{
    std::printf("== %s: %s ==\n", figure, description);
    std::printf("   (synthetic benchmark proxies; icount budget %llu"
                " per run, override with TURNPIKE_BENCH_ICOUNT)\n\n",
                static_cast<unsigned long long>(benchInstBudget()));
}

} // namespace bench
} // namespace turnpike

#endif // TURNPIKE_BENCH_COMMON_HH_
