/**
 * @file
 * Table 1: CACTI-style 22 nm area and per-access energy of the
 * structures involved — the 4-entry CAM store buffer baseline,
 * Turnpike's color maps and compact CLQ, and the (unrealistic)
 * 40-entry store buffer alternative, with the paper's two ratio
 * rows.
 */

#include "bench/common.hh"
#include "core/hwcost.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Table 1", "hardware cost comparison (CACTI-fitted "
                      "model, 22nm)");
    HwCost sb4 = camStoreBufferCost(4);
    HwCost maps = colorMapsCost(32, 4);
    HwCost clq = clqCost(2);
    HwCost tp = turnpikeCost(32, 4, 2);
    HwCost sb40 = camStoreBufferCost(40);

    Table table({"structure", "area (um^2)", "dynamic access (pJ)"});
    table.addRow({"4-entry SB (CAM)", cell(sb4.areaUm2, 2),
                  cell(sb4.accessEnergyPj, 5)});
    table.addRow({"Color maps in Turnpike (RAM)", cell(maps.areaUm2, 3),
                  cell(maps.accessEnergyPj, 5)});
    table.addRow({"2-entry CLQ in Turnpike (RAM)", cell(clq.areaUm2, 3),
                  cell(clq.accessEnergyPj, 5)});
    table.addRow({"Turnpike in total (maps + CLQ)", cell(tp.areaUm2, 3),
                  cell(tp.accessEnergyPj, 5)});
    table.addRow({"40-entry SB (CAM)", cell(sb40.areaUm2, 2),
                  cell(sb40.accessEnergyPj, 5)});
    table.addRow({"Turnpike total / 4-entry SB",
                  pct(tp.areaUm2 / sb4.areaUm2),
                  pct(tp.accessEnergyPj / sb4.accessEnergyPj)});
    table.addRow({"40-entry SB / 4-entry SB",
                  pct(sb40.areaUm2 / sb4.areaUm2, 0),
                  pct(sb40.accessEnergyPj / sb4.accessEnergyPj, 0)});
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper: Turnpike adds 9.8%% area / 9.7%% energy of "
                "the 4-entry SB; a 40-entry SB costs 504%%/497%%\n");

    // State bytes, as in the paper's prose (40 B total).
    std::printf("\nstate: color maps %d B + CLQ %d B = %d B total\n",
                3 * 2 * 32 / 8, 2 * 8, 3 * 2 * 32 / 8 + 16);
    return 0;
}
