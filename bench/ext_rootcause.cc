/**
 * @file
 * Extension study (beyond the paper's figures): SDC/Hang root-cause
 * bisection. For every harmful trial of a vulnerability campaign,
 * the analysis replays the trial deterministically, binary-searches
 * the first architecturally-divergent committed instruction against
 * the golden commit stream (never holding a full trace in memory),
 * and attributes the divergence to a PC, opcode, static region and
 * the compiler's checkpoint-pruning decision for that region.
 * Per-workload reports aggregate per scheme into one
 * turnpike-stats-v1 JSON (BENCH_rootcause.json).
 *
 * Output is deterministic at any TURNPIKE_JOBS: the campaign screen,
 * the bisection path per trial, and the logical probe counts are all
 * pure functions of the configuration; worker count only changes
 * wall-clock time.
 *
 * Environment:
 *  - TURNPIKE_BENCH_ICOUNT: per-run instruction budget (as usual);
 *  - TURNPIKE_AVF_TRIALS: Monte Carlo trials per (workload, scheme)
 *    cell (default 48; the CI smoke uses a small count).
 */

#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "bench/common.hh"
#include "core/rootcause.hh"
#include "workloads/suite.hh"

using namespace turnpike;
using namespace turnpike::bench;

namespace {

uint32_t
avfTrials()
{
    constexpr uint32_t kDefault = 48;
    const char *env = std::getenv("TURNPIKE_AVF_TRIALS");
    if (!env)
        return kDefault;
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < 1) {
        warn("TURNPIKE_AVF_TRIALS='%s' is not a positive trial "
             "count; using the default %u", env, kDefault);
        return kDefault;
    }
    return static_cast<uint32_t>(v);
}

} // namespace

int
main()
{
    banner("Extension", "SDC/Hang root-cause bisection "
                        "(WCDL=20, 40% sensor-miss rate)");
    const std::vector<std::pair<std::string, std::string>> picks = {
        {"CPU2006", "mcf"},
        {"CPU2006", "gcc"},
        {"SPLASH3", "radix"},
    };
    const uint32_t trials = avfTrials();
    const uint64_t insts = benchInstBudget();
    std::printf("%u trials per (workload, scheme) cell; every "
                "SDC/Hang trial bisected\n\n", trials);

    StatRegistry reg;
    reg.setMeta("workload", "aggregate");
    reg.setMeta("trials_per_cell", std::to_string(trials));

    uint64_t combo = 0;
    for (const char *scheme : {"turnstile", "turnpike"}) {
        RootCauseReport aggregate;
        aggregate.workload = "aggregate";
        for (const auto &[suite, name] : picks) {
            AvfCampaignConfig cfg;
            cfg.spec = findWorkload(suite, name);
            cfg.scheme = scheme == std::string("turnstile")
                ? ResilienceConfig::turnstile(20)
                : ResilienceConfig::turnpike(20);
            cfg.icount = insts;
            cfg.trials = trials;
            // Same seeding walk as ext_avf so the two studies
            // screen identical campaigns.
            cfg.seed = 12345 + combo++;
            cfg.sensorMissRate = 0.4;
            RootCauseReport rep = runRootCauseAnalysis(cfg);
            std::printf("-- %s %s: %u harmful of %u trials, "
                        "%llu probes --\n",
                        rep.workload.c_str(), rep.scheme.c_str(),
                        rep.analyzed, rep.trials,
                        static_cast<unsigned long long>(
                            rep.totalProbes));
            if (!rep.attributions.empty())
                std::printf("%s\n", rootCauseTable(rep).c_str());
            aggregate.merge(rep);
        }
        std::printf("== %s aggregate over %zu workloads: %u harmful "
                    "trials, %llu attributed, %llu state-only ==\n",
                    scheme, picks.size(), aggregate.analyzed,
                    static_cast<unsigned long long>(
                        aggregate.attributed()),
                    static_cast<unsigned long long>(
                        aggregate.kindCounts[static_cast<int>(
                            DivergenceKind::StateOnly)]));
        for (int k = 0; k < kNumDivergenceKinds; k++)
            std::printf("   %-10s %llu\n",
                        divergenceKindName(
                            static_cast<DivergenceKind>(k)),
                        static_cast<unsigned long long>(
                            aggregate.kindCounts[k]));
        std::printf("   pruned-region %llu, unpruned-region %llu\n\n",
                    static_cast<unsigned long long>(
                        aggregate.inPrunedRegion),
                    static_cast<unsigned long long>(
                        aggregate.inUnprunedRegion));

        // One registry holds both schemes, namespaced by prefix, so
        // a single BENCH_rootcause.json carries the whole study.
        StatRegistry srg;
        srg.setMeta("workload", "aggregate");
        srg.setMeta("scheme", scheme);
        srg.setMeta("trials_per_cell", std::to_string(trials));
        exportAvfStats(srg, aggregate.screen);
        exportRootCauseStats(srg, aggregate);
        std::string path = std::string("BENCH_rootcause_") + scheme +
            ".json";
        std::ofstream f(path);
        if (!f)
            fatal("cannot open %s", path.c_str());
        srg.dumpJson(f, /*include_host=*/false);
        std::printf("wrote %s\n\n", path.c_str());
        appendHistory(std::string("ext_rootcause.") + scheme, path,
                      {{"analyzed", double(aggregate.analyzed)},
                       {"attributed", double(aggregate.attributed())},
                       {"total_probes",
                        double(aggregate.totalProbes)}});
        if (scheme == std::string("turnpike")) {
            exportAvfStats(reg, aggregate.screen);
            exportRootCauseStats(reg, aggregate);
        }
    }

    // BENCH_rootcause.json: the turnpike-scheme aggregate (the
    // configuration the paper ships), for the CI determinism diff.
    std::ofstream f("BENCH_rootcause.json");
    if (!f)
        fatal("cannot open BENCH_rootcause.json");
    reg.setMeta("scheme", "turnpike");
    reg.dumpJson(f, /*include_host=*/false);
    std::printf("wrote BENCH_rootcause.json\n\n");

    std::printf("Every harmful strike is pinned to the first "
                "committed instruction where the\narchitectural "
                "state diverged — the starting point for hardening "
                "the regions\nthat actually produce SDCs.\n");
    return 0;
}
