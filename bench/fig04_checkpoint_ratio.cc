/**
 * @file
 * Fig. 4: ratio of inserted (dynamic) checkpoints to dynamic
 * instructions when the store buffer shrinks from 40 entries
 * (out-of-order class) to 4 (in-order class). The paper reports
 * ~4.1% vs ~14.98% on SPEC CPU2006/2017.
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Figure 4", "checkpoint ratio vs store buffer size "
                       "(Turnstile eager checkpointing)");
    uint64_t insts = benchInstBudget();

    Table table({"suite", "workload", "ckpt% (SB=40)",
                 "ckpt% (SB=4)"});
    GeoMeans g40, g4;
    std::vector<RunRequest> reqs;
    for (const WorkloadSpec &spec : workloadSuite()) {
        if (spec.suite == "SPLASH3")
            continue; // the paper's Fig. 4 covers SPEC only
        ResilienceConfig big = ResilienceConfig::turnstile(10);
        big.sbSize = 40;
        ResilienceConfig small = ResilienceConfig::turnstile(10);
        small.sbSize = 4;
        reqs.push_back({spec, big, insts, {}, true});
        reqs.push_back({spec, small, insts, {}, true});
    }
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (const WorkloadSpec &spec : workloadSuite()) {
        if (spec.suite == "SPLASH3")
            continue;
        const RunResult &rb = results[k++];
        const RunResult &rs = results[k++];
        double ratio40 = static_cast<double>(rb.dyn.storesCkpt) /
            static_cast<double>(rb.dyn.insts);
        double ratio4 = static_cast<double>(rs.dyn.storesCkpt) /
            static_cast<double>(rs.dyn.insts);
        table.addRow({spec.suite, spec.name, pct(ratio40),
                      pct(ratio4)});
        g40.add(spec.suite, ratio40);
        g4.add(spec.suite, ratio4);
    }
    for (const std::string &s : suiteOrder()) {
        if (s == "SPLASH3")
            continue;
        table.addRow({s, "geomean", pct(g40.suite(s)),
                      pct(g4.suite(s))});
    }
    table.addRow({"all", "geomean", pct(g40.all()), pct(g4.all())});
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper: 4.1%% (SB=40) vs 14.98%% (SB=4) on average\n");
    return 0;
}
