/**
 * @file
 * Fig. 23: breakdown of all dynamic stores (relative to Turnstile)
 * into Pruned / LICM-eliminated / RA-eliminated / IVM-eliminated
 * (compiler removals), Colored / WAR-free (hardware fast release),
 * and Others (still quarantined for verification). The paper's
 * averages: ~21% pruned, ~1.4% LICM, ~1.7% RA, ~5% IVM, ~39% fast
 * released.
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Figure 23", "dynamic store breakdown at WCDL=10");
    uint64_t insts = benchInstBudget();

    Table table({"suite", "workload", "Pruned", "LICM", "RA", "IVM",
                 "Colored", "WAR-free", "Others"});
    std::vector<double> sp, sl, sr, si, sc, sw, so;

    std::vector<RunRequest> reqs;
    for (const WorkloadSpec &spec : workloadSuite()) {
        // Compiler removal chain (functional runs are enough).
        reqs.push_back({spec, ResilienceConfig::fastRelease(10),
                        insts, {}, true});
        reqs.push_back({spec, ResilienceConfig::fastReleasePruning(10),
                        insts, {}, true});
        reqs.push_back(
            {spec, ResilienceConfig::fastReleasePruningLicm(10),
             insts, {}, true});
        reqs.push_back(
            {spec, ResilienceConfig::fastReleasePruningLicmSchedRa(10),
             insts, {}, true});
        // Full Turnpike on the pipeline for the release categories.
        reqs.push_back({spec, ResilienceConfig::turnpike(10), insts,
                        {}, false});
    }
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (const WorkloadSpec &spec : workloadSuite()) {
        const RunResult &ts = results[k++];
        const RunResult &pruned = results[k++];
        const RunResult &licm = results[k++];
        const RunResult &ra = results[k++];
        const RunResult &tp = results[k++];

        double total = static_cast<double>(ts.dyn.storesTotal());
        if (total <= 0)
            continue;
        auto frac = [&](double v) { return v > 0 ? v / total : 0.0; };
        double f_pruned = frac(
            static_cast<double>(ts.dyn.storesCkpt) -
            static_cast<double>(pruned.dyn.storesCkpt));
        double f_licm = frac(
            static_cast<double>(pruned.dyn.storesCkpt) -
            static_cast<double>(licm.dyn.storesCkpt));
        double f_ra = frac(
            static_cast<double>(licm.dyn.storesSpill) -
            static_cast<double>(ra.dyn.storesSpill));
        double f_ivm = frac(static_cast<double>(ra.dyn.storesCkpt) -
                            static_cast<double>(tp.dyn.storesCkpt));
        double f_col = frac(static_cast<double>(tp.pipe.ckptColored));
        double f_war = frac(static_cast<double>(tp.pipe.storesWarFree));
        double f_oth = frac(
            static_cast<double>(tp.pipe.storesQuarantined));

        table.addRow({spec.suite, spec.name, pct(f_pruned),
                      pct(f_licm), pct(f_ra), pct(f_ivm), pct(f_col),
                      pct(f_war), pct(f_oth)});
        sp.push_back(f_pruned);
        sl.push_back(f_licm);
        sr.push_back(f_ra);
        si.push_back(f_ivm);
        sc.push_back(f_col);
        sw.push_back(f_war);
        so.push_back(f_oth);
    }
    table.addRow({"all", "arithmean", pct(mean(sp)), pct(mean(sl)),
                  pct(mean(sr)), pct(mean(si)), pct(mean(sc)),
                  pct(mean(sw)), pct(mean(so))});
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper averages: pruned 21%%, LICM 1.4%%, RA 1.7%%, "
                "IVM 5%%, fast released 39%%\n");
    return 0;
}
