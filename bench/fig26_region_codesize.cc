/**
 * @file
 * Fig. 26: average dynamic region size (instructions per region)
 * and binary code-size increase of the full Turnpike build versus
 * the baseline build. The paper reports ~11.2 instructions per
 * region and a ~0.4% average size increase (up to ~8% for
 * small-region code like gcc).
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Figure 26", "region size and code-size increase");
    uint64_t insts = benchInstBudget();

    Table table({"suite", "workload", "insts/region",
                 "ckpt code increase", "with recovery blocks"});
    std::vector<double> sizes, increases, full_increases;
    std::vector<RunRequest> reqs;
    for (const WorkloadSpec &spec : workloadSuite()) {
        reqs.push_back({spec, ResilienceConfig::baseline(), insts,
                        {}, true});
        reqs.push_back({spec, ResilienceConfig::turnpike(10), insts,
                        {}, true});
    }
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (const WorkloadSpec &spec : workloadSuite()) {
        const RunResult &base = results[k++];
        const RunResult &tp = results[k++];
        double instr_bytes =
            static_cast<double>(tp.codeBytes - tp.recoveryBytes);
        double inc =
            instr_bytes / static_cast<double>(base.codeBytes) - 1.0;
        double full = static_cast<double>(tp.codeBytes) /
                static_cast<double>(base.codeBytes) - 1.0;
        table.addRow({spec.suite, spec.name,
                      cell(tp.regionSizeAvg, 1), pct(inc),
                      pct(full)});
        sizes.push_back(tp.regionSizeAvg);
        increases.push_back(inc);
        full_increases.push_back(full);
    }
    table.addRow({"all", "mean", cell(mean(sizes), 1),
                  pct(mean(increases)), pct(mean(full_increases))});
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper: ~11.2 insts/region on average; ~0.4%% code "
                "size increase (8.15%% worst case).\n"
                "note: recovery blocks are a fixed per-region cost; "
                "on these small synthetic kernels\n(hundreds of "
                "instructions vs SPEC's megabytes) they dominate the "
                "relative increase.\n");
    return 0;
}
