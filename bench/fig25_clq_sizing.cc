/**
 * @file
 * Fig. 25: execution time of the default 2-entry compact CLQ versus
 * a 4-entry one, under full Turnpike at WCDL=10. The paper finds
 * them nearly identical — the compact design is both low-cost and
 * high-performance.
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Figure 25", "2-entry vs 4-entry compact CLQ");
    ResilienceConfig clq2 = ResilienceConfig::turnpike(10);
    clq2.clqEntries = 2;
    ResilienceConfig clq4 = ResilienceConfig::turnpike(10);
    clq4.clqEntries = 4;
    clq4.label = "turnpike-clq4";
    BaselineCache base(benchInstBudget());
    base.prewarm(workloadSuite());

    Table table({"suite", "workload", "CLQ-2", "CLQ-4"});
    GeoMeans g2, g4;
    std::vector<RunRequest> reqs;
    for (const WorkloadSpec &spec : workloadSuite()) {
        reqs.push_back({spec, clq2, base.insts(), {}, false});
        reqs.push_back({spec, clq4, base.insts(), {}, false});
    }
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (const WorkloadSpec &spec : workloadSuite()) {
        double b = static_cast<double>(base.get(spec).pipe.cycles);
        const RunResult &r2 = results[k++];
        const RunResult &r4 = results[k++];
        double n2 = static_cast<double>(r2.pipe.cycles) / b;
        double n4 = static_cast<double>(r4.pipe.cycles) / b;
        table.addRow({spec.suite, spec.name, cell(n2), cell(n4)});
        g2.add(spec.suite, n2);
        g4.add(spec.suite, n4);
    }
    table.addRow({"all", "geomean", cell(g2.all()), cell(g4.all())});
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper: 2-entry performance is almost the same as "
                "4-entry\n");
    return 0;
}
