/**
 * @file
 * Simulator-throughput benchmark: wall-clock simulated MIPS (million
 * committed instructions per second of host time) and MCPS (million
 * simulated cycles per second) per resilience scheme across the
 * Fig. 19 workload suite. Unlike the figure harnesses this measures
 * the *simulator*, not the simulated machine: it is the perf
 * trajectory every hot-path PR is judged against.
 *
 * Only the pipeline run is timed; workload construction, compilation
 * and the functional golden run are excluded. Results are printed as
 * a table and written to BENCH_sim_throughput.json in the working
 * directory.
 *
 * Environment:
 *  - TURNPIKE_BENCH_ICOUNT: per-run instruction budget (as usual);
 *  - TURNPIKE_PERF_WORKLOADS: cap on workloads per scheme (all 36
 *    when unset; the ctest smoke uses a small cap).
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench/common.hh"
#include "util/json.hh"
#include "util/phase_timer.hh"

using namespace turnpike;
using namespace turnpike::bench;

namespace {

size_t
perfWorkloadCap()
{
    const char *env = std::getenv("TURNPIKE_PERF_WORKLOADS");
    if (!env)
        return ~size_t(0);
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < 1) {
        warn("TURNPIKE_PERF_WORKLOADS='%s' is not a positive count; "
             "benchmarking the full suite", env);
        return ~size_t(0);
    }
    return static_cast<size_t>(v);
}

struct SchemeTotals
{
    std::string label;
    uint64_t runs = 0;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    double seconds = 0.0;

    double mips() const
    {
        return seconds > 0.0
            ? static_cast<double>(insts) / seconds / 1e6 : 0.0;
    }
    double mcps() const
    {
        return seconds > 0.0
            ? static_cast<double>(cycles) / seconds / 1e6 : 0.0;
    }
};

} // namespace

int
main()
{
    std::printf("== Simulator throughput: simulated MIPS per scheme "
                "==\n");
    uint64_t budget = benchInstBudget();
    size_t cap = perfWorkloadCap();
    std::printf("   (pipeline run only; icount budget %llu per run, "
                "override with TURNPIKE_BENCH_ICOUNT)\n\n",
                static_cast<unsigned long long>(budget));

    const std::vector<ResilienceConfig> schemes = {
        ResilienceConfig::baseline(),
        ResilienceConfig::turnstile(10),
        ResilienceConfig::turnpike(10),
    };

    std::vector<SchemeTotals> totals;
    PhaseProfile profile; // self-profiling across all schemes
    for (const ResilienceConfig &cfg : schemes) {
        SchemeTotals t;
        t.label = cfg.label;
        size_t done = 0;
        for (const WorkloadSpec &spec : workloadSuite()) {
            if (done >= cap)
                break;
            std::unique_ptr<Module> mod;
            CompiledProgram prog;
            {
                ScopedPhaseTimer pt(&profile,
                                    "host.build_workload");
                mod = buildWorkload(spec, budget);
            }
            {
                ScopedPhaseTimer pt(&profile, "host.compile");
                prog = compileWorkload(*mod, cfg);
            }
            profile.merge(prog.profile);
            InOrderPipeline pipe(*mod, *prog.mf,
                                 cfg.toPipelineConfig());
            auto t0 = std::chrono::steady_clock::now();
            PipelineResult r = pipe.run();
            auto t1 = std::chrono::steady_clock::now();
            TP_ASSERT(r.halted, "%s/%s did not halt under %s",
                      spec.suite.c_str(), spec.name.c_str(),
                      cfg.label.c_str());
            t.runs++;
            t.insts += r.stats.insts;
            t.cycles += r.stats.cycles;
            double secs =
                std::chrono::duration<double>(t1 - t0).count();
            t.seconds += secs;
            profile.add("host.simulate", secs);
            done++;
        }
        totals.push_back(std::move(t));
    }

    Table table({"scheme", "runs", "Minsts", "Mcycles", "seconds",
                 "sim MIPS", "sim MCPS"});
    for (const SchemeTotals &t : totals)
        table.addRow({t.label, cell(static_cast<uint64_t>(t.runs)),
                      cell(static_cast<double>(t.insts) / 1e6, 2),
                      cell(static_cast<double>(t.cycles) / 1e6, 2),
                      cell(t.seconds, 3), cell(t.mips(), 2),
                      cell(t.mcps(), 2)});
    std::printf("%s\n", table.toText().c_str());

    const char *path = "BENCH_sim_throughput.json";
    std::ofstream f(path);
    if (!f) {
        warn("cannot write %s", path);
        return 1;
    }
    JsonWriter jw(f);
    jw.beginObject();
    jw.field("icount", budget);
    jw.key("schemes");
    jw.beginArray();
    for (const SchemeTotals &t : totals) {
        jw.beginObject();
        jw.field("label", t.label);
        jw.field("runs", t.runs);
        jw.field("insts", t.insts);
        jw.field("cycles", t.cycles);
        jw.field("seconds", t.seconds);
        jw.field("mips", t.mips());
        jw.field("mcps", t.mcps());
        jw.endObject();
    }
    jw.endArray();
    jw.key("phases");
    jw.beginArray();
    for (const auto &kv : profile.entries()) {
        jw.beginObject();
        jw.field("phase", kv.first);
        jw.field("seconds", kv.second.seconds);
        jw.field("exclusive_seconds", kv.second.exclusiveSeconds);
        jw.field("calls", kv.second.calls);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    f << '\n';
    std::printf("wrote %s\n", path);

    std::vector<std::pair<std::string, double>> hist;
    for (const SchemeTotals &t : totals) {
        hist.emplace_back(t.label + ".mips", t.mips());
        hist.emplace_back(t.label + ".mcps", t.mcps());
        hist.emplace_back(t.label + ".seconds", t.seconds);
    }
    appendHistory("perf_throughput", path, hist);
    return 0;
}
