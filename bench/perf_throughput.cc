/**
 * @file
 * Simulator-throughput benchmark: wall-clock simulated MIPS (million
 * committed instructions per second of host time) and MCPS (million
 * simulated cycles per second) per resilience scheme across the
 * Fig. 19 workload suite. Unlike the figure harnesses this measures
 * the *simulator*, not the simulated machine: it is the perf
 * trajectory every hot-path PR is judged against.
 *
 * Only the pipeline run is timed; workload construction, compilation
 * and the functional golden run are excluded. Results are printed as
 * a table and written to BENCH_sim_throughput.json in the working
 * directory.
 *
 * Environment:
 *  - TURNPIKE_BENCH_ICOUNT: per-run instruction budget (as usual);
 *  - TURNPIKE_PERF_WORKLOADS: cap on workloads per scheme (all 36
 *    when unset; the ctest smoke uses a small cap).
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

namespace {

size_t
perfWorkloadCap()
{
    const char *env = std::getenv("TURNPIKE_PERF_WORKLOADS");
    if (!env)
        return ~size_t(0);
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < 1) {
        warn("TURNPIKE_PERF_WORKLOADS='%s' is not a positive count; "
             "benchmarking the full suite", env);
        return ~size_t(0);
    }
    return static_cast<size_t>(v);
}

struct SchemeTotals
{
    std::string label;
    uint64_t runs = 0;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    double seconds = 0.0;

    double mips() const
    {
        return seconds > 0.0
            ? static_cast<double>(insts) / seconds / 1e6 : 0.0;
    }
    double mcps() const
    {
        return seconds > 0.0
            ? static_cast<double>(cycles) / seconds / 1e6 : 0.0;
    }
};

} // namespace

int
main()
{
    std::printf("== Simulator throughput: simulated MIPS per scheme "
                "==\n");
    uint64_t budget = benchInstBudget();
    size_t cap = perfWorkloadCap();
    std::printf("   (pipeline run only; icount budget %llu per run, "
                "override with TURNPIKE_BENCH_ICOUNT)\n\n",
                static_cast<unsigned long long>(budget));

    const std::vector<ResilienceConfig> schemes = {
        ResilienceConfig::baseline(),
        ResilienceConfig::turnstile(10),
        ResilienceConfig::turnpike(10),
    };

    std::vector<SchemeTotals> totals;
    for (const ResilienceConfig &cfg : schemes) {
        SchemeTotals t;
        t.label = cfg.label;
        size_t done = 0;
        for (const WorkloadSpec &spec : workloadSuite()) {
            if (done >= cap)
                break;
            auto mod = buildWorkload(spec, budget);
            CompiledProgram prog = compileWorkload(*mod, cfg);
            InOrderPipeline pipe(*mod, *prog.mf,
                                 cfg.toPipelineConfig());
            auto t0 = std::chrono::steady_clock::now();
            PipelineResult r = pipe.run();
            auto t1 = std::chrono::steady_clock::now();
            TP_ASSERT(r.halted, "%s/%s did not halt under %s",
                      spec.suite.c_str(), spec.name.c_str(),
                      cfg.label.c_str());
            t.runs++;
            t.insts += r.stats.insts;
            t.cycles += r.stats.cycles;
            t.seconds +=
                std::chrono::duration<double>(t1 - t0).count();
            done++;
        }
        totals.push_back(std::move(t));
    }

    Table table({"scheme", "runs", "Minsts", "Mcycles", "seconds",
                 "sim MIPS", "sim MCPS"});
    for (const SchemeTotals &t : totals)
        table.addRow({t.label, cell(static_cast<uint64_t>(t.runs)),
                      cell(static_cast<double>(t.insts) / 1e6, 2),
                      cell(static_cast<double>(t.cycles) / 1e6, 2),
                      cell(t.seconds, 3), cell(t.mips(), 2),
                      cell(t.mcps(), 2)});
    std::printf("%s\n", table.toText().c_str());

    const char *path = "BENCH_sim_throughput.json";
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        warn("cannot write %s", path);
        return 1;
    }
    std::fprintf(f, "{\n  \"icount\": %llu,\n  \"schemes\": [\n",
                 static_cast<unsigned long long>(budget));
    for (size_t i = 0; i < totals.size(); i++) {
        const SchemeTotals &t = totals[i];
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"runs\": %llu, "
                     "\"insts\": %llu, \"cycles\": %llu, "
                     "\"seconds\": %.6f, \"mips\": %.3f, "
                     "\"mcps\": %.3f}%s\n",
                     t.label.c_str(),
                     static_cast<unsigned long long>(t.runs),
                     static_cast<unsigned long long>(t.insts),
                     static_cast<unsigned long long>(t.cycles),
                     t.seconds, t.mips(), t.mcps(),
                     i + 1 < totals.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
}
