/**
 * @file
 * Fig. 24: dynamic CLQ entries populated at run time (average and
 * maximum) under full Turnpike at WCDL=10, observed with a roomy
 * 8-entry compact CLQ so the true demand is visible. The paper
 * finds ~1 entry on average with rare peaks of 3-4 — the rationale
 * for the 2-entry default.
 */

#include "bench/common.hh"

using namespace turnpike;
using namespace turnpike::bench;

int
main()
{
    banner("Figure 24", "dynamic CLQ entries populated");
    ResilienceConfig cfg = ResilienceConfig::turnpike(10);
    cfg.clqEntries = 8; // headroom to observe the real demand
    uint64_t insts = benchInstBudget();

    Table table({"suite", "workload", "average", "maximum"});
    std::vector<double> avgs, maxes;
    std::vector<RunRequest> reqs;
    for (const WorkloadSpec &spec : workloadSuite())
        reqs.push_back({spec, cfg, insts, {}, false});
    std::vector<RunResult> results = runCampaign(reqs);

    size_t k = 0;
    for (const WorkloadSpec &spec : workloadSuite()) {
        const RunResult &r = results[k++];
        double avg = r.pipe.clqOccupancy.mean();
        double mx = r.pipe.clqOccupancy.max();
        table.addRow({spec.suite, spec.name, cell(avg, 2),
                      cell(mx, 0)});
        avgs.push_back(avg);
        maxes.push_back(mx);
    }
    table.addRow({"all", "mean", cell(mean(avgs), 2),
                  cell(mean(maxes), 1)});
    std::printf("%s\n", table.toText().c_str());
    std::printf("paper: ~1 entry populated on average, peaks of 3-4 "
                "on a few benchmarks\n");
    return 0;
}
