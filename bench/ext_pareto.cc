/**
 * @file
 * Extension study: automated design-space exploration. Sweeps the
 * resilience co-design axes (WCDL, store-buffer size, CLQ sizing,
 * checkpoint-color pool, detector scheme), scores each point with
 * the CACTI-fitted hardware model plus a measured AVF campaign and
 * runtime overhead, and reports the Pareto frontier over (area,
 * runtime overhead, vulnerability) as turnpike-stats-v1 JSON.
 *
 * Output is deterministic at any TURNPIKE_JOBS (the CI determinism
 * job diffs BENCH_pareto.json across job counts).
 *
 * Environment:
 *  - TURNPIKE_BENCH_ICOUNT: per-run instruction budget (as usual);
 *  - TURNPIKE_PARETO_TRIALS: AVF trials per (point, workload) cell
 *    (default 12; the CI smoke uses a small count).
 */

#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "bench/common.hh"
#include "core/explorer.hh"
#include "workloads/suite.hh"

using namespace turnpike;
using namespace turnpike::bench;

namespace {

uint32_t
paretoTrials()
{
    constexpr uint32_t kDefault = 12;
    const char *env = std::getenv("TURNPIKE_PARETO_TRIALS");
    if (!env)
        return kDefault;
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < 1) {
        warn("TURNPIKE_PARETO_TRIALS='%s' is not a positive trial "
             "count; using the default %u", env, kDefault);
        return kDefault;
    }
    return static_cast<uint32_t>(v);
}

} // namespace

int
main()
{
    banner("Extension", "resilience design-space exploration "
                        "(Pareto frontier over area / overhead / "
                        "vulnerability)");

    ExplorerConfig cfg;
    cfg.specs = {findWorkload("CPU2006", "mcf"),
                 findWorkload("SPLASH3", "radix")};
    cfg.icount = benchInstBudget();
    cfg.trials = paretoTrials();
    cfg.seed = 20260808;
    cfg.sensorMissRate = 0.1;
    cfg.wcdls = {10, 40};
    cfg.sbSizes = {4, 12};
    cfg.clqDesigns = {ClqDesign::Compact};
    cfg.clqEntries = {2};
    cfg.colorPools = {0, 2};
    cfg.detectors = {"acoustic-parity", "secded-full",
                     "noisy-sensor"};

    std::printf("%zu-point grid x %zu workloads, %u AVF trials per "
                "cell\n\n", designGrid(cfg).size(), cfg.specs.size(),
                cfg.trials);

    std::vector<PointScore> scores = runExplorer(cfg);
    std::printf("%s\n", paretoTable(scores).c_str());

    uint64_t frontier = 0;
    for (const PointScore &s : scores)
        frontier += s.onFrontier ? 1 : 0;
    std::printf("frontier: %llu of %zu points\n\n",
                static_cast<unsigned long long>(frontier),
                scores.size());

    StatRegistry reg;
    reg.setMeta("trials_per_cell", std::to_string(cfg.trials));
    exportParetoStats(reg, scores);
    const std::string path = "BENCH_pareto.json";
    std::ofstream f(path);
    if (!f)
        fatal("cannot open %s", path.c_str());
    reg.dumpJson(f, /*include_host=*/false);
    std::printf("wrote %s\n", path.c_str());
    appendHistory("ext_pareto", path,
                  {{"points", double(scores.size())},
                   {"frontier_size", double(frontier)}});
    return 0;
}
