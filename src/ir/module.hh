/**
 * @file
 * Module: a compilation unit holding one or more functions and the
 * global data objects (arrays) they reference. Data objects define
 * the initial memory image a workload starts from.
 */

#ifndef TURNPIKE_IR_MODULE_HH_
#define TURNPIKE_IR_MODULE_HH_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace turnpike {

/** A statically allocated 64-bit-word array in the data segment. */
struct DataObject
{
    std::string name;
    uint64_t base = 0;           ///< byte address, 8-byte aligned
    uint64_t words = 0;          ///< size in 64-bit words
    std::vector<int64_t> init;   ///< initial values (zero-padded)
};

/** A compilation unit: functions plus the data segment. */
class Module
{
  public:
    explicit Module(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Create a function owned by this module. */
    Function &addFunction(const std::string &fn_name);

    std::vector<std::unique_ptr<Function>> &functions()
    {
        return functions_;
    }
    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }

    /**
     * Allocate a data object of @p words 64-bit words at the next
     * 64-byte-aligned address and return a stable reference to it
     * (objects live in a deque, so earlier references survive later
     * allocations). @p init may be shorter than @p words; the rest
     * is zero.
     */
    DataObject &addData(const std::string &obj_name, uint64_t words,
                        std::vector<int64_t> init = {});

    const std::deque<DataObject> &data() const { return data_; }

  private:
    std::string name_;
    std::vector<std::unique_ptr<Function>> functions_;
    std::deque<DataObject> data_;
    uint64_t next_data_ = layout::kDataBase;
};

} // namespace turnpike

#endif // TURNPIKE_IR_MODULE_HH_
