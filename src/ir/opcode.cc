#include "ir/opcode.hh"

#include "util/logging.hh"

namespace turnpike {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Li: return "li";
      case Op::Mov: return "mov";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::CmpEq: return "cmpeq";
      case Op::CmpNe: return "cmpne";
      case Op::CmpLt: return "cmplt";
      case Op::CmpLe: return "cmple";
      case Op::AddShl: return "addshl";
      case Op::Load: return "ld";
      case Op::Store: return "st";
      case Op::Ckpt: return "ckpt";
      case Op::Boundary: return "rgn";
      case Op::Br: return "br";
      case Op::Jmp: return "jmp";
      case Op::Halt: return "halt";
      case Op::Nop: return "nop";
      default: panic("opName: bad opcode %d", static_cast<int>(op));
    }
}

} // namespace turnpike
