#include "ir/opcode.hh"

#include "util/logging.hh"

namespace turnpike {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Li: return "li";
      case Op::Mov: return "mov";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::CmpEq: return "cmpeq";
      case Op::CmpNe: return "cmpne";
      case Op::CmpLt: return "cmplt";
      case Op::CmpLe: return "cmple";
      case Op::AddShl: return "addshl";
      case Op::Load: return "ld";
      case Op::Store: return "st";
      case Op::Ckpt: return "ckpt";
      case Op::Boundary: return "rgn";
      case Op::Br: return "br";
      case Op::Jmp: return "jmp";
      case Op::Halt: return "halt";
      case Op::Nop: return "nop";
      default: panic("opName: bad opcode %d", static_cast<int>(op));
    }
}

bool
isBinary(Op op)
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Shl: case Op::Shr: case Op::And: case Op::Or:
      case Op::Xor: case Op::CmpEq: case Op::CmpNe: case Op::CmpLt:
      case Op::CmpLe:
        return true;
      default:
        return false;
    }
}

bool
isTerminator(Op op)
{
    return op == Op::Br || op == Op::Jmp || op == Op::Halt;
}

bool
writesDst(Op op)
{
    if (isBinary(op))
        return true;
    return op == Op::Li || op == Op::Mov || op == Op::Load ||
        op == Op::AddShl;
}

bool
isMemOp(Op op)
{
    return op == Op::Load || op == Op::Store;
}

int
exLatency(Op op)
{
    switch (op) {
      case Op::Mul:
        return 3;
      case Op::Div:
        return 12;
      default:
        return 1;
    }
}

} // namespace turnpike
