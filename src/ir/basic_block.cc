#include "ir/basic_block.hh"

#include <cstddef>

#include "util/logging.hh"

namespace turnpike {

void
BasicBlock::insertAt(size_t pos, Instruction inst)
{
    TP_ASSERT(pos <= insts_.size(), "insertAt: pos %zu > size %zu",
              pos, insts_.size());
    insts_.insert(insts_.begin() + static_cast<ptrdiff_t>(pos),
                  std::move(inst));
}

void
BasicBlock::eraseAt(size_t pos)
{
    TP_ASSERT(pos < insts_.size(), "eraseAt: pos %zu >= size %zu",
              pos, insts_.size());
    insts_.erase(insts_.begin() + static_cast<ptrdiff_t>(pos));
}

bool
BasicBlock::hasTerminator() const
{
    return !insts_.empty() && isTerminator(insts_.back().op);
}

const Instruction &
BasicBlock::terminator() const
{
    TP_ASSERT(hasTerminator(), "block %s has no terminator",
              name_.c_str());
    return insts_.back();
}

} // namespace turnpike
