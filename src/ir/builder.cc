#include "ir/builder.hh"

#include "util/logging.hh"

namespace turnpike {

BasicBlock &
IRBuilder::cur()
{
    TP_ASSERT(cur_ != kNoBlock, "IRBuilder: no insertion block set");
    BasicBlock &b = fn_.block(cur_);
    TP_ASSERT(!b.hasTerminator(), "IRBuilder: block %s already terminated",
              b.name().c_str());
    return b;
}

Reg
IRBuilder::li(int64_t v)
{
    Reg d = reg();
    cur().append(makeLi(d, v));
    return d;
}

Reg
IRBuilder::mov(Reg src)
{
    Reg d = reg();
    cur().append(makeMov(d, src));
    return d;
}

Reg
IRBuilder::bin(Op op, Reg a, Reg b)
{
    Reg d = reg();
    cur().append(makeBin(op, d, a, b));
    return d;
}

Reg
IRBuilder::binImm(Op op, Reg a, int64_t imm)
{
    Reg d = reg();
    cur().append(makeBinImm(op, d, a, imm));
    return d;
}

Reg
IRBuilder::load(Reg base, int64_t off)
{
    Reg d = reg();
    cur().append(makeLoad(d, base, off));
    return d;
}

void
IRBuilder::store(Reg val, Reg base, int64_t off)
{
    cur().append(makeStore(val, base, off));
}

void
IRBuilder::binTo(Op op, Reg dst, Reg a, Reg b)
{
    cur().append(makeBin(op, dst, a, b));
}

void
IRBuilder::binImmTo(Op op, Reg dst, Reg a, int64_t imm)
{
    cur().append(makeBinImm(op, dst, a, imm));
}

void
IRBuilder::liTo(Reg dst, int64_t v)
{
    cur().append(makeLi(dst, v));
}

void
IRBuilder::movTo(Reg dst, Reg src)
{
    cur().append(makeMov(dst, src));
}

void
IRBuilder::loadTo(Reg dst, Reg base, int64_t off)
{
    cur().append(makeLoad(dst, base, off));
}

void
IRBuilder::br(Reg cond, BlockId if_true, BlockId if_false)
{
    BasicBlock &b = cur();
    b.append(makeBr(cond));
    b.succs() = {if_true, if_false};
}

void
IRBuilder::jmp(BlockId target)
{
    BasicBlock &b = cur();
    b.append(makeJmp());
    b.succs() = {target};
}

void
IRBuilder::halt()
{
    BasicBlock &b = cur();
    b.append(makeHalt());
    b.succs().clear();
}

} // namespace turnpike
