/**
 * @file
 * Textual dumps of IR functions and modules for debugging, tests,
 * and the compiler-explorer example.
 */

#ifndef TURNPIKE_IR_PRINTER_HH_
#define TURNPIKE_IR_PRINTER_HH_

#include <string>

#include "ir/module.hh"

namespace turnpike {

/** Dump one function, blocks in id order. */
std::string printFunction(const Function &fn);

/** Dump a whole module: data objects then functions. */
std::string printModule(const Module &mod);

} // namespace turnpike

#endif // TURNPIKE_IR_PRINTER_HH_
