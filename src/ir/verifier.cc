#include "ir/verifier.hh"

#include "util/logging.hh"

namespace turnpike {

std::vector<std::string>
verifyFunction(const Function &fn)
{
    std::vector<std::string> problems;
    auto complain = [&](std::string s) { problems.push_back(std::move(s)); };

    if (fn.entry() == kNoBlock) {
        complain("function has no entry block");
        return problems;
    }

    for (BlockId b = 0; b < fn.numBlocks(); b++) {
        const BasicBlock &blk = fn.block(b);
        const std::string where = strfmt("block %s(%u)",
                                         blk.name().c_str(), b);
        if (!blk.hasTerminator()) {
            complain(where + ": missing terminator");
            continue;
        }
        size_t expected_succs = 0;
        switch (blk.terminator().op) {
          case Op::Br:
            expected_succs = 2;
            break;
          case Op::Jmp:
            expected_succs = 1;
            break;
          case Op::Halt:
            expected_succs = 0;
            break;
          default:
            break;
        }
        if (blk.succs().size() != expected_succs) {
            complain(strfmt("%s: %s terminator with %zu successors",
                            where.c_str(), opName(blk.terminator().op),
                            blk.succs().size()));
        }
        for (BlockId s : blk.succs())
            if (s >= fn.numBlocks())
                complain(where + ": successor out of range");

        for (size_t i = 0; i < blk.size(); i++) {
            const Instruction &inst = blk.insts()[i];
            if (isTerminator(inst.op) && i + 1 != blk.size()) {
                complain(strfmt("%s: terminator at %zu not last",
                                where.c_str(), i));
            }
            auto check_reg = [&](Reg r, const char *role) {
                if (r != kNoReg && r >= fn.numRegs()) {
                    complain(strfmt("%s inst %zu: %s reg v%u out of "
                                    "range (%u regs)", where.c_str(), i,
                                    role, r, fn.numRegs()));
                }
            };
            if (writesDst(inst.op)) {
                if (inst.dst == kNoReg)
                    complain(strfmt("%s inst %zu: missing dst",
                                    where.c_str(), i));
                check_reg(inst.dst, "dst");
            }
            check_reg(inst.src0, "src0");
            check_reg(inst.src1, "src1");
            switch (inst.op) {
              case Op::Mov:
              case Op::Load:
              case Op::Ckpt:
              case Op::Br:
                if (inst.src0 == kNoReg)
                    complain(strfmt("%s inst %zu: %s missing src0",
                                    where.c_str(), i, opName(inst.op)));
                break;
              case Op::Store:
                if (inst.src0 == kNoReg || inst.src1 == kNoReg)
                    complain(strfmt("%s inst %zu: store missing operand",
                                    where.c_str(), i));
                break;
              default:
                if (isBinary(inst.op) && inst.src0 == kNoReg)
                    complain(strfmt("%s inst %zu: binary missing src0",
                                    where.c_str(), i));
                break;
            }
        }
    }
    return problems;
}

void
verifyOrDie(const Function &fn)
{
    auto problems = verifyFunction(fn);
    if (!problems.empty())
        panic("IR verification failed for %s: %s", fn.name().c_str(),
              problems.front().c_str());
}

} // namespace turnpike
