#include "ir/cfg.hh"

#include <algorithm>

#include "util/logging.hh"

namespace turnpike {

Cfg::Cfg(const Function &fn)
    : fn_(fn),
      preds_(fn.numBlocks()),
      rpo_index_(fn.numBlocks(), -1)
{
    TP_ASSERT(fn.entry() != kNoBlock, "Cfg: function %s has no entry",
              fn.name().c_str());

    for (BlockId b = 0; b < fn.numBlocks(); b++)
        for (BlockId s : fn.block(b).succs())
            preds_[s].push_back(b);

    // Iterative post-order DFS from the entry.
    std::vector<BlockId> post;
    std::vector<uint8_t> state(fn.numBlocks(), 0); // 0 new, 1 open, 2 done
    struct Frame { BlockId b; size_t next_succ; };
    std::vector<Frame> stack;
    stack.push_back({fn.entry(), 0});
    state[fn.entry()] = 1;
    while (!stack.empty()) {
        Frame &f = stack.back();
        const auto &succs = fn.block(f.b).succs();
        if (f.next_succ < succs.size()) {
            BlockId s = succs[f.next_succ++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.push_back({s, 0});
            }
        } else {
            state[f.b] = 2;
            post.push_back(f.b);
            stack.pop_back();
        }
    }
    rpo_.assign(post.rbegin(), post.rend());
    for (size_t i = 0; i < rpo_.size(); i++)
        rpo_index_[rpo_[i]] = static_cast<int>(i);
}

} // namespace turnpike
