#include "ir/liveness.hh"

#include "util/logging.hh"

namespace turnpike {

void
RegSet::insert(Reg r)
{
    TP_ASSERT(r < universe_, "RegSet::insert out of range: %u", r);
    words_[r >> 6] |= uint64_t(1) << (r & 63);
}

void
RegSet::erase(Reg r)
{
    TP_ASSERT(r < universe_, "RegSet::erase out of range: %u", r);
    words_[r >> 6] &= ~(uint64_t(1) << (r & 63));
}

bool
RegSet::contains(Reg r) const
{
    if (r >= universe_)
        return false;
    return (words_[r >> 6] >> (r & 63)) & 1;
}

bool
RegSet::unionWith(const RegSet &other)
{
    TP_ASSERT(universe_ == other.universe_, "RegSet universe mismatch");
    bool changed = false;
    for (size_t i = 0; i < words_.size(); i++) {
        uint64_t merged = words_[i] | other.words_[i];
        if (merged != words_[i]) {
            words_[i] = merged;
            changed = true;
        }
    }
    return changed;
}

void
RegSet::subtract(const RegSet &other)
{
    TP_ASSERT(universe_ == other.universe_, "RegSet universe mismatch");
    for (size_t i = 0; i < words_.size(); i++)
        words_[i] &= ~other.words_[i];
}

uint32_t
RegSet::count() const
{
    uint32_t n = 0;
    for (uint64_t w : words_)
        n += static_cast<uint32_t>(__builtin_popcountll(w));
    return n;
}

std::vector<Reg>
RegSet::toVector() const
{
    std::vector<Reg> out;
    for (size_t i = 0; i < words_.size(); i++) {
        uint64_t w = words_[i];
        while (w) {
            int bit = __builtin_ctzll(w);
            out.push_back(static_cast<Reg>(i * 64 + bit));
            w &= w - 1;
        }
    }
    return out;
}

void
addUses(const Instruction &inst, RegSet &set)
{
    if (inst.src0 != kNoReg)
        set.insert(inst.src0);
    if (inst.src1 != kNoReg)
        set.insert(inst.src1);
}

Liveness::Liveness(const Cfg &cfg)
    : cfg_(cfg)
{
    const Function &fn = cfg.function();
    uint32_t n = fn.numRegs();
    live_in_.assign(fn.numBlocks(), RegSet(n));
    live_out_.assign(fn.numBlocks(), RegSet(n));

    // Per-block use (upward-exposed) and def sets.
    std::vector<RegSet> use(fn.numBlocks(), RegSet(n));
    std::vector<RegSet> def(fn.numBlocks(), RegSet(n));
    for (BlockId b : cfg.rpo()) {
        for (const Instruction &inst : fn.block(b).insts()) {
            if (inst.src0 != kNoReg && !def[b].contains(inst.src0))
                use[b].insert(inst.src0);
            if (inst.src1 != kNoReg && !def[b].contains(inst.src1))
                use[b].insert(inst.src1);
            if (writesDst(inst.op) && inst.dst != kNoReg)
                def[b].insert(inst.dst);
        }
    }

    // Iterate to fixpoint, blocks in reverse RPO for fast
    // convergence on reducible graphs.
    bool changed = true;
    const auto &rpo = cfg.rpo();
    while (changed) {
        changed = false;
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            BlockId b = *it;
            RegSet out(n);
            for (BlockId s : fn.block(b).succs())
                out.unionWith(live_in_[s]);
            if (!(out == live_out_[b])) {
                live_out_[b] = out;
                changed = true;
            }
            RegSet in = live_out_[b];
            in.subtract(def[b]);
            in.unionWith(use[b]);
            if (!(in == live_in_[b])) {
                live_in_[b] = in;
                changed = true;
            }
        }
    }
}

RegSet
Liveness::liveBefore(BlockId b, size_t index) const
{
    const BasicBlock &blk = cfg_.function().block(b);
    TP_ASSERT(index <= blk.size(), "liveBefore: index %zu > block size",
              index);
    RegSet live = live_out_[b];
    const auto &insts = blk.insts();
    for (size_t i = insts.size(); i > index; i--) {
        const Instruction &inst = insts[i - 1];
        if (writesDst(inst.op) && inst.dst != kNoReg)
            live.erase(inst.dst);
        addUses(inst, live);
    }
    return live;
}

} // namespace turnpike
