/**
 * @file
 * Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm.
 */

#ifndef TURNPIKE_IR_DOMINATORS_HH_
#define TURNPIKE_IR_DOMINATORS_HH_

#include <vector>

#include "ir/cfg.hh"

namespace turnpike {

/** Immediate-dominator tree for the reachable part of a CFG. */
class DominatorTree
{
  public:
    explicit DominatorTree(const Cfg &cfg);

    /**
     * Immediate dominator of @p b; the entry's idom is itself;
     * kNoBlock for unreachable blocks.
     */
    BlockId idom(BlockId b) const { return idom_[b]; }

    /** True if @p a dominates @p b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

  private:
    const Cfg &cfg_;
    std::vector<BlockId> idom_;
};

} // namespace turnpike

#endif // TURNPIKE_IR_DOMINATORS_HH_
