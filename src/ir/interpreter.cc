#include "ir/interpreter.hh"

#include "util/logging.hh"

namespace turnpike {

const int64_t *
MemoryImage::farPageIfPresent(uint64_t num) const
{
    auto it = far_.find(num);
    return it == far_.end() ? nullptr : pages_[it->second].data();
}

int64_t *
MemoryImage::pageFor(uint64_t num)
{
    TP_ASSERT(pages_.size() < ~uint32_t(0) - 1, "memory image: too "
              "many pages");
    if (num < kDirectPages) {
        if (num >= direct_.size())
            direct_.resize(static_cast<size_t>(num) + 1, 0);
        uint32_t &slot = direct_[num];
        if (slot == 0) {
            pages_.emplace_back(kPageWords, 0);
            slot = static_cast<uint32_t>(pages_.size());
        }
        return pages_[slot - 1].data();
    }
    auto it = far_.find(num);
    if (it == far_.end()) {
        it = far_.emplace(num, static_cast<uint32_t>(pages_.size()))
                 .first;
        pages_.emplace_back(kPageWords, 0);
    }
    return pages_[it->second].data();
}

void
MemoryImage::loadModule(const Module &mod)
{
    for (const DataObject &obj : mod.data())
        for (size_t i = 0; i < obj.init.size(); i++)
            write(obj.base + i * 8, obj.init[i]);
}

std::vector<int64_t>
MemoryImage::dumpRange(uint64_t base, uint64_t words) const
{
    std::vector<int64_t> out;
    out.reserve(words);
    for (uint64_t i = 0; i < words; i++)
        out.push_back(read(base + i * 8));
    return out;
}

uint64_t
MemoryImage::dataHash(const Module &mod) const
{
    uint64_t h = 1469598103934665603ull; // FNV offset basis
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (const DataObject &obj : mod.data()) {
        for (uint64_t i = 0; i < obj.words; i++) {
            mix(obj.base + i * 8);
            mix(static_cast<uint64_t>(read(obj.base + i * 8)));
        }
    }
    return h;
}

InterpResult
interpret(const Module &mod, const Function &fn, uint64_t step_limit)
{
    InterpResult result;
    result.memory.loadModule(mod);
    MemoryImage &mem = result.memory;
    InterpStats &st = result.stats;

    std::vector<int64_t> regs(fn.numRegs(), 0);
    auto rd = [&](Reg r) -> int64_t {
        TP_ASSERT(r != kNoReg, "interp: read of missing operand");
        return regs[r];
    };
    auto operand2 = [&](const Instruction &inst) -> int64_t {
        return inst.src1 == kNoReg ? inst.imm : regs[inst.src1];
    };

    BlockId cur = fn.entry();
    size_t pc = 0;
    uint64_t region_insts = 0;

    while (st.insts < step_limit) {
        const BasicBlock &blk = fn.block(cur);
        TP_ASSERT(pc < blk.size(), "interp: fell off block %s",
                  blk.name().c_str());
        const Instruction &inst = blk.insts()[pc];
        st.insts++;
        region_insts++;
        pc++;

        switch (inst.op) {
          case Op::Li:
            regs[inst.dst] = inst.imm;
            break;
          case Op::Mov:
            regs[inst.dst] = rd(inst.src0);
            break;
          case Op::Add:
            regs[inst.dst] = rd(inst.src0) + operand2(inst);
            break;
          case Op::Sub:
            regs[inst.dst] = rd(inst.src0) - operand2(inst);
            break;
          case Op::Mul:
            regs[inst.dst] = rd(inst.src0) * operand2(inst);
            break;
          case Op::Div: {
            int64_t d = operand2(inst);
            regs[inst.dst] = d == 0 ? 0 : rd(inst.src0) / d;
            break;
          }
          case Op::Shl:
            regs[inst.dst] = static_cast<int64_t>(
                static_cast<uint64_t>(rd(inst.src0))
                << (operand2(inst) & 63));
            break;
          case Op::Shr:
            regs[inst.dst] = rd(inst.src0) >> (operand2(inst) & 63);
            break;
          case Op::And:
            regs[inst.dst] = rd(inst.src0) & operand2(inst);
            break;
          case Op::Or:
            regs[inst.dst] = rd(inst.src0) | operand2(inst);
            break;
          case Op::Xor:
            regs[inst.dst] = rd(inst.src0) ^ operand2(inst);
            break;
          case Op::CmpEq:
            regs[inst.dst] = rd(inst.src0) == operand2(inst);
            break;
          case Op::CmpNe:
            regs[inst.dst] = rd(inst.src0) != operand2(inst);
            break;
          case Op::CmpLt:
            regs[inst.dst] = rd(inst.src0) < operand2(inst);
            break;
          case Op::CmpLe:
            regs[inst.dst] = rd(inst.src0) <= operand2(inst);
            break;
          case Op::AddShl:
            regs[inst.dst] = rd(inst.src0) +
                static_cast<int64_t>(
                    static_cast<uint64_t>(rd(inst.src1))
                    << (inst.imm & 63));
            break;
          case Op::Load: {
            uint64_t addr =
                static_cast<uint64_t>(rd(inst.src0) + inst.imm);
            regs[inst.dst] = mem.read(addr);
            st.loads++;
            break;
          }
          case Op::Store: {
            uint64_t addr =
                static_cast<uint64_t>(rd(inst.src1) + inst.imm);
            mem.write(addr, rd(inst.src0));
            if (inst.skind == StoreKind::Spill)
                st.storesSpill++;
            else
                st.storesApp++;
            break;
          }
          case Op::Ckpt:
            mem.write(layout::ckptSlot(inst.src0, 0), rd(inst.src0));
            st.storesCkpt++;
            break;
          case Op::Boundary:
            st.boundaries++;
            // The boundary marker itself is not a real instruction.
            st.insts--;
            region_insts--;
            if (region_insts > 0)
                st.regionSize.sample(
                    static_cast<double>(region_insts));
            region_insts = 0;
            break;
          case Op::Br: {
            st.branches++;
            bool taken = rd(inst.src0) != 0;
            cur = blk.succs()[taken ? 0 : 1];
            pc = 0;
            break;
          }
          case Op::Jmp:
            cur = blk.succs()[0];
            pc = 0;
            break;
          case Op::Halt:
            if (region_insts > 1)
                st.regionSize.sample(
                    static_cast<double>(region_insts - 1));
            result.reason = StopReason::Halted;
            return result;
          case Op::Nop:
            break;
          default:
            panic("interp: bad opcode %d", static_cast<int>(inst.op));
        }
    }
    result.reason = StopReason::StepLimit;
    return result;
}

} // namespace turnpike
