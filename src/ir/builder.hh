/**
 * @file
 * IRBuilder: convenience layer for constructing mini-IR functions.
 * Used by the workload generator, tests, and examples.
 */

#ifndef TURNPIKE_IR_BUILDER_HH_
#define TURNPIKE_IR_BUILDER_HH_

#include "ir/function.hh"

namespace turnpike {

/**
 * Builds instructions into a current insertion block of a function.
 * All emit helpers return the destination register when one exists.
 */
class IRBuilder
{
  public:
    explicit IRBuilder(Function &fn) : fn_(fn) {}

    /** Create a block (does not change the insertion point). */
    BlockId newBlock(const std::string &name) { return fn_.addBlock(name); }

    /** Set the insertion point to block @p b. */
    void setBlock(BlockId b) { cur_ = b; }

    BlockId currentBlock() const { return cur_; }

    Function &function() { return fn_; }

    /** Allocate a fresh virtual register. */
    Reg reg() { return fn_.newReg(); }

    Reg li(int64_t v);
    Reg mov(Reg src);
    Reg bin(Op op, Reg a, Reg b);
    Reg binImm(Op op, Reg a, int64_t imm);
    Reg add(Reg a, Reg b) { return bin(Op::Add, a, b); }
    Reg addImm(Reg a, int64_t v) { return binImm(Op::Add, a, v); }
    Reg mul(Reg a, Reg b) { return bin(Op::Mul, a, b); }
    Reg load(Reg base, int64_t off = 0);
    void store(Reg val, Reg base, int64_t off = 0);

    /** Emit a binary op into an existing destination register. */
    void binTo(Op op, Reg dst, Reg a, Reg b);
    /** Emit a reg-imm binary op into an existing destination. */
    void binImmTo(Op op, Reg dst, Reg a, int64_t imm);
    /** Emit li into an existing destination register. */
    void liTo(Reg dst, int64_t v);
    /** Emit mov into an existing destination register. */
    void movTo(Reg dst, Reg src);
    /** Emit a load into an existing destination register. */
    void loadTo(Reg dst, Reg base, int64_t off = 0);

    /** Terminate with a conditional branch. */
    void br(Reg cond, BlockId if_true, BlockId if_false);
    /** Terminate with an unconditional jump. */
    void jmp(BlockId target);
    /** Terminate with halt. */
    void halt();

  private:
    BasicBlock &cur();

    Function &fn_;
    BlockId cur_ = kNoBlock;
};

} // namespace turnpike

#endif // TURNPIKE_IR_BUILDER_HH_
