#include "ir/loop_info.hh"

#include <algorithm>
#include <set>

#include "util/logging.hh"

namespace turnpike {

LoopInfo::LoopInfo(const Cfg &cfg, const DominatorTree &dt)
    : innermost_(cfg.function().numBlocks(), -1)
{
    const Function &fn = cfg.function();

    // Find back edges: b -> h where h dominates b. Merge loops that
    // share a header.
    std::vector<std::set<BlockId>> bodies; // parallel to loops_
    for (BlockId b : cfg.rpo()) {
        for (BlockId h : fn.block(b).succs()) {
            if (!dt.dominates(h, b))
                continue;
            int li = -1;
            for (size_t i = 0; i < loops_.size(); i++) {
                if (loops_[i].header == h) {
                    li = static_cast<int>(i);
                    break;
                }
            }
            if (li < 0) {
                loops_.push_back({});
                loops_.back().header = h;
                bodies.push_back({h});
                li = static_cast<int>(loops_.size()) - 1;
            }
            loops_[static_cast<size_t>(li)].latches.push_back(b);
            // Collect the loop body by walking predecessors from the
            // latch until the header.
            std::vector<BlockId> work{b};
            auto &body = bodies[static_cast<size_t>(li)];
            while (!work.empty()) {
                BlockId x = work.back();
                work.pop_back();
                if (body.count(x))
                    continue;
                body.insert(x);
                for (BlockId p : cfg.preds(x))
                    if (cfg.reachable(p))
                        work.push_back(p);
            }
        }
    }

    for (size_t i = 0; i < loops_.size(); i++)
        loops_[i].blocks.assign(bodies[i].begin(), bodies[i].end());

    // Nesting: loop A is inside loop B if A's header is in B's body
    // and A != B. Depth = number of enclosing loops + 1.
    for (size_t i = 0; i < loops_.size(); i++) {
        int best_parent = -1;
        size_t best_size = SIZE_MAX;
        int depth = 1;
        for (size_t j = 0; j < loops_.size(); j++) {
            if (i == j)
                continue;
            if (bodies[j].count(loops_[i].header) &&
                bodies[j].size() > bodies[i].size()) {
                depth++;
                if (bodies[j].size() < best_size) {
                    best_size = bodies[j].size();
                    best_parent = static_cast<int>(j);
                }
            }
        }
        loops_[i].depth = depth;
        loops_[i].parent = best_parent;
    }

    // Innermost loop per block: the containing loop with the fewest
    // blocks.
    for (size_t i = 0; i < loops_.size(); i++) {
        for (BlockId b : loops_[i].blocks) {
            int cur = innermost_[b];
            if (cur < 0 ||
                bodies[i].size() <
                    bodies[static_cast<size_t>(cur)].size()) {
                innermost_[b] = static_cast<int>(i);
            }
        }
    }

    // Preheader: unique reachable predecessor of the header outside
    // the loop. Exit: unique block outside the loop that is a
    // successor of some loop block.
    for (size_t i = 0; i < loops_.size(); i++) {
        Loop &loop = loops_[i];
        BlockId pre = kNoBlock;
        int pre_count = 0;
        for (BlockId p : cfg.preds(loop.header)) {
            if (!cfg.reachable(p) || bodies[i].count(p))
                continue;
            pre = p;
            pre_count++;
        }
        loop.preheader = (pre_count == 1) ? pre : kNoBlock;

        std::set<BlockId> exits;
        for (BlockId b : loop.blocks)
            for (BlockId s : fn.block(b).succs())
                if (!bodies[i].count(s))
                    exits.insert(s);
        loop.exit = (exits.size() == 1) ? *exits.begin() : kNoBlock;
    }
}

int
LoopInfo::depth(BlockId b) const
{
    int li = innermost_[b];
    return li < 0 ? 0 : loops_[static_cast<size_t>(li)].depth;
}

bool
LoopInfo::contains(int loop_index, BlockId b) const
{
    TP_ASSERT(loop_index >= 0 &&
              loop_index < static_cast<int>(loops_.size()),
              "bad loop index %d", loop_index);
    const auto &blocks = loops_[static_cast<size_t>(loop_index)].blocks;
    return std::find(blocks.begin(), blocks.end(), b) != blocks.end();
}

} // namespace turnpike
