#include "ir/module.hh"

#include "util/logging.hh"

namespace turnpike {

Function &
Module::addFunction(const std::string &fn_name)
{
    functions_.push_back(std::make_unique<Function>(fn_name));
    return *functions_.back();
}

DataObject &
Module::addData(const std::string &obj_name, uint64_t words,
                std::vector<int64_t> init)
{
    TP_ASSERT(words > 0, "data object %s needs size", obj_name.c_str());
    TP_ASSERT(init.size() <= words, "init larger than object %s",
              obj_name.c_str());
    DataObject obj;
    obj.name = obj_name;
    obj.base = next_data_;
    obj.words = words;
    obj.init = std::move(init);
    next_data_ += words * 8;
    // Keep objects 64-byte (cache-line) aligned.
    next_data_ = (next_data_ + 63) & ~uint64_t(63);
    TP_ASSERT(next_data_ < layout::kSpillBase,
              "data segment overflow in module %s", name_.c_str());
    data_.push_back(std::move(obj));
    return data_.back();
}

} // namespace turnpike
