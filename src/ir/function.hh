/**
 * @file
 * Function of the Turnpike mini-IR: owns its basic blocks, tracks the
 * virtual register count, and (after region formation) the number of
 * static regions.
 */

#ifndef TURNPIKE_IR_FUNCTION_HH_
#define TURNPIKE_IR_FUNCTION_HH_

#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.hh"

namespace turnpike {

/** Address-space layout constants shared by compiler and simulator. */
namespace layout {

/** Base of global data objects. */
constexpr uint64_t kDataBase = 0x10000;
/** Base of the register-spill area (one 8-byte slot per spill). */
constexpr uint64_t kSpillBase = 0x8000000;
/** Base of checkpoint storage: slot(reg, color) layout below. */
constexpr uint64_t kCkptBase = 0xc000000;
/** Number of colors per register in the checkpoint storage pool. */
constexpr int kNumColors = 4;

/**
 * Slot index used by quarantined (non-colored) checkpoints; their
 * stores sit in the store buffer until verified, so reusing one
 * fixed slot per register is safe (see DESIGN.md).
 */
constexpr int kQuarantineColor = kNumColors;

/** Slots per register: the colors plus the quarantine slot. */
constexpr int kSlotsPerReg = kNumColors + 1;

/** Address of checkpoint slot for @p reg with @p color. */
constexpr uint64_t
ckptSlot(uint32_t reg, int color)
{
    return kCkptBase + static_cast<uint64_t>(reg) * (8 * kSlotsPerReg) +
        static_cast<uint64_t>(color) * 8;
}

/** Address of spill slot @p index. */
constexpr uint64_t
spillSlot(uint32_t index)
{
    return kSpillBase + static_cast<uint64_t>(index) * 8;
}

} // namespace layout

/**
 * A single function: the unit of compilation and simulation. Blocks
 * are owned and addressed by BlockId; block 0 need not be the entry
 * (entry() names it explicitly).
 */
class Function
{
  public:
    explicit Function(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Create a new empty block and return its id. */
    BlockId addBlock(const std::string &block_name);

    BasicBlock &block(BlockId id);
    const BasicBlock &block(BlockId id) const;

    size_t numBlocks() const { return blocks_.size(); }

    BlockId entry() const { return entry_; }
    void setEntry(BlockId b) { entry_ = b; }

    /** Allocate a fresh virtual register. */
    Reg newReg() { return num_regs_++; }

    Reg numRegs() const { return num_regs_; }
    void setNumRegs(Reg n) { num_regs_ = n; }

    /** Number of static regions after region formation (0 before). */
    uint32_t numRegions() const { return num_regions_; }
    void setNumRegions(uint32_t n) { num_regions_ = n; }

    /** Total instruction count across blocks. */
    size_t totalInsts() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    BlockId entry_ = kNoBlock;
    Reg num_regs_ = 0;
    uint32_t num_regions_ = 0;
};

} // namespace turnpike

#endif // TURNPIKE_IR_FUNCTION_HH_
