#include "ir/instruction.hh"

#include "util/logging.hh"

namespace turnpike {

int
Instruction::numSrcs() const
{
    int n = 0;
    if (src0 != kNoReg)
        n++;
    if (src1 != kNoReg)
        n++;
    return n;
}

bool
Instruction::reads(Reg r) const
{
    return (src0 != kNoReg && src0 == r) || (src1 != kNoReg && src1 == r);
}

std::string
Instruction::toString() const
{
    auto reg = [](Reg r) { return strfmt("v%u", r); };
    switch (op) {
      case Op::Li:
        return strfmt("%s = li %lld", reg(dst).c_str(),
                      static_cast<long long>(imm));
      case Op::Mov:
        return strfmt("%s = mov %s", reg(dst).c_str(), reg(src0).c_str());
      case Op::Load:
        return strfmt("%s = ld [%s + %lld]", reg(dst).c_str(),
                      reg(src0).c_str(), static_cast<long long>(imm));
      case Op::Store:
        return strfmt("st%s %s, [%s + %lld]",
                      skind == StoreKind::Spill ? ".spill" : "",
                      reg(src0).c_str(), reg(src1).c_str(),
                      static_cast<long long>(imm));
      case Op::Ckpt:
        return strfmt("ckpt %s", reg(src0).c_str());
      case Op::Boundary:
        return strfmt("rgn #%lld", static_cast<long long>(imm));
      case Op::Br:
        return strfmt("br %s", reg(src0).c_str());
      case Op::Jmp:
        return "jmp";
      case Op::Halt:
        return "halt";
      case Op::Nop:
        return "nop";
      case Op::AddShl:
        return strfmt("%s = addshl %s, %s, %lld", reg(dst).c_str(),
                      reg(src0).c_str(), reg(src1).c_str(),
                      static_cast<long long>(imm));
      default:
        break;
    }
    if (isBinary(op)) {
        if (src1 == kNoReg) {
            return strfmt("%s = %s %s, %lld", reg(dst).c_str(), opName(op),
                          reg(src0).c_str(), static_cast<long long>(imm));
        }
        return strfmt("%s = %s %s, %s", reg(dst).c_str(), opName(op),
                      reg(src0).c_str(), reg(src1).c_str());
    }
    panic("Instruction::toString: bad opcode %d", static_cast<int>(op));
}

Instruction
makeLi(Reg dst, int64_t imm)
{
    Instruction i;
    i.op = Op::Li;
    i.dst = dst;
    i.imm = imm;
    return i;
}

Instruction
makeMov(Reg dst, Reg src)
{
    Instruction i;
    i.op = Op::Mov;
    i.dst = dst;
    i.src0 = src;
    return i;
}

Instruction
makeBin(Op op, Reg dst, Reg a, Reg b)
{
    TP_ASSERT(isBinary(op), "makeBin: %s is not binary", opName(op));
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.src0 = a;
    i.src1 = b;
    return i;
}

Instruction
makeBinImm(Op op, Reg dst, Reg a, int64_t imm)
{
    TP_ASSERT(isBinary(op), "makeBinImm: %s is not binary", opName(op));
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.src0 = a;
    i.imm = imm;
    return i;
}

Instruction
makeLoad(Reg dst, Reg base, int64_t off)
{
    Instruction i;
    i.op = Op::Load;
    i.dst = dst;
    i.src0 = base;
    i.imm = off;
    return i;
}

Instruction
makeStore(Reg val, Reg base, int64_t off, StoreKind kind)
{
    Instruction i;
    i.op = Op::Store;
    i.src0 = val;
    i.src1 = base;
    i.imm = off;
    i.skind = kind;
    return i;
}

Instruction
makeCkpt(Reg r)
{
    Instruction i;
    i.op = Op::Ckpt;
    i.src0 = r;
    i.skind = StoreKind::Ckpt;
    return i;
}

Instruction
makeBoundary(int64_t region_id)
{
    Instruction i;
    i.op = Op::Boundary;
    i.imm = region_id;
    return i;
}

Instruction
makeBr(Reg cond)
{
    Instruction i;
    i.op = Op::Br;
    i.src0 = cond;
    return i;
}

Instruction
makeJmp()
{
    Instruction i;
    i.op = Op::Jmp;
    return i;
}

Instruction
makeHalt()
{
    Instruction i;
    i.op = Op::Halt;
    return i;
}

} // namespace turnpike
