#include "ir/printer.hh"

#include <sstream>

#include "util/logging.hh"

namespace turnpike {

std::string
printFunction(const Function &fn)
{
    std::ostringstream out;
    out << "func " << fn.name() << " (regs=" << fn.numRegs()
        << ", entry=" << fn.entry() << ")\n";
    for (BlockId b = 0; b < fn.numBlocks(); b++) {
        const BasicBlock &blk = fn.block(b);
        out << blk.name() << ":  ; id=" << b;
        if (!blk.succs().empty()) {
            out << " succs=[";
            for (size_t i = 0; i < blk.succs().size(); i++) {
                if (i)
                    out << ",";
                out << blk.succs()[i];
            }
            out << "]";
        }
        out << "\n";
        for (const Instruction &inst : blk.insts())
            out << "    " << inst.toString() << "\n";
    }
    return out.str();
}

std::string
printModule(const Module &mod)
{
    std::ostringstream out;
    out << "module " << mod.name() << "\n";
    for (const DataObject &d : mod.data()) {
        out << "data " << d.name << " @0x" << std::hex << d.base
            << std::dec << " words=" << d.words << "\n";
    }
    for (const auto &fn : mod.functions())
        out << printFunction(*fn);
    return out.str();
}

} // namespace turnpike
