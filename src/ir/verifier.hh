/**
 * @file
 * Structural verifier for mini-IR functions. Catches malformed IR
 * early: missing terminators, bad successor arities, out-of-range
 * registers, and (when regions are formed) boundary invariants.
 */

#ifndef TURNPIKE_IR_VERIFIER_HH_
#define TURNPIKE_IR_VERIFIER_HH_

#include <string>
#include <vector>

#include "ir/function.hh"

namespace turnpike {

/**
 * Verify @p fn; returns the list of problems found (empty when the
 * function is well-formed).
 */
std::vector<std::string> verifyFunction(const Function &fn);

/** Verify and panic with the first problem if any. */
void verifyOrDie(const Function &fn);

} // namespace turnpike

#endif // TURNPIKE_IR_VERIFIER_HH_
