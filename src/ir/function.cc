#include "ir/function.hh"

#include "util/logging.hh"

namespace turnpike {

BlockId
Function::addBlock(const std::string &block_name)
{
    BlockId id = static_cast<BlockId>(blocks_.size());
    blocks_.push_back(std::make_unique<BasicBlock>(id, block_name));
    if (entry_ == kNoBlock)
        entry_ = id;
    return id;
}

BasicBlock &
Function::block(BlockId id)
{
    TP_ASSERT(id < blocks_.size(), "bad block id %u", id);
    return *blocks_[id];
}

const BasicBlock &
Function::block(BlockId id) const
{
    TP_ASSERT(id < blocks_.size(), "bad block id %u", id);
    return *blocks_[id];
}

size_t
Function::totalInsts() const
{
    size_t n = 0;
    for (const auto &b : blocks_)
        n += b->size();
    return n;
}

} // namespace turnpike
