/**
 * @file
 * Backward liveness dataflow over virtual registers, plus a dynamic
 * bitset (RegSet) reused by several passes. Eager checkpointing,
 * pruning, LICM sinking and register allocation all consume this.
 */

#ifndef TURNPIKE_IR_LIVENESS_HH_
#define TURNPIKE_IR_LIVENESS_HH_

#include <cstdint>
#include <vector>

#include "ir/cfg.hh"

namespace turnpike {

/** A fixed-universe bitset over register ids. */
class RegSet
{
  public:
    RegSet() = default;
    explicit RegSet(uint32_t universe)
        : words_((universe + 63) / 64, 0), universe_(universe)
    {}

    void insert(Reg r);
    void erase(Reg r);
    bool contains(Reg r) const;

    /** this |= other; returns true if this changed. */
    bool unionWith(const RegSet &other);

    /** this &= ~other. */
    void subtract(const RegSet &other);

    bool operator==(const RegSet &other) const
    {
        return words_ == other.words_;
    }

    uint32_t universe() const { return universe_; }

    /** Number of set bits. */
    uint32_t count() const;

    /** Enumerate set bits in ascending order. */
    std::vector<Reg> toVector() const;

  private:
    std::vector<uint64_t> words_;
    uint32_t universe_ = 0;
};

/** Per-block liveness facts for one function. */
class Liveness
{
  public:
    explicit Liveness(const Cfg &cfg);

    const RegSet &liveIn(BlockId b) const { return live_in_[b]; }
    const RegSet &liveOut(BlockId b) const { return live_out_[b]; }

    /**
     * Registers live immediately before instruction @p index of
     * block @p b (index == size means live-out of the block).
     * Computed by a backward walk from the block's live-out.
     */
    RegSet liveBefore(BlockId b, size_t index) const;

  private:
    const Cfg &cfg_;
    std::vector<RegSet> live_in_;
    std::vector<RegSet> live_out_;
};

/** Add @p inst's register uses to @p set. */
void addUses(const Instruction &inst, RegSet &set);

} // namespace turnpike

#endif // TURNPIKE_IR_LIVENESS_HH_
