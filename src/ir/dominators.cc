#include "ir/dominators.hh"

#include "util/logging.hh"

namespace turnpike {

DominatorTree::DominatorTree(const Cfg &cfg)
    : cfg_(cfg),
      idom_(cfg.function().numBlocks(), kNoBlock)
{
    const Function &fn = cfg.function();
    const auto &rpo = cfg.rpo();
    if (rpo.empty())
        return;
    BlockId entry = fn.entry();
    idom_[entry] = entry;

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (cfg.rpoIndex(a) > cfg.rpoIndex(b))
                a = idom_[a];
            while (cfg.rpoIndex(b) > cfg.rpoIndex(a))
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : rpo) {
            if (b == entry)
                continue;
            BlockId new_idom = kNoBlock;
            for (BlockId p : cfg.preds(b)) {
                if (!cfg.reachable(p) || idom_[p] == kNoBlock)
                    continue;
                new_idom = (new_idom == kNoBlock)
                    ? p : intersect(p, new_idom);
            }
            TP_ASSERT(new_idom != kNoBlock,
                      "reachable block %u has no processed pred", b);
            if (idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
}

bool
DominatorTree::dominates(BlockId a, BlockId b) const
{
    if (!cfg_.reachable(a) || !cfg_.reachable(b))
        return false;
    BlockId entry = cfg_.function().entry();
    while (true) {
        if (b == a)
            return true;
        if (b == entry)
            return false;
        b = idom_[b];
    }
}

} // namespace turnpike
