/**
 * @file
 * Opcode definitions and static traits for the Turnpike mini-IR.
 *
 * The IR is a RISC-like, register-based, non-SSA representation over
 * 64-bit integer values. Binary arithmetic accepts either two
 * register sources or a register and an immediate (when src1 is
 * kNoReg, the immediate is the second operand). Two pseudo ops carry
 * the resilience semantics: Ckpt (checkpoint a register to its
 * memory slot) and Boundary (region boundary marker; assigned a
 * static region id by region formation).
 */

#ifndef TURNPIKE_IR_OPCODE_HH_
#define TURNPIKE_IR_OPCODE_HH_

#include <cstdint>

namespace turnpike {

/** Operation kinds of the mini-IR and machine ISA. */
enum class Op : uint8_t {
    Li,       ///< dst = imm
    Mov,      ///< dst = src0
    Add,      ///< dst = src0 + (src1|imm)
    Sub,      ///< dst = src0 - (src1|imm)
    Mul,      ///< dst = src0 * (src1|imm)
    Div,      ///< dst = src0 / (src1|imm), div-by-zero yields 0
    Shl,      ///< dst = src0 << ((src1|imm) & 63)
    Shr,      ///< dst = (int64)src0 >> ((src1|imm) & 63)
    And,      ///< dst = src0 & (src1|imm)
    Or,       ///< dst = src0 | (src1|imm)
    Xor,      ///< dst = src0 ^ (src1|imm)
    CmpEq,    ///< dst = src0 == (src1|imm)
    CmpNe,    ///< dst = src0 != (src1|imm)
    CmpLt,    ///< dst = src0 <  (src1|imm), signed
    CmpLe,    ///< dst = src0 <= (src1|imm), signed
    AddShl,   ///< dst = src0 + (src1 << imm); ARM shifted-operand add
    Load,     ///< dst = mem64[src0 + imm]
    Store,    ///< mem64[src1 + imm] = src0
    Ckpt,     ///< checkpoint register src0 (pseudo; lowered to store)
    Boundary, ///< region boundary marker; imm = static region id
    Br,       ///< if (src0 != 0) goto succ0 else goto succ1
    Jmp,      ///< goto succ0
    Halt,     ///< terminate the program
    Nop,      ///< no effect
    NumOps,   ///< sentinel
};

/** Human-readable mnemonic, e.g. "add". */
const char *opName(Op op);

/** True for the two-operand arithmetic/compare ops (Add..CmpLe). */
bool isBinary(Op op);

/** True for Br/Jmp/Halt — the only legal block terminators. */
bool isTerminator(Op op);

/** True if the op writes a destination register. */
bool writesDst(Op op);

/** True for ops that access data memory (Load/Store; not Ckpt). */
bool isMemOp(Op op);

/**
 * Execute-stage latency of the op in cycles for the in-order
 * pipeline model (Loads additionally pay the cache access).
 */
int exLatency(Op op);

} // namespace turnpike

#endif // TURNPIKE_IR_OPCODE_HH_
