/**
 * @file
 * Opcode definitions and static traits for the Turnpike mini-IR.
 *
 * The IR is a RISC-like, register-based, non-SSA representation over
 * 64-bit integer values. Binary arithmetic accepts either two
 * register sources or a register and an immediate (when src1 is
 * kNoReg, the immediate is the second operand). Two pseudo ops carry
 * the resilience semantics: Ckpt (checkpoint a register to its
 * memory slot) and Boundary (region boundary marker; assigned a
 * static region id by region formation).
 */

#ifndef TURNPIKE_IR_OPCODE_HH_
#define TURNPIKE_IR_OPCODE_HH_

#include <cstdint>

namespace turnpike {

/** Operation kinds of the mini-IR and machine ISA. */
enum class Op : uint8_t {
    Li,       ///< dst = imm
    Mov,      ///< dst = src0
    Add,      ///< dst = src0 + (src1|imm)
    Sub,      ///< dst = src0 - (src1|imm)
    Mul,      ///< dst = src0 * (src1|imm)
    Div,      ///< dst = src0 / (src1|imm), div-by-zero yields 0
    Shl,      ///< dst = src0 << ((src1|imm) & 63)
    Shr,      ///< dst = (int64)src0 >> ((src1|imm) & 63)
    And,      ///< dst = src0 & (src1|imm)
    Or,       ///< dst = src0 | (src1|imm)
    Xor,      ///< dst = src0 ^ (src1|imm)
    CmpEq,    ///< dst = src0 == (src1|imm)
    CmpNe,    ///< dst = src0 != (src1|imm)
    CmpLt,    ///< dst = src0 <  (src1|imm), signed
    CmpLe,    ///< dst = src0 <= (src1|imm), signed
    AddShl,   ///< dst = src0 + (src1 << imm); ARM shifted-operand add
    Load,     ///< dst = mem64[src0 + imm]
    Store,    ///< mem64[src1 + imm] = src0
    Ckpt,     ///< checkpoint register src0 (pseudo; lowered to store)
    Boundary, ///< region boundary marker; imm = static region id
    Br,       ///< if (src0 != 0) goto succ0 else goto succ1
    Jmp,      ///< goto succ0
    Halt,     ///< terminate the program
    Nop,      ///< no effect
    NumOps,   ///< sentinel
};

/** Human-readable mnemonic, e.g. "add". */
const char *opName(Op op);

// The trait predicates below are queried for every issued
// instruction of a simulation, so they are inline constexpr; the
// enumerators Add..CmpLe are declared contiguously and pinned by
// Opcode.BinaryRangeContiguous.

/** True for the two-operand arithmetic/compare ops (Add..CmpLe). */
constexpr bool
isBinary(Op op)
{
    return op >= Op::Add && op <= Op::CmpLe;
}

/** True for Br/Jmp/Halt — the only legal block terminators. */
constexpr bool
isTerminator(Op op)
{
    return op == Op::Br || op == Op::Jmp || op == Op::Halt;
}

/** True if the op writes a destination register. */
constexpr bool
writesDst(Op op)
{
    return isBinary(op) || op == Op::Li || op == Op::Mov ||
        op == Op::Load || op == Op::AddShl;
}

/** True for ops that access data memory (Load/Store; not Ckpt). */
constexpr bool
isMemOp(Op op)
{
    return op == Op::Load || op == Op::Store;
}

/**
 * Execute-stage latency of the op in cycles for the in-order
 * pipeline model (Loads additionally pay the cache access).
 */
constexpr int
exLatency(Op op)
{
    return op == Op::Mul ? 3 : op == Op::Div ? 12 : 1;
}

} // namespace turnpike

#endif // TURNPIKE_IR_OPCODE_HH_
