/**
 * @file
 * Basic block of the Turnpike mini-IR: a straight-line instruction
 * vector ending in a terminator, plus successor edges by block id.
 */

#ifndef TURNPIKE_IR_BASIC_BLOCK_HH_
#define TURNPIKE_IR_BASIC_BLOCK_HH_

#include <string>
#include <vector>

#include "ir/instruction.hh"

namespace turnpike {

/**
 * A basic block. The terminator is the last instruction; Br uses
 * succs[0] as the taken target and succs[1] as the fall-through,
 * Jmp uses succs[0], Halt has no successors.
 */
class BasicBlock
{
  public:
    BasicBlock(BlockId id, std::string name)
        : id_(id), name_(std::move(name))
    {}

    BlockId id() const { return id_; }
    const std::string &name() const { return name_; }

    std::vector<Instruction> &insts() { return insts_; }
    const std::vector<Instruction> &insts() const { return insts_; }

    std::vector<BlockId> &succs() { return succs_; }
    const std::vector<BlockId> &succs() const { return succs_; }

    /** Append an instruction (before any terminator is set). */
    void append(Instruction inst) { insts_.push_back(std::move(inst)); }

    /** Insert @p inst at position @p pos. */
    void insertAt(size_t pos, Instruction inst);

    /** Remove the instruction at position @p pos. */
    void eraseAt(size_t pos);

    /** True if the block ends with a terminator. */
    bool hasTerminator() const;

    /** The terminator; panics if absent. */
    const Instruction &terminator() const;

    /** Number of instructions. */
    size_t size() const { return insts_.size(); }

  private:
    BlockId id_;
    std::string name_;
    std::vector<Instruction> insts_;
    std::vector<BlockId> succs_;
};

} // namespace turnpike

#endif // TURNPIKE_IR_BASIC_BLOCK_HH_
