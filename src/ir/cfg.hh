/**
 * @file
 * Control-flow-graph utilities over Function: predecessor lists,
 * reverse post order, and reachability.
 */

#ifndef TURNPIKE_IR_CFG_HH_
#define TURNPIKE_IR_CFG_HH_

#include <vector>

#include "ir/function.hh"

namespace turnpike {

/**
 * Derived CFG facts for a function. Snapshot semantics: build once,
 * use while the block structure is unchanged.
 */
class Cfg
{
  public:
    explicit Cfg(const Function &fn);

    const Function &function() const { return fn_; }

    /** Predecessor block ids of @p b. */
    const std::vector<BlockId> &preds(BlockId b) const
    {
        return preds_[b];
    }

    /**
     * Blocks in reverse post order from the entry. Unreachable
     * blocks are excluded.
     */
    const std::vector<BlockId> &rpo() const { return rpo_; }

    /** Position of block @p b in the RPO; -1 if unreachable. */
    int rpoIndex(BlockId b) const { return rpo_index_[b]; }

    /** True if @p b is reachable from the entry. */
    bool reachable(BlockId b) const { return rpo_index_[b] >= 0; }

  private:
    const Function &fn_;
    std::vector<std::vector<BlockId>> preds_;
    std::vector<BlockId> rpo_;
    std::vector<int> rpo_index_;
};

} // namespace turnpike

#endif // TURNPIKE_IR_CFG_HH_
