/**
 * @file
 * Natural-loop detection from back edges (dominator based), with
 * loop nesting depth and preheader identification. Used by region
 * formation (boundary in loop headers), LICM checkpoint sinking, and
 * loop-induction-variable merging.
 */

#ifndef TURNPIKE_IR_LOOP_INFO_HH_
#define TURNPIKE_IR_LOOP_INFO_HH_

#include <vector>

#include "ir/dominators.hh"

namespace turnpike {

/** One natural loop. */
struct Loop
{
    BlockId header = kNoBlock;
    /** Blocks in the loop, including the header. */
    std::vector<BlockId> blocks;
    /** Latch blocks (sources of back edges to the header). */
    std::vector<BlockId> latches;
    /**
     * Unique predecessor of the header outside the loop, or kNoBlock
     * if there are several.
     */
    BlockId preheader = kNoBlock;
    /**
     * Unique successor block outside the loop reached from inside,
     * or kNoBlock if there are several exits.
     */
    BlockId exit = kNoBlock;
    /** Nesting depth: 1 for outermost. */
    int depth = 1;
    /** Index of the innermost enclosing loop, or -1. */
    int parent = -1;
};

/** All natural loops of a function. */
class LoopInfo
{
  public:
    LoopInfo(const Cfg &cfg, const DominatorTree &dt);

    const std::vector<Loop> &loops() const { return loops_; }

    /** Index of the innermost loop containing @p b, or -1. */
    int innermostLoop(BlockId b) const { return innermost_[b]; }

    /** Nesting depth of @p b (0 when not in any loop). */
    int depth(BlockId b) const;

    /** True if @p b belongs to loop @p loop_index (any nesting). */
    bool contains(int loop_index, BlockId b) const;

  private:
    std::vector<Loop> loops_;
    std::vector<int> innermost_;
};

} // namespace turnpike

#endif // TURNPIKE_IR_LOOP_INFO_HH_
