/**
 * @file
 * Reference interpreter (golden model) for mini-IR functions, plus
 * the sparse MemoryImage shared with the simulator. Every compiler
 * pass must preserve the interpreter-observable result (the final
 * data-segment image); tests enforce this.
 */

#ifndef TURNPIKE_IR_INTERPRETER_HH_
#define TURNPIKE_IR_INTERPRETER_HH_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/module.hh"
#include "util/stats.hh"

namespace turnpike {

/**
 * Sparse 64-bit-word memory keyed by byte address. Accesses must be
 * 8-byte aligned; unwritten words read as zero.
 */
class MemoryImage
{
  public:
    /** Read the word at @p addr (must be 8-byte aligned). */
    int64_t read(uint64_t addr) const;

    /** Write the word at @p addr (must be 8-byte aligned). */
    void write(uint64_t addr, int64_t value);

    /** Load all data objects of @p mod as the initial image. */
    void loadModule(const Module &mod);

    /** Dump the words of a [base, base+words*8) range. */
    std::vector<int64_t> dumpRange(uint64_t base, uint64_t words) const;

    /**
     * FNV-1a hash of the data-segment contents of @p mod as stored
     * in this image; the canonical "program result" for equivalence
     * tests.
     */
    uint64_t dataHash(const Module &mod) const;

    const std::unordered_map<uint64_t, int64_t> &words() const
    {
        return words_;
    }

  private:
    std::unordered_map<uint64_t, int64_t> words_;
};

/** Why the interpreter stopped. */
enum class StopReason {
    Halted,       ///< executed a Halt
    StepLimit,    ///< hit the step limit
};

/** Dynamic-execution statistics collected by a run. */
struct InterpStats
{
    uint64_t insts = 0;        ///< all executed instructions
    uint64_t loads = 0;
    uint64_t storesApp = 0;    ///< application stores
    uint64_t storesSpill = 0;  ///< register-spill stores
    uint64_t storesCkpt = 0;   ///< checkpoint stores
    uint64_t boundaries = 0;   ///< region boundaries crossed
    uint64_t branches = 0;
    Distribution regionSize;   ///< instructions per dynamic region

    /** All dynamic stores (app + spill + ckpt). */
    uint64_t storesTotal() const
    {
        return storesApp + storesSpill + storesCkpt;
    }
};

/** Result of an interpreter run. */
struct InterpResult
{
    StopReason reason = StopReason::Halted;
    InterpStats stats;
    MemoryImage memory;
};

/**
 * Execute @p fn from its entry with memory initialized from
 * @p mod's data objects. Registers start at zero. Ckpt executes as
 * a store to the register's color-0 checkpoint slot; Boundary just
 * counts.
 *
 * @param step_limit maximum dynamic instructions before StepLimit.
 */
InterpResult interpret(const Module &mod, const Function &fn,
                       uint64_t step_limit = 100000000);

} // namespace turnpike

#endif // TURNPIKE_IR_INTERPRETER_HH_
