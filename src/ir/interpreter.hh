/**
 * @file
 * Reference interpreter (golden model) for mini-IR functions, plus
 * the sparse MemoryImage shared with the simulator. Every compiler
 * pass must preserve the interpreter-observable result (the final
 * data-segment image); tests enforce this.
 */

#ifndef TURNPIKE_IR_INTERPRETER_HH_
#define TURNPIKE_IR_INTERPRETER_HH_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/module.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace turnpike {

/**
 * Sparse 64-bit-word memory keyed by byte address. Accesses must be
 * 8-byte aligned; unwritten words read as zero.
 *
 * Storage is a page table of contiguous 512-word (4 KiB) pages,
 * allocated on first write. The first 64 Ki page numbers (a 256 MiB
 * address space covering the entire compiler layout: data, spill
 * and checkpoint segments) are mapped through a flat direct table,
 * so the hot read/write path is a shift, a mask and two dependent
 * loads — no hashing; a hash map backs the (never used in practice)
 * far tail of the address space.
 */
class MemoryImage
{
  public:
    /** Words per page; a power of two (4 KiB pages). */
    static constexpr uint64_t kPageWords = 512;

    // read()/write() are inline: they run for every load, store
    // drain and hash word of a simulation, and the page-cache hit
    // path is only a compare plus an indexed access.

    /** Read the word at @p addr (must be 8-byte aligned). */
    int64_t read(uint64_t addr) const
    {
        TP_ASSERT((addr & 7) == 0, "unaligned read at 0x%llx",
                  static_cast<unsigned long long>(addr));
        uint64_t word = addr >> 3;
        uint64_t num = word >> kPageShift;
        if (num < direct_.size()) {
            uint32_t slot = direct_[num];
            return slot ? pages_[slot - 1][word & kOffsetMask] : 0;
        }
        if (num < kDirectPages)
            return 0; // in direct range but never written
        const int64_t *page = farPageIfPresent(num);
        return page ? page[word & kOffsetMask] : 0;
    }

    /** Write the word at @p addr (must be 8-byte aligned). */
    void write(uint64_t addr, int64_t value)
    {
        TP_ASSERT((addr & 7) == 0, "unaligned write at 0x%llx",
                  static_cast<unsigned long long>(addr));
        uint64_t word = addr >> 3;
        uint64_t num = word >> kPageShift;
        int64_t *page;
        if (num < direct_.size() && direct_[num] != 0)
            page = pages_[direct_[num] - 1].data();
        else
            page = pageFor(num);
        page[word & kOffsetMask] = value;
    }

    /** Load all data objects of @p mod as the initial image. */
    void loadModule(const Module &mod);

    /** Dump the words of a [base, base+words*8) range. */
    std::vector<int64_t> dumpRange(uint64_t base, uint64_t words) const;

    /**
     * FNV-1a hash of the data-segment contents of @p mod as stored
     * in this image; the canonical "program result" for equivalence
     * tests.
     */
    uint64_t dataHash(const Module &mod) const;

    /** Pages materialized by writes (sparsity introspection). */
    size_t pagesAllocated() const { return pages_.size(); }

  private:
    static constexpr uint64_t kPageShift = 9; // log2(kPageWords)
    static constexpr uint64_t kOffsetMask = kPageWords - 1;
    /** Page numbers below this go through the direct table. */
    static constexpr uint64_t kDirectPages = uint64_t(1) << 16;

    /** Page of word-index page @p num, allocated zeroed on demand. */
    int64_t *pageFor(uint64_t num);

    /** Far (hash-mapped) page of @p num; nullptr if never written. */
    const int64_t *farPageIfPresent(uint64_t num) const;

    /**
     * Page num -> (index into pages_) + 1 for nums < kDirectPages;
     * 0 marks an unallocated page. Grown on demand, bounded at
     * kDirectPages entries (256 KiB).
     */
    std::vector<uint32_t> direct_;
    /** Same mapping for the far tail (nums >= kDirectPages). */
    std::unordered_map<uint64_t, uint32_t> far_;
    /** Page storage; indices stay valid across copies and moves. */
    std::vector<std::vector<int64_t>> pages_;
};

/** Why the interpreter stopped. */
enum class StopReason {
    Halted,       ///< executed a Halt
    StepLimit,    ///< hit the step limit
};

/** Dynamic-execution statistics collected by a run. */
struct InterpStats
{
    uint64_t insts = 0;        ///< all executed instructions
    uint64_t loads = 0;
    uint64_t storesApp = 0;    ///< application stores
    uint64_t storesSpill = 0;  ///< register-spill stores
    uint64_t storesCkpt = 0;   ///< checkpoint stores
    uint64_t boundaries = 0;   ///< region boundaries crossed
    uint64_t branches = 0;
    Distribution regionSize;   ///< instructions per dynamic region

    /** All dynamic stores (app + spill + ckpt). */
    uint64_t storesTotal() const
    {
        return storesApp + storesSpill + storesCkpt;
    }
};

/** Result of an interpreter run. */
struct InterpResult
{
    StopReason reason = StopReason::Halted;
    InterpStats stats;
    MemoryImage memory;
};

/**
 * Execute @p fn from its entry with memory initialized from
 * @p mod's data objects. Registers start at zero. Ckpt executes as
 * a store to the register's color-0 checkpoint slot; Boundary just
 * counts.
 *
 * @param step_limit maximum dynamic instructions before StepLimit.
 */
InterpResult interpret(const Module &mod, const Function &fn,
                       uint64_t step_limit = 100000000);

} // namespace turnpike

#endif // TURNPIKE_IR_INTERPRETER_HH_
