/**
 * @file
 * turnpike-cli: command-line driver for the simulator — the binary a
 * downstream user runs to compile a workload under any resilience
 * scheme, simulate it, inject faults, trace pipeline events, and
 * inspect the generated code.
 *
 * Examples:
 *   turnpike-cli --list
 *   turnpike-cli --workload CPU2006/mcf --scheme turnpike --wcdl 30
 *   turnpike-cli --workload SPLASH3/radix --scheme turnstile \
 *                --faults 3 --fault-seed 7
 *   turnpike-cli --workload CPU2006/gcc --trace regions,recovery
 *   turnpike-cli --workload CPU2017/lbm --dump-asm
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/avf.hh"
#include "core/compiler.hh"
#include "core/explorer.hh"
#include "core/replay.hh"
#include "core/rootcause.hh"
#include "core/runner.hh"
#include "core/stats_export.hh"
#include "machine/mprinter.hh"
#include "machine/minterp.hh"
#include "sim/pipeline.hh"
#include "util/chrome_trace.hh"
#include "util/logging.hh"
#include "util/phase_timer.hh"
#include "util/rng.hh"
#include "util/stat_registry.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

using namespace turnpike;

namespace {

void
usage()
{
    std::printf(
        "turnpike-cli: Turnpike soft-error-resilience simulator\n\n"
        "  --list                 list the 36 workloads and exit\n"
        "  --workload SUITE/NAME  workload to run (default "
        "CPU2006/hmmer)\n"
        "  --scheme NAME          baseline | turnstile | war-free |\n"
        "                         fast-release | turnpike | one of\n"
        "                         the fig21 ablation steps "
        "(default turnpike)\n"
        "  --wcdl N               worst-case detection latency "
        "(default 10)\n"
        "  --sb N                 store buffer entries (default 4)\n"
        "  --clq N                compact CLQ entries (default 2)\n"
        "  --ideal-clq            use the exact-address CLQ\n"
        "  --icount N             target dynamic instructions "
        "(default 200000)\n"
        "  --faults N             inject N single-event upsets\n"
        "  --fault-seed S         fault plan seed (default 1)\n"
        "  --detector NAME        detection scheme from the model "
        "zoo\n"
        "                         (default acoustic-parity; see "
        "--help output\n"
        "                         of an unknown name for the list)\n"
        "  --protect STRUCT=LEVEL override one structure's "
        "protection:\n"
        "                         STRUCT in {reg, sb, cache}, LEVEL "
        "in\n"
        "                         {none, parity, secded, ldpc} "
        "(repeatable)\n"
        "  --pool N               checkpoint colors per register "
        "(1..4;\n"
        "                         default 0 = full pool)\n"
        "  --avf                  run a Monte Carlo vulnerability\n"
        "                         campaign instead of a single "
        "simulation\n"
        "  --explore              sweep the co-design space around "
        "the\n"
        "                         configured point and report the "
        "Pareto\n"
        "                         frontier (area / overhead / "
        "vulnerability)\n"
        "  --replay TRIAL         deterministically re-run one "
        "campaign trial\n"
        "                         (honors --trace; same keying as "
        "--avf)\n"
        "  --root-cause           bisect every SDC/Hang trial of the\n"
        "                         campaign to its first divergent "
        "commit\n"
        "  --trials N             campaign injection trials "
        "(default 64)\n"
        "  --miss-rate F          probability a strike escapes the "
        "sensors\n"
        "                         (default 0)\n"
        "  --hang-factor N        Hang budget multiple of the golden "
        "run\n"
        "                         (default 8)\n"
        "  --checkpoint FILE      stream completed campaign shards "
        "to FILE\n"
        "                         (turnpike-checkpoint-v1 JSONL)\n"
        "  --resume FILE          skip shards already recorded in "
        "FILE and\n"
        "                         keep appending to it (a checkpoint "
        "from a\n"
        "                         different campaign is a hard "
        "error)\n"
        "  --shard-trials N       trials per campaign shard "
        "(default\n"
        "                         TURNPIKE_SHARD_TRIALS, or 4)\n"
        "  --procs N              fork N campaign worker processes\n"
        "                         (default TURNPIKE_PROCS, or 1)\n"
        "  --stats-no-host        omit the host profile/resource "
        "section\n"
        "                         from stats dumps (byte-stable "
        "output)\n"
        "  --progress[=FILE]      live campaign progress: a TTY\n"
        "                         line on stderr, or heartbeat JSONL "
        "to FILE\n"
        "                         (interval: TURNPIKE_PROGRESS_MS, "
        "default 500)\n"
        "  --trace CATS           comma list of issue,stores,"
        "regions,recovery,stalls,ff\n"
        "  --trace-file PATH      trace destination (default "
        "stderr)\n"
        "  --trace-format FMT     text | jsonl | chrome "
        "(default text;\n"
        "                         chrome requires --trace-file and "
        "writes a\n"
        "                         ui.perfetto.dev-loadable "
        "timeline)\n"
        "  --stats-file PATH      dump a stats registry after the "
        "run\n"
        "  --stats-format FMT     text | json (default text)\n"
        "  --interval N           sample interval time series every "
        "N cycles\n"
        "  --interval-per-region  sample every N region commits "
        "instead\n"
        "  --dump-asm             print the lowered machine code\n"
        "  --dump-regions         print per-region static store/"
        "checkpoint composition\n"
        "  --compare-baseline     also run the baseline and report "
        "the slowdown\n");
}

/**
 * Strict numeric flag parsing: garbage, trailing junk, overflow and
 * values below @p min_v are all hard errors. The old atoi/atoll
 * parsing silently accepted "--trials -1" (wrapping to ~4.29 billion
 * trials) and treated "--wcdl banana" as 0.
 */
uint64_t
parseU64(const char *flag, const char *s, long long min_v)
{
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE || v < min_v)
        fatal("%s expects an integer >= %lld, got '%s'", flag,
              min_v, s);
    return static_cast<uint64_t>(v);
}

uint32_t
parseU32(const char *flag, const char *s, long long min_v)
{
    uint64_t v = parseU64(flag, s, min_v);
    if (v > 0xffffffffull)
        fatal("%s value %llu is out of range", flag,
              static_cast<unsigned long long>(v));
    return static_cast<uint32_t>(v);
}

double
parseProb(const char *flag, const char *s)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || errno == ERANGE || v < 0.0 ||
        v > 1.0)
        fatal("%s expects a probability in [0, 1], got '%s'", flag,
              s);
    return v;
}

ResilienceConfig
schemeByName(const std::string &name, uint32_t wcdl)
{
    if (name == "baseline")
        return ResilienceConfig::baseline();
    if (name == "turnstile")
        return ResilienceConfig::turnstile(wcdl);
    if (name == "war-free")
        return ResilienceConfig::warFreeOnly(wcdl);
    if (name == "fast-release")
        return ResilienceConfig::fastRelease(wcdl);
    if (name == "fast-release+prune")
        return ResilienceConfig::fastReleasePruning(wcdl);
    if (name == "fast-release+prune+licm")
        return ResilienceConfig::fastReleasePruningLicm(wcdl);
    if (name == "fast-release+prune+licm+sched")
        return ResilienceConfig::fastReleasePruningLicmSched(wcdl);
    if (name == "fast-release+prune+licm+sched+ra")
        return ResilienceConfig::fastReleasePruningLicmSchedRa(wcdl);
    if (name == "turnpike")
        return ResilienceConfig::turnpike(wcdl);
    fatal("unknown scheme '%s' (try --help)", name.c_str());
}

uint32_t
traceMask(const std::string &cats)
{
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos < cats.size()) {
        size_t comma = cats.find(',', pos);
        std::string c = cats.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (c == "issue")
            mask |= kTraceIssue;
        else if (c == "stores")
            mask |= kTraceStores;
        else if (c == "regions")
            mask |= kTraceRegions;
        else if (c == "recovery")
            mask |= kTraceRecovery;
        else if (c == "stalls")
            mask |= kTraceStalls;
        else if (c == "ff")
            mask |= kTraceFf;
        else if (c == "all")
            mask |= kTraceAll;
        else
            fatal("unknown trace category '%s'", c.c_str());
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return mask;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "CPU2006/hmmer";
    std::string scheme = "turnpike";
    uint32_t wcdl = 10;
    uint32_t sb = 4;
    uint32_t clq = 2;
    bool ideal_clq = false;
    uint64_t icount = 200000;
    uint32_t faults = 0;
    uint64_t fault_seed = 1;
    std::string detector_name;
    std::vector<std::string> protect_specs;
    uint32_t color_pool = 0;
    bool explore = false;
    bool avf = false;
    bool root_cause = false;
    long long replay_trial = -1;
    uint32_t trials = 64;
    double miss_rate = 0.0;
    uint64_t hang_factor = 8;
    std::string checkpoint_file;
    std::string resume_file;
    uint32_t shard_trials = 0;
    uint32_t procs = 0;
    bool stats_no_host = false;
    std::string trace_cats;
    std::string trace_file;
    std::string trace_format = "text";
    std::string stats_file;
    std::string stats_format = "text";
    uint64_t interval = 0;
    bool interval_per_region = false;
    bool progress = false;
    std::string progress_file;
    bool dump_asm = false;
    bool dump_regions = false;
    bool compare_baseline = false;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--list") {
            for (const WorkloadSpec &s : workloadSuite())
                std::printf("%s/%s\n", s.suite.c_str(),
                            s.name.c_str());
            return 0;
        } else if (a == "--workload") {
            workload = need(i);
        } else if (a == "--scheme") {
            scheme = need(i);
        } else if (a == "--wcdl") {
            wcdl = parseU32("--wcdl", need(i), 0);
        } else if (a == "--sb") {
            sb = parseU32("--sb", need(i), 1);
        } else if (a == "--clq") {
            clq = parseU32("--clq", need(i), 0);
        } else if (a == "--ideal-clq") {
            ideal_clq = true;
        } else if (a == "--icount") {
            icount = parseU64("--icount", need(i), 1);
        } else if (a == "--faults") {
            faults = parseU32("--faults", need(i), 0);
        } else if (a == "--fault-seed") {
            fault_seed = parseU64("--fault-seed", need(i), 0);
        } else if (a == "--detector") {
            detector_name = need(i);
        } else if (a == "--protect") {
            protect_specs.push_back(need(i));
        } else if (a == "--pool") {
            color_pool = parseU32("--pool", need(i), 0);
        } else if (a == "--explore") {
            explore = true;
        } else if (a == "--avf") {
            avf = true;
        } else if (a == "--replay") {
            replay_trial =
                static_cast<long long>(parseU64("--replay",
                                                need(i), 0));
        } else if (a == "--root-cause") {
            root_cause = true;
        } else if (a == "--trials") {
            trials = parseU32("--trials", need(i), 1);
        } else if (a == "--miss-rate") {
            miss_rate = parseProb("--miss-rate", need(i));
        } else if (a == "--hang-factor") {
            // 0 would classify every trial as a hang; hard error.
            hang_factor = parseU64("--hang-factor", need(i), 1);
        } else if (a == "--checkpoint") {
            checkpoint_file = need(i);
        } else if (a == "--resume") {
            resume_file = need(i);
        } else if (a == "--shard-trials") {
            shard_trials = parseU32("--shard-trials", need(i), 1);
        } else if (a == "--procs") {
            procs = parseU32("--procs", need(i), 1);
            if (procs > 64)
                fatal("--procs %u exceeds the 64-process cap",
                      procs);
        } else if (a == "--stats-no-host") {
            stats_no_host = true;
        } else if (a == "--trace") {
            trace_cats = need(i);
        } else if (a == "--trace-file") {
            trace_file = need(i);
        } else if (a == "--trace-format") {
            trace_format = need(i);
        } else if (a == "--stats-file") {
            stats_file = need(i);
        } else if (a == "--stats-format") {
            stats_format = need(i);
        } else if (a == "--interval") {
            interval = parseU64("--interval", need(i), 0);
        } else if (a == "--interval-per-region") {
            interval_per_region = true;
        } else if (a == "--progress") {
            progress = true;
        } else if (a.rfind("--progress=", 0) == 0) {
            progress = true;
            progress_file = a.substr(std::strlen("--progress="));
            if (progress_file.empty())
                fatal("--progress= expects a file path");
        } else if (a == "--dump-asm") {
            dump_asm = true;
        } else if (a == "--dump-regions") {
            dump_regions = true;
        } else if (a == "--compare-baseline") {
            compare_baseline = true;
        } else {
            fatal("unknown option '%s' (try --help)", a.c_str());
        }
    }

    size_t slash = workload.find('/');
    if (slash == std::string::npos)
        fatal("--workload expects SUITE/NAME");
    const WorkloadSpec &spec = findWorkload(
        workload.substr(0, slash), workload.substr(slash + 1));

    if (trace_format != "text" && trace_format != "jsonl" &&
        trace_format != "chrome")
        fatal("--trace-format expects text, jsonl or chrome, "
              "got '%s'", trace_format.c_str());
    if (trace_format == "chrome" && trace_file.empty())
        fatal("--trace-format chrome requires --trace-file (the "
              "timeline is a standalone JSON document)");
    if (stats_format != "text" && stats_format != "json")
        fatal("--stats-format expects text or json, got '%s'",
              stats_format.c_str());

    ResilienceConfig cfg = schemeByName(scheme, wcdl);
    cfg.sbSize = sb;
    cfg.clqEntries = clq;
    if (ideal_clq)
        cfg.clqDesign = ClqDesign::Ideal;
    if (color_pool > static_cast<uint32_t>(layout::kNumColors))
        fatal("--pool %u exceeds the %d-color checkpoint pool",
              color_pool, layout::kNumColors);
    cfg.colorPool = color_pool;
    if (!detector_name.empty() &&
        !detectorByName(detector_name, cfg.detector))
        fatal("unknown detector '%s' (known: %s)",
              detector_name.c_str(), detectorZooNames().c_str());
    for (const std::string &spec_str : protect_specs)
        if (!applyProtectOverride(cfg.detector, spec_str))
            fatal("--protect expects STRUCT=LEVEL with STRUCT in "
                  "{reg, sb, cache} and LEVEL in {none, parity, "
                  "secded, ldpc}, got '%s'", spec_str.c_str());

    if (static_cast<int>(avf) + static_cast<int>(root_cause) +
            static_cast<int>(replay_trial >= 0) +
            static_cast<int>(explore) > 1)
        fatal("--avf, --replay, --root-cause and --explore are "
              "mutually exclusive");
    if (!checkpoint_file.empty() && !resume_file.empty())
        fatal("--checkpoint and --resume are mutually exclusive "
              "(--resume already appends to its file)");
    if ((!checkpoint_file.empty() || !resume_file.empty()) &&
        !(avf || root_cause))
        fatal("--checkpoint/--resume require --avf or --root-cause");

    // Shared tracer setup (all run modes). In chrome mode one
    // ChromeTraceWriter owns the whole timeline document: host
    // phase timers and campaign trial spans feed it through the
    // process-wide hook, the pipeline tracer (if --trace was given)
    // through its chrome sink. Declared after trace_stream so the
    // document is closed before the stream is.
    std::ofstream trace_stream;
    std::unique_ptr<ChromeTraceWriter> chrome_writer;
    std::unique_ptr<Tracer> tracer;
    auto makeTracer = [&] {
        bool is_chrome = trace_format == "chrome";
        if (trace_cats.empty() && !is_chrome)
            return;
        TraceFormat fmt = is_chrome ? TraceFormat::Chrome
            : trace_format == "jsonl" ? TraceFormat::Jsonl
                                      : TraceFormat::Text;
        std::ostream *sink = &std::cerr;
        if (!trace_file.empty()) {
            trace_stream.open(trace_file);
            if (!trace_stream)
                fatal("cannot open trace file %s",
                      trace_file.c_str());
            sink = &trace_stream;
        }
        if (is_chrome) {
            chrome_writer =
                std::make_unique<ChromeTraceWriter>(trace_stream);
            chrome_writer->processName(kChromePidHost,
                                       "turnpike host");
            chrome_writer->processName(kChromePidSim,
                                       "turnpike sim");
            chrome_writer->threadName(kChromePidHost, kChromeTidMain,
                                      "main");
            chrome_writer->threadName(kChromePidSim, kChromeTidMain,
                                      "pipeline (1 cycle = 1 us)");
            for (unsigned w = 0; w < campaignJobs(); w++)
                chrome_writer->threadName(
                    kChromePidHost, chromeWorkerTid(w),
                    "worker " + std::to_string(w));
            setActiveChromeTrace(chrome_writer.get());
        }
        if (!trace_cats.empty()) {
            tracer = std::make_unique<Tracer>(
                *sink, traceMask(trace_cats), fmt);
            if (is_chrome)
                tracer->setChromeSink(chrome_writer.get());
            // Post-mortem: panic() dumps the last ring events.
            installTracerPanicDump(tracer.get());
        }
    };

    if (progress) {
        uint64_t progress_ms = 500;
        if (const char *ms = std::getenv("TURNPIKE_PROGRESS_MS"))
            progress_ms = parseU64("TURNPIKE_PROGRESS_MS", ms, 1);
        CampaignTelemetry::instance().enable(progress_file,
                                             progress_ms);
    }

    AvfCampaignConfig acfg;
    acfg.spec = spec;
    acfg.scheme = cfg;
    acfg.icount = icount;
    acfg.trials = trials;
    acfg.seed = fault_seed;
    acfg.sensorMissRate = miss_rate;
    acfg.hangFactor = hang_factor;
    acfg.checkpointFile = checkpoint_file;
    acfg.resumeFile = resume_file;
    acfg.shardTrials = shard_trials;
    acfg.procs = procs;

    if (replay_trial >= 0) {
        if (static_cast<uint64_t>(replay_trial) >= trials)
            fatal("--replay trial %lld is out of range (campaign "
                  "has %u trials; raise --trials)", replay_trial,
                  trials);
        makeTracer();
        TrialReplayer replayer(acfg);
        ReplayedTrial rt = replayer.replay(
            static_cast<uint32_t>(replay_trial), tracer.get());
        const RunResult &g = replayer.golden();
        std::printf(
            "replay: %s under %s, trial %u of %u (seed %llu)\n"
            "fault: %s[%llu] bit %u at cycle %llu%s\n"
            "outcome: %s\n"
            "cycles %llu (golden %llu, budget %llu), recoveries "
            "%llu, detections %llu\n"
            "dataHash %016llx (golden %016llx)\n"
            "archHash %016llx (golden %016llx)\n",
            workload.c_str(), cfg.label.c_str(), rt.trial, trials,
            static_cast<unsigned long long>(fault_seed),
            faultTargetName(rt.fault.target),
            static_cast<unsigned long long>(rt.fault.index),
            rt.fault.bit,
            static_cast<unsigned long long>(rt.fault.cycle),
            rt.fault.detected ? "" : " (escapes the sensors)",
            faultOutcomeName(rt.outcome),
            static_cast<unsigned long long>(rt.run.pipe.cycles),
            static_cast<unsigned long long>(g.pipe.cycles),
            static_cast<unsigned long long>(rt.cycleBudget),
            static_cast<unsigned long long>(rt.run.pipe.recoveries),
            static_cast<unsigned long long>(
                rt.run.pipe.detectedFaults),
            static_cast<unsigned long long>(rt.run.dataHash),
            static_cast<unsigned long long>(g.dataHash),
            static_cast<unsigned long long>(rt.run.archHash),
            static_cast<unsigned long long>(g.archHash));
        return 0;
    }

    // Campaign modes honor the tracer too: it attaches to the
    // deterministic golden run (main thread), so a chrome timeline
    // shows pipeline events beside the trial/bisect spans. A ^C
    // mid-campaign flushes the post-mortem ring and closes the
    // chrome document before exiting.
    auto installFlushHooks = [&] {
        if (!CampaignTelemetry::instance().enabled())
            return;
        Tracer *tr = tracer.get();
        ChromeTraceWriter *cw = chrome_writer.get();
        CampaignTelemetry::instance().addInterruptFlush([tr, cw] {
            if (tr)
                tr->dumpPostmortem("interrupt");
            if (cw)
                cw->finish();
        });
    };

    if (explore) {
        if (!protect_specs.empty())
            fatal("--protect is not supported with --explore (the "
                  "sweep selects whole zoo detectors; use "
                  "--detector to pin one)");
        if (wcdl < 1)
            fatal("--explore needs --wcdl >= 1 (the sensor model "
                  "sizes a deployment for the deadline)");
        ExplorerConfig ecfg;
        ecfg.specs = {spec};
        ecfg.icount = icount;
        ecfg.trials = trials;
        ecfg.seed = fault_seed;
        ecfg.sensorMissRate = miss_rate;
        ecfg.hangFactor = hang_factor;
        // A compact sweep around the configured point: two WCDL and
        // SB settings, two color-pool sizes, three detectors (or the
        // pinned one).
        ecfg.wcdls = {wcdl, wcdl + 30};
        ecfg.sbSizes = {sb, sb + 8};
        ecfg.clqDesigns = {cfg.clqDesign};
        ecfg.clqEntries = {clq};
        ecfg.colorPools = {0, 2};
        if (!detector_name.empty())
            ecfg.detectors = {detector_name};
        else
            ecfg.detectors = {"acoustic-parity", "secded-full",
                              "noisy-sensor"};

        std::vector<PointScore> scores = runExplorer(ecfg);
        uint64_t frontier = 0;
        for (const PointScore &s : scores)
            frontier += s.onFrontier ? 1 : 0;
        std::printf("design-space exploration: %s, %zu points, %u "
                    "trials per cell (seed %llu)\n\n%s\n"
                    "pareto frontier: %llu of %zu points\n",
                    workload.c_str(), scores.size(), trials,
                    static_cast<unsigned long long>(fault_seed),
                    paretoTable(scores).c_str(),
                    static_cast<unsigned long long>(frontier),
                    scores.size());
        if (!stats_file.empty()) {
            StatRegistry reg;
            reg.setMeta("workload", workload);
            reg.setMeta("icount", std::to_string(icount));
            reg.setMeta("fault_seed", std::to_string(fault_seed));
            exportParetoStats(reg, scores);
            if (!stats_no_host)
                reg.setHostResources(captureHostResources());
            std::ofstream sf(stats_file);
            if (!sf)
                fatal("cannot open stats file %s",
                      stats_file.c_str());
            if (stats_format == "json")
                reg.dumpJson(sf, !stats_no_host);
            else
                reg.dumpText(sf, !stats_no_host);
            std::printf("\nwrote %s stats to %s\n",
                        stats_format.c_str(), stats_file.c_str());
        }
        return 0;
    }

    if (root_cause) {
        makeTracer();
        acfg.goldenTracer = tracer.get();
        installFlushHooks();
        RootCauseReport rep = runRootCauseAnalysis(acfg);
        std::printf("root-cause: %s under %s, %u trials "
                    "(seed %llu)\n"
                    "harmful trials analyzed: %u (attributed %llu, "
                    "state-only %llu), %llu probes\n\n",
                    workload.c_str(), cfg.label.c_str(), rep.trials,
                    static_cast<unsigned long long>(fault_seed),
                    rep.analyzed,
                    static_cast<unsigned long long>(
                        rep.attributed()),
                    static_cast<unsigned long long>(
                        rep.kindCounts[static_cast<int>(
                            DivergenceKind::StateOnly)]),
                    static_cast<unsigned long long>(
                        rep.totalProbes));
        if (!rep.attributions.empty())
            std::printf("%s\n", rootCauseTable(rep).c_str());
        else
            std::printf("no SDC or Hang trials in this campaign — "
                        "nothing to bisect\n");
        if (rep.inPrunedRegion + rep.inUnprunedRegion > 0)
            std::printf("\nattributed divergences in pruned "
                        "regions: %llu, unpruned: %llu\n",
                        static_cast<unsigned long long>(
                            rep.inPrunedRegion),
                        static_cast<unsigned long long>(
                            rep.inUnprunedRegion));
        if (!stats_file.empty()) {
            StatRegistry reg;
            reg.setMeta("workload", workload);
            reg.setMeta("scheme", cfg.label);
            reg.setMeta("icount", std::to_string(icount));
            reg.setMeta("fault_seed", std::to_string(fault_seed));
            exportAvfStats(reg, rep.screen);
            exportRootCauseStats(reg, rep);
            if (!stats_no_host)
                reg.setHostResources(captureHostResources());
            std::ofstream sf(stats_file);
            if (!sf)
                fatal("cannot open stats file %s",
                      stats_file.c_str());
            if (stats_format == "json")
                reg.dumpJson(sf, !stats_no_host);
            else
                reg.dumpText(sf, !stats_no_host);
            std::printf("\nwrote %s stats to %s\n",
                        stats_format.c_str(), stats_file.c_str());
        }
        return 0;
    }

    if (avf) {
        makeTracer();
        acfg.goldenTracer = tracer.get();
        installFlushHooks();
        AvfReport rep = runAvfCampaign(acfg);
        std::printf("AVF campaign: %s under %s, %u trials, "
                    "miss rate %.2f\n"
                    "golden run %llu cycles, hang budget %llu\n\n%s\n"
                    "vulnerability (SDC+hang rate): %.3f\n",
                    workload.c_str(), cfg.label.c_str(), trials,
                    miss_rate,
                    static_cast<unsigned long long>(rep.goldenCycles),
                    static_cast<unsigned long long>(rep.cycleBudget),
                    avfReportTable(rep).c_str(),
                    rep.vulnerability());
        if (!stats_file.empty()) {
            StatRegistry reg;
            reg.setMeta("workload", workload);
            reg.setMeta("scheme", cfg.label);
            reg.setMeta("icount", std::to_string(icount));
            reg.setMeta("fault_seed", std::to_string(fault_seed));
            exportAvfStats(reg, rep);
            if (!stats_no_host)
                reg.setHostResources(captureHostResources());
            std::ofstream sf(stats_file);
            if (!sf)
                fatal("cannot open stats file %s",
                      stats_file.c_str());
            if (stats_format == "json")
                reg.dumpJson(sf, !stats_no_host);
            else
                reg.dumpText(sf, !stats_no_host);
            std::printf("\nwrote %s stats to %s\n",
                        stats_format.c_str(), stats_file.c_str());
        }
        return 0;
    }

    // Tracer before the first phase timer: in chrome mode the
    // build/compile spans must land in the timeline too.
    makeTracer();

    PhaseProfile profile;
    std::unique_ptr<Module> mod;
    CompiledProgram prog;
    {
        ScopedPhaseTimer t(&profile, "host.build_workload");
        mod = buildWorkload(spec, icount);
    }
    {
        ScopedPhaseTimer t(&profile, "host.compile");
        prog = compileWorkload(*mod, cfg);
    }
    profile.merge(prog.profile);
    if (dump_asm)
        std::printf("%s\n", printMachineFunction(*prog.mf).c_str());
    if (dump_regions) {
        const auto &code = prog.mf->code();
        Table rt({"region", "entry pc", "insts", "stores", "ckpts",
                  "live-ins", "recovery ops"});
        for (size_t rid = 0; rid < prog.mf->regions().size(); rid++) {
            const RegionMeta &rm = prog.mf->region(
                static_cast<uint32_t>(rid));
            // Static extent: from the boundary to the next boundary
            // in layout order (approximation for display).
            uint64_t insts = 0, stores = 0, ckpts = 0;
            for (size_t pc = rm.entryPc + 1; pc < code.size(); pc++) {
                if (code[pc].op == Op::Boundary)
                    break;
                insts++;
                if (code[pc].op == Op::Store)
                    stores++;
                if (code[pc].op == Op::Ckpt)
                    ckpts++;
            }
            rt.addRow({cell(static_cast<uint64_t>(rid)),
                       cell(static_cast<uint64_t>(rm.entryPc)),
                       cell(insts), cell(stores), cell(ckpts),
                       cell(static_cast<uint64_t>(rm.liveIns.size())),
                       cell(static_cast<uint64_t>(
                           rm.recovery.size()))});
        }
        std::printf("%s\n", rt.toText().c_str());
    }

    PipelineConfig pcfg = cfg.toPipelineConfig();
    pcfg.statsInterval = interval;
    pcfg.intervalPerRegion = interval_per_region;
    pcfg.tracer = tracer.get();

    std::vector<FaultEvent> plan;
    if (faults > 0) {
        // Estimate the horizon from a functional run.
        InterpResult est = interpretMachine(*mod, *prog.mf);
        Rng rng(fault_seed);
        plan = makeFaultPlan(rng, est.stats.insts * 2, wcdl, faults);
    }

    PipelineResult r;
    {
        ScopedPhaseTimer t(&profile, "host.simulate");
        InOrderPipeline pipe(*mod, *prog.mf, pcfg);
        r = pipe.run(plan);
    }
    if (!r.halted)
        fatal("simulation did not reach halt");

    const PipelineStats &ps = r.stats;
    Table table({"stat", "value"});
    table.addRow({"scheme", cfg.label});
    table.addRow({"cycles", cell(ps.cycles)});
    table.addRow({"instructions", cell(ps.insts)});
    table.addRow({"IPC", cell(static_cast<double>(ps.insts) /
                                  static_cast<double>(ps.cycles), 3)});
    table.addRow({"loads", cell(ps.loads)});
    table.addRow({"stores (app/spill/ckpt)",
                  cell(ps.storesApp) + "/" + cell(ps.storesSpill) +
                      "/" + cell(ps.storesCkpt)});
    table.addRow({"quarantined", cell(ps.storesQuarantined)});
    table.addRow({"WAR-free released", cell(ps.storesWarFree)});
    table.addRow({"colored released", cell(ps.ckptColored)});
    table.addRow({"SB-full stall cycles", cell(ps.sbFullStallCycles)});
    table.addRow({"data-hazard stall cycles",
                  cell(ps.dataHazardStallCycles)});
    table.addRow({"branch mispredicts", cell(ps.branchMispredicts)});
    table.addRow({"regions executed", cell(ps.boundaries)});
    table.addRow({"CLQ overflows", cell(ps.clqOverflows)});
    table.addRow({"faults detected", cell(ps.detectedFaults)});
    table.addRow({"recoveries", cell(ps.recoveries)});
    table.addRow({"code bytes (+recovery)",
                  cell(prog.mf->codeBytes()) + " (+" +
                      cell(prog.mf->recoveryBytes()) + ")"});
    std::printf("%s", table.toText().c_str());

    if (!stats_file.empty()) {
        StatRegistry reg;
        reg.setMeta("workload", workload);
        reg.setMeta("scheme", cfg.label);
        reg.setMeta("icount", std::to_string(icount));
        reg.setMeta("interval", std::to_string(interval));
        exportPipelineStats(reg, ps);
        exportCompileStats(reg, prog.stats);
        exportIntervals(reg, ps);
        reg.addScalar("code.bytes",
                      prog.mf->codeBytes() + prog.mf->recoveryBytes(),
                      "lowered code size including recovery blocks",
                      "byte");
        reg.addScalar("code.recovery_bytes", prog.mf->recoveryBytes(),
                      "recovery block size", "byte");
        reg.setHostProfile(profile);
        if (!stats_no_host)
            reg.setHostResources(captureHostResources());
        std::ofstream sf(stats_file);
        if (!sf)
            fatal("cannot open stats file %s", stats_file.c_str());
        if (stats_format == "json")
            reg.dumpJson(sf, !stats_no_host);
        else
            reg.dumpText(sf, !stats_no_host);
        std::printf("\nwrote %s stats to %s\n", stats_format.c_str(),
                    stats_file.c_str());
    }

    if (faults > 0) {
        InterpResult golden = interpretMachine(*mod, *prog.mf);
        bool match = r.memory.dataHash(*mod) ==
            golden.memory.dataHash(*mod);
        std::printf("\nfault outcome: %s\n",
                    match ? "recovered to the golden image"
                          : "DIVERGED from the golden image");
    }

    if (compare_baseline) {
        auto bmod = buildWorkload(spec, icount);
        CompiledProgram bprog =
            compileWorkload(*bmod, ResilienceConfig::baseline());
        InOrderPipeline bpipe(
            *bmod, *bprog.mf,
            ResilienceConfig::baseline().toPipelineConfig());
        PipelineResult br = bpipe.run();
        std::printf("\nnormalized execution time vs baseline: %.3f\n",
                    static_cast<double>(ps.cycles) /
                        static_cast<double>(br.stats.cycles));
    }
    return 0;
}
