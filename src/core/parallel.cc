#include "core/parallel.hh"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/chrome_trace.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {
/** See currentCampaignWorker(): 0 on any non-pool thread. */
thread_local unsigned t_workerIndex = 0;
} // namespace

unsigned
currentCampaignWorker()
{
    return t_workerIndex;
}

unsigned
campaignJobs()
{
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const char *env = std::getenv("TURNPIKE_JOBS");
    if (!env)
        return hw;
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < 1) {
        warn("TURNPIKE_JOBS='%s' is not a positive thread count; "
             "using %u", env, hw);
        return hw;
    }
    return static_cast<unsigned>(std::min(v, 1024l));
}

ThreadPool::ThreadPool(unsigned threads)
{
    threads = std::max(1u, threads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; i++)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        TP_ASSERT(!stop_, "ThreadPool::submit after shutdown");
        queue_.push_back(std::move(job));
        pending_++;
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::workerLoop(unsigned index)
{
    t_workerIndex = index;
    // Host-side spans from this thread (trial spans, phase timers
    // inside a trial) land on the worker's own chrome track.
    setThreadChromeTid(chromeWorkerTid(index));
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] {
                return stop_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            pending_--;
            if (pending_ == 0)
                idle_cv_.notify_all();
        }
    }
}

CampaignService &
CampaignService::instance()
{
    static std::mutex inst_mu;
    static CampaignService *service = nullptr;
    static pid_t service_pid = -1;

    std::lock_guard<std::mutex> lock(inst_mu);
    pid_t pid = getpid();
    if (!service || service_pid != pid) {
        // First use, or we are a fork of the process that built the
        // old service: its worker threads do not exist here and its
        // mutexes may be in any state, so leak the husk (never
        // touch it again) and start a fresh pool under our own pid.
        service = new CampaignService();
        service_pid = pid;
    }
    return *service;
}

CampaignService::~CampaignService()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

unsigned
CampaignService::threads() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<unsigned>(workers_.size());
}

void
CampaignService::ensureWorkers(unsigned jobs)
{
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < jobs) {
        unsigned index = static_cast<unsigned>(workers_.size());
        workers_.emplace_back([this, index] { workerLoop(index); });
    }
}

void
CampaignService::run(size_t count,
                     const std::function<void(size_t)> &fn)
{
    if (count == 0)
        return;
    size_t jobs = std::min<size_t>(campaignJobs(), count);
    if (jobs <= 1) {
        // Serial debug path: same results, caller's thread, worker
        // index 0, chrome tid 0.
        for (size_t i = 0; i < count; i++)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> runLock(runMu_);
    ensureWorkers(static_cast<unsigned>(jobs));

    // Push every index BEFORE publishing the batch: during a batch a
    // failed pop can then only mean "drained", never "not yet
    // produced", which is what lets workers retire on empty.
    for (size_t i = 0; i < count; i++)
        queue_.push(i);
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        activeJobs_ = static_cast<unsigned>(jobs);
        remaining_ = count;
        generation_++;
    }
    workCv_.notify_all();
    {
        std::unique_lock<std::mutex> lock(mu_);
        doneCv_.wait(lock, [this] {
            return remaining_ == 0 && busy_ == 0;
        });
        // Retire the batch before releasing runMu_: a worker that
        // never woke for this generation must find nothing to do.
        fn_ = nullptr;
        activeJobs_ = 0;
    }
}

void
CampaignService::workerLoop(unsigned index)
{
    t_workerIndex = index;
    // Host-side spans from this thread (trial spans, phase timers
    // inside a trial) land on the worker's own chrome track.
    setThreadChromeTid(chromeWorkerTid(index));
    uint64_t seen_gen = 0;
    for (;;) {
        const std::function<void(size_t)> *fn = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [&] {
                return stop_ ||
                    (generation_ != seen_gen && fn_ &&
                     index < activeJobs_);
            });
            if (stop_)
                return;
            seen_gen = generation_;
            fn = fn_;
            busy_++;
        }
        // Claim items until the queue is dry. All items were pushed
        // before the batch was published, so a failed pop is
        // definitive exhaustion for this batch.
        uint64_t did = 0;
        size_t i = 0;
        while (queue_.pop(i)) {
            (*fn)(i);
            did++;
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            busy_--;
            remaining_ -= did;
            if (remaining_ == 0 && busy_ == 0)
                doneCv_.notify_all();
        }
    }
}

std::vector<RunResult>
runCampaign(const std::vector<RunRequest> &requests)
{
    return runCampaign(requests, CampaignObserver{});
}

std::vector<RunResult>
runCampaign(const std::vector<RunRequest> &requests,
            const CampaignObserver &observer)
{
    std::vector<RunResult> results(requests.size());
    auto runOne = [&](size_t i) {
        unsigned w = currentCampaignWorker();
        if (observer.onStart)
            observer.onStart(w, i);
        const RunRequest &q = requests[i];
        results[i] = q.interpretOnly
            ? interpretWorkload(q.spec, q.cfg, q.targetDynInsts)
            : runWorkload(q.spec, q.cfg, q.targetDynInsts, q.faults,
                          q.opts);
        if (observer.onFinish)
            observer.onFinish(w, i, results[i]);
    };

    CampaignService::instance().run(requests.size(), runOne);
    return results;
}

} // namespace turnpike
