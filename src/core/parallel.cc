#include "core/parallel.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/chrome_trace.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {
/** See currentCampaignWorker(): 0 on any non-pool thread. */
thread_local unsigned t_workerIndex = 0;
} // namespace

unsigned
currentCampaignWorker()
{
    return t_workerIndex;
}

unsigned
campaignJobs()
{
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const char *env = std::getenv("TURNPIKE_JOBS");
    if (!env)
        return hw;
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < 1) {
        warn("TURNPIKE_JOBS='%s' is not a positive thread count; "
             "using %u", env, hw);
        return hw;
    }
    return static_cast<unsigned>(std::min(v, 1024l));
}

ThreadPool::ThreadPool(unsigned threads)
{
    threads = std::max(1u, threads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; i++)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        TP_ASSERT(!stop_, "ThreadPool::submit after shutdown");
        queue_.push_back(std::move(job));
        pending_++;
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::workerLoop(unsigned index)
{
    t_workerIndex = index;
    // Host-side spans from this thread (trial spans, phase timers
    // inside a trial) land on the worker's own chrome track.
    setThreadChromeTid(chromeWorkerTid(index));
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] {
                return stop_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            pending_--;
            if (pending_ == 0)
                idle_cv_.notify_all();
        }
    }
}

std::vector<RunResult>
runCampaign(const std::vector<RunRequest> &requests)
{
    return runCampaign(requests, CampaignObserver{});
}

std::vector<RunResult>
runCampaign(const std::vector<RunRequest> &requests,
            const CampaignObserver &observer)
{
    std::vector<RunResult> results(requests.size());
    auto runOne = [&](size_t i) {
        unsigned w = currentCampaignWorker();
        if (observer.onStart)
            observer.onStart(w, i);
        const RunRequest &q = requests[i];
        results[i] = q.interpretOnly
            ? interpretWorkload(q.spec, q.cfg, q.targetDynInsts)
            : runWorkload(q.spec, q.cfg, q.targetDynInsts, q.faults,
                          q.opts);
        if (observer.onFinish)
            observer.onFinish(w, i, results[i]);
    };

    size_t jobs = std::min<size_t>(campaignJobs(), requests.size());
    if (jobs <= 1) {
        // Serial debug path: same results, one thread, no pool.
        for (size_t i = 0; i < requests.size(); i++)
            runOne(i);
        return results;
    }

    ThreadPool pool(static_cast<unsigned>(jobs));
    for (size_t i = 0; i < requests.size(); i++)
        pool.submit([&runOne, i] { runOne(i); });
    pool.wait();
    return results;
}

} // namespace turnpike
