#include "core/hwcost.hh"

#include <cmath>

#include "util/logging.hh"

namespace turnpike {

namespace {

// Linear CAM model fitted to the paper's CACTI 22 nm points:
// 4 entries -> 621.28 um^2 / 0.43099 pJ,
// 40 entries -> 3132.50 um^2 / 2.11525 pJ.
constexpr double kCamAreaBase = 342.257;
constexpr double kCamAreaPerEntry = 69.756;
constexpr double kCamEnergyBase = 0.24385;
constexpr double kCamEnergyPerEntry = 0.0467850;

// RAM model from the paper's color-map (24 B) and CLQ (16 B) rows:
// both give ~1.527 um^2 and ~0.0010492 pJ per byte.
constexpr double kRamAreaPerByte = 1.52713;
constexpr double kRamEnergyPerByte = 0.00104917;

} // namespace

HwCost
camStoreBufferCost(uint32_t entries)
{
    TP_ASSERT(entries >= 1, "store buffer needs entries");
    return {kCamAreaBase + kCamAreaPerEntry * entries,
            kCamEnergyBase + kCamEnergyPerEntry * entries};
}

HwCost
ramCost(double bytes)
{
    return {kRamAreaPerByte * bytes, kRamEnergyPerByte * bytes};
}

HwCost
colorMapsCost(uint32_t regs, uint32_t colors)
{
    double bits_per_reg = 3.0 * std::log2(static_cast<double>(colors));
    return ramCost(bits_per_reg * regs / 8.0);
}

HwCost
clqCost(uint32_t entries)
{
    return ramCost(8.0 * entries);
}

HwCost
turnpikeCost(uint32_t regs, uint32_t colors, uint32_t clq_entries)
{
    return colorMapsCost(regs, colors) + clqCost(clq_entries);
}

double
protectOverheadRatio(ProtectLevel level)
{
    switch (level) {
      case ProtectLevel::None:   return 0.0;
      case ProtectLevel::Parity: return 1.0 / 64.0;
      case ProtectLevel::Secded: return 8.0 / 64.0;
      case ProtectLevel::Ldpc:   return 48.0 / 64.0;
    }
    return 0.0;
}

HwCost
protectCost(ProtectLevel level, double bytes)
{
    HwCost checks = ramCost(bytes * protectOverheadRatio(level));
    switch (level) {
      case ProtectLevel::None:
      case ProtectLevel::Parity:
        return checks;
      case ProtectLevel::Secded:
        return checks + HwCost{150.0, 0.02};
      case ProtectLevel::Ldpc:
        return checks + HwCost{420.0, 0.06};
    }
    return checks;
}

HwCost
detectorCost(const DetectorConfig &det, uint32_t sbEntries,
             double cacheBytes)
{
    return protectCost(det.reg, 32.0 * 8.0) +
        protectCost(det.sb, static_cast<double>(sbEntries) * 8.0) +
        protectCost(det.cache, cacheBytes);
}

} // namespace turnpike
