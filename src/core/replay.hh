/**
 * @file
 * Deterministic record/replay for AVF campaign trials. A campaign
 * never stores traces: every trial's fault plan is a pure function
 * of (seed, trial index, golden horizon, wcdl, target set, miss
 * rate), so any trial can be reconstructed after the fact from the
 * campaign configuration and its trial number alone — with full
 * event tracing or commit-stream capture attached on demand.
 *
 * The replay contract (pinned by tests/replay_test.cc): a replayed
 * trial reproduces the original trial's outcome class, archHash and
 * dataHash byte-for-byte, at any TURNPIKE_JOBS.
 */

#ifndef TURNPIKE_CORE_REPLAY_HH_
#define TURNPIKE_CORE_REPLAY_HH_

#include "core/avf.hh"

namespace turnpike {

/** One re-executed campaign trial, with its reconstructed inputs. */
struct ReplayedTrial
{
    uint32_t trial = 0;
    /** The reconstructed fault plan (identical to the original). */
    FaultEvent fault;
    /** The reconstructed per-trial cycle budget. */
    uint64_t cycleBudget = 0;
    /** Differential classification against the golden run. */
    FaultOutcome outcome = FaultOutcome::Masked;
    /** The full faulted run result. */
    RunResult run;
};

/**
 * Replays individual trials of one campaign. Construction performs
 * the fault-free golden run once (the horizon the fault plans are
 * keyed on, and the reference for classification); each replay()
 * then re-runs one trial. Replays through one instance are
 * independent, so concurrent replay() calls from a thread pool are
 * safe: the replayer's own state is read-only after construction.
 */
class TrialReplayer
{
  public:
    explicit TrialReplayer(const AvfCampaignConfig &cfg);

    const AvfCampaignConfig &config() const { return cfg_; }
    const RunResult &golden() const { return golden_; }
    uint64_t cycleBudget() const { return cycleBudget_; }

    /** Reconstruct trial @p trial's fault plan (pure function). */
    FaultEvent trialFault(uint32_t trial) const;

    /**
     * Re-run trial @p trial, optionally with a tracer and/or a
     * commit-stream capture attached. When a capture is attached the
     * functional golden-hash interpretation is skipped (probes only
     * need the pipeline's results) and, if the capture carries a
     * commit limit, the run may stop early — in that case the
     * returned outcome classification is meaningless and callers
     * should only read the capture.
     */
    ReplayedTrial replay(uint32_t trial, Tracer *tracer = nullptr,
                         CommitCapture *capture = nullptr) const;

    /**
     * Fault-free probe run with @p capture attached (and the
     * interpreter skipped): the golden half of a prefix-equality
     * query during divergence bisection.
     */
    RunResult goldenProbe(CommitCapture *capture) const;

  private:
    AvfCampaignConfig cfg_;
    std::vector<FaultTarget> targets_;
    RunResult golden_;
    uint64_t cycleBudget_ = 0;
};

/**
 * One-shot convenience: golden run plus one replayed trial.
 * Re-running a trial this way costs two simulations; use a
 * TrialReplayer to amortize the golden run over many trials.
 */
ReplayedTrial replayTrial(const AvfCampaignConfig &cfg,
                          uint32_t trial, Tracer *tracer = nullptr);

} // namespace turnpike

#endif // TURNPIKE_CORE_REPLAY_HH_
