#include "core/compiler.hh"

#include "ir/verifier.hh"
#include "passes/checkpoint_pruning.hh"
#include "passes/checkpoint_sinking.hh"
#include "passes/eager_checkpointing.hh"
#include "passes/induction_variable_merging.hh"
#include "passes/instruction_scheduling.hh"
#include "passes/lowering.hh"
#include "passes/pass_manager.hh"
#include "passes/region_formation.hh"
#include "passes/register_allocation.hh"
#include "passes/strength_reduction.hh"
#include "util/logging.hh"

namespace turnpike {

CompiledProgram
compileWorkload(Module &mod, const ResilienceConfig &cfg)
{
    TP_ASSERT(!mod.functions().empty(), "module %s has no function",
              mod.name().c_str());
    Function &fn = *mod.functions()[0];
    CompiledProgram out;
    StatSet &st = out.stats;
    PhaseProfile *prof = &out.profile;
    verifyOrDie(fn);

    // Baseline codegen: strength reduction models the -O3 pointer
    // induction variables of a traditional compiler (Fig. 8b).
    {
        ScopedPhaseTimer t(prof, "compile.strength_reduction");
        st.set("sr.pointer_ivs", runStrengthReduction(fn));
    }
    verifyOrDie(fn);

    if (cfg.livm) {
        ScopedPhaseTimer t(prof, "compile.livm");
        st.set("livm.merged", runInductionVariableMerging(fn));
        runDeadCodeElimination(fn);
        verifyOrDie(fn);
    }

    {
        ScopedPhaseTimer t(prof, "compile.register_allocation");
        RaOptions ra;
        ra.writeCostFactor = cfg.storeAwareRa ? 3.0 : 1.0;
        RaStats ras = runRegisterAllocation(fn, ra);
        st.set("ra.spilled_vregs", ras.spilledVregs);
        st.set("ra.spill_stores", ras.spillStores);
        st.set("ra.spill_loads", ras.spillLoads);
    }
    verifyOrDie(fn);

    // Generic post-RA scheduling: every configuration gets it (it is
    // part of -O3); the checkpoint-aware rerun below is Turnpike's
    // addition.
    {
        ScopedPhaseTimer t(prof, "compile.scheduling_generic");
        runInstructionScheduling(fn);
    }
    verifyOrDie(fn);

    PruneResult prune;
    if (!cfg.resilience) {
        // A single region covering the whole program; no
        // checkpoints, no gating.
        fn.block(fn.entry()).insertAt(0, makeBoundary(0));
        fn.setNumRegions(1);
    } else {
        {
            ScopedPhaseTimer t(prof, "compile.region_formation");
            RegionFormationOptions rf;
            rf.storeBudget = cfg.regionStoreBudget > 0
                ? cfg.regionStoreBudget
                : std::max(1u, cfg.sbSize / 2);
            rf.keepStoreFreeLoopsWhole = cfg.licm;
            runRegionFormation(fn, rf);
        }
        verifyOrDie(fn);

        // Checkpoint insertion (+ sinking) with budget repair: a
        // region whose worst-case path exceeds the SB capacity would
        // deadlock the gated store buffer, so split and redo. The
        // budget deliberately counts the *unpruned* checkpoint load:
        // the region structure then does not depend on which
        // optimizations are enabled (as in the paper, which
        // partitions once), keeping the Fig. 21 ablation apples to
        // apples. Pruning runs last, after the boundaries are final,
        // so its recovery recipes stay valid.
        {
            ScopedPhaseTimer t(prof, "compile.checkpointing");
            for (int attempt = 0; ; attempt++) {
                TP_ASSERT(attempt < 1000, "region budget repair "
                          "diverged for %s", mod.name().c_str());
                removeAllCheckpoints(fn);
                CkptStats cs = runEagerCheckpointing(fn);
                st.set("ckpt.inserted", cs.inserted);
                if (cfg.licm) {
                    SinkStats ss = runCheckpointSinking(fn);
                    st.set("ckpt.loop_sunk", ss.loopSunk);
                    st.set("ckpt.block_sunk", ss.blockSunk);
                    st.set("ckpt.deduped", ss.deduped);
                }
                if (!repairRegionBudget(fn, cfg.sbSize))
                    break;
            }
        }
        verifyOrDie(fn);

        if (cfg.pruning) {
            ScopedPhaseTimer t(prof, "compile.checkpoint_pruning");
            prune = runCheckpointPruning(fn);
            st.set("ckpt.pruned", prune.pruned);
            verifyOrDie(fn);
        }
        if (cfg.scheduling) {
            ScopedPhaseTimer t(prof, "compile.scheduling_ckpt");
            st.set("sched.blocks_moved",
                   runInstructionScheduling(fn));
            verifyOrDie(fn);
        }
    }

    st.set("regions", fn.numRegions());
    {
        ScopedPhaseTimer t(prof, "compile.lowering");
        out.mf = std::make_unique<MachineFunction>(
            lowerFunction(fn, prune));
    }
    return out;
}

} // namespace turnpike
