/**
 * @file
 * Exporters that snapshot a finished run's plain stat structs
 * (PipelineStats, InterpStats, compile StatSet, PhaseProfile) into a
 * StatRegistry with stable names, descriptions and units. The
 * simulator never touches the registry on the hot path; export
 * happens once, after run() returns.
 */

#ifndef TURNPIKE_CORE_STATS_EXPORT_HH_
#define TURNPIKE_CORE_STATS_EXPORT_HH_

#include "core/runner.hh"
#include "util/stat_registry.hh"

namespace turnpike {

/** Register every pipeline counter/distribution/histogram of @p ps. */
void exportPipelineStats(StatRegistry &reg, const PipelineStats &ps);

/** Register the per-pass compile statistics of @p cs. */
void exportCompileStats(StatRegistry &reg, const StatSet &cs);

/** Register the interval time series of @p ps (no-op when empty). */
void exportIntervals(StatRegistry &reg, const PipelineStats &ps);

/**
 * Everything at once: pipeline + compile stats, interval series, and
 * the host phase profile of @p r. The one call the CLI and benches
 * need.
 */
void exportRunStats(StatRegistry &reg, const RunResult &r);

} // namespace turnpike

#endif // TURNPIKE_CORE_STATS_EXPORT_HH_
