#include "core/stats_export.hh"

namespace turnpike {

void
exportPipelineStats(StatRegistry &reg, const PipelineStats &ps)
{
    reg.addScalar("sim.cycles", ps.cycles,
                  "simulated clock cycles", "cycle");
    reg.addScalar("sim.insts", ps.insts,
                  "committed instructions (Halt included, Boundary "
                  "markers excluded)", "inst");
    const uint64_t cycles = ps.cycles, insts = ps.insts;
    reg.addFormula("sim.ipc", "sim.insts / sim.cycles",
                   [cycles, insts] {
                       return cycles
                           ? static_cast<double>(insts) /
                                 static_cast<double>(cycles)
                           : 0.0;
                   },
                   "committed instructions per cycle", "inst/cycle");
    reg.addScalar("sim.loads", ps.loads, "committed loads", "inst");
    reg.addScalar("sim.branch_mispredicts", ps.branchMispredicts,
                  "mispredicted branches");
    reg.addScalar("sim.stall.sb_full_cycles", ps.sbFullStallCycles,
                  "cycles issue stalled on a full gated store buffer",
                  "cycle");
    reg.addScalar("sim.stall.data_hazard_cycles",
                  ps.dataHazardStallCycles,
                  "cycles issue stalled on operand readiness",
                  "cycle");
    reg.addScalar("sim.stall.rbb_full_cycles", ps.rbbFullStallCycles,
                  "cycles a boundary stalled on a full RBB", "cycle");

    reg.addScalar("sb.stores.app", ps.storesApp,
                  "application stores", "inst");
    reg.addScalar("sb.stores.spill", ps.storesSpill,
                  "register-spill stores", "inst");
    reg.addScalar("sb.stores.ckpt", ps.storesCkpt,
                  "checkpoint stores", "inst");
    reg.addScalar("sb.stores.quarantined", ps.storesQuarantined,
                  "stores gated in the SB until verification",
                  "inst");
    reg.addScalar("sb.stores.war_free_released", ps.storesWarFree,
                  "regular stores fast-released via the CLQ "
                  "WAR-free check", "inst");
    reg.addDistribution("sb.occupancy", ps.sbOccupancy,
                        "store buffer entries in use, sampled per "
                        "issue cycle", "entry");

    reg.addScalar("colors.fast_released", ps.ckptColored,
                  "checkpoint stores fast-released via hardware "
                  "coloring", "inst");
    reg.addScalar("colors.exhausted", ps.colorExhausted,
                  "checkpoints quarantined because the color pool "
                  "was empty", "inst");

    reg.addScalar("clq.overflows", ps.clqOverflows,
                  "CLQ capacity overflows (disables WAR-free "
                  "release until re-verified)");
    reg.addDistribution("clq.occupancy", ps.clqOccupancy,
                        "committed load queue entries in use",
                        "entry");

    reg.addScalar("rbb.regions_executed", ps.boundaries,
                  "region boundaries committed", "region");
    reg.addDistribution("rbb.occupancy", ps.rbbOccupancy,
                        "RBB entries in flight, sampled at each "
                        "boundary commit", "entry");

    reg.addDistribution("region.cycles", ps.regionCycles,
                        "dynamic region length", "cycle");
    reg.addHistogram("region.cycles_hist", ps.regionCyclesHist,
                     "dynamic region length (log2 buckets)", "cycle");

    reg.addScalar("cache.l1d.hits", ps.l1dHits, "L1D hits",
                  "access");
    reg.addScalar("cache.l1d.misses", ps.l1dMisses, "L1D misses",
                  "access");
    const uint64_t l1h = ps.l1dHits, l1m = ps.l1dMisses;
    reg.addFormula("cache.l1d.miss_rate",
                   "cache.l1d.misses / (hits + misses)",
                   [l1h, l1m] {
                       return l1h + l1m
                           ? static_cast<double>(l1m) /
                                 static_cast<double>(l1h + l1m)
                           : 0.0;
                   },
                   "L1D miss rate");
    reg.addScalar("cache.l2.hits", ps.l2Hits, "L2 hits", "access");
    reg.addScalar("cache.l2.misses", ps.l2Misses, "L2 misses",
                  "access");
    const uint64_t l2h = ps.l2Hits, l2m = ps.l2Misses;
    reg.addFormula("cache.l2.miss_rate",
                   "cache.l2.misses / (hits + misses)",
                   [l2h, l2m] {
                       return l2h + l2m
                           ? static_cast<double>(l2m) /
                                 static_cast<double>(l2h + l2m)
                           : 0.0;
                   },
                   "L2 miss rate");

    reg.addScalar("recovery.detected_faults", ps.detectedFaults,
                  "acoustic detections delivered", "fault");
    reg.addScalar("recovery.recoveries", ps.recoveries,
                  "region-level recoveries executed");
    reg.addScalar("recovery.cycles", ps.recoveryCycles,
                  "cycles spent squashing and re-executing",
                  "cycle");
}

namespace {

/** Human description for a known compile counter; name otherwise. */
const char *
compileStatDesc(const std::string &name)
{
    if (name == "sr.pointer_ivs")
        return "pointer induction variables strength-reduced";
    if (name == "livm.merged")
        return "induction variables merged by LIVM";
    if (name == "ra.spilled_vregs")
        return "virtual registers spilled";
    if (name == "ra.spill_stores")
        return "spill stores inserted";
    if (name == "ra.spill_loads")
        return "spill reloads inserted";
    if (name == "ckpt.inserted")
        return "checkpoints inserted eagerly";
    if (name == "ckpt.loop_sunk")
        return "checkpoints sunk out of loops";
    if (name == "ckpt.block_sunk")
        return "checkpoints sunk within blocks";
    if (name == "ckpt.deduped")
        return "duplicate checkpoints removed";
    if (name == "ckpt.pruned")
        return "checkpoints pruned as redundant";
    if (name == "sched.blocks_moved")
        return "blocks reordered by scheduling";
    if (name == "regions")
        return "static regions formed";
    return "compiler pass counter";
}

} // namespace

void
exportCompileStats(StatRegistry &reg, const StatSet &cs)
{
    for (const auto &kv : cs.all())
        reg.addScalar("compile." + kv.first, kv.second,
                      compileStatDesc(kv.first));
}

void
exportIntervals(StatRegistry &reg, const PipelineStats &ps)
{
    if (ps.intervals.empty())
        return;
    TimeSeries ts;
    ts.name = "pipeline.intervals";
    ts.desc = "interval samples: cumulative counters plus "
              "instantaneous occupancies";
    ts.columns = {"cycle", "insts", "sb_full_stall_cycles",
                  "data_hazard_stall_cycles", "rbb_full_stall_cycles",
                  "boundaries", "sb_occ", "rbb_occ", "clq_occ"};
    ts.rows.reserve(ps.intervals.size());
    for (const IntervalSample &s : ps.intervals)
        ts.rows.push_back({s.cycle, s.insts, s.sbFullStallCycles,
                           s.dataHazardStallCycles,
                           s.rbbFullStallCycles, s.boundaries,
                           s.sbOcc, s.rbbOcc, s.clqOcc});
    reg.addTimeSeries(std::move(ts));
}

void
exportRunStats(StatRegistry &reg, const RunResult &r)
{
    reg.setMeta("workload", r.workload);
    reg.setMeta("scheme", r.scheme);
    exportPipelineStats(reg, r.pipe);
    exportCompileStats(reg, r.compileStats);
    exportIntervals(reg, r.pipe);
    reg.addScalar("code.bytes", r.codeBytes,
                  "lowered code size including recovery blocks",
                  "byte");
    reg.addScalar("code.recovery_bytes", r.recoveryBytes,
                  "recovery block size", "byte");
    reg.setHostProfile(r.profile);
}

} // namespace turnpike
