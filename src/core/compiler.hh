/**
 * @file
 * The Turnpike compiler driver: sequences the passes selected by a
 * ResilienceConfig over a workload module and lowers the result to
 * machine code, collecting per-pass statistics along the way.
 */

#ifndef TURNPIKE_CORE_COMPILER_HH_
#define TURNPIKE_CORE_COMPILER_HH_

#include <memory>

#include "core/config.hh"
#include "ir/module.hh"
#include "machine/mfunction.hh"
#include "util/phase_timer.hh"
#include "util/stats.hh"

namespace turnpike {

/** Output of one compilation. */
struct CompiledProgram
{
    std::unique_ptr<MachineFunction> mf;
    /**
     * Pass statistics: "ckpt.inserted", "ckpt.pruned",
     * "ckpt.loop_sunk", "ckpt.deduped", "livm.merged",
     * "ra.spill_stores", "ra.spilled_vregs", "sched.blocks_moved",
     * "regions".
     */
    StatSet stats;
    /**
     * Host wall-clock time per compiler pass ("compile.<pass>"),
     * reported in the stats registry's host section.
     */
    PhaseProfile profile;
};

/**
 * Compile function 0 of @p mod in place according to @p cfg.
 * Call with a freshly built module (passes mutate the IR).
 */
CompiledProgram compileWorkload(Module &mod,
                                const ResilienceConfig &cfg);

} // namespace turnpike

#endif // TURNPIKE_CORE_COMPILER_HH_
