#include "core/replay.hh"

#include "util/logging.hh"

namespace turnpike {

TrialReplayer::TrialReplayer(const AvfCampaignConfig &cfg)
    : cfg_(cfg),
      targets_(cfg.targets.empty() ? allFaultTargets() : cfg.targets)
{
    golden_ = runWorkload(cfg_.spec, cfg_.scheme, cfg_.icount);
    cycleBudget_ = avfCycleBudget(cfg_.hangFactor,
                                  golden_.pipe.cycles);
}

FaultEvent
TrialReplayer::trialFault(uint32_t trial) const
{
    // The campaign's exact keying: seed, trial index, golden-run
    // horizon, detection deadline, target set and the detector
    // scheme's noise model. Any drift here breaks the replay
    // contract, which is why replay_test.cc pins byte-for-byte
    // equality against live campaign trials.
    return makeTrialFault(cfg_.seed, trial, golden_.pipe.cycles,
                          cfg_.scheme.wcdl, targets_,
                          cfg_.sensorMissRate,
                          detectorTrialNoise(cfg_.scheme.detector));
}

ReplayedTrial
TrialReplayer::replay(uint32_t trial, Tracer *tracer,
                      CommitCapture *capture) const
{
    ReplayedTrial rt;
    rt.trial = trial;
    rt.fault = trialFault(trial);
    rt.cycleBudget = cycleBudget_;

    RunOptions opts(cycleBudget_, /*allow_no_halt=*/true);
    opts.tracer = tracer;
    opts.capture = capture;
    opts.skipInterpret = capture != nullptr;
    rt.run = runWorkload(cfg_.spec, cfg_.scheme, cfg_.icount,
                         {rt.fault}, opts);
    rt.outcome = classifyOutcome(golden_, rt.run, rt.fault.spurious);
    return rt;
}

RunResult
TrialReplayer::goldenProbe(CommitCapture *capture) const
{
    RunOptions opts(cycleBudget_, /*allow_no_halt=*/true);
    opts.capture = capture;
    opts.skipInterpret = true;
    return runWorkload(cfg_.spec, cfg_.scheme, cfg_.icount, {}, opts);
}

ReplayedTrial
replayTrial(const AvfCampaignConfig &cfg, uint32_t trial,
            Tracer *tracer)
{
    TrialReplayer replayer(cfg);
    return replayer.replay(trial, tracer);
}

} // namespace turnpike
