#include "core/runner.hh"

#include <cerrno>
#include <cstdlib>

#include "machine/minterp.hh"
#include "machine/mverifier.hh"
#include "sim/pipeline.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {

RunResult
prepare(const WorkloadSpec &spec, const ResilienceConfig &cfg,
        uint64_t target, std::unique_ptr<Module> &mod,
        CompiledProgram &prog, bool skip_interpret = false)
{
    RunResult r;
    {
        ScopedPhaseTimer t(&r.profile, "host.build_workload");
        mod = buildWorkload(spec, target);
    }
    {
        ScopedPhaseTimer t(&r.profile, "host.compile");
        prog = compileWorkload(*mod, cfg);
        verifyOrDie(*prog.mf);
    }
    r.profile.merge(prog.profile);

    r.workload = spec.suite + "/" + spec.name;
    r.scheme = cfg.label;
    r.compileStats = prog.stats;
    r.codeBytes = prog.mf->codeBytes() + prog.mf->recoveryBytes();
    r.baselineBytes = prog.mf->baselineBytes();
    r.recoveryBytes = prog.mf->recoveryBytes();

    if (!skip_interpret) {
        ScopedPhaseTimer t(&r.profile, "host.interpret");
        InterpResult golden = interpretMachine(*mod, *prog.mf);
        TP_ASSERT(golden.reason == StopReason::Halted,
                  "workload %s did not halt functionally",
                  r.workload.c_str());
        r.goldenHash = golden.memory.dataHash(*mod);
        r.dyn = std::move(golden.stats);
    }
    if (r.dyn.regionSize.count() > 0)
        r.regionSizeAvg = r.dyn.regionSize.sum() /
            static_cast<double>(r.dyn.regionSize.count());
    return r;
}

} // namespace

RunResult
runWorkload(const WorkloadSpec &spec, const ResilienceConfig &cfg,
            uint64_t target_dyn_insts,
            const std::vector<FaultEvent> &faults,
            const RunOptions &opts)
{
    std::unique_ptr<Module> mod;
    CompiledProgram prog;
    RunResult r = prepare(spec, cfg, target_dyn_insts, mod, prog,
                          opts.skipInterpret);

    {
        ScopedPhaseTimer t(&r.profile, "host.simulate");
        PipelineConfig pcfg = cfg.toPipelineConfig();
        if (opts.maxCycles != 0)
            pcfg.maxCycles = opts.maxCycles;
        pcfg.tracer = opts.tracer;
        pcfg.capture = opts.capture;
        InOrderPipeline pipe(*mod, *prog.mf, pcfg);
        PipelineResult pr = pipe.run(faults);
        TP_ASSERT(pr.halted || opts.allowNoHalt,
                  "workload %s did not halt in the "
                  "pipeline (scheme %s)", r.workload.c_str(),
                  cfg.label.c_str());
        r.halted = pr.halted;
        r.pipe = std::move(pr.stats);
        r.dataHash = pr.memory.dataHash(*mod);
        r.archHash = pr.archHash;
    }
    return r;
}

RunResult
interpretWorkload(const WorkloadSpec &spec, const ResilienceConfig &cfg,
                  uint64_t target_dyn_insts)
{
    std::unique_ptr<Module> mod;
    CompiledProgram prog;
    RunResult r = prepare(spec, cfg, target_dyn_insts, mod, prog);
    r.halted = true;
    r.dataHash = r.goldenHash;
    return r;
}

uint64_t
benchInstBudget()
{
    constexpr uint64_t kDefault = 200000;
    const char *env = std::getenv("TURNPIKE_BENCH_ICOUNT");
    if (!env)
        return kDefault;
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < 1) {
        warn("TURNPIKE_BENCH_ICOUNT='%s' is not a positive "
             "instruction count; using the default %llu", env,
             static_cast<unsigned long long>(kDefault));
        return kDefault;
    }
    return static_cast<uint64_t>(v);
}

} // namespace turnpike
