/**
 * @file
 * SDC/Hang root-cause bisection on top of deterministic replay.
 *
 * For every harmful trial of a campaign (SDC or Hang), the analysis
 * finds the first architecturally-divergent committed instruction by
 * binary search over commit-stream prefixes — no full trace is ever
 * held in memory. A probe run re-executes the trial (or the golden
 * run) with a CommitCapture that accumulates an FNV-1a prefix hash
 * and stops after a commit limit; prefix equality of length i is one
 * golden probe plus one faulty probe. The predicate "prefixes of
 * length i are equal" is monotone in i, so the largest equal prefix
 * is found in ~log2(commits) probe pairs, and a final windowed probe
 * captures the one divergent record.
 *
 * Each harmful trial is attributed to a PC, opcode and static
 * region, and — through the compiled program's region metadata — to
 * the compiler-pass decisions (checkpoint pruning) covering that
 * region. Aggregates export under the rootcause.* stats namespace
 * (turnpike-stats-v1) and are deterministic at any TURNPIKE_JOBS.
 */

#ifndef TURNPIKE_CORE_ROOTCAUSE_HH_
#define TURNPIKE_CORE_ROOTCAUSE_HH_

#include <map>
#include <mutex>

#include "core/replay.hh"

namespace turnpike {

/** How a harmful trial's commit stream relates to the golden one. */
enum class DivergenceKind : uint8_t {
    /** Streams share a proper prefix, then commit differently. */
    Commit,
    /** Faulty stream is a proper prefix of golden: early halt/wedge. */
    Truncated,
    /** Golden is a proper prefix of faulty: post-halt/recovery storm. */
    Extended,
    /**
     * Identical streams, corrupt state: the strike damaged memory or
     * a register no later commit ever touched (e.g. a CacheData hit
     * on a line never reloaded). No single instruction to blame.
     */
    StateOnly,
};

/** Number of DivergenceKind enumerators (for counting tables). */
constexpr int kNumDivergenceKinds = 4;

/** Stable lower-case name of @p k ("commit", "truncated", ...). */
const char *divergenceKindName(DivergenceKind k);

/** The bisection result for one harmful trial. */
struct DivergencePoint
{
    DivergenceKind kind = DivergenceKind::StateOnly;
    /**
     * Commit index of the divergence: the first index at which the
     * streams differ (Commit), the length of the shorter stream
     * (Truncated/Extended), or min(lengths) for StateOnly.
     */
    uint64_t index = 0;
    /** Golden-stream record at index (valid unless Extended). */
    CommitRecord golden;
    /** Faulty-stream record at index (valid unless Truncated). */
    CommitRecord faulty;
    /**
     * Prefix-equality queries issued (each is one golden plus one
     * faulty probe before caching). Deterministic: counts logical
     * queries, not cache misses, so TURNPIKE_JOBS cannot change it.
     */
    uint32_t probes = 0;
};

/**
 * Memoizes golden prefix probes (limit -> (hash, committed)) across
 * the trials of one campaign: the golden stream is the same for
 * every trial, and bisections keep asking about the same prefix
 * lengths. Thread-safe; purely a performance cache — probe results
 * are pure functions of the limit, so sharing cannot perturb
 * determinism.
 */
class GoldenPrefixCache
{
  public:
    /** (prefix hash, commits actually made) for a probe at @p limit. */
    std::pair<uint64_t, uint64_t> probe(const TrialReplayer &replayer,
                                        uint64_t limit);

  private:
    std::mutex mu_;
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> cache_;
};

/**
 * Bisect the divergence point of harmful trial @p trial. The trial
 * should classify as Sdc or Hang under @p replayer's campaign; a
 * harmless trial comes back StateOnly with index = stream length.
 */
DivergencePoint bisectDivergence(const TrialReplayer &replayer,
                                 uint32_t trial,
                                 GoldenPrefixCache &goldenCache);

/** One harmful trial attributed to its first divergent commit. */
struct RootCauseAttribution
{
    uint32_t trial = 0;
    FaultEvent fault;
    FaultOutcome outcome = FaultOutcome::Sdc;
    DivergenceKind kind = DivergenceKind::StateOnly;
    uint64_t divergeIndex = 0;
    /** Attributed instruction; kNoTracePc/kNoTraceOp for StateOnly. */
    uint32_t pc = kNoTracePc;
    uint16_t opcode = kNoTraceOp;
    std::string opcodeName;
    /** Static region the attributed instruction commits in. */
    uint32_t region = 0;
    /** Checkpoint stores pruned out of that region's live-ins. */
    uint32_t regionPrunedLiveIns = 0;
    /** True when the region had at least one pruned live-in. */
    bool inPrunedRegion = false;
    uint32_t probes = 0;
};

/** Aggregated root-cause results for one (workload, scheme). */
struct RootCauseReport
{
    std::string workload;
    std::string scheme;
    /** Scheme pass decisions the attribution cross-references. */
    bool schemePruning = false;
    bool schemeLivm = false;
    uint32_t trials = 0;   ///< campaign trials screened
    uint32_t analyzed = 0; ///< harmful (SDC/Hang) trials bisected
    /** kindCounts[kind], enumerator-indexed. */
    uint64_t kindCounts[kNumDivergenceKinds] = {};
    /** Attributed trials per opcode name. */
    std::map<std::string, uint64_t> byOpcode;
    /** Attributed trials per static region (single workload only). */
    std::map<uint32_t, uint64_t> byRegion;
    uint64_t inPrunedRegion = 0;   ///< attributed, region had pruning
    uint64_t inUnprunedRegion = 0; ///< attributed, region had none
    uint64_t totalProbes = 0;
    /** Per-trial detail in trial order (diagnostics, tests). */
    std::vector<RootCauseAttribution> attributions;
    /** The screening campaign's full AVF report (avf.* export). */
    AvfReport screen;

    /** Trials attributed to a specific commit (all but StateOnly). */
    uint64_t attributed() const;
    /**
     * Fold @p other's aggregate counts into this report (kind,
     * opcode and pruning counts, trial totals, probe counts and the
     * screening AVF report; per-trial attributions and the
     * per-region map are not merged — region ids are not comparable
     * across workloads). Used to aggregate one scheme across
     * workloads.
     */
    void merge(const RootCauseReport &other);
};

/**
 * The full analysis: run the campaign (deterministic at any
 * TURNPIKE_JOBS), bisect every SDC/Hang trial in parallel, and
 * attribute each to a PC, opcode, region and the region's pruning
 * decisions.
 */
RootCauseReport runRootCauseAnalysis(const AvfCampaignConfig &cfg);

/** Register the report under the rootcause.* namespace. */
void exportRootCauseStats(StatRegistry &reg,
                          const RootCauseReport &rep);

/** Render the per-trial attribution table (bench/CLI output). */
std::string rootCauseTable(const RootCauseReport &rep);

} // namespace turnpike

#endif // TURNPIKE_CORE_ROOTCAUSE_HH_
