/**
 * @file
 * Monte Carlo soft-error vulnerability campaign engine. Each trial
 * injects one single-event upset at a random cycle into a random
 * vulnerable structure (sim/fault_injector.hh's FaultTarget set),
 * optionally as an undetected sensor miss, and classifies the run by
 * differential comparison against the fault-free golden run:
 *
 *  - Masked:    final memory image and architectural registers both
 *               match the golden run with no recovery fired;
 *  - Recovered: detection fired, rollback ran, and the memory image
 *               matches (the paper's DUE-turned-harmless case);
 *  - SDC:       the run completed but the image or the architectural
 *               state silently differs — the outcome the scheme is
 *               supposed to make impossible for detected faults;
 *  - Hang:      the cycle budget was exhausted before Halt.
 *
 * The campaign is decomposed into shards — contiguous trial ranges
 * keyed by (seed, trial range) — that fan out over the persistent
 * campaign service (core/parallel.hh), optionally across forked OS
 * processes, with completed shards streamed to a
 * turnpike-checkpoint-v1 file (core/campaign.hh) so an interrupted
 * campaign resumes instead of restarting. Every trial's fault is
 * derived from (seed, trial index) alone and the report is
 * assembled in trial order from the shard records, so outcome
 * counts, stats and tables are byte-identical at any TURNPIKE_JOBS
 * x TURNPIKE_PROCS combination, straight through or
 * interrupted-and-resumed. Results export through the StatRegistry
 * under the avf.* namespace.
 */

#ifndef TURNPIKE_CORE_AVF_HH_
#define TURNPIKE_CORE_AVF_HH_

#include <string>
#include <vector>

#include "core/parallel.hh"
#include "util/stat_registry.hh"

namespace turnpike {

/** How one injection trial ended. */
enum class FaultOutcome : uint8_t {
    Masked,    ///< no recovery, image + arch state match golden
    Recovered, ///< detection + rollback fired, image matches golden
    Sdc,       ///< run completed, image or arch state differs
    Hang,      ///< cycle budget exhausted
    /**
     * A sensor false positive: no fault was injected, the detector
     * fired anyway, and the (needless) rollback still produced the
     * golden result. Counting these as Recovered would inflate the
     * scheme's apparent coverage — a noisy detector's spurious
     * recoveries are pure overhead, not saves.
     */
    FalsePos,
};

/** Number of FaultOutcome enumerators (for counting tables). */
constexpr int kNumFaultOutcomes = 5;

/** Stable lower-case name of @p o ("masked", "recovered", ...). */
const char *faultOutcomeName(FaultOutcome o);

/** Everything one vulnerability campaign needs. */
struct AvfCampaignConfig
{
    WorkloadSpec spec;
    ResilienceConfig scheme;
    /** Target dynamic instructions of the workload build. */
    uint64_t icount = 20000;
    /** Monte Carlo trials (one upset each). */
    uint32_t trials = 64;
    /** Base seed; trial t's fault is makeTrialFault(seed, t, ...). */
    uint64_t seed = 1;
    /** Probability a strike escapes the acoustic sensors. */
    double sensorMissRate = 0.0;
    /** Structures to strike; empty selects allFaultTargets(). */
    std::vector<FaultTarget> targets;
    /**
     * Hang budget: a trial is cut off (and classified Hang) after
     * hangFactor * golden cycles + a fixed slack.
     */
    uint64_t hangFactor = 8;
    /**
     * Optional tracer attached to the fault-free golden run (not
     * owned, not used by trials). The golden run executes on the
     * calling thread before any trial fans out, so a single-stream
     * sink — including the chrome timeline, where its pipeline
     * events land beside the campaign's trial spans — needs no
     * locking against trial runs.
     */
    Tracer *goldenTracer = nullptr;

    // -- campaign service (core/campaign.hh) -------------------------
    /**
     * Stream completed-shard records to this turnpike-checkpoint-v1
     * file as the campaign runs (truncating anything already
     * there). Empty = no checkpointing.
     */
    std::string checkpointFile;
    /**
     * Resume from (and keep appending to) this checkpoint: shards
     * it records are skipped and their results merged; a checkpoint
     * from a different campaign identity is a hard error. A missing
     * file starts fresh. Mutually exclusive with checkpointFile.
     */
    std::string resumeFile;
    /** Trials per shard; 0 = TURNPIKE_SHARD_TRIALS, default 4. */
    uint32_t shardTrials = 0;
    /**
     * Forked worker processes for the trial sweep; 0 defers to
     * TURNPIKE_PROCS (default 1 = in-process threads only).
     */
    unsigned procs = 0;
};

/** One classified injection trial. */
struct AvfTrial
{
    FaultEvent fault;
    FaultOutcome outcome = FaultOutcome::Masked;
    uint64_t cycles = 0;
    uint64_t recoveries = 0;
    uint64_t detections = 0;
};

/** Aggregated campaign results: per-target outcome counts. */
struct AvfReport
{
    std::string workload;
    std::string scheme;
    uint32_t trials = 0;
    double sensorMissRate = 0.0;
    uint64_t goldenCycles = 0;
    uint64_t cycleBudget = 0;
    /** The detector scheme the campaign ran under. */
    DetectorConfig detector;
    /** counts[target][outcome], enumerator-indexed. */
    uint64_t counts[kNumFaultTargets][kNumFaultOutcomes] = {};
    /**
     * Trials attributed to each target (row sums of counts). A
     * spurious trial still drew a target before the false-positive
     * draw replaced the strike; it counts here under FalsePos so
     * rows stay consistent, but nothing was actually corrupted.
     */
    uint64_t injected[kNumFaultTargets] = {};
    /** Every trial in submission order (diagnostics, tests). */
    std::vector<AvfTrial> perTrial;
    /** Sum of per-trial pipeline ECC corrections (detector.* stats). */
    uint64_t eccCorrected = 0;
    /** Sum of per-trial pipeline ECC detections. */
    uint64_t eccDetected = 0;
    /** Sum of per-trial pipeline false alarms. */
    uint64_t falseAlarmEvents = 0;

    /** Campaign-wide count of @p o across all targets. */
    uint64_t outcomeTotal(FaultOutcome o) const;
    /** Trials classified FalsePos (exported as avf.falsePositives). */
    uint64_t falsePositives() const
    {
        return outcomeTotal(FaultOutcome::FalsePos);
    }
    /** outcomeTotal(o) / trials; 0 when the report is empty. */
    double rate(FaultOutcome o) const;
    /**
     * AVF-style vulnerability: the probability a random strike
     * corrupts or loses the architectural result, (SDC + Hang) /
     * trials. Masked and Recovered strikes are harmless.
     */
    double vulnerability() const;
    /**
     * Fold @p other's counts into this report (per-target outcome
     * counts, injections and trial totals; per-trial detail is not
     * merged). Used to aggregate one scheme across workloads.
     */
    void merge(const AvfReport &other);
};

/**
 * Hard ceiling on a trial's cycle budget: the pipeline's own default
 * maxCycles cap. A budget beyond it could never be spent anyway, and
 * clamping here keeps a huge --hang-factor from overflowing the
 * hangFactor * goldenCycles product into a tiny wrapped budget that
 * would misclassify every trial as Hang.
 */
constexpr uint64_t kMaxTrialCycleBudget = 2000000000ull;

/**
 * The campaign's per-trial cycle budget: hangFactor * goldenCycles
 * plus a fixed 100000-cycle slack (recovery storms legitimately
 * multiply the runtime; the slack keeps tiny workloads from flagging
 * spurious hangs), saturated at kMaxTrialCycleBudget. hangFactor
 * must be >= 1 — a zero factor would classify every trial as Hang,
 * so runAvfCampaign rejects it (and the CLI errors out before that).
 */
uint64_t avfCycleBudget(uint64_t hangFactor, uint64_t goldenCycles);

/**
 * The per-trial noise model a detector scheme implies: the knobs of
 * DetectorConfig that feed makeTrialFault. The default detector maps
 * to a default TrialNoise, preserving the legacy RNG stream.
 */
TrialNoise detectorTrialNoise(const DetectorConfig &det);

/**
 * Classify one faulted run against the fault-free golden run of the
 * same (workload, scheme): the differential-comparison core of the
 * campaign, exposed for the unit tests. Masked additionally requires
 * the committed-instruction counts to match: a run that silently
 * truncated or warped its execution path but stumbled into matching
 * hashes is an SDC, not a masked strike.
 *
 * @p spurious marks a trial whose "fault" was a sensor false
 * positive (FaultEvent::spurious): nothing was injected, so a run
 * that still matches the golden image is FalsePos — NOT Recovered,
 * which would credit the detector for saving a result that was
 * never in danger — and one that diverges (the rollback itself went
 * wrong) is an SDC.
 */
FaultOutcome classifyOutcome(const RunResult &golden,
                             const RunResult &faulty,
                             bool spurious = false);

/** Run the campaign: golden run, then cfg.trials faulted runs. */
AvfReport runAvfCampaign(const AvfCampaignConfig &cfg);

/** Register the report under the avf.* namespace. */
void exportAvfStats(StatRegistry &reg, const AvfReport &rep);

/** Render the per-target outcome table (bench/CLI output). */
std::string avfReportTable(const AvfReport &rep);

} // namespace turnpike

#endif // TURNPIKE_CORE_AVF_HH_
