#include "core/config.hh"

namespace turnpike {

ResilienceConfig
ResilienceConfig::baseline()
{
    ResilienceConfig c;
    c.label = "baseline";
    c.resilience = false;
    return c;
}

ResilienceConfig
ResilienceConfig::turnstile(uint32_t wcdl)
{
    ResilienceConfig c;
    c.label = "turnstile";
    c.wcdl = wcdl;
    return c;
}

ResilienceConfig
ResilienceConfig::warFreeOnly(uint32_t wcdl)
{
    ResilienceConfig c = turnstile(wcdl);
    c.label = "war-free";
    c.warFreeRelease = true;
    return c;
}

ResilienceConfig
ResilienceConfig::fastRelease(uint32_t wcdl)
{
    ResilienceConfig c = warFreeOnly(wcdl);
    c.label = "fast-release";
    c.hwColoring = true;
    return c;
}

ResilienceConfig
ResilienceConfig::fastReleasePruning(uint32_t wcdl)
{
    ResilienceConfig c = fastRelease(wcdl);
    c.label = "fast-release+prune";
    c.pruning = true;
    return c;
}

ResilienceConfig
ResilienceConfig::fastReleasePruningLicm(uint32_t wcdl)
{
    ResilienceConfig c = fastReleasePruning(wcdl);
    c.label = "fast-release+prune+licm";
    c.licm = true;
    return c;
}

ResilienceConfig
ResilienceConfig::fastReleasePruningLicmSched(uint32_t wcdl)
{
    ResilienceConfig c = fastReleasePruningLicm(wcdl);
    c.label = "fast-release+prune+licm+sched";
    c.scheduling = true;
    return c;
}

ResilienceConfig
ResilienceConfig::fastReleasePruningLicmSchedRa(uint32_t wcdl)
{
    ResilienceConfig c = fastReleasePruningLicmSched(wcdl);
    c.label = "fast-release+prune+licm+sched+ra";
    c.storeAwareRa = true;
    return c;
}

ResilienceConfig
ResilienceConfig::turnpike(uint32_t wcdl)
{
    ResilienceConfig c = fastReleasePruningLicmSchedRa(wcdl);
    c.label = "turnpike";
    c.livm = true;
    return c;
}

PipelineConfig
ResilienceConfig::toPipelineConfig() const
{
    PipelineConfig p;
    p.resilience = resilience;
    p.warFreeRelease = warFreeRelease;
    p.hwColoring = hwColoring;
    p.naiveCkptRelease = naiveCkptRelease;
    p.clqDesign = clqDesign;
    p.clqEntries = clqEntries;
    p.sbSize = sbSize;
    p.wcdl = wcdl;
    p.colorPool = colorPool;
    p.regProtect = detector.reg;
    p.sbProtect = detector.sb;
    p.cacheProtect = detector.cache;
    return p;
}

} // namespace turnpike
