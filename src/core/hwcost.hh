/**
 * @file
 * Hardware cost model (paper Table 1): CACTI-style area and
 * dynamic-access energy for the CAM store buffer and the RAM
 * structures Turnpike adds (color maps, CLQ), at 22 nm. The linear
 * per-entry/per-byte coefficients are fitted to the paper's
 * published CACTI numbers.
 */

#ifndef TURNPIKE_CORE_HWCOST_HH_
#define TURNPIKE_CORE_HWCOST_HH_

#include <cstdint>

namespace turnpike {

/** Area and per-access energy of one structure. */
struct HwCost
{
    double areaUm2 = 0;
    double accessEnergyPj = 0;

    HwCost operator+(const HwCost &o) const
    {
        return {areaUm2 + o.areaUm2,
                accessEnergyPj + o.accessEnergyPj};
    }
};

/** CAM store buffer with @p entries entries. */
HwCost camStoreBufferCost(uint32_t entries);

/** RAM structure of @p bytes bytes. */
HwCost ramCost(double bytes);

/** The three color maps (AC/UC/VC) for @p regs registers with
 *  @p colors colors each: 3 * log2(colors) bits per register. */
HwCost colorMapsCost(uint32_t regs, uint32_t colors);

/** The compact CLQ with @p entries range entries (8 bytes each). */
HwCost clqCost(uint32_t entries);

/** Total Turnpike addition: color maps + CLQ. */
HwCost turnpikeCost(uint32_t regs, uint32_t colors,
                    uint32_t clq_entries);

} // namespace turnpike

#endif // TURNPIKE_CORE_HWCOST_HH_
