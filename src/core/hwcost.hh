/**
 * @file
 * Hardware cost model (paper Table 1): CACTI-style area and
 * dynamic-access energy for the CAM store buffer and the RAM
 * structures Turnpike adds (color maps, CLQ), at 22 nm. The linear
 * per-entry/per-byte coefficients are fitted to the paper's
 * published CACTI numbers.
 */

#ifndef TURNPIKE_CORE_HWCOST_HH_
#define TURNPIKE_CORE_HWCOST_HH_

#include <cstdint>

#include "sim/detector.hh"

namespace turnpike {

/** Area and per-access energy of one structure. */
struct HwCost
{
    double areaUm2 = 0;
    double accessEnergyPj = 0;

    HwCost operator+(const HwCost &o) const
    {
        return {areaUm2 + o.areaUm2,
                accessEnergyPj + o.accessEnergyPj};
    }
};

/** CAM store buffer with @p entries entries. */
HwCost camStoreBufferCost(uint32_t entries);

/** RAM structure of @p bytes bytes. */
HwCost ramCost(double bytes);

/** The three color maps (AC/UC/VC) for @p regs registers with
 *  @p colors colors each: 3 * log2(colors) bits per register. */
HwCost colorMapsCost(uint32_t regs, uint32_t colors);

/** The compact CLQ with @p entries range entries (8 bytes each). */
HwCost clqCost(uint32_t entries);

/** Total Turnpike addition: color maps + CLQ. */
HwCost turnpikeCost(uint32_t regs, uint32_t colors,
                    uint32_t clq_entries);

/**
 * Storage overhead of @p level as a fraction of the protected data:
 * parity adds 1 bit per 64-bit word, SECDED 8 check bits per word
 * (Hamming(72,64)), and the LDPC code 48 parity bits per 64-bit
 * block (detector.hh's one-step majority-logic geometry).
 */
double protectOverheadRatio(ProtectLevel level);

/**
 * Cost of protecting a @p bytes-byte structure at @p level: the RAM
 * cost of the extra check bits plus a fixed encoder/decoder block
 * (SECDED ~150 um^2 / 0.02 pJ, LDPC ~420 um^2 / 0.06 pJ — majority
 * gates across six line families dominate). None and Parity need no
 * decoder block (parity trees ride on existing datapaths).
 */
HwCost protectCost(ProtectLevel level, double bytes);

/**
 * Total protection cost of @p det over the modeled structures: the
 * 32x8 B register file, the @p sbEntries x 8 B store buffer, and
 * @p cacheBytes of cache data.
 */
HwCost detectorCost(const DetectorConfig &det, uint32_t sbEntries,
                    double cacheBytes);

} // namespace turnpike

#endif // TURNPIKE_CORE_HWCOST_HH_
