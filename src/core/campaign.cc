#include "core/campaign.hh"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/json.hh"
#include "util/json_read.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace turnpike {

namespace {

/** Upper bound (exclusive) on an encoded FaultOutcome enumerator —
 *  mirrors kNumFaultOutcomes without pulling core/avf.hh in here. */
constexpr uint64_t kMaxOutcomeCode = 5;

uint64_t
fnv1a(const std::string &s, uint64_t h = 1469598103934665603ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex16(uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

uint64_t
parseHex16(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 16);
}

/** Exact double round-trip via the bit pattern (the %.12g human
 *  field in the header is informational only). */
uint64_t
doubleBits(double d)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

std::string
segmentPath(const std::string &base, unsigned proc)
{
    return base + ".seg" + std::to_string(proc);
}

std::string
headerJson(const CampaignIdentity &id)
{
    std::ostringstream os;
    {
        JsonWriter w(os, 0);
        w.beginObject();
        w.field("schema", kCheckpointSchemaVersion);
        w.field("type", "header");
        w.field("key", hex16(id.key()));
        w.field("workload", id.workload);
        w.field("scheme", id.scheme);
        w.field("seed", id.seed);
        w.field("trials", uint64_t(id.trials));
        w.field("shard_trials", uint64_t(id.shardTrials));
        w.field("icount", id.icount);
        w.field("miss_rate", id.missRate);
        w.field("miss_rate_bits", hex16(doubleBits(id.missRate)));
        w.field("hang_factor", id.hangFactor);
        w.field("golden_cycles", id.goldenCycles);
        w.field("golden_data", hex16(id.goldenData));
        w.field("golden_arch", hex16(id.goldenArch));
        w.field("golden_insts", id.goldenInsts);
        w.endObject();
    }
    return os.str();
}

std::string
shardJson(const ShardRecord &rec, uint64_t key)
{
    std::ostringstream os;
    {
        JsonWriter w(os, 0);
        w.beginObject();
        w.field("schema", kCheckpointSchemaVersion);
        w.field("type", "shard");
        w.field("key", hex16(key));
        w.field("shard", uint64_t(rec.shard));
        w.field("lo", uint64_t(rec.lo));
        w.field("hi", uint64_t(rec.hi));
        w.key("outcomes");
        w.beginArray();
        for (uint8_t o : rec.outcomes)
            w.value(uint64_t(o));
        w.endArray();
        w.key("cycles");
        w.beginArray();
        for (uint64_t c : rec.cycles)
            w.value(c);
        w.endArray();
        w.key("recoveries");
        w.beginArray();
        for (uint64_t r : rec.recoveries)
            w.value(r);
        w.endArray();
        w.key("detections");
        w.beginArray();
        for (uint64_t d : rec.detections)
            w.value(d);
        w.endArray();
        w.field("ecc_corrected", rec.eccCorrected);
        w.field("ecc_detected", rec.eccDetected);
        w.field("false_alarms", rec.falseAlarms);
        w.endObject();
    }
    return os.str();
}

const JsonValue *
requireMember(const JsonValue &obj, const char *name,
              const std::string &path, size_t frame)
{
    const JsonValue *v = obj.find(name);
    if (!v)
        fatal("checkpoint %s: frame %zu missing field '%s'",
              path.c_str(), frame, name);
    return v;
}

uint64_t
requireU64(const JsonValue &obj, const char *name,
           const std::string &path, size_t frame)
{
    const JsonValue *v = requireMember(obj, name, path, frame);
    if (!v->isNumber())
        fatal("checkpoint %s: frame %zu field '%s' is not a number",
              path.c_str(), frame, name);
    return v->u64();
}

std::string
requireStr(const JsonValue &obj, const char *name,
           const std::string &path, size_t frame)
{
    const JsonValue *v = requireMember(obj, name, path, frame);
    if (!v->isString())
        fatal("checkpoint %s: frame %zu field '%s' is not a string",
              path.c_str(), frame, name);
    return v->str;
}

std::vector<uint64_t>
requireU64Array(const JsonValue &obj, const char *name, size_t count,
                const std::string &path, size_t frame)
{
    const JsonValue *v = requireMember(obj, name, path, frame);
    if (!v->isArray())
        fatal("checkpoint %s: frame %zu field '%s' is not an array",
              path.c_str(), frame, name);
    if (v->items.size() != count)
        fatal("checkpoint %s: frame %zu field '%s' has %zu entries, "
              "want %zu", path.c_str(), frame, name, v->items.size(),
              count);
    std::vector<uint64_t> out;
    out.reserve(count);
    for (const JsonValue &item : v->items) {
        if (!item.isNumber())
            fatal("checkpoint %s: frame %zu field '%s' has a "
                  "non-number entry", path.c_str(), frame, name);
        out.push_back(item.u64());
    }
    return out;
}

void
checkHeaderField(const char *name, uint64_t got, uint64_t want,
                 const std::string &path)
{
    if (got != want)
        fatal("checkpoint %s: header %s %" PRIu64 " does not match "
              "this campaign's %s %" PRIu64 " — refusing to merge "
              "results from a different campaign", path.c_str(),
              name, got, name, want);
}

void
validateHeader(const JsonValue &obj, const CampaignIdentity &want,
               const std::string &path)
{
    std::string workload = requireStr(obj, "workload", path, 0);
    if (workload != want.workload)
        fatal("checkpoint %s: header workload '%s' != '%s'",
              path.c_str(), workload.c_str(), want.workload.c_str());
    std::string scheme = requireStr(obj, "scheme", path, 0);
    if (scheme != want.scheme)
        fatal("checkpoint %s: header scheme fingerprint\n  '%s'\n"
              "does not match this campaign's\n  '%s'",
              path.c_str(), scheme.c_str(), want.scheme.c_str());
    checkHeaderField("seed", requireU64(obj, "seed", path, 0),
                     want.seed, path);
    checkHeaderField("trials", requireU64(obj, "trials", path, 0),
                     want.trials, path);
    checkHeaderField("shard_trials",
                     requireU64(obj, "shard_trials", path, 0),
                     want.shardTrials, path);
    checkHeaderField("icount", requireU64(obj, "icount", path, 0),
                     want.icount, path);
    checkHeaderField("miss_rate_bits",
                     parseHex16(requireStr(obj, "miss_rate_bits",
                                           path, 0)),
                     doubleBits(want.missRate), path);
    checkHeaderField("hang_factor",
                     requireU64(obj, "hang_factor", path, 0),
                     want.hangFactor, path);
    checkHeaderField("golden_cycles",
                     requireU64(obj, "golden_cycles", path, 0),
                     want.goldenCycles, path);
    checkHeaderField("golden_data",
                     parseHex16(requireStr(obj, "golden_data",
                                           path, 0)),
                     want.goldenData, path);
    checkHeaderField("golden_arch",
                     parseHex16(requireStr(obj, "golden_arch",
                                           path, 0)),
                     want.goldenArch, path);
    checkHeaderField("golden_insts",
                     requireU64(obj, "golden_insts", path, 0),
                     want.goldenInsts, path);
    checkHeaderField("key", parseHex16(requireStr(obj, "key",
                                                  path, 0)),
                     want.key(), path);
}

ShardRecord
parseShard(const JsonValue &obj, const CampaignIdentity &want,
           const std::string &path, size_t frame)
{
    ShardRecord rec;
    rec.shard = uint32_t(requireU64(obj, "shard", path, frame));
    rec.lo = uint32_t(requireU64(obj, "lo", path, frame));
    rec.hi = uint32_t(requireU64(obj, "hi", path, frame));

    // The decomposition is a pure function of (trials, shard_trials),
    // so the recorded range must match it exactly.
    uint64_t lo = uint64_t(rec.shard) * want.shardTrials;
    uint64_t hi = std::min<uint64_t>(lo + want.shardTrials,
                                     want.trials);
    if (lo >= want.trials || rec.lo != lo || rec.hi != hi)
        fatal("checkpoint %s: frame %zu shard %u covers [%u,%u) but "
              "the campaign decomposition says [%" PRIu64 ",%" PRIu64
              ")", path.c_str(), frame, rec.shard, rec.lo, rec.hi,
              lo, hi);

    size_t n = rec.hi - rec.lo;
    std::vector<uint64_t> outcomes =
        requireU64Array(obj, "outcomes", n, path, frame);
    rec.outcomes.reserve(n);
    for (uint64_t o : outcomes) {
        if (o >= kMaxOutcomeCode)
            fatal("checkpoint %s: frame %zu shard %u has outcome "
                  "code %" PRIu64 " out of range", path.c_str(),
                  frame, rec.shard, o);
        rec.outcomes.push_back(uint8_t(o));
    }
    rec.cycles = requireU64Array(obj, "cycles", n, path, frame);
    rec.recoveries = requireU64Array(obj, "recoveries", n, path,
                                     frame);
    rec.detections = requireU64Array(obj, "detections", n, path,
                                     frame);
    rec.eccCorrected = requireU64(obj, "ecc_corrected", path, frame);
    rec.eccDetected = requireU64(obj, "ecc_detected", path, frame);
    rec.falseAlarms = requireU64(obj, "false_alarms", path, frame);
    return rec;
}

} // namespace

uint64_t
CampaignIdentity::key() const
{
    char num[512];
    std::snprintf(num, sizeof(num),
                  "|seed=%" PRIu64 "|trials=%u|shard=%u|icount=%"
                  PRIu64 "|miss=%016" PRIx64 "|hang=%" PRIu64,
                  seed, trials, shardTrials, icount,
                  doubleBits(missRate), hangFactor);
    uint64_t h = fnv1a(workload);
    h = fnv1a("\x1f", h);
    h = fnv1a(scheme, h);
    h = fnv1a(num, h);
    return h;
}

std::string
schemeFingerprint(const ResilienceConfig &cfg)
{
    const DetectorConfig &d = cfg.detector;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        ";res=%d;livm=%d;prune=%d;licm=%d;sched=%d;sra=%d;war=%d;"
        "hwc=%d;naive=%d;clq=%d:%u;det=%s:%d:%d:%d:fp%016" PRIx64
        ":fn%016" PRIx64 ":fl%u:mb%u;sb=%u;wcdl=%u;pool=%u;rsb=%u",
        int(cfg.resilience), int(cfg.livm), int(cfg.pruning),
        int(cfg.licm), int(cfg.scheduling), int(cfg.storeAwareRa),
        int(cfg.warFreeRelease), int(cfg.hwColoring),
        int(cfg.naiveCkptRelease), int(cfg.clqDesign),
        cfg.clqEntries, d.label.c_str(), int(d.reg), int(d.sb),
        int(d.cache), doubleBits(d.falsePosRate),
        doubleBits(d.falseNegRate), d.filterLatency, d.maxBurst,
        cfg.sbSize, cfg.wcdl, cfg.colorPool, cfg.regionStoreBudget);
    return cfg.label + buf;
}

std::vector<ShardRange>
decomposeShards(uint32_t trials, uint32_t shard_trials)
{
    TP_ASSERT(shard_trials > 0, "shard size must be positive");
    std::vector<ShardRange> shards;
    shards.reserve((size_t(trials) + shard_trials - 1) /
                   shard_trials);
    for (uint32_t lo = 0, i = 0; lo < trials;
         lo += shard_trials, i++)
        shards.push_back(
            {i, lo, std::min(lo + shard_trials, trials)});
    return shards;
}

uint32_t
campaignShardTrials(uint32_t requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("TURNPIKE_SHARD_TRIALS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return uint32_t(std::min<long>(v, 1u << 20));
        warn("ignoring invalid TURNPIKE_SHARD_TRIALS='%s'", env);
    }
    return 4;
}

unsigned
campaignProcs(unsigned requested)
{
    long v = long(requested);
    if (v == 0) {
        if (const char *env = std::getenv("TURNPIKE_PROCS")) {
            char *end = nullptr;
            v = std::strtol(env, &end, 10);
            if (!end || *end != '\0' || v < 1) {
                warn("ignoring invalid TURNPIKE_PROCS='%s'", env);
                v = 1;
            }
        } else {
            v = 1;
        }
    }
    return unsigned(std::min<long>(std::max<long>(v, 1), 64));
}

LoadedCheckpoint
loadCheckpoint(const std::string &path, const CampaignIdentity &want)
{
    LoadedCheckpoint out;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        out.status = CheckpointStatus::NoFile;
        return out;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();

    out.status = CheckpointStatus::Ok;
    size_t pos = 0;
    size_t frame = 0;
    bool sawHeader = false;
    while (pos < data.size()) {
        size_t nl = data.find('\n', pos);
        if (nl == std::string::npos) {
            // No terminator: a torn final write (kill -9 mid-frame).
            // The valid prefix is intact; drop the tail, loudly.
            warn("checkpoint %s: dropping torn partial record at "
                 "byte %zu (interrupted write)", path.c_str(), pos);
            out.status = CheckpointStatus::TruncatedTail;
            break;
        }
        // A complete line that fails framing cannot be a torn write
        // (the newline is the last byte of every frame) — it is
        // corruption, and merging around it could silently drop or
        // double-count shards.
        size_t tab = data.find('\t', pos);
        if (tab == std::string::npos || tab >= nl)
            fatal("checkpoint %s: frame %zu at byte %zu has no "
                  "length prefix — corrupt file", path.c_str(),
                  frame, pos);
        uint64_t len = 0;
        bool numeric = tab > pos;
        for (size_t i = pos; i < tab && numeric; i++) {
            if (data[i] < '0' || data[i] > '9')
                numeric = false;
            else
                len = len * 10 + uint64_t(data[i] - '0');
        }
        if (!numeric)
            fatal("checkpoint %s: frame %zu has a non-numeric "
                  "length prefix — corrupt file", path.c_str(),
                  frame);
        if (len != nl - (tab + 1))
            fatal("checkpoint %s: frame %zu declares %" PRIu64
                  " bytes but carries %zu — corrupt file",
                  path.c_str(), frame, len, nl - (tab + 1));

        const std::string json = data.substr(tab + 1, len);
        JsonValue obj;
        std::string err;
        if (!parseJson(json, obj, &err) || !obj.isObject())
            fatal("checkpoint %s: frame %zu is not valid JSON (%s)",
                  path.c_str(), frame, err.c_str());
        std::string schema = requireStr(obj, "schema", path, frame);
        if (schema != kCheckpointSchemaVersion)
            fatal("checkpoint %s: frame %zu schema '%s' != '%s'",
                  path.c_str(), frame, schema.c_str(),
                  kCheckpointSchemaVersion);
        std::string type = requireStr(obj, "type", path, frame);
        if (frame == 0) {
            if (type != "header")
                fatal("checkpoint %s: first frame must be the "
                      "campaign header, got '%s'", path.c_str(),
                      type.c_str());
            validateHeader(obj, want, path);
            sawHeader = true;
        } else if (type == "shard") {
            uint64_t key = parseHex16(requireStr(obj, "key", path,
                                                 frame));
            if (key != want.key())
                fatal("checkpoint %s: frame %zu shard key %s does "
                      "not match campaign key %s", path.c_str(),
                      frame, hex16(key).c_str(),
                      hex16(want.key()).c_str());
            ShardRecord rec = parseShard(obj, want, path, frame);
            if (!out.shards.emplace(rec.shard, std::move(rec))
                     .second)
                fatal("checkpoint %s: frame %zu duplicates shard %"
                      PRIu64 " — corrupt file", path.c_str(), frame,
                      requireU64(obj, "shard", path, frame));
        } else {
            fatal("checkpoint %s: frame %zu has unknown type '%s'",
                  path.c_str(), frame, type.c_str());
        }
        frame++;
        pos = nl + 1;
        out.validBytes = pos;
    }
    (void)sawHeader;
    return out;
}

void
CheckpointWriter::openFresh(const std::string &path,
                            const CampaignIdentity &id)
{
    std::lock_guard<std::mutex> lock(mu_);
    TP_ASSERT(!f_, "checkpoint writer already open");
    f_ = std::fopen(path.c_str(), "wb");
    if (!f_)
        fatal("cannot create checkpoint %s: %s", path.c_str(),
              std::strerror(errno));
    key_ = id.key();
    writeHeader(id);
}

void
CheckpointWriter::openResume(const std::string &path,
                             const CampaignIdentity &id,
                             const LoadedCheckpoint &loaded)
{
    if (loaded.status == CheckpointStatus::NoFile ||
        loaded.validBytes == 0) {
        openFresh(path, id);
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    TP_ASSERT(!f_, "checkpoint writer already open");
    f_ = std::fopen(path.c_str(), "r+b");
    if (!f_)
        fatal("cannot reopen checkpoint %s: %s", path.c_str(),
              std::strerror(errno));
    key_ = id.key();
    // Cut the torn tail (if any) so appended frames start on a
    // clean line boundary.
    if (ftruncate(fileno(f_), off_t(loaded.validBytes)) != 0)
        fatal("cannot truncate checkpoint %s to %" PRIu64
              " bytes: %s", path.c_str(), loaded.validBytes,
              std::strerror(errno));
    if (std::fseek(f_, long(loaded.validBytes), SEEK_SET) != 0)
        fatal("cannot seek checkpoint %s: %s", path.c_str(),
              std::strerror(errno));
}

void
CheckpointWriter::appendShard(const ShardRecord &rec)
{
    std::lock_guard<std::mutex> lock(mu_);
    TP_ASSERT(f_, "checkpoint writer not open");
    writeFrame(shardJson(rec, key_));
}

void
CheckpointWriter::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
}

void
CheckpointWriter::writeFrame(const std::string &json)
{
    // One buffered write of the whole frame, then a flush: a crash
    // can tear the final line, never interleave or reorder frames.
    std::string line = std::to_string(json.size());
    line += '\t';
    line += json;
    line += '\n';
    if (std::fwrite(line.data(), 1, line.size(), f_) != line.size()
        || std::fflush(f_) != 0)
        fatal("checkpoint write failed: %s", std::strerror(errno));
}

void
CheckpointWriter::writeHeader(const CampaignIdentity &id)
{
    writeFrame(headerJson(id));
}

void
runShardsForked(const std::vector<ShardRange> &pending,
                unsigned procs, const CampaignIdentity &id,
                const std::string &segment_base,
                const ShardRunner &run_shard,
                CheckpointWriter *writer,
                std::map<uint32_t, ShardRecord> &have)
{
    unsigned np = unsigned(
        std::min<size_t>(procs, pending.size()));
    std::vector<pid_t> kids(np, -1);
    // Anything buffered now would be flushed once per child too.
    std::fflush(nullptr);
    for (unsigned p = 0; p < np; p++) {
        pid_t pid = fork();
        if (pid < 0) {
            warn("fork failed for campaign worker %u (%s); the "
                 "remaining shards run in-process", p,
                 std::strerror(errno));
            break;
        }
        if (pid == 0) {
            // Child: single-threaded at birth regardless of the
            // parent's pool; silence the parent's telemetry/trace
            // sinks and write results to a private segment.
            markForkedChild();
            {
                CheckpointWriter seg;
                seg.openFresh(segmentPath(segment_base, p), id);
                for (size_t i = p; i < pending.size(); i += np)
                    seg.appendShard(run_shard(pending[i]));
                seg.close();
            }
            std::_Exit(0);
        }
        kids[p] = pid;
    }

    for (unsigned p = 0; p < np; p++) {
        if (kids[p] < 0)
            continue;
        int status = 0;
        if (waitpid(kids[p], &status, 0) < 0)
            warn("waitpid for campaign worker %u failed: %s", p,
                 std::strerror(errno));
        else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            warn("campaign worker process %u died (%s %d); its "
                 "unfinished shards will be re-run", p,
                 WIFSIGNALED(status) ? "signal" : "status",
                 WIFSIGNALED(status) ? WTERMSIG(status)
                                     : WEXITSTATUS(status));
    }

    for (unsigned p = 0; p < np; p++) {
        const std::string seg = segmentPath(segment_base, p);
        // A crashed child leaves a valid prefix (or no file at
        // all); corruption beyond a torn tail is still fatal.
        LoadedCheckpoint loaded = loadCheckpoint(seg, id);
        for (auto &kv : loaded.shards) {
            if (have.count(kv.first))
                continue;
            if (writer && writer->isOpen())
                writer->appendShard(kv.second);
            have.emplace(kv.first, std::move(kv.second));
        }
        if (loaded.status != CheckpointStatus::NoFile)
            std::remove(seg.c_str());
    }

    for (const ShardRange &sr : pending) {
        if (have.count(sr.shard))
            continue;
        warn("shard %u missing after multi-process run; re-running "
             "in-process", sr.shard);
        ShardRecord rec = run_shard(sr);
        if (writer && writer->isOpen())
            writer->appendShard(rec);
        have.emplace(sr.shard, std::move(rec));
    }
}

std::string
defaultSegmentBase(uint64_t key)
{
    const char *tmp = std::getenv("TMPDIR");
    std::string base = tmp && *tmp ? tmp : "/tmp";
    if (!base.empty() && base.back() == '/')
        base.pop_back();
    return base + "/turnpike-ck-" + std::to_string(getpid()) + "-" +
        hex16(key);
}

} // namespace turnpike
