#include "core/explorer.hh"

#include <cmath>

#include "ir/function.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace turnpike {

namespace {

const char *
clqDesignName(ClqDesign d)
{
    return d == ClqDesign::Ideal ? "ideal" : "compact";
}

/** Colors actually deployed: the pool override or the full pool. */
uint32_t
effectiveColors(uint32_t pool)
{
    return pool ? pool : static_cast<uint32_t>(layout::kNumColors);
}

} // namespace

std::string
DesignPoint::label() const
{
    return "wcdl" + std::to_string(wcdl) + "/sb" +
        std::to_string(sbSize) + "/clq-" + clqDesignName(clqDesign) +
        std::to_string(clqEntries) + "/pool" +
        std::to_string(effectiveColors(colorPool)) + "/" +
        detector.label;
}

ResilienceConfig
designScheme(const DesignPoint &p)
{
    ResilienceConfig cfg = ResilienceConfig::turnpike(p.wcdl);
    cfg.sbSize = p.sbSize;
    cfg.clqDesign = p.clqDesign;
    cfg.clqEntries = p.clqEntries;
    cfg.colorPool = p.colorPool;
    cfg.detector = p.detector;
    return cfg;
}

std::vector<DesignPoint>
designGrid(const ExplorerConfig &cfg)
{
    TP_ASSERT(!cfg.wcdls.empty() && !cfg.sbSizes.empty() &&
              !cfg.clqDesigns.empty() && !cfg.clqEntries.empty() &&
              !cfg.colorPools.empty() && !cfg.detectors.empty(),
              "explorer: every sweep axis needs at least one value");
    std::vector<DesignPoint> grid;
    for (uint32_t wcdl : cfg.wcdls)
        for (uint32_t sb : cfg.sbSizes)
            for (ClqDesign design : cfg.clqDesigns)
                for (uint32_t clq : cfg.clqEntries)
                    for (uint32_t pool : cfg.colorPools)
                        for (const std::string &name : cfg.detectors) {
                            DesignPoint p;
                            p.wcdl = wcdl;
                            p.sbSize = sb;
                            p.clqDesign = design;
                            p.clqEntries = clq;
                            p.colorPool = pool;
                            if (!detectorByName(name, p.detector))
                                fatal("explorer: unknown detector "
                                      "'%s' (known: %s)",
                                      name.c_str(),
                                      detectorZooNames().c_str());
                            grid.push_back(p);
                        }
    return grid;
}

PointScore
staticScore(const DesignPoint &p)
{
    PointScore s;
    s.point = p;

    SensorConfig sensors = sensorsForWcdl(p.wcdl);
    s.sensors = sensors.numSensors;

    // The modeled cache is the pipeline's 64 KiB L1D worth of data.
    constexpr double kCacheBytes = 65536.0;
    HwCost hw = camStoreBufferCost(p.sbSize) +
        turnpikeCost(32, effectiveColors(p.colorPool),
                     p.clqEntries) +
        detectorCost(p.detector, p.sbSize, kCacheBytes);
    // Sensor area: overhead fraction of the 1 mm^2 = 1e6 um^2 die.
    double sensor_um2 =
        sensorAreaOverhead(sensors) * sensors.dieAreaMm2 * 1.0e6;
    s.areaUm2 = hw.areaUm2 + sensor_um2;
    s.energyPj = hw.accessEnergyPj;
    return s;
}

void
markParetoFrontier(std::vector<PointScore> &scores)
{
    auto dominates = [](const PointScore &a, const PointScore &b) {
        bool le = a.areaUm2 <= b.areaUm2 &&
            a.runtimeOverhead <= b.runtimeOverhead &&
            a.vulnerability <= b.vulnerability;
        bool lt = a.areaUm2 < b.areaUm2 ||
            a.runtimeOverhead < b.runtimeOverhead ||
            a.vulnerability < b.vulnerability;
        return le && lt;
    };
    for (size_t i = 0; i < scores.size(); i++) {
        scores[i].onFrontier = true;
        for (size_t j = 0; j < scores.size(); j++) {
            if (i != j && dominates(scores[j], scores[i])) {
                scores[i].onFrontier = false;
                break;
            }
        }
    }
}

std::vector<PointScore>
runExplorer(const ExplorerConfig &cfg)
{
    TP_ASSERT(!cfg.specs.empty(),
              "explorer: need at least one workload");
    std::vector<DesignPoint> grid = designGrid(cfg);

    // Per-workload baseline cycles, shared by every point. Run as
    // one campaign so workers overlap; results stay keyed by
    // submission index.
    std::vector<RunRequest> base_reqs;
    for (const WorkloadSpec &spec : cfg.specs)
        base_reqs.push_back({spec, ResilienceConfig::baseline(),
                             cfg.icount, {}, false});
    std::vector<RunResult> baselines = runCampaign(base_reqs);

    std::vector<PointScore> scores;
    scores.reserve(grid.size());
    for (size_t pi = 0; pi < grid.size(); pi++) {
        PointScore s = staticScore(grid[pi]);
        ResilienceConfig scheme = designScheme(grid[pi]);

        std::vector<double> overheads;
        AvfReport aggregate;
        for (size_t wi = 0; wi < cfg.specs.size(); wi++) {
            AvfCampaignConfig acfg;
            acfg.spec = cfg.specs[wi];
            acfg.scheme = scheme;
            acfg.icount = cfg.icount;
            acfg.trials = cfg.trials;
            // Grid-position keying: reordering the axes or adding a
            // workload changes seeds, but re-running the same sweep
            // never does.
            acfg.seed = cfg.seed + pi * cfg.specs.size() + wi;
            acfg.sensorMissRate = cfg.sensorMissRate;
            acfg.hangFactor = cfg.hangFactor;
            AvfReport rep = runAvfCampaign(acfg);
            overheads.push_back(
                static_cast<double>(rep.goldenCycles) /
                static_cast<double>(baselines[wi].pipe.cycles));
            aggregate.merge(rep);
        }
        s.runtimeOverhead = geomean(overheads);
        s.vulnerability = aggregate.vulnerability();
        scores.push_back(s);
    }
    markParetoFrontier(scores);
    return scores;
}

void
exportParetoStats(StatRegistry &reg,
                  const std::vector<PointScore> &scores)
{
    uint64_t frontier = 0;
    for (const PointScore &s : scores)
        frontier += s.onFrontier ? 1 : 0;
    reg.addScalar("pareto.points",
                  static_cast<uint64_t>(scores.size()),
                  "design points swept", "point");
    reg.addScalar("pareto.frontier_size", frontier,
                  "Pareto-optimal points over (area, overhead, "
                  "vulnerability)", "point");

    // One block per frontier point, numbered in grid order so the
    // export is deterministic and diffable.
    uint64_t fi = 0;
    for (const PointScore &s : scores) {
        if (!s.onFrontier)
            continue;
        std::string base = "pareto.frontier." + std::to_string(fi);
        reg.setMeta(base + ".label", s.point.label());
        reg.setMeta(base + ".detector", s.point.detector.label);
        reg.addScalar(base + ".wcdl",
                      static_cast<uint64_t>(s.point.wcdl),
                      "worst-case detection latency", "cycle");
        reg.addScalar(base + ".sb",
                      static_cast<uint64_t>(s.point.sbSize),
                      "store-buffer entries", "entry");
        reg.addScalar(base + ".clq",
                      static_cast<uint64_t>(s.point.clqEntries),
                      "CLQ range entries", "entry");
        reg.addScalar(base + ".pool",
                      static_cast<uint64_t>(
                          effectiveColors(s.point.colorPool)),
                      "checkpoint colors per register", "color");
        reg.addScalar(base + ".sensors",
                      static_cast<uint64_t>(s.sensors),
                      "acoustic sensors deployed", "sensor");
        reg.addScalar(base + ".area_um2", s.areaUm2,
                      "added silicon area", "um2");
        reg.addScalar(base + ".energy_pj", s.energyPj,
                      "added per-access energy", "pJ");
        reg.addScalar(base + ".overhead", s.runtimeOverhead,
                      "runtime overhead vs baseline (geomean)",
                      "ratio");
        reg.addScalar(base + ".vulnerability", s.vulnerability,
                      "(SDC + Hang) / trials", "ratio");
        fi++;
    }
}

std::string
paretoTable(const std::vector<PointScore> &scores)
{
    Table table({"", "design point", "sensors", "area um2",
                 "overhead", "vuln"});
    for (const PointScore &s : scores)
        table.addRow({s.onFrontier ? "*" : "", s.point.label(),
                      cell(static_cast<uint64_t>(s.sensors)),
                      cell(s.areaUm2, 1), cell(s.runtimeOverhead, 3),
                      cell(s.vulnerability, 3)});
    return table.toText();
}

} // namespace turnpike
