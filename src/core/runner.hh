/**
 * @file
 * End-to-end runner: build workload -> compile under a scheme ->
 * simulate (or functionally interpret) -> collect results. The
 * benchmark harnesses and integration tests sit on top of this.
 */

#ifndef TURNPIKE_CORE_RUNNER_HH_
#define TURNPIKE_CORE_RUNNER_HH_

#include <string>
#include <vector>

#include "core/compiler.hh"
#include "sim/fault_injector.hh"
#include "workloads/suite.hh"

namespace turnpike {

/** Everything a bench needs from one (workload, scheme) run. */
struct RunResult
{
    std::string workload;
    std::string scheme;
    bool halted = false;
    PipelineStats pipe;        ///< timing results
    InterpStats dyn;           ///< functional dynamic counts
    StatSet compileStats;      ///< per-pass statistics
    uint64_t dataHash = 0;     ///< final data-segment hash (pipeline)
    uint64_t goldenHash = 0;   ///< functional-interpreter hash
    uint64_t archHash = 0;     ///< final register-file hash (pipeline)
    uint64_t codeBytes = 0;
    uint64_t baselineBytes = 0;
    uint64_t recoveryBytes = 0;
    double regionSizeAvg = 0;  ///< dynamic instructions per region
    /**
     * Host wall-clock phase profile: "host.build_workload",
     * "host.compile", "host.interpret", "host.simulate", plus the
     * per-pass "compile.*" entries from the compiler.
     */
    PhaseProfile profile;
};

/**
 * Knobs a vulnerability campaign needs beyond the defaults: a
 * bounded cycle budget (for hang detection) and permission for the
 * simulation not to halt (the bread and butter of fault studies;
 * the default strict mode still treats a non-halting run as a bug).
 */
struct RunOptions
{
    RunOptions() = default;
    RunOptions(uint64_t max_cycles, bool allow_no_halt)
        : maxCycles(max_cycles), allowNoHalt(allow_no_halt)
    {}

    /** Override PipelineConfig::maxCycles when nonzero. */
    uint64_t maxCycles = 0;
    /** Return halted=false instead of asserting on a hung run. */
    bool allowNoHalt = false;
    /**
     * Skip the functional (golden-hash) interpretation: replay
     * probes only need the pipeline's architectural results, and a
     * divergence bisection runs dozens of probes per trial.
     * goldenHash/dyn/regionSizeAvg stay zero when set.
     */
    bool skipInterpret = false;
    /** Attach an event tracer to the pipeline run (not owned). */
    Tracer *tracer = nullptr;
    /** Attach a commit-stream capture to the run (not owned). */
    CommitCapture *capture = nullptr;
};

/**
 * Full run: compile @p spec under @p cfg, simulate with the
 * pipeline (injecting @p faults if given) and functionally
 * interpret for the golden hash and dynamic counts.
 *
 * @param target_dyn_insts approximate baseline dynamic instructions.
 */
RunResult runWorkload(const WorkloadSpec &spec,
                      const ResilienceConfig &cfg,
                      uint64_t target_dyn_insts,
                      const std::vector<FaultEvent> &faults = {},
                      const RunOptions &opts = {});

/**
 * Compile-and-interpret only (no timing): much faster; fills dyn,
 * compile stats, code sizes and the golden hash.
 */
RunResult interpretWorkload(const WorkloadSpec &spec,
                            const ResilienceConfig &cfg,
                            uint64_t target_dyn_insts);

/**
 * Default dynamic-instruction budget for benches; reads the
 * TURNPIKE_BENCH_ICOUNT environment variable (default 200000).
 * Any value >= 1 is honored; a set-but-unparseable value earns a
 * one-line stderr warning and falls back to the default.
 */
uint64_t benchInstBudget();

} // namespace turnpike

#endif // TURNPIKE_CORE_RUNNER_HH_
