/**
 * @file
 * Campaign job model and checkpoint/resume: the persistence layer of
 * the campaign service. A Monte Carlo campaign of N trials is
 * decomposed into shards — contiguous trial ranges keyed by (seed,
 * trial-range) — each a self-describing unit of work whose results
 * are pure functions of the campaign identity, so a shard can run on
 * any worker thread, in any OS process, in any order, or in a
 * different invocation entirely, and the merged report is
 * byte-identical to a straight single-threaded run.
 *
 * Checkpoint format (`turnpike-checkpoint-v1`): a JSONL file whose
 * every line is length-framed as
 *
 *     LEN \t JSON \n
 *
 * where LEN is the decimal byte length of the JSON text. The first
 * record is a header carrying the campaign identity (and the golden
 * run's hashes, so a resume on a diverging build fails loudly);
 * every subsequent record is one completed shard with its per-trial
 * outcome/cycle/recovery/detection arrays. Writers emit complete
 * frames followed by fflush, so a kill -9 can lose at most a
 * partial final line — which the framing detects and the loader
 * drops (with a warning) as a truncated tail. A malformed frame
 * that IS newline-terminated cannot come from a torn write and is
 * rejected as corruption, never silently skipped.
 *
 * Multi-process mode: runShardsForked() forks N workers, each
 * running an interleaved subset of the pending shards and writing
 * its own checkpoint segment (`BASE.segP`); the parent reaps the
 * children, merges the segments into the main checkpoint, and
 * re-runs any shard a crashed child failed to deliver.
 */

#ifndef TURNPIKE_CORE_CAMPAIGN_HH_
#define TURNPIKE_CORE_CAMPAIGN_HH_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.hh"

namespace turnpike {

/** Schema tag on every checkpoint record. */
constexpr const char *kCheckpointSchemaVersion =
    "turnpike-checkpoint-v1";

/**
 * Everything that identifies a campaign's result set. Two runs with
 * equal identities produce bit-identical shard records; resuming
 * under a different identity is a hard error, not a silent merge of
 * incompatible results.
 */
struct CampaignIdentity
{
    std::string workload;   ///< "SUITE/NAME"
    /** schemeFingerprint() of the resilience config. */
    std::string scheme;
    uint64_t seed = 0;
    uint32_t trials = 0;
    uint32_t shardTrials = 0;
    uint64_t icount = 0;
    double missRate = 0.0;
    uint64_t hangFactor = 0;
    // Golden-run signature: equal configs must reproduce these, so a
    // resume against a diverging build (or a flipped default) is
    // caught before any counts are merged.
    uint64_t goldenCycles = 0;
    uint64_t goldenData = 0;
    uint64_t goldenArch = 0;
    uint64_t goldenInsts = 0;

    /**
     * FNV-1a digest of the configuration fields (the golden
     * signature is excluded — it is validated field-by-field with a
     * better error message). Stamped on every record so a shard can
     * never be merged into the wrong campaign.
     */
    uint64_t key() const;
};

/**
 * A deterministic fingerprint of every ResilienceConfig field that
 * can change campaign results — the scheme component of the
 * campaign identity. Label alone is not enough: the CLI mutates
 * sbSize/wcdl/detector/... underneath an unchanged label.
 */
std::string schemeFingerprint(const ResilienceConfig &cfg);

/** One shard of a campaign: trials [lo, hi). */
struct ShardRange
{
    uint32_t shard = 0;
    uint32_t lo = 0;
    uint32_t hi = 0;
};

/**
 * Decompose @p trials into shards of @p shard_trials (the last may
 * be short). shard i always covers [i*S, min((i+1)*S, trials)), so
 * the decomposition is a pure function of (trials, S) and a resume
 * can recognize completed shards by id alone.
 */
std::vector<ShardRange> decomposeShards(uint32_t trials,
                                        uint32_t shard_trials);

/**
 * Effective shard size: @p requested when nonzero, else the
 * TURNPIKE_SHARD_TRIALS environment variable, else 4. Always >= 1.
 * The default is small so even CI-sized campaigns exercise the
 * multi-shard paths.
 */
uint32_t campaignShardTrials(uint32_t requested);

/**
 * Effective process count for a campaign: @p requested when
 * nonzero, else TURNPIKE_PROCS, else 1. Clamped to [1, 64]; a
 * malformed environment value is warned about and ignored.
 */
unsigned campaignProcs(unsigned requested);

/** One completed shard's results: per-trial arrays over [lo, hi). */
struct ShardRecord
{
    uint32_t shard = 0;
    uint32_t lo = 0;
    uint32_t hi = 0;
    /** FaultOutcome per trial, enumerator-encoded. */
    std::vector<uint8_t> outcomes;
    std::vector<uint64_t> cycles;
    std::vector<uint64_t> recoveries;
    std::vector<uint64_t> detections;
    // Shard-level sums (addition commutes, so per-trial detail is
    // not needed to merge them deterministically).
    uint64_t eccCorrected = 0;
    uint64_t eccDetected = 0;
    uint64_t falseAlarms = 0;
};

enum class CheckpointStatus : uint8_t {
    Ok,            ///< every frame valid
    NoFile,        ///< path does not exist (fresh start)
    TruncatedTail, ///< last frame torn (kill -9); valid prefix kept
};

struct LoadedCheckpoint
{
    CheckpointStatus status = CheckpointStatus::NoFile;
    /** Completed shards by id, validated against the identity. */
    std::map<uint32_t, ShardRecord> shards;
    /** Byte length of the valid prefix (append resumes here). */
    uint64_t validBytes = 0;
};

/**
 * Load and validate a checkpoint against @p want. A missing file is
 * CheckpointStatus::NoFile; a torn final frame is TruncatedTail
 * (warned, valid prefix returned). Everything else that is wrong —
 * a newline-terminated malformed frame, a bad or missing header, a
 * key/identity/golden-signature mismatch, a duplicate shard id, a
 * shard inconsistent with the decomposition — is fatal(): resuming
 * must never silently drop or misattribute completed work.
 */
LoadedCheckpoint loadCheckpoint(const std::string &path,
                                const CampaignIdentity &want);

/**
 * Append-only checkpoint writer. appendShard() is thread-safe (the
 * campaign service calls it from whichever worker finished the
 * shard) and flushes each complete frame, so the kernel owns every
 * finished record even if the process is killed immediately after.
 */
class CheckpointWriter
{
  public:
    CheckpointWriter() = default;
    ~CheckpointWriter() { close(); }

    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;

    /** Truncate/create @p path and write the header frame. */
    void openFresh(const std::string &path, const CampaignIdentity &id);

    /**
     * Open @p path for appending after a loadCheckpoint() of the
     * same file: truncates the torn tail (if any) back to
     * @p loaded.validBytes first, or falls back to openFresh() when
     * the file did not exist.
     */
    void openResume(const std::string &path,
                    const CampaignIdentity &id,
                    const LoadedCheckpoint &loaded);

    /** Append one completed-shard frame and flush it. */
    void appendShard(const ShardRecord &rec);

    void close();
    bool isOpen() const { return f_ != nullptr; }

  private:
    void writeFrame(const std::string &json);
    void writeHeader(const CampaignIdentity &id);

    std::mutex mu_;
    std::FILE *f_ = nullptr;
    uint64_t key_ = 0;
};

/** Runs one shard to completion; pure in the campaign identity. */
using ShardRunner = std::function<ShardRecord(const ShardRange &)>;

/**
 * Execute @p pending across @p procs forked OS processes. Child p
 * runs shards pending[i] with i % procs == p and writes them to its
 * own segment file @p segment_base.segP; the parent reaps every
 * child, merges the segment records into @p have (and @p writer,
 * when open), deletes the segments, and re-runs locally — with a
 * warning, never a silent drop — any shard a crashed child failed
 * to deliver. Children never touch the parent's telemetry, chrome
 * sink, stdio buffers (they _Exit) or main checkpoint file.
 */
void runShardsForked(const std::vector<ShardRange> &pending,
                     unsigned procs, const CampaignIdentity &id,
                     const std::string &segment_base,
                     const ShardRunner &run_shard,
                     CheckpointWriter *writer,
                     std::map<uint32_t, ShardRecord> &have);

/**
 * Scratch segment base for multi-process campaigns with no
 * checkpoint file configured: "$TMPDIR/turnpike-ck-<pid>-<key>".
 */
std::string defaultSegmentBase(uint64_t key);

} // namespace turnpike

#endif // TURNPIKE_CORE_CAMPAIGN_HH_
