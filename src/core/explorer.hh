/**
 * @file
 * Automated design-space explorer: sweep the resilience co-design
 * axes (WCDL / sensor deployment, store-buffer size, CLQ design and
 * sizing, checkpoint-color pool, detector scheme), score every point
 * with the CACTI-fitted hardware cost model plus a measured AVF
 * campaign and runtime overhead, and mark the Pareto frontier over
 * (area, runtime overhead, vulnerability).
 *
 * Determinism contract (pinned by tests/explorer_test.cc and the CI
 * determinism job): the grid is enumerated in a fixed nested order,
 * every campaign seed is a pure function of the point's grid
 * position, and all measurements ride the submission-ordered
 * campaign engine — so the exported pareto.* statistics (and the
 * bench/ext_pareto BENCH_pareto.json artifact) are byte-identical at
 * any TURNPIKE_JOBS.
 */

#ifndef TURNPIKE_CORE_EXPLORER_HH_
#define TURNPIKE_CORE_EXPLORER_HH_

#include <string>
#include <vector>

#include "core/avf.hh"
#include "core/hwcost.hh"
#include "sim/sensors.hh"

namespace turnpike {

/** One point of the co-design space. */
struct DesignPoint
{
    uint32_t wcdl = 10;
    uint32_t sbSize = 4;
    ClqDesign clqDesign = ClqDesign::Compact;
    uint32_t clqEntries = 2;
    /** Checkpoint colors per register (0 = full pool). */
    uint32_t colorPool = 0;
    DetectorConfig detector;

    /** Compact human-readable identity, e.g.
     *  "wcdl10/sb4/clq-compact2/pool4/acoustic-parity". */
    std::string label() const;
};

/** The full Turnpike scheme a design point configures. */
ResilienceConfig designScheme(const DesignPoint &p);

/** A scored design point. */
struct PointScore
{
    DesignPoint point;
    /** Cheapest acoustic deployment meeting the point's WCDL. */
    uint32_t sensors = 0;
    /** Added silicon: SB CAM + Turnpike RAMs + ECC + sensors. */
    double areaUm2 = 0;
    /** Added per-access energy of the same structures. */
    double energyPj = 0;
    /** Geomean of scheme cycles / baseline cycles per workload. */
    double runtimeOverhead = 1.0;
    /** (SDC + Hang) / trials, aggregated across the workloads. */
    double vulnerability = 0.0;
    /** Set by markParetoFrontier: no other point dominates it. */
    bool onFrontier = false;
};

/** The sweep: axes, workloads and campaign sizing. */
struct ExplorerConfig
{
    /** Workloads each point is measured on (>= 1). */
    std::vector<WorkloadSpec> specs;
    uint64_t icount = 20000;
    /** AVF trials per (point, workload) cell. */
    uint32_t trials = 16;
    /** Base seed; each cell derives its own from the grid position. */
    uint64_t seed = 1;
    double sensorMissRate = 0.1;
    uint64_t hangFactor = 8;

    // -- the swept axes (outermost to innermost) ---------------------
    std::vector<uint32_t> wcdls = {10, 20};
    std::vector<uint32_t> sbSizes = {4, 8};
    std::vector<ClqDesign> clqDesigns = {ClqDesign::Compact};
    std::vector<uint32_t> clqEntries = {2};
    std::vector<uint32_t> colorPools = {0};
    /** Detector zoo names (detectorByName); >= 1. */
    std::vector<std::string> detectors = {"acoustic-parity"};
};

/**
 * Enumerate the grid in the fixed nested axis order (wcdl, sb, clq
 * design, clq entries, color pool, detector). Exposed so tests and
 * the stats export can rely on the same ordering as runExplorer.
 */
std::vector<DesignPoint> designGrid(const ExplorerConfig &cfg);

/**
 * The static (no-simulation) half of a point's score: hardware cost
 * of the configured structures plus the sensor deployment sized by
 * sensorsForWcdl. Exposed for the unit tests.
 */
PointScore staticScore(const DesignPoint &p);

/**
 * Mark the Pareto-optimal points of the 3-objective minimization
 * (areaUm2, runtimeOverhead, vulnerability): a point is dominated
 * when another point is <= on every objective and < on at least one.
 * Order-stable: only the onFrontier flags change.
 */
void markParetoFrontier(std::vector<PointScore> &scores);

/** Run the sweep: measure, score, and mark the frontier. */
std::vector<PointScore> runExplorer(const ExplorerConfig &cfg);

/**
 * Register the sweep under the pareto.* namespace: point/frontier
 * counts plus one stats block per frontier point (grid order).
 */
void exportParetoStats(StatRegistry &reg,
                       const std::vector<PointScore> &scores);

/** Render the scored sweep (frontier rows marked with '*'). */
std::string paretoTable(const std::vector<PointScore> &scores);

} // namespace turnpike

#endif // TURNPIKE_CORE_EXPLORER_HH_
