#include "core/rootcause.hh"

#include <algorithm>

#include "ir/opcode.hh"
#include "util/chrome_trace.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

namespace turnpike {

const char *
divergenceKindName(DivergenceKind k)
{
    switch (k) {
      case DivergenceKind::Commit:    return "commit";
      case DivergenceKind::Truncated: return "truncated";
      case DivergenceKind::Extended:  return "extended";
      case DivergenceKind::StateOnly: return "state_only";
    }
    return "unknown";
}

std::pair<uint64_t, uint64_t>
GoldenPrefixCache::probe(const TrialReplayer &replayer, uint64_t limit)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(limit);
        if (it != cache_.end())
            return it->second;
    }
    // Compute outside the lock: probes are pure functions of the
    // limit, so two threads racing on the same limit just do the
    // same work twice and insert identical values.
    CommitCapture cap;
    cap.limit = limit;
    replayer.goldenProbe(&cap);
    std::pair<uint64_t, uint64_t> result{cap.hash, cap.committed};
    std::lock_guard<std::mutex> lock(mu_);
    cache_.emplace(limit, result);
    return result;
}

namespace {

/** Faulty-stream prefix probe: (hash, commits) at @p limit. */
std::pair<uint64_t, uint64_t>
faultyProbe(const TrialReplayer &replayer, uint32_t trial,
            uint64_t limit)
{
    CommitCapture cap;
    cap.limit = limit;
    replayer.replay(trial, nullptr, &cap);
    return {cap.hash, cap.committed};
}

/** Windowed golden probe capturing the record at commit @p index. */
CommitRecord
goldenRecordAt(const TrialReplayer &replayer, uint64_t index)
{
    CommitCapture cap;
    cap.limit = index + 1;
    cap.windowLo = index;
    cap.windowHi = index + 1;
    replayer.goldenProbe(&cap);
    TP_ASSERT(!cap.window.empty(),
              "golden stream ended before commit %llu",
              static_cast<unsigned long long>(index));
    return cap.window.front();
}

/** Windowed faulty probe capturing the record at commit @p index. */
CommitRecord
faultyRecordAt(const TrialReplayer &replayer, uint32_t trial,
               uint64_t index)
{
    CommitCapture cap;
    cap.limit = index + 1;
    cap.windowLo = index;
    cap.windowHi = index + 1;
    replayer.replay(trial, nullptr, &cap);
    TP_ASSERT(!cap.window.empty(),
              "faulty stream of trial %u ended before commit %llu",
              trial, static_cast<unsigned long long>(index));
    return cap.window.front();
}

} // namespace

DivergencePoint
bisectDivergence(const TrialReplayer &replayer, uint32_t trial,
                 GoldenPrefixCache &goldenCache)
{
    DivergencePoint dp;

    // Stream lengths. The golden length is the golden run's commit
    // count; the faulty length needs one unlimited probe (an AVF
    // screen does not record per-trial commit counts).
    const uint64_t ng = replayer.golden().pipe.insts;
    const uint64_t nf =
        faultyProbe(replayer, trial, ~0ull).second;
    const uint64_t m = std::min(ng, nf);

    // E(i): "the first i commits of both streams are identical".
    // Monotone in i — once the streams diverge they never re-sync
    // into the same prefix hash — which is what makes the binary
    // search sound.
    auto equalPrefix = [&](uint64_t i) {
        dp.probes++;
        return goldenCache.probe(replayer, i) ==
            faultyProbe(replayer, trial, i);
    };

    if (equalPrefix(m)) {
        // No divergence within the shared prefix: classify by
        // relative length.
        dp.index = m;
        if (nf == ng) {
            dp.kind = DivergenceKind::StateOnly;
        } else if (nf < ng) {
            dp.kind = DivergenceKind::Truncated;
            dp.golden = goldenRecordAt(replayer, m);
        } else {
            dp.kind = DivergenceKind::Extended;
            dp.faulty = faultyRecordAt(replayer, trial, m);
        }
        return dp;
    }

    // Largest L with E(L) true: E(0) is trivially true (empty
    // prefixes), E(m) just tested false.
    uint64_t lo = 0, hi = m;
    while (hi - lo > 1) {
        uint64_t mid = lo + (hi - lo) / 2;
        if (equalPrefix(mid))
            lo = mid;
        else
            hi = mid;
    }
    dp.kind = DivergenceKind::Commit;
    dp.index = lo;
    dp.golden = goldenRecordAt(replayer, lo);
    dp.faulty = faultyRecordAt(replayer, trial, lo);
    return dp;
}

uint64_t
RootCauseReport::attributed() const
{
    return kindCounts[static_cast<int>(DivergenceKind::Commit)] +
        kindCounts[static_cast<int>(DivergenceKind::Truncated)] +
        kindCounts[static_cast<int>(DivergenceKind::Extended)];
}

void
RootCauseReport::merge(const RootCauseReport &other)
{
    TP_ASSERT(scheme.empty() || other.scheme.empty() ||
              scheme == other.scheme,
              "merging root-cause reports of different schemes "
              "(%s vs %s)", scheme.c_str(), other.scheme.c_str());
    if (scheme.empty()) {
        scheme = other.scheme;
        schemePruning = other.schemePruning;
        schemeLivm = other.schemeLivm;
    }
    trials += other.trials;
    analyzed += other.analyzed;
    for (int k = 0; k < kNumDivergenceKinds; k++)
        kindCounts[k] += other.kindCounts[k];
    for (const auto &kv : other.byOpcode)
        byOpcode[kv.first] += kv.second;
    inPrunedRegion += other.inPrunedRegion;
    inUnprunedRegion += other.inUnprunedRegion;
    totalProbes += other.totalProbes;
    screen.merge(other.screen);
}

RootCauseReport
runRootCauseAnalysis(const AvfCampaignConfig &cfg)
{
    // 1. Screen: the campaign itself, deterministic at any worker
    //    count, picks out the harmful trials.
    AvfReport campaign = runAvfCampaign(cfg);

    RootCauseReport rep;
    rep.workload = campaign.workload;
    rep.scheme = campaign.scheme;
    rep.schemePruning = cfg.scheme.pruning;
    rep.schemeLivm = cfg.scheme.livm;
    rep.trials = campaign.trials;

    std::vector<uint32_t> harmful;
    for (uint32_t t = 0; t < campaign.trials; t++) {
        FaultOutcome o = campaign.perTrial[t].outcome;
        if (o == FaultOutcome::Sdc || o == FaultOutcome::Hang)
            harmful.push_back(t);
    }
    rep.analyzed = static_cast<uint32_t>(harmful.size());
    if (harmful.empty()) {
        rep.screen = std::move(campaign);
        return rep;
    }

    // 2. Region snapshot: one compile of the same (workload, scheme)
    //    exposes the per-region pass decisions the attribution maps
    //    divergence PCs onto.
    std::vector<uint32_t> regionPruned;
    {
        std::unique_ptr<Module> mod = buildWorkload(cfg.spec,
                                                    cfg.icount);
        CompiledProgram prog = compileWorkload(*mod, cfg.scheme);
        for (const RegionMeta &rm : prog.mf->regions())
            regionPruned.push_back(rm.prunedLiveIns);
    }

    // 3. Bisect every harmful trial. Results are keyed by the
    //    trial's slot, never completion order, so the report is
    //    identical at any TURNPIKE_JOBS.
    TrialReplayer replayer(cfg);
    GoldenPrefixCache goldenCache;
    std::vector<DivergencePoint> points(harmful.size());
    {
        // Observation only: the bisection sweep is its own
        // telemetry campaign (classes = divergence kinds) and each
        // bisection is a span on its worker's chrome track.
        CampaignTelemetry *tel = telemetryForCampaign();
        ChromeTraceWriter *chrome = activeChromeTrace();
        if (tel) {
            tel->beginCampaign(
                "rootcause:" + rep.workload + ":" + rep.scheme,
                harmful.size(),
                {"commit", "truncated", "extended", "state_only"});
        }
        CampaignService::instance().run(
            harmful.size(), [&, tel, chrome](size_t i) {
                unsigned w = currentCampaignWorker();
                if (tel)
                    tel->itemStarted(w, i);
                uint64_t ts = chrome ? chrome->nowUs() : 0;
                points[i] = bisectDivergence(replayer, harmful[i],
                                             goldenCache);
                if (tel)
                    tel->itemFinished(
                        w, static_cast<int>(points[i].kind));
                if (chrome) {
                    uint64_t end = chrome->nowUs();
                    chrome->completeEvent(
                        "bisect trial " +
                            std::to_string(harmful[i]),
                        "bisect", kChromePidHost, threadChromeTid(),
                        ts, end > ts ? end - ts : 0,
                        "\"kind\":\"" +
                            std::string(divergenceKindName(
                                points[i].kind)) +
                            "\",\"probes\":" +
                            std::to_string(points[i].probes));
                }
            });
        if (tel)
            tel->endCampaign();
    }

    // 4. Aggregate in trial order.
    rep.attributions.reserve(harmful.size());
    for (size_t i = 0; i < harmful.size(); i++) {
        const DivergencePoint &dp = points[i];
        RootCauseAttribution a;
        a.trial = harmful[i];
        a.fault = campaign.perTrial[harmful[i]].fault;
        a.outcome = campaign.perTrial[harmful[i]].outcome;
        a.kind = dp.kind;
        a.divergeIndex = dp.index;
        a.probes = dp.probes;
        rep.kindCounts[static_cast<int>(dp.kind)]++;
        rep.totalProbes += dp.probes;
        if (dp.kind != DivergenceKind::StateOnly) {
            // Attribute to the golden-side record where one exists
            // (the program point the fault robbed); an Extended
            // divergence has no golden record, so the first extra
            // faulty commit stands in.
            const CommitRecord &rec =
                dp.kind == DivergenceKind::Extended ? dp.faulty
                                                    : dp.golden;
            a.pc = rec.pc;
            a.opcode = rec.opcode;
            a.opcodeName = opName(static_cast<Op>(rec.opcode));
            a.region = rec.region;
            if (a.region < regionPruned.size())
                a.regionPrunedLiveIns = regionPruned[a.region];
            a.inPrunedRegion = a.regionPrunedLiveIns > 0;
            rep.byOpcode[a.opcodeName]++;
            rep.byRegion[a.region]++;
            if (a.inPrunedRegion)
                rep.inPrunedRegion++;
            else
                rep.inUnprunedRegion++;
        }
        rep.attributions.push_back(std::move(a));
    }
    rep.screen = std::move(campaign);
    return rep;
}

void
exportRootCauseStats(StatRegistry &reg, const RootCauseReport &rep)
{
    reg.addScalar("rootcause.trials",
                  static_cast<uint64_t>(rep.trials),
                  "campaign trials screened", "trial");
    reg.addScalar("rootcause.analyzed",
                  static_cast<uint64_t>(rep.analyzed),
                  "harmful (SDC/Hang) trials bisected", "trial");
    const uint64_t attributed = rep.attributed();
    reg.addScalar("rootcause.attributed", attributed,
                  "harmful trials attributed to a specific "
                  "committed instruction", "trial");
    reg.addScalar("rootcause.state_only",
                  rep.kindCounts[static_cast<int>(
                      DivergenceKind::StateOnly)],
                  "harmful trials with identical commit streams "
                  "(pure state corruption)", "trial");
    for (int k = 0; k < kNumDivergenceKinds; k++)
        reg.addScalar(std::string("rootcause.kind.") +
                          divergenceKindName(
                              static_cast<DivergenceKind>(k)),
                      rep.kindCounts[k],
                      std::string("harmful trials with a ") +
                          divergenceKindName(
                              static_cast<DivergenceKind>(k)) +
                          " divergence", "trial");
    for (const auto &kv : rep.byOpcode)
        reg.addScalar("rootcause.opcode." + kv.first, kv.second,
                      "harmful trials attributed to this opcode",
                      "trial");
    reg.addScalar("rootcause.pruned_region", rep.inPrunedRegion,
                  "attributed trials whose region had checkpoint "
                  "stores pruned", "trial");
    reg.addScalar("rootcause.unpruned_region", rep.inUnprunedRegion,
                  "attributed trials whose region kept every "
                  "checkpoint store", "trial");
    reg.addScalar("rootcause.probes", rep.totalProbes,
                  "prefix-equality queries across all bisections",
                  "probe");
    const uint64_t analyzed = rep.analyzed;
    reg.addFormula("rootcause.rate.attributed",
                   "rootcause.attributed / rootcause.analyzed",
                   [attributed, analyzed] {
                       return analyzed
                           ? static_cast<double>(attributed) /
                                 static_cast<double>(analyzed)
                           : 0.0;
                   },
                   "fraction of harmful trials pinned to a "
                   "specific committed instruction");
}

std::string
rootCauseTable(const RootCauseReport &rep)
{
    Table table({"trial", "outcome", "kind", "commit", "pc",
                 "opcode", "region", "pruned", "probes"});
    for (const RootCauseAttribution &a : rep.attributions) {
        bool attributed = a.kind != DivergenceKind::StateOnly;
        table.addRow(
            {cell(static_cast<uint64_t>(a.trial)),
             faultOutcomeName(a.outcome), divergenceKindName(a.kind),
             cell(a.divergeIndex),
             attributed ? cell(static_cast<uint64_t>(a.pc)) : "-",
             attributed ? a.opcodeName : "-",
             attributed ? cell(static_cast<uint64_t>(a.region)) : "-",
             attributed ? (a.inPrunedRegion ? "yes" : "no") : "-",
             cell(static_cast<uint64_t>(a.probes))});
    }
    return table.toText();
}

} // namespace turnpike
