#include "core/avf.hh"

#include <map>

#include "core/campaign.hh"
#include "util/chrome_trace.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

namespace turnpike {

const char *
faultOutcomeName(FaultOutcome o)
{
    switch (o) {
      case FaultOutcome::Masked:    return "masked";
      case FaultOutcome::Recovered: return "recovered";
      case FaultOutcome::Sdc:       return "sdc";
      case FaultOutcome::Hang:      return "hang";
      case FaultOutcome::FalsePos:  return "false-pos";
    }
    return "unknown";
}

uint64_t
AvfReport::outcomeTotal(FaultOutcome o) const
{
    uint64_t total = 0;
    for (int t = 0; t < kNumFaultTargets; t++)
        total += counts[t][static_cast<int>(o)];
    return total;
}

double
AvfReport::rate(FaultOutcome o) const
{
    return trials ? static_cast<double>(outcomeTotal(o)) /
                        static_cast<double>(trials)
                  : 0.0;
}

double
AvfReport::vulnerability() const
{
    return rate(FaultOutcome::Sdc) + rate(FaultOutcome::Hang);
}

void
AvfReport::merge(const AvfReport &other)
{
    TP_ASSERT(scheme.empty() || other.scheme.empty() ||
              scheme == other.scheme,
              "merging AVF reports of different schemes (%s vs %s)",
              scheme.c_str(), other.scheme.c_str());
    if (scheme.empty())
        scheme = other.scheme;
    trials += other.trials;
    detector = other.detector;
    eccCorrected += other.eccCorrected;
    eccDetected += other.eccDetected;
    falseAlarmEvents += other.falseAlarmEvents;
    for (int t = 0; t < kNumFaultTargets; t++) {
        injected[t] += other.injected[t];
        for (int o = 0; o < kNumFaultOutcomes; o++)
            counts[t][o] += other.counts[t][o];
    }
}

uint64_t
avfCycleBudget(uint64_t hangFactor, uint64_t goldenCycles)
{
    TP_ASSERT(hangFactor >= 1,
              "hang factor must be >= 1 (0 would classify every "
              "trial as Hang)");
    // Saturating multiply: a huge factor must clamp, not wrap into a
    // tiny budget that flags every trial as a hang.
    uint64_t budget;
    if (goldenCycles != 0 &&
        hangFactor > kMaxTrialCycleBudget / goldenCycles)
        budget = kMaxTrialCycleBudget;
    else
        budget = hangFactor * goldenCycles;
    if (budget > kMaxTrialCycleBudget - 100000)
        return kMaxTrialCycleBudget;
    return budget + 100000;
}

TrialNoise
detectorTrialNoise(const DetectorConfig &det)
{
    TrialNoise noise;
    noise.falseNegRate = det.falseNegRate;
    noise.falsePosRate = det.falsePosRate;
    noise.filterLatency = det.filterLatency;
    noise.maxBurst = det.maxBurst;
    return noise;
}

FaultOutcome
classifyOutcome(const RunResult &golden, const RunResult &faulty,
                bool spurious)
{
    if (!faulty.halted)
        return FaultOutcome::Hang;
    // A spurious trial injected nothing: a matching image means the
    // needless rollback was harmless (FalsePos, not Recovered — the
    // detector saved nothing), a diverging one means the recovery
    // machinery itself corrupted state.
    if (spurious)
        return faulty.dataHash == golden.dataHash &&
                faulty.archHash == golden.archHash
            ? FaultOutcome::FalsePos
            : FaultOutcome::Sdc;
    if (faulty.pipe.recoveries > 0)
        return faulty.dataHash == golden.dataHash
            ? FaultOutcome::Recovered
            : FaultOutcome::Sdc;
    // A recovery-free run must also commit exactly as many
    // instructions as the golden run: a strike that warps the PC to
    // an early Halt can leave both hashes untouched (nothing more was
    // written) yet silently drop the tail of the computation — that
    // truncation is an SDC, not a masked strike.
    return faulty.dataHash == golden.dataHash &&
            faulty.archHash == golden.archHash &&
            faulty.pipe.insts == golden.pipe.insts
        ? FaultOutcome::Masked
        : FaultOutcome::Sdc;
}

namespace {

/**
 * The scheme half of the campaign identity: the config fingerprint,
 * plus the target list when the caller narrowed it (the targets
 * change every trial's fault draw, so two campaigns over different
 * target sets must never share a checkpoint).
 */
std::string
avfIdentityScheme(const AvfCampaignConfig &cfg)
{
    std::string s = schemeFingerprint(cfg.scheme);
    if (!cfg.targets.empty()) {
        s += ";targets=";
        for (size_t i = 0; i < cfg.targets.size(); i++) {
            if (i)
                s += ',';
            s += std::to_string(int(cfg.targets[i]));
        }
    }
    return s;
}

} // namespace

AvfReport
runAvfCampaign(const AvfCampaignConfig &cfg)
{
    const std::vector<FaultTarget> &targets =
        cfg.targets.empty() ? allFaultTargets() : cfg.targets;
    TP_ASSERT(cfg.checkpointFile.empty() || cfg.resumeFile.empty(),
              "checkpointFile and resumeFile are mutually exclusive");

    // The fault-free golden run: reference image/arch state, and the
    // horizon the strike cycles are drawn from.
    RunOptions goldenOpts;
    goldenOpts.tracer = cfg.goldenTracer;
    RunResult golden =
        runWorkload(cfg.spec, cfg.scheme, cfg.icount, {}, goldenOpts);

    AvfReport rep;
    rep.workload = golden.workload;
    rep.scheme = golden.scheme;
    rep.trials = cfg.trials;
    rep.sensorMissRate = cfg.sensorMissRate;
    rep.goldenCycles = golden.pipe.cycles;
    // Recovery storms legitimately multiply the runtime; only budget
    // exhaustion far beyond that is a hang.
    rep.cycleBudget = avfCycleBudget(cfg.hangFactor,
                                     golden.pipe.cycles);
    rep.detector = cfg.scheme.detector;

    // The detector scheme's noisy-sensor model rides along with each
    // trial fault. The default detector leaves TrialNoise at its
    // defaults, so legacy campaigns draw the exact same RNG stream.
    TrialNoise noise = detectorTrialNoise(cfg.scheme.detector);

    // The campaign identity every shard record is keyed by. The
    // golden signature rides along so a resume against a diverging
    // build fails loudly instead of merging incompatible results.
    CampaignIdentity id;
    id.workload = rep.workload;
    id.scheme = avfIdentityScheme(cfg);
    id.seed = cfg.seed;
    id.trials = cfg.trials;
    id.shardTrials = campaignShardTrials(cfg.shardTrials);
    id.icount = cfg.icount;
    id.missRate = cfg.sensorMissRate;
    id.hangFactor = cfg.hangFactor;
    id.goldenCycles = golden.pipe.cycles;
    id.goldenData = golden.dataHash;
    id.goldenArch = golden.archHash;
    id.goldenInsts = golden.pipe.insts;

    const std::vector<ShardRange> shards =
        decomposeShards(cfg.trials, id.shardTrials);

    // Checkpoint plumbing: completed shards already on disk are
    // skipped; new ones are appended as they finish.
    std::map<uint32_t, ShardRecord> have;
    CheckpointWriter writer;
    std::string ckPath = cfg.resumeFile.empty() ? cfg.checkpointFile
                                                : cfg.resumeFile;
    if (!cfg.resumeFile.empty()) {
        LoadedCheckpoint loaded = loadCheckpoint(cfg.resumeFile, id);
        have = std::move(loaded.shards);
        writer.openResume(cfg.resumeFile, id, loaded);
        // Status to stderr: stdout stays byte-identical to an
        // uninterrupted run (the resume CI job diffs it).
        if (loaded.status == CheckpointStatus::NoFile)
            inform("resume: %s does not exist yet; starting fresh",
                   cfg.resumeFile.c_str());
        else
            inform("resume: %zu of %zu shards already complete in "
                   "%s", have.size(), shards.size(),
                   cfg.resumeFile.c_str());
    } else if (!cfg.checkpointFile.empty()) {
        writer.openFresh(cfg.checkpointFile, id);
    }

    std::vector<ShardRange> pending;
    pending.reserve(shards.size());
    uint64_t pendingTrials = 0;
    for (const ShardRange &sr : shards) {
        if (have.count(sr.shard))
            continue;
        pending.push_back(sr);
        pendingTrials += sr.hi - sr.lo;
    }

    // One shard, start to finish: pure in (identity, shard range),
    // so it computes the same record on any worker thread, in any
    // forked child, or in a later resumed invocation. Telemetry and
    // chrome spans are re-fetched per shard because forked children
    // must see their nulled sinks, not a captured parent pointer.
    ShardRunner runShard = [&](const ShardRange &sr) {
        CampaignTelemetry *tel = activeTelemetry();
        ChromeTraceWriter *chrome = activeChromeTrace();
        unsigned w = currentCampaignWorker();
        ShardRecord rec;
        rec.shard = sr.shard;
        rec.lo = sr.lo;
        rec.hi = sr.hi;
        size_t n = sr.hi - sr.lo;
        rec.outcomes.reserve(n);
        rec.cycles.reserve(n);
        rec.recoveries.reserve(n);
        rec.detections.reserve(n);
        for (uint32_t t = sr.lo; t < sr.hi; t++) {
            FaultEvent fault = makeTrialFault(
                cfg.seed, t, golden.pipe.cycles, cfg.scheme.wcdl,
                targets, cfg.sensorMissRate, noise);
            if (tel)
                tel->itemStarted(w, t);
            uint64_t ts = chrome ? chrome->nowUs() : 0;
            RunResult r = runWorkload(cfg.spec, cfg.scheme,
                                      cfg.icount, {fault},
                                      {rep.cycleBudget, true});
            FaultOutcome o =
                classifyOutcome(golden, r, fault.spurious);
            if (tel)
                tel->itemFinished(w, static_cast<int>(o));
            if (chrome) {
                uint64_t end = chrome->nowUs();
                chrome->completeEvent(
                    "trial " + std::to_string(t), "trial",
                    kChromePidHost, threadChromeTid(), ts,
                    end > ts ? end - ts : 0,
                    "\"trial\":" + std::to_string(t) +
                        ",\"outcome\":\"" + faultOutcomeName(o) +
                        "\"");
            }
            rec.outcomes.push_back(uint8_t(o));
            rec.cycles.push_back(r.pipe.cycles);
            rec.recoveries.push_back(r.pipe.recoveries);
            rec.detections.push_back(r.pipe.detectedFaults);
            rec.eccCorrected += r.pipe.eccCorrected;
            rec.eccDetected += r.pipe.eccDetected;
            rec.falseAlarms += r.pipe.falseAlarms;
        }
        return rec;
    };

    unsigned procs = campaignProcs(cfg.procs);
    if (procs > 1 && !pending.empty()) {
        // Forked children cannot feed the parent's progress
        // monitor, so multi-process campaigns skip telemetry
        // entirely rather than report a misleading trickle.
        std::string segBase = ckPath.empty()
            ? defaultSegmentBase(id.key())
            : ckPath;
        runShardsForked(pending, procs, id, segBase, runShard,
                        writer.isOpen() ? &writer : nullptr, have);
    } else {
        CampaignTelemetry *tel = telemetryForCampaign();
        if (tel)
            tel->beginCampaign(
                "avf:" + rep.workload + ":" + rep.scheme,
                pendingTrials,
                {"masked", "recovered", "sdc", "hang",
                 "false-pos"});
        std::vector<ShardRecord> fresh(pending.size());
        CampaignService::instance().run(
            pending.size(), [&](size_t i) {
                fresh[i] = runShard(pending[i]);
                if (writer.isOpen())
                    writer.appendShard(fresh[i]);
            });
        if (tel)
            tel->endCampaign();
        for (ShardRecord &rec : fresh)
            have.emplace(rec.shard, std::move(rec));
    }
    writer.close();

    // Assemble the report in ascending trial order — the same order
    // the old per-trial loop used, so every downstream export is
    // byte-identical however the shards were actually executed.
    rep.perTrial.reserve(cfg.trials);
    for (const auto &kv : have) {
        const ShardRecord &rec = kv.second;
        for (uint32_t t = rec.lo; t < rec.hi; t++) {
            AvfTrial trial;
            trial.fault = makeTrialFault(
                cfg.seed, t, golden.pipe.cycles, cfg.scheme.wcdl,
                targets, cfg.sensorMissRate, noise);
            trial.outcome = FaultOutcome(rec.outcomes[t - rec.lo]);
            trial.cycles = rec.cycles[t - rec.lo];
            trial.recoveries = rec.recoveries[t - rec.lo];
            trial.detections = rec.detections[t - rec.lo];
            int ti = static_cast<int>(trial.fault.target);
            rep.injected[ti]++;
            rep.counts[ti][static_cast<int>(trial.outcome)]++;
            rep.perTrial.push_back(trial);
        }
        rep.eccCorrected += rec.eccCorrected;
        rep.eccDetected += rec.eccDetected;
        rep.falseAlarmEvents += rec.falseAlarms;
    }
    TP_ASSERT(rep.perTrial.size() == cfg.trials,
              "campaign assembled %zu of %u trials",
              rep.perTrial.size(), cfg.trials);
    return rep;
}

void
exportAvfStats(StatRegistry &reg, const AvfReport &rep)
{
    reg.addScalar("avf.trials", static_cast<uint64_t>(rep.trials),
                  "Monte Carlo injection trials", "trial");
    reg.addScalar("avf.golden_cycles", rep.goldenCycles,
                  "fault-free run length", "cycle");
    reg.addScalar("avf.cycle_budget", rep.cycleBudget,
                  "per-trial cycle budget before Hang", "cycle");
    reg.addScalar("avf.sensor_miss_rate", rep.sensorMissRate,
                  "probability a strike escapes the acoustic "
                  "sensors", "ratio");

    const uint64_t trials = rep.trials;
    for (int o = 0; o < kNumFaultOutcomes; o++) {
        FaultOutcome oc = static_cast<FaultOutcome>(o);
        std::string name = faultOutcomeName(oc);
        const uint64_t n = rep.outcomeTotal(oc);
        reg.addScalar("avf.outcome." + name, n,
                      "trials classified " + name, "trial");
        reg.addFormula("avf.rate." + name,
                       "avf.outcome." + name + " / avf.trials",
                       [n, trials] {
                           return trials
                               ? static_cast<double>(n) /
                                     static_cast<double>(trials)
                               : 0.0;
                       },
                       "fraction of trials classified " + name);
    }
    const uint64_t bad = rep.outcomeTotal(FaultOutcome::Sdc) +
        rep.outcomeTotal(FaultOutcome::Hang);
    reg.addFormula("avf.vulnerability",
                   "(avf.outcome.sdc + avf.outcome.hang) / avf.trials",
                   [bad, trials] {
                       return trials
                           ? static_cast<double>(bad) /
                                 static_cast<double>(trials)
                           : 0.0;
                   },
                   "probability a random strike corrupts or loses "
                   "the architectural result");
    reg.addScalar("avf.falsePositives", rep.falsePositives(),
                  "spurious-detection trials (no fault injected, "
                  "detector fired anyway)", "trial");

    reg.setMeta("detector.name", rep.detector.label);
    reg.addScalar("detector.protect.reg",
                  static_cast<uint64_t>(rep.detector.reg),
                  "register-file protection level (0=none 1=parity "
                  "2=secded 3=ldpc)", "level");
    reg.addScalar("detector.protect.sb",
                  static_cast<uint64_t>(rep.detector.sb),
                  "store-buffer protection level", "level");
    reg.addScalar("detector.protect.cache",
                  static_cast<uint64_t>(rep.detector.cache),
                  "cache-data protection level", "level");
    reg.addScalar("detector.false_pos_rate", rep.detector.falsePosRate,
                  "per-trial probability of a spurious detection",
                  "ratio");
    reg.addScalar("detector.false_neg_rate", rep.detector.falseNegRate,
                  "extra per-strike probability the detector misses",
                  "ratio");
    reg.addScalar("detector.filter_latency",
                  static_cast<uint64_t>(rep.detector.filterLatency),
                  "median-filter delay added to every detection",
                  "cycle");
    reg.addScalar("detector.max_burst",
                  static_cast<uint64_t>(rep.detector.maxBurst),
                  "widest multi-bit upset the fault model draws",
                  "bit");
    reg.addScalar("detector.ecc_corrected", rep.eccCorrected,
                  "strikes corrected in place by structure ECC",
                  "event");
    reg.addScalar("detector.ecc_detected", rep.eccDetected,
                  "strikes detected (not corrected) by structure ECC",
                  "event");
    reg.addScalar("detector.false_alarms", rep.falseAlarmEvents,
                  "spurious detection events raised in the pipeline",
                  "event");

    for (int t = 0; t < kNumFaultTargets; t++) {
        std::string base = std::string("avf.target.") +
            faultTargetName(static_cast<FaultTarget>(t));
        reg.addScalar(base + ".injected", rep.injected[t],
                      "strikes injected into this structure",
                      "trial");
        for (int o = 0; o < kNumFaultOutcomes; o++)
            reg.addScalar(
                base + "." +
                    faultOutcomeName(static_cast<FaultOutcome>(o)),
                rep.counts[t][o],
                std::string("strikes on this structure classified ") +
                    faultOutcomeName(static_cast<FaultOutcome>(o)),
                "trial");
    }
}

std::string
avfReportTable(const AvfReport &rep)
{
    Table table({"target", "injected", "masked", "recovered", "sdc",
                 "hang", "false-pos", "sdc rate"});
    for (int t = 0; t < kNumFaultTargets; t++) {
        if (rep.injected[t] == 0)
            continue;
        const uint64_t *row = rep.counts[t];
        table.addRow(
            {faultTargetName(static_cast<FaultTarget>(t)),
             cell(rep.injected[t]), cell(row[0]), cell(row[1]),
             cell(row[2]), cell(row[3]), cell(row[4]),
             cell(static_cast<double>(row[2]) /
                      static_cast<double>(rep.injected[t]), 3)});
    }
    table.addRow({"TOTAL", cell(static_cast<uint64_t>(rep.trials)),
                  cell(rep.outcomeTotal(FaultOutcome::Masked)),
                  cell(rep.outcomeTotal(FaultOutcome::Recovered)),
                  cell(rep.outcomeTotal(FaultOutcome::Sdc)),
                  cell(rep.outcomeTotal(FaultOutcome::Hang)),
                  cell(rep.outcomeTotal(FaultOutcome::FalsePos)),
                  cell(rep.rate(FaultOutcome::Sdc), 3)});
    return table.toText();
}

} // namespace turnpike
