/**
 * @file
 * Resilience-scheme configuration: one struct capturing both halves
 * of the co-design (compiler pass toggles and hardware features),
 * with named factories for every configuration the paper evaluates —
 * the Fig. 21 ablation ladder from Turnstile to full Turnpike.
 */

#ifndef TURNPIKE_CORE_CONFIG_HH_
#define TURNPIKE_CORE_CONFIG_HH_

#include <string>

#include "sim/pipeline.hh"

namespace turnpike {

/** A full scheme: compiler toggles + hardware toggles + sizing. */
struct ResilienceConfig
{
    std::string label = "turnpike";

    /** Master switch; false = no soft-error support at all. */
    bool resilience = true;

    // -- compiler optimizations (paper §4.1, §4.2) ------------------
    bool livm = false;         ///< loop induction variable merging
    bool pruning = false;      ///< optimal checkpoint pruning
    bool licm = false;         ///< checkpoint sinking / loop LICM
    bool scheduling = false;   ///< checkpoint-aware scheduling
    bool storeAwareRa = false; ///< write-weighted spill costs

    // -- hardware schemes (paper §4.3) -------------------------------
    bool warFreeRelease = false; ///< CLQ fast release, regular stores
    bool hwColoring = false;     ///< colored checkpoint fast release
    bool naiveCkptRelease = false; ///< Fig. 16 unsafe mode (tests)
    ClqDesign clqDesign = ClqDesign::Compact;
    uint32_t clqEntries = 2;

    // -- detection / protection (sim/detector.hh) --------------------
    /**
     * Detector scheme: per-structure protection levels plus the
     * noisy-sensor model. The default ("acoustic-parity") is the
     * paper's scheme and reproduces the pre-zoo fault model exactly.
     */
    DetectorConfig detector;

    // -- sizing --------------------------------------------------------
    uint32_t sbSize = 4;
    uint32_t wcdl = 10;
    /** Checkpoint colors per register (0 = full pool, the default). */
    uint32_t colorPool = 0;
    /**
     * Regular-store budget per region for partitioning; 0 selects
     * the paper's rule (SB/2, so one region's verification overlaps
     * the next region's execution, §4.3.1).
     */
    uint32_t regionStoreBudget = 0;

    /** No resilience support (the normalization baseline). */
    static ResilienceConfig baseline();
    /** Turnstile as adapted to in-order cores (state of the art). */
    static ResilienceConfig turnstile(uint32_t wcdl = 10);
    /** Fig. 21 step: Turnstile + WAR-free checking. */
    static ResilienceConfig warFreeOnly(uint32_t wcdl = 10);
    /** Fig. 21 step: + hardware coloring (full fast release). */
    static ResilienceConfig fastRelease(uint32_t wcdl = 10);
    /** Fig. 21 step: + checkpoint pruning. */
    static ResilienceConfig fastReleasePruning(uint32_t wcdl = 10);
    /** Fig. 21 step: + LICM checkpoint sinking. */
    static ResilienceConfig fastReleasePruningLicm(uint32_t wcdl = 10);
    /** Fig. 21 step: + instruction scheduling. */
    static ResilienceConfig fastReleasePruningLicmSched(
        uint32_t wcdl = 10);
    /** Fig. 21 step: + store-aware register allocation. */
    static ResilienceConfig fastReleasePruningLicmSchedRa(
        uint32_t wcdl = 10);
    /** Full Turnpike (adds LIVM on top of everything). */
    static ResilienceConfig turnpike(uint32_t wcdl = 10);

    /** Derive the simulator configuration. */
    PipelineConfig toPipelineConfig() const;
};

} // namespace turnpike

#endif // TURNPIKE_CORE_CONFIG_HH_
