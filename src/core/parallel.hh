/**
 * @file
 * Parallel campaign engine: a small fixed-size thread pool plus a
 * runCampaign() API that executes many independent
 * runWorkload()/interpretWorkload() jobs concurrently. Every paper
 * figure is a grid of (workload, scheme) cells and every
 * fault-injection study is thousands of independent simulations;
 * each InOrderPipeline instance is self-contained state, so the
 * grid is embarrassingly parallel.
 *
 * Results are keyed by submission index, never by completion order,
 * so tables and geomeans computed from a campaign are bit-identical
 * to a serial run. The worker count honors the TURNPIKE_JOBS
 * environment variable (default: hardware_concurrency(); 1 forces
 * the serial path for debugging).
 */

#ifndef TURNPIKE_CORE_PARALLEL_HH_
#define TURNPIKE_CORE_PARALLEL_HH_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runner.hh"

namespace turnpike {

/** One cell of a campaign grid: everything one run needs. */
struct RunRequest
{
    RunRequest() = default;
    RunRequest(WorkloadSpec spec_, ResilienceConfig cfg_,
               uint64_t insts_, std::vector<FaultEvent> faults_ = {},
               bool interpret_only = false, RunOptions opts_ = {})
        : spec(std::move(spec_)), cfg(std::move(cfg_)),
          targetDynInsts(insts_), faults(std::move(faults_)),
          interpretOnly(interpret_only), opts(opts_)
    {}

    WorkloadSpec spec;
    ResilienceConfig cfg;
    uint64_t targetDynInsts = 0;
    /** Fault plan for the pipeline run; ignored by functional runs. */
    std::vector<FaultEvent> faults;
    /** Use interpretWorkload() (no timing) instead of the pipeline. */
    bool interpretOnly = false;
    /** Cycle budget / hang tolerance (vulnerability campaigns). */
    RunOptions opts;
};

/**
 * Worker count for runCampaign(): TURNPIKE_JOBS when set to a
 * positive integer (a malformed value is warned about and ignored),
 * otherwise hardware_concurrency(). Always at least 1.
 */
unsigned campaignJobs();

/**
 * The 0-based pool-worker index of the calling thread: 0 on the
 * main thread (and thus on the serial campaign path), i for the
 * i-th worker of the innermost ThreadPool the thread belongs to.
 * Stable for a thread's whole lifetime — telemetry and the chrome
 * trace use it as the per-worker track id, so track assignment is
 * identical between runs at equal TURNPIKE_JOBS.
 */
unsigned currentCampaignWorker();

/**
 * Observation hooks for runCampaign(): both run on the worker
 * thread executing the cell, before/after the run. They must be
 * observational — results are keyed by submission index regardless,
 * and the hooks see each index exactly once. Used by the telemetry
 * layer (progress counters) and the chrome trace (trial spans);
 * empty functions are skipped, so the plain overload pays nothing.
 */
struct CampaignObserver
{
    std::function<void(unsigned worker, size_t index)> onStart;
    std::function<void(unsigned worker, size_t index,
                       const RunResult &result)> onFinish;
};

/**
 * Execute every request, spreading the work over campaignJobs()
 * threads, and return the results in submission order: result[i]
 * always corresponds to requests[i], whatever order the cells
 * finished in. With one job (or one request) no threads are spawned
 * and the requests run serially on the caller's thread.
 */
std::vector<RunResult> runCampaign(
    const std::vector<RunRequest> &requests);

/** runCampaign() with per-cell observation hooks. */
std::vector<RunResult> runCampaign(
    const std::vector<RunRequest> &requests,
    const CampaignObserver &observer);

/**
 * A fixed-size pool of worker threads draining a FIFO job queue.
 * runCampaign() is the intended front end; the pool is exposed for
 * harnesses that need to parallelize work that is not shaped like a
 * RunRequest (and for the unit tests).
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to at least 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job; it runs on some worker, FIFO order. */
    void submit(std::function<void()> job);

    /**
     * Block until every job submitted so far has finished. The
     * mutex handoff makes the workers' writes visible to the
     * caller.
     */
    void wait();

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop(unsigned index);

    std::mutex mu_;
    std::condition_variable work_cv_;  ///< signals queued work / stop
    std::condition_variable idle_cv_;  ///< signals pending_ hitting 0
    std::deque<std::function<void()>> queue_;
    uint64_t pending_ = 0; ///< queued + currently executing jobs
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace turnpike

#endif // TURNPIKE_CORE_PARALLEL_HH_
