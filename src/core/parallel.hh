/**
 * @file
 * Parallel campaign engine: a persistent campaign service whose
 * worker threads drain a growable lock-free MPMC queue
 * (util/mpmc_queue.hh), plus the runCampaign() API that executes
 * many independent runWorkload()/interpretWorkload() jobs
 * concurrently on top of it. Every paper figure is a grid of
 * (workload, scheme) cells and every fault-injection study is
 * thousands of independent simulations; each InOrderPipeline
 * instance is self-contained state, so the grid is embarrassingly
 * parallel.
 *
 * The service is long-lived: one set of worker threads serves every
 * batch in the process (AVF shards, root-cause bisections, explorer
 * grids) instead of each call spawning and joining its own pool,
 * and work is claimed item-by-item from the queue, so a straggling
 * item no longer serializes the tail the way a static index split
 * did. Results are keyed by submission index, never by completion
 * order or by which worker ran them, so tables and geomeans
 * computed from a campaign are bit-identical to a serial run. The
 * worker count honors the TURNPIKE_JOBS environment variable
 * (default: hardware_concurrency(); 1 forces the serial path for
 * debugging).
 */

#ifndef TURNPIKE_CORE_PARALLEL_HH_
#define TURNPIKE_CORE_PARALLEL_HH_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runner.hh"
#include "util/mpmc_queue.hh"

namespace turnpike {

/** One cell of a campaign grid: everything one run needs. */
struct RunRequest
{
    RunRequest() = default;
    RunRequest(WorkloadSpec spec_, ResilienceConfig cfg_,
               uint64_t insts_, std::vector<FaultEvent> faults_ = {},
               bool interpret_only = false, RunOptions opts_ = {})
        : spec(std::move(spec_)), cfg(std::move(cfg_)),
          targetDynInsts(insts_), faults(std::move(faults_)),
          interpretOnly(interpret_only), opts(opts_)
    {}

    WorkloadSpec spec;
    ResilienceConfig cfg;
    uint64_t targetDynInsts = 0;
    /** Fault plan for the pipeline run; ignored by functional runs. */
    std::vector<FaultEvent> faults;
    /** Use interpretWorkload() (no timing) instead of the pipeline. */
    bool interpretOnly = false;
    /** Cycle budget / hang tolerance (vulnerability campaigns). */
    RunOptions opts;
};

/**
 * Worker count for runCampaign(): TURNPIKE_JOBS when set to a
 * positive integer (a malformed value is warned about and ignored),
 * otherwise hardware_concurrency(). Always at least 1.
 */
unsigned campaignJobs();

/**
 * The 0-based pool-worker index of the calling thread: 0 on the
 * main thread (and thus on the serial campaign path), i for the
 * i-th worker of the innermost ThreadPool the thread belongs to.
 * Stable for a thread's whole lifetime — telemetry and the chrome
 * trace use it as the per-worker track id, so track assignment is
 * identical between runs at equal TURNPIKE_JOBS.
 */
unsigned currentCampaignWorker();

/**
 * Observation hooks for runCampaign(): both run on the worker
 * thread executing the cell, before/after the run. They must be
 * observational — results are keyed by submission index regardless,
 * and the hooks see each index exactly once. Used by the telemetry
 * layer (progress counters) and the chrome trace (trial spans);
 * empty functions are skipped, so the plain overload pays nothing.
 */
struct CampaignObserver
{
    std::function<void(unsigned worker, size_t index)> onStart;
    std::function<void(unsigned worker, size_t index,
                       const RunResult &result)> onFinish;
};

/**
 * Execute every request, spreading the work over campaignJobs()
 * threads, and return the results in submission order: result[i]
 * always corresponds to requests[i], whatever order the cells
 * finished in. With one job (or one request) no threads are spawned
 * and the requests run serially on the caller's thread.
 */
std::vector<RunResult> runCampaign(
    const std::vector<RunRequest> &requests);

/** runCampaign() with per-cell observation hooks. */
std::vector<RunResult> runCampaign(
    const std::vector<RunRequest> &requests,
    const CampaignObserver &observer);

/**
 * The persistent campaign service: one process-wide set of worker
 * threads that executes batches of independent index-addressed jobs.
 * Work items are claimed from a growable lock-free MPMC queue
 * (util/mpmc_queue.hh), so however unevenly item costs are
 * distributed, no worker idles while items remain.
 *
 * Batches are serialized (one run() at a time); within a batch,
 * fn(i) is called exactly once for every i in [0, count), from
 * whichever worker claimed it. Workers keep their identity for the
 * process lifetime — worker w always reports currentCampaignWorker()
 * == w and traces onto chrome tid w+1 — and a batch using J jobs
 * wakes exactly workers 0..J-1, so telemetry and trace track
 * assignment depend only on TURNPIKE_JOBS, not on history.
 *
 * After fork() the singleton detects the pid change and replaces
 * itself (worker threads do not survive a fork), so forked
 * multi-process campaign children transparently get their own pool.
 */
class CampaignService
{
  public:
    /** The process-wide service (per-pid; rebuilt after fork). */
    static CampaignService &instance();

    /**
     * Run fn(0) .. fn(count-1) to completion across
     * min(campaignJobs(), count) workers and return once every call
     * has finished (the mutex handoff makes the workers' writes
     * visible to the caller). With one job or one item, runs
     * serially on the calling thread — no handoff, worker index 0,
     * chrome tid 0 — which is also the deterministic debug path.
     */
    void run(size_t count, const std::function<void(size_t)> &fn);

    /** Workers spawned so far (grow-only; tests). */
    unsigned threads() const;

  private:
    CampaignService() = default;
    ~CampaignService();

    CampaignService(const CampaignService &) = delete;
    CampaignService &operator=(const CampaignService &) = delete;

    void ensureWorkers(unsigned jobs);
    void workerLoop(unsigned index);

    mutable std::mutex mu_;
    std::condition_variable workCv_; ///< new batch / shutdown
    std::condition_variable doneCv_; ///< batch fully retired
    /** Bumped per batch so parked workers recognize new work. */
    uint64_t generation_ = 0;
    /** Current batch's job; valid while the batch is in flight. */
    const std::function<void(size_t)> *fn_ = nullptr;
    /** Workers participating in the current batch (index gate). */
    unsigned activeJobs_ = 0;
    /** Items of the current batch not yet executed. */
    uint64_t remaining_ = 0;
    /** Workers currently inside the current batch. */
    unsigned busy_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
    /** Serializes run() callers (batches never interleave). */
    std::mutex runMu_;
    /** Index queue; pushed fully before a batch is published, so a
     *  failed pop during a batch means the batch is drained. */
    MpmcQueue<size_t> queue_{1024};
};

/**
 * A fixed-size pool of worker threads draining a FIFO job queue.
 * runCampaign() is the intended front end; the pool is exposed for
 * harnesses that need to parallelize work that is not shaped like a
 * RunRequest (and for the unit tests).
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to at least 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job; it runs on some worker, FIFO order. */
    void submit(std::function<void()> job);

    /**
     * Block until every job submitted so far has finished. The
     * mutex handoff makes the workers' writes visible to the
     * caller.
     */
    void wait();

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop(unsigned index);

    std::mutex mu_;
    std::condition_variable work_cv_;  ///< signals queued work / stop
    std::condition_variable idle_cv_;  ///< signals pending_ hitting 0
    std::deque<std::function<void()>> queue_;
    uint64_t pending_ = 0; ///< queued + currently executing jobs
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace turnpike

#endif // TURNPIKE_CORE_PARALLEL_HH_
