#include "sim/cache.hh"

#include "util/logging.hh"

namespace turnpike {

namespace {

constexpr uint64_t kInvalid = ~uint64_t(0);

} // namespace

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    TP_ASSERT(cfg.lineBytes > 0 && cfg.ways > 0, "bad cache geometry");
    uint32_t lines = cfg.sizeBytes / cfg.lineBytes;
    TP_ASSERT(lines >= cfg.ways, "cache smaller than one set");
    num_sets_ = lines / cfg.ways;
    tags_.assign(static_cast<size_t>(num_sets_) * cfg.ways, kInvalid);
    stamps_.assign(tags_.size(), 0);
}

bool
Cache::access(uint64_t addr)
{
    uint64_t line = lineOf(addr);
    uint32_t set = static_cast<uint32_t>(line % num_sets_);
    size_t base = static_cast<size_t>(set) * cfg_.ways;
    tick_++;
    for (uint32_t w = 0; w < cfg_.ways; w++) {
        if (tags_[base + w] == line) {
            stamps_[base + w] = tick_;
            hits_++;
            return true;
        }
    }
    misses_++;
    // Allocate into the LRU way.
    size_t victim = base;
    for (uint32_t w = 1; w < cfg_.ways; w++)
        if (stamps_[base + w] < stamps_[victim])
            victim = base + w;
    tags_[victim] = line;
    stamps_[victim] = tick_;
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t line = lineOf(addr);
    uint32_t set = static_cast<uint32_t>(line % num_sets_);
    size_t base = static_cast<size_t>(set) * cfg_.ways;
    for (uint32_t w = 0; w < cfg_.ways; w++)
        if (tags_[base + w] == line)
            return true;
    return false;
}

void
Cache::flush()
{
    std::fill(tags_.begin(), tags_.end(), kInvalid);
    std::fill(stamps_.begin(), stamps_.end(), 0);
}

CacheHierarchy::CacheHierarchy(const CacheConfig &l1,
                               const CacheConfig &l2, int mem_latency)
    : l1_(l1), l2_(l2), mem_latency_(mem_latency)
{}

int
CacheHierarchy::loadLatency(uint64_t addr)
{
    if (l1_.access(addr))
        return l1_.hitLatency();
    if (l2_.access(addr))
        return l2_.hitLatency();
    return mem_latency_;
}

void
CacheHierarchy::storeTouch(uint64_t addr)
{
    // Write-allocate into both levels; write latency is absorbed by
    // the store buffer and not charged to the pipeline.
    if (!l1_.access(addr))
        l2_.access(addr);
}

} // namespace turnpike
