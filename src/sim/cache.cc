#include "sim/cache.hh"

#include "util/logging.hh"

namespace turnpike {

namespace {

constexpr uint64_t kInvalid = ~uint64_t(0);

} // namespace

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    TP_ASSERT(cfg.lineBytes > 0 && cfg.ways > 0, "bad cache geometry");
    uint32_t lines = cfg.sizeBytes / cfg.lineBytes;
    TP_ASSERT(lines >= cfg.ways, "cache smaller than one set");
    num_sets_ = lines / cfg.ways;
    tags_.assign(static_cast<size_t>(num_sets_) * cfg.ways, kInvalid);
    stamps_.assign(tags_.size(), 0);

    auto pow2 = [](uint64_t v) { return v && (v & (v - 1)) == 0; };
    if (pow2(cfg_.lineBytes) && pow2(num_sets_)) {
        pow2_geometry_ = true;
        while ((uint64_t(1) << line_shift_) < cfg_.lineBytes)
            line_shift_++;
        set_mask_ = num_sets_ - 1;
    }
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t line = lineOf(addr);
    size_t base = static_cast<size_t>(setOf(line)) * cfg_.ways;
    for (uint32_t w = 0; w < cfg_.ways; w++)
        if (tags_[base + w] == line)
            return true;
    return false;
}

void
Cache::flush()
{
    std::fill(tags_.begin(), tags_.end(), kInvalid);
    std::fill(stamps_.begin(), stamps_.end(), 0);
}

CacheHierarchy::CacheHierarchy(const CacheConfig &l1,
                               const CacheConfig &l2, int mem_latency)
    : l1_(l1), l2_(l2), mem_latency_(mem_latency)
{}

} // namespace turnpike
