#include "sim/color_maps.hh"

#include "util/logging.hh"

namespace turnpike {

ColorMaps::ColorMaps()
    : ac_(kNumPhysRegs,
          static_cast<uint8_t>((1u << layout::kNumColors) - 1)),
      vc_(kNumPhysRegs, layout::kQuarantineColor)
{}

int
ColorMaps::tryAssign(Reg reg)
{
    TP_ASSERT(reg < kNumPhysRegs, "bad register %u", reg);
    uint8_t mask = ac_[reg];
    if (mask == 0)
        return -1;
    int color = __builtin_ctz(mask);
    ac_[reg] = static_cast<uint8_t>(mask & (mask - 1));
    return color;
}

void
ColorMaps::freeColor(Reg reg, int color)
{
    if (color < 0 || color >= layout::kNumColors)
        return; // quarantine slot is not pooled
    ac_[reg] = static_cast<uint8_t>(ac_[reg] | (1u << color));
}

void
ColorMaps::applyVerified(const std::vector<UsedColor> &used)
{
    for (const auto &[reg, slot] : used) {
        int old = vc_[reg];
        if (old != slot)
            freeColor(reg, old);
        vc_[reg] = slot;
    }
}

void
ColorMaps::recycleUnverified(const std::vector<UsedColor> &used)
{
    for (const auto &[reg, slot] : used)
        if (slot != vc_[reg])
            freeColor(reg, slot);
}

int
ColorMaps::freeColors(Reg reg) const
{
    TP_ASSERT(reg < kNumPhysRegs, "bad register %u", reg);
    return __builtin_popcount(ac_[reg]);
}

} // namespace turnpike
