#include "sim/color_maps.hh"

#include "util/logging.hh"

namespace turnpike {

namespace {

uint32_t
clampPool(uint32_t pool)
{
    if (pool < 1)
        return 1;
    uint32_t max = static_cast<uint32_t>(layout::kNumColors);
    return pool > max ? max : pool;
}

} // namespace

ColorMaps::ColorMaps(uint32_t pool)
    : ac_(kNumPhysRegs,
          static_cast<uint8_t>((1u << clampPool(pool)) - 1)),
      vc_(kNumPhysRegs, layout::kQuarantineColor)
{}

void
ColorMaps::applyVerified(const std::vector<UsedColor> &used)
{
    for (const auto &[reg, slot] : used) {
        int old = vc_[reg];
        if (old != slot)
            freeColor(reg, old);
        vc_[reg] = slot;
    }
}

void
ColorMaps::recycleUnverified(const std::vector<UsedColor> &used)
{
    for (const auto &[reg, slot] : used)
        if (slot != vc_[reg])
            freeColor(reg, slot);
}

int
ColorMaps::freeColors(Reg reg) const
{
    TP_ASSERT(reg < kNumPhysRegs, "bad register %u", reg);
    return __builtin_popcount(ac_[reg]);
}

} // namespace turnpike
