/**
 * @file
 * Timing-only set-associative caches with LRU replacement. Data
 * always lives in the authoritative MemoryImage (the paper's
 * ECC-protected verified domain); caches model hit/miss latency and
 * allocation, configured after the ARM Cortex-A53-like machine of
 * the paper's gem5 setup.
 */

#ifndef TURNPIKE_SIM_CACHE_HH_
#define TURNPIKE_SIM_CACHE_HH_

#include <cstdint>
#include <vector>

#include "util/stats.hh"

namespace turnpike {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    uint32_t sizeBytes = 64 * 1024;
    uint32_t ways = 2;
    uint32_t lineBytes = 64;
    int hitLatency = 2;
};

/** One level of timing-only cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up @p addr; on miss the line is allocated (LRU victim).
     * Inline: runs for every load and store drain of a simulation.
     * @return true on hit.
     */
    bool access(uint64_t addr)
    {
        uint64_t line = lineOf(addr);
        size_t base = static_cast<size_t>(setOf(line)) * cfg_.ways;
        tick_++;
        for (uint32_t w = 0; w < cfg_.ways; w++) {
            if (tags_[base + w] == line) {
                stamps_[base + w] = tick_;
                hits_++;
                return true;
            }
        }
        misses_++;
        // Allocate into the LRU way.
        size_t victim = base;
        for (uint32_t w = 1; w < cfg_.ways; w++)
            if (stamps_[base + w] < stamps_[victim])
                victim = base + w;
        tags_[victim] = line;
        stamps_[victim] = tick_;
        return false;
    }

    /** Probe without allocating. */
    bool probe(uint64_t addr) const;

    int hitLatency() const { return cfg_.hitLatency; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /** Forget all contents. */
    void flush();

  private:
    /**
     * Line/set extraction. Real geometries (and every config in the
     * repo) have power-of-two line size and set count, so the
     * constructor precomputes a shift and mask; the divide/modulo
     * path survives only for odd test geometries.
     */
    uint64_t lineOf(uint64_t addr) const
    {
        return pow2_geometry_ ? addr >> line_shift_
                              : addr / cfg_.lineBytes;
    }
    uint32_t setOf(uint64_t line) const
    {
        return static_cast<uint32_t>(
            pow2_geometry_ ? line & set_mask_ : line % num_sets_);
    }

    CacheConfig cfg_;
    uint32_t num_sets_;
    bool pow2_geometry_ = false;
    uint32_t line_shift_ = 0;
    uint64_t set_mask_ = 0;
    /** tags_[set * ways + way]; kInvalid when empty. */
    std::vector<uint64_t> tags_;
    /** LRU stamps, parallel to tags_. */
    std::vector<uint64_t> stamps_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Two-level data-cache hierarchy backed by fixed-latency memory. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheConfig &l1, const CacheConfig &l2,
                   int mem_latency);

    /** Latency of a load at @p addr, allocating on misses. */
    int loadLatency(uint64_t addr)
    {
        if (l1_.access(addr))
            return l1_.hitLatency();
        if (l2_.access(addr))
            return l2_.hitLatency();
        return mem_latency_;
    }

    /** Account a store write (allocates; no pipeline latency). */
    void storeTouch(uint64_t addr)
    {
        // Write-allocate into both levels; write latency is absorbed
        // by the store buffer and not charged to the pipeline.
        if (!l1_.access(addr))
            l2_.access(addr);
    }

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }

  private:
    Cache l1_;
    Cache l2_;
    int mem_latency_;
};

} // namespace turnpike

#endif // TURNPIKE_SIM_CACHE_HH_
