#include "sim/fault_injector.hh"

#include <algorithm>

#include "machine/minstr.hh"
#include "util/logging.hh"

namespace turnpike {

const char *
faultTargetName(FaultTarget t)
{
    switch (t) {
      case FaultTarget::Register:  return "register";
      case FaultTarget::SbEntry:   return "sb-entry";
      case FaultTarget::Pc:        return "pc";
      case FaultTarget::Latch:     return "latch";
      case FaultTarget::RbbEntry:  return "rbb-entry";
      case FaultTarget::ClqEntry:  return "clq-entry";
      case FaultTarget::ColorMap:  return "color-map";
      case FaultTarget::CacheData: return "cache-data";
    }
    return "unknown";
}

const std::vector<FaultTarget> &
allFaultTargets()
{
    static const std::vector<FaultTarget> all = {
        FaultTarget::Register,  FaultTarget::SbEntry,
        FaultTarget::Pc,        FaultTarget::Latch,
        FaultTarget::RbbEntry,  FaultTarget::ClqEntry,
        FaultTarget::ColorMap,  FaultTarget::CacheData,
    };
    return all;
}

std::vector<FaultEvent>
makeFaultPlan(Rng &rng, uint64_t horizon, uint32_t wcdl, uint32_t count)
{
    std::vector<FaultEvent> plan;
    if (horizon <= 1 || count == 0)
        return plan;
    plan.reserve(count);
    uint64_t min_gap = 4ull * wcdl + 16;
    uint64_t last = 0;
    for (uint32_t i = 0; i < count; i++) {
        FaultEvent ev;
        ev.cycle = 1 + rng.below(horizon - 1);
        if (ev.cycle <= last + min_gap)
            ev.cycle = last + min_gap + 1 + rng.below(16);
        // Burn the remaining draws even when the event is dropped so
        // the sequence of accepted events depends only on the seed,
        // not on how crowded the horizon is.
        ev.target = rng.chance(0.7) ? FaultTarget::Register
                                    : FaultTarget::SbEntry;
        ev.index = static_cast<uint32_t>(
            rng.below(ev.target == FaultTarget::Register
                          ? kNumPhysRegs : 4));
        ev.bit = static_cast<uint32_t>(rng.below(64));
        ev.detectDelay = 1 + static_cast<uint32_t>(rng.below(wcdl));
        if (ev.cycle >= horizon)
            continue; // spacing pushed it past the horizon: drop
        last = ev.cycle;
        plan.push_back(ev);
    }
    std::sort(plan.begin(), plan.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  return a.cycle < b.cycle;
              });
    return plan;
}

FaultEvent
makeTrialFault(uint64_t seed, uint32_t trial, uint64_t horizon,
               uint32_t wcdl, const std::vector<FaultTarget> &targets,
               double sensor_miss_rate, const TrialNoise &noise)
{
    TP_ASSERT(horizon > 1, "trial fault needs a horizon");
    TP_ASSERT(!targets.empty(), "trial fault needs a target set");
    TP_ASSERT(wcdl >= 1, "trial fault needs a positive WCDL");
    // Seed-per-trial: mix (seed, trial) through two odd constants so
    // nearby trials get unrelated streams whatever the base seed.
    Rng rng((seed + 1) * 0x9e3779b97f4a7c15ull ^
            (static_cast<uint64_t>(trial) + 1) * 0xbf58476d1ce4e5b9ull);
    FaultEvent ev;
    ev.cycle = 1 + rng.below(horizon - 1);
    ev.target = targets[rng.below(targets.size())];
    ev.index = static_cast<uint32_t>(rng.below(1u << 30));
    ev.bit = static_cast<uint32_t>(rng.below(64));
    ev.detectDelay = 1 + static_cast<uint32_t>(rng.below(wcdl));
    // Independent misses compose: the acoustic array misses the wave
    // OR the noise filter drops the (real) detection. The default
    // noise keeps the argument — and thus the draw — identical to
    // the legacy stream.
    double miss = sensor_miss_rate + noise.falseNegRate -
        sensor_miss_rate * noise.falseNegRate;
    ev.detected = !rng.chance(miss);
    ev.detectDelay += noise.filterLatency;
    // New draws append strictly after the legacy sequence, gated on
    // non-default noise, so (seed, trial) keys replay byte-for-byte
    // across detector configurations that don't use them.
    if (noise.maxBurst > 1)
        ev.burst =
            1 + static_cast<uint32_t>(rng.below(noise.maxBurst));
    if (noise.falsePosRate > 0 && rng.chance(noise.falsePosRate)) {
        ev.spurious = true;
        ev.detected = true; // a false alarm is, by definition, heard
        ev.burst = 0;       // and nothing is actually struck
    }
    return ev;
}

} // namespace turnpike
