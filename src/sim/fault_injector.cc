#include "sim/fault_injector.hh"

#include <algorithm>

#include "machine/minstr.hh"
#include "util/logging.hh"

namespace turnpike {

std::vector<FaultEvent>
makeFaultPlan(Rng &rng, uint64_t horizon, uint32_t wcdl, uint32_t count)
{
    TP_ASSERT(horizon > 1, "fault plan needs a horizon");
    std::vector<FaultEvent> plan;
    plan.reserve(count);
    uint64_t min_gap = 4ull * wcdl + 16;
    uint64_t last = 0;
    for (uint32_t i = 0; i < count; i++) {
        FaultEvent ev;
        ev.cycle = 1 + rng.below(horizon - 1);
        if (ev.cycle <= last + min_gap)
            ev.cycle = last + min_gap + 1 + rng.below(16);
        last = ev.cycle;
        ev.target = rng.chance(0.7) ? FaultTarget::Register
                                    : FaultTarget::SbEntry;
        ev.index = static_cast<uint32_t>(
            rng.below(ev.target == FaultTarget::Register
                          ? kNumPhysRegs : 4));
        ev.bit = static_cast<uint32_t>(rng.below(64));
        ev.detectDelay = 1 + static_cast<uint32_t>(rng.below(wcdl));
        plan.push_back(ev);
    }
    std::sort(plan.begin(), plan.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  return a.cycle < b.cycle;
              });
    return plan;
}

} // namespace turnpike
