/**
 * @file
 * The committed load queue (CLQ, paper §4.3.1): tracks the addresses
 * loaded by each unverified region so a committing regular store can
 * prove the absence of WAR dependences and be released to cache
 * without verification.
 *
 * Two designs are modelled:
 *  - Ideal: per-region exact address lists, unbounded (the paper's
 *    100%-accurate CAM reference);
 *  - Compact: one [min, max] range per region, bounded entry count
 *    (Turnpike's 2-entry default), range check instead of CAM.
 *
 * Overflow follows the Fig. 13 automaton: fast release is disabled,
 * insertions stop and the queue is wiped; it re-enables only at a
 * region start when every prior region has been verified (so no
 * unverified region has unrecorded loads).
 */

#ifndef TURNPIKE_SIM_CLQ_HH_
#define TURNPIKE_SIM_CLQ_HH_

#include <cstdint>
#include <deque>
#include <vector>

#include "util/stats.hh"

namespace turnpike {

/** CLQ implementation choice. */
enum class ClqDesign { Compact, Ideal };

/** The committed load queue. */
class Clq
{
  public:
    Clq(ClqDesign design, uint32_t capacity)
        : design_(design), capacity_(capacity)
    {}

    bool enabled() const { return enabled_; }

    /**
     * Record a committed load of @p addr by region @p instance.
     * May trip the overflow automaton (disabling fast release).
     */
    void insertLoad(uint64_t instance, uint64_t addr);

    /**
     * True when @p addr provably has no WAR dependence on any load
     * of any unverified region. Always false while disabled.
     */
    bool isWarFree(uint64_t addr) const;

    /** Drop the entry of a verified region. */
    void onRegionVerified(uint64_t instance);

    /**
     * Region-start hook: re-enables fast release when the automaton
     * is disabled and every earlier region is verified.
     */
    void onRegionStart(bool all_prior_verified);

    /** Recovery squash: wipe and re-enable. */
    void reset();

    /** Current number of populated entries (regions tracked). */
    size_t entriesUsed() const { return entries_.size(); }

    uint64_t overflows() const { return overflows_; }

    /** Occupancy distribution sampled at each load insertion. */
    const Distribution &occupancy() const { return occupancy_; }

  private:
    struct Entry
    {
        uint64_t instance = 0;
        uint64_t minAddr = ~uint64_t(0);
        uint64_t maxAddr = 0;
        std::vector<uint64_t> addrs; ///< ideal design only
    };

    ClqDesign design_;
    uint32_t capacity_;
    bool enabled_ = true;
    std::deque<Entry> entries_;
    uint64_t overflows_ = 0;
    Distribution occupancy_;
};

} // namespace turnpike

#endif // TURNPIKE_SIM_CLQ_HH_
