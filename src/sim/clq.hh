/**
 * @file
 * The committed load queue (CLQ, paper §4.3.1): tracks the addresses
 * loaded by each unverified region so a committing regular store can
 * prove the absence of WAR dependences and be released to cache
 * without verification.
 *
 * Two designs are modelled:
 *  - Ideal: per-region exact address lists, unbounded (the paper's
 *    100%-accurate CAM reference);
 *  - Compact: one [min, max] range per region, bounded entry count
 *    (Turnpike's 2-entry default), range check instead of CAM.
 *
 * Overflow follows the Fig. 13 automaton: fast release is disabled,
 * insertions stop and the queue is wiped; it re-enables only at a
 * region start when every prior region has been verified (so no
 * unverified region has unrecorded loads).
 */

#ifndef TURNPIKE_SIM_CLQ_HH_
#define TURNPIKE_SIM_CLQ_HH_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/stats.hh"

namespace turnpike {

/** CLQ implementation choice. */
enum class ClqDesign { Compact, Ideal };

/** The committed load queue. */
class Clq
{
  public:
    Clq(ClqDesign design, uint32_t capacity)
        : design_(design), capacity_(capacity)
    {}

    bool enabled() const { return enabled_; }

    // All CLQ operations are inline: the pipeline queries the queue
    // on every committed load and regular store of a fast-release
    // simulation.

    /**
     * Record a committed load of @p addr by region @p instance.
     * May trip the overflow automaton (disabling fast release).
     */
    void insertLoad(uint64_t instance, uint64_t addr)
    {
        if (!enabled_)
            return;
        Entry *e = nullptr;
        if (!entries_.empty() &&
            entries_.back().instance == instance) {
            e = &entries_.back();
        } else {
            // A new region needs a fresh entry.
            if (design_ == ClqDesign::Compact &&
                entries_.size() >= capacity_) {
                // Fig. 13: overflow disables fast release and wipes
                // the queue; insertions stay blocked until
                // re-enable.
                enabled_ = false;
                entries_.clear();
                overflows_++;
                return;
            }
            entries_.push_back({});
            entries_.back().instance = instance;
            e = &entries_.back();
        }
        e->minAddr = std::min(e->minAddr, addr);
        e->maxAddr = std::max(e->maxAddr, addr);
        if (design_ == ClqDesign::Ideal)
            e->addrs.push_back(addr);
        occupancy_.sample(static_cast<double>(entries_.size()));
    }

    /**
     * True when @p addr provably has no WAR dependence on any load
     * of any unverified region. Always false while disabled.
     */
    bool isWarFree(uint64_t addr) const
    {
        if (!enabled_)
            return false;
        for (const Entry &e : entries_) {
            if (design_ == ClqDesign::Compact) {
                if (addr >= e.minAddr && addr <= e.maxAddr)
                    return false;
            } else {
                if (std::find(e.addrs.begin(), e.addrs.end(),
                              addr) != e.addrs.end())
                    return false;
            }
        }
        return true;
    }

    /** Drop the entry of a verified region. */
    void onRegionVerified(uint64_t instance)
    {
        while (!entries_.empty() &&
               entries_.front().instance <= instance)
            entries_.pop_front();
    }

    /**
     * Region-start hook: re-enables fast release when the automaton
     * is disabled and every earlier region is verified.
     */
    void onRegionStart(bool all_prior_verified)
    {
        if (!enabled_ && all_prior_verified) {
            enabled_ = true;
            entries_.clear();
        }
    }

    /** Recovery squash: wipe and re-enable. */
    void reset()
    {
        entries_.clear();
        enabled_ = true;
    }

    /** Current number of populated entries (regions tracked). */
    size_t entriesUsed() const { return entries_.size(); }

    /**
     * Fault injection: flip @p bit of one address word of entry
     * @p sel (modded into range). For the compact design this
     * corrupts the [min, max] range (bit 0 of @p sel picks which
     * bound), silently widening or narrowing the WAR-free check; for
     * the ideal design one recorded address is corrupted. Returns
     * false when the queue holds no entries to strike.
     */
    bool corruptEntry(uint32_t sel, uint32_t bit)
    {
        if (entries_.empty())
            return false;
        Entry &e = entries_[sel % entries_.size()];
        uint64_t flip = uint64_t(1) << (bit & 63);
        if (design_ == ClqDesign::Ideal && !e.addrs.empty())
            e.addrs[sel % e.addrs.size()] ^= flip;
        else if (sel & 1)
            e.maxAddr ^= flip;
        else
            e.minAddr ^= flip;
        return true;
    }

    uint64_t overflows() const { return overflows_; }

    /** Occupancy distribution sampled at each load insertion. */
    const Distribution &occupancy() const { return occupancy_; }

  private:
    struct Entry
    {
        uint64_t instance = 0;
        uint64_t minAddr = ~uint64_t(0);
        uint64_t maxAddr = 0;
        std::vector<uint64_t> addrs; ///< ideal design only
    };

    ClqDesign design_;
    uint32_t capacity_;
    bool enabled_ = true;
    std::deque<Entry> entries_;
    uint64_t overflows_ = 0;
    Distribution occupancy_;
};

} // namespace turnpike

#endif // TURNPIKE_SIM_CLQ_HH_
