/**
 * @file
 * Structured cycle-level event tracing for the pipeline, in the
 * spirit of gem5's DPRINTF categories. A Tracer is attached through
 * the PipelineConfig; when absent, tracing costs one pointer test
 * per event site.
 *
 * Every event carries a compact binary record (cycle, category,
 * pc/opcode, two payload words) alongside its human-readable
 * message. The record feeds two consumers:
 *  - the selectable sink — `text` renders the classic
 *    "<cycle>: <tag>: <message>" line (byte-identical to the
 *    pre-structured tracer), `jsonl` renders one JSON object per
 *    event for machine consumption;
 *  - a bounded post-mortem ring of the most recent records, dumped
 *    on panic() (via installTracerPanicDump) and on fault recovery,
 *    so the events leading into a crash or recovery are on record
 *    even when the interesting window was not known in advance.
 *
 * Contract for event sites: the message argument is a formatted
 * std::string, so every site MUST test wants(category) before
 * building it — an unguarded site would pay the formatting cost on
 * every simulated event even for filtered categories. All sites in
 * src/sim follow this pattern (audited; pinned by the trace tests).
 */

#ifndef TURNPIKE_SIM_TRACE_HH_
#define TURNPIKE_SIM_TRACE_HH_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace turnpike {

class ChromeTraceWriter;

/** Event categories; combine with bitwise or. */
enum TraceCategory : uint32_t {
    kTraceIssue = 1u << 0,    ///< instruction issue
    kTraceStores = 1u << 1,   ///< store commit & release decisions
    kTraceRegions = 1u << 2,  ///< boundaries and verification
    kTraceRecovery = 1u << 3, ///< faults, detections, recoveries
    kTraceStalls = 1u << 4,   ///< stall-cycle causes
    kTraceFf = 1u << 5,       ///< quiescent fast-forward windows
    kTraceAll = 0xffffffffu,
};

/** Short name of a single category bit ("issue", "stalls", ...). */
const char *traceCategoryName(TraceCategory c);

/** Sentinel: event has no associated program counter. */
constexpr uint32_t kNoTracePc = 0xffffffffu;
/** Sentinel: event has no associated opcode. */
constexpr uint16_t kNoTraceOp = 0xffffu;

/**
 * Compact binary trace record (32 bytes + tag pointer). The tag must
 * be a string literal (the ring stores the pointer, not a copy).
 */
struct TraceEvent
{
    uint64_t cycle = 0;
    uint64_t a = 0;              ///< event-specific payload
    uint64_t b = 0;              ///< event-specific payload
    const char *tag = "";        ///< static string, e.g. "store"
    uint32_t category = 0;       ///< single TraceCategory bit
    uint32_t pc = kNoTracePc;    ///< machine pc, if any
    uint16_t opcode = kNoTraceOp; ///< raw Op, if any
};

/**
 * Rendering of the trace sink. Chrome routes events into a
 * ChromeTraceWriter (the unified timeline document) instead of the
 * tracer's own stream: simulated events become instant marks — or
 * spans, for duration-carrying tags like fast-forward windows — on
 * the "turnpike sim" process track, beside the host phases.
 */
enum class TraceFormat { Text, Jsonl, Chrome };

/** Sink for pipeline trace events. */
class Tracer
{
  public:
    Tracer(std::ostream &out, uint32_t categories = kTraceAll,
           TraceFormat format = TraceFormat::Text,
           size_t ring_capacity = 256)
        : out_(out),
          categories_(categories),
          format_(format),
          ring_(ring_capacity)
    {}

    /** The one-pointer-test fast path companion: category filter. */
    bool wants(TraceCategory c) const { return categories_ & c; }

    TraceFormat format() const { return format_; }

    /**
     * The chrome document this tracer's events render into when
     * format() == Chrome. Falls back to the process-wide
     * activeChromeTrace() when unset; events are dropped if neither
     * exists. The tracer's own stream is never written in chrome
     * mode — one writer owns the whole JSON document.
     */
    void setChromeSink(ChromeTraceWriter *w) { chrome_ = w; }

    /**
     * Emit one event: records the binary part in the post-mortem
     * ring and renders it to the sink. Callers must already have
     * passed wants(cat) — see the file comment.
     *
     * @param pc machine pc, or kNoTracePc
     * @param opcode raw Op value, or kNoTraceOp
     * @param a,b event-specific payload words (addresses, ids)
     */
    void event(uint64_t cycle, TraceCategory cat, const char *tag,
               const std::string &message, uint32_t pc = kNoTracePc,
               uint16_t opcode = kNoTraceOp, uint64_t a = 0,
               uint64_t b = 0);

    /**
     * Dump the post-mortem ring (oldest first) to the sink,
     * annotated with @p reason ("recovery", "panic"). The ring holds
     * only events whose category passed the filter when emitted.
     */
    void dumpPostmortem(const char *reason);

    /** Events currently held in the ring. */
    size_t ringSize() const { return ring_size_; }
    /** Ring event @p i, 0 = oldest. */
    const TraceEvent &ringAt(size_t i) const;

  private:
    void record(const TraceEvent &ev);
    void render(const TraceEvent &ev, const std::string &message);
    void renderChrome(const TraceEvent &ev,
                      const std::string &message);

    std::ostream &out_;
    uint32_t categories_;
    TraceFormat format_;
    ChromeTraceWriter *chrome_ = nullptr;
    std::vector<TraceEvent> ring_; ///< fixed-capacity ring storage
    size_t ring_head_ = 0;         ///< slot of the oldest event
    size_t ring_size_ = 0;
};

/**
 * Route panic() through @p tracer's post-mortem dump (see
 * setPanicHook for the threading caveats). Pass nullptr to clear.
 */
void installTracerPanicDump(Tracer *tracer);

} // namespace turnpike

#endif // TURNPIKE_SIM_TRACE_HH_
