/**
 * @file
 * Optional cycle-level event tracing for the pipeline, in the spirit
 * of gem5's DPRINTF categories. A Tracer is attached through the
 * PipelineConfig; when absent, tracing costs one pointer test per
 * event site.
 */

#ifndef TURNPIKE_SIM_TRACE_HH_
#define TURNPIKE_SIM_TRACE_HH_

#include <cstdint>
#include <ostream>

namespace turnpike {

/** Event categories; combine with bitwise or. */
enum TraceCategory : uint32_t {
    kTraceIssue = 1u << 0,    ///< instruction issue
    kTraceStores = 1u << 1,   ///< store commit & release decisions
    kTraceRegions = 1u << 2,  ///< boundaries and verification
    kTraceRecovery = 1u << 3, ///< faults, detections, recoveries
    kTraceStalls = 1u << 4,   ///< stall-cycle causes
    kTraceAll = 0xffffffffu,
};

/** Sink for pipeline trace events. */
class Tracer
{
  public:
    Tracer(std::ostream &out, uint32_t categories = kTraceAll)
        : out_(out), categories_(categories)
    {}

    bool wants(TraceCategory c) const { return categories_ & c; }

    /** Emit one line: "<cycle>: <tag>: <message>". */
    void event(uint64_t cycle, const char *tag,
               const std::string &message)
    {
        out_ << cycle << ": " << tag << ": " << message << '\n';
    }

  private:
    std::ostream &out_;
    uint32_t categories_;
};

} // namespace turnpike

#endif // TURNPIKE_SIM_TRACE_HH_
