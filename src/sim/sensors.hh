/**
 * @file
 * Analytical acoustic-sensor model (paper Fig. 18, after Upasani et
 * al.): the worst-case detection latency (WCDL) of a particle-strike
 * sound wave grows with the sensor spacing (sqrt(area / sensors))
 * and with clock frequency. Calibrated so that 300 sensors on a
 * 1 mm^2 die at 2.5 GHz give a 10-cycle WCDL, matching the paper's
 * default configuration.
 */

#ifndef TURNPIKE_SIM_SENSORS_HH_
#define TURNPIKE_SIM_SENSORS_HH_

#include <cstdint>

namespace turnpike {

/** Acoustic sensor deployment. */
struct SensorConfig
{
    uint32_t numSensors = 300;
    double clockGhz = 2.5;
    double dieAreaMm2 = 1.0;
};

/**
 * Worst-case detection latency in cycles for @p cfg (at least 1).
 */
uint32_t worstCaseDetectionLatency(const SensorConfig &cfg);

/**
 * Approximate die-area overhead of the deployment as a fraction of
 * the die (the paper cites ~1% for 300 sensors).
 */
double sensorAreaOverhead(const SensorConfig &cfg);

/**
 * Invert the latency model: the cheapest deployment (smallest sensor
 * count, hence smallest area) whose WCDL is at most @p wcdl cycles,
 * holding @p base's clock and die area fixed. Latency shrinks
 * monotonically as sensors are added, so this is a binary search.
 * The design-space explorer uses it to price each WCDL point.
 */
SensorConfig sensorsForWcdl(uint32_t wcdl, SensorConfig base = {});

} // namespace turnpike

#endif // TURNPIKE_SIM_SENSORS_HH_
