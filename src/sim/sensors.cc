#include "sim/sensors.hh"

#include <cmath>

#include "util/logging.hh"

namespace turnpike {

uint32_t
worstCaseDetectionLatency(const SensorConfig &cfg)
{
    TP_ASSERT(cfg.numSensors > 0, "need at least one sensor");
    TP_ASSERT(cfg.clockGhz > 0 && cfg.dieAreaMm2 > 0,
              "bad sensor configuration");
    // The worst-case distance from a strike to the nearest sensor is
    // ~ half the sensor pitch: 0.5 * sqrt(area / n). Sound travels
    // at ~8433 m/s in silicon, i.e. 8.433 um/ns. Latency in cycles =
    // distance / speed * clock.
    double pitch_mm = std::sqrt(cfg.dieAreaMm2 /
                                static_cast<double>(cfg.numSensors));
    double dist_um = 0.5 * pitch_mm * 1000.0;
    double time_ns = dist_um / 8.433;
    double cycles = time_ns * cfg.clockGhz;
    // Calibration factor so that (300 sensors, 2.5 GHz, 1 mm^2)
    // yields the paper's default 10-cycle WCDL.
    constexpr double kCalibration = 10.0 / 8.5566;
    double v = cycles * kCalibration;
    return v < 1.0 ? 1u : static_cast<uint32_t>(std::lround(v));
}

double
sensorAreaOverhead(const SensorConfig &cfg)
{
    // ~1% of die area for 300 sensors (paper §1), linear in count.
    return 0.01 * static_cast<double>(cfg.numSensors) / 300.0 /
        cfg.dieAreaMm2;
}

SensorConfig
sensorsForWcdl(uint32_t wcdl, SensorConfig base)
{
    TP_ASSERT(wcdl >= 1, "WCDL is at least one cycle");
    SensorConfig probe = base;
    // Latency is monotonically non-increasing in the sensor count, so
    // binary-search the smallest count meeting the deadline. The cap
    // (one sensor per ~10 um pitch on a 1 mm^2 die) is far beyond any
    // deployment the paper considers; if even that misses the
    // deadline the deadline is unachievable and we return the cap.
    uint32_t lo = 1, hi = 10000;
    probe.numSensors = hi;
    if (worstCaseDetectionLatency(probe) > wcdl)
        return probe;
    while (lo < hi) {
        uint32_t mid = lo + (hi - lo) / 2;
        probe.numSensors = mid;
        if (worstCaseDetectionLatency(probe) <= wcdl)
            hi = mid;
        else
            lo = mid + 1;
    }
    probe.numSensors = lo;
    return probe;
}

} // namespace turnpike
