/**
 * @file
 * Hardware coloring (paper §4.3.2): per-register pools of checkpoint
 * storage locations (colors) plus three maps — Available Colors
 * (AC), Used Colors (UC, kept per region in the RBB) and Verified
 * Colors (VC) — that let checkpoint stores bypass verification
 * safely. The Fig. 16 overwrite hazard is avoided because an
 * unverified checkpoint always writes a slot different from the
 * verified one recovery would read.
 */

#ifndef TURNPIKE_SIM_COLOR_MAPS_HH_
#define TURNPIKE_SIM_COLOR_MAPS_HH_

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/function.hh"
#include "machine/minstr.hh"
#include "util/logging.hh"

namespace turnpike {

/** A (register, slot) pair recorded in a region's used colors. */
using UsedColor = std::pair<Reg, int>;

/** The AC/VC register maps (UC lives in the RBB entries). */
class ColorMaps
{
  public:
    /**
     * @p pool colors per register, clamped to [1, kNumColors]; the
     * default is the paper's full pool. A smaller pool models a
     * cheaper color map (fewer bits per register) that exhausts —
     * and quarantines checkpoints — sooner.
     */
    explicit ColorMaps(uint32_t pool = layout::kNumColors);

    /**
     * Try to take a free color for @p reg; returns the color or -1
     * when the pool is exhausted (checkpoint must quarantine).
     * Inline: runs for every committed checkpoint store under
     * hardware coloring.
     */
    int tryAssign(Reg reg)
    {
        TP_ASSERT(reg < kNumPhysRegs, "bad register %u", reg);
        uint8_t mask = ac_[reg];
        if (mask == 0)
            return -1;
        int color = __builtin_ctz(mask);
        ac_[reg] = static_cast<uint8_t>(mask & (mask - 1));
        return color;
    }

    /** Verified color (slot index) recovery reads for @p reg. */
    int verifiedSlot(Reg reg) const { return vc_[reg]; }

    /**
     * A region verified: apply its used colors in program order.
     * The last slot per register becomes the verified color; every
     * superseded color returns to the free pool.
     */
    void applyVerified(const std::vector<UsedColor> &used);

    /** A region squashed: return its colors to the free pool. */
    void recycleUnverified(const std::vector<UsedColor> &used);

    /** Number of free colors for @p reg (for tests/stats). */
    int freeColors(Reg reg) const;

    /** Return an assigned-but-unused color to the pool. */
    void giveBack(Reg reg, int color) { freeColor(reg, color); }

    /**
     * Fault injection: flip a low bit of the verified-color entry of
     * @p reg. Recovery then reads the wrong checkpoint slot for that
     * register — the scheme has no defense against VC corruption
     * (the map is assumed hardened in the paper), so a subsequent
     * recovery restores stale or zero data.
     */
    void corruptVerified(Reg reg, uint32_t bit)
    {
        TP_ASSERT(reg < kNumPhysRegs, "bad register %u", reg);
        vc_[reg] ^= 1 << (bit % 3);
    }

  private:
    void freeColor(Reg reg, int color)
    {
        if (color < 0 || color >= layout::kNumColors)
            return; // quarantine slot is not pooled
        ac_[reg] = static_cast<uint8_t>(ac_[reg] | (1u << color));
    }

    /** Bitmask of free colors per register. */
    std::vector<uint8_t> ac_;
    /** Verified slot per register (color or the quarantine slot). */
    std::vector<int> vc_;
};

} // namespace turnpike

#endif // TURNPIKE_SIM_COLOR_MAPS_HH_
