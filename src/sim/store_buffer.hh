/**
 * @file
 * The gated store buffer (GSB): quarantines committed stores until
 * their region is verified error-free, then drains them to the
 * cache in FIFO order. The small capacity of in-order cores (4
 * entries on Cortex-A53) is the central bottleneck the paper
 * attacks.
 */

#ifndef TURNPIKE_SIM_STORE_BUFFER_HH_
#define TURNPIKE_SIM_STORE_BUFFER_HH_

#include <cstdint>
#include <deque>

#include "ir/instruction.hh"

namespace turnpike {

/** One quarantined store. */
struct SbEntry
{
    uint64_t addr = 0;
    int64_t value = 0;
    /** Dynamic region instance that issued the store. */
    uint64_t regionInstance = 0;
    StoreKind kind = StoreKind::App;
    /** Set when the entry's region has been verified. */
    bool releasable = false;
};

/** FIFO gated store buffer with bounded capacity. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(uint32_t capacity) : capacity_(capacity) {}

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    uint32_t capacity() const { return capacity_; }

    /** Append an entry; caller must have checked full(). */
    void push(const SbEntry &e);

    /** Mark all entries of @p instance releasable. */
    void release(uint64_t instance);

    /** True when the head entry may drain. */
    bool headReleasable() const
    {
        return !entries_.empty() && entries_.front().releasable;
    }

    /** Pop the head entry (must be releasable). */
    SbEntry pop();

    /**
     * Youngest entry matching @p addr, for store-to-load forwarding
     * and same-address release-order checks; nullptr if none.
     */
    const SbEntry *youngestFor(uint64_t addr) const;

    /** Direct entry access (oldest first) for fault injection. */
    std::deque<SbEntry> &entries() { return entries_; }
    const std::deque<SbEntry> &entries() const { return entries_; }

    /** Drop every entry (recovery squash of unverified data). */
    void clear() { entries_.clear(); }

  private:
    uint32_t capacity_;
    std::deque<SbEntry> entries_;
};

} // namespace turnpike

#endif // TURNPIKE_SIM_STORE_BUFFER_HH_
