/**
 * @file
 * The gated store buffer (GSB): quarantines committed stores until
 * their region is verified error-free, then drains them to the
 * cache in FIFO order. The small capacity of in-order cores (4
 * entries on Cortex-A53) is the central bottleneck the paper
 * attacks.
 *
 * Storage is a fixed ring over a flat array sized at construction;
 * every operation is inline because the pipeline touches the buffer
 * on each committed store, each forwarding lookup and each drain
 * cycle.
 */

#ifndef TURNPIKE_SIM_STORE_BUFFER_HH_
#define TURNPIKE_SIM_STORE_BUFFER_HH_

#include <cstdint>
#include <vector>

#include "ir/instruction.hh"
#include "util/logging.hh"

namespace turnpike {

/** One quarantined store. */
struct SbEntry
{
    uint64_t addr = 0;
    int64_t value = 0;
    /** Dynamic region instance that issued the store. */
    uint64_t regionInstance = 0;
    StoreKind kind = StoreKind::App;
    /** Set when the entry's region has been verified. */
    bool releasable = false;
};

/** FIFO gated store buffer with bounded capacity. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(uint32_t capacity)
        : capacity_(capacity), ring_(capacity)
    {}

    bool full() const { return size_ >= capacity_; }
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    uint32_t capacity() const { return capacity_; }

    /** Append an entry; caller must have checked full(). */
    void push(const SbEntry &e)
    {
        TP_ASSERT(!full(), "store buffer overflow");
        ring_[slot(size_)] = e;
        size_++;
    }

    /** Mark all entries of @p instance releasable. */
    void release(uint64_t instance)
    {
        for (size_t i = 0; i < size_; i++) {
            SbEntry &e = ring_[slot(i)];
            if (e.regionInstance == instance)
                e.releasable = true;
        }
    }

    /** True when the head entry may drain. */
    bool headReleasable() const
    {
        return size_ != 0 && ring_[head_].releasable;
    }

    /** Pop the head entry (must be releasable). */
    SbEntry pop()
    {
        TP_ASSERT(headReleasable(), "pop of unreleasable SB head");
        SbEntry e = ring_[head_];
        head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
        size_--;
        return e;
    }

    /**
     * Youngest entry matching @p addr, for store-to-load forwarding
     * and same-address release-order checks; nullptr if none.
     */
    const SbEntry *youngestFor(uint64_t addr) const
    {
        for (size_t i = size_; i > 0; i--) {
            const SbEntry &e = ring_[slot(i - 1)];
            if (e.addr == addr)
                return &e;
        }
        return nullptr;
    }

    /** Entry @p i (0 = oldest) for fault injection. */
    SbEntry &at(size_t i)
    {
        TP_ASSERT(i < size_, "SB index %zu out of range", i);
        return ring_[slot(i)];
    }

    /** Drop every entry (recovery squash of unverified data). */
    void clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    /** Ring slot of logical position @p i (0 = oldest). */
    size_t slot(size_t i) const
    {
        size_t s = head_ + i;
        return s >= capacity_ ? s - capacity_ : s;
    }

    uint32_t capacity_;
    size_t head_ = 0;
    size_t size_ = 0;
    std::vector<SbEntry> ring_;
};

} // namespace turnpike

#endif // TURNPIKE_SIM_STORE_BUFFER_HH_
