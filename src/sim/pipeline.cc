#include "sim/pipeline.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "machine/minterp.hh"
#include "sim/recovery.hh"
#include "util/logging.hh"

namespace turnpike {

void
CommitCapture::commit(uint64_t cycle, uint32_t pc, uint16_t opcode,
                      uint32_t region, uint64_t a, uint64_t b)
{
    if (committed >= limit)
        return;
    // FNV-1a over the fields that define the architectural history.
    // The cycle is deliberately excluded: two runs with identical
    // architectural work but different stall timing (e.g. a corrupted
    // RBB deadline) must still hash equal, so timing-only faults
    // surface as truncation, not as a bogus early divergence.
    auto mix = [this](uint64_t v) {
        for (int i = 0; i < 8; i++) {
            hash ^= (v >> (i * 8)) & 0xff;
            hash *= 1099511628211ull;
        }
    };
    mix(pc);
    mix(opcode);
    mix(a);
    mix(b);
    if (committed >= windowLo && committed < windowHi) {
        CommitRecord rec;
        rec.index = committed;
        rec.cycle = cycle;
        rec.pc = pc;
        rec.region = region;
        rec.opcode = opcode;
        rec.a = a;
        rec.b = b;
        window.push_back(rec);
    }
    committed++;
}

InOrderPipeline::InOrderPipeline(const Module &mod,
                                 const MachineFunction &mf,
                                 const PipelineConfig &cfg)
    : mod_(mod),
      mf_(mf),
      cfg_(cfg),
      sb_(cfg.sbSize),
      rbb_(cfg.rbbEntries),
      clq_(cfg.clqDesign, cfg.clqEntries),
      colors_(cfg.colorPool ? cfg.colorPool
                            : static_cast<uint32_t>(
                                  layout::kNumColors)),
      caches_(cfg.l1d, cfg.l2, cfg.memLatency)
{
    memory_.loadModule(mod);
    fastforward_ = std::getenv("TURNPIKE_NO_FASTFORWARD") == nullptr;
    debug_recovery_ = std::getenv("TURNPIKE_DEBUG_RECOVERY") != nullptr;
}

void
InOrderPipeline::processVerification()
{
    RegionInstance ri;
    while (rbb_.popVerified(cycle_, ri)) {
        sb_.release(ri.id);
        colors_.applyVerified(ri.usedColors);
        clq_.onRegionVerified(ri.id);
        if (cfg_.tracer && cfg_.tracer->wants(kTraceRegions))
            cfg_.tracer->event(cycle_, kTraceRegions, "verify",
                               strfmt("instance %llu (static %u) "
                                      "verified; SB entries released",
                                      (unsigned long long)ri.id,
                                      ri.staticRegion),
                               kNoTracePc, kNoTraceOp, ri.id,
                               ri.staticRegion);
        stats_.regionCycles.sample(
            static_cast<double>(ri.endCycle - ri.startCycle));
        stats_.regionCyclesHist.sample(ri.endCycle - ri.startCycle);
        unrecorded_instances_.erase(ri.id);
    }
}

void
InOrderPipeline::drainStoreBuffer()
{
    if (!sb_.headReleasable())
        return;
    SbEntry e = sb_.pop();
    memory_.write(e.addr, e.value);
    caches_.storeTouch(e.addr);
}

bool
InOrderPipeline::commitStore(const MInstr &mi)
{
    // The memory system ignores the low address bits (word-aligned
    // accesses only). Compiled code always computes aligned
    // addresses, but a fault-corrupted base register must not take
    // down the simulator, so alignment is enforced rather than
    // asserted here.
    uint64_t addr =
        static_cast<uint64_t>(regs_[mi.src1] + mi.imm) & ~7ull;
    int64_t value = regs_[mi.src0];

    if (!cfg_.resilience) {
        if (sb_.full())
            return false;
        sb_.push({addr, value, 0, mi.skind, true});
    } else {
        bool fast = cfg_.warFreeRelease && clq_.isWarFree(addr) &&
            sb_.youngestFor(addr) == nullptr;
        if (fast) {
            memory_.write(addr, value);
            caches_.storeTouch(addr);
            stats_.storesWarFree++;
            if (cfg_.tracer && cfg_.tracer->wants(kTraceStores))
                cfg_.tracer->event(cycle_, kTraceStores, "store",
                                   strfmt("WAR-free fast release "
                                          "[0x%llx]",
                                          (unsigned long long)addr),
                                   pc_,
                                   static_cast<uint16_t>(mi.op),
                                   addr);
        } else {
            if (sb_.full())
                return false;
            sb_.push({addr, value, rbb_.current().id, mi.skind,
                      false});
            stats_.storesQuarantined++;
            if (cfg_.tracer && cfg_.tracer->wants(kTraceStores))
                cfg_.tracer->event(cycle_, kTraceStores, "store",
                                   strfmt("quarantined [0x%llx] "
                                          "region %llu",
                                          (unsigned long long)addr,
                                          (unsigned long long)
                                              rbb_.current().id),
                                   pc_,
                                   static_cast<uint16_t>(mi.op),
                                   addr, rbb_.current().id);
        }
    }
    if (mi.skind == StoreKind::Spill)
        stats_.storesSpill++;
    else
        stats_.storesApp++;
    return true;
}

bool
InOrderPipeline::commitCkpt(const MInstr &mi)
{
    Reg r = mi.src0;
    int64_t value = regs_[r];
    TP_ASSERT(cfg_.resilience, "checkpoint in non-resilient run");

    if (cfg_.naiveCkptRelease) {
        // Deliberately unsafe (Fig. 16): overwrite the single
        // checkpoint slot without verification.
        uint64_t addr = layout::ckptSlot(r, layout::kQuarantineColor);
        memory_.write(addr, value);
        caches_.storeTouch(addr);
        rbb_.current().usedColors.push_back(
            {r, layout::kQuarantineColor});
        stats_.ckptColored++;
        stats_.storesCkpt++;
        return true;
    }

    if (cfg_.hwColoring) {
        int color = colors_.tryAssign(r);
        if (color >= 0) {
            uint64_t addr = layout::ckptSlot(r, color);
            if (sb_.youngestFor(addr) == nullptr) {
                // Fast path: straight to the (ECC) cache.
                memory_.write(addr, value);
                caches_.storeTouch(addr);
                rbb_.current().usedColors.push_back({r, color});
                stats_.ckptColored++;
                stats_.storesCkpt++;
                if (cfg_.tracer && cfg_.tracer->wants(kTraceStores))
                    cfg_.tracer->event(cycle_, kTraceStores, "ckpt",
                                       strfmt("r%u colored %d, fast "
                                              "release", r, color),
                                       pc_,
                                       static_cast<uint16_t>(mi.op),
                                       r,
                                       static_cast<uint64_t>(color));
                return true;
            }
            // A stale entry for this slot is still draining; give
            // the color back and quarantine instead.
            colors_.giveBack(r, color);
        } else {
            stats_.colorExhausted++;
        }
    }

    if (sb_.full())
        return false;
    uint64_t addr = layout::ckptSlot(r, layout::kQuarantineColor);
    sb_.push({addr, value, rbb_.current().id, StoreKind::Ckpt, false});
    rbb_.current().usedColors.push_back(
        {r, layout::kQuarantineColor});
    stats_.storesQuarantined++;
    stats_.storesCkpt++;
    return true;
}

bool
InOrderPipeline::commitBoundary(const MInstr &mi)
{
    if (!cfg_.resilience)
        return true;
    if (rbb_.full())
        return false;
    stats_.boundaries++;
    if (cfg_.warFreeRelease)
        clq_.onRegionStart(unrecorded_instances_.empty());
    uint64_t inst_id = rbb_.beginRegion(static_cast<uint32_t>(mi.imm),
                                        cycle_, cfg_.wcdl);
    cur_static_region_ = static_cast<uint32_t>(mi.imm);
    stats_.rbbOccupancy.sample(static_cast<double>(rbb_.size()));
    if (cfg_.statsInterval != 0 && cfg_.intervalPerRegion &&
        stats_.boundaries % cfg_.statsInterval == 0)
        recordIntervalSample();
    if (cfg_.tracer && cfg_.tracer->wants(kTraceRegions))
        cfg_.tracer->event(cycle_, kTraceRegions, "region",
                           strfmt("boundary: static %u, instance "
                                  "%llu begins",
                                  cur_static_region_,
                                  (unsigned long long)inst_id),
                           pc_, static_cast<uint16_t>(mi.op),
                           inst_id, cur_static_region_);
    return true;
}

void
InOrderPipeline::captureCommit(const MInstr &mi, uint32_t pc)
{
    // The architectural effect, recomputed from state the commit
    // left intact (register operands are never clobbered by their
    // own store/checkpoint commit).
    uint64_t a = 0, b = 0;
    switch (mi.op) {
      case Op::Store:
        a = static_cast<uint64_t>(regs_[mi.src1] + mi.imm) & ~7ull;
        b = static_cast<uint64_t>(regs_[mi.src0]);
        break;
      case Op::Ckpt:
        a = mi.src0;
        b = static_cast<uint64_t>(regs_[mi.src0]);
        break;
      case Op::Br:
      case Op::Jmp:
        a = pc_; // already redirected: the committed next pc
        break;
      case Op::Halt:
      case Op::Nop:
        break;
      default:
        if (writesDst(mi.op) && mi.dst != kNoReg) {
            a = mi.dst;
            b = static_cast<uint64_t>(regs_[mi.dst]);
        }
        break;
    }
    cfg_.capture->commit(cycle_, pc, static_cast<uint16_t>(mi.op),
                         cur_static_region_, a, b);
}

bool
InOrderPipeline::parityTriggered(const MInstr &mi)
{
    if (mi.src0 != kNoReg && reg_parity_bad_[mi.src0])
        return true;
    if (mi.src1 != kNoReg && reg_parity_bad_[mi.src1])
        return true;
    return false;
}

void
InOrderPipeline::applyFault(const FaultEvent &ev)
{
    if (ev.spurious) {
        // Sensor false positive (noisy-detector model): nothing was
        // struck, but the detection pipeline fires anyway and rolls
        // back a perfectly healthy region.
        stats_.falseAlarms++;
        if (cfg_.tracer && cfg_.tracer->wants(kTraceRecovery))
            cfg_.tracer->event(cycle_, kTraceRecovery, "fault",
                               strfmt("spurious detection (false "
                                      "positive) in %u cycles",
                                      ev.detectDelay),
                               pc_, kNoTraceOp, 0, 0);
        if (ev.detected)
            pending_detect_.push(cycle_ + ev.detectDelay);
        return;
    }
    const uint32_t burst = ev.burst ? ev.burst : 1;
    switch (ev.target) {
      case FaultTarget::Register: {
        Reg r = ev.index % kNumPhysRegs;
        // The register file's code sees the whole burst at once:
        // within its correction radius the strike never lands;
        // within its detection radius it lands but is flagged
        // (parity-style) the next time the register is read.
        StrikeEffect se = strikeEffect(cfg_.regProtect, burst);
        if (se == StrikeEffect::Corrected) {
            stats_.eccCorrected++;
        } else {
            for (uint32_t i = 0; i < burst; i++)
                regs_[r] ^= int64_t(1) << ((ev.bit + i) & 63);
            if (se == StrikeEffect::Detected) {
                stats_.eccDetected++;
                reg_parity_bad_[r] = true;
                any_parity_bad_ = true;
            }
        }
        if (cfg_.tracer && cfg_.tracer->wants(kTraceRecovery))
            cfg_.tracer->event(
                cycle_, kTraceRecovery, "fault",
                se == StrikeEffect::Corrected
                    ? strfmt("bit %u of r%u corrected by %s",
                             ev.bit, r,
                             protectLevelName(cfg_.regProtect))
                    : strfmt("bit %u of r%u flipped; "
                             "detection in %u cycles",
                             ev.bit, r, ev.detectDelay),
                pc_, kNoTraceOp, r, ev.bit);
        break;
      }
      case FaultTarget::SbEntry: {
        // Corrupt a value in flight: modelled as flipping a store-
        // buffer entry of the *current, still-running* region. Such
        // an entry cannot verify before the strike is detected
        // (verify = region end + WCDL >= detection time), so the
        // quarantine guarantee holds. Entries of older regions are
        // excluded: the SB array itself is hardened (§5), and their
        // values were computed before the strike.
        std::vector<SbEntry *> candidates;
        if (cfg_.resilience && !rbb_.empty()) {
            uint64_t cur = rbb_.current().id;
            for (size_t i = 0; i < sb_.size(); i++) {
                SbEntry &e = sb_.at(i);
                if (!e.releasable && e.regionInstance == cur)
                    candidates.push_back(&e);
            }
        }
        if (!candidates.empty()) {
            StrikeEffect se = strikeEffect(cfg_.sbProtect, burst);
            if (se == StrikeEffect::Corrected) {
                stats_.eccCorrected++;
            } else {
                SbEntry *e = candidates[ev.index % candidates.size()];
                for (uint32_t i = 0; i < burst; i++)
                    e->value ^= int64_t(1) << ((ev.bit + i) & 63);
                if (se == StrikeEffect::Detected) {
                    // The SB's own code flags the entry on its next
                    // access — an immediate detection independent of
                    // the acoustic wave.
                    stats_.eccDetected++;
                    pending_detect_.push(cycle_ + 1);
                }
            }
        }
        break;
      }
      case FaultTarget::Pc: {
        // A strike on the PC latch redirects fetch to an arbitrary
        // (but decodable) location; the modulo models the width of
        // the physical latch.
        uint32_t width_bit = ev.bit % 32;
        pc_ = (pc_ ^ (1u << width_bit)) %
            static_cast<uint32_t>(mf_.code().size());
        break;
      }
      case FaultTarget::Latch: {
        // A pipeline latch holds a register value in flight; the
        // writeback lands in the register file *without* tripping
        // any storage code (the latch itself is unprotected at every
        // level), so only the acoustic sensor can catch this one.
        Reg r = ev.index % kNumPhysRegs;
        for (uint32_t i = 0; i < burst; i++)
            regs_[r] ^= int64_t(1) << ((ev.bit + i) & 63);
        break;
      }
      case FaultTarget::RbbEntry: {
        // RBB metadata corruption: an even selector strikes the
        // verification-deadline timer (premature release of an
        // unverified region, or a deadline pushed out far enough to
        // wedge the pipeline); an odd one strikes the restart-region
        // field the recovery handler jumps through.
        if (!rbb_.empty()) {
            RegionInstance &ri = rbb_.at(ev.index % rbb_.size());
            if ((ev.index & 1) == 0) {
                // Keep the flip in the timer's low bits so deadlines
                // move by bounded amounts in both directions.
                ri.verifyCycle ^= uint64_t(1) << (ev.bit % 20);
            } else {
                ri.staticRegion =
                    (ri.staticRegion ^ (1u << (ev.bit % 8))) %
                    static_cast<uint32_t>(mf_.regions().size());
            }
        }
        break;
      }
      case FaultTarget::ClqEntry:
        clq_.corruptEntry(ev.index, ev.bit);
        break;
      case FaultTarget::ColorMap:
        colors_.corruptVerified(ev.index % kNumPhysRegs, ev.bit);
        break;
      case FaultTarget::CacheData: {
        // A dirty line in the data cache (ECC-less in the paper's
        // study; the detector zoo can protect it): authoritative
        // data lives in memory_, so flip a word of the module's data
        // segment directly.
        StrikeEffect se = strikeEffect(cfg_.cacheProtect, burst);
        if (se == StrikeEffect::Corrected) {
            stats_.eccCorrected++;
            break;
        }
        uint64_t total = 0;
        for (const DataObject &obj : mod_.data())
            total += obj.words;
        if (total != 0) {
            uint64_t k = ev.index % total;
            for (const DataObject &obj : mod_.data()) {
                if (k < obj.words) {
                    uint64_t addr = obj.base + k * 8;
                    int64_t v = memory_.read(addr);
                    for (uint32_t i = 0; i < burst; i++)
                        v ^= int64_t(1) << ((ev.bit + i) & 63);
                    memory_.write(addr, v);
                    break;
                }
                k -= obj.words;
            }
            if (se == StrikeEffect::Detected) {
                // Cache ECC flags the line on its next fill/probe.
                stats_.eccDetected++;
                pending_detect_.push(cycle_ + 1);
            }
        }
        break;
      }
    }
    // The sound wave is heard regardless of what was hit — unless
    // this trial models a sensor miss.
    if (ev.detected)
        pending_detect_.push(cycle_ + ev.detectDelay);
    else if (cfg_.tracer && cfg_.tracer->wants(kTraceRecovery))
        cfg_.tracer->event(cycle_, kTraceRecovery, "fault",
                           strfmt("undetected %s strike (sensor "
                                  "miss)", faultTargetName(ev.target)),
                           pc_, kNoTraceOp, ev.index, ev.bit);
}

void
InOrderPipeline::doRecovery()
{
    stats_.recoveries++;
    if (cfg_.tracer && cfg_.tracer->wants(kTraceRecovery)) {
        cfg_.tracer->event(cycle_, kTraceRecovery, "recover",
                           "error detected; squashing unverified "
                           "state");
        // Post-mortem: the ring holds the events leading into this
        // recovery — exactly the window a debugging session needs.
        cfg_.tracer->dumpPostmortem("recovery");
    }

    // Verified (releasable) entries are error-free: flush them to
    // the cache; everything else is discarded with the quarantine.
    while (sb_.headReleasable()) {
        SbEntry e = sb_.pop();
        memory_.write(e.addr, e.value);
        caches_.storeTouch(e.addr);
    }
    sb_.clear();

    auto squashed = rbb_.squash();
    if (squashed.empty() && halted_) {
        // The strike landed after every region was verified and the
        // program finished: all architectural work is already safe
        // in the ECC-protected domain and no register will ever be
        // read again. Re-executing verified history would repeat
        // non-idempotent stores; recovery is a no-op.
        return;
    }
    uint32_t restart = cur_static_region_;
    if (!squashed.empty()) {
        restart = squashed.front().staticRegion;
        for (const RegionInstance &ri : squashed)
            colors_.recycleUnverified(ri.usedColors);
    }
    cur_static_region_ = restart;
    clq_.reset();
    unrecorded_instances_.clear();

    const RegionMeta &rm = mf_.region(restart);
    if (debug_recovery_) {
        std::fprintf(stderr, "recovery: cycle=%llu restart=%u "
                     "pc=%u squashed=%zu\n",
                     static_cast<unsigned long long>(cycle_), restart,
                     rm.entryPc, squashed.size());
    }
    uint64_t cost = executeRecovery(rm.recovery, colors_, memory_,
                                    regs_);
    for (const RecoveryOp &op : rm.recovery)
        if (op.kind == RecoveryOp::Kind::CommitReg)
            reg_parity_bad_[op.reg] = false;

    pc_ = rm.entryPc;
    uint64_t penalty = 5 + cost;
    cycle_ += penalty;
    stats_.recoveryCycles += penalty;
    for (Reg r = 0; r < kNumPhysRegs; r++)
        reg_ready_[r] = cycle_;
    fetch_stall_until_ = cycle_;
    halted_ = false;

    any_parity_bad_ = false;
    for (Reg r = 0; r < kNumPhysRegs; r++)
        if (reg_parity_bad_[r])
            any_parity_bad_ = true;
}

void
InOrderPipeline::issueCycle()
{
    stall_kind_ = StallKind::None;
    if (cycle_ < fetch_stall_until_) {
        stall_kind_ = StallKind::Fetch;
        stall_until_ = fetch_stall_until_;
        return;
    }

    int issued = 0;
    bool mem_used = false;
    Reg group_dst[2] = {kNoReg, kNoReg};

    // Hoisted per-instruction invariants: the code array and the
    // tracer decision do not change within a cycle.
    const MInstr *code = mf_.code().data();
    const size_t code_size = mf_.code().size();
    Tracer *const tracer = cfg_.tracer;
    const bool trace_issue = tracer && tracer->wants(kTraceIssue);
    const bool trace_stalls = tracer && tracer->wants(kTraceStalls);

    while (issued < cfg_.issueWidth) {
        TP_ASSERT(pc_ < code_size, "pc %u out of range", pc_);
        const MInstr &mi = code[pc_];

        if (mi.op == Op::Boundary) {
            if (!commitBoundary(mi)) {
                if (issued == 0) {
                    stats_.rbbFullStallCycles++;
                    stall_kind_ = StallKind::RbbFull;
                    if (trace_stalls)
                        tracer->event(
                            cycle_, kTraceStalls, "stall",
                            strfmt("rbb-full: boundary at pc %u "
                                   "waits for verification (%zu in "
                                   "flight)", pc_, rbb_.size()),
                            pc_, static_cast<uint16_t>(mi.op),
                            rbb_.size());
                }
                break;
            }
            pc_++;
            continue; // zero-width marker
        }
        if (mi.op == Op::Halt) {
            stats_.insts++;
            if (cfg_.capture)
                captureCommit(mi, pc_);
            halted_ = true;
            if (cfg_.resilience)
                rbb_.endCurrent(cycle_, cfg_.wcdl);
            break;
        }

        // Register parity check on every operand access (§5). The
        // any_parity_bad_ guard keeps the fault-free fast path from
        // probing the per-register flags.
        if (any_parity_bad_ && parityTriggered(mi)) {
            stats_.detectedFaults++;
            doRecovery();
            return;
        }

        // Operand readiness (scoreboard with full forwarding). A
        // store's data value is not needed until its MEM stage, two
        // cycles after issue, so store-class instructions get a
        // two-cycle grace on the data operand (the address operand
        // is needed at EX as usual).
        bool store_class = mi.op == Op::Store || mi.op == Op::Ckpt;
        uint64_t ready = 0;
        if (mi.src0 != kNoReg) {
            uint64_t r = reg_ready_[mi.src0];
            if (store_class)
                r = r > 2 ? r - 2 : 0;
            ready = std::max(ready, r);
        }
        if (mi.src1 != kNoReg)
            ready = std::max(ready, reg_ready_[mi.src1]);
        if (ready > cycle_) {
            if (issued == 0) {
                stats_.dataHazardStallCycles++;
                stall_kind_ = StallKind::DataHazard;
                stall_until_ = ready;
                if (trace_stalls)
                    tracer->event(
                        cycle_, kTraceStalls, "stall",
                        strfmt("data-hazard: pc %u waits until "
                               "cycle %llu", pc_,
                               (unsigned long long)ready),
                        pc_, static_cast<uint16_t>(mi.op), ready);
            }
            break;
        }
        // No same-cycle dependence inside a dual-issue pair.
        if ((mi.src0 != kNoReg && (mi.src0 == group_dst[0] ||
                                   mi.src0 == group_dst[1])) ||
            (mi.src1 != kNoReg && (mi.src1 == group_dst[0] ||
                                   mi.src1 == group_dst[1])))
            break;

        switch (mi.op) {
          case Op::Load: {
            if (mem_used)
                goto group_done;
            // Force alignment like commitStore(): a load through a
            // fault-corrupted base register must not panic.
            uint64_t addr =
                static_cast<uint64_t>(regs_[mi.src0] + mi.imm) &
                ~7ull;
            const SbEntry *fwd = sb_.youngestFor(addr);
            int64_t v;
            int lat;
            if (fwd) {
                v = fwd->value;
                lat = 2;
            } else {
                v = memory_.read(addr);
                lat = caches_.loadLatency(addr);
            }
            regs_[mi.dst] = v;
            reg_ready_[mi.dst] = cycle_ + static_cast<uint64_t>(lat);
            reg_parity_bad_[mi.dst] = false;
            stats_.loads++;
            if (cfg_.resilience && cfg_.warFreeRelease) {
                bool was_enabled = clq_.enabled();
                clq_.insertLoad(rbb_.current().id, addr);
                if (!clq_.enabled()) {
                    if (was_enabled) {
                        // Overflow: every live region's records died.
                        stats_.clqOverflows++;
                        for (const RegionInstance &ri :
                                 rbb_.instances())
                            unrecorded_instances_.insert(ri.id);
                    }
                    unrecorded_instances_.insert(rbb_.current().id);
                }
            }
            mem_used = true;
            break;
          }
          case Op::Store:
            if (mem_used)
                goto group_done;
            if (!commitStore(mi)) {
                if (issued == 0) {
                    stats_.sbFullStallCycles++;
                    stall_kind_ = StallKind::SbFull;
                    if (trace_stalls)
                        tracer->event(
                            cycle_, kTraceStalls, "stall",
                            strfmt("sb-full: store at pc %u waits "
                                   "for verification", pc_),
                            pc_, static_cast<uint16_t>(mi.op),
                            sb_.size());
                }
                goto group_done;
            }
            mem_used = true;
            break;
          case Op::Ckpt:
            if (mem_used)
                goto group_done;
            if (!commitCkpt(mi)) {
                if (issued == 0) {
                    stats_.sbFullStallCycles++;
                    stall_kind_ = StallKind::SbFull;
                    if (trace_stalls)
                        tracer->event(
                            cycle_, kTraceStalls, "stall",
                            strfmt("sb-full: checkpoint at pc %u "
                                   "waits for verification", pc_),
                            pc_, static_cast<uint16_t>(mi.op),
                            sb_.size());
                }
                goto group_done;
            }
            mem_used = true;
            break;
          case Op::Br: {
            bool taken = regs_[mi.src0] != 0;
            bool predict_taken = mi.target < pc_;
            uint32_t next = taken ? mi.target : pc_ + 1;
            if (taken != predict_taken) {
                stats_.branchMispredicts++;
                fetch_stall_until_ = cycle_ + 1 +
                    static_cast<uint64_t>(
                        cfg_.branchMispredictPenalty);
            }
            // Control flow skips the shared issue bookkeeping below,
            // so emit the issue event here (before the redirect, so
            // the branch's own pc is reported).
            if (trace_issue)
                tracer->event(cycle_, kTraceIssue, "issue",
                              strfmt("pc %u: %s", pc_,
                                     mi.toString().c_str()),
                              pc_, static_cast<uint16_t>(mi.op),
                              next, taken);
            uint32_t br_pc = pc_;
            pc_ = next;
            stats_.insts++;
            if (cfg_.capture)
                captureCommit(mi, br_pc);
            issued++;
            goto group_done; // redirect ends the fetch group
          }
          case Op::Jmp:
            if (trace_issue)
                tracer->event(cycle_, kTraceIssue, "issue",
                              strfmt("pc %u: %s", pc_,
                                     mi.toString().c_str()),
                              pc_, static_cast<uint16_t>(mi.op),
                              mi.target);
            {
                uint32_t jmp_pc = pc_;
                pc_ = mi.target;
                stats_.insts++;
                if (cfg_.capture)
                    captureCommit(mi, jmp_pc);
            }
            issued++;
            goto group_done;
          case Op::Nop:
            break;
          case Op::AddShl: {
            int64_t v = regs_[mi.src0] +
                static_cast<int64_t>(
                    static_cast<uint64_t>(regs_[mi.src1])
                    << (mi.imm & 63));
            regs_[mi.dst] = v;
            reg_ready_[mi.dst] = cycle_ + 1;
            reg_parity_bad_[mi.dst] = false;
            break;
          }
          default: {
            int64_t b = mi.src1 == kNoReg ? mi.imm : regs_[mi.src1];
            int64_t a = mi.op == Op::Li ? mi.imm : regs_[mi.src0];
            int64_t v = mi.op == Op::Li ? a : evalAlu(mi.op, a, b);
            regs_[mi.dst] = v;
            reg_ready_[mi.dst] = cycle_ +
                static_cast<uint64_t>(exLatency(mi.op));
            reg_parity_bad_[mi.dst] = false;
            break;
          }
        }
        if (writesDst(mi.op))
            group_dst[issued & 1] = mi.dst;
        if (trace_issue)
            tracer->event(cycle_, kTraceIssue, "issue",
                          strfmt("pc %u: %s", pc_,
                                 mi.toString().c_str()),
                          pc_, static_cast<uint16_t>(mi.op));
        stats_.insts++;
        if (cfg_.capture)
            captureCommit(mi, pc_);
        issued++;
        pc_++;
    }
  group_done:
    stats_.sbOccupancy.sample(static_cast<double>(sb_.size()));
}

uint64_t
InOrderPipeline::quiesceHorizon(const std::vector<FaultEvent> &faults,
                                size_t fault_idx) const
{
    // Issue makes progress next cycle: no skip. (A parity-triggered
    // recovery, a Halt commit, or any issued instruction all land
    // here as StallKind::None.)
    if (!halted_ && stall_kind_ == StallKind::None)
        return cycle_ + 1;
    // A releasable head drains one entry per cycle: no skip.
    if (sb_.headReleasable())
        return cycle_ + 1;
    // Fully drained after halt: the next iteration breaks out.
    if (halted_ && sb_.empty() && rbb_.empty() &&
        pending_detect_.empty() && fault_idx >= faults.size())
        return cycle_ + 1;

    uint64_t h = cfg_.maxCycles;
    if (!halted_ && (stall_kind_ == StallKind::Fetch ||
                     stall_kind_ == StallKind::DataHazard))
        h = std::min(h, stall_until_);
    // SbFull/RbbFull (and the post-halt drain) only unblock through
    // one of the events below.
    if (fault_idx < faults.size())
        h = std::min(h, faults[fault_idx].cycle);
    if (!pending_detect_.empty())
        h = std::min(h, pending_detect_.front());
    if (!rbb_.empty() && rbb_.oldest().ended)
        h = std::min(h, rbb_.oldest().verifyCycle);
    return std::max(h, cycle_ + 1);
}

void
InOrderPipeline::bookSkippedCycles(uint64_t n)
{
    // Replays exactly what n more iterations of the stalled
    // issueCycle() would have recorded. When halted (or in a fetch
    // stall) issueCycle records nothing.
    if (halted_ || stall_kind_ == StallKind::Fetch)
        return;
    switch (stall_kind_) {
      case StallKind::DataHazard:
        stats_.dataHazardStallCycles += n;
        break;
      case StallKind::SbFull:
        stats_.sbFullStallCycles += n;
        break;
      case StallKind::RbbFull:
        stats_.rbbFullStallCycles += n;
        break;
      default:
        panic("bookSkippedCycles: unexpected stall kind %d",
              static_cast<int>(stall_kind_));
    }
    stats_.sbOccupancy.sample(static_cast<double>(sb_.size()), n);
}

void
InOrderPipeline::recordIntervalSample()
{
    IntervalSample s;
    s.cycle = cycle_;
    s.insts = stats_.insts;
    s.sbFullStallCycles = stats_.sbFullStallCycles;
    s.dataHazardStallCycles = stats_.dataHazardStallCycles;
    s.rbbFullStallCycles = stats_.rbbFullStallCycles;
    s.boundaries = stats_.boundaries;
    s.sbOcc = static_cast<uint32_t>(sb_.size());
    s.rbbOcc = static_cast<uint32_t>(rbb_.size());
    s.clqOcc = static_cast<uint32_t>(clq_.entriesUsed());
    stats_.intervals.push_back(s);
}

PipelineResult
InOrderPipeline::run(const std::vector<FaultEvent> &faults)
{
    size_t fault_idx = 0;
    // Hoisted loop invariants, plus the next fault's cycle as a
    // single register-resident compare (campaigns mostly run with no
    // or few faults, so the common case is one compare per cycle).
    const FaultEvent *const fe = faults.data();
    const size_t nfaults = faults.size();
    const uint64_t max_cycles = cfg_.maxCycles;
    uint64_t next_fault =
        fault_idx < nfaults ? fe[fault_idx].cycle : ~uint64_t(0);
    // Cycle-interval sampling: disabled (the default) costs one
    // always-false compare per loop iteration. With fast-forward the
    // loop can jump several periods at once; one sample is taken per
    // crossing, stamped with the actual cycle.
    const uint64_t interval =
        cfg_.intervalPerRegion ? 0 : cfg_.statsInterval;
    uint64_t next_sample = interval ? interval : ~uint64_t(0);
    while (cycle_ < max_cycles) {
        // A prefix probe stops as soon as its capture is satisfied;
        // plain runs (capture null or unlimited) never take this.
        if (cfg_.capture && cfg_.capture->done())
            break;
        if (cycle_ >= next_sample) {
            recordIntervalSample();
            next_sample = (cycle_ / interval + 1) * interval;
        }
        while (cycle_ >= next_fault) {
            applyFault(fe[fault_idx]);
            fault_idx++;
            next_fault = fault_idx < nfaults ? fe[fault_idx].cycle
                                             : ~uint64_t(0);
        }
        while (!pending_detect_.empty() &&
               pending_detect_.front() <= cycle_) {
            pending_detect_.popFront();
            stats_.detectedFaults++;
            doRecovery();
        }
        // The helpers are gated on inline checks so the common
        // nothing-to-do cycle pays no out-of-line call.
        if (rbb_.hasVerified(cycle_))
            processVerification();
        if (sb_.headReleasable())
            drainStoreBuffer();
        if (!halted_) {
            issueCycle();
        } else if (sb_.empty() && rbb_.empty() &&
                   pending_detect_.empty() &&
                   fault_idx >= faults.size()) {
            break; // fully drained, nothing pending
        }
        if (fastforward_ &&
            (halted_ || stall_kind_ != StallKind::None)) {
            // Jump over cycles where provably nothing happens:
            // multi-cycle hazard stalls, branch penalties, waits for
            // a verification deadline, and the post-halt drain. When
            // issue made progress the horizon is always cycle_ + 1,
            // so that case skips the computation entirely.
            uint64_t horizon = quiesceHorizon(faults, fault_idx);
            if (horizon > cycle_ + 1) {
                uint64_t skipped = horizon - cycle_ - 1;
                if (cfg_.tracer && cfg_.tracer->wants(kTraceFf)) {
                    cfg_.tracer->event(
                        cycle_, kTraceFf, "ff_window",
                        "fast-forward " + std::to_string(skipped) +
                            " quiescent cycles to " +
                            std::to_string(horizon),
                        kNoTracePc, kNoTraceOp, cycle_ + 1, skipped);
                }
                bookSkippedCycles(skipped);
                cycle_ = horizon - 1;
            }
        }
        cycle_++;
    }

    PipelineResult result;
    result.halted = halted_;
    uint64_t ah = 1469598103934665603ull; // FNV offset basis
    for (Reg r = 0; r < kNumPhysRegs; r++) {
        uint64_t v = static_cast<uint64_t>(regs_[r]);
        for (int i = 0; i < 8; i++) {
            ah ^= (v >> (i * 8)) & 0xff;
            ah *= 1099511628211ull;
        }
    }
    result.archHash = ah;
    stats_.cycles = cycle_;
    stats_.clqOccupancy = clq_.occupancy();
    stats_.l1dHits = caches_.l1().hits();
    stats_.l1dMisses = caches_.l1().misses();
    stats_.l2Hits = caches_.l2().hits();
    stats_.l2Misses = caches_.l2().misses();
    result.stats = stats_;
    result.memory = std::move(memory_);
    return result;
}

} // namespace turnpike
