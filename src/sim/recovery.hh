/**
 * @file
 * Recovery engine: executes a region's recovery program against the
 * verified memory image (checkpoint slots selected through the
 * verified-color map) to restore the region's live-in registers
 * after a detected soft error.
 */

#ifndef TURNPIKE_SIM_RECOVERY_HH_
#define TURNPIKE_SIM_RECOVERY_HH_

#include <cstdint>

#include "ir/interpreter.hh"
#include "machine/mfunction.hh"
#include "sim/color_maps.hh"

namespace turnpike {

/**
 * Run @p prog: LoadCkpt steps read ckptSlot(reg, VC[reg]) from
 * @p mem; CommitReg steps write @p regs. Returns the modelled cycle
 * cost (1 per op plus the cache hit latency per checkpoint load).
 */
uint64_t executeRecovery(const RecoveryProgram &prog,
                         const ColorMaps &colors, const MemoryImage &mem,
                         int64_t regs[kNumPhysRegs]);

} // namespace turnpike

#endif // TURNPIKE_SIM_RECOVERY_HH_
