/**
 * @file
 * Region boundary buffer (RBB): tracks in-flight (unverified)
 * dynamic region instances, their verification deadlines, and the
 * colors their checkpoints used. The oldest unverified instance's
 * entry PC is the recovery PC.
 */

#ifndef TURNPIKE_SIM_RBB_HH_
#define TURNPIKE_SIM_RBB_HH_

#include <cstdint>
#include <deque>
#include <utility>

#include "sim/color_maps.hh"
#include "util/logging.hh"

namespace turnpike {

/** One in-flight dynamic region. */
struct RegionInstance
{
    uint64_t id = 0;            ///< monotonically increasing
    uint32_t staticRegion = 0;  ///< region id in the machine code
    uint64_t startCycle = 0;
    uint64_t endCycle = 0;      ///< set when the next boundary commits
    bool ended = false;
    uint64_t verifyCycle = 0;   ///< endCycle + WCDL, valid when ended
    std::vector<UsedColor> usedColors; ///< UC entries of this region
};

/** The RBB: a FIFO of unverified region instances. */
class Rbb
{
  public:
    explicit Rbb(uint32_t capacity) : capacity_(capacity) {}

    bool full() const { return instances_.size() >= capacity_; }
    bool empty() const { return instances_.empty(); }
    size_t size() const { return instances_.size(); }

    // current()/hasVerified()/popVerified() are inline: the pipeline
    // consults them every committed store and every simulated cycle.

    /** The running (newest) instance. Panics when empty. */
    RegionInstance &current()
    {
        TP_ASSERT(!instances_.empty(), "RBB has no running instance");
        return instances_.back();
    }
    const RegionInstance &current() const
    {
        TP_ASSERT(!instances_.empty(), "RBB has no running instance");
        return instances_.back();
    }

    /** The oldest unverified instance (the recovery target). */
    const RegionInstance &oldest() const
    {
        TP_ASSERT(!instances_.empty(), "RBB empty");
        return instances_.front();
    }

    /**
     * Commit a region boundary at @p cycle: ends the current
     * instance (arming its verification timer) and starts a new
     * instance of @p static_region. Caller must check full().
     * Returns the new instance's id.
     */
    uint64_t beginRegion(uint32_t static_region, uint64_t cycle,
                         uint32_t wcdl);

    /**
     * True when the oldest instance has ended and its verification
     * deadline has passed at @p cycle (i.e. popVerified() would
     * succeed).
     */
    bool hasVerified(uint64_t cycle) const
    {
        return !instances_.empty() && instances_.front().ended &&
            instances_.front().verifyCycle <= cycle;
    }

    /**
     * Pop the oldest instance if it has ended and its verification
     * deadline has passed. Returns true and fills @p out when an
     * instance was verified.
     */
    bool popVerified(uint64_t cycle, RegionInstance &out)
    {
        if (!hasVerified(cycle))
            return false;
        out = std::move(instances_.front());
        instances_.pop_front();
        return true;
    }

    /** Recovery squash: drop all instances. */
    std::deque<RegionInstance> squash();

    /** End the running instance (program halt) at @p cycle. */
    void endCurrent(uint64_t cycle, uint32_t wcdl);

    /** All unverified instances, oldest first. */
    const std::deque<RegionInstance> &instances() const
    {
        return instances_;
    }

    /** Instance @p i (0 = oldest), mutable for fault injection. */
    RegionInstance &at(size_t i)
    {
        TP_ASSERT(i < instances_.size(), "RBB index %zu out of range",
                  i);
        return instances_[i];
    }

  private:
    uint32_t capacity_;
    uint64_t next_id_ = 0;
    std::deque<RegionInstance> instances_;
};

} // namespace turnpike

#endif // TURNPIKE_SIM_RBB_HH_
