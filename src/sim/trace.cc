#include "sim/trace.hh"

#include "ir/opcode.hh"
#include "util/chrome_trace.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace turnpike {

const char *
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case kTraceIssue: return "issue";
      case kTraceStores: return "stores";
      case kTraceRegions: return "regions";
      case kTraceRecovery: return "recovery";
      case kTraceStalls: return "stalls";
      case kTraceFf: return "ff";
      default: return "unknown";
    }
}

void
Tracer::event(uint64_t cycle, TraceCategory cat, const char *tag,
              const std::string &message, uint32_t pc,
              uint16_t opcode, uint64_t a, uint64_t b)
{
    TraceEvent ev;
    ev.cycle = cycle;
    ev.a = a;
    ev.b = b;
    ev.tag = tag;
    ev.category = cat;
    ev.pc = pc;
    ev.opcode = opcode;
    record(ev);
    render(ev, message);
}

void
Tracer::record(const TraceEvent &ev)
{
    if (ring_.empty())
        return;
    size_t slot = ring_head_ + ring_size_;
    if (slot >= ring_.size())
        slot -= ring_.size();
    ring_[slot] = ev;
    if (ring_size_ < ring_.size()) {
        ring_size_++;
    } else {
        // Full: the write just overwrote the oldest slot.
        ring_head_ = ring_head_ + 1 == ring_.size() ? 0
                                                    : ring_head_ + 1;
    }
}

const TraceEvent &
Tracer::ringAt(size_t i) const
{
    TP_ASSERT(i < ring_size_, "trace ring index %zu out of %zu", i,
              ring_size_);
    size_t slot = ring_head_ + i;
    if (slot >= ring_.size())
        slot -= ring_.size();
    return ring_[slot];
}

namespace {

/** Shared field rendering of one binary record as a JSON object. */
void
writeEventFields(JsonWriter &jw, const TraceEvent &ev)
{
    jw.field("cycle", ev.cycle);
    jw.field("cat", traceCategoryName(
                        static_cast<TraceCategory>(ev.category)));
    jw.field("tag", ev.tag);
    if (ev.pc != kNoTracePc)
        jw.field("pc", ev.pc);
    if (ev.opcode != kNoTraceOp)
        jw.field("op", opName(static_cast<Op>(ev.opcode)));
    jw.field("a", ev.a);
    jw.field("b", ev.b);
}

} // namespace

void
Tracer::renderChrome(const TraceEvent &ev, const std::string &message)
{
    ChromeTraceWriter *ct = chrome_ ? chrome_ : activeChromeTrace();
    if (!ct)
        return;
    const char *cat =
        traceCategoryName(static_cast<TraceCategory>(ev.category));
    // The simulated timeline maps 1 cycle = 1 us on the sim process
    // track. Duration-carrying events (fast-forward windows: a =
    // first skipped cycle, b = window length) become spans; all
    // other pipeline events are instant marks at their cycle.
    std::string args = "\"msg\":\"" + jsonEscape(message) + "\"";
    if (ev.category == kTraceFf && ev.b > 0) {
        ct->completeEvent(ev.tag, cat, kChromePidSim, kChromeTidMain,
                          ev.a, ev.b, args);
        return;
    }
    ct->instantEvent(ev.tag, cat, kChromePidSim, kChromeTidMain,
                     ev.cycle, args);
}

void
Tracer::render(const TraceEvent &ev, const std::string &message)
{
    if (format_ == TraceFormat::Chrome) {
        renderChrome(ev, message);
        return;
    }
    if (format_ == TraceFormat::Text) {
        // Byte-identical to the pre-structured tracer's line format.
        out_ << ev.cycle << ": " << ev.tag << ": " << message << '\n';
        return;
    }
    JsonWriter jw(out_, 0);
    jw.beginObject();
    writeEventFields(jw, ev);
    jw.field("msg", message);
    jw.endObject();
    jw.newline();
}

void
Tracer::dumpPostmortem(const char *reason)
{
    if (format_ == TraceFormat::Chrome) {
        // Replay the ring as instant marks on the sim track; the
        // reason rides in args so panic/recovery dumps are
        // distinguishable in the viewer.
        ChromeTraceWriter *ct = chrome_ ? chrome_
                                        : activeChromeTrace();
        if (!ct)
            return;
        std::string args =
            "\"postmortem\":\"" + jsonEscape(reason) + "\"";
        for (size_t i = 0; i < ring_size_; i++) {
            const TraceEvent &ev = ringAt(i);
            ct->instantEvent(
                ev.tag,
                traceCategoryName(
                    static_cast<TraceCategory>(ev.category)),
                kChromePidSim, kChromeTidMain, ev.cycle, args);
        }
        return;
    }
    if (format_ == TraceFormat::Text) {
        out_ << "== postmortem (" << reason << "): last "
             << ring_size_ << " events ==\n";
        for (size_t i = 0; i < ring_size_; i++) {
            const TraceEvent &ev = ringAt(i);
            out_ << "  " << ev.cycle << ": "
                 << traceCategoryName(
                        static_cast<TraceCategory>(ev.category))
                 << "/" << ev.tag;
            if (ev.pc != kNoTracePc)
                out_ << " pc=" << ev.pc;
            if (ev.opcode != kNoTraceOp)
                out_ << " op=" << opName(static_cast<Op>(ev.opcode));
            out_ << " a=" << ev.a << " b=" << ev.b << '\n';
        }
        out_.flush();
        return;
    }
    for (size_t i = 0; i < ring_size_; i++) {
        JsonWriter jw(out_, 0);
        jw.beginObject();
        jw.field("postmortem", true);
        jw.field("reason", reason);
        writeEventFields(jw, ringAt(i));
        jw.endObject();
        jw.newline();
    }
    out_.flush();
}

void
installTracerPanicDump(Tracer *tracer)
{
    if (!tracer) {
        setPanicHook({});
        return;
    }
    setPanicHook([tracer] { tracer->dumpPostmortem("panic"); });
}

} // namespace turnpike
