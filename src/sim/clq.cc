#include "sim/clq.hh"

#include <algorithm>

#include "util/logging.hh"

namespace turnpike {

void
Clq::insertLoad(uint64_t instance, uint64_t addr)
{
    if (!enabled_)
        return;
    Entry *e = nullptr;
    if (!entries_.empty() && entries_.back().instance == instance) {
        e = &entries_.back();
    } else {
        // A new region needs a fresh entry.
        if (design_ == ClqDesign::Compact &&
            entries_.size() >= capacity_) {
            // Fig. 13: overflow disables fast release and wipes the
            // queue; insertions stay blocked until re-enable.
            enabled_ = false;
            entries_.clear();
            overflows_++;
            return;
        }
        entries_.push_back({});
        entries_.back().instance = instance;
        e = &entries_.back();
    }
    e->minAddr = std::min(e->minAddr, addr);
    e->maxAddr = std::max(e->maxAddr, addr);
    if (design_ == ClqDesign::Ideal)
        e->addrs.push_back(addr);
    occupancy_.sample(static_cast<double>(entries_.size()));
}

bool
Clq::isWarFree(uint64_t addr) const
{
    if (!enabled_)
        return false;
    for (const Entry &e : entries_) {
        if (design_ == ClqDesign::Compact) {
            if (addr >= e.minAddr && addr <= e.maxAddr)
                return false;
        } else {
            if (std::find(e.addrs.begin(), e.addrs.end(), addr) !=
                e.addrs.end())
                return false;
        }
    }
    return true;
}

void
Clq::onRegionVerified(uint64_t instance)
{
    while (!entries_.empty() && entries_.front().instance <= instance)
        entries_.pop_front();
}

void
Clq::onRegionStart(bool all_prior_verified)
{
    if (!enabled_ && all_prior_verified) {
        enabled_ = true;
        entries_.clear();
    }
}

void
Clq::reset()
{
    entries_.clear();
    enabled_ = true;
}

} // namespace turnpike
