#include "sim/detector.hh"

#include "util/logging.hh"

namespace turnpike {

const char *
protectLevelName(ProtectLevel l)
{
    switch (l) {
      case ProtectLevel::None:   return "none";
      case ProtectLevel::Parity: return "parity";
      case ProtectLevel::Secded: return "secded";
      case ProtectLevel::Ldpc:   return "ldpc";
    }
    return "unknown";
}

bool
parseProtectLevel(const std::string &name, ProtectLevel &out)
{
    for (int i = 0; i < kNumProtectLevels; i++) {
        ProtectLevel l = static_cast<ProtectLevel>(i);
        if (name == protectLevelName(l)) {
            out = l;
            return true;
        }
    }
    return false;
}

StrikeEffect
strikeEffect(ProtectLevel l, uint32_t burst)
{
    if (burst == 0)
        return StrikeEffect::Corrected; // nothing flipped
    switch (l) {
      case ProtectLevel::None:
        return StrikeEffect::Silent;
      case ProtectLevel::Parity:
        return (burst & 1) ? StrikeEffect::Detected
                           : StrikeEffect::Silent;
      case ProtectLevel::Secded:
        if (burst <= 1)
            return StrikeEffect::Corrected;
        return burst == 2 ? StrikeEffect::Detected
                          : StrikeEffect::Silent;
      case ProtectLevel::Ldpc:
        if (burst <= 3)
            return StrikeEffect::Corrected;
        return burst == 4 ? StrikeEffect::Detected
                          : StrikeEffect::Silent;
    }
    return StrikeEffect::Silent;
}

// ---------------------------------------------------------------------
// SECDED: extended Hamming(72,64).
// ---------------------------------------------------------------------

namespace {

/** Codeword position (1..71, non-power-of-two) of each data bit. */
struct SecdedGeometry
{
    uint32_t dataPos[64];
    int posToData[72]; ///< inverse; -1 for check positions

    SecdedGeometry()
    {
        for (int p = 0; p < 72; p++)
            posToData[p] = -1;
        uint32_t d = 0;
        for (uint32_t p = 1; p <= 71; p++) {
            if ((p & (p - 1)) == 0)
                continue; // power of two: check-bit position
            dataPos[d] = p;
            posToData[p] = static_cast<int>(d);
            d++;
        }
        TP_ASSERT(d == 64, "Hamming(72,64) geometry is off");
    }
};

const SecdedGeometry &
secdedGeometry()
{
    static const SecdedGeometry g;
    return g;
}

} // namespace

void
SecdedWord::flip(uint32_t k)
{
    TP_ASSERT(k < kSecdedBits, "SECDED flip position %u out of range",
              k);
    if (k < 64)
        data ^= uint64_t(1) << k;
    else
        check = static_cast<uint8_t>(check ^ (1u << (k - 64)));
}

SecdedWord
secdedEncode(uint64_t data)
{
    const SecdedGeometry &g = secdedGeometry();
    SecdedWord w;
    w.data = data;
    uint8_t check = 0;
    for (uint32_t j = 0; j < 7; j++) {
        uint32_t group = 1u << j;
        uint32_t p = 0;
        for (uint32_t d = 0; d < 64; d++)
            if ((g.dataPos[d] & group) && ((data >> d) & 1))
                p ^= 1;
        check = static_cast<uint8_t>(check | (p << j));
    }
    // Overall parity over all 71 Hamming positions; the eighth check
    // bit makes the full 72-bit codeword even-parity.
    uint32_t overall = __builtin_popcountll(data) & 1;
    overall ^= __builtin_popcount(check & 0x7f) & 1;
    check = static_cast<uint8_t>(check | (overall << 7));
    w.check = check;
    return w;
}

DecodeResult
secdedDecode(const SecdedWord &w)
{
    const SecdedGeometry &g = secdedGeometry();
    DecodeResult r;
    r.data = w.data;

    uint32_t syndrome = 0;
    for (uint32_t j = 0; j < 7; j++) {
        uint32_t group = 1u << j;
        uint32_t p = (w.check >> j) & 1;
        for (uint32_t d = 0; d < 64; d++)
            if ((g.dataPos[d] & group) && ((w.data >> d) & 1))
                p ^= 1;
        if (p)
            syndrome |= group;
    }
    uint32_t overall = __builtin_popcountll(w.data) & 1;
    overall ^= __builtin_popcount(w.check) & 1;

    if (syndrome == 0 && overall == 0)
        return r; // Clean

    if (overall == 1) {
        // Odd number of errors: a single error at position
        // `syndrome` (0 = the overall-parity bit itself). Repair it.
        if (syndrome == 0) {
            // overall-parity bit flipped; data untouched
        } else if (syndrome <= 71) {
            int d = g.posToData[syndrome];
            if (d >= 0)
                r.data ^= uint64_t(1) << d;
            // else: a check bit flipped; data untouched
        } else {
            // Syndrome points outside the codeword: >= 3 errors.
            r.status = DecodeStatus::Detected;
            return r;
        }
        r.status = DecodeStatus::Corrected;
        r.corrected = 1;
        return r;
    }

    // Even error count with a nonzero syndrome: the double-error
    // signature. Flagged, never miscorrected.
    r.status = DecodeStatus::Detected;
    return r;
}

// ---------------------------------------------------------------------
// LDPC-style one-step majority-logic code over the 8x8 grid.
// ---------------------------------------------------------------------

namespace {

/** GF(8) multiply, polynomial x^3 + x + 1. */
uint32_t
gfmul8(uint32_t a, uint32_t b)
{
    uint32_t r = 0;
    while (b) {
        if (b & 1)
            r ^= a;
        b >>= 1;
        a <<= 1;
        if (a & 8)
            a ^= 0xb;
    }
    return r & 7;
}

/** The 6 lines (global indices) through each of the 64 data bits. */
struct LdpcGeometry
{
    uint32_t lines[64][kLdpcFamilies];
    uint64_t lineBits[kLdpcParityBits]; ///< data-bit mask per line

    LdpcGeometry()
    {
        for (uint32_t ell = 0; ell < kLdpcParityBits; ell++)
            lineBits[ell] = 0;
        for (uint32_t i = 0; i < 64; i++) {
            uint32_t x = i & 7, y = i >> 3;
            for (uint32_t f = 0; f < kLdpcFamilies; f++) {
                uint32_t c;
                if (f == 0)
                    c = y; // rows
                else if (f == 1)
                    c = x; // columns
                else
                    c = y ^ gfmul8(f - 1, x); // slope f-1 in GF(8)
                uint32_t ell = f * 8 + c;
                lines[i][f] = ell;
                lineBits[ell] |= uint64_t(1) << i;
            }
        }
    }
};

const LdpcGeometry &
ldpcGeometry()
{
    static const LdpcGeometry g;
    return g;
}

uint64_t
ldpcSyndrome(uint64_t data, uint64_t parity)
{
    const LdpcGeometry &g = ldpcGeometry();
    uint64_t synd = 0;
    for (uint32_t ell = 0; ell < kLdpcParityBits; ell++) {
        uint32_t p = __builtin_popcountll(data & g.lineBits[ell]) & 1;
        p ^= (parity >> ell) & 1;
        if (p)
            synd |= uint64_t(1) << ell;
    }
    return synd;
}

} // namespace

void
LdpcWord::flip(uint32_t k)
{
    TP_ASSERT(k < kLdpcBits, "LDPC flip position %u out of range", k);
    if (k < 64)
        data ^= uint64_t(1) << k;
    else
        parity ^= uint64_t(1) << (k - 64);
}

LdpcWord
ldpcEncode(uint64_t data)
{
    const LdpcGeometry &g = ldpcGeometry();
    LdpcWord w;
    w.data = data;
    for (uint32_t ell = 0; ell < kLdpcParityBits; ell++)
        if (__builtin_popcountll(data & g.lineBits[ell]) & 1)
            w.parity |= uint64_t(1) << ell;
    return w;
}

DecodeResult
ldpcDecode(const LdpcWord &w)
{
    const LdpcGeometry &g = ldpcGeometry();
    DecodeResult r;
    r.data = w.data;

    uint64_t synd = ldpcSyndrome(w.data, w.parity);
    if (synd == 0)
        return r; // Clean

    // One-step majority logic: with 6 orthogonal checks per bit and
    // at most 3 errors, an erroneous bit sees >= 4 failing checks
    // and a correct one sees <= 3 (each other error pollutes at most
    // one of its lines). All votes use the *original* syndrome.
    uint32_t dataFlips = 0;
    uint64_t fixed = w.data;
    for (uint32_t i = 0; i < 64; i++) {
        uint32_t fails = 0;
        for (uint32_t f = 0; f < kLdpcFamilies; f++)
            fails += (synd >> g.lines[i][f]) & 1;
        if (fails >= 4) {
            fixed ^= uint64_t(1) << i;
            dataFlips++;
        }
    }

    // Any check still failing against the repaired data can only be
    // a flipped parity bit (attributed, not a data problem).
    uint64_t residual = ldpcSyndrome(fixed, w.parity);
    uint32_t parityFlips =
        static_cast<uint32_t>(__builtin_popcountll(residual));

    // The guarantee covers <= 3 total flips; a decode that would
    // have to claim more corrections than that is outside it and is
    // flagged instead of trusted (a 4-error pattern can alias).
    uint32_t total = dataFlips + parityFlips;
    if (total <= 3) {
        r.data = fixed;
        r.status = DecodeStatus::Corrected;
        r.corrected = total;
    } else {
        r.status = DecodeStatus::Detected;
    }
    return r;
}

// ---------------------------------------------------------------------
// Detector zoo.
// ---------------------------------------------------------------------

const std::vector<DetectorConfig> &
detectorZoo()
{
    static const std::vector<DetectorConfig> zoo = [] {
        std::vector<DetectorConfig> z;

        DetectorConfig d; // the paper's scheme, and the default
        d.label = "acoustic-parity";
        z.push_back(d);

        d = DetectorConfig();
        d.label = "acoustic-only";
        d.reg = ProtectLevel::None;
        z.push_back(d);

        d = DetectorConfig();
        d.label = "secded-reg";
        d.reg = ProtectLevel::Secded;
        z.push_back(d);

        d = DetectorConfig();
        d.label = "secded-full";
        d.reg = ProtectLevel::Secded;
        d.sb = ProtectLevel::Secded;
        d.cache = ProtectLevel::Secded;
        z.push_back(d);

        d = DetectorConfig();
        d.label = "ldpc-full";
        d.reg = ProtectLevel::Ldpc;
        d.sb = ProtectLevel::Ldpc;
        d.cache = ProtectLevel::Ldpc;
        z.push_back(d);

        d = DetectorConfig(); // heterogeneous protection showcase
        d.label = "hetero";
        d.reg = ProtectLevel::Secded;
        d.sb = ProtectLevel::Parity;
        d.cache = ProtectLevel::Ldpc;
        z.push_back(d);

        d = DetectorConfig();
        d.label = "noisy-sensor";
        d.falsePosRate = 0.02;
        d.falseNegRate = 0.05;
        d.filterLatency = 3;
        z.push_back(d);

        d = DetectorConfig(); // multi-bit upsets vs. ECC radii
        d.label = "burst";
        d.reg = ProtectLevel::Secded;
        d.sb = ProtectLevel::Parity;
        d.maxBurst = 4;
        z.push_back(d);

        return z;
    }();
    return zoo;
}

bool
detectorByName(const std::string &name, DetectorConfig &out)
{
    for (const DetectorConfig &d : detectorZoo()) {
        if (d.label == name) {
            out = d;
            return true;
        }
    }
    return false;
}

std::string
detectorZooNames()
{
    std::string names;
    for (const DetectorConfig &d : detectorZoo()) {
        if (!names.empty())
            names += ", ";
        names += d.label;
    }
    return names;
}

bool
applyProtectOverride(DetectorConfig &det, const std::string &spec)
{
    size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 ||
        eq + 1 >= spec.size())
        return false;
    std::string target = spec.substr(0, eq);
    ProtectLevel level;
    if (!parseProtectLevel(spec.substr(eq + 1), level))
        return false;
    if (target == "reg")
        det.reg = level;
    else if (target == "sb")
        det.sb = level;
    else if (target == "cache")
        det.cache = level;
    else
        return false;
    det.label += "+" + spec;
    return true;
}

} // namespace turnpike
