#include "sim/recovery.hh"

#include <vector>

#include "machine/minterp.hh"
#include "util/logging.hh"

namespace turnpike {

uint64_t
executeRecovery(const RecoveryProgram &prog, const ColorMaps &colors,
                const MemoryImage &mem, int64_t regs[kNumPhysRegs])
{
    std::vector<int64_t> temps;
    auto temp_at = [&](int t) -> int64_t & {
        if (static_cast<size_t>(t) >= temps.size())
            temps.resize(static_cast<size_t>(t) + 1, 0);
        return temps[static_cast<size_t>(t)];
    };

    uint64_t cost = 0;
    for (size_t i = 0; i < prog.size(); i++) {
        const RecoveryOp &op = prog[i];
        cost++;
        switch (op.kind) {
          case RecoveryOp::Kind::LoadCkpt: {
            int slot = colors.verifiedSlot(op.reg);
            temp_at(op.t) = mem.read(layout::ckptSlot(op.reg, slot));
            cost += 2; // L1 hit for the checkpoint load
            break;
          }
          case RecoveryOp::Kind::Li:
            temp_at(op.t) = op.imm;
            break;
          case RecoveryOp::Kind::Bin: {
            int64_t a = temp_at(op.a);
            int64_t b = op.bImm ? op.imm : temp_at(op.b);
            temp_at(op.t) = evalAlu(op.op, a, b);
            break;
          }
          case RecoveryOp::Kind::BrIfZero:
            if (temp_at(op.a) == 0)
                i += static_cast<size_t>(op.skip);
            break;
          case RecoveryOp::Kind::CommitReg:
            TP_ASSERT(op.reg < kNumPhysRegs, "recovery: bad register");
            regs[op.reg] = temp_at(op.t);
            break;
        }
    }
    return cost;
}

} // namespace turnpike
