#include "sim/store_buffer.hh"

#include "util/logging.hh"

namespace turnpike {

void
StoreBuffer::push(const SbEntry &e)
{
    TP_ASSERT(!full(), "store buffer overflow");
    entries_.push_back(e);
}

SbEntry
StoreBuffer::pop()
{
    TP_ASSERT(headReleasable(), "pop of unreleasable SB head");
    SbEntry e = entries_.front();
    entries_.pop_front();
    return e;
}

void
StoreBuffer::release(uint64_t instance)
{
    for (SbEntry &e : entries_)
        if (e.regionInstance == instance)
            e.releasable = true;
}

const SbEntry *
StoreBuffer::youngestFor(uint64_t addr) const
{
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
        if (it->addr == addr)
            return &*it;
    return nullptr;
}

} // namespace turnpike
