/**
 * @file
 * Cycle-level dual-issue in-order pipeline (ARM Cortex-A53-like)
 * with the Turnstile/Turnpike resilience machinery: gated store
 * buffer, region boundary buffer, committed load queue, hardware
 * coloring, acoustic detection and region-level recovery.
 *
 * Execution is timing-directed but functionally exact: results are
 * computed at issue, a scoreboard models operand readiness (full
 * forwarding, load-use and long-op delays), and structural hazards
 * (store-buffer-full, one memory port, RBB capacity) stall the
 * in-order front end — the phenomena the paper measures.
 */

#ifndef TURNPIKE_SIM_PIPELINE_HH_
#define TURNPIKE_SIM_PIPELINE_HH_

#include <cstdint>
#include <vector>

#include "ir/interpreter.hh"
#include "machine/mfunction.hh"
#include "sim/cache.hh"
#include "sim/clq.hh"
#include "sim/color_maps.hh"
#include "sim/detector.hh"
#include "sim/fault_injector.hh"
#include "sim/rbb.hh"
#include "sim/store_buffer.hh"
#include "sim/trace.hh"
#include "util/sorted_ring.hh"
#include "util/stats.hh"

namespace turnpike {

/**
 * One committed instruction as seen by the record/replay machinery:
 * where it committed (pc, opcode, static region, cycle) and its
 * architectural effect (@p a / @p b are opcode-specific: dst register
 * and value written for register-writing ops, word address and value
 * for stores, checkpointed register and value for Ckpt, redirect
 * target for control flow). Two runs whose records match index for
 * index executed the same architectural history.
 */
struct CommitRecord
{
    uint64_t index = 0;  ///< position in the committed stream, from 0
    uint64_t cycle = 0;  ///< commit cycle
    uint64_t a = 0;      ///< architectural effect, opcode-specific
    uint64_t b = 0;      ///< architectural effect, opcode-specific
    uint32_t pc = kNoTracePc;
    uint32_t region = 0; ///< static region executing at commit
    uint16_t opcode = kNoTraceOp;
};

/**
 * Commit-stream capture for deterministic replay and divergence
 * bisection (core/rootcause.hh). Attached through PipelineConfig; the
 * pipeline then folds every committed instruction (up to @p limit)
 * into a running FNV-1a hash, keeps full CommitRecords for the
 * index window [windowLo, windowHi), and stops the simulation once
 * @p limit commits were seen — so a prefix probe never runs (or
 * stores) more than it needs. Comparing (hash, committed) of two
 * captures with the same limit compares the two architectural
 * commit-stream prefixes without either trace ever being held in
 * memory.
 */
struct CommitCapture
{
    /** Stop the run after this many commits (~0 = run to the end). */
    uint64_t limit = ~0ull;
    /** Record full CommitRecords for indices in [windowLo, windowHi). */
    uint64_t windowLo = 0;
    uint64_t windowHi = 0;

    uint64_t committed = 0;             ///< commits seen (<= limit)
    uint64_t hash = 1469598103934665603ull; ///< FNV-1a over records
    std::vector<CommitRecord> window;   ///< records in the window

    /** True once the capture saw everything it was asked for. */
    bool done() const { return committed >= limit; }

    /** Fold one committed instruction in (called by the pipeline). */
    void commit(uint64_t cycle, uint32_t pc, uint16_t opcode,
                uint32_t region, uint64_t a, uint64_t b);
};

/** Pipeline and resilience-scheme configuration. */
struct PipelineConfig
{
    // -- resilience scheme ------------------------------------------
    /** Gate stores for region verification (off = no resilience). */
    bool resilience = true;
    /** Fast release of WAR-free regular stores through the CLQ. */
    bool warFreeRelease = false;
    /** Fast release of checkpoint stores through hardware coloring. */
    bool hwColoring = false;
    /**
     * Unsafe mode for the Fig. 16 negative test: release checkpoint
     * stores immediately WITHOUT coloring. Breaks recovery; only for
     * demonstrating why coloring is necessary.
     */
    bool naiveCkptRelease = false;
    ClqDesign clqDesign = ClqDesign::Compact;
    uint32_t clqEntries = 2;
    uint32_t sbSize = 4;
    uint32_t wcdl = 10;
    uint32_t rbbEntries = 64;
    /**
     * Checkpoint colors per register, 1..layout::kNumColors; 0
     * selects the full pool. Smaller pools shrink the color maps
     * (hwcost) at the price of more colorExhausted quarantines —
     * one of the explorer's sweep axes.
     */
    uint32_t colorPool = 0;

    // -- error protection (sim/detector.hh) ---------------------------
    /** Register-file protection (the paper's default: parity). */
    ProtectLevel regProtect = ProtectLevel::Parity;
    /** Store-buffer data protection (paper: assumed hardened). */
    ProtectLevel sbProtect = ProtectLevel::None;
    /** Cache-data protection (paper's study: ECC-less). */
    ProtectLevel cacheProtect = ProtectLevel::None;

    // -- core ---------------------------------------------------------
    int issueWidth = 2;
    int branchMispredictPenalty = 6;
    CacheConfig l1d{64 * 1024, 2, 64, 2};
    CacheConfig l2{128 * 1024, 16, 64, 20};
    int memLatency = 100;
    uint64_t maxCycles = 2000000000ull;

    // -- observability ------------------------------------------------
    /**
     * Interval time-series sampling period: every N cycles (or every
     * N region commits with intervalPerRegion) one IntervalSample is
     * appended to PipelineStats::intervals. 0 disables sampling (the
     * default; benches and campaigns run with it off, so the hot
     * loop pays one always-false compare).
     */
    uint64_t statsInterval = 0;
    /** Sample every statsInterval region commits instead of cycles. */
    bool intervalPerRegion = false;

    /** Optional event tracer (not owned); null disables tracing. */
    Tracer *tracer = nullptr;
    /**
     * Optional commit-stream capture (not owned); null disables it.
     * When attached, run() returns early (halted = false) as soon as
     * capture->done() — callers doing prefix probes must therefore
     * tolerate non-halting results.
     */
    CommitCapture *capture = nullptr;
};

/**
 * One interval time-series sample: cumulative counters plus
 * instantaneous structure occupancies at the sampled cycle. Consumers
 * difference neighbouring samples for per-interval rates.
 */
struct IntervalSample
{
    uint64_t cycle = 0;
    uint64_t insts = 0;               ///< cumulative
    uint64_t sbFullStallCycles = 0;   ///< cumulative
    uint64_t dataHazardStallCycles = 0; ///< cumulative
    uint64_t rbbFullStallCycles = 0;  ///< cumulative
    uint64_t boundaries = 0;          ///< cumulative
    uint32_t sbOcc = 0;               ///< instantaneous SB entries
    uint32_t rbbOcc = 0;              ///< instantaneous RBB entries
    uint32_t clqOcc = 0;              ///< instantaneous CLQ entries
};

/** Counters and distributions of one simulation. */
struct PipelineStats
{
    uint64_t cycles = 0;
    /**
     * Committed instructions, the final Halt included; Boundary
     * markers are zero-width and never counted. Matches
     * InterpStats::insts exactly (pinned by
     * Pipeline.InstCountIncludesHaltExcludesBoundaries).
     */
    uint64_t insts = 0;
    uint64_t loads = 0;
    uint64_t storesApp = 0;
    uint64_t storesSpill = 0;
    uint64_t storesCkpt = 0;
    uint64_t storesQuarantined = 0; ///< went through SB gating
    uint64_t storesWarFree = 0;     ///< regular stores fast-released
    uint64_t ckptColored = 0;       ///< checkpoints fast-released
    uint64_t sbFullStallCycles = 0;
    uint64_t dataHazardStallCycles = 0;
    uint64_t rbbFullStallCycles = 0;
    uint64_t branchMispredicts = 0;
    uint64_t boundaries = 0;
    uint64_t clqOverflows = 0;
    /** Checkpoints quarantined because the color pool was empty. */
    uint64_t colorExhausted = 0;
    Distribution clqOccupancy;
    Distribution sbOccupancy;
    /** RBB entries in flight, sampled at each boundary commit. */
    Distribution rbbOccupancy;
    Distribution regionCycles;
    /** Log2 histogram of the same region-length samples. */
    Histogram regionCyclesHist;
    uint64_t detectedFaults = 0;
    uint64_t recoveries = 0;
    uint64_t recoveryCycles = 0;
    /** Strikes repaired in place by a structure's ECC (no corruption). */
    uint64_t eccCorrected = 0;
    /** Strikes flagged (but not repaired) by a structure's code. */
    uint64_t eccDetected = 0;
    /** Spurious sensor detections (false alarms; recovery still fires). */
    uint64_t falseAlarms = 0;
    // Cache hit/miss totals, copied out of the hierarchy at the end
    // of run() (the caches keep their own counters on the hot path).
    uint64_t l1dHits = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    /** Interval time series; empty unless statsInterval > 0. */
    std::vector<IntervalSample> intervals;

    uint64_t storesTotal() const
    {
        return storesApp + storesSpill + storesCkpt;
    }
};

/** Outcome of a simulation. */
struct PipelineResult
{
    bool halted = false;
    PipelineStats stats;
    MemoryImage memory;
    /**
     * FNV-1a hash of the final architectural register file. Together
     * with the memory image this is the architectural state the AVF
     * campaign compares against the golden run: a fault that leaves
     * both intact is masked.
     */
    uint64_t archHash = 0;
};

/** The simulator. One instance runs one program once. */
class InOrderPipeline
{
  public:
    InOrderPipeline(const Module &mod, const MachineFunction &mf,
                    const PipelineConfig &cfg);

    /**
     * Run to Halt (or maxCycles), optionally injecting the given
     * fault plan. Returns final stats and the memory image (moved
     * out of the pipeline — run() is single-shot).
     */
    PipelineResult run(const std::vector<FaultEvent> &faults = {});

  private:
    /**
     * Why issueCycle() made no progress, recorded so run() can
     * fast-forward over provably quiescent cycles. Fetch and
     * DataHazard stalls clear at a known cycle (stall_until_);
     * SbFull/RbbFull clear only through a verification event.
     */
    enum class StallKind : uint8_t {
        None,       ///< issued, redirected, halted or recovered
        Fetch,      ///< branch/recovery fetch stall (no stats)
        DataHazard, ///< operand not ready until stall_until_
        SbFull,     ///< store buffer full, head not releasable
        RbbFull,    ///< RBB full at a boundary
    };

    // One attempt to issue instructions this cycle.
    void issueCycle();
    /**
     * First cycle > cycle_ at which anything observable can happen:
     * a fault injection, an acoustic detection, a region
     * verification, an SB drain, or issue progress. Every cycle in
     * (cycle_, horizon) is a byte-identical replay of this one's
     * stall bookkeeping, so run() jumps over them.
     */
    uint64_t quiesceHorizon(const std::vector<FaultEvent> &faults,
                            size_t fault_idx) const;
    /** Book the per-cycle stats of @p n skipped quiescent cycles. */
    void bookSkippedCycles(uint64_t n);
    /** Append one interval sample at the current cycle. */
    void recordIntervalSample();
    // Commit helpers; return false when the pipeline must stall.
    bool commitStore(const MInstr &mi);
    bool commitCkpt(const MInstr &mi);
    bool commitBoundary(const MInstr &mi);
    void drainStoreBuffer();
    void processVerification();
    /**
     * Record the architectural effect of the instruction just
     * committed at @p pc into cfg_.capture. Callers must already
     * have tested cfg_.capture (same contract as the tracer sites).
     */
    void captureCommit(const MInstr &mi, uint32_t pc);
    void applyFault(const FaultEvent &ev);
    void doRecovery();
    bool parityTriggered(const MInstr &mi);

    const Module &mod_;
    const MachineFunction &mf_;
    PipelineConfig cfg_;

    // Architectural + microarchitectural state.
    MemoryImage memory_;
    int64_t regs_[kNumPhysRegs] = {0};
    uint64_t reg_ready_[kNumPhysRegs] = {0};
    bool reg_parity_bad_[kNumPhysRegs] = {false};
    uint32_t pc_ = 0;
    uint64_t cycle_ = 0;
    uint64_t fetch_stall_until_ = 0;
    bool halted_ = false;
    /**
     * Conservatively true while any reg_parity_bad_ flag might be
     * set; lets the fault-free issue path (every instruction) skip
     * the per-operand parity probe. Recomputed after each recovery.
     */
    bool any_parity_bad_ = false;
    /**
     * Static region currently executing. Needed when recovery hits
     * while the RBB is empty (e.g. a second detection lands between
     * a squash and the re-execution of the restart boundary): the
     * restart must target this region, never region 0 — re-running
     * verified history would repeat non-idempotent stores.
     */
    uint32_t cur_static_region_ = 0;

    StoreBuffer sb_;
    Rbb rbb_;
    Clq clq_;
    ColorMaps colors_;
    CacheHierarchy caches_;

    // Regions whose loads went unrecorded (CLQ disabled), keyed by
    // instance id; blocks CLQ re-enable until all are verified.
    SmallSortedSet unrecorded_instances_;

    // Pending acoustic detections (absolute cycles, ascending).
    SortedEventRing pending_detect_;

    // Fast-forward state: what stalled issue this cycle and (for
    // Fetch/DataHazard) until when. TURNPIKE_NO_FASTFORWARD=1 pins
    // the cycle-by-cycle loop for equivalence testing.
    StallKind stall_kind_ = StallKind::None;
    uint64_t stall_until_ = 0;
    bool fastforward_ = true;
    // TURNPIKE_DEBUG_RECOVERY, read once at construction (getenv on
    // every recovery is not thread-safe under campaign workers).
    bool debug_recovery_ = false;

    PipelineStats stats_;
};

} // namespace turnpike

#endif // TURNPIKE_SIM_PIPELINE_HH_
