/**
 * @file
 * Fault injection: schedules single-event upsets (bit flips) in the
 * pipeline's vulnerable state, with an acoustic detection delay
 * bounded by the WCDL — or, for the vulnerability campaigns, an
 * explicit sensor-miss mode in which the strike is never detected
 * and must be caught (or not) by the scheme's own machinery. Used by
 * the resilience property tests, the fault-injection example and the
 * Monte Carlo AVF campaign engine (core/avf.hh).
 */

#ifndef TURNPIKE_SIM_FAULT_INJECTOR_HH_
#define TURNPIKE_SIM_FAULT_INJECTOR_HH_

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace turnpike {

/**
 * Where a fault strikes. The first two are the classic recovery-
 * property targets; the rest cover the remaining vulnerable state of
 * the paper's microarchitecture for the AVF campaign.
 */
enum class FaultTarget : uint8_t {
    Register,  ///< architectural register bit (parity-protected)
    SbEntry,   ///< data bits of an unverified store-buffer entry
    Pc,        ///< program counter latch
    Latch,     ///< pipeline latch (a register value in flight, no parity)
    RbbEntry,  ///< RBB metadata: verification deadline / restart region
    ClqEntry,  ///< CLQ address-range bits (WAR-free check input)
    ColorMap,  ///< verified-color map entry (recovery slot selector)
    CacheData, ///< data word of a dirty cache line (ECC assumed absent)
};

/** Number of FaultTarget enumerators (for per-target tables). */
constexpr int kNumFaultTargets = 8;

/** Stable lower-case name of @p t ("register", "sb-entry", ...). */
const char *faultTargetName(FaultTarget t);

/** All targets, in enumerator order (campaign default). */
const std::vector<FaultTarget> &allFaultTargets();

/** One scheduled single-event upset. */
struct FaultEvent
{
    uint64_t cycle = 0;       ///< injection cycle
    FaultTarget target = FaultTarget::Register;
    uint32_t index = 0;       ///< structure-entry selector (modded per target)
    uint32_t bit = 0;         ///< bit to flip (0..63)
    uint32_t detectDelay = 1; ///< sensor latency, in (0, WCDL] + filter
    /**
     * False models a sensor miss: the strike still corrupts state
     * but no acoustic detection is ever delivered, so only parity
     * (registers) or nothing at all stands between the fault and
     * the architectural results.
     */
    bool detected = true;
    /**
     * Adjacent bits flipped starting at @p bit (wrapping mod 64).
     * 1 is the classic single-event upset; wider bursts exercise
     * the ECC correction/detection radii (sim/detector.hh).
     */
    uint32_t burst = 1;
    /**
     * A sensor false positive: nothing is struck at all, but the
     * detection (and the recovery it triggers) still fires. The AVF
     * engine classifies such trials FalsePos, never Recovered.
     */
    bool spurious = false;
};

/**
 * Noisy-sensor and multi-bit-upset knobs for makeTrialFault,
 * normally derived from a DetectorConfig (sim/detector.hh). The
 * default value adds no draws to the trial RNG stream, so legacy
 * campaigns stay byte-identical.
 */
struct TrialNoise
{
    double falseNegRate = 0.0;  ///< extra miss probability (sensor noise)
    double falsePosRate = 0.0;  ///< spurious-detection probability
    uint32_t filterLatency = 0; ///< extra detection delay (median filter)
    uint32_t maxBurst = 1;      ///< maximum adjacent bits per strike

    bool isDefault() const
    {
        return falseNegRate == 0.0 && falsePosRate == 0.0 &&
            filterLatency == 0 && maxBurst <= 1;
    }
};

/**
 * Generate up to @p count fault events uniformly over (0, horizon)
 * cycles with detection delays in [1, wcdl]. Events are sorted by
 * cycle and spaced at least 4 * wcdl apart so recoveries do not
 * overlap; an event that cannot satisfy both the spacing and the
 * horizon is dropped, so every returned cycle is < horizon (the
 * result may hold fewer than @p count events when the horizon is
 * crowded). A horizon <= 1 or count == 0 yields an empty plan.
 */
std::vector<FaultEvent> makeFaultPlan(Rng &rng, uint64_t horizon,
                                      uint32_t wcdl, uint32_t count);

/**
 * The single upset of Monte Carlo trial @p trial of a campaign
 * seeded with @p seed: strike cycle uniform over (0, horizon),
 * target uniform over @p targets, random entry/bit, detection delay
 * in [1, wcdl] plus noise.filterLatency, and detected = false with
 * the combined miss probability 1 - (1-sensor_miss_rate) *
 * (1-noise.falseNegRate). With noise.maxBurst > 1 the strike flips
 * a uniform 1..maxBurst adjacent bits; with probability
 * noise.falsePosRate the trial is a spurious detection instead (no
 * corruption, recovery fires anyway). Deterministic in (seed,
 * trial) alone, so a campaign's trial set is identical at any
 * worker count — and the default TrialNoise draws nothing extra, so
 * legacy (pre-detector-zoo) campaigns replay byte-for-byte.
 */
FaultEvent makeTrialFault(uint64_t seed, uint32_t trial,
                          uint64_t horizon, uint32_t wcdl,
                          const std::vector<FaultTarget> &targets,
                          double sensor_miss_rate,
                          const TrialNoise &noise = {});

} // namespace turnpike

#endif // TURNPIKE_SIM_FAULT_INJECTOR_HH_
