/**
 * @file
 * Fault injection: schedules single-event upsets (bit flips) in the
 * pipeline's vulnerable state, with an acoustic detection delay
 * bounded by the WCDL — or, for the vulnerability campaigns, an
 * explicit sensor-miss mode in which the strike is never detected
 * and must be caught (or not) by the scheme's own machinery. Used by
 * the resilience property tests, the fault-injection example and the
 * Monte Carlo AVF campaign engine (core/avf.hh).
 */

#ifndef TURNPIKE_SIM_FAULT_INJECTOR_HH_
#define TURNPIKE_SIM_FAULT_INJECTOR_HH_

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace turnpike {

/**
 * Where a fault strikes. The first two are the classic recovery-
 * property targets; the rest cover the remaining vulnerable state of
 * the paper's microarchitecture for the AVF campaign.
 */
enum class FaultTarget : uint8_t {
    Register,  ///< architectural register bit (parity-protected)
    SbEntry,   ///< data bits of an unverified store-buffer entry
    Pc,        ///< program counter latch
    Latch,     ///< pipeline latch (a register value in flight, no parity)
    RbbEntry,  ///< RBB metadata: verification deadline / restart region
    ClqEntry,  ///< CLQ address-range bits (WAR-free check input)
    ColorMap,  ///< verified-color map entry (recovery slot selector)
    CacheData, ///< data word of a dirty cache line (ECC assumed absent)
};

/** Number of FaultTarget enumerators (for per-target tables). */
constexpr int kNumFaultTargets = 8;

/** Stable lower-case name of @p t ("register", "sb-entry", ...). */
const char *faultTargetName(FaultTarget t);

/** All targets, in enumerator order (campaign default). */
const std::vector<FaultTarget> &allFaultTargets();

/** One scheduled single-event upset. */
struct FaultEvent
{
    uint64_t cycle = 0;       ///< injection cycle
    FaultTarget target = FaultTarget::Register;
    uint32_t index = 0;       ///< structure-entry selector (modded per target)
    uint32_t bit = 0;         ///< bit to flip (0..63)
    uint32_t detectDelay = 1; ///< sensor latency, in (0, WCDL]
    /**
     * False models a sensor miss: the strike still corrupts state
     * but no acoustic detection is ever delivered, so only parity
     * (registers) or nothing at all stands between the fault and
     * the architectural results.
     */
    bool detected = true;
};

/**
 * Generate up to @p count fault events uniformly over (0, horizon)
 * cycles with detection delays in [1, wcdl]. Events are sorted by
 * cycle and spaced at least 4 * wcdl apart so recoveries do not
 * overlap; an event that cannot satisfy both the spacing and the
 * horizon is dropped, so every returned cycle is < horizon (the
 * result may hold fewer than @p count events when the horizon is
 * crowded). A horizon <= 1 or count == 0 yields an empty plan.
 */
std::vector<FaultEvent> makeFaultPlan(Rng &rng, uint64_t horizon,
                                      uint32_t wcdl, uint32_t count);

/**
 * The single upset of Monte Carlo trial @p trial of a campaign
 * seeded with @p seed: strike cycle uniform over (0, horizon),
 * target uniform over @p targets, random entry/bit, detection delay
 * in [1, wcdl], and detected = false with probability
 * @p sensor_miss_rate. Deterministic in (seed, trial) alone, so a
 * campaign's trial set is identical at any worker count.
 */
FaultEvent makeTrialFault(uint64_t seed, uint32_t trial,
                          uint64_t horizon, uint32_t wcdl,
                          const std::vector<FaultTarget> &targets,
                          double sensor_miss_rate);

} // namespace turnpike

#endif // TURNPIKE_SIM_FAULT_INJECTOR_HH_
