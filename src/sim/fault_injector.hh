/**
 * @file
 * Fault injection: schedules single-event upsets (bit flips) in
 * architectural registers or store-buffer entries, with an acoustic
 * detection delay bounded by the WCDL. Used by the resilience
 * property tests and the fault-injection example.
 */

#ifndef TURNPIKE_SIM_FAULT_INJECTOR_HH_
#define TURNPIKE_SIM_FAULT_INJECTOR_HH_

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace turnpike {

/** Where a fault strikes. */
enum class FaultTarget : uint8_t {
    Register, ///< architectural register bit
    SbEntry,  ///< data bits of a store-buffer entry
};

/** One scheduled single-event upset. */
struct FaultEvent
{
    uint64_t cycle = 0;       ///< injection cycle
    FaultTarget target = FaultTarget::Register;
    uint32_t index = 0;       ///< register id / SB entry position
    uint32_t bit = 0;         ///< bit to flip (0..63)
    uint32_t detectDelay = 1; ///< sensor latency, in (0, WCDL]
};

/**
 * Generate @p count fault events uniformly over (0, horizon) cycles
 * with detection delays in [1, wcdl]. Events are sorted by cycle
 * and spaced at least 4 * wcdl apart so recoveries do not overlap.
 */
std::vector<FaultEvent> makeFaultPlan(Rng &rng, uint64_t horizon,
                                      uint32_t wcdl, uint32_t count);

} // namespace turnpike

#endif // TURNPIKE_SIM_FAULT_INJECTOR_HH_
