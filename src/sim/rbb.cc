#include "sim/rbb.hh"

#include "util/logging.hh"

namespace turnpike {

uint64_t
Rbb::beginRegion(uint32_t static_region, uint64_t cycle, uint32_t wcdl)
{
    TP_ASSERT(!full(), "RBB overflow");
    if (!instances_.empty() && !instances_.back().ended) {
        RegionInstance &cur = instances_.back();
        cur.ended = true;
        cur.endCycle = cycle;
        cur.verifyCycle = cycle + wcdl;
    }
    RegionInstance ri;
    ri.id = next_id_++;
    ri.staticRegion = static_region;
    ri.startCycle = cycle;
    instances_.push_back(ri);
    return ri.id;
}

std::deque<RegionInstance>
Rbb::squash()
{
    std::deque<RegionInstance> out;
    out.swap(instances_);
    return out;
}

void
Rbb::endCurrent(uint64_t cycle, uint32_t wcdl)
{
    if (instances_.empty() || instances_.back().ended)
        return;
    RegionInstance &cur = instances_.back();
    cur.ended = true;
    cur.endCycle = cycle;
    cur.verifyCycle = cycle + wcdl;
}

} // namespace turnpike
