#include "sim/rbb.hh"

#include "util/logging.hh"

namespace turnpike {

RegionInstance &
Rbb::current()
{
    TP_ASSERT(!instances_.empty(), "RBB has no running instance");
    return instances_.back();
}

const RegionInstance &
Rbb::current() const
{
    TP_ASSERT(!instances_.empty(), "RBB has no running instance");
    return instances_.back();
}

const RegionInstance &
Rbb::oldest() const
{
    TP_ASSERT(!instances_.empty(), "RBB empty");
    return instances_.front();
}

uint64_t
Rbb::beginRegion(uint32_t static_region, uint64_t cycle, uint32_t wcdl)
{
    TP_ASSERT(!full(), "RBB overflow");
    if (!instances_.empty() && !instances_.back().ended) {
        RegionInstance &cur = instances_.back();
        cur.ended = true;
        cur.endCycle = cycle;
        cur.verifyCycle = cycle + wcdl;
    }
    RegionInstance ri;
    ri.id = next_id_++;
    ri.staticRegion = static_region;
    ri.startCycle = cycle;
    instances_.push_back(ri);
    return ri.id;
}

bool
Rbb::popVerified(uint64_t cycle, RegionInstance &out)
{
    if (instances_.empty())
        return false;
    const RegionInstance &head = instances_.front();
    if (!head.ended || head.verifyCycle > cycle)
        return false;
    out = head;
    instances_.pop_front();
    return true;
}

std::deque<RegionInstance>
Rbb::squash()
{
    std::deque<RegionInstance> out;
    out.swap(instances_);
    return out;
}

void
Rbb::endCurrent(uint64_t cycle, uint32_t wcdl)
{
    if (instances_.empty() || instances_.back().ended)
        return;
    RegionInstance &cur = instances_.back();
    cur.ended = true;
    cur.endCycle = cycle;
    cur.verifyCycle = cycle + wcdl;
}

} // namespace turnpike
