/**
 * @file
 * Pluggable detector / error-protection model zoo. The paper's
 * scheme is one point in the detection design space: acoustic
 * sensors (WCDL-bounded) plus register parity. This layer
 * generalizes it to heterogeneous per-structure protection levels —
 * none, parity, SECDED (extended Hamming(72,64)) or an LDPC-style
 * one-step majority-logic code — and to a *noisy* sensor array with
 * false-positive / false-negative rates and a median-filter latency.
 *
 * Two views of each code are provided:
 *
 *  - a real codec (encode / flip bits / decode) whose correction and
 *    detection guarantees are pinned by property tests
 *    (tests/detector_test.cc), and
 *  - a closed-form strikeEffect(level, burst) the pipeline consults
 *    when a fault lands on a protected structure, consistent with
 *    the codec guarantees: what an N-bit burst does to a word
 *    protected at that level.
 *
 * Scheme selection threads through core/config (ResilienceConfig::
 * detector), the AVF engine, replay and the CLI (--detector NAME,
 * --protect STRUCT=LEVEL).
 */

#ifndef TURNPIKE_SIM_DETECTOR_HH_
#define TURNPIKE_SIM_DETECTOR_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace turnpike {

/** Per-structure protection level. */
enum class ProtectLevel : uint8_t {
    None,   ///< unprotected: any strike corrupts silently
    Parity, ///< one parity bit: detects odd bursts, corrects nothing
    Secded, ///< extended Hamming(72,64): corrects 1, detects 2
    Ldpc,   ///< one-step majority-logic LDPC: corrects 3, detects 4
};

/** Number of ProtectLevel enumerators. */
constexpr int kNumProtectLevels = 4;

/** Stable lower-case name ("none", "parity", "secded", "ldpc"). */
const char *protectLevelName(ProtectLevel l);

/** Parse a protection-level name; false on unknown input. */
bool parseProtectLevel(const std::string &name, ProtectLevel &out);

/** What a burst strike does to a word at a protection level. */
enum class StrikeEffect : uint8_t {
    Silent,    ///< corrupts undetected (the code is blind or overrun)
    Corrected, ///< the code repairs it in place: no corruption at all
    Detected,  ///< corrupts, but the code flags it (recovery fires)
};

/**
 * Closed-form outcome of an adjacent @p burst-bit strike on a word
 * protected at @p l, consistent with the codec guarantees below:
 * None is always Silent; Parity detects odd bursts; SECDED corrects
 * 1 and detects 2; LDPC corrects up to 3 and detects 4. Beyond each
 * code's detection radius the strike is conservatively Silent (an
 * aliased syndrome may miscorrect).
 */
StrikeEffect strikeEffect(ProtectLevel l, uint32_t burst);

// ---------------------------------------------------------------------
// SECDED codec: extended Hamming(72,64). 64 data bits, 7 Hamming
// check bits and one overall-parity bit. Single-bit errors anywhere
// in the 72-bit codeword are corrected; double-bit errors are
// detected (never miscorrected).
// ---------------------------------------------------------------------

/** A SECDED codeword: 64 data bits + 8 check bits. */
struct SecdedWord
{
    uint64_t data = 0;
    uint8_t check = 0; ///< bits 0..6: Hamming checks; bit 7: overall

    /** Flip codeword bit @p k: k in [0,64) data, [64,72) check. */
    void flip(uint32_t k);
};

/** Total codeword bits (for property-test flip positions). */
constexpr uint32_t kSecdedBits = 72;

/** Decoder verdict. */
enum class DecodeStatus : uint8_t {
    Clean,     ///< syndrome zero: nothing happened
    Corrected, ///< error(s) repaired; data is trustworthy
    Detected,  ///< uncorrectable but flagged; data must not be used
};

/** Decoder output: possibly-repaired data plus the verdict. */
struct DecodeResult
{
    uint64_t data = 0;
    DecodeStatus status = DecodeStatus::Clean;
    uint32_t corrected = 0; ///< bits the decoder repaired
};

SecdedWord secdedEncode(uint64_t data);
DecodeResult secdedDecode(const SecdedWord &w);

// ---------------------------------------------------------------------
// LDPC-style codec: a one-step majority-logic decodable code over
// the 8x8 bit grid of a 64-bit word (positions (x, y) in GF(8)^2).
// Six orthogonal line families — rows, columns and four GF(8)
// slopes — give every data bit 6 parity checks such that any two
// data bits share at most one check (affine-plane geometry). With
// J = 6 orthogonal checks the code corrects floor(J/2) = 3 errors by
// one-step majority logic and detects 4. 48 parity bits total: the
// ROADMAP exemplar's pitch — triple-error correction at a SECDED-
// class parity budget per protected block.
// ---------------------------------------------------------------------

/** Line families (rows, columns, slopes 1..4 in GF(8)). */
constexpr uint32_t kLdpcFamilies = 6;
/** Parity bits: kLdpcFamilies * 8 lines. */
constexpr uint32_t kLdpcParityBits = kLdpcFamilies * 8;
/** Total codeword bits (for property-test flip positions). */
constexpr uint32_t kLdpcBits = 64 + kLdpcParityBits;

/** An LDPC codeword: 64 data bits + 48 line-parity bits. */
struct LdpcWord
{
    uint64_t data = 0;
    uint64_t parity = 0; ///< low kLdpcParityBits bits used

    /** Flip codeword bit @p k: k in [0,64) data, [64,112) parity. */
    void flip(uint32_t k);
};

LdpcWord ldpcEncode(uint64_t data);
DecodeResult ldpcDecode(const LdpcWord &w);

// ---------------------------------------------------------------------
// Detector configuration: which structures are protected at which
// level, plus the noisy-sensor model.
// ---------------------------------------------------------------------

/** One full detection scheme (per-structure levels + sensor noise). */
struct DetectorConfig
{
    std::string label = "acoustic-parity";

    // -- heterogeneous per-structure protection ----------------------
    /** Register file (the paper's default: parity). */
    ProtectLevel reg = ProtectLevel::Parity;
    /** Store-buffer data bits (the paper assumes hardened: none). */
    ProtectLevel sb = ProtectLevel::None;
    /** L1D data (the paper's study assumes ECC-less: none). */
    ProtectLevel cache = ProtectLevel::None;

    // -- noisy acoustic sensors --------------------------------------
    /**
     * Per-trial probability of a spurious detection: the sensor
     * array "hears" a strike that never happened and recovery fires
     * for nothing (the false-positive outcome class).
     */
    double falsePosRate = 0.0;
    /**
     * Additional per-strike miss probability from sensor noise,
     * composed with the campaign's sensorMissRate as independent
     * misses: 1 - (1-miss)(1-falseNeg).
     */
    double falseNegRate = 0.0;
    /**
     * Median-filter latency: extra cycles the (noise-filtered)
     * detection takes beyond the acoustic WCDL draw.
     */
    uint32_t filterLatency = 0;
    /**
     * Maximum adjacent-bit burst width a strike can flip (>= 1).
     * 1 reproduces the single-bit-upset model of PR 4 exactly.
     */
    uint32_t maxBurst = 1;

    /**
     * True when this detector reproduces the pre-zoo model exactly
     * (parity on registers, nothing else, noiseless sensors): the
     * campaign RNG stream and every outcome are then byte-identical
     * to the legacy engine.
     */
    bool isLegacy() const
    {
        return reg == ProtectLevel::Parity &&
            sb == ProtectLevel::None &&
            cache == ProtectLevel::None && falsePosRate == 0.0 &&
            falseNegRate == 0.0 && filterLatency == 0 &&
            maxBurst <= 1;
    }
};

/** The built-in model zoo (stable order; labels are the names). */
const std::vector<DetectorConfig> &detectorZoo();

/** Look up a zoo detector by name; false on unknown. */
bool detectorByName(const std::string &name, DetectorConfig &out);

/** Comma-separated zoo names (CLI error messages). */
std::string detectorZooNames();

/**
 * Apply one "STRUCT=LEVEL" override (STRUCT in {reg, sb, cache},
 * LEVEL a protectLevelName). Returns false on malformed input.
 * Overrides relabel the detector "<label>+STRUCT=LEVEL".
 */
bool applyProtectOverride(DetectorConfig &det, const std::string &spec);

} // namespace turnpike

#endif // TURNPIKE_SIM_DETECTOR_HH_
