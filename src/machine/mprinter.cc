#include "machine/mprinter.hh"

#include <sstream>

#include "util/logging.hh"

namespace turnpike {

std::string
printRecovery(const RecoveryProgram &prog)
{
    std::ostringstream out;
    for (size_t i = 0; i < prog.size(); i++) {
        const RecoveryOp &op = prog[i];
        out << "      [" << i << "] ";
        switch (op.kind) {
          case RecoveryOp::Kind::LoadCkpt:
            out << strfmt("t%d = ldckpt r%u", op.t, op.reg);
            break;
          case RecoveryOp::Kind::Li:
            out << strfmt("t%d = li %lld", op.t,
                          static_cast<long long>(op.imm));
            break;
          case RecoveryOp::Kind::Bin:
            if (op.bImm) {
                out << strfmt("t%d = %s t%d, %lld", op.t, opName(op.op),
                              op.a, static_cast<long long>(op.imm));
            } else {
                out << strfmt("t%d = %s t%d, t%d", op.t, opName(op.op),
                              op.a, op.b);
            }
            break;
          case RecoveryOp::Kind::BrIfZero:
            out << strfmt("brz t%d, +%d", op.a, op.skip);
            break;
          case RecoveryOp::Kind::CommitReg:
            out << strfmt("r%u = commit t%d", op.reg, op.t);
            break;
        }
        out << "\n";
    }
    return out.str();
}

std::string
printMachineFunction(const MachineFunction &mf)
{
    std::ostringstream out;
    out << "mfunc " << mf.name() << " (" << mf.size() << " instrs, "
        << mf.regions().size() << " regions)\n";
    for (size_t pc = 0; pc < mf.code().size(); pc++)
        out << strfmt("%5zu: %s\n", pc, mf.code()[pc].toString().c_str());
    for (size_t r = 0; r < mf.regions().size(); r++) {
        const RegionMeta &rm = mf.regions()[r];
        out << "  region " << r << " @pc " << rm.entryPc << " live-in {";
        for (size_t i = 0; i < rm.liveIns.size(); i++) {
            if (i)
                out << ",";
            out << "r" << rm.liveIns[i];
        }
        out << "}\n";
        if (!rm.recovery.empty())
            out << printRecovery(rm.recovery);
    }
    return out.str();
}

} // namespace turnpike
