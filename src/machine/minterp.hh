/**
 * @file
 * Functional (untimed) interpreter for machine code. The golden
 * model for the pipeline simulator: both must produce the same final
 * data-segment image on fault-free runs.
 */

#ifndef TURNPIKE_MACHINE_MINTERP_HH_
#define TURNPIKE_MACHINE_MINTERP_HH_

#include "ir/interpreter.hh"
#include "machine/mfunction.hh"

namespace turnpike {

/**
 * Execute @p mf functionally with memory initialized from @p mod.
 * Checkpoint stores write the register's quarantine slot. Returns
 * the same result shape as the IR interpreter.
 */
InterpResult interpretMachine(const Module &mod, const MachineFunction &mf,
                              uint64_t step_limit = 100000000);

/**
 * Evaluate one ALU-class machine op over resolved operand values.
 * Shared by the functional interpreter and the pipeline's execute
 * stage so semantics can never diverge.
 */
int64_t evalAlu(Op op, int64_t a, int64_t b);

} // namespace turnpike

#endif // TURNPIKE_MACHINE_MINTERP_HH_
