/**
 * @file
 * Functional (untimed) interpreter for machine code. The golden
 * model for the pipeline simulator: both must produce the same final
 * data-segment image on fault-free runs.
 */

#ifndef TURNPIKE_MACHINE_MINTERP_HH_
#define TURNPIKE_MACHINE_MINTERP_HH_

#include <cstdint>

#include "ir/interpreter.hh"
#include "machine/mfunction.hh"

namespace turnpike {

/**
 * Execute @p mf functionally with memory initialized from @p mod.
 * Checkpoint stores write the register's quarantine slot. Returns
 * the same result shape as the IR interpreter.
 */
InterpResult interpretMachine(const Module &mod, const MachineFunction &mf,
                              uint64_t step_limit = 100000000);

/**
 * Evaluate one ALU-class machine op over resolved operand values.
 * Shared by the functional interpreter and the pipeline's execute
 * stage so semantics can never diverge. Inline: runs once per
 * simulated ALU instruction.
 */
inline int64_t
evalAlu(Op op, int64_t a, int64_t b)
{
    switch (op) {
      case Op::Mov:
        return a;
      case Op::Add:
        return a + b;
      case Op::Sub:
        return a - b;
      case Op::Mul:
        return a * b;
      case Op::Div:
        // Both guards define away host UB: divide-by-zero, and the
        // INT64_MIN / -1 overflow a fault-corrupted operand can hit.
        if (b == 0 || (a == INT64_MIN && b == -1))
            return 0;
        return a / b;
      case Op::Shl:
        return static_cast<int64_t>(static_cast<uint64_t>(a)
                                    << (b & 63));
      case Op::Shr:
        return a >> (b & 63);
      case Op::And:
        return a & b;
      case Op::Or:
        return a | b;
      case Op::Xor:
        return a ^ b;
      case Op::CmpEq:
        return a == b;
      case Op::CmpNe:
        return a != b;
      case Op::CmpLt:
        return a < b;
      case Op::CmpLe:
        return a <= b;
      default:
        panic("evalAlu: %s is not an ALU op", opName(op));
    }
}

} // namespace turnpike

#endif // TURNPIKE_MACHINE_MINTERP_HH_
