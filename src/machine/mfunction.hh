/**
 * @file
 * MachineFunction: linearized machine code plus per-region recovery
 * metadata — the unit the in-order pipeline simulator runs and the
 * recovery engine consults after an error.
 */

#ifndef TURNPIKE_MACHINE_MFUNCTION_HH_
#define TURNPIKE_MACHINE_MFUNCTION_HH_

#include <string>
#include <vector>

#include "machine/minstr.hh"

namespace turnpike {

/**
 * One step of a region's recovery program. Recovery programs run on
 * a small virtual temp file inside the recovery engine; their only
 * memory reads are checkpoint slots (resolved through the verified
 * colors) and their only architectural writes are CommitReg steps.
 * BrIfZero enables the Fig. 9 style branch-replaying reconstruction
 * of pruned checkpoints.
 */
struct RecoveryOp
{
    enum class Kind : uint8_t {
        LoadCkpt,   ///< temp[t] = ckpt slot of physical register reg
        Li,         ///< temp[t] = imm
        Bin,        ///< temp[t] = op(temp[a], bImm ? imm : temp[b])
        BrIfZero,   ///< if (temp[a] == 0) skip the next 'skip' ops
        CommitReg,  ///< architectural reg = temp[t]
    };

    Kind kind = Kind::Li;
    Op op = Op::Add;   ///< for Bin
    int t = 0;         ///< destination temp (LoadCkpt/Li/Bin/CommitReg)
    int a = 0;         ///< source temp
    int b = 0;         ///< source temp (Bin with !bImm)
    bool bImm = false; ///< Bin second operand is imm
    int64_t imm = 0;   ///< Li value / Bin immediate
    Reg reg = kNoReg;  ///< physical register (LoadCkpt/CommitReg)
    int skip = 0;      ///< BrIfZero skip count
};

/** A region's recovery program: restores the region's live-ins. */
using RecoveryProgram = std::vector<RecoveryOp>;

/** Static per-region metadata. */
struct RegionMeta
{
    /** PC of the Boundary instruction that starts the region. */
    uint32_t entryPc = kNoPc;
    /** Live-in physical registers at the region entry. */
    std::vector<Reg> liveIns;
    /**
     * Live-ins whose checkpoint store was pruned (Fig. 9): their
     * recovery re-derives the value from a recipe instead of a
     * checkpoint load. Root-cause attribution uses this to tell
     * whether a divergence sits in a pruned region.
     */
    uint32_t prunedLiveIns = 0;
    /** Restores liveIns from checkpoint storage after an error. */
    RecoveryProgram recovery;
};

/**
 * A linearized machine program. PC 0 is the entry; execution ends at
 * a Halt. Region 0 starts at the leading Boundary the lowering pass
 * inserts at PC 0.
 */
class MachineFunction
{
  public:
    explicit MachineFunction(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    std::vector<MInstr> &code() { return code_; }
    const std::vector<MInstr> &code() const { return code_; }

    std::vector<RegionMeta> &regions() { return regions_; }
    const std::vector<RegionMeta> &regions() const { return regions_; }

    const RegionMeta &region(uint32_t id) const;

    size_t size() const { return code_.size(); }

    /** Encoded bytes of the instruction stream (boundaries free). */
    uint64_t codeBytes() const;

    /** Encoded bytes of all recovery programs (4 bytes per op). */
    uint64_t recoveryBytes() const;

    /**
     * Encoded bytes excluding resilience additions: checkpoint
     * stores, boundaries, and recovery blocks — i.e. the size the
     * same code would have without any soft-error support.
     */
    uint64_t baselineBytes() const;

  private:
    std::string name_;
    std::vector<MInstr> code_;
    std::vector<RegionMeta> regions_;
};

} // namespace turnpike

#endif // TURNPIKE_MACHINE_MFUNCTION_HH_
