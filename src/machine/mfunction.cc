#include "machine/mfunction.hh"

#include "util/logging.hh"

namespace turnpike {

const RegionMeta &
MachineFunction::region(uint32_t id) const
{
    TP_ASSERT(id < regions_.size(), "bad region id %u", id);
    return regions_[id];
}

uint64_t
MachineFunction::codeBytes() const
{
    uint64_t bytes = 0;
    for (const MInstr &mi : code_)
        bytes += mi.encodedBytes();
    return bytes;
}

uint64_t
MachineFunction::recoveryBytes() const
{
    uint64_t bytes = 0;
    for (const RegionMeta &rm : regions_)
        bytes += 4 * rm.recovery.size();
    return bytes;
}

uint64_t
MachineFunction::baselineBytes() const
{
    uint64_t bytes = 0;
    for (const MInstr &mi : code_) {
        if (mi.op == Op::Ckpt || mi.op == Op::Boundary)
            continue;
        bytes += mi.encodedBytes();
    }
    return bytes;
}

} // namespace turnpike
