#include "machine/minterp.hh"

#include "util/logging.hh"

namespace turnpike {

InterpResult
interpretMachine(const Module &mod, const MachineFunction &mf,
                 uint64_t step_limit)
{
    InterpResult result;
    result.memory.loadModule(mod);
    MemoryImage &mem = result.memory;
    InterpStats &st = result.stats;

    int64_t regs[kNumPhysRegs] = {0};
    const auto &code = mf.code();
    uint32_t pc = 0;
    uint64_t region_insts = 0;

    while (st.insts < step_limit) {
        TP_ASSERT(pc < code.size(), "minterp: pc %u out of range", pc);
        const MInstr &mi = code[pc];
        st.insts++;
        region_insts++;
        uint32_t next_pc = pc + 1;

        auto op2 = [&]() {
            return mi.src1 == kNoReg ? mi.imm : regs[mi.src1];
        };

        switch (mi.op) {
          case Op::Li:
            regs[mi.dst] = mi.imm;
            break;
          case Op::AddShl:
            regs[mi.dst] = regs[mi.src0] +
                static_cast<int64_t>(
                    static_cast<uint64_t>(regs[mi.src1])
                    << (mi.imm & 63));
            break;
          case Op::Load: {
            uint64_t addr =
                static_cast<uint64_t>(regs[mi.src0] + mi.imm);
            regs[mi.dst] = mem.read(addr);
            st.loads++;
            break;
          }
          case Op::Store: {
            uint64_t addr =
                static_cast<uint64_t>(regs[mi.src1] + mi.imm);
            mem.write(addr, regs[mi.src0]);
            if (mi.skind == StoreKind::Spill)
                st.storesSpill++;
            else
                st.storesApp++;
            break;
          }
          case Op::Ckpt:
            mem.write(layout::ckptSlot(mi.src0, layout::kQuarantineColor),
                      regs[mi.src0]);
            st.storesCkpt++;
            break;
          case Op::Boundary:
            st.boundaries++;
            st.insts--;
            region_insts--;
            if (region_insts > 0)
                st.regionSize.sample(static_cast<double>(region_insts));
            region_insts = 0;
            break;
          case Op::Br:
            st.branches++;
            if (regs[mi.src0] != 0)
                next_pc = mi.target;
            break;
          case Op::Jmp:
            next_pc = mi.target;
            break;
          case Op::Halt:
            if (region_insts > 1)
                st.regionSize.sample(
                    static_cast<double>(region_insts - 1));
            result.reason = StopReason::Halted;
            return result;
          case Op::Nop:
            break;
          default:
            regs[mi.dst] = evalAlu(mi.op, regs[mi.src0], op2());
            break;
        }
        pc = next_pc;
    }
    result.reason = StopReason::StepLimit;
    return result;
}

} // namespace turnpike
