/**
 * @file
 * Disassembly of machine functions, including region metadata and
 * recovery programs.
 */

#ifndef TURNPIKE_MACHINE_MPRINTER_HH_
#define TURNPIKE_MACHINE_MPRINTER_HH_

#include <string>

#include "machine/mfunction.hh"

namespace turnpike {

/** Dump the code stream with PCs and region markers. */
std::string printMachineFunction(const MachineFunction &mf);

/** Dump one recovery program. */
std::string printRecovery(const RecoveryProgram &prog);

} // namespace turnpike

#endif // TURNPIKE_MACHINE_MPRINTER_HH_
