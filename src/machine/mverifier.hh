/**
 * @file
 * Structural verifier for machine functions: register ranges, branch
 * targets, region metadata consistency.
 */

#ifndef TURNPIKE_MACHINE_MVERIFIER_HH_
#define TURNPIKE_MACHINE_MVERIFIER_HH_

#include <string>
#include <vector>

#include "machine/mfunction.hh"

namespace turnpike {

/** Verify @p mf; returns the problems found (empty when valid). */
std::vector<std::string> verifyMachineFunction(const MachineFunction &mf);

/** Verify and panic on the first problem. */
void verifyOrDie(const MachineFunction &mf);

} // namespace turnpike

#endif // TURNPIKE_MACHINE_MVERIFIER_HH_
