/**
 * @file
 * Machine-level instruction: the mini-IR Instruction operating on
 * physical registers, linearized to a flat PC space with explicit
 * branch targets. This is what the in-order pipeline executes.
 */

#ifndef TURNPIKE_MACHINE_MINSTR_HH_
#define TURNPIKE_MACHINE_MINSTR_HH_

#include "ir/instruction.hh"

namespace turnpike {

/** Number of architectural registers (ARM Cortex-A53-like). */
constexpr Reg kNumPhysRegs = 32;

/** Reserved frame-pointer register holding the spill-area base. */
constexpr Reg kFramePointer = 31;

/** Sentinel PC. */
constexpr uint32_t kNoPc = 0xffffffffu;

/**
 * One machine instruction. Register fields hold physical ids
 * (< kNumPhysRegs). Br jumps to @p target when the condition is
 * non-zero, else falls through to pc+1; Jmp always jumps to
 * @p target. Boundary instructions carry their static region id in
 * imm and occupy zero encoded bytes (modelled as a marker bit on
 * the following instruction in a real encoding).
 */
struct MInstr : Instruction
{
    /** Taken target for Br; target for Jmp; kNoPc otherwise. */
    uint32_t target = kNoPc;

    /** Encoded size in bytes (0 for Boundary, 4 otherwise). */
    uint32_t encodedBytes() const
    {
        return op == Op::Boundary ? 0 : 4;
    }

    /** Render with pc-based branch syntax. */
    std::string toString() const;
};

} // namespace turnpike

#endif // TURNPIKE_MACHINE_MINSTR_HH_
