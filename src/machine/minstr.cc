#include "machine/minstr.hh"

#include "util/logging.hh"

namespace turnpike {

std::string
MInstr::toString() const
{
    switch (op) {
      case Op::Br:
        return strfmt("br v%u -> %u", src0, target);
      case Op::Jmp:
        return strfmt("jmp -> %u", target);
      default:
        return Instruction::toString();
    }
}

} // namespace turnpike
