#include "machine/mverifier.hh"

#include "util/logging.hh"

namespace turnpike {

std::vector<std::string>
verifyMachineFunction(const MachineFunction &mf)
{
    std::vector<std::string> problems;
    auto complain = [&](std::string s) { problems.push_back(std::move(s)); };
    const auto &code = mf.code();

    if (code.empty()) {
        complain("empty machine function");
        return problems;
    }
    if (code.front().op != Op::Boundary)
        complain("machine function must start with the region-0 boundary");
    bool saw_halt = false;
    for (size_t pc = 0; pc < code.size(); pc++) {
        const MInstr &mi = code[pc];
        auto check_reg = [&](Reg r, const char *role) {
            if (r != kNoReg && r >= kNumPhysRegs)
                complain(strfmt("pc %zu: %s register %u not physical",
                                pc, role, r));
        };
        check_reg(mi.dst, "dst");
        check_reg(mi.src0, "src0");
        check_reg(mi.src1, "src1");
        if (mi.op == Op::Br || mi.op == Op::Jmp) {
            if (mi.target >= code.size())
                complain(strfmt("pc %zu: branch target %u out of range",
                                pc, mi.target));
        }
        if (mi.op == Op::Br && pc + 1 >= code.size())
            complain(strfmt("pc %zu: conditional branch has no "
                            "fall-through", pc));
        if (mi.op == Op::Halt)
            saw_halt = true;
        if (mi.op == Op::Boundary) {
            uint32_t rid = static_cast<uint32_t>(mi.imm);
            if (rid >= mf.regions().size()) {
                complain(strfmt("pc %zu: boundary region id %u has no "
                                "metadata", pc, rid));
            } else if (mf.regions()[rid].entryPc != pc) {
                complain(strfmt("pc %zu: region %u metadata entryPc %u "
                                "mismatch", pc, rid,
                                mf.regions()[rid].entryPc));
            }
        }
    }
    if (!saw_halt)
        complain("machine function has no halt");

    for (size_t r = 0; r < mf.regions().size(); r++) {
        const RegionMeta &rm = mf.regions()[r];
        if (rm.entryPc >= code.size()) {
            complain(strfmt("region %zu: entryPc out of range", r));
            continue;
        }
        if (code[rm.entryPc].op != Op::Boundary)
            complain(strfmt("region %zu: entryPc not a boundary", r));
        for (Reg lr : rm.liveIns)
            if (lr >= kNumPhysRegs)
                complain(strfmt("region %zu: live-in %u not physical",
                                r, lr));
        for (size_t i = 0; i < rm.recovery.size(); i++) {
            const RecoveryOp &op = rm.recovery[i];
            if (op.kind == RecoveryOp::Kind::BrIfZero &&
                i + 1 + static_cast<size_t>(op.skip) >
                    rm.recovery.size()) {
                complain(strfmt("region %zu: recovery br skips out of "
                                "range at %zu", r, i));
            }
            if ((op.kind == RecoveryOp::Kind::LoadCkpt ||
                 op.kind == RecoveryOp::Kind::CommitReg) &&
                op.reg >= kNumPhysRegs) {
                complain(strfmt("region %zu: recovery op %zu bad reg",
                                r, i));
            }
        }
    }
    return problems;
}

void
verifyOrDie(const MachineFunction &mf)
{
    auto problems = verifyMachineFunction(mf);
    if (!problems.empty())
        panic("machine verification failed for %s: %s",
              mf.name().c_str(), problems.front().c_str());
}

} // namespace turnpike
