/**
 * @file
 * Parameterized IR kernels used to synthesize the 36 benchmark
 * proxies. Each emitter appends a loop (or straight-line block) to
 * the function under construction and leaves the builder positioned
 * in a fresh open block. The kernels are chosen to exercise the
 * code patterns the paper's evaluation depends on:
 *
 *  - stream/copy/stencil: array walks whose strength-reduced pointer
 *    induction variables create the loop-carried checkpoints LIVM
 *    removes (Fig. 8);
 *  - reduce: store-free loops — the LICM checkpoint-sinking target
 *    (Fig. 10);
 *  - ptrchase: serial dependent loads with frequent cache misses —
 *    the eager-checkpoint data-hazard worst case (Fig. 6);
 *  - branchy: diamonds whose arm-defined values can be reconstructed
 *    from stable registers — the checkpoint-pruning target (Fig. 9);
 *  - hist: load-then-store to the same array — real WAR dependences
 *    that the CLQ must detect (Fig. 12);
 *  - spill: high register pressure with read-mostly coefficients vs
 *    written accumulators — the store-aware RA target (§4.1.1).
 */

#ifndef TURNPIKE_WORKLOADS_KERNELS_HH_
#define TURNPIKE_WORKLOADS_KERNELS_HH_

#include "ir/builder.hh"
#include "ir/module.hh"
#include "util/rng.hh"

namespace turnpike {

/** Shared state while emitting one workload. */
struct KernelCtx
{
    Module &mod;
    IRBuilder &b;
    Rng &rng;
    /**
     * log2 of the byte step between consecutive elements the array
     * kernels touch: 3 walks every word (cache friendly), 6 walks
     * one 64-byte line per element (streaming / capacity-miss
     * behaviour for large working sets).
     */
    int strideShift = 3;
};

/** A[i] = B[i] + C[i] * k over @p trips elements. */
void emitStream(KernelCtx &ctx, const DataObject &a,
                const DataObject &b, const DataObject &c,
                int64_t trips);

/** B[i] = A[i] over @p trips elements. */
void emitCopy(KernelCtx &ctx, const DataObject &dst,
              const DataObject &src, int64_t trips);

/** A[i] = B[i-1] + B[i] + B[i+1] over interior elements. */
void emitStencil(KernelCtx &ctx, const DataObject &a,
                 const DataObject &b, int64_t trips);

/**
 * sum += A[i] over @p trips elements; the final sum is stored to
 * @p out[slot]. The loop body is store-free.
 */
void emitReduce(KernelCtx &ctx, const DataObject &a,
                const DataObject &out, int64_t slot, int64_t trips);

/**
 * idx = Next[idx] pointer chase of @p trips steps; the final index
 * is stored to @p out[slot]. @p next must hold a permutation.
 */
void emitPtrChase(KernelCtx &ctx, const DataObject &next,
                  const DataObject &out, int64_t slot, int64_t trips);

/**
 * Branchy diamond: per element, r = (A[i] < t) ? base + i : base * 3
 * stored into D[i] — arm values reconstructible from stable regs.
 */
void emitBranchy(KernelCtx &ctx, const DataObject &a,
                 const DataObject &d, int64_t threshold,
                 int64_t trips);

/** H[A[i] & (hWords-1)] += 1 over @p trips elements. */
void emitHist(KernelCtx &ctx, const DataObject &a, const DataObject &h,
              int64_t trips);

/**
 * Long unrolled body (8 elements, ~110 instructions, 8 stores) with
 * three loop-carried accumulators updated per element — the SPEC-like
 * hot-loop shape whose checkpoint count is dominated by the
 * store-budget cuts a small store buffer forces inside each
 * iteration (paper Fig. 3/4): with SB=4 every cut checkpoints the
 * live accumulators again; with SB=40 the iteration is one region.
 */
void emitBigBody(KernelCtx &ctx, const DataObject &a,
                 const DataObject &b, const DataObject &c,
                 const DataObject &out, int64_t slot, int64_t trips);

/**
 * Register-pressure loop: @p accs accumulators each updated from
 * @p coeffs coefficient registers (read three times per iteration)
 * and a streamed value; results stored to @p out afterwards.
 */
void emitSpillPressure(KernelCtx &ctx, const DataObject &a,
                       const DataObject &out, int accs, int coeffs,
                       int64_t trips);

} // namespace turnpike

#endif // TURNPIKE_WORKLOADS_KERNELS_HH_
