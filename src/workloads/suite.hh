/**
 * @file
 * The 36-benchmark proxy suite: one synthetic workload per benchmark
 * the paper evaluates (SPEC CPU2006, CPU2017, SPLASH-3), each built
 * as a deterministic mix of the kernels in kernels.hh whose
 * parameters reflect the benchmark's published character (working
 * set, store density, pointer chasing, branchiness, register
 * pressure). See DESIGN.md for the substitution rationale.
 */

#ifndef TURNPIKE_WORKLOADS_SUITE_HH_
#define TURNPIKE_WORKLOADS_SUITE_HH_

#include <memory>
#include <string>
#include <vector>

#include "ir/module.hh"

namespace turnpike {

/** Descriptor of one benchmark proxy. */
struct WorkloadSpec
{
    std::string name;   ///< paper's benchmark name
    std::string suite;  ///< "CPU2006", "CPU2017" or "SPLASH3"
    uint64_t seed = 1;  ///< drives data initialization
    uint32_t wsWords = 4096; ///< streaming-array working set (words)
    /** Kernel instances per outer iteration. */
    int stream = 0;
    int copy = 0;
    int stencil = 0;
    int reduce = 0;
    int ptrchase = 0;
    int branchy = 0;
    int hist = 0;
    int spill = 0;
    int bigbody = 0;
    int64_t kernelTrips = 256; ///< inner trip count per kernel
};

/** All 36 benchmark descriptors, grouped by suite in paper order. */
const std::vector<WorkloadSpec> &workloadSuite();

/** Find a descriptor by suite and name; panics when absent. */
const WorkloadSpec &findWorkload(const std::string &suite,
                                 const std::string &name);

/**
 * Build the IR module for @p spec, scaled so a baseline run executes
 * roughly @p target_dyn_insts dynamic instructions.
 */
std::unique_ptr<Module> buildWorkload(const WorkloadSpec &spec,
                                      uint64_t target_dyn_insts);

} // namespace turnpike

#endif // TURNPIKE_WORKLOADS_SUITE_HH_
