#include "workloads/kernels.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"

namespace turnpike {

namespace {

/** Materialize an array base address in the current block. */
Reg
baseReg(KernelCtx &ctx, const DataObject &obj)
{
    return ctx.b.li(static_cast<int64_t>(obj.base));
}

/** Emit address = base + (i << 3) + off in the current block. */
Reg
elemAddr(KernelCtx &ctx, Reg base, Reg i)
{
    Reg t = ctx.b.binImm(Op::Shl, i, ctx.strideShift);
    return ctx.b.add(base, t);
}

/**
 * Dependent ALU chain mixing @p v with the loop-invariant @p k:
 * models the arithmetic between memory operations in real kernels
 * and calibrates the suite's store density to SPEC-like levels.
 */
Reg
mix(KernelCtx &ctx, Reg v, Reg k, int rounds)
{
    for (int r = 0; r < rounds; r++) {
        v = ctx.b.bin(Op::Xor, v, k);
        v = ctx.b.binImm(Op::Add, v, 0x9e37 + r);
    }
    return v;
}

/** Open a do-while loop; returns (body, after) block ids and jumps
 *  into the body. The caller emits the body, then closes it with
 *  closeLoop(). */
struct LoopShape
{
    BlockId body;
    BlockId after;
    Reg iv;
};

LoopShape
openLoop(KernelCtx &ctx, const char *name)
{
    LoopShape ls;
    ls.iv = ctx.b.reg();
    ctx.b.liTo(ls.iv, 0);
    ls.body = ctx.b.newBlock(std::string(name) + ".body");
    ls.after = ctx.b.newBlock(std::string(name) + ".after");
    ctx.b.jmp(ls.body);
    ctx.b.setBlock(ls.body);
    return ls;
}

/** Close the loop: iv += step; if (iv < trips) repeat. */
void
closeLoop(KernelCtx &ctx, const LoopShape &ls, int64_t trips,
          int64_t step = 1)
{
    ctx.b.binImmTo(Op::Add, ls.iv, ls.iv, step);
    Reg c = ctx.b.binImm(Op::CmpLt, ls.iv, trips);
    ctx.b.br(c, ls.body, ls.after);
    ctx.b.setBlock(ls.after);
}

} // namespace

void
emitStream(KernelCtx &ctx, const DataObject &a, const DataObject &b,
           const DataObject &c, int64_t trips)
{
    constexpr int64_t unroll = 4;
    trips = std::max<int64_t>(unroll, trips - (trips % unroll));
    uint64_t words = static_cast<uint64_t>(trips)
        << (ctx.strideShift - 3);
    TP_ASSERT(words <= a.words && words <= b.words && words <= c.words,
              "stream kernel exceeds its arrays");

    Reg ra = baseReg(ctx, a);
    Reg rb = baseReg(ctx, b);
    Reg rc = baseReg(ctx, c);
    Reg k = ctx.b.li(3 + static_cast<int64_t>(ctx.rng.below(5)));
    // Loop-carried checksum: live across every mid-body region cut,
    // so its checkpoint count scales with the store-buffer size
    // (the paper's Fig. 3 effect).
    Reg acc = ctx.b.reg();
    ctx.b.liTo(acc, 0);

    LoopShape ls = openLoop(ctx, "stream");
    // Staging temps derived from loop-invariant registers; they are
    // used across the mid-body region cut, making their checkpoints
    // prunable (reconstructible from k's checkpoint).
    Reg s1 = ctx.b.binImm(Op::Add, k, 100);
    Reg s2 = ctx.b.binImm(Op::Shl, k, 2);
    for (int64_t u = 0; u < unroll; u++) {
        Reg iu = (u == 0) ? ls.iv : ctx.b.binImm(Op::Add, ls.iv, u);
        Reg pb = elemAddr(ctx, rb, iu);
        Reg vb = ctx.b.load(pb);
        Reg pc = elemAddr(ctx, rc, iu);
        Reg vc = ctx.b.load(pc);
        Reg prod = ctx.b.mul(vc, k);
        Reg sum = ctx.b.add(vb, prod);
        // Fold in a staging temp on later elements (cross-cut use).
        if (u == 2)
            sum = ctx.b.add(sum, s1);
        if (u == 3)
            sum = ctx.b.add(sum, s2);
        sum = mix(ctx, sum, k, 2);
        ctx.b.binTo(Op::Add, acc, acc, sum);
        Reg pa = elemAddr(ctx, ra, iu);
        ctx.b.store(sum, pa);
    }
    closeLoop(ctx, ls, trips, unroll);
    Reg rsum = baseReg(ctx, a);
    ctx.b.store(acc, rsum, 0);
}

void
emitCopy(KernelCtx &ctx, const DataObject &dst, const DataObject &src,
         int64_t trips)
{
    TP_ASSERT((static_cast<uint64_t>(trips) << (ctx.strideShift - 3))
                  <= dst.words &&
              (static_cast<uint64_t>(trips) << (ctx.strideShift - 3))
                  <= src.words,
              "copy kernel exceeds its arrays");
    Reg rd = baseReg(ctx, dst);
    Reg rs = baseReg(ctx, src);
    Reg k = ctx.b.li(41);
    LoopShape ls = openLoop(ctx, "copy");
    Reg ps = elemAddr(ctx, rs, ls.iv);
    Reg v = ctx.b.load(ps);
    v = mix(ctx, v, k, 2);
    Reg pd = elemAddr(ctx, rd, ls.iv);
    ctx.b.store(v, pd);
    closeLoop(ctx, ls, trips);
}

void
emitStencil(KernelCtx &ctx, const DataObject &a, const DataObject &b,
            int64_t trips)
{
    int64_t max_elems = (static_cast<int64_t>(b.words) - 2) >>
        (ctx.strideShift - 3);
    trips = std::min<int64_t>(trips, max_elems);
    TP_ASSERT(trips >= 1, "stencil needs at least 3 elements");
    TP_ASSERT((static_cast<uint64_t>(trips) << (ctx.strideShift - 3))
                  <= a.words,
              "stencil kernel exceeds output array");
    Reg ra = baseReg(ctx, a);
    Reg rb = baseReg(ctx, b);
    LoopShape ls = openLoop(ctx, "stencil");
    Reg p = elemAddr(ctx, rb, ls.iv);
    Reg left = ctx.b.load(p, 0);
    Reg mid = ctx.b.load(p, 8);
    Reg right = ctx.b.load(p, 16);
    Reg s = ctx.b.add(left, mid);
    Reg s2 = ctx.b.add(s, right);
    s2 = mix(ctx, s2, rb, 2);
    Reg pa = elemAddr(ctx, ra, ls.iv);
    ctx.b.store(s2, pa);
    closeLoop(ctx, ls, trips);
}

void
emitReduce(KernelCtx &ctx, const DataObject &a, const DataObject &out,
           int64_t slot, int64_t trips)
{
    TP_ASSERT((static_cast<uint64_t>(trips) << (ctx.strideShift - 3))
                  <= a.words,
              "reduce kernel exceeds its array");
    Reg ra = baseReg(ctx, a);
    Reg acc = ctx.b.reg();
    ctx.b.liTo(acc, 0);
    LoopShape ls = openLoop(ctx, "reduce");
    Reg p = elemAddr(ctx, ra, ls.iv);
    Reg v = ctx.b.load(p);
    v = mix(ctx, v, ra, 2);
    ctx.b.binTo(Op::Add, acc, acc, v);
    closeLoop(ctx, ls, trips);
    Reg ro = baseReg(ctx, out);
    ctx.b.store(acc, ro, slot * 8);
}

void
emitPtrChase(KernelCtx &ctx, const DataObject &next,
             const DataObject &out, int64_t slot, int64_t trips)
{
    Reg rn = baseReg(ctx, next);
    Reg idx = ctx.b.reg();
    ctx.b.liTo(idx, 0);
    Reg acc = ctx.b.reg();
    ctx.b.liTo(acc, 0);
    LoopShape ls = openLoop(ctx, "chase");
    Reg t = ctx.b.binImm(Op::Shl, idx, 3);
    Reg p = ctx.b.add(rn, t);
    ctx.b.loadTo(idx, p); // serial dependent load
    Reg h = ctx.b.binImm(Op::Mul, idx, 3);
    ctx.b.binTo(Op::Add, acc, acc, h);
    closeLoop(ctx, ls, trips);
    Reg ro = baseReg(ctx, out);
    ctx.b.store(idx, ro, slot * 8);
    ctx.b.store(acc, ro, (slot + 8) * 8);
}

void
emitBranchy(KernelCtx &ctx, const DataObject &a, const DataObject &d,
            int64_t threshold, int64_t trips)
{
    TP_ASSERT((static_cast<uint64_t>(trips) << (ctx.strideShift - 3))
                  <= a.words &&
              (static_cast<uint64_t>(trips) << (ctx.strideShift - 3))
                  <= d.words,
              "branchy kernel exceeds its arrays");
    Reg ra = baseReg(ctx, a);
    Reg rd = baseReg(ctx, d);
    Reg k = ctx.b.li(17);

    Reg i = ctx.b.reg();
    ctx.b.liTo(i, 0);
    Reg r = ctx.b.reg(); // diamond-defined value, carried
    ctx.b.liTo(r, 0);
    // Loop-carried predicate (hysteresis): last iteration's branch
    // outcome biases this iteration's threshold. Keeping the
    // predicate live across the region boundary is what makes the
    // diamond checkpoints reconstructible (Fig. 9).
    Reg cond = ctx.b.reg();
    ctx.b.liTo(cond, 0);
    BlockId head = ctx.b.newBlock("branchy.head");
    BlockId then_bb = ctx.b.newBlock("branchy.then");
    BlockId else_bb = ctx.b.newBlock("branchy.else");
    BlockId join = ctx.b.newBlock("branchy.join");
    BlockId after = ctx.b.newBlock("branchy.after");
    ctx.b.jmp(head);

    ctx.b.setBlock(head);
    Reg p = elemAddr(ctx, ra, i);
    Reg v = ctx.b.load(p);
    Reg teff = ctx.b.add(v, cond); // uses last iteration's predicate
    teff = ctx.b.add(teff, r);     // ... and last iteration's value
    ctx.b.binImmTo(Op::CmpLt, cond, teff, threshold);
    ctx.b.br(cond, then_bb, else_bb);

    // Arm values computed from the stable register k, as in Fig. 9.
    ctx.b.setBlock(then_bb);
    ctx.b.binImmTo(Op::Add, r, k, 9);
    ctx.b.jmp(join);

    ctx.b.setBlock(else_bb);
    ctx.b.binImmTo(Op::Mul, r, k, 3);
    ctx.b.jmp(join);

    ctx.b.setBlock(join);
    Reg sum = ctx.b.add(r, v);
    sum = mix(ctx, sum, k, 2);
    Reg pd = elemAddr(ctx, rd, i);
    ctx.b.store(sum, pd);
    ctx.b.binImmTo(Op::Add, i, i, 1);
    Reg cc = ctx.b.binImm(Op::CmpLt, i, trips);
    ctx.b.br(cc, head, after);
    ctx.b.setBlock(after);
}

void
emitHist(KernelCtx &ctx, const DataObject &a, const DataObject &h,
         int64_t trips)
{
    TP_ASSERT((h.words & (h.words - 1)) == 0,
              "histogram size must be a power of two");
    TP_ASSERT((static_cast<uint64_t>(trips) << (ctx.strideShift - 3))
                  <= a.words,
              "hist kernel exceeds its input");
    Reg ra = baseReg(ctx, a);
    Reg rh = baseReg(ctx, h);
    int64_t mask = static_cast<int64_t>(h.words) - 1;
    LoopShape ls = openLoop(ctx, "hist");
    Reg p = elemAddr(ctx, ra, ls.iv);
    Reg v = ctx.b.load(p);
    v = mix(ctx, v, rh, 2);
    Reg idx = ctx.b.binImm(Op::And, v, mask);
    Reg t = ctx.b.binImm(Op::Shl, idx, 3);
    Reg ph = ctx.b.add(rh, t);
    Reg old = ctx.b.load(ph);
    Reg inc = ctx.b.binImm(Op::Add, old, 1);
    ctx.b.store(inc, ph); // WAR with the load above
    closeLoop(ctx, ls, trips);
}

void
emitBigBody(KernelCtx &ctx, const DataObject &a, const DataObject &b,
            const DataObject &c, const DataObject &out, int64_t slot,
            int64_t trips)
{
    constexpr int64_t unroll = 8;
    trips = std::max<int64_t>(unroll, trips - (trips % unroll));
    uint64_t words = static_cast<uint64_t>(trips)
        << (ctx.strideShift - 3);
    TP_ASSERT(words <= a.words && words <= b.words && words <= c.words,
              "bigbody kernel exceeds its arrays");

    Reg ra = baseReg(ctx, a);
    Reg rb = baseReg(ctx, b);
    Reg rc = baseReg(ctx, c);
    Reg k = ctx.b.li(5 + static_cast<int64_t>(ctx.rng.below(7)));

    // Loop-carried accumulators: live across every mid-body cut.
    Reg s0 = ctx.b.reg();
    ctx.b.liTo(s0, 0);
    Reg s1 = ctx.b.reg();
    ctx.b.liTo(s1, 1);
    Reg s2 = ctx.b.reg();
    ctx.b.liTo(s2, 2);

    LoopShape ls = openLoop(ctx, "bigbody");
    // Staging temps recomputed from the loop-invariant k each
    // iteration and used across the mid-body region cuts: their
    // checkpoints are prunable (reconstructible from ckpt[k]).
    Reg g0 = ctx.b.binImm(Op::Add, k, 64);
    Reg g1 = ctx.b.binImm(Op::Shl, k, 1);
    Reg g2 = ctx.b.binImm(Op::Xor, k, 0x55);
    for (int64_t u = 0; u < unroll; u++) {
        Reg iu = (u == 0) ? ls.iv : ctx.b.binImm(Op::Add, ls.iv, u);
        Reg pb = elemAddr(ctx, rb, iu);
        Reg vb = ctx.b.load(pb);
        Reg pc = elemAddr(ctx, rc, iu);
        Reg vc = ctx.b.load(pc);
        Reg prod = ctx.b.mul(vc, k);
        Reg sum = ctx.b.add(vb, prod);
        if (u == 3)
            sum = ctx.b.add(sum, g0);
        if (u == 5)
            sum = ctx.b.add(sum, g1);
        if (u == 7)
            sum = ctx.b.add(sum, g2);
        ctx.b.binTo(Op::Add, s0, s0, sum);
        ctx.b.binTo(Op::Xor, s1, s1, vb);
        Reg w = ctx.b.binImm(Op::Mul, vc, 3);
        ctx.b.binTo(Op::Add, s2, s2, w);
        Reg mixed = mix(ctx, sum, k, 1);
        Reg pa = elemAddr(ctx, ra, iu);
        ctx.b.store(mixed, pa);
    }
    closeLoop(ctx, ls, trips, unroll);

    Reg ro = baseReg(ctx, out);
    ctx.b.store(s0, ro, slot * 8);
    ctx.b.store(s1, ro, (slot + 1) * 8);
    ctx.b.store(s2, ro, (slot + 2) * 8);
}

void
emitSpillPressure(KernelCtx &ctx, const DataObject &a,
                  const DataObject &out, int accs, int coeffs,
                  int64_t trips)
{
    TP_ASSERT((static_cast<uint64_t>(trips) << (ctx.strideShift - 3))
                  <= a.words,
              "spill kernel exceeds its input");
    TP_ASSERT(static_cast<uint64_t>(accs) <= out.words,
              "spill kernel exceeds its output");
    Reg ra = baseReg(ctx, a);

    // Coefficients: loaded once, read three times per iteration.
    std::vector<Reg> cs;
    for (int j = 0; j < coeffs; j++) {
        Reg addr = ctx.b.binImm(Op::Add, ra,
                                8 * (j % static_cast<int>(a.words)));
        cs.push_back(ctx.b.load(addr));
    }
    // Accumulators: written once and read once per iteration.
    std::vector<Reg> as;
    for (int j = 0; j < accs; j++) {
        Reg acc = ctx.b.reg();
        ctx.b.liTo(acc, j);
        as.push_back(acc);
    }

    LoopShape ls = openLoop(ctx, "spill");
    Reg p = elemAddr(ctx, ra, ls.iv);
    Reg v = ctx.b.load(p);
    for (int j = 0; j < accs; j++) {
        Reg c0 = cs[static_cast<size_t>(j) % cs.size()];
        Reg c1 = cs[static_cast<size_t>(j + 1) % cs.size()];
        Reg c2 = cs[static_cast<size_t>(j + 2) % cs.size()];
        Reg t0 = ctx.b.mul(v, c0);
        Reg t1 = ctx.b.add(t0, c1);
        Reg t2 = ctx.b.bin(Op::Sub, t1, c2);
        ctx.b.binTo(Op::Add, as[static_cast<size_t>(j)],
                    as[static_cast<size_t>(j)], t2);
    }
    closeLoop(ctx, ls, trips);

    Reg ro = baseReg(ctx, out);
    for (int j = 0; j < accs; j++)
        ctx.b.store(as[static_cast<size_t>(j)], ro, 8 * j);
}

} // namespace turnpike
