#include "workloads/suite.hh"

#include <algorithm>

#include "ir/builder.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workloads/kernels.hh"

namespace turnpike {

namespace {

/** Shorthand spec constructor. */
WorkloadSpec
spec(const char *name, const char *suite, uint64_t seed, uint32_t ws,
     int stream, int copy, int stencil, int reduce, int ptrchase,
     int branchy, int hist, int spill, int bigbody = 0)
{
    WorkloadSpec s;
    s.name = name;
    s.suite = suite;
    s.seed = seed;
    s.wsWords = ws;
    s.stream = stream;
    s.copy = copy;
    s.stencil = stencil;
    s.reduce = reduce;
    s.ptrchase = ptrchase;
    s.branchy = branchy;
    s.hist = hist;
    s.spill = spill;
    s.bigbody = bigbody;
    return s;
}

std::vector<WorkloadSpec>
makeSuite()
{
    std::vector<WorkloadSpec> v;
    // name          suite       seed  ws      str cp stn red ptr br  hi sp
    v.push_back(spec("astar",     "CPU2006", 101, 8192,  0, 1, 0, 0, 1, 2, 0, 0));
    v.push_back(spec("bwaves",    "CPU2006", 102, 16384, 1, 0, 1, 0, 0, 0, 0, 0, 2));
    v.push_back(spec("bzip2",     "CPU2006", 103, 4096,  0, 1, 0, 0, 0, 1, 2, 0));
    v.push_back(spec("gcc",       "CPU2006", 104, 2048,  0, 1, 0, 1, 0, 3, 1, 0));
    v.push_back(spec("gemsfdtd",  "CPU2006", 105, 8192,  1, 0, 2, 0, 0, 0, 0, 2, 1));
    v.push_back(spec("gobmk",     "CPU2006", 106, 2048,  0, 0, 0, 1, 0, 3, 0, 0));
    v.push_back(spec("hmmer",     "CPU2006", 107, 4096,  1, 0, 0, 2, 0, 1, 0, 0));
    v.push_back(spec("leslie3d",  "CPU2006", 108, 8192,  1, 0, 2, 0, 0, 0, 0, 0, 1));
    v.push_back(spec("libquan",   "CPU2006", 109, 4096,  1, 0, 0, 2, 0, 0, 0, 0));
    v.push_back(spec("mcf",       "CPU2006", 110, 16384, 0, 0, 0, 0, 3, 1, 0, 0));
    v.push_back(spec("milc",      "CPU2006", 111, 16384, 1, 0, 1, 1, 0, 0, 0, 0, 2));
    v.push_back(spec("omnetpp",   "CPU2006", 112, 8192,  0, 0, 0, 0, 2, 2, 0, 0));
    v.push_back(spec("perlbench", "CPU2006", 113, 2048,  0, 1, 0, 0, 0, 2, 1, 0));
    v.push_back(spec("soplex",    "CPU2006", 114, 8192,  1, 0, 0, 2, 0, 1, 0, 0));
    v.push_back(spec("xalan",     "CPU2006", 115, 4096,  0, 1, 0, 0, 1, 2, 0, 0));
    v.push_back(spec("zeusmp",    "CPU2006", 116, 8192,  1, 0, 2, 0, 0, 0, 0, 0, 1));

    v.push_back(spec("bwaves",    "CPU2017", 201, 16384, 1, 0, 1, 0, 0, 0, 0, 0, 2));
    v.push_back(spec("cactubssn", "CPU2017", 202, 8192,  0, 0, 2, 0, 0, 0, 0, 1, 1));
    v.push_back(spec("deepsjeng", "CPU2017", 203, 2048,  0, 0, 0, 2, 0, 2, 1, 0));
    v.push_back(spec("exchange2", "CPU2017", 204, 1024,  0, 3, 0, 0, 0, 1, 0, 0));
    v.push_back(spec("fotonik3d", "CPU2017", 205, 8192,  0, 0, 2, 2, 0, 0, 0, 0));
    v.push_back(spec("lbm",       "CPU2017", 206, 16384, 1, 0, 0, 0, 0, 0, 0, 2, 2));
    v.push_back(spec("leela",     "CPU2017", 207, 2048,  0, 2, 0, 0, 0, 2, 0, 0));
    v.push_back(spec("mcf",       "CPU2017", 208, 16384, 0, 0, 0, 0, 3, 1, 0, 0));
    v.push_back(spec("nab",       "CPU2017", 209, 4096,  1, 0, 0, 2, 0, 1, 0, 0));
    v.push_back(spec("roms",      "CPU2017", 210, 8192,  1, 0, 2, 0, 0, 0, 0, 0, 1));
    v.push_back(spec("x264",      "CPU2017", 211, 4096,  0, 1, 0, 2, 0, 0, 1, 0));
    v.push_back(spec("xalan",     "CPU2017", 212, 4096,  0, 1, 0, 0, 1, 2, 0, 0));
    v.push_back(spec("xz",        "CPU2017", 213, 4096,  0, 1, 0, 0, 0, 1, 2, 0));

    v.push_back(spec("cholesky",  "SPLASH3", 301, 4096,  1, 0, 0, 1, 0, 0, 0, 1));
    v.push_back(spec("fft",       "SPLASH3", 302, 8192,  1, 0, 1, 0, 0, 0, 0, 0, 1));
    v.push_back(spec("lu-cg",     "SPLASH3", 303, 4096,  1, 2, 0, 1, 0, 0, 0, 0));
    v.push_back(spec("ocean-ng",  "SPLASH3", 304, 16384, 0, 0, 2, 0, 0, 0, 0, 0, 1));
    v.push_back(spec("radiosity", "SPLASH3", 305, 4096,  0, 0, 0, 1, 1, 2, 0, 0));
    v.push_back(spec("radix",     "SPLASH3", 306, 8192,  0, 2, 0, 0, 0, 0, 2, 0));
    v.push_back(spec("water-sp",  "SPLASH3", 307, 4096,  1, 0, 0, 2, 0, 0, 0, 0));
    return v;
}

/** Rough dynamic instructions per element for each kernel. */
constexpr double kStreamCost = 12.5;  // per element (unroll 4)
constexpr double kCopyCost = 11.0;
constexpr double kStencilCost = 14.0;
constexpr double kReduceCost = 10.0;
constexpr double kChaseCost = 8.0;
constexpr double kBranchyCost = 15.0;
constexpr double kHistCost = 15.0;

} // namespace

const std::vector<WorkloadSpec> &
workloadSuite()
{
    static const std::vector<WorkloadSpec> suite = makeSuite();
    return suite;
}

const WorkloadSpec &
findWorkload(const std::string &suite, const std::string &name)
{
    for (const WorkloadSpec &s : workloadSuite())
        if (s.suite == suite && s.name == name)
            return s;
    fatal("unknown workload %s/%s", suite.c_str(), name.c_str());
}

std::unique_ptr<Module>
buildWorkload(const WorkloadSpec &spec, uint64_t target_dyn_insts)
{
    auto mod = std::make_unique<Module>(spec.suite + "/" + spec.name);
    Rng rng(spec.seed);
    Rng data_rng(spec.seed ^ 0xabcdef12345678ull);

    uint64_t ws = spec.wsWords;
    auto rand_init = [&](uint64_t words) {
        std::vector<int64_t> init(words);
        for (auto &x : init)
            x = static_cast<int64_t>(data_rng.below(1000));
        return init;
    };
    DataObject &arr_a = mod->addData("A", ws, rand_init(ws));
    DataObject &arr_b = mod->addData("B", ws, rand_init(ws));
    DataObject &arr_c = mod->addData("C", ws, rand_init(ws));
    DataObject &arr_d = mod->addData("D", ws);

    // Pointer-chase permutation: one full cycle (Sattolo).
    std::vector<int64_t> perm(ws);
    for (uint64_t i = 0; i < ws; i++)
        perm[i] = static_cast<int64_t>(i);
    for (uint64_t i = ws - 1; i > 0; i--) {
        uint64_t j = data_rng.below(i);
        std::swap(perm[i], perm[j]);
    }
    DataObject &arr_next = mod->addData("Next", ws, std::move(perm));
    DataObject &arr_hist = mod->addData("H", 256);
    DataObject &arr_out = mod->addData("Out", 64);

    // Large working sets are walked one cache line per element so
    // their capacity misses show at modest instruction budgets.
    int stride_shift = ws >= 8192 ? 6 : 3;
    int64_t max_elems =
        static_cast<int64_t>(ws >> (stride_shift - 3)) - 4;
    int64_t trips = std::min<int64_t>(spec.kernelTrips, max_elems);

    // Estimate the cost of one outer iteration to hit the target.
    double per_iter =
        spec.stream * kStreamCost * static_cast<double>(trips) +
        spec.copy * kCopyCost * static_cast<double>(trips) +
        spec.stencil * kStencilCost * static_cast<double>(trips) +
        spec.reduce * kReduceCost * static_cast<double>(trips) +
        spec.ptrchase * kChaseCost * static_cast<double>(trips) +
        spec.branchy * kBranchyCost * static_cast<double>(trips) +
        spec.hist * kHistCost * static_cast<double>(trips) +
        spec.spill * (4.0 * 8 + 10) * static_cast<double>(trips) +
        spec.bigbody * 14.0 * static_cast<double>(trips);
    TP_ASSERT(per_iter > 0, "workload %s has no kernels",
              spec.name.c_str());
    int64_t outer = std::max<int64_t>(
        1, static_cast<int64_t>(
               static_cast<double>(target_dyn_insts) / per_iter));

    Function &fn = mod->addFunction("main");
    IRBuilder b(fn);
    KernelCtx ctx{*mod, b, rng, stride_shift};

    BlockId entry = b.newBlock("entry");
    b.setBlock(entry);
    Reg oc = b.reg();
    b.liTo(oc, 0);
    BlockId outer_head = b.newBlock("outer.head");
    b.jmp(outer_head);
    b.setBlock(outer_head);

    // Emit the kernel mix; interleave kinds for variety.
    int out_slot = 0;
    for (int k = 0; k < spec.stream; k++)
        emitStream(ctx, arr_a, arr_b, arr_c, trips);
    for (int k = 0; k < spec.copy; k++)
        emitCopy(ctx, k % 2 ? arr_d : arr_b, k % 2 ? arr_c : arr_a,
                 trips);
    for (int k = 0; k < spec.stencil; k++)
        emitStencil(ctx, arr_d, arr_b, trips);
    for (int k = 0; k < spec.reduce; k++)
        emitReduce(ctx, k % 2 ? arr_c : arr_a, arr_out, out_slot++,
                   trips);
    for (int k = 0; k < spec.ptrchase; k++)
        emitPtrChase(ctx, arr_next, arr_out, out_slot++, trips);
    for (int k = 0; k < spec.branchy; k++)
        emitBranchy(ctx, arr_a, arr_d,
                    250 + 100 * k, trips);
    for (int k = 0; k < spec.hist; k++)
        emitHist(ctx, k % 2 ? arr_b : arr_a, arr_hist, trips);
    for (int k = 0; k < spec.spill; k++)
        emitSpillPressure(ctx, arr_b, arr_out, 8, 13, trips);
    for (int k = 0; k < spec.bigbody; k++) {
        emitBigBody(ctx, arr_d, arr_b, arr_c, arr_out, out_slot,
                    trips);
        out_slot += 3;
    }

    // Close the outer loop.
    b.binImmTo(Op::Add, oc, oc, 1);
    Reg c = b.binImm(Op::CmpLt, oc, outer);
    BlockId exit = b.newBlock("exit");
    b.br(c, outer_head, exit);
    b.setBlock(exit);
    b.halt();

    return mod;
}

} // namespace turnpike
