/**
 * @file
 * Umbrella header: the public API surface of the Turnpike library.
 *
 * Most users only need this header plus the three-call flow:
 *
 *   const WorkloadSpec &spec = findWorkload("CPU2006", "mcf");
 *   ResilienceConfig cfg = ResilienceConfig::turnpike(10);
 *   RunResult r = runWorkload(spec, cfg, 200000);
 *
 * Lower layers (IR construction, individual passes, the pipeline
 * simulator, fault injection) are exposed for tools, tests and
 * research extensions; see DESIGN.md for the module map.
 */

#ifndef TURNPIKE_TURNPIKE_HH_
#define TURNPIKE_TURNPIKE_HH_

// End-to-end API: configurations, compile+simulate runner.
#include "core/compiler.hh"
#include "core/config.hh"
#include "core/hwcost.hh"
#include "core/runner.hh"

// Workload suite.
#include "workloads/kernels.hh"
#include "workloads/suite.hh"

// Compiler layers.
#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "machine/minterp.hh"
#include "machine/mprinter.hh"
#include "machine/mverifier.hh"

// Simulator layers.
#include "sim/fault_injector.hh"
#include "sim/pipeline.hh"
#include "sim/sensors.hh"
#include "sim/trace.hh"

#endif // TURNPIKE_TURNPIKE_HH_
