/**
 * @file
 * Checkpoint-aware local instruction scheduling (paper §4.2): list
 * scheduling within each boundary-delimited segment of a basic
 * block, modelling an in-order pipeline with full forwarding. The
 * scheduler hoists independent instructions between a register
 * update (especially a load) and its dependent checkpoint store so
 * the store no longer stalls on the data hazard (Fig. 11).
 */

#ifndef TURNPIKE_PASSES_INSTRUCTION_SCHEDULING_HH_
#define TURNPIKE_PASSES_INSTRUCTION_SCHEDULING_HH_

#include <cstdint>

#include "ir/function.hh"

namespace turnpike {

/**
 * Schedule every block of @p fn. Returns the number of instructions
 * that changed position.
 */
uint64_t runInstructionScheduling(Function &fn);

} // namespace turnpike

#endif // TURNPIKE_PASSES_INSTRUCTION_SCHEDULING_HH_
