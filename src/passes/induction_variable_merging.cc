#include "passes/induction_variable_merging.hh"

#include <algorithm>

#include "ir/dominators.hh"
#include "ir/liveness.hh"
#include "ir/loop_info.hh"
#include "passes/loop_utils.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {

/**
 * Find one mergeable basic IV in @p fn and merge it. Returns true
 * if a merge happened (analyses must then be rebuilt).
 */
bool
mergeOneIv(Function &fn)
{
    Cfg cfg(fn);
    DominatorTree dt(cfg);
    LoopInfo li(cfg, dt);
    Liveness live(cfg);

    for (const Loop &loop : li.loops()) {
        if (loop.preheader == kNoBlock)
            continue;
        auto ivs = findBasicIvs(fn, loop);
        if (ivs.size() < 2)
            continue;

        for (const BasicIv &p : ivs) {
            if (p.preheaderDef == SIZE_MAX)
                continue;
            // The merge target must be dead at every loop exit: after
            // merging, the register keeps its pre-loop value.
            bool dead_outside = true;
            for (BlockId b : loop.blocks) {
                for (BlockId s : fn.block(b).succs()) {
                    bool inside = std::find(loop.blocks.begin(),
                                            loop.blocks.end(), s) !=
                        loop.blocks.end();
                    if (!inside && live.liveIn(s).contains(p.reg))
                        dead_outside = false;
                }
            }
            if (!dead_outside)
                continue;

            // Find an anchor IV i with p.step == i.step << k and a
            // statically known init (preheader Li).
            for (const BasicIv &anchor : ivs) {
                if (anchor.reg == p.reg)
                    continue;
                if (anchor.incBlock != p.incBlock)
                    continue;
                if (anchor.step == 0 || p.step % anchor.step != 0)
                    continue;
                int k = log2Exact(p.step / anchor.step);
                if (k < 0)
                    continue;
                if (anchor.preheaderDef == SIZE_MAX)
                    continue;
                const Instruction &init =
                    fn.block(loop.preheader).insts()[anchor.preheaderDef];
                if (init.op != Op::Li)
                    continue;
                int64_t i_init = init.imm;

                // All uses of p in the loop (besides its own
                // increment) must see the same completed-iteration
                // count for p and the anchor: uses in the increment
                // block must precede both increments; uses in other
                // blocks are fine when the increments sit in a latch.
                size_t first_inc = std::min(p.incIndex, anchor.incIndex);
                bool latch_incs =
                    std::find(loop.latches.begin(), loop.latches.end(),
                              p.incBlock) != loop.latches.end();
                bool ok = true;
                std::vector<std::pair<BlockId, size_t>> uses;
                for (BlockId b : loop.blocks) {
                    const BasicBlock &blk = fn.block(b);
                    for (size_t idx = 0; idx < blk.size(); idx++) {
                        const Instruction &inst = blk.insts()[idx];
                        if (b == p.incBlock && idx == p.incIndex)
                            continue; // p's own increment
                        if (!inst.reads(p.reg))
                            continue;
                        if (b == p.incBlock) {
                            if (idx >= first_inc) {
                                ok = false;
                                break;
                            }
                        } else if (!latch_incs) {
                            ok = false;
                            break;
                        }
                        // Also require the anchor to be unchanged
                        // before this point within the use block.
                        uses.push_back({b, idx});
                    }
                    if (!ok)
                        break;
                }
                if (!ok || uses.empty())
                    continue;

                // Profitability: merging removes one checkpoint
                // store (and the increment) per iteration but adds
                // recomputation at every use. Only merge when the
                // added ALU work stays small, as in Fig. 8 where the
                // merged variable has a single use.
                int per_use = 1 + (i_init != 0 ? 1 : 0);
                int added = static_cast<int>(uses.size()) * per_use - 1;
                if (added > 3)
                    continue;

                // Perform the merge: rewrite each use of p as
                // p + ((anchor - i_init) << k), then delete p's
                // increment. Process uses back-to-front per block so
                // insertions do not shift pending indices.
                std::sort(uses.begin(), uses.end(),
                          [](const auto &a, const auto &b) {
                              if (a.first != b.first)
                                  return a.first > b.first;
                              return a.second > b.second;
                          });
                for (auto [b, idx] : uses) {
                    BasicBlock &blk = fn.block(b);
                    Reg diff;
                    size_t at = idx;
                    if (i_init == 0) {
                        diff = anchor.reg;
                    } else {
                        diff = fn.newReg();
                        blk.insertAt(at++, makeBinImm(Op::Sub, diff,
                                                      anchor.reg,
                                                      i_init));
                    }
                    // ARM-style add with shifted operand: the whole
                    // recompute is one single-cycle instruction, as
                    // in the paper's Fig. 8(c).
                    Reg sum = fn.newReg();
                    Instruction addshl;
                    addshl.op = Op::AddShl;
                    addshl.dst = sum;
                    addshl.src0 = p.reg;
                    addshl.src1 = diff;
                    addshl.imm = k;
                    blk.insertAt(at++, addshl);
                    Instruction &use = blk.insts()[at];
                    if (use.src0 == p.reg)
                        use.src0 = sum;
                    if (use.src1 == p.reg)
                        use.src1 = sum;
                }
                // Delete p's increment (indices in its block moved if
                // uses were rewritten earlier in the same block).
                BasicBlock &incb = fn.block(p.incBlock);
                for (size_t idx = 0; idx < incb.size(); idx++) {
                    const Instruction &inst = incb.insts()[idx];
                    if (inst.op == Op::Add && inst.dst == p.reg &&
                        inst.src0 == p.reg && inst.src1 == kNoReg &&
                        inst.imm == p.step) {
                        incb.eraseAt(idx);
                        break;
                    }
                }
                return true;
            }
        }
    }
    return false;
}

} // namespace

uint64_t
runInductionVariableMerging(Function &fn)
{
    uint64_t merged = 0;
    while (merged < 64 && mergeOneIv(fn))
        merged++;
    return merged;
}

} // namespace turnpike
