#include "passes/checkpoint_sinking.hh"

#include <algorithm>
#include <set>

#include "ir/dominators.hh"
#include "ir/loop_info.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {

/** True when no block of @p loop contains a Boundary. */
bool
loopBoundaryFree(const Function &fn, const Loop &loop)
{
    for (BlockId b : loop.blocks)
        for (const Instruction &inst : fn.block(b).insts())
            if (inst.op == Op::Boundary)
                return false;
    return true;
}

} // namespace

SinkStats
runCheckpointSinking(Function &fn)
{
    SinkStats stats;

    // --- Loop sinking -------------------------------------------------
    {
        Cfg cfg(fn);
        DominatorTree dt(cfg);
        LoopInfo li(cfg, dt);
        // Outermost-first: sinking from an outer loop also removes
        // checkpoints of its inner loops in one step.
        std::vector<const Loop *> loops;
        for (const Loop &loop : li.loops())
            loops.push_back(&loop);
        std::sort(loops.begin(), loops.end(),
                  [](const Loop *a, const Loop *b) {
                      return a->depth < b->depth;
                  });
        for (const Loop *loop : loops) {
            if (loop->exit == kNoBlock)
                continue;
            if (!loopBoundaryFree(fn, *loop))
                continue;
            // Remove every checkpoint in the body, remembering the
            // registers, then re-checkpoint once at the exit.
            std::set<Reg> sunk;
            for (BlockId b : loop->blocks) {
                auto &insts = fn.block(b).insts();
                std::vector<Instruction> out;
                out.reserve(insts.size());
                for (const Instruction &inst : insts) {
                    if (inst.op == Op::Ckpt) {
                        sunk.insert(inst.src0);
                        stats.loopSunk++;
                        continue;
                    }
                    out.push_back(inst);
                }
                insts = std::move(out);
            }
            size_t at = 0;
            for (Reg r : sunk)
                fn.block(loop->exit).insertAt(at++, makeCkpt(r));
        }
    }

    // --- Block sinking ------------------------------------------------
    for (BlockId b = 0; b < fn.numBlocks(); b++) {
        auto &insts = fn.block(b).insts();
        // Process checkpoints bottom-up so each sinks as far as the
        // already-settled ones allow.
        for (size_t i = insts.size(); i > 0; i--) {
            size_t idx = i - 1;
            if (insts[idx].op != Op::Ckpt)
                continue;
            Reg r = insts[idx].src0;
            // Find the sink limit: before the next boundary, the
            // terminator, a redefinition of r, or any other store-
            // class instruction. Never crossing stores/checkpoints
            // keeps the per-region store counts invariant (the
            // budget repair relies on that) and avoids piling
            // checkpoints into store-buffer-overflowing runs; a
            // small distance cap is enough to open the data-hazard
            // window (the scheduler does the rest).
            size_t limit = idx;
            for (size_t j = idx + 1;
                 j < insts.size() && j <= idx + 6; j++) {
                const Instruction &inst = insts[j];
                if (inst.op == Op::Boundary || isTerminator(inst.op) ||
                    inst.writes(r) || inst.op == Op::Ckpt ||
                    inst.op == Op::Store) {
                    break;
                }
                limit = j;
            }
            if (limit > idx) {
                Instruction ck = insts[idx];
                insts.erase(insts.begin() +
                            static_cast<ptrdiff_t>(idx));
                insts.insert(insts.begin() +
                             static_cast<ptrdiff_t>(limit), ck);
                stats.blockSunk++;
            }
        }
        // Dedup: an earlier checkpoint of r is redundant when another
        // checkpoint of r follows with no intervening def of r.
        for (size_t i = 0; i < insts.size(); i++) {
            if (insts[i].op != Op::Ckpt)
                continue;
            Reg r = insts[i].src0;
            for (size_t j = i + 1; j < insts.size(); j++) {
                if (insts[j].writes(r) || insts[j].op == Op::Boundary)
                    break;
                if (insts[j].op == Op::Ckpt && insts[j].src0 == r) {
                    insts.erase(insts.begin() +
                                static_cast<ptrdiff_t>(i));
                    i--;
                    stats.deduped++;
                    break;
                }
            }
        }
    }
    return stats;
}

} // namespace turnpike
