/**
 * @file
 * Pass sequencing utilities: a tiny pipeline driver that verifies the
 * IR between passes and collects per-pass statistics, plus a generic
 * dead-code-elimination cleanup used by several transforms.
 */

#ifndef TURNPIKE_PASSES_PASS_MANAGER_HH_
#define TURNPIKE_PASSES_PASS_MANAGER_HH_

#include <functional>
#include <string>
#include <vector>

#include "ir/function.hh"
#include "util/stats.hh"

namespace turnpike {

/**
 * Orders the passes applied to one function and records statistics.
 * Each step is a named callable; after every step the IR verifier
 * runs (panicking on structural damage) so a broken pass is caught
 * at its source.
 */
class PassPipeline
{
  public:
    using PassFn = std::function<void(Function &, StatSet &)>;

    /** Append a named pass. */
    void add(const std::string &name, PassFn fn);

    /** Run all passes over @p fn in order. */
    void run(Function &fn);

    /** Statistics accumulated by the passes. */
    const StatSet &stats() const { return stats_; }
    StatSet &stats() { return stats_; }

  private:
    struct Step { std::string name; PassFn fn; };
    std::vector<Step> steps_;
    StatSet stats_;
};

/**
 * Remove instructions whose destination is never read and that have
 * no side effects (not stores, checkpoints, boundaries, or
 * terminators). Iterates to a fixpoint. Returns the number of
 * instructions removed.
 */
uint64_t runDeadCodeElimination(Function &fn);

} // namespace turnpike

#endif // TURNPIKE_PASSES_PASS_MANAGER_HH_
