/**
 * @file
 * Linear-scan register allocation with optional store-aware spill
 * costs (paper §4.1.1). The classic allocator weighs reads and
 * writes equally when picking spill victims; the store-aware variant
 * multiplies the write frequency so frequently-written variables
 * stay in registers, eliminating spill *stores* that would otherwise
 * pressure the store buffer.
 *
 * After this pass the function operates on physical registers
 * (ids < kNumPhysRegs): vregs are rewritten, spill code is inserted
 * against the frame pointer (r31), and fn.numRegs() == 32.
 */

#ifndef TURNPIKE_PASSES_REGISTER_ALLOCATION_HH_
#define TURNPIKE_PASSES_REGISTER_ALLOCATION_HH_

#include <cstdint>

#include "ir/function.hh"

namespace turnpike {

/** Options controlling allocation. */
struct RaOptions
{
    /** Physical registers available to the allocator (r0..rN-1). */
    uint32_t numAllocatable = 20;
    /**
     * Multiplier on the write-frequency term of the spill cost.
     * 1.0 reproduces the classic allocator; Turnpike uses > 1.
     */
    double writeCostFactor = 1.0;
};

/** Allocation statistics. */
struct RaStats
{
    uint64_t spilledVregs = 0;
    uint64_t spillStores = 0; ///< static spill stores inserted
    uint64_t spillLoads = 0;  ///< static reloads inserted
};

/**
 * Allocate registers for @p fn in place. Requires virtual-register
 * form (no Boundary/Ckpt instructions yet).
 */
RaStats runRegisterAllocation(Function &fn, const RaOptions &opts);

} // namespace turnpike

#endif // TURNPIKE_PASSES_REGISTER_ALLOCATION_HH_
