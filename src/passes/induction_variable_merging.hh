/**
 * @file
 * Loop induction variable merging (LIVM, paper §4.1.2): turns a
 * basic induction variable whose value is an affine function of
 * another basic IV back into an induced (computed) variable. This
 * removes the loop-carried dependence that made the variable
 * live-out — and hence removed its per-iteration checkpoint —
 * at the cost of recomputing the value at each use (Fig. 8(c)).
 */

#ifndef TURNPIKE_PASSES_INDUCTION_VARIABLE_MERGING_HH_
#define TURNPIKE_PASSES_INDUCTION_VARIABLE_MERGING_HH_

#include <cstdint>

#include "ir/function.hh"

namespace turnpike {

/**
 * Apply LIVM across all loops of @p fn. Returns the number of basic
 * induction variables merged away.
 */
uint64_t runInductionVariableMerging(Function &fn);

} // namespace turnpike

#endif // TURNPIKE_PASSES_INDUCTION_VARIABLE_MERGING_HH_
