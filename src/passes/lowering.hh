/**
 * @file
 * Lowering: linearize a fully-compiled (physical-register, region-
 * annotated) function into a MachineFunction, resolving branch
 * targets and generating each region's recovery program from the
 * live-in sets and the pruning recipes.
 */

#ifndef TURNPIKE_PASSES_LOWERING_HH_
#define TURNPIKE_PASSES_LOWERING_HH_

#include "ir/function.hh"
#include "machine/mfunction.hh"
#include "passes/checkpoint_pruning.hh"

namespace turnpike {

/**
 * Lower @p fn. @p prune carries the reconstruction recipes recorded
 * by checkpoint pruning (pass an empty result when pruning did not
 * run).
 */
MachineFunction lowerFunction(const Function &fn,
                              const PruneResult &prune);

} // namespace turnpike

#endif // TURNPIKE_PASSES_LOWERING_HH_
