#include "passes/eager_checkpointing.hh"

#include <vector>

#include "ir/cfg.hh"
#include "ir/liveness.hh"
#include "machine/minstr.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {

/**
 * Backward transfer of the NB set through one block, optionally
 * recording the NB value immediately after each instruction.
 */
RegSet
transferBlock(const Function &fn, const Liveness &live, BlockId b,
              const RegSet &nb_out, std::vector<RegSet> *after)
{
    const BasicBlock &blk = fn.block(b);
    RegSet nb = nb_out;
    if (after)
        after->assign(blk.size(), RegSet(fn.numRegs()));
    for (size_t i = blk.size(); i > 0; i--) {
        const Instruction &inst = blk.insts()[i - 1];
        if (after)
            (*after)[i - 1] = nb;
        if (inst.op == Op::Boundary) {
            // Everything live at the boundary must be recoverable
            // there; defs before it feed this set.
            nb = live.liveBefore(b, i - 1);
        } else if (writesDst(inst.op) && inst.dst != kNoReg) {
            nb.erase(inst.dst);
        }
    }
    return nb;
}

} // namespace

CkptStats
runEagerCheckpointing(Function &fn)
{
    CkptStats stats;
    Cfg cfg(fn);
    Liveness live(cfg);
    uint32_t n = fn.numRegs();

    // Block-level fixpoint for NB-in of each block.
    std::vector<RegSet> nb_in(fn.numBlocks(), RegSet(n));
    bool changed = true;
    while (changed) {
        changed = false;
        const auto &rpo = cfg.rpo();
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            BlockId b = *it;
            RegSet nb_out(n);
            for (BlockId s : fn.block(b).succs())
                nb_out.unionWith(nb_in[s]);
            RegSet in = transferBlock(fn, live, b, nb_out, nullptr);
            if (!(in == nb_in[b])) {
                nb_in[b] = in;
                changed = true;
            }
        }
    }

    // Insertion sweep: rebuild each block, appending a checkpoint
    // after every def whose register is in NB at that point.
    for (BlockId b : cfg.rpo()) {
        BasicBlock &blk = fn.block(b);
        RegSet nb_out(n);
        for (BlockId s : blk.succs())
            nb_out.unionWith(nb_in[s]);
        std::vector<RegSet> after;
        transferBlock(fn, live, b, nb_out, &after);

        std::vector<Instruction> out;
        out.reserve(blk.size() + 8);
        for (size_t i = 0; i < blk.size(); i++) {
            const Instruction &inst = blk.insts()[i];
            out.push_back(inst);
            if (writesDst(inst.op) && inst.dst != kNoReg &&
                inst.dst != kFramePointer &&
                after[i].contains(inst.dst)) {
                out.push_back(makeCkpt(inst.dst));
                stats.inserted++;
            }
            // Note: registers that are live-in at the function entry
            // (read before any definition) need no explicit
            // checkpoint: registers start at zero and so do their
            // never-written checkpoint slots, so the recovery
            // engine's LoadCkpt fallback restores the correct
            // initial value for free.
        }
        blk.insts() = std::move(out);
    }
    return stats;
}

uint64_t
removeAllCheckpoints(Function &fn)
{
    uint64_t removed = 0;
    for (BlockId b = 0; b < fn.numBlocks(); b++) {
        auto &insts = fn.block(b).insts();
        std::vector<Instruction> out;
        out.reserve(insts.size());
        for (const Instruction &inst : insts) {
            if (inst.op == Op::Ckpt) {
                removed++;
                continue;
            }
            out.push_back(inst);
        }
        insts = std::move(out);
    }
    return removed;
}

} // namespace turnpike
