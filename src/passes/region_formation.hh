/**
 * @file
 * Store-buffer-aware region partitioning (Turnstile §2.1, Turnpike
 * §4.3.1) and the RegionMap analysis that later passes use to map
 * program points to static regions.
 *
 * Region formation inserts Boundary markers so that no path between
 * two consecutive boundaries carries more than a store budget
 * (SB size / 2 by default, so one region's verification can overlap
 * the next region's execution). Boundaries are also placed in every
 * loop header — except, when the LICM option is enabled, headers of
 * loops whose bodies are store-free, which allows whole loops to
 * live inside a single region (enabling checkpoint sinking out of
 * loop bodies, §4.1.4).
 */

#ifndef TURNPIKE_PASSES_REGION_FORMATION_HH_
#define TURNPIKE_PASSES_REGION_FORMATION_HH_

#include <cstdint>

#include "ir/cfg.hh"
#include "ir/liveness.hh"

namespace turnpike {

/** Region id assigned to program points reachable from multiple
 *  regions (path-insensitive join). */
constexpr uint32_t kMixedRegion = 0xfffffffeu;

/** Options for region formation. */
struct RegionFormationOptions
{
    /** Maximum regular stores per region on any path. */
    uint32_t storeBudget = 2;
    /**
     * When true, loop headers of store-free loops get no boundary,
     * letting the whole loop fall into one region (the enabler for
     * LICM checkpoint sinking).
     */
    bool keepStoreFreeLoopsWhole = false;
};

/**
 * Insert region boundaries into @p fn; returns the number of static
 * regions created (boundary ids are 0..n-1, with region 0 starting
 * at the function entry). Also records the count in
 * fn.setNumRegions().
 */
uint32_t runRegionFormation(Function &fn,
                            const RegionFormationOptions &opts);

/**
 * Post-checkpointing budget repair: if any path between boundaries
 * carries more than @p hard_budget stores (checkpoints included) —
 * which could deadlock a @p hard_budget-entry gated store buffer —
 * insert one boundary before the offending store. Returns true when
 * a boundary was inserted (caller re-runs checkpointing and calls
 * again until clean).
 */
bool repairRegionBudget(Function &fn, uint32_t hard_budget);

/**
 * Static-region membership analysis: for each program point, which
 * region is live there (the id of the last boundary crossed), or
 * kMixedRegion when paths disagree. Built on demand after any pass
 * that moves code.
 */
class RegionMap
{
  public:
    explicit RegionMap(const Function &fn);

    /** Region in effect at entry to block @p b (before its first
     *  instruction). */
    uint32_t regionAtEntry(BlockId b) const { return entry_[b]; }

    /**
     * Region in effect immediately before instruction @p index of
     * block @p b.
     */
    uint32_t regionBefore(BlockId b, size_t index) const;

    /** Region in effect after the last instruction of @p b. */
    uint32_t regionAtExit(BlockId b) const { return exit_[b]; }

    /**
     * Position of the boundary instruction that starts @p region.
     * Scanned fresh so it stays valid while instruction indices
     * shift. Panics when the region does not exist.
     */
    void boundaryPos(uint32_t region, BlockId &block,
                     size_t &index) const;

    /** Number of boundary instructions found. */
    uint32_t numRegions() const { return num_regions_; }

  private:
    const Function &fn_;
    std::vector<uint32_t> entry_;
    std::vector<uint32_t> exit_;
    uint32_t num_regions_ = 0;
};

} // namespace turnpike

#endif // TURNPIKE_PASSES_REGION_FORMATION_HH_
