#include "passes/lowering.hh"

#include <algorithm>
#include <map>

#include "ir/cfg.hh"
#include "ir/liveness.hh"
#include "machine/mverifier.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {

/** Splice @p recipe into @p prog, renumbering temps by @p offset. */
void
spliceRecipe(RecoveryProgram &prog, const RecoveryProgram &recipe,
             int offset)
{
    for (RecoveryOp op : recipe) {
        op.t += offset;
        op.a += offset;
        if (op.kind == RecoveryOp::Kind::Bin && !op.bImm)
            op.b += offset;
        prog.push_back(op);
    }
}

/** Largest temp index used by @p recipe, plus one. */
int
recipeTemps(const RecoveryProgram &recipe)
{
    int max_t = -1;
    for (const RecoveryOp &op : recipe) {
        max_t = std::max(max_t, op.t);
        max_t = std::max(max_t, op.a);
        if (op.kind == RecoveryOp::Kind::Bin && !op.bImm)
            max_t = std::max(max_t, op.b);
    }
    return max_t + 1;
}

} // namespace

MachineFunction
lowerFunction(const Function &fn, const PruneResult &prune)
{
    MachineFunction mf(fn.name());
    Cfg cfg(fn);
    Liveness live(cfg);

    // Layout blocks in RPO (entry first by construction of RPO).
    const auto &layout_order = cfg.rpo();
    std::map<BlockId, uint32_t> block_pc;

    // First pass: assign PCs, emitting fall-through jumps where the
    // layout breaks a Br's implicit fall-through or a Jmp's target
    // adjacency.
    struct Pending { size_t codeIndex; BlockId targetBlock; };
    std::vector<Pending> fixups;
    auto &code = mf.code();

    for (size_t li = 0; li < layout_order.size(); li++) {
        BlockId b = layout_order[li];
        block_pc[b] = static_cast<uint32_t>(code.size());
        const BasicBlock &blk = fn.block(b);
        BlockId next_block =
            li + 1 < layout_order.size() ? layout_order[li + 1]
                                         : kNoBlock;
        for (size_t i = 0; i < blk.size(); i++) {
            const Instruction &inst = blk.insts()[i];
            MInstr mi;
            static_cast<Instruction &>(mi) = inst;
            switch (inst.op) {
              case Op::Br: {
                TP_ASSERT(blk.succs().size() == 2,
                          "br without two successors");
                fixups.push_back({code.size(), blk.succs()[0]});
                code.push_back(mi);
                if (blk.succs()[1] != next_block) {
                    MInstr j;
                    j.op = Op::Jmp;
                    fixups.push_back({code.size(), blk.succs()[1]});
                    code.push_back(j);
                }
                break;
              }
              case Op::Jmp: {
                TP_ASSERT(blk.succs().size() == 1,
                          "jmp without one successor");
                if (blk.succs()[0] != next_block) {
                    fixups.push_back({code.size(), blk.succs()[0]});
                    code.push_back(mi);
                }
                // Adjacent target: the jump disappears.
                break;
              }
              default:
                code.push_back(mi);
                break;
            }
        }
    }

    for (const Pending &p : fixups)
        code[p.codeIndex].target = block_pc.at(p.targetBlock);

    // Region metadata. Region ids are dense (formation assigns them
    // sequentially), so size by max id + 1.
    uint32_t num_regions = 0;
    for (const MInstr &mi : code)
        if (mi.op == Op::Boundary)
            num_regions = std::max(
                num_regions, static_cast<uint32_t>(mi.imm) + 1);
    mf.regions().resize(num_regions);

    // Live-ins are computed on the CFG form; map boundaries back by
    // walking blocks in the same order used for emission.
    std::map<uint32_t, RegSet> region_live;
    for (BlockId b : layout_order) {
        const BasicBlock &blk = fn.block(b);
        for (size_t i = 0; i < blk.size(); i++) {
            const Instruction &inst = blk.insts()[i];
            if (inst.op == Op::Boundary)
                region_live.emplace(static_cast<uint32_t>(inst.imm),
                                    live.liveBefore(b, i));
        }
    }
    for (size_t pc = 0; pc < code.size(); pc++) {
        if (code[pc].op != Op::Boundary)
            continue;
        uint32_t rid = static_cast<uint32_t>(code[pc].imm);
        RegionMeta &rm = mf.regions()[rid];
        rm.entryPc = static_cast<uint32_t>(pc);

        auto live_it = region_live.find(rid);
        TP_ASSERT(live_it != region_live.end(),
                  "boundary %u lost its live set", rid);
        RecoveryProgram &prog = rm.recovery;
        int next_temp = 0;

        // Rematerialize the frame pointer first.
        {
            RecoveryOp li_op;
            li_op.kind = RecoveryOp::Kind::Li;
            li_op.t = next_temp;
            li_op.imm = static_cast<int64_t>(layout::kSpillBase);
            prog.push_back(li_op);
            RecoveryOp commit;
            commit.kind = RecoveryOp::Kind::CommitReg;
            commit.t = next_temp;
            commit.reg = kFramePointer;
            prog.push_back(commit);
            next_temp++;
        }

        for (Reg r : live_it->second.toVector()) {
            if (r == kFramePointer)
                continue;
            rm.liveIns.push_back(r);
            auto g = prune.governed.find({rid, r});
            if (g != prune.governed.end()) {
                rm.prunedLiveIns++;
                spliceRecipe(prog, g->second, next_temp);
                next_temp += recipeTemps(g->second);
            } else {
                RecoveryOp ld;
                ld.kind = RecoveryOp::Kind::LoadCkpt;
                ld.t = next_temp;
                ld.reg = r;
                prog.push_back(ld);
                RecoveryOp commit;
                commit.kind = RecoveryOp::Kind::CommitReg;
                commit.t = next_temp;
                commit.reg = r;
                prog.push_back(commit);
                next_temp++;
            }
        }
    }

    verifyOrDie(mf);
    return mf;
}

} // namespace turnpike
