#include "passes/register_allocation.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "ir/dominators.hh"
#include "ir/liveness.hh"
#include "ir/loop_info.hh"
#include "machine/minstr.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {

/** First spill-reload scratch register. */
constexpr Reg kScratch0 = 29;
/** Second spill-reload scratch register. */
constexpr Reg kScratch1 = 30;

struct Interval
{
    Reg vreg = kNoReg;
    int64_t start = INT64_MAX;
    int64_t end = INT64_MIN;
    double cost = 0.0;
    Reg phys = kNoReg;   ///< assigned physical register
    bool spilled = false;

    bool live() const { return start <= end; }
};

} // namespace

RaStats
runRegisterAllocation(Function &fn, const RaOptions &opts)
{
    TP_ASSERT(opts.numAllocatable >= 2 &&
              opts.numAllocatable <= kScratch0 - 1,
              "allocatable register count %u out of range",
              opts.numAllocatable);
    RaStats stats;

    Cfg cfg(fn);
    DominatorTree dt(cfg);
    LoopInfo li(cfg, dt);
    Liveness live(cfg);

    // Linear numbering of instructions in RPO block order.
    std::vector<std::pair<BlockId, int64_t>> block_start;
    int64_t pos = 0;
    std::map<BlockId, std::pair<int64_t, int64_t>> block_range;
    for (BlockId b : cfg.rpo()) {
        int64_t s = pos;
        pos += static_cast<int64_t>(fn.block(b).size());
        block_range[b] = {s, pos - 1};
    }

    // Build intervals and spill costs.
    std::vector<Interval> ivs(fn.numRegs());
    for (Reg r = 0; r < fn.numRegs(); r++)
        ivs[r].vreg = r;
    auto extend = [&](Reg r, int64_t p) {
        ivs[r].start = std::min(ivs[r].start, p);
        ivs[r].end = std::max(ivs[r].end, p);
    };
    for (BlockId b : cfg.rpo()) {
        auto [bs, be] = block_range[b];
        double freq = std::pow(8.0, std::min(li.depth(b), 4));
        for (Reg r : live.liveIn(b).toVector())
            extend(r, bs);
        for (Reg r : live.liveOut(b).toVector())
            extend(r, be);
        int64_t p = bs;
        for (const Instruction &inst : fn.block(b).insts()) {
            if (inst.src0 != kNoReg) {
                extend(inst.src0, p);
                ivs[inst.src0].cost += freq;
            }
            if (inst.src1 != kNoReg) {
                extend(inst.src1, p);
                ivs[inst.src1].cost += freq;
            }
            if (writesDst(inst.op) && inst.dst != kNoReg) {
                extend(inst.dst, p);
                ivs[inst.dst].cost += freq * opts.writeCostFactor;
            }
            p++;
        }
    }

    // Linear scan (Poletto/Sarkar) with cost-aware spill choice.
    std::vector<Interval *> order;
    for (auto &iv : ivs)
        if (iv.live())
            order.push_back(&iv);
    std::sort(order.begin(), order.end(),
              [](const Interval *a, const Interval *b) {
                  return a->start < b->start;
              });

    std::vector<Interval *> active;
    std::vector<Reg> free_regs;
    for (Reg r = 0; r < opts.numAllocatable; r++)
        free_regs.push_back(opts.numAllocatable - 1 - r);

    for (Interval *cur : order) {
        // Expire finished intervals.
        for (size_t i = active.size(); i > 0; i--) {
            if (active[i - 1]->end < cur->start) {
                free_regs.push_back(active[i - 1]->phys);
                active.erase(active.begin() +
                             static_cast<ptrdiff_t>(i - 1));
            }
        }
        if (!free_regs.empty()) {
            cur->phys = free_regs.back();
            free_regs.pop_back();
            active.push_back(cur);
            continue;
        }
        // Pick the cheapest interval (current included) to spill.
        Interval *victim = cur;
        for (Interval *a : active)
            if (a->cost < victim->cost ||
                (a->cost == victim->cost && a->end > victim->end))
                victim = a;
        if (victim != cur) {
            cur->phys = victim->phys;
            victim->phys = kNoReg;
            victim->spilled = true;
            active.erase(std::find(active.begin(), active.end(),
                                   victim));
            active.push_back(cur);
        } else {
            cur->spilled = true;
        }
        stats.spilledVregs++;
    }

    // Assign spill slots.
    std::map<Reg, uint32_t> slot_of;
    uint32_t next_slot = 0;
    for (const auto &iv : ivs)
        if (iv.spilled)
            slot_of[iv.vreg] = next_slot++;

    // Rewrite every block: map operands to physical registers,
    // insert reloads/spill stores around uses/defs of spilled vregs.
    auto phys_of = [&](Reg v) -> Reg {
        TP_ASSERT(v < fn.numRegs(), "RA: bad vreg %u", v);
        TP_ASSERT(ivs[v].phys != kNoReg, "RA: vreg %u unassigned", v);
        return ivs[v].phys;
    };
    for (BlockId b = 0; b < fn.numBlocks(); b++) {
        BasicBlock &blk = fn.block(b);
        std::vector<Instruction> out;
        out.reserve(blk.size() + 8);
        for (Instruction inst : blk.insts()) {
            Reg scratch_for_dst = kScratch0;
            // Reload spilled sources into scratch registers.
            if (inst.src0 != kNoReg) {
                if (ivs[inst.src0].spilled) {
                    out.push_back(makeLoad(
                        kScratch0, kFramePointer,
                        static_cast<int64_t>(
                            slot_of[inst.src0]) * 8));
                    inst.src0 = kScratch0;
                    scratch_for_dst = kScratch1;
                    stats.spillLoads++;
                } else {
                    inst.src0 = phys_of(inst.src0);
                }
            }
            if (inst.src1 != kNoReg) {
                if (ivs[inst.src1].spilled) {
                    Reg s = (inst.src0 == kScratch0) ? kScratch1
                                                     : kScratch0;
                    out.push_back(makeLoad(
                        s, kFramePointer,
                        static_cast<int64_t>(
                            slot_of[inst.src1]) * 8));
                    inst.src1 = s;
                    if (s == kScratch0)
                        scratch_for_dst = kScratch1;
                    stats.spillLoads++;
                } else {
                    inst.src1 = phys_of(inst.src1);
                }
            }
            bool spill_dst = false;
            uint32_t dst_slot = 0;
            if (writesDst(inst.op) && inst.dst != kNoReg) {
                if (ivs[inst.dst].spilled) {
                    dst_slot = slot_of[inst.dst];
                    inst.dst = scratch_for_dst;
                    spill_dst = true;
                } else {
                    inst.dst = phys_of(inst.dst);
                }
            }
            out.push_back(inst);
            if (spill_dst) {
                out.push_back(makeStore(
                    inst.dst, kFramePointer,
                    static_cast<int64_t>(dst_slot) * 8,
                    StoreKind::Spill));
                stats.spillStores++;
            }
        }
        blk.insts() = std::move(out);
    }

    // Materialize the frame pointer at the function entry.
    fn.block(fn.entry()).insertAt(
        0, makeLi(kFramePointer,
                  static_cast<int64_t>(layout::kSpillBase)));

    fn.setNumRegs(kNumPhysRegs);
    return stats;
}

} // namespace turnpike
