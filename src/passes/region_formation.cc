#include "passes/region_formation.hh"

#include <algorithm>
#include <set>

#include "ir/dominators.hh"
#include "ir/loop_info.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {

/** True if any block of @p loop contains a regular store. */
bool
loopHasStores(const Function &fn, const Loop &loop)
{
    for (BlockId b : loop.blocks)
        for (const Instruction &inst : fn.block(b).insts())
            if (inst.op == Op::Store)
                return true;
    return false;
}

/**
 * Forward max-dataflow of "stores on the worst path since the last
 * boundary". Returns per-block entry counts; the caller walks blocks
 * to find concrete cut points. Saturates at @p cap to guarantee a
 * fixpoint even on (illegal) boundary-free cycles with stores.
 */
std::vector<uint32_t>
storeCountsAtEntry(const Function &fn, const Cfg &cfg, uint32_t cap,
                   bool count_ckpts)
{
    std::vector<uint32_t> entry(fn.numBlocks(), 0);
    std::vector<uint32_t> exit(fn.numBlocks(), 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : cfg.rpo()) {
            uint32_t in = 0;
            for (BlockId p : cfg.preds(b))
                if (cfg.reachable(p))
                    in = std::max(in, exit[p]);
            if (in != entry[b]) {
                entry[b] = in;
                changed = true;
            }
            uint32_t count = in;
            for (const Instruction &inst : fn.block(b).insts()) {
                if (inst.op == Op::Boundary) {
                    count = 0;
                } else if (inst.op == Op::Store ||
                           (count_ckpts && inst.op == Op::Ckpt)) {
                    count = std::min(count + 1, cap);
                }
            }
            if (count != exit[b]) {
                exit[b] = count;
                changed = true;
            }
        }
    }
    return entry;
}

} // namespace

uint32_t
runRegionFormation(Function &fn, const RegionFormationOptions &opts)
{
    TP_ASSERT(opts.storeBudget >= 1, "store budget must be positive");
    uint32_t next_region = 0;

    // Region 0 starts at the function entry.
    fn.block(fn.entry()).insertAt(0, makeBoundary(next_region++));

    // Boundaries in loop headers (Turnstile rule), except store-free
    // loops when the LICM enabler is on. A loop may only be kept
    // whole when the number of registers its body defines that are
    // live out of the loop (the future sunk-checkpoint cluster) is
    // small enough that the cluster plus the regular-store budget
    // still fits the store buffer.
    {
        Cfg cfg(fn);
        DominatorTree dt(cfg);
        LoopInfo li(cfg, dt);
        Liveness live(cfg);
        std::set<BlockId> headers;
        for (const Loop &loop : li.loops()) {
            if (opts.keepStoreFreeLoopsWhole &&
                !loopHasStores(fn, loop) && loop.exit != kNoBlock) {
                RegSet defined(fn.numRegs());
                for (BlockId b : loop.blocks)
                    for (const Instruction &inst : fn.block(b).insts())
                        if (writesDst(inst.op) && inst.dst != kNoReg)
                            defined.insert(inst.dst);
                RegSet live_out = live.liveIn(loop.exit);
                RegSet cluster = defined;
                RegSet not_live = defined;
                not_live.subtract(live_out);
                cluster.subtract(not_live);
                if (cluster.count() <= opts.storeBudget)
                    continue; // keep the loop whole
            }
            headers.insert(loop.header);
        }
        for (BlockId h : headers) {
            // Skip if the header already starts with a boundary
            // (e.g. the entry block).
            BasicBlock &blk = fn.block(h);
            if (!blk.insts().empty() &&
                blk.insts()[0].op == Op::Boundary)
                continue;
            blk.insertAt(0, makeBoundary(next_region++));
        }
    }

    // Budget cuts: repeatedly find the first store on a path that
    // would exceed the budget and place a boundary in front of it.
    const uint32_t cap = opts.storeBudget + 2;
    bool inserted = true;
    while (inserted) {
        inserted = false;
        Cfg cfg(fn);
        auto entry = storeCountsAtEntry(fn, cfg, cap, false);
        for (BlockId b : cfg.rpo()) {
            BasicBlock &blk = fn.block(b);
            uint32_t count = entry[b];
            for (size_t i = 0; i < blk.size(); i++) {
                const Instruction &inst = blk.insts()[i];
                if (inst.op == Op::Boundary) {
                    count = 0;
                } else if (inst.op == Op::Store) {
                    if (count + 1 > opts.storeBudget) {
                        // Cut right after the previous store when
                        // one exists in this block segment: that
                        // point carries the fewest live values, so
                        // eager checkpointing adds the fewest
                        // checkpoints for the cut.
                        size_t at = i;
                        for (size_t j = i; j > 0; j--) {
                            const Instruction &cand =
                                blk.insts()[j - 1];
                            if (cand.op == Op::Boundary)
                                break;
                            if (cand.op == Op::Store) {
                                at = j;
                                break;
                            }
                        }
                        blk.insertAt(at, makeBoundary(next_region++));
                        inserted = true;
                        break;
                    }
                    count++;
                }
            }
            if (inserted)
                break;
        }
    }

    fn.setNumRegions(next_region);
    return next_region;
}

bool
repairRegionBudget(Function &fn, uint32_t hard_budget)
{
    Cfg cfg(fn);
    auto entry = storeCountsAtEntry(fn, cfg, hard_budget + 2, true);
    for (BlockId b : cfg.rpo()) {
        BasicBlock &blk = fn.block(b);
        uint32_t count = entry[b];
        for (size_t i = 0; i < blk.size(); i++) {
            const Instruction &inst = blk.insts()[i];
            if (inst.op == Op::Boundary) {
                count = 0;
                continue;
            }
            if (inst.op != Op::Store && inst.op != Op::Ckpt)
                continue;
            if (count + 1 <= hard_budget) {
                count++;
                continue;
            }
            // Choose the split point. The best cut is right after
            // the previous store-class instruction: the values of
            // the offending store's computation chain then stay in
            // one region and need no extra checkpoints.
            size_t at = i;
            for (size_t j = i; j > 0; j--) {
                const Instruction &cand = blk.insts()[j - 1];
                if (cand.op == Op::Boundary)
                    break;
                if (cand.op == Op::Store || cand.op == Op::Ckpt) {
                    at = j;
                    break;
                }
            }
            if (at != i) {
                uint32_t id = fn.numRegions();
                blk.insertAt(at, makeBoundary(id));
                fn.setNumRegions(id + 1);
                return true;
            }
            // No previous store in this block segment: fall back to
            // def-aware placement. A boundary straight in front of a
            // checkpoint would separate it from its defining
            // instruction, and re-running eager checkpointing would
            // recreate the violation; cut before the def instead.
            if (inst.op == Op::Ckpt) {
                // Work out the segment (since the previous boundary
                // in this block) and the checkpoints it holds; the
                // cut goes before the latest of their defs so that
                // re-running eager checkpointing + sinking splits
                // the checkpoint run across the two regions.
                size_t seg_start = 0;
                for (size_t j = i; j > 0; j--) {
                    if (blk.insts()[j - 1].op == Op::Boundary) {
                        seg_start = j;
                        break;
                    }
                }
                size_t best_def = SIZE_MAX;
                for (size_t c = seg_start; c <= i; c++) {
                    const Instruction &ck = blk.insts()[c];
                    if (ck.op != Op::Ckpt)
                        continue;
                    for (size_t j = c; j > seg_start; j--) {
                        const Instruction &cand = blk.insts()[j - 1];
                        if (cand.writes(ck.src0)) {
                            if (best_def == SIZE_MAX ||
                                j - 1 > best_def)
                                best_def = j - 1;
                            break;
                        }
                    }
                }
                if (best_def != SIZE_MAX) {
                    at = best_def;
                } else {
                    // A loop-sunk checkpoint cluster: break up the
                    // boundary-free loop that feeds this block by
                    // giving its header a boundary (sinking then no
                    // longer applies to it).
                    DominatorTree dt(cfg);
                    LoopInfo li(cfg, dt);
                    for (const Loop &loop : li.loops()) {
                        if (loop.exit != b)
                            continue;
                        bool has_boundary = false;
                        for (BlockId lb : loop.blocks)
                            for (const Instruction &x :
                                     fn.block(lb).insts())
                                if (x.op == Op::Boundary)
                                    has_boundary = true;
                        if (has_boundary)
                            continue;
                        uint32_t id = fn.numRegions();
                        fn.block(loop.header)
                            .insertAt(0, makeBoundary(id));
                        fn.setNumRegions(id + 1);
                        return true;
                    }
                }
            }
            uint32_t id = fn.numRegions();
            blk.insertAt(at, makeBoundary(id));
            fn.setNumRegions(id + 1);
            return true;
        }
    }
    return false;
}

RegionMap::RegionMap(const Function &fn)
    : fn_(fn),
      entry_(fn.numBlocks(), kNoRegion),
      exit_(fn.numBlocks(), kNoRegion)
{
    Cfg cfg(fn);
    uint32_t max_region = 0;
    bool any_region = false;

    auto meet = [](uint32_t a, uint32_t b) {
        if (a == kNoRegion)
            return b;
        if (b == kNoRegion)
            return a;
        return a == b ? a : kMixedRegion;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : cfg.rpo()) {
            uint32_t in = kNoRegion;
            for (BlockId p : cfg.preds(b))
                if (cfg.reachable(p))
                    in = meet(in, exit_[p]);
            if (in != entry_[b]) {
                entry_[b] = in;
                changed = true;
            }
            uint32_t cur = in;
            for (const Instruction &inst : fn.block(b).insts()) {
                if (inst.op == Op::Boundary) {
                    cur = static_cast<uint32_t>(inst.imm);
                    max_region = std::max(max_region, cur);
                    any_region = true;
                }
            }
            if (cur != exit_[b]) {
                exit_[b] = cur;
                changed = true;
            }
        }
    }
    num_regions_ = any_region ? max_region + 1 : 0;
}

uint32_t
RegionMap::regionBefore(BlockId b, size_t index) const
{
    const BasicBlock &blk = fn_.block(b);
    TP_ASSERT(index <= blk.size(), "regionBefore: bad index");
    uint32_t cur = entry_[b];
    for (size_t i = 0; i < index; i++)
        if (blk.insts()[i].op == Op::Boundary)
            cur = static_cast<uint32_t>(blk.insts()[i].imm);
    return cur;
}

void
RegionMap::boundaryPos(uint32_t region, BlockId &block,
                       size_t &index) const
{
    for (BlockId b = 0; b < fn_.numBlocks(); b++) {
        const BasicBlock &blk = fn_.block(b);
        for (size_t i = 0; i < blk.size(); i++) {
            const Instruction &inst = blk.insts()[i];
            if (inst.op == Op::Boundary &&
                static_cast<uint32_t>(inst.imm) == region) {
                block = b;
                index = i;
                return;
            }
        }
    }
    panic("boundaryPos: region %u has no boundary", region);
}

} // namespace turnpike
