#include "passes/pass_manager.hh"

#include "ir/cfg.hh"
#include "ir/liveness.hh"
#include "ir/verifier.hh"
#include "util/logging.hh"

namespace turnpike {

void
PassPipeline::add(const std::string &name, PassFn fn)
{
    steps_.push_back({name, std::move(fn)});
}

void
PassPipeline::run(Function &fn)
{
    verifyOrDie(fn);
    for (auto &step : steps_) {
        step.fn(fn, stats_);
        auto problems = verifyFunction(fn);
        if (!problems.empty())
            panic("pass '%s' broke function %s: %s", step.name.c_str(),
                  fn.name().c_str(), problems.front().c_str());
    }
}

uint64_t
runDeadCodeElimination(Function &fn)
{
    uint64_t removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        Cfg cfg(fn);
        Liveness live(cfg);
        for (BlockId b = 0; b < fn.numBlocks(); b++) {
            if (!cfg.reachable(b))
                continue;
            BasicBlock &blk = fn.block(b);
            // Walk backward tracking liveness within the block so
            // several dead instructions fall in one sweep.
            RegSet live_now = live.liveOut(b);
            for (size_t i = blk.size(); i > 0; i--) {
                const Instruction &inst = blk.insts()[i - 1];
                bool has_effect = inst.op == Op::Store ||
                    inst.op == Op::Ckpt || inst.op == Op::Boundary ||
                    isTerminator(inst.op);
                bool dead = !has_effect && writesDst(inst.op) &&
                    !live_now.contains(inst.dst);
                if (dead) {
                    blk.eraseAt(i - 1);
                    removed++;
                    changed = true;
                    continue;
                }
                if (writesDst(inst.op) && inst.dst != kNoReg)
                    live_now.erase(inst.dst);
                addUses(inst, live_now);
            }
        }
    }
    return removed;
}

} // namespace turnpike
