/**
 * @file
 * Eager checkpointing (Turnstile §2.2): after every register update
 * whose value will be live at a future region boundary (i.e. the
 * register is a live-out of its region), insert a checkpoint store.
 * Runs on physical-register form, after region formation.
 *
 * The insertion criterion is the backward dataflow NB ("needed at
 * boundary"): at a boundary, NB is the set of registers live there;
 * through an instruction, the defined register is removed. A def of
 * r gets a checkpoint iff r is in NB immediately after the def.
 */

#ifndef TURNPIKE_PASSES_EAGER_CHECKPOINTING_HH_
#define TURNPIKE_PASSES_EAGER_CHECKPOINTING_HH_

#include <cstdint>

#include "ir/function.hh"

namespace turnpike {

/** Checkpoint insertion statistics. */
struct CkptStats
{
    uint64_t inserted = 0; ///< checkpoints inserted after defs
};

/**
 * Insert eager checkpoints into @p fn (which must already contain
 * region boundaries and run on physical registers). The frame
 * pointer is never checkpointed: recovery rematerializes it.
 */
CkptStats runEagerCheckpointing(Function &fn);

/** Remove every Ckpt instruction (used by the repartition loop). */
uint64_t removeAllCheckpoints(Function &fn);

} // namespace turnpike

#endif // TURNPIKE_PASSES_EAGER_CHECKPOINTING_HH_
