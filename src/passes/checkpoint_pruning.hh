/**
 * @file
 * Optimal checkpoint pruning (paper §4.1.3, after Penny/PLDI'20):
 * a checkpoint of register p may be removed when the checkpointed
 * value can be reconstructed at recovery time from constants and the
 * checkpoints of other registers. The pruned value's reconstruction
 * recipe is recorded per affected region and later spliced into that
 * region's recovery program by the lowering pass.
 *
 * Safety conditions implemented (see DESIGN.md):
 *  - the defining instruction is a pure ALU op / move / constant
 *    (never a load: memory may have been overwritten by fast-released
 *    stores before recovery);
 *  - every register source q is stable across the defining region
 *    (no other def of q inside that static region), so ckpt[q] holds
 *    q's value as seen by the def;
 *  - on every forward path from the checkpoint to a boundary where p
 *    is live, no source q is redefined (so ckpt[q] is still current
 *    at every recovery point that will use the recipe);
 *  - the pruned def is the unique reaching def of p at every such
 *    boundary (otherwise a static recipe cannot be correct);
 *  - global non-interference: a register with a pruned checkpoint is
 *    never used as a recipe source, and vice versa.
 */

#ifndef TURNPIKE_PASSES_CHECKPOINT_PRUNING_HH_
#define TURNPIKE_PASSES_CHECKPOINT_PRUNING_HH_

#include <cstdint>
#include <map>
#include <utility>

#include "ir/function.hh"
#include "machine/mfunction.hh"

namespace turnpike {

/** Output of pruning, consumed by lowering. */
struct PruneResult
{
    /**
     * Reconstruction recipes: for region S's recovery, restore
     * register p by running governed[{S, p}] instead of loading
     * ckpt[p]. Recipes use temps numbered from 0 and end with a
     * CommitReg of p.
     */
    std::map<std::pair<uint32_t, Reg>, RecoveryProgram> governed;
    uint64_t pruned = 0;
    /** Fig. 9 diamonds pruned (two checkpoints each). */
    uint64_t diamonds = 0;
    /** Why candidate checkpoints were kept (diagnostics). */
    std::map<std::string, uint64_t> rejected;
};

/**
 * Prune removable checkpoints from @p fn (physical-register form
 * with regions and eager checkpoints). Must run while each
 * checkpoint still directly follows its defining instruction.
 */
PruneResult runCheckpointPruning(Function &fn);

} // namespace turnpike

#endif // TURNPIKE_PASSES_CHECKPOINT_PRUNING_HH_
