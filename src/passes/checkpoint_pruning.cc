#include "passes/checkpoint_pruning.hh"

#include <algorithm>
#include <set>
#include <vector>

#include "ir/cfg.hh"
#include "ir/liveness.hh"
#include "ir/loop_info.hh"
#include "machine/minstr.hh"
#include "passes/region_formation.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {

/**
 * Forward scan from (block b, index i) collecting the boundaries the
 * current value of @p p can reach. Fails (returns false) if any
 * source register in @p sources is redefined while p's value is
 * still in flight. Paths end when p is redefined. @p reached gets
 * the region ids of boundaries where p is live.
 */
bool
scanValueFlow(const Function &fn, const Liveness &live, Reg p,
              const std::set<Reg> &sources, BlockId b, size_t i,
              std::set<uint32_t> &reached)
{
    std::set<BlockId> visited;
    // Work item: scan block from index.
    std::vector<std::pair<BlockId, size_t>> work{{b, i}};
    while (!work.empty()) {
        auto [blk_id, start] = work.back();
        work.pop_back();
        const BasicBlock &blk = fn.block(blk_id);
        bool stopped = false;
        for (size_t idx = start; idx < blk.size(); idx++) {
            const Instruction &inst = blk.insts()[idx];
            if (inst.op == Op::Boundary) {
                if (live.liveBefore(blk_id, idx).contains(p))
                    reached.insert(static_cast<uint32_t>(inst.imm));
            }
            if (writesDst(inst.op) && inst.dst != kNoReg) {
                if (inst.dst == p) {
                    stopped = true;
                    break;
                }
                if (sources.count(inst.dst)) {
                    // A source lost its def-time value here. That
                    // only invalidates the recipe if p's value can
                    // still reach a recovery boundary from this
                    // point; a redefinition past the last boundary
                    // is harmless.
                    std::set<uint32_t> beyond;
                    std::set<Reg> none;
                    scanValueFlow(fn, live, p, none, blk_id, idx + 1,
                                  beyond);
                    if (!beyond.empty())
                        return false;
                    stopped = true;
                    break;
                }
            }
        }
        if (stopped)
            continue;
        for (BlockId s : blk.succs()) {
            if (visited.count(s))
                continue;
            visited.insert(s);
            // Only descend while p is live-in (dead and
            // never-redefined values cannot reach a boundary live).
            if (!live.liveIn(s).contains(p))
                continue;
            work.push_back({s, 0});
        }
    }
    return true;
}

/** All defs of @p p in the function as (block, index) positions. */
std::vector<std::pair<BlockId, size_t>>
defsOf(const Function &fn, Reg p)
{
    std::vector<std::pair<BlockId, size_t>> out;
    for (BlockId b = 0; b < fn.numBlocks(); b++) {
        const BasicBlock &blk = fn.block(b);
        for (size_t i = 0; i < blk.size(); i++)
            if (blk.insts()[i].writes(p))
                out.push_back({b, i});
    }
    return out;
}

/**
 * Append ops computing @p def's value to @p prog; the result lands
 * in @p into when >= 0 (via a final copy) or in a fresh temp whose
 * index is returned.
 */
int
buildExpr(RecoveryProgram &prog, const Instruction &def, int into)
{
    auto next_temp = [&]() { return static_cast<int>(prog.size()) + 64; };
    auto load_or_imm = [&](Reg r, int64_t imm, bool is_reg) {
        RecoveryOp op;
        int t = next_temp();
        if (is_reg) {
            op.kind = RecoveryOp::Kind::LoadCkpt;
            op.t = t;
            op.reg = r;
        } else {
            op.kind = RecoveryOp::Kind::Li;
            op.t = t;
            op.imm = imm;
        }
        prog.push_back(op);
        return t;
    };

    int result;
    if (def.op == Op::Li) {
        result = load_or_imm(kNoReg, def.imm, false);
    } else if (def.op == Op::Mov) {
        result = load_or_imm(def.src0, 0, true);
    } else {
        int a = load_or_imm(def.src0, 0, true);
        RecoveryOp bin;
        bin.kind = RecoveryOp::Kind::Bin;
        bin.op = def.op;
        bin.a = a;
        if (def.src1 == kNoReg) {
            bin.bImm = true;
            bin.imm = def.imm;
        } else {
            bin.b = load_or_imm(def.src1, 0, true);
        }
        bin.t = next_temp();
        prog.push_back(bin);
        result = bin.t;
    }
    if (into >= 0 && into != result) {
        RecoveryOp mov;
        mov.kind = RecoveryOp::Kind::Bin;
        mov.op = Op::Mov;
        mov.a = result;
        mov.t = into;
        prog.push_back(mov);
        result = into;
    }
    return result;
}

/** Build the reconstruction recipe for a pure single def. */
RecoveryProgram
buildRecipe(const Instruction &def)
{
    RecoveryProgram prog;
    int result = buildExpr(prog, def, -1);
    RecoveryOp commit;
    commit.kind = RecoveryOp::Kind::CommitReg;
    commit.t = result;
    commit.reg = def.dst;
    prog.push_back(commit);
    return prog;
}

/**
 * Fig. 9 recipe for a diamond: compute the else-arm value, then, if
 * the checkpointed predicate is non-zero, overwrite it with the
 * then-arm value; commit the survivor.
 */
RecoveryProgram
buildDiamondRecipe(Reg cond, const Instruction &then_def,
                   const Instruction &else_def)
{
    RecoveryProgram prog;
    constexpr int kResult = 0; // temp indices >= 64 used by buildExpr
    buildExpr(prog, else_def, kResult);

    RecoveryOp ld;
    ld.kind = RecoveryOp::Kind::LoadCkpt;
    ld.t = 1;
    ld.reg = cond;
    prog.push_back(ld);

    RecoveryOp br;
    br.kind = RecoveryOp::Kind::BrIfZero;
    br.a = 1;
    size_t br_pos = prog.size();
    prog.push_back(br);

    buildExpr(prog, then_def, kResult);
    prog[br_pos].skip =
        static_cast<int>(prog.size() - br_pos - 1);

    RecoveryOp commit;
    commit.kind = RecoveryOp::Kind::CommitReg;
    commit.t = kResult;
    commit.reg = then_def.dst;
    prog.push_back(commit);
    return prog;
}

/**
 * Fig. 9 extension: prune the checkpoints of a register defined in
 * both arms of a two-way diamond. The recovery recipe replays the
 * branch on the checkpointed predicate and reconstructs whichever
 * arm value was taken. Conditions mirror the single-def case, plus:
 * the branch condition must itself be live (hence checkpointed and
 * current) at every governed boundary.
 */
void
pruneDiamonds(Function &fn, const Cfg &cfg, const Liveness &live,
              const RegionMap &rmap,
              std::map<Reg, std::set<uint32_t>> &source_regions,
              PruneResult &result)
{
    for (BlockId join = 0; join < fn.numBlocks(); join++) {
        if (!cfg.reachable(join) || cfg.preds(join).size() != 2)
            continue;
        BlockId arm_l = cfg.preds(join)[0];
        BlockId arm_r = cfg.preds(join)[1];
        // Each arm: single pred (the branch block), ends in Jmp, no
        // boundaries inside (whole diamond in one region).
        auto arm_ok = [&](BlockId a) {
            if (cfg.preds(a).size() != 1)
                return false;
            const BasicBlock &blk = fn.block(a);
            if (!blk.hasTerminator() || blk.terminator().op != Op::Jmp)
                return false;
            for (const Instruction &inst : blk.insts())
                if (inst.op == Op::Boundary)
                    return false;
            return true;
        };
        if (!arm_ok(arm_l) || !arm_ok(arm_r))
            continue;
        BlockId branch_bb = cfg.preds(arm_l)[0];
        if (cfg.preds(arm_r)[0] != branch_bb)
            continue;
        const BasicBlock &bb = fn.block(branch_bb);
        if (!bb.hasTerminator() || bb.terminator().op != Op::Br)
            continue;
        Reg cond = bb.terminator().src0;
        // succs[0] is the taken (cond != 0) arm.
        BlockId then_arm = bb.succs()[0];
        BlockId else_arm = bb.succs()[1];

        uint32_t region = rmap.regionAtEntry(join);
        if (region == kNoRegion || region == kMixedRegion)
            continue;

        // Candidate registers: checkpointed in both arms with a pure
        // adjacent-region def in each.
        struct ArmDef { size_t ckpt = SIZE_MAX; size_t def = SIZE_MAX; };
        auto find_arm = [&](BlockId a, Reg p, ArmDef &out) {
            const BasicBlock &blk = fn.block(a);
            for (size_t i = 0; i < blk.size(); i++) {
                if (blk.insts()[i].op == Op::Ckpt &&
                    blk.insts()[i].src0 == p)
                    out.ckpt = i;
            }
            if (out.ckpt == SIZE_MAX)
                return false;
            for (size_t j = out.ckpt; j > 0; j--) {
                if (blk.insts()[j - 1].writes(p)) {
                    out.def = j - 1;
                    break;
                }
            }
            if (out.def == SIZE_MAX)
                return false;
            const Instruction &def = blk.insts()[out.def];
            return def.op == Op::Li || def.op == Op::Mov ||
                isBinary(def.op);
        };

        std::set<Reg> cand;
        for (const Instruction &inst : fn.block(then_arm).insts())
            if (inst.op == Op::Ckpt)
                cand.insert(inst.src0);

        for (Reg p : cand) {
            ArmDef dthen, delse;
            if (!find_arm(then_arm, p, dthen) ||
                !find_arm(else_arm, p, delse))
                continue;
            const Instruction &then_def =
                fn.block(then_arm).insts()[dthen.def];
            const Instruction &else_def =
                fn.block(else_arm).insts()[delse.def];

            // Gather the sources plus the predicate; the predicate
            // may not be the frame pointer either.
            std::set<Reg> sources{cond};
            for (const Instruction *d : {&then_def, &else_def}) {
                if (d->op == Op::Li)
                    continue;
                sources.insert(d->src0);
                if (isBinary(d->op) && d->src1 != kNoReg)
                    sources.insert(d->src1);
            }
            bool ok = !sources.count(kFramePointer);
            // Sources stable inside each arm between def and arm end
            // (the join-onward part is covered by the value scan).
            for (BlockId a : {then_arm, else_arm}) {
                const BasicBlock &blk = fn.block(a);
                for (size_t i = 0; i < blk.size() && ok; i++)
                    if (blk.insts()[i].op != Op::Ckpt &&
                        !blk.insts()[i].writes(p))
                        for (Reg q : sources)
                            if (blk.insts()[i].writes(q))
                                ok = false;
            }
            if (!ok) {
                result.rejected["diamond-unstable"]++;
                continue;
            }

            // Value flow from the join entry.
            std::set<uint32_t> reached;
            if (!scanValueFlow(fn, live, p, sources, join, 0,
                               reached) ||
                reached.empty()) {
                result.rejected["diamond-flow"]++;
                continue;
            }

            // All sources (incl. the predicate) live at every
            // governed boundary.
            for (uint32_t s : reached) {
                BlockId sb;
                size_t si;
                rmap.boundaryPos(s, sb, si);
                RegSet at_boundary = live.liveBefore(sb, si);
                for (Reg q : sources)
                    if (!at_boundary.contains(q))
                        ok = false;
            }
            if (!ok) {
                result.rejected["diamond-source-dead"]++;
                continue;
            }

            // Unique reaching defs: no third def of p may reach the
            // governed boundaries.
            bool unique = true;
            for (auto [db, di] : defsOf(fn, p)) {
                if ((db == then_arm && di == dthen.def) ||
                    (db == else_arm && di == delse.def))
                    continue;
                std::set<uint32_t> other;
                std::set<Reg> none;
                scanValueFlow(fn, live, p, none, db, di + 1, other);
                for (uint32_t s : other)
                    if (reached.count(s))
                        unique = false;
            }
            if (unique && live.liveIn(fn.entry()).contains(p)) {
                std::set<uint32_t> other;
                std::set<Reg> none;
                scanValueFlow(fn, live, p, none, fn.entry(), 0, other);
                for (uint32_t s : other)
                    if (reached.count(s))
                        unique = false;
            }
            if (!unique) {
                result.rejected["diamond-multi-def"]++;
                continue;
            }

            // Interference at region granularity.
            bool collision = false;
            for (uint32_t s : reached) {
                if (result.governed.count({s, p}))
                    collision = true;
                auto sr = source_regions.find(p);
                if (sr != source_regions.end() && sr->second.count(s))
                    collision = true;
                for (Reg q : sources)
                    if (result.governed.count({s, q}))
                        collision = true;
            }
            if (collision) {
                result.rejected["interference"]++;
                continue;
            }

            // Commit: record the branch-replaying recipe and erase
            // both arm checkpoints.
            RecoveryProgram recipe =
                buildDiamondRecipe(cond, then_def, else_def);
            for (uint32_t s : reached) {
                result.governed[{s, p}] = recipe;
                for (Reg q : sources)
                    source_regions[q].insert(s);
            }
            fn.block(then_arm).eraseAt(dthen.ckpt);
            fn.block(else_arm).eraseAt(delse.ckpt);
            result.pruned += 2;
            result.diamonds++;
        }
    }
}

} // namespace

PruneResult
runCheckpointPruning(Function &fn)
{
    PruneResult result;
    Cfg cfg(fn);
    Liveness live(cfg);
    RegionMap rmap(fn);
    DominatorTree dt(cfg);
    LoopInfo li(cfg, dt);

    // For each register, the regions whose recovery recipes read its
    // checkpoint slot. Pruning a checkpoint of r is only unsafe when
    // it governs one of those regions (the recipe would then read a
    // stale slot); likewise a new recipe may not source ckpt[q] at a
    // region where q's own checkpoint was pruned.
    std::map<Reg, std::set<uint32_t>> source_regions;

    // Diamonds first: they sit on hot paths (both checkpoints of a
    // branch-defined register), and their recipes reserve the source
    // slots before colder single-def prunes can take them.
    pruneDiamonds(fn, cfg, live, rmap, source_regions, result);

    // Candidates hottest-first: pruning one checkpoint of a register
    // excludes other pruning decisions touching that register (the
    // interference rule below), so deeply nested (frequently
    // executed) checkpoints get first pick. Within a block, process
    // bottom-up so erasures do not shift pending indices.
    struct Candidate { int depth; BlockId b; size_t i; };
    std::vector<Candidate> candidates;
    for (BlockId b : cfg.rpo()) {
        const BasicBlock &blk = fn.block(b);
        for (size_t i = 0; i < blk.size(); i++)
            if (blk.insts()[i].op == Op::Ckpt)
                candidates.push_back({li.depth(b), b, i});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &c) {
                  if (a.depth != c.depth)
                      return a.depth > c.depth;
                  if (a.b != c.b)
                      return a.b < c.b;
                  return a.i > c.i;
              });

    for (const Candidate &cand : candidates) {
        BlockId b = cand.b;
        size_t i = cand.i;
        {
            BasicBlock &blk = fn.block(b);
            const Instruction &ck = blk.insts()[i];
            TP_ASSERT(ck.op == Op::Ckpt, "pruning candidate moved");
            Reg p = ck.src0;
            // Find the reaching def: the nearest def of p above the
            // checkpoint in this block (sinking may have separated
            // them). Crossing a boundary or leaving the block gives
            // up — entry-value and loop-sunk checkpoints are kept.
            size_t def_idx = SIZE_MAX;
            for (size_t j = i; j > 0; j--) {
                const Instruction &cand = blk.insts()[j - 1];
                if (cand.op == Op::Boundary)
                    break;
                if (cand.writes(p)) {
                    def_idx = j - 1;
                    break;
                }
            }
            if (def_idx == SIZE_MAX) {
                result.rejected["no-def"]++;
                continue;
            }
            const Instruction &def = blk.insts()[def_idx];
            // Only pure, replayable defs qualify.
            bool pure = def.op == Op::Li || def.op == Op::Mov ||
                isBinary(def.op);
            if (!pure) {
                result.rejected["impure-def"]++;
                continue;
            }

            uint32_t region = rmap.regionBefore(b, i);
            if (region == kNoRegion || region == kMixedRegion) {
                result.rejected["mixed-region"]++;
                continue;
            }

            // Collect register sources; each must still hold the
            // def-time value wherever the recipe runs.
            std::set<Reg> sources;
            if (def.op != Op::Li) {
                sources.insert(def.src0);
                if (isBinary(def.op) && def.src1 != kNoReg)
                    sources.insert(def.src1);
            }
            bool ok = true;
            for (Reg q : sources) {
                if (q == kFramePointer) {
                    // fp is rematerialized, never checkpointed; a
                    // recipe cannot LoadCkpt it.
                    ok = false;
                    break;
                }
                // No redefinition of q between the def and the
                // checkpoint (the value-flow scan covers the rest of
                // the way to the boundaries).
                for (size_t w = def_idx + 1; w <= i && ok; w++)
                    if (blk.insts()[w].writes(q))
                        ok = false;
                if (!ok)
                    break;
            }
            if (!ok) {
                result.rejected["unstable-source"]++;
                continue;
            }

            // Value-flow scan from just after the checkpoint.
            std::set<uint32_t> reached;
            if (!scanValueFlow(fn, live, p, sources, b, i + 1,
                               reached)) {
                result.rejected["source-redefined"]++;
                continue;
            }
            if (reached.empty()) {
                result.rejected["no-boundary"]++;
                continue;
            }

            // Every source must be live at every governed boundary:
            // then it is a live-in of the recovering region, eager
            // checkpointing guarantees its reaching definition was
            // checkpointed, and ckpt[q] holds the def-time value.
            for (uint32_t s : reached) {
                BlockId sb;
                size_t si;
                rmap.boundaryPos(s, sb, si);
                RegSet at_boundary = live.liveBefore(sb, si);
                for (Reg q : sources)
                    if (!at_boundary.contains(q))
                        ok = false;
            }
            if (!ok) {
                result.rejected["source-dead-at-recovery"]++;
                continue;
            }

            // Unique-reaching-def: no other def of p may reach any
            // of the same boundaries live.
            bool unique = true;
            for (auto [db, di] : defsOf(fn, p)) {
                if (db == b && di == def_idx)
                    continue;
                std::set<uint32_t> other;
                std::set<Reg> none;
                // A failing scan only means some source was
                // redefined; for uniqueness we only need the reached
                // set, so pass an empty source set (always succeeds).
                scanValueFlow(fn, live, p, none, db, di + 1, other);
                for (uint32_t s : other) {
                    if (reached.count(s)) {
                        unique = false;
                        break;
                    }
                }
                if (!unique)
                    break;
            }
            // The initial (zero) value of p acts as an extra
            // reaching def when p is live-in at the entry.
            if (unique && live.liveIn(fn.entry()).contains(p)) {
                std::set<uint32_t> other;
                std::set<Reg> none;
                scanValueFlow(fn, live, p, none, fn.entry(), 0, other);
                for (uint32_t s : other)
                    if (reached.count(s))
                        unique = false;
            }
            if (!unique) {
                result.rejected["multi-def"]++;
                continue;
            }

            // Interference, at region granularity:
            //  - another recipe already governs (S, p);
            //  - some recipe at S reads ckpt[p] (pruning here would
            //    leave that recipe a stale slot);
            //  - our recipe would read ckpt[q] at an S where q's own
            //    checkpoint was pruned.
            bool collision = false;
            for (uint32_t s : reached) {
                if (result.governed.count({s, p}))
                    collision = true;
                auto sr = source_regions.find(p);
                if (sr != source_regions.end() && sr->second.count(s))
                    collision = true;
                for (Reg q : sources)
                    if (result.governed.count({s, q}))
                        collision = true;
            }
            if (collision) {
                result.rejected["interference"]++;
                continue;
            }

            // Commit the pruning decision.
            RecoveryProgram recipe = buildRecipe(def);
            for (uint32_t s : reached) {
                result.governed[{s, p}] = recipe;
                for (Reg q : sources)
                    source_regions[q].insert(s);
            }
            blk.eraseAt(i);
            result.pruned++;
        }
    }

    return result;
}

} // namespace turnpike
