/**
 * @file
 * Shared loop analyses for the induction-variable passes: basic
 * induction variable detection and loop-invariance queries.
 */

#ifndef TURNPIKE_PASSES_LOOP_UTILS_HH_
#define TURNPIKE_PASSES_LOOP_UTILS_HH_

#include <vector>

#include "ir/loop_info.hh"

namespace turnpike {

/**
 * A basic induction variable of a loop: a register with exactly one
 * in-loop definition of the form reg = reg + step (immediate step).
 */
struct BasicIv
{
    Reg reg = kNoReg;
    int64_t step = 0;
    BlockId incBlock = kNoBlock; ///< block holding the increment
    size_t incIndex = 0;         ///< index of the increment there
    /**
     * Index (in the preheader) of the single defining instruction of
     * reg in the loop preheader, or SIZE_MAX when the preheader does
     * not define it exactly once.
     */
    size_t preheaderDef = SIZE_MAX;
};

/**
 * Find the basic induction variables of @p loop. A register
 * qualifies when its only definition inside the loop is a single
 * `Add r, r, #imm` and it is not the frame pointer.
 */
std::vector<BasicIv> findBasicIvs(const Function &fn, const Loop &loop);

/** True if @p r has no defining instruction inside @p loop. */
bool isLoopInvariant(const Function &fn, const Loop &loop, Reg r);

/** Return log2(@p v) when v is a power of two, else -1. */
int log2Exact(int64_t v);

} // namespace turnpike

#endif // TURNPIKE_PASSES_LOOP_UTILS_HH_
