#include "passes/strength_reduction.hh"

#include <map>
#include <tuple>

#include "ir/dominators.hh"
#include "ir/loop_info.hh"
#include "passes/loop_utils.hh"
#include "passes/pass_manager.hh"
#include "util/logging.hh"

namespace turnpike {

namespace {

/** One base + (iv << k) address computation feeding memory ops. */
struct AddrPattern
{
    Reg iv = kNoReg;
    int64_t shift = 0;
    Reg base = kNoReg;
    BlockId block = kNoBlock;
    size_t memIndex = 0; ///< index of the memory op using the address
};

/**
 * Try to match instruction @p mem_idx of @p blk as a memory access
 * whose base register is an in-block Add of a loop-invariant base
 * and a Shl of a basic IV. Returns true and fills @p out on success.
 */
bool
matchAddrPattern(const Function &fn, const Loop &loop,
                 const std::vector<BasicIv> &ivs, BlockId b,
                 size_t mem_idx, AddrPattern &out)
{
    const BasicBlock &blk = fn.block(b);
    const Instruction &mem = blk.insts()[mem_idx];
    Reg addr = (mem.op == Op::Load) ? mem.src0 : mem.src1;
    if (addr == kNoReg)
        return false;

    // Find the in-block def of the address register before the use.
    size_t add_idx = SIZE_MAX;
    for (size_t i = mem_idx; i > 0; i--) {
        const Instruction &inst = blk.insts()[i - 1];
        if (inst.writes(addr)) {
            add_idx = i - 1;
            break;
        }
    }
    if (add_idx == SIZE_MAX)
        return false;
    const Instruction &add = blk.insts()[add_idx];
    if (add.op != Op::Add || add.src1 == kNoReg)
        return false;

    // One operand loop-invariant (base), the other a Shl of an IV.
    for (int swap = 0; swap < 2; swap++) {
        Reg base = swap ? add.src1 : add.src0;
        Reg shifted = swap ? add.src0 : add.src1;
        if (!isLoopInvariant(fn, loop, base))
            continue;
        // Find shifted's def in the same block before the add.
        size_t shl_idx = SIZE_MAX;
        for (size_t i = add_idx; i > 0; i--) {
            const Instruction &inst = blk.insts()[i - 1];
            if (inst.writes(shifted)) {
                shl_idx = i - 1;
                break;
            }
        }
        if (shl_idx == SIZE_MAX)
            continue;
        const Instruction &shl = blk.insts()[shl_idx];
        if (shl.op != Op::Shl || shl.src1 != kNoReg)
            continue;
        const BasicIv *iv = nullptr;
        for (const BasicIv &cand : ivs)
            if (cand.reg == shl.src0)
                iv = &cand;
        if (!iv)
            continue;
        // The IV must not step between the shift and the memory op.
        bool iv_stepped = false;
        for (size_t i = shl_idx; i < mem_idx; i++)
            if (blk.insts()[i].writes(iv->reg))
                iv_stepped = true;
        if (iv_stepped)
            continue;
        out.iv = iv->reg;
        out.shift = shl.imm;
        out.base = base;
        out.block = b;
        out.memIndex = mem_idx;
        return true;
    }
    return false;
}

} // namespace

uint64_t
runStrengthReduction(Function &fn)
{
    uint64_t created = 0;
    Cfg cfg(fn);
    DominatorTree dt(cfg);
    LoopInfo li(cfg, dt);

    for (size_t loop_idx = 0; loop_idx < li.loops().size(); loop_idx++) {
        const Loop &loop = li.loops()[loop_idx];
        if (loop.preheader == kNoBlock)
            continue;
        auto ivs = findBasicIvs(fn, loop);
        if (ivs.empty())
            continue;

        // Collect matches in blocks belonging innermost to this loop.
        std::vector<AddrPattern> matches;
        for (BlockId b : loop.blocks) {
            if (li.innermostLoop(b) != static_cast<int>(loop_idx))
                continue;
            const BasicBlock &blk = fn.block(b);
            for (size_t i = 0; i < blk.size(); i++) {
                if (!isMemOp(blk.insts()[i].op))
                    continue;
                AddrPattern p;
                if (matchAddrPattern(fn, loop, ivs, b, i, p))
                    matches.push_back(p);
            }
        }
        if (matches.empty())
            continue;

        // One pointer IV per distinct (iv, shift, base).
        std::map<std::tuple<Reg, int64_t, Reg>, Reg> pointer_of;
        for (const AddrPattern &m : matches) {
            auto key = std::make_tuple(m.iv, m.shift, m.base);
            auto it = pointer_of.find(key);
            Reg p;
            if (it != pointer_of.end()) {
                p = it->second;
            } else {
                // Refresh the IV facts: earlier insertions in this
                // loop shift instruction indices.
                auto fresh_ivs = findBasicIvs(fn, loop);
                const BasicIv *iv = nullptr;
                for (const BasicIv &cand : fresh_ivs)
                    if (cand.reg == m.iv)
                        iv = &cand;
                TP_ASSERT(iv, "matched IV disappeared");

                p = fn.newReg();
                Reg t = fn.newReg();
                // Preheader: t = iv << shift; p = base + t.
                BasicBlock &pre = fn.block(loop.preheader);
                size_t at = pre.size();
                if (pre.hasTerminator())
                    at--;
                pre.insertAt(at, makeBinImm(Op::Shl, t, m.iv, m.shift));
                pre.insertAt(at + 1, makeBin(Op::Add, p, m.base, t));
                // Step p right after the IV increment.
                BasicBlock &incb = fn.block(iv->incBlock);
                int64_t pstep = iv->step << m.shift;
                incb.insertAt(iv->incIndex + 1,
                              makeBinImm(Op::Add, p, p, pstep));
                pointer_of[key] = p;
                created++;
            }
        }
        // Rewrite the memory ops to use the pointer IVs. Re-match
        // because insertions above shifted indices.
        for (BlockId b : loop.blocks) {
            if (li.innermostLoop(b) != static_cast<int>(loop_idx))
                continue;
            BasicBlock &blk = fn.block(b);
            for (size_t i = 0; i < blk.size(); i++) {
                if (!isMemOp(blk.insts()[i].op))
                    continue;
                AddrPattern p;
                if (!matchAddrPattern(fn, loop, ivs, b, i, p))
                    continue;
                auto key = std::make_tuple(p.iv, p.shift, p.base);
                auto it = pointer_of.find(key);
                if (it == pointer_of.end())
                    continue;
                Instruction &mem = blk.insts()[i];
                if (mem.op == Op::Load)
                    mem.src0 = it->second;
                else
                    mem.src1 = it->second;
            }
        }
        // The IV analysis results (incIndex) are invalidated by the
        // insertions; rebuild per loop iteration of the outer for by
        // refreshing ivs would be needed if we kept going, so stop
        // matching further patterns for this loop (one sweep per
        // call is enough for the generated workloads).
    }

    runDeadCodeElimination(fn);
    return created;
}

} // namespace turnpike
