#include "passes/instruction_scheduling.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"

namespace turnpike {

namespace {

/** Result latency used for scheduling heuristics. */
int
resultLatency(const Instruction &inst)
{
    if (inst.op == Op::Load)
        return 3; // L1 hit plus use penalty
    return exLatency(inst.op);
}

/**
 * Schedule one barrier-free segment [first, last) of @p insts in
 * place. Returns true if any instruction moved.
 */
bool
scheduleSegment(std::vector<Instruction> &insts, size_t first,
                size_t last)
{
    size_t n = last - first;
    if (n < 3)
        return false;

    // Dependence edges (indices relative to the segment).
    std::vector<std::vector<int>> succs(n);
    std::vector<int> npreds(n, 0);
    std::vector<std::vector<int>> preds(n);
    auto add_edge = [&](int a, int b) {
        succs[a].push_back(b);
        preds[b].push_back(a);
        npreds[b]++;
    };

    for (size_t j = 0; j < n; j++) {
        const Instruction &bj = insts[first + j];
        for (size_t i = 0; i < j; i++) {
            const Instruction &ai = insts[first + i];
            bool dep = false;
            // RAW
            if (writesDst(ai.op) && ai.dst != kNoReg &&
                bj.reads(ai.dst))
                dep = true;
            // Ckpt reads its register too (src0 covered by reads()).
            // WAR
            if (writesDst(bj.op) && bj.dst != kNoReg &&
                (ai.reads(bj.dst) ||
                 (writesDst(ai.op) && ai.dst == bj.dst)))
                dep = true;
            // Memory order: any pair involving a Store is ordered;
            // checkpoints write disjoint slots, so only same-register
            // checkpoint pairs are ordered.
            bool a_store = ai.op == Op::Store;
            bool b_store = bj.op == Op::Store;
            bool a_mem = isMemOp(ai.op);
            bool b_mem = isMemOp(bj.op);
            if ((a_store && b_mem) || (b_store && a_mem))
                dep = true;
            if (ai.op == Op::Ckpt && bj.op == Op::Ckpt &&
                ai.src0 == bj.src0)
                dep = true;
            if (dep)
                add_edge(static_cast<int>(i), static_cast<int>(j));
        }
    }

    // Critical-path heights.
    std::vector<int> height(n, 0);
    for (size_t j = n; j > 0; j--) {
        int i = static_cast<int>(j - 1);
        int h = resultLatency(insts[first + j - 1]);
        int best = 0;
        for (int s : succs[i])
            best = std::max(best, height[s]);
        height[i] = h + best;
    }

    // Cycle-driven list scheduling: prefer instructions whose
    // operands are ready; among those, highest critical path; break
    // ties toward original order for stability.
    std::vector<int> ready_cycle(n, 0); // earliest data-ready cycle
    std::vector<bool> scheduled(n, false);
    std::vector<int> order;
    order.reserve(n);
    std::vector<int> remaining_preds = npreds;
    int cycle = 0;
    while (order.size() < n) {
        int pick = -1;
        bool pick_ready = false;
        for (size_t i = 0; i < n; i++) {
            if (scheduled[i] || remaining_preds[i] != 0)
                continue;
            bool is_ready = ready_cycle[i] <= cycle;
            if (pick < 0) {
                pick = static_cast<int>(i);
                pick_ready = is_ready;
                continue;
            }
            // Prefer data-ready over stalled; then taller critical
            // path; then earlier original position.
            if (is_ready != pick_ready) {
                if (is_ready) {
                    pick = static_cast<int>(i);
                    pick_ready = true;
                }
                continue;
            }
            if (height[i] > height[pick])
                pick = static_cast<int>(i);
        }
        TP_ASSERT(pick >= 0, "scheduler found no ready instruction");
        scheduled[pick] = true;
        order.push_back(pick);
        int finish = std::max(cycle, ready_cycle[pick]) +
            resultLatency(insts[first + pick]);
        for (int s : succs[pick]) {
            remaining_preds[s]--;
            ready_cycle[s] = std::max(ready_cycle[s], finish);
        }
        cycle = std::max(cycle + 1, pick_ready ? cycle + 1
                                               : ready_cycle[pick] + 1);
    }

    bool moved = false;
    std::vector<Instruction> out;
    out.reserve(n);
    for (size_t i = 0; i < n; i++) {
        if (order[i] != static_cast<int>(i))
            moved = true;
        out.push_back(insts[first + order[i]]);
    }
    if (moved)
        std::copy(out.begin(), out.end(),
                  insts.begin() + static_cast<ptrdiff_t>(first));
    return moved;
}

} // namespace

uint64_t
runInstructionScheduling(Function &fn)
{
    uint64_t moved = 0;
    for (BlockId b = 0; b < fn.numBlocks(); b++) {
        auto &insts = fn.block(b).insts();
        size_t seg_start = 0;
        for (size_t i = 0; i <= insts.size(); i++) {
            bool barrier = i == insts.size() ||
                insts[i].op == Op::Boundary ||
                isTerminator(insts[i].op);
            if (!barrier)
                continue;
            if (i > seg_start &&
                scheduleSegment(insts, seg_start, i))
                moved++;
            seg_start = i + 1;
        }
    }
    return moved;
}

} // namespace turnpike
