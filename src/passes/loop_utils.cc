#include "passes/loop_utils.hh"

#include <map>

#include "machine/minstr.hh"
#include "util/logging.hh"

namespace turnpike {

std::vector<BasicIv>
findBasicIvs(const Function &fn, const Loop &loop)
{
    // Count in-loop definitions per register and remember the single
    // increment candidate.
    std::map<Reg, int> def_count;
    std::map<Reg, BasicIv> candidates;
    for (BlockId b : loop.blocks) {
        const BasicBlock &blk = fn.block(b);
        for (size_t i = 0; i < blk.size(); i++) {
            const Instruction &inst = blk.insts()[i];
            if (!writesDst(inst.op) || inst.dst == kNoReg)
                continue;
            def_count[inst.dst]++;
            if (inst.op == Op::Add && inst.src0 == inst.dst &&
                inst.src1 == kNoReg) {
                BasicIv iv;
                iv.reg = inst.dst;
                iv.step = inst.imm;
                iv.incBlock = b;
                iv.incIndex = i;
                candidates[inst.dst] = iv;
            }
        }
    }

    std::vector<BasicIv> out;
    for (auto &[reg, iv] : candidates) {
        if (def_count[reg] != 1 || reg == kFramePointer)
            continue;
        // Locate a unique preheader definition if one exists.
        if (loop.preheader != kNoBlock) {
            const BasicBlock &pre = fn.block(loop.preheader);
            size_t found = SIZE_MAX;
            int defs = 0;
            for (size_t i = 0; i < pre.size(); i++) {
                const Instruction &inst = pre.insts()[i];
                if (writesDst(inst.op) && inst.dst == reg) {
                    found = i;
                    defs++;
                }
            }
            if (defs == 1)
                iv.preheaderDef = found;
        }
        out.push_back(iv);
    }
    return out;
}

bool
isLoopInvariant(const Function &fn, const Loop &loop, Reg r)
{
    if (r == kNoReg)
        return true;
    for (BlockId b : loop.blocks) {
        for (const Instruction &inst : fn.block(b).insts())
            if (writesDst(inst.op) && inst.dst == r)
                return false;
    }
    return true;
}

int
log2Exact(int64_t v)
{
    if (v <= 0 || (v & (v - 1)) != 0)
        return -1;
    int k = 0;
    while ((int64_t(1) << k) != v)
        k++;
    return k;
}

} // namespace turnpike
