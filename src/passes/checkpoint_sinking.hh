/**
 * @file
 * LICM-style checkpoint sinking (paper §4.1.4): a checkpoint may be
 * moved from its eager position down to any point before its
 * region's boundary. Two effects:
 *
 *  1. Loop sinking: when a whole (store-free) loop lives inside one
 *     region — region formation omitted the header boundary — every
 *     per-iteration checkpoint in the loop body is replaced by one
 *     checkpoint at the loop exit, removing it from the hot path
 *     entirely (Fig. 10).
 *  2. Block sinking: remaining checkpoints are pushed down within
 *     their block towards the boundary/terminator, separating them
 *     from their defining instruction (shrinking the data-hazard
 *     window) and enabling duplicate elimination.
 */

#ifndef TURNPIKE_PASSES_CHECKPOINT_SINKING_HH_
#define TURNPIKE_PASSES_CHECKPOINT_SINKING_HH_

#include <cstdint>

#include "ir/function.hh"

namespace turnpike {

/** Sinking statistics. */
struct SinkStats
{
    uint64_t loopSunk = 0;   ///< checkpoints hoisted out of loops
    uint64_t blockSunk = 0;  ///< checkpoints moved within blocks
    uint64_t deduped = 0;    ///< redundant duplicates removed
};

/** Apply checkpoint sinking to @p fn. */
SinkStats runCheckpointSinking(Function &fn);

} // namespace turnpike

#endif // TURNPIKE_PASSES_CHECKPOINT_SINKING_HH_
