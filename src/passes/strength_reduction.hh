/**
 * @file
 * Loop strength reduction: rewrites per-use address computations of
 * the form base + (iv << k) inside loops into separate pointer
 * induction variables, as traditional compilers do. This is the
 * baseline codegen behaviour the paper's Fig. 8(b) shows — it
 * introduces loop-carried dependences that force extra checkpoints,
 * which loop-induction-variable merging (LIVM) later removes.
 */

#ifndef TURNPIKE_PASSES_STRENGTH_REDUCTION_HH_
#define TURNPIKE_PASSES_STRENGTH_REDUCTION_HH_

#include <cstdint>

#include "ir/function.hh"

namespace turnpike {

/**
 * Apply strength reduction to all innermost loops of @p fn.
 * Returns the number of pointer induction variables created.
 */
uint64_t runStrengthReduction(Function &fn);

} // namespace turnpike

#endif // TURNPIKE_PASSES_STRENGTH_REDUCTION_HH_
