/**
 * @file
 * Live campaign telemetry: lock-free per-worker progress counters, a
 * monitor thread that periodically snapshots them into either a TTY
 * progress line or machine-readable heartbeat JSONL, an ETA from a
 * decaying trial-rate estimate, and signal handlers (SIGUSR1 dumps an
 * on-demand snapshot, SIGINT flushes registered sinks before exit).
 *
 * Strictly observational: workers bump relaxed atomics that nothing
 * in the simulation ever reads back, so enabling telemetry cannot
 * perturb any deterministic output — campaign results, stats dumps,
 * traces and bench JSON stay byte-identical with telemetry off or
 * on (pinned by tests/telemetry_test.cc). Off is the default and
 * costs one relaxed pointer load per trial (activeTelemetry()).
 *
 * The layer is generic so core/avf and core/rootcause can both use
 * it: a campaign is N items, each finishing in one of up to
 * kMaxProgressClasses named outcome classes ("masked"/"sdc"/... for
 * an AVF campaign, divergence kinds for a bisection sweep).
 *
 * Enabling:
 *  - programmatically (the CLI's --progress[=FILE] flag calls
 *    enable()), or
 *  - lazily from the environment on the first beginCampaign():
 *    TURNPIKE_PROGRESS=FILE|tty turns it on inside any campaign
 *    user (the bench harnesses included) without code changes.
 *  - TURNPIKE_PROGRESS_MS sets the monitor period (default 500).
 */

#ifndef TURNPIKE_UTIL_TELEMETRY_HH_
#define TURNPIKE_UTIL_TELEMETRY_HH_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace turnpike {

/** Outcome classes a campaign may tally (AVF uses 4, rootcause 4). */
constexpr int kMaxProgressClasses = 8;

/**
 * One worker's progress slot. Written with relaxed atomics by
 * exactly one worker thread; read (racily but coherently, counter by
 * counter) by the monitor thread. Padded so two workers never share
 * a cache line — the hooks must not create false sharing between
 * otherwise independent trial simulations.
 */
struct alignas(64) WorkerProgress
{
    std::atomic<uint64_t> started{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> classes[kMaxProgressClasses] = {};
    /** Item index currently being executed (valid while busy). */
    std::atomic<uint64_t> currentItem{0};
    /** 1 while a trial is in flight on this worker. */
    std::atomic<uint32_t> busy{0};
};

/** A coherent-enough snapshot the monitor assembles every tick. */
struct ProgressSnapshot
{
    std::string campaign;
    uint64_t totalItems = 0;
    uint64_t started = 0;
    uint64_t completed = 0;
    uint64_t classCounts[kMaxProgressClasses] = {};
    std::vector<std::string> classNames;
    double elapsedSeconds = 0.0;
    /** Decayed trials/second estimate (0 until the first progress). */
    double ratePerSecond = 0.0;
    /** Remaining / rate; 0 when the rate is still unknown. */
    double etaSeconds = 0.0;
    struct Worker
    {
        unsigned id = 0;
        uint64_t completed = 0;
        uint64_t currentItem = 0;
        bool busy = false;
    };
    std::vector<Worker> workers;
};

/** The heartbeat JSONL schema version tag. */
constexpr const char *kProgressSchemaVersion = "turnpike-progress-v1";

/** See the file comment. One instance per process (instance()). */
class CampaignTelemetry
{
  public:
    /**
     * Turn telemetry on: heartbeat JSONL to @p path, or a TTY
     * progress line on stderr when @p path is empty. @p interval_ms
     * is clamped to >= 1. Idempotent reconfiguration is allowed
     * between campaigns, not during one.
     */
    void enable(const std::string &path, uint64_t interval_ms);

    /** Stop the monitor thread and close the sink. */
    void disable();

    bool enabled() const { return enabled_.load(); }

    /**
     * Start a campaign of @p total_items items whose outcomes fall
     * into @p class_names (at most kMaxProgressClasses). Resets all
     * worker slots, emits an immediate seq-0 heartbeat, and starts
     * the monitor if needed. Campaigns never nest; sequential
     * campaigns in one process are fine.
     */
    void beginCampaign(const std::string &name, uint64_t total_items,
                       const std::vector<std::string> &class_names);

    /**
     * Finish the campaign: emits the final record, whose counts are
     * exact campaign totals (every itemFinished happened-before this
     * call — the campaign runner joins its workers first).
     */
    void endCampaign();

    // -- worker hooks (any thread, lock-free) ----------------------
    void itemStarted(unsigned worker, uint64_t item);
    /** @p klass indexes the class_names of the current campaign. */
    void itemFinished(unsigned worker, int klass);

    // -- signals ---------------------------------------------------
    /**
     * Install the SIGUSR1 (on-demand snapshot) and SIGINT (flush
     * sinks, then re-raise) handlers. Called by enable(); safe to
     * call more than once.
     */
    void installSignalHandlers();

    /**
     * Register a sink-flush hook run (on the monitor thread) when
     * SIGINT arrives mid-campaign: the CLI registers the tracer's
     * post-mortem dump and the chrome-trace close here so a ^C'd
     * multi-hour campaign still leaves usable artifacts behind.
     */
    void addInterruptFlush(std::function<void()> fn);

    /** Assemble a snapshot now (monitor thread and tests). */
    ProgressSnapshot snapshot();

    /** Heartbeat/TTY records emitted so far (tests). */
    uint64_t recordsEmitted() const { return seq_.load(); }

    /** The process-wide instance (never destroyed). */
    static CampaignTelemetry &instance();

    CampaignTelemetry() = default;
    CampaignTelemetry(const CampaignTelemetry &) = delete;
    CampaignTelemetry &operator=(const CampaignTelemetry &) = delete;

  private:
    void monitorLoop();
    void emitRecord(const ProgressSnapshot &snap, const char *type);
    void emitTty(const ProgressSnapshot &snap, bool final_line);
    /** Emit one record of @p type under lock; updates the rate. */
    void tick(const char *type);

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> seq_{0};

    std::mutex mu_;                ///< sink + campaign metadata
    std::mutex tickMu_;            ///< serializes whole ticks
    std::condition_variable cv_;   ///< wakes/stops the monitor
    std::unique_ptr<std::ostream> file_; ///< null = TTY mode
    uint64_t intervalMs_ = 500;
    bool stopMonitor_ = false;
    std::thread monitor_;

    // Campaign metadata (written in beginCampaign under mu_).
    std::string campaign_;
    uint64_t totalItems_ = 0;
    std::vector<std::string> classNames_;
    std::atomic<bool> campaignActive_{false};
    std::chrono::steady_clock::time_point campaignStart_;

    // Decaying rate estimate state (monitor thread only).
    double rate_ = 0.0;
    uint64_t lastCompleted_ = 0;
    std::chrono::steady_clock::time_point lastTick_;

    std::vector<std::unique_ptr<WorkerProgress>> workers_;
    std::vector<std::function<void()>> interruptFlush_;
};

/**
 * The process telemetry instance when enabled, nullptr otherwise:
 * the one-relaxed-load fast path the campaign hooks test. Campaign
 * entry points (beginCampaign callers) should use
 * telemetryForCampaign() instead, which also honors the environment.
 */
CampaignTelemetry *activeTelemetry();

/**
 * activeTelemetry(), but on first use also consults
 * TURNPIKE_PROGRESS/TURNPIKE_PROGRESS_MS so campaigns inside bench
 * harnesses can be watched without CLI plumbing. Returns nullptr
 * when telemetry is off everywhere.
 */
CampaignTelemetry *telemetryForCampaign();

/**
 * Mark this process as a forked multi-process campaign child: from
 * here on activeTelemetry()/telemetryForCampaign() return nullptr
 * and the chrome trace sink deactivates, so a child can never
 * interleave progress or trace records into file sinks it inherited
 * from its parent. One-way; only runShardsForked() children call it.
 */
void markForkedChild();

/** True in a process that called markForkedChild(). */
bool inForkedChild();

} // namespace turnpike

#endif // TURNPIKE_UTIL_TELEMETRY_HH_
