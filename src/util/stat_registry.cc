#include "util/stat_registry.hh"

#include <algorithm>
#include <cstdio>

#include "util/json.hh"
#include "util/logging.hh"

namespace turnpike {

void
StatRegistry::setMeta(const std::string &key, const std::string &value)
{
    for (auto &kv : meta_) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    meta_.push_back({key, value});
}

bool
StatRegistry::has(const std::string &name) const
{
    for (const Entry &e : entries_)
        if (e.name == name)
            return true;
    return false;
}

void
StatRegistry::addEntry(Entry e)
{
    TP_ASSERT(!has(e.name), "duplicate stat '%s'", e.name.c_str());
    entries_.push_back(std::move(e));
}

void
StatRegistry::addScalar(const std::string &name, uint64_t value,
                        const std::string &desc,
                        const std::string &unit)
{
    Entry e;
    e.kind = Kind::Scalar;
    e.name = name;
    e.desc = desc;
    e.unit = unit;
    e.integral = true;
    e.uvalue = value;
    addEntry(std::move(e));
}

void
StatRegistry::addScalar(const std::string &name, double value,
                        const std::string &desc,
                        const std::string &unit)
{
    Entry e;
    e.kind = Kind::Scalar;
    e.name = name;
    e.desc = desc;
    e.unit = unit;
    e.integral = false;
    e.dvalue = value;
    addEntry(std::move(e));
}

void
StatRegistry::addFormula(const std::string &name,
                         const std::string &expr,
                         std::function<double()> fn,
                         const std::string &desc,
                         const std::string &unit)
{
    Entry e;
    e.kind = Kind::Formula;
    e.name = name;
    e.desc = desc;
    e.unit = unit;
    e.expr = expr;
    e.fn = std::move(fn);
    addEntry(std::move(e));
}

void
StatRegistry::addDistribution(const std::string &name,
                              const Distribution &d,
                              const std::string &desc,
                              const std::string &unit)
{
    Entry e;
    e.kind = Kind::Dist;
    e.name = name;
    e.desc = desc;
    e.unit = unit;
    e.dist = d;
    addEntry(std::move(e));
}

void
StatRegistry::addHistogram(const std::string &name, const Histogram &h,
                           const std::string &desc,
                           const std::string &unit)
{
    Entry e;
    e.kind = Kind::Hist;
    e.name = name;
    e.desc = desc;
    e.unit = unit;
    e.hist = h;
    addEntry(std::move(e));
}

void
StatRegistry::addTimeSeries(TimeSeries series)
{
    for (const std::vector<uint64_t> &row : series.rows)
        TP_ASSERT(row.size() == series.columns.size(),
                  "time series '%s': row arity %zu != %zu columns",
                  series.name.c_str(), row.size(),
                  series.columns.size());
    series_.push_back(std::move(series));
}

void
StatRegistry::setHostProfile(const PhaseProfile &profile)
{
    host_ = profile;
}

void
StatRegistry::setHostResources(const HostResources &res)
{
    hostRes_ = res;
    hasHostRes_ = true;
}

namespace {

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

void
textLine(std::ostream &out, const std::string &name,
         const std::string &value, const std::string &desc,
         const std::string &unit)
{
    // gem5 layout: name, value, then "# desc (unit)".
    char buf[41];
    std::snprintf(buf, sizeof(buf), "%-36s", name.c_str());
    out << buf << ' ';
    std::snprintf(buf, sizeof(buf), "%16s", value.c_str());
    out << buf << "  # " << desc << " (" << unit << ")\n";
}

} // namespace

void
StatRegistry::dumpText(std::ostream &out, bool include_host) const
{
    for (const auto &kv : meta_)
        out << kv.first << ": " << kv.second << '\n';
    if (!meta_.empty())
        out << '\n';

    for (const Entry &e : entries_) {
        switch (e.kind) {
          case Kind::Scalar:
            textLine(out, e.name,
                     e.integral ? std::to_string(e.uvalue)
                                : fmtDouble(e.dvalue),
                     e.desc, e.unit);
            break;
          case Kind::Formula:
            textLine(out, e.name, fmtDouble(e.fn ? e.fn() : 0.0),
                     e.desc + " [" + e.expr + "]", e.unit);
            break;
          case Kind::Dist:
            textLine(out, e.name + ".count",
                     std::to_string(e.dist.count()), e.desc,
                     "samples");
            textLine(out, e.name + ".mean", fmtDouble(e.dist.mean()),
                     e.desc, e.unit);
            textLine(out, e.name + ".min", fmtDouble(e.dist.min()),
                     e.desc, e.unit);
            textLine(out, e.name + ".max", fmtDouble(e.dist.max()),
                     e.desc, e.unit);
            break;
          case Kind::Hist:
            textLine(out, e.name + ".count",
                     std::to_string(e.hist.count()), e.desc,
                     "samples");
            for (size_t i = 0; i < Histogram::kNumBuckets; i++) {
                if (e.hist.bucketCount(i) == 0)
                    continue;
                std::string lo = std::to_string(Histogram::bucketLo(i));
                std::string hi = i >= 64
                    ? std::string("inf")
                    : std::to_string(Histogram::bucketHi(i));
                textLine(out, e.name + "[" + lo + "," + hi + ")",
                         std::to_string(e.hist.bucketCount(i)),
                         e.desc, e.unit);
            }
            break;
        }
    }

    for (const TimeSeries &ts : series_) {
        out << '\n' << ts.name << ": " << ts.desc << '\n';
        for (size_t c = 0; c < ts.columns.size(); c++)
            out << (c ? " " : "  ") << ts.columns[c];
        out << '\n';
        for (const auto &row : ts.rows) {
            out << " ";
            for (uint64_t v : row)
                out << ' ' << v;
            out << '\n';
        }
    }

    if (include_host && !host_.empty()) {
        out << "\nhost phase profile (incl / excl):\n";
        for (const auto &kv : host_.entries()) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "%12.6f s %12.6f s  %6llu calls"
                          "  u %.3f s  s %.3f s  rss %llu KiB",
                          kv.second.seconds,
                          kv.second.exclusiveSeconds,
                          static_cast<unsigned long long>(
                              kv.second.calls),
                          kv.second.userSeconds,
                          kv.second.sysSeconds,
                          static_cast<unsigned long long>(
                              kv.second.maxRssKb));
            std::string v = buf;
            char name[41];
            std::snprintf(name, sizeof(name), "%-36s",
                          kv.first.c_str());
            out << name << ' ' << v << '\n';
        }
    }
    if (include_host && hasHostRes_) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "\nhost resources: max rss %llu KiB, "
                      "user %.3f s, sys %.3f s\n",
                      static_cast<unsigned long long>(
                          hostRes_.maxRssKb),
                      hostRes_.userSeconds, hostRes_.sysSeconds);
        out << buf;
    }
}

void
StatRegistry::dumpJson(std::ostream &out, bool include_host) const
{
    JsonWriter jw(out);
    jw.beginObject();
    jw.field("schema", kStatsSchemaVersion);

    jw.key("meta");
    jw.beginObject();
    for (const auto &kv : meta_)
        jw.field(kv.first, kv.second);
    jw.endObject();

    jw.key("stats");
    jw.beginArray();
    for (const Entry &e : entries_) {
        jw.beginObject();
        jw.field("name", e.name);
        jw.field("desc", e.desc);
        jw.field("unit", e.unit);
        switch (e.kind) {
          case Kind::Scalar:
            jw.field("kind", "scalar");
            if (e.integral)
                jw.field("value", e.uvalue);
            else
                jw.field("value", e.dvalue);
            break;
          case Kind::Formula:
            jw.field("kind", "formula");
            jw.field("expr", e.expr);
            jw.field("value", e.fn ? e.fn() : 0.0);
            break;
          case Kind::Dist:
            jw.field("kind", "distribution");
            jw.field("count", e.dist.count());
            jw.field("sum", e.dist.sum());
            jw.field("min", e.dist.min());
            jw.field("max", e.dist.max());
            jw.field("mean", e.dist.mean());
            break;
          case Kind::Hist:
            jw.field("kind", "histogram");
            jw.field("count", e.hist.count());
            jw.key("buckets");
            jw.beginArray();
            for (size_t i = 0; i < Histogram::kNumBuckets; i++) {
                if (e.hist.bucketCount(i) == 0)
                    continue;
                jw.beginObject();
                jw.field("lo", Histogram::bucketLo(i));
                if (i < 64)
                    jw.field("hi", Histogram::bucketHi(i));
                else
                    jw.field("hi", std::string("inf"));
                jw.field("n", e.hist.bucketCount(i));
                jw.endObject();
            }
            jw.endArray();
            break;
        }
        jw.endObject();
    }
    jw.endArray();

    jw.key("intervals");
    jw.beginArray();
    for (const TimeSeries &ts : series_) {
        jw.beginObject();
        jw.field("name", ts.name);
        jw.field("desc", ts.desc);
        jw.key("columns");
        jw.beginArray();
        for (const std::string &c : ts.columns)
            jw.value(c);
        jw.endArray();
        jw.key("rows");
        jw.beginArray();
        for (const auto &row : ts.rows) {
            jw.beginArray();
            for (uint64_t v : row)
                jw.value(v);
            jw.endArray();
        }
        jw.endArray();
        jw.endObject();
    }
    jw.endArray();

    jw.key("host");
    jw.beginArray();
    if (include_host) {
        for (const auto &kv : host_.entries()) {
            jw.beginObject();
            jw.field("phase", kv.first);
            jw.field("seconds", kv.second.seconds);
            jw.field("exclusive_seconds",
                     kv.second.exclusiveSeconds);
            jw.field("user_seconds", kv.second.userSeconds);
            jw.field("sys_seconds", kv.second.sysSeconds);
            jw.field("max_rss_kb", kv.second.maxRssKb);
            jw.field("calls", kv.second.calls);
            jw.endObject();
        }
    }
    jw.endArray();

    if (include_host && hasHostRes_) {
        jw.key("host_resources");
        jw.beginObject();
        jw.field("max_rss_kb", hostRes_.maxRssKb);
        jw.field("user_seconds", hostRes_.userSeconds);
        jw.field("sys_seconds", hostRes_.sysSeconds);
        jw.endObject();
    }

    jw.endObject();
    out << '\n';
}

} // namespace turnpike
