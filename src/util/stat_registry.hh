/**
 * @file
 * A gem5-style statistics registry: named stats with descriptions
 * and units — scalars, formulas (evaluated at dump time), running
 * distributions and log2 histograms — plus interval time series and
 * a host-side phase profile, with deterministic text-table and JSON
 * dumps.
 *
 * The simulator's components keep accumulating into their plain
 * structs on the hot path (a map lookup per increment would be
 * ruinous); after a run the exporters in core/stats_export.hh
 * snapshot those structs into a registry, which owns naming,
 * description and serialization. Identical runs therefore produce
 * byte-identical dumps — pinned by the observability tests — except
 * for the host-profile section, which dumps wall-clock times and can
 * be excluded.
 */

#ifndef TURNPIKE_UTIL_STAT_REGISTRY_HH_
#define TURNPIKE_UTIL_STAT_REGISTRY_HH_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/phase_timer.hh"
#include "util/stats.hh"

namespace turnpike {

/** The serialized-schema version tag of JSON dumps. */
constexpr const char *kStatsSchemaVersion = "turnpike-stats-v1";

/**
 * A named time series: one row of values per sample, a fixed column
 * set. The pipeline's interval sampler produces one of these.
 */
struct TimeSeries
{
    std::string name;
    std::string desc;
    std::vector<std::string> columns;
    std::vector<std::vector<uint64_t>> rows;
};

/** Registry of named stats; see the file comment. */
class StatRegistry
{
  public:
    /** Identification fields dumped into the "meta" section. */
    void setMeta(const std::string &key, const std::string &value);

    void addScalar(const std::string &name, uint64_t value,
                   const std::string &desc,
                   const std::string &unit = "count");
    void addScalar(const std::string &name, double value,
                   const std::string &desc,
                   const std::string &unit = "count");

    /**
     * A derived stat: @p expr documents the formula (e.g.
     * "sim.insts / sim.cycles"); @p fn computes the value at dump
     * time, so late additions to the registry are reflected.
     */
    void addFormula(const std::string &name, const std::string &expr,
                    std::function<double()> fn,
                    const std::string &desc,
                    const std::string &unit = "ratio");

    void addDistribution(const std::string &name,
                         const Distribution &d,
                         const std::string &desc,
                         const std::string &unit = "count");

    void addHistogram(const std::string &name, const Histogram &h,
                      const std::string &desc,
                      const std::string &unit = "count");

    void addTimeSeries(TimeSeries series);

    /** Host wall-clock phases (kept apart; see file comment). */
    void setHostProfile(const PhaseProfile &profile);

    /**
     * Process-wide getrusage totals (max RSS, user/sys CPU). Dumped
     * in the host section only — like the phase profile, they are
     * wall-clock observations excluded from deterministic dumps.
     */
    void setHostResources(const HostResources &res);

    /** Number of registered stats (all kinds, series excluded). */
    size_t size() const { return entries_.size(); }

    /** True when a stat of @p name is registered. */
    bool has(const std::string &name) const;

    /**
     * Aligned gem5-style text dump: one line per scalar/formula,
     * expanded lines for distributions/histograms, then time series
     * and (unless excluded) the host profile.
     */
    void dumpText(std::ostream &out, bool include_host = true) const;

    /**
     * JSON dump (schema kStatsSchemaVersion, validated by
     * tools/stats_schema_check.py). Deterministic given equal
     * registered values when @p include_host is false.
     */
    void dumpJson(std::ostream &out, bool include_host = true) const;

  private:
    enum class Kind { Scalar, Formula, Dist, Hist };

    struct Entry
    {
        Kind kind;
        std::string name;
        std::string desc;
        std::string unit;
        std::string expr;            ///< Formula only
        bool integral = false;       ///< Scalar: uint64 vs double
        uint64_t uvalue = 0;
        double dvalue = 0.0;
        std::function<double()> fn;  ///< Formula only
        Distribution dist;           ///< Dist only
        Histogram hist;              ///< Hist only
    };

    void addEntry(Entry e);

    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<Entry> entries_;
    std::vector<TimeSeries> series_;
    PhaseProfile host_;
    HostResources hostRes_;
    bool hasHostRes_ = false;
};

} // namespace turnpike

#endif // TURNPIKE_UTIL_STAT_REGISTRY_HH_
