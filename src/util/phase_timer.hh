/**
 * @file
 * Host-side self-profiling: named wall-clock phase accumulators and
 * an RAII scope timer. The compiler driver wraps each pass, and the
 * runner wraps the simulate/interpret phases, so every stats dump
 * carries a built-in host-performance baseline for perf work.
 *
 * Each phase records both *inclusive* wall time (construction to
 * destruction) and *exclusive* wall time (inclusive minus time spent
 * in nested ScopedPhaseTimers on the same thread): a parent phase
 * like host.compile that wraps every compile.* pass no longer
 * double-counts its children in totals. Nesting is tracked with a
 * per-thread timer stack, so it works even when parent and child
 * book into different PhaseProfiles that are merged later (exactly
 * what the runner/compiler pair does).
 *
 * Per-phase host resources ride along: getrusage(RUSAGE_THREAD)
 * user/sys CPU deltas and the max-RSS high-water mark observed at
 * phase end, so campaign memory growth shows up phase by phase.
 *
 * Phase times are *host* observations: they never feed back into
 * simulated behaviour, and the stats registry keeps them in a
 * separate section so deterministic dumps can exclude them. When a
 * chrome trace sink is active (util/chrome_trace.hh) each completed
 * phase additionally emits an "X" span on this thread's track.
 */

#ifndef TURNPIKE_UTIL_PHASE_TIMER_HH_
#define TURNPIKE_UTIL_PHASE_TIMER_HH_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include <sys/resource.h>

#include "util/chrome_trace.hh"

namespace turnpike {

/** Accumulated wall-clock time and resources of one named phase. */
struct PhaseEntry
{
    /** Inclusive wall seconds (contains nested phases). */
    double seconds = 0.0;
    /** Exclusive wall seconds (nested phase time subtracted). */
    double exclusiveSeconds = 0.0;
    /** getrusage(RUSAGE_THREAD) CPU deltas across the phase. */
    double userSeconds = 0.0;
    double sysSeconds = 0.0;
    /** Process max RSS (KiB) high-water mark seen at phase end. */
    uint64_t maxRssKb = 0;
    uint64_t calls = 0;
};

/** Process-wide getrusage(RUSAGE_SELF) totals for stats dumps. */
struct HostResources
{
    double userSeconds = 0.0;
    double sysSeconds = 0.0;
    uint64_t maxRssKb = 0;
};

inline HostResources
captureHostResources()
{
    HostResources r;
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
        r.userSeconds = double(ru.ru_utime.tv_sec) +
                        double(ru.ru_utime.tv_usec) * 1e-6;
        r.sysSeconds = double(ru.ru_stime.tv_sec) +
                       double(ru.ru_stime.tv_usec) * 1e-6;
        r.maxRssKb = uint64_t(ru.ru_maxrss);
    }
    return r;
}

/** A set of named phase accumulators (deterministic name order). */
class PhaseProfile
{
  public:
    /**
     * Account one completed execution of @p name with wall time
     * only (manual call sites that time a region by hand; treated
     * as a leaf, so exclusive == inclusive).
     */
    void add(const std::string &name, double seconds)
    {
        PhaseEntry &e = entries_[name];
        e.seconds += seconds;
        e.exclusiveSeconds += seconds;
        e.calls++;
    }

    /** Account one completed execution with the full sample. */
    void addSample(const std::string &name, double inclusive,
                   double exclusive, double user, double sys,
                   uint64_t rss_kb)
    {
        PhaseEntry &e = entries_[name];
        e.seconds += inclusive;
        e.exclusiveSeconds += exclusive;
        e.userSeconds += user;
        e.sysSeconds += sys;
        e.maxRssKb = std::max(e.maxRssKb, rss_kb);
        e.calls++;
    }

    /** Fold another profile into this one. */
    void merge(const PhaseProfile &other)
    {
        for (const auto &kv : other.entries_) {
            PhaseEntry &e = entries_[kv.first];
            e.seconds += kv.second.seconds;
            e.exclusiveSeconds += kv.second.exclusiveSeconds;
            e.userSeconds += kv.second.userSeconds;
            e.sysSeconds += kv.second.sysSeconds;
            e.maxRssKb = std::max(e.maxRssKb, kv.second.maxRssKb);
            e.calls += kv.second.calls;
        }
    }

    bool empty() const { return entries_.empty(); }

    const std::map<std::string, PhaseEntry> &entries() const
    {
        return entries_;
    }

  private:
    std::map<std::string, PhaseEntry> entries_;
};

/**
 * RAII timer: measures from construction to destruction and books
 * the elapsed wall-clock time into a PhaseProfile. A null profile
 * disables the timer (so call sites need no branches).
 */
class ScopedPhaseTimer
{
  public:
    ScopedPhaseTimer(PhaseProfile *profile, const char *name)
        : profile_(profile), name_(name)
    {
        if (!profile_)
            return;
        start_ = std::chrono::steady_clock::now();
        struct rusage ru;
        if (getrusage(RUSAGE_THREAD, &ru) == 0) {
            startUser_ = double(ru.ru_utime.tv_sec) +
                         double(ru.ru_utime.tv_usec) * 1e-6;
            startSys_ = double(ru.ru_stime.tv_sec) +
                        double(ru.ru_stime.tv_usec) * 1e-6;
        }
        parent_ = t_stack_;
        t_stack_ = this;
    }

    ~ScopedPhaseTimer()
    {
        if (!profile_)
            return;
        auto end = std::chrono::steady_clock::now();
        double incl =
            std::chrono::duration<double>(end - start_).count();
        double excl = incl - childSeconds_;
        if (excl < 0.0)
            excl = 0.0;
        double user = 0.0, sys = 0.0;
        uint64_t rssKb = 0;
        struct rusage ru;
        if (getrusage(RUSAGE_THREAD, &ru) == 0) {
            user = double(ru.ru_utime.tv_sec) +
                   double(ru.ru_utime.tv_usec) * 1e-6 - startUser_;
            sys = double(ru.ru_stime.tv_sec) +
                  double(ru.ru_stime.tv_usec) * 1e-6 - startSys_;
            if (user < 0.0)
                user = 0.0;
            if (sys < 0.0)
                sys = 0.0;
            rssKb = uint64_t(ru.ru_maxrss);
        }
        profile_->addSample(name_, incl, excl, user, sys, rssKb);
        t_stack_ = parent_;
        if (parent_)
            parent_->childSeconds_ += incl;
        if (ChromeTraceWriter *ct = activeChromeTrace()) {
            uint64_t durUs = uint64_t(incl * 1e6);
            uint64_t endUs = ct->nowUs();
            uint64_t tsUs = endUs > durUs ? endUs - durUs : 0;
            ct->completeEvent(name_, "phase", kChromePidHost,
                              threadChromeTid(), tsUs, durUs);
        }
    }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

  private:
    PhaseProfile *profile_;
    const char *name_;
    std::chrono::steady_clock::time_point start_;
    double startUser_ = 0.0;
    double startSys_ = 0.0;
    /** Inclusive seconds of directly nested timers (this thread). */
    double childSeconds_ = 0.0;
    ScopedPhaseTimer *parent_ = nullptr;
    /** Innermost active timer on this thread. */
    static inline thread_local ScopedPhaseTimer *t_stack_ = nullptr;
};

} // namespace turnpike

#endif // TURNPIKE_UTIL_PHASE_TIMER_HH_
