/**
 * @file
 * Host-side self-profiling: named wall-clock phase accumulators and
 * an RAII scope timer. The compiler driver wraps each pass, and the
 * runner wraps the simulate/interpret phases, so every stats dump
 * carries a built-in host-performance baseline for perf work.
 *
 * Phase times are *host* observations: they never feed back into
 * simulated behaviour, and the stats registry keeps them in a
 * separate section so deterministic dumps can exclude them.
 */

#ifndef TURNPIKE_UTIL_PHASE_TIMER_HH_
#define TURNPIKE_UTIL_PHASE_TIMER_HH_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace turnpike {

/** Accumulated wall-clock time of one named phase. */
struct PhaseEntry
{
    double seconds = 0.0;
    uint64_t calls = 0;
};

/** A set of named phase accumulators (deterministic name order). */
class PhaseProfile
{
  public:
    /** Account one completed execution of @p name. */
    void add(const std::string &name, double seconds)
    {
        PhaseEntry &e = entries_[name];
        e.seconds += seconds;
        e.calls++;
    }

    /** Fold another profile into this one. */
    void merge(const PhaseProfile &other)
    {
        for (const auto &kv : other.entries_) {
            PhaseEntry &e = entries_[kv.first];
            e.seconds += kv.second.seconds;
            e.calls += kv.second.calls;
        }
    }

    bool empty() const { return entries_.empty(); }

    const std::map<std::string, PhaseEntry> &entries() const
    {
        return entries_;
    }

  private:
    std::map<std::string, PhaseEntry> entries_;
};

/**
 * RAII timer: measures from construction to destruction and books
 * the elapsed wall-clock time into a PhaseProfile. A null profile
 * disables the timer (so call sites need no branches).
 */
class ScopedPhaseTimer
{
  public:
    ScopedPhaseTimer(PhaseProfile *profile, const char *name)
        : profile_(profile), name_(name)
    {
        if (profile_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedPhaseTimer()
    {
        if (!profile_)
            return;
        auto end = std::chrono::steady_clock::now();
        profile_->add(name_,
                      std::chrono::duration<double>(end - start_)
                          .count());
    }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

  private:
    PhaseProfile *profile_;
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace turnpike

#endif // TURNPIKE_UTIL_PHASE_TIMER_HH_
