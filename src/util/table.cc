#include "util/table.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace turnpike {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    TP_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    TP_ASSERT(cells.size() == headers_.size(),
              "row arity %zu != header arity %zu",
              cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::toText() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); c++) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); c++) {
            out << row[c];
            if (c + 1 < row.size())
                out << ',';
        }
        out << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

std::string
cell(double v, int digits)
{
    return strfmt("%.*f", digits, v);
}

std::string
cell(uint64_t v)
{
    return strfmt("%llu", static_cast<unsigned long long>(v));
}

std::string
pct(double ratio, int digits)
{
    return strfmt("%.*f%%", digits, ratio * 100.0);
}

} // namespace turnpike
