#include "util/chrome_trace.hh"

#include <atomic>

#include "util/json.hh"
#include "util/telemetry.hh"

namespace turnpike {

namespace {
std::atomic<ChromeTraceWriter *> g_chrome{nullptr};
thread_local uint64_t t_chromeTid = kChromeTidMain;
} // namespace

uint64_t
threadChromeTid()
{
    return t_chromeTid;
}

void
setThreadChromeTid(uint64_t tid)
{
    t_chromeTid = tid;
}

void
setActiveChromeTrace(ChromeTraceWriter *w)
{
    g_chrome.store(w, std::memory_order_relaxed);
}

ChromeTraceWriter *
activeChromeTrace()
{
    // A forked campaign child inherits the parent's writer pointer
    // (and its half-written output stream); it must never emit.
    if (inForkedChild())
        return nullptr;
    return g_chrome.load(std::memory_order_relaxed);
}

ChromeTraceWriter::ChromeTraceWriter(std::ostream &out)
    : out_(out), t0_(std::chrono::steady_clock::now())
{
    out_ << "{\"traceEvents\":[\n";
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    finish();
}

uint64_t
ChromeTraceWriter::nowUs() const
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count());
}

void
ChromeTraceWriter::emitCommon(const char *ph, const std::string &name,
                              const std::string &cat, uint64_t pid,
                              uint64_t tid, uint64_t ts_us,
                              const uint64_t *dur_us,
                              const std::string &args_json)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_)
        return;
    if (events_ > 0)
        out_ << ",\n";
    out_ << "{\"ph\":\"" << ph << "\",\"name\":\"" << jsonEscape(name)
         << "\",\"cat\":\"" << jsonEscape(cat) << "\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"ts\":" << ts_us;
    if (dur_us)
        out_ << ",\"dur\":" << *dur_us;
    if (ph[0] == 'i')
        out_ << ",\"s\":\"t\"";
    if (!args_json.empty())
        out_ << ",\"args\":{" << args_json << "}";
    out_ << "}";
    events_++;
}

void
ChromeTraceWriter::completeEvent(const std::string &name,
                                 const std::string &cat, uint64_t pid,
                                 uint64_t tid, uint64_t ts_us,
                                 uint64_t dur_us,
                                 const std::string &args_json)
{
    emitCommon("X", name, cat, pid, tid, ts_us, &dur_us, args_json);
}

void
ChromeTraceWriter::instantEvent(const std::string &name,
                                const std::string &cat, uint64_t pid,
                                uint64_t tid, uint64_t ts_us,
                                const std::string &args_json)
{
    emitCommon("i", name, cat, pid, tid, ts_us, nullptr, args_json);
}

void
ChromeTraceWriter::processName(uint64_t pid, const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_)
        return;
    if (events_ > 0)
        out_ << ",\n";
    out_ << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\"" << jsonEscape(name)
         << "\"}}";
    events_++;
}

void
ChromeTraceWriter::threadName(uint64_t pid, uint64_t tid,
                              const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_)
        return;
    if (events_ > 0)
        out_ << ",\n";
    out_ << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
         << jsonEscape(name) << "\"}}";
    events_++;
}

void
ChromeTraceWriter::finish()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_)
        return;
    finished_ = true;
    out_ << "\n],\"displayTimeUnit\":\"ms\"}\n";
    out_.flush();
}

} // namespace turnpike
