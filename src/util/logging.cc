#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace turnpike {

std::string
vstrfmt(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrfmt(fmt, args);
    va_end(args);
    return s;
}

namespace {

void
emit(const char *prefix, const char *fmt, va_list args)
{
    // Campaign workers report concurrently; keep lines whole.
    static std::mutex mu;
    std::string msg = vstrfmt(fmt, args);
    std::lock_guard<std::mutex> lock(mu);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

// Set once at startup by a single-threaded driver (see the header),
// so the unsynchronized read in panic() is benign.
std::function<void()> panic_hook;

} // namespace

void
setPanicHook(std::function<void()> hook)
{
    panic_hook = std::move(hook);
}

void
panic(const char *fmt, ...)
{
    // Run the post-mortem hook first (it may write a trace dump);
    // guard against a panic inside the hook re-entering it.
    static thread_local bool in_hook = false;
    if (panic_hook && !in_hook) {
        in_hook = true;
        panic_hook();
        in_hook = false;
    }
    va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

} // namespace turnpike
