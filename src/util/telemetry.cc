#include "util/telemetry.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unistd.h>

#include "util/json.hh"

namespace turnpike {

namespace {

/**
 * The globally visible instance pointer. Campaign hooks load this
 * with relaxed ordering; it is only ever set while no campaign is
 * running, and the campaign start/join edges provide the needed
 * synchronization for everything else.
 */
std::atomic<CampaignTelemetry *> g_active{nullptr};

/** See markForkedChild(): one-way kill switch for child processes. */
std::atomic<bool> g_forkedChild{false};

/**
 * Worker slots to provision per campaign: enough for any plausible
 * pool, and for TURNPIKE_JOBS when it asks for more (the campaign
 * service spawns up to that many workers; util/ cannot see
 * core/parallel's parser, so the clamp is repeated here).
 */
size_t
workerSlotTarget()
{
    size_t slots = 64;
    if (const char *env = std::getenv("TURNPIKE_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && end != env && *end == '\0' && v > 0)
            slots = std::max<size_t>(
                slots, size_t(std::min<long>(v, 1024)));
    }
    return slots;
}

// Async-signal-safe handlers only set flags; the monitor thread
// polls them. volatile sig_atomic_t is the only type the C standard
// guarantees for this.
volatile std::sig_atomic_t g_snapshotRequested = 0;
volatile std::sig_atomic_t g_interruptRequested = 0;

void
onSigusr1(int)
{
    g_snapshotRequested = 1;
}

void
onSigint(int)
{
    // First ^C: request a flush. Second ^C before the monitor gets
    // to it: die immediately with the default disposition so a hung
    // flush can't trap the user.
    if (g_interruptRequested) {
        std::signal(SIGINT, SIG_DFL);
        std::raise(SIGINT);
        return;
    }
    g_interruptRequested = 1;
}

} // namespace

CampaignTelemetry &
CampaignTelemetry::instance()
{
    // Leaked on purpose: the monitor thread may outlive main()'s
    // statics during abnormal exits, and a process-lifetime object
    // sidesteps destruction-order hazards entirely.
    static CampaignTelemetry *inst = new CampaignTelemetry();
    return *inst;
}

void
markForkedChild()
{
    g_forkedChild.store(true, std::memory_order_relaxed);
}

bool
inForkedChild()
{
    return g_forkedChild.load(std::memory_order_relaxed);
}

CampaignTelemetry *
activeTelemetry()
{
    if (inForkedChild())
        return nullptr;
    return g_active.load(std::memory_order_relaxed);
}

CampaignTelemetry *
telemetryForCampaign()
{
    if (inForkedChild())
        return nullptr;
    if (CampaignTelemetry *t = activeTelemetry())
        return t;
    // One-shot environment probe so bench harnesses and library
    // users get telemetry from TURNPIKE_PROGRESS without plumbing.
    static bool probed = false;
    if (probed)
        return nullptr;
    probed = true;
    const char *spec = std::getenv("TURNPIKE_PROGRESS");
    if (!spec || !*spec)
        return nullptr;
    uint64_t ms = 500;
    if (const char *msEnv = std::getenv("TURNPIKE_PROGRESS_MS")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(msEnv, &end, 10);
        if (end && *end == '\0' && v > 0)
            ms = v;
    }
    std::string path = std::strcmp(spec, "tty") == 0 ? "" : spec;
    CampaignTelemetry &t = CampaignTelemetry::instance();
    t.enable(path, ms);
    return &t;
}

void
CampaignTelemetry::enable(const std::string &path, uint64_t interval_ms)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (path.empty()) {
        file_.reset();
    } else {
        auto f = std::make_unique<std::ofstream>(path,
                                                 std::ios::trunc);
        if (!*f) {
            std::fprintf(stderr,
                         "turnpike: cannot open progress file %s\n",
                         path.c_str());
            return;
        }
        file_ = std::move(f);
    }
    intervalMs_ = std::max<uint64_t>(1, interval_ms);
    enabled_.store(true);
    g_active.store(this, std::memory_order_relaxed);
    installSignalHandlers();
}

void
CampaignTelemetry::disable()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopMonitor_ = true;
    }
    cv_.notify_all();
    if (monitor_.joinable())
        monitor_.join();
    std::lock_guard<std::mutex> lk(mu_);
    stopMonitor_ = false;
    file_.reset();
    enabled_.store(false);
    g_active.store(nullptr, std::memory_order_relaxed);
}

void
CampaignTelemetry::installSignalHandlers()
{
    std::signal(SIGUSR1, onSigusr1);
    std::signal(SIGINT, onSigint);
}

void
CampaignTelemetry::addInterruptFlush(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lk(mu_);
    interruptFlush_.push_back(std::move(fn));
}

void
CampaignTelemetry::beginCampaign(const std::string &name,
                                 uint64_t total_items,
                                 const std::vector<std::string> &class_names)
{
    if (!enabled_.load())
        return;
    {
        std::lock_guard<std::mutex> lk(mu_);
        campaign_ = name;
        totalItems_ = total_items;
        classNames_ = class_names;
        if (classNames_.size() > size_t(kMaxProgressClasses))
            classNames_.resize(kMaxProgressClasses);
        // Enough slots for any plausible worker count (and for an
        // oversized TURNPIKE_JOBS); slots are tiny and growing
        // mid-campaign would race the monitor.
        size_t slots = workerSlotTarget();
        while (workers_.size() < slots)
            workers_.push_back(std::make_unique<WorkerProgress>());
        for (auto &w : workers_) {
            w->started.store(0, std::memory_order_relaxed);
            w->completed.store(0, std::memory_order_relaxed);
            for (auto &c : w->classes)
                c.store(0, std::memory_order_relaxed);
            w->currentItem.store(0, std::memory_order_relaxed);
            w->busy.store(0, std::memory_order_relaxed);
        }
        campaignStart_ = std::chrono::steady_clock::now();
        lastTick_ = campaignStart_;
        rate_ = 0.0;
        lastCompleted_ = 0;
        campaignActive_.store(true);
    }
    tick("heartbeat");
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!monitor_.joinable())
            monitor_ = std::thread([this] { monitorLoop(); });
    }
}

void
CampaignTelemetry::endCampaign()
{
    if (!enabled_.load() || !campaignActive_.load())
        return;
    // tick("final") clears campaignActive_ under tickMu_, so a
    // monitor heartbeat racing this call either lands before the
    // final record or is dropped — the final record is always last.
    tick("final");
    std::lock_guard<std::mutex> lk(mu_);
    if (!file_) {
        // Leave the TTY progress line behind instead of overwriting
        // it with the next shell prompt.
        std::fputc('\n', stderr);
    } else {
        file_->flush();
    }
}

void
CampaignTelemetry::itemStarted(unsigned worker, uint64_t item)
{
    if (worker >= workers_.size())
        return;
    WorkerProgress &w = *workers_[worker];
    w.currentItem.store(item, std::memory_order_relaxed);
    w.busy.store(1, std::memory_order_relaxed);
    w.started.fetch_add(1, std::memory_order_relaxed);
}

void
CampaignTelemetry::itemFinished(unsigned worker, int klass)
{
    if (worker >= workers_.size())
        return;
    WorkerProgress &w = *workers_[worker];
    if (klass >= 0 && klass < kMaxProgressClasses)
        w.classes[klass].fetch_add(1, std::memory_order_relaxed);
    w.busy.store(0, std::memory_order_relaxed);
    // completed is bumped last: a monitor snapshot that sees the
    // completion also sees the class tally (same-thread ordering,
    // and readers only ever sum these monotone counters).
    w.completed.fetch_add(1, std::memory_order_relaxed);
}

ProgressSnapshot
CampaignTelemetry::snapshot()
{
    ProgressSnapshot snap;
    std::lock_guard<std::mutex> lk(mu_);
    snap.campaign = campaign_;
    snap.totalItems = totalItems_;
    snap.classNames = classNames_;
    auto now = std::chrono::steady_clock::now();
    snap.elapsedSeconds =
        std::chrono::duration<double>(now - campaignStart_).count();
    for (size_t i = 0; i < workers_.size(); ++i) {
        const WorkerProgress &w = *workers_[i];
        // Read completed before classes so the per-class sum can
        // only exceed, never trail, what we report as completed...
        // then clamp the other way: totals stay self-consistent.
        uint64_t done = w.completed.load(std::memory_order_relaxed);
        uint64_t started = w.started.load(std::memory_order_relaxed);
        snap.started += started;
        snap.completed += done;
        for (int c = 0; c < kMaxProgressClasses; ++c)
            snap.classCounts[c] +=
                w.classes[c].load(std::memory_order_relaxed);
        if (started > 0 || done > 0) {
            ProgressSnapshot::Worker ws;
            ws.id = unsigned(i);
            ws.completed = done;
            ws.currentItem =
                w.currentItem.load(std::memory_order_relaxed);
            ws.busy = w.busy.load(std::memory_order_relaxed) != 0;
            snap.workers.push_back(ws);
        }
    }
    uint64_t classSum = 0;
    for (int c = 0; c < kMaxProgressClasses; ++c)
        classSum += snap.classCounts[c];
    if (classSum > snap.completed)
        snap.completed = classSum;
    if (snap.started < snap.completed)
        snap.started = snap.completed;
    snap.ratePerSecond = rate_;
    if (rate_ > 0.0 && snap.totalItems > snap.completed)
        snap.etaSeconds = double(snap.totalItems - snap.completed) / rate_;
    return snap;
}

void
CampaignTelemetry::tick(const char *type)
{
    std::lock_guard<std::mutex> tg(tickMu_);
    bool isFinal = std::strcmp(type, "final") == 0;
    // A monitor tick that raced endCampaign() gets dropped here
    // instead of writing a record after the final one.
    if (!isFinal && !campaignActive_.load())
        return;
    ProgressSnapshot snap = snapshot();
    {
        // Fold this tick's observed progress into the decaying rate
        // estimate: new_rate = a*instant + (1-a)*old, a=0.3. The
        // first observation seeds the estimate directly.
        std::lock_guard<std::mutex> lk(mu_);
        auto now = std::chrono::steady_clock::now();
        double dt =
            std::chrono::duration<double>(now - lastTick_).count();
        if (dt > 1e-6 && snap.completed >= lastCompleted_) {
            double instant =
                double(snap.completed - lastCompleted_) / dt;
            rate_ = rate_ <= 0.0 ? instant
                                 : 0.3 * instant + 0.7 * rate_;
            lastTick_ = now;
            lastCompleted_ = snap.completed;
        }
        snap.ratePerSecond = rate_;
        snap.etaSeconds =
            (rate_ > 0.0 && snap.totalItems > snap.completed)
                ? double(snap.totalItems - snap.completed) / rate_
                : 0.0;
    }
    emitRecord(snap, type);
    if (isFinal)
        campaignActive_.store(false);
}

void
CampaignTelemetry::emitRecord(const ProgressSnapshot &snap,
                              const char *type)
{
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t seq = seq_.fetch_add(1);
    if (!file_) {
        emitTty(snap, std::strcmp(type, "final") == 0);
        return;
    }
    JsonWriter jw(*file_, /*indent_step=*/0);
    jw.beginObject();
    jw.field("schema", kProgressSchemaVersion);
    jw.field("type", type);
    jw.field("seq", seq);
    jw.field("elapsed_ms", uint64_t(snap.elapsedSeconds * 1000.0));
    jw.field("campaign", snap.campaign);
    jw.field("total", snap.totalItems);
    jw.field("started", snap.started);
    jw.field("completed", snap.completed);
    jw.key("classes");
    jw.beginObject();
    for (size_t c = 0; c < snap.classNames.size(); ++c)
        jw.field(snap.classNames[c], snap.classCounts[c]);
    jw.endObject();
    jw.field("rate_per_s", snap.ratePerSecond);
    jw.field("eta_s", snap.etaSeconds);
    jw.key("workers");
    jw.beginArray();
    for (const auto &w : snap.workers) {
        jw.beginObject();
        jw.field("id", uint64_t(w.id));
        jw.field("completed", w.completed);
        jw.field("busy", w.busy);
        jw.field("current_item", w.currentItem);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    jw.newline();
    file_->flush();
}

void
CampaignTelemetry::emitTty(const ProgressSnapshot &snap, bool final_line)
{
    // One \r-rewritten line; fits in 80 columns for typical counts.
    char buf[256];
    char classes[128] = "";
    size_t off = 0;
    for (size_t c = 0;
         c < snap.classNames.size() && off + 32 < sizeof(classes);
         ++c) {
        off += std::snprintf(classes + off, sizeof(classes) - off,
                             "%s%s=%" PRIu64, c ? " " : "",
                             snap.classNames[c].c_str(),
                             snap.classCounts[c]);
    }
    std::snprintf(buf, sizeof(buf),
                  "\r[%s] %" PRIu64 "/%" PRIu64
                  " (%.0f%%) %s | %.1f/s eta %.0fs   ",
                  snap.campaign.c_str(), snap.completed,
                  snap.totalItems,
                  snap.totalItems
                      ? 100.0 * double(snap.completed) /
                            double(snap.totalItems)
                      : 100.0,
                  classes, snap.ratePerSecond, snap.etaSeconds);
    std::fputs(buf, stderr);
    if (final_line)
        std::fflush(stderr);
}

void
CampaignTelemetry::monitorLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (!stopMonitor_) {
        // Wait in bounded chunks so signal flags set between
        // heartbeats are serviced within ~200 ms even with a long
        // TURNPIKE_PROGRESS_MS.
        uint64_t remaining = intervalMs_;
        bool woke = false;
        while (remaining > 0 && !stopMonitor_ && !woke) {
            uint64_t chunk = std::min<uint64_t>(remaining, 200);
            cv_.wait_for(lk, std::chrono::milliseconds(chunk));
            remaining -= chunk;
            if (g_snapshotRequested || g_interruptRequested)
                woke = true;
        }
        if (stopMonitor_)
            break;
        bool wantSnapshot = g_snapshotRequested != 0;
        bool wantInterrupt = g_interruptRequested != 0;
        g_snapshotRequested = 0;
        bool active = campaignActive_.load();
        lk.unlock();
        if (wantInterrupt) {
            if (active)
                tick("interrupt");
            std::vector<std::function<void()>> hooks;
            {
                std::lock_guard<std::mutex> g(mu_);
                hooks = interruptFlush_;
            }
            for (auto &fn : hooks)
                fn();
            std::fputs("\nturnpike: interrupted, partial telemetry "
                       "flushed\n",
                       stderr);
            std::signal(SIGINT, SIG_DFL);
            std::raise(SIGINT);
            // Unreachable in practice; keep the loop well-formed.
            lk.lock();
            continue;
        }
        if (active)
            tick(wantSnapshot ? "snapshot" : "heartbeat");
        lk.lock();
    }
}

} // namespace turnpike
