/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis and fault injection. All randomness in the project flows
 * through Rng so experiments are reproducible from a single seed.
 */

#ifndef TURNPIKE_UTIL_RNG_HH_
#define TURNPIKE_UTIL_RNG_HH_

#include <cstdint>

namespace turnpike {

/**
 * A small, fast, deterministic generator (splitmix64 seeded
 * xorshift128+). Not cryptographic; chosen for speed and portability
 * of the generated sequence across platforms.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double real();

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool chance(double p);

  private:
    uint64_t s0_;
    uint64_t s1_;
};

} // namespace turnpike

#endif // TURNPIKE_UTIL_RNG_HH_
