#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace turnpike {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double x : xs) {
        TP_ASSERT(x > 0.0, "geomean requires positive values, got %f", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Distribution::reset()
{
    *this = Distribution();
}

void
Histogram::merge(const Histogram &other)
{
    for (size_t i = 0; i < kNumBuckets; i++)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
}

void
Histogram::reset()
{
    *this = Histogram();
}

void
StatSet::inc(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string &name, uint64_t value)
{
    counters_[name] = value;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatSet::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

} // namespace turnpike
