/**
 * @file
 * Chrome trace_event JSON export: one timeline combining host
 * compiler/simulator phases, campaign trial spans (one track per
 * worker) and simulated pipeline events, loadable in
 * ui.perfetto.dev or chrome://tracing.
 *
 * Format: the "JSON object format" — {"traceEvents": [...]} — with
 * the subset of the trace_event spec every viewer supports:
 *   - "X" complete events (ts + dur, both in microseconds),
 *   - "i" instant events,
 *   - "M" metadata events (process_name / thread_name).
 * Track layout: pid 1 = "turnpike host" (tid 0 main thread, tid w+1
 * campaign worker w), pid 2 = "turnpike sim" (simulated pipeline
 * events on a virtual timebase of 1 cycle = 1 us).
 *
 * Writes are serialized by an internal mutex: events arrive from
 * the main thread (phases), campaign workers (trial spans) and the
 * traced simulation, and interleaved emission must still be one
 * valid JSON document. Event order in the file is arrival order —
 * viewers sort by ts, so cross-thread ordering does not matter.
 *
 * A process-wide active writer (setActiveChromeTrace) mirrors the
 * telemetry pattern: phase timers and campaign hooks check a relaxed
 * atomic pointer and do nothing when no chrome sink is configured.
 */

#ifndef TURNPIKE_UTIL_CHROME_TRACE_HH_
#define TURNPIKE_UTIL_CHROME_TRACE_HH_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

namespace turnpike {

/** Track constants: see file comment. */
constexpr uint64_t kChromePidHost = 1;
constexpr uint64_t kChromePidSim = 2;
constexpr uint64_t kChromeTidMain = 0;

/** tid of campaign worker @p w (0-based) on the host process. */
inline uint64_t
chromeWorkerTid(unsigned w)
{
    return uint64_t(w) + 1;
}

class ChromeTraceWriter
{
  public:
    /** Starts the document; @p out must outlive the writer. */
    explicit ChromeTraceWriter(std::ostream &out);
    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** Microseconds since this writer was constructed. */
    uint64_t nowUs() const;

    /**
     * An "X" span. @p ts_us/@p dur_us are explicit so both host
     * wall-clock spans (nowUs-based) and simulated cycle spans can
     * use the same call. @p args_json, when non-empty, must be the
     * inner text of a JSON object ("\"k\": 1, ...").
     */
    void completeEvent(const std::string &name, const std::string &cat,
                       uint64_t pid, uint64_t tid, uint64_t ts_us,
                       uint64_t dur_us,
                       const std::string &args_json = "");

    /** An "i" thread-scoped instant event. */
    void instantEvent(const std::string &name, const std::string &cat,
                      uint64_t pid, uint64_t tid, uint64_t ts_us,
                      const std::string &args_json = "");

    /** "M" process_name / thread_name metadata. */
    void processName(uint64_t pid, const std::string &name);
    void threadName(uint64_t pid, uint64_t tid, const std::string &name);

    /** Close the JSON document (idempotent; also run by the dtor). */
    void finish();

    uint64_t eventsWritten() const { return events_; }

  private:
    void emitCommon(const char *ph, const std::string &name,
                    const std::string &cat, uint64_t pid, uint64_t tid,
                    uint64_t ts_us, const uint64_t *dur_us,
                    const std::string &args_json);

    std::ostream &out_;
    std::mutex mu_;
    uint64_t events_ = 0;
    bool finished_ = false;
    std::chrono::steady_clock::time_point t0_;
};

/** Install/clear the process-wide chrome sink (main thread only). */
void setActiveChromeTrace(ChromeTraceWriter *w);

/** The active sink, or nullptr — one relaxed load, hook fast path. */
ChromeTraceWriter *activeChromeTrace();

/**
 * The chrome tid host-side spans from this thread belong to:
 * kChromeTidMain by default; the campaign thread pool assigns
 * chromeWorkerTid(w) to worker w so trial spans and the phase
 * timers that fire inside a trial land on that worker's track.
 */
uint64_t threadChromeTid();
void setThreadChromeTid(uint64_t tid);

} // namespace turnpike

#endif // TURNPIKE_UTIL_CHROME_TRACE_HH_
