/**
 * @file
 * Column-aligned text table and CSV emission used by the benchmark
 * harnesses to print the rows/series each paper figure reports.
 */

#ifndef TURNPIKE_UTIL_TABLE_HH_
#define TURNPIKE_UTIL_TABLE_HH_

#include <string>
#include <vector>

namespace turnpike {

/**
 * A simple table: a header row plus data rows of strings. Cells are
 * produced by the caller (use cell() helpers for numbers) so the
 * table itself stays format-agnostic.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render as a column-aligned text block. */
    std::string toText() const;

    /** Render as CSV (no quoting; cells must not contain commas). */
    std::string toCsv() const;

    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fractional digits. */
std::string cell(double v, int digits = 3);

/** Format an integer cell. */
std::string cell(uint64_t v);

/** Format a ratio as a percentage string, e.g. 0.123 -> "12.3%". */
std::string pct(double ratio, int digits = 1);

} // namespace turnpike

#endif // TURNPIKE_UTIL_TABLE_HH_
