/**
 * @file
 * Status and error reporting helpers in the spirit of gem5's
 * base/logging.hh: panic() for internal invariant violations, fatal()
 * for user-caused unrecoverable conditions, warn()/inform() for
 * non-fatal notices.
 */

#ifndef TURNPIKE_UTIL_LOGGING_HH_
#define TURNPIKE_UTIL_LOGGING_HH_

#include <cstdarg>
#include <functional>
#include <string>

namespace turnpike {

/**
 * Install a hook that runs once at the start of panic(), before the
 * message is printed and the process aborts — the tracer uses it to
 * dump its post-mortem event ring so a crash leaves the last events
 * on record. Pass an empty function to clear. Not thread-safe:
 * intended for single-threaded drivers (the CLI), set once at
 * startup; campaign workers never install hooks.
 */
void setPanicHook(std::function<void()> hook);

/**
 * Format a string printf-style into a std::string.
 *
 * @param fmt printf-compatible format string.
 * @return the formatted text.
 */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** strfmt() variant taking a va_list. */
std::string vstrfmt(const char *fmt, va_list args);

/**
 * Report an internal invariant violation (a bug in this library) and
 * abort. Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-caused condition (bad configuration,
 * invalid arguments) and exit(1). Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Abort with a message if @p cond is false. Unlike assert(), always
 * enabled; used for simulator invariants whose violation would
 * silently corrupt results.
 */
#define TP_ASSERT(cond, ...)                                            \
    do {                                                                \
        if (!(cond))                                                    \
            ::turnpike::panic("assertion '%s' failed at %s:%d: %s",     \
                              #cond, __FILE__, __LINE__,                \
                              ::turnpike::strfmt(__VA_ARGS__).c_str()); \
    } while (0)

} // namespace turnpike

#endif // TURNPIKE_UTIL_LOGGING_HH_
