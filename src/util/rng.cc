#include "util/rng.hh"

#include "util/logging.hh"

namespace turnpike {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    s0_ = splitmix64(x);
    s1_ = splitmix64(x);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1;
}

uint64_t
Rng::next()
{
    // xorshift128+
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
}

uint64_t
Rng::below(uint64_t bound)
{
    TP_ASSERT(bound > 0, "Rng::below requires positive bound");
    // Rejection sampling to avoid modulo bias for large bounds.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    TP_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::real()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return real() < p;
}

} // namespace turnpike
