/**
 * @file
 * Growable lock-free MPMC work queue: a chain of bounded CAS-based
 * ring segments in the style of Vyukov's bounded MPMC queue, each
 * cell carrying a sequence number that encodes whose turn it is.
 * When a segment fills up, the producer that notices closes it (a
 * high bit set on the enqueue ticket with a CAS, so no late push can
 * ever land behind the consumers' backs) and links a new segment of
 * twice the capacity; consumers drain segments strictly in link
 * order, so a single-producer stream stays FIFO.
 *
 * This is the dispatch spine of the campaign service
 * (core/parallel.hh): shard indices go in, worker threads pop them
 * out, and a straggling worker never serializes the tail the way
 * the old static index split could. Both operations are lock-free —
 * a producer or consumer stalled mid-operation cannot block the
 * others (growth allocates, but only the one producer that won the
 * close races on it; the losers just follow the link).
 *
 * Semantics and caveats:
 *  - pop() returning false means "empty at this instant as far as
 *    this consumer can see". If a producer has claimed a ticket but
 *    not yet published the value, a concurrent pop may report empty.
 *    Callers that need a strict "all items seen" barrier (the
 *    campaign service) count completions separately and only treat
 *    pop-failure as exhaustion once every producer has finished
 *    pushing.
 *  - Retired segments are kept on the chain and freed in the
 *    destructor, never while consumers may still hold a pointer —
 *    the simplest safe reclamation, costing at most the sum of all
 *    segment capacities (< 2x the final capacity) in memory.
 */

#ifndef TURNPIKE_UTIL_MPMC_QUEUE_HH_
#define TURNPIKE_UTIL_MPMC_QUEUE_HH_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/logging.hh"

namespace turnpike {

template <typename T>
class MpmcQueue
{
  public:
    /**
     * @p initial_capacity is rounded up to a power of two (minimum
     * 2). The queue grows by doubling segments up to
     * kMaxSegmentCapacity per segment; total size is unbounded.
     */
    explicit MpmcQueue(size_t initial_capacity = 1024)
    {
        Segment *s = new Segment(roundUpPow2(initial_capacity));
        first_ = s;
        head_.store(s, std::memory_order_relaxed);
        tail_.store(s, std::memory_order_relaxed);
    }

    ~MpmcQueue()
    {
        Segment *s = first_;
        while (s) {
            Segment *next = s->next.load(std::memory_order_relaxed);
            delete s;
            s = next;
        }
    }

    MpmcQueue(const MpmcQueue &) = delete;
    MpmcQueue &operator=(const MpmcQueue &) = delete;

    /** Enqueue @p v; grows a new segment when the tail one is full. */
    void push(const T &v)
    {
        Segment *s = tail_.load(std::memory_order_acquire);
        for (;;) {
            uint64_t e = s->enq.load(std::memory_order_relaxed);
            if (!(e & kClosed)) {
                Cell &c = s->cells[e & s->mask];
                uint64_t seq = c.seq.load(std::memory_order_acquire);
                int64_t dif = static_cast<int64_t>(seq) -
                    static_cast<int64_t>(e);
                if (dif == 0) {
                    // Our turn: claim the ticket, publish the value.
                    if (s->enq.compare_exchange_weak(
                            e, e + 1, std::memory_order_relaxed)) {
                        c.val = v;
                        c.seq.store(e + 1,
                                    std::memory_order_release);
                        return;
                    }
                    continue; // lost the ticket race; retry
                }
                if (dif > 0)
                    continue; // another producer advanced; reload
                // Full at this ticket: close the segment so no late
                // producer can slip a value into a slot the head may
                // already have scrolled past, then grow.
                if (!s->enq.compare_exchange_strong(
                        e, e | kClosed, std::memory_order_relaxed))
                    continue; // enq moved or closed meanwhile
            }
            s = advancePastClosed(s);
        }
    }

    /**
     * Dequeue into @p out. Returns false when no item is visible to
     * this consumer right now (see the file comment for the exact
     * guarantee under concurrent pushes).
     */
    bool pop(T &out)
    {
        Segment *s = head_.load(std::memory_order_acquire);
        for (;;) {
            uint64_t d = s->deq.load(std::memory_order_relaxed);
            Cell &c = s->cells[d & s->mask];
            uint64_t seq = c.seq.load(std::memory_order_acquire);
            int64_t dif = static_cast<int64_t>(seq) -
                static_cast<int64_t>(d + 1);
            if (dif == 0) {
                if (s->deq.compare_exchange_weak(
                        d, d + 1, std::memory_order_relaxed)) {
                    out = c.val;
                    // Free the cell for the producer's next lap.
                    c.seq.store(d + s->cap,
                                std::memory_order_release);
                    return true;
                }
                continue; // lost the ticket race; retry
            }
            if (dif > 0)
                continue; // another consumer advanced; reload
            // Nothing ready at our ticket. If the segment is closed
            // and fully drained, move to the next one; otherwise the
            // queue is (transiently) empty.
            uint64_t e = s->enq.load(std::memory_order_acquire);
            if ((e & kClosed) && (e & ~kClosed) == d) {
                Segment *next =
                    s->next.load(std::memory_order_acquire);
                if (!next)
                    return false; // closed, drained, nothing linked
                head_.compare_exchange_strong(
                    s, next, std::memory_order_acq_rel);
                s = head_.load(std::memory_order_acquire);
                continue;
            }
            return false;
        }
    }

    /** Segments allocated so far (tests; includes retired ones). */
    size_t segments() const
    {
        size_t n = 0;
        for (const Segment *s = first_; s;
             s = s->next.load(std::memory_order_acquire))
            n++;
        return n;
    }

    /** Sum of all segment capacities (tests). */
    size_t capacity() const
    {
        size_t n = 0;
        for (const Segment *s = first_; s;
             s = s->next.load(std::memory_order_acquire))
            n += s->cap;
        return n;
    }

    /** Largest capacity a single segment will grow to. */
    static constexpr size_t kMaxSegmentCapacity = 1ull << 20;

  private:
    /** Turn marker: producer expects seq == ticket, consumer
     *  ticket + 1; a consumed cell is re-armed at ticket + cap. */
    struct Cell
    {
        std::atomic<uint64_t> seq;
        T val;
    };

    struct Segment
    {
        explicit Segment(size_t capacity)
            : cap(capacity), mask(capacity - 1),
              cells(new Cell[capacity])
        {
            for (size_t i = 0; i < capacity; i++)
                cells[i].seq.store(i, std::memory_order_relaxed);
        }

        const size_t cap;
        const size_t mask;
        std::unique_ptr<Cell[]> cells;
        /** Enqueue ticket; kClosed set once the segment is sealed. */
        alignas(64) std::atomic<uint64_t> enq{0};
        /** Dequeue ticket. */
        alignas(64) std::atomic<uint64_t> deq{0};
        std::atomic<Segment *> next{nullptr};
    };

    static constexpr uint64_t kClosed = 1ull << 63;

    static size_t roundUpPow2(size_t v)
    {
        size_t p = 2;
        while (p < v && p < kMaxSegmentCapacity)
            p <<= 1;
        return p;
    }

    /** The caller saw @p s closed: link/follow the next segment. */
    Segment *advancePastClosed(Segment *s)
    {
        Segment *next = s->next.load(std::memory_order_acquire);
        if (!next) {
            size_t cap = s->cap < kMaxSegmentCapacity
                ? s->cap * 2
                : kMaxSegmentCapacity;
            Segment *fresh = new Segment(cap);
            Segment *expected = nullptr;
            if (s->next.compare_exchange_strong(
                    expected, fresh, std::memory_order_acq_rel))
                next = fresh;
            else {
                delete fresh; // another producer linked first
                next = expected;
            }
        }
        // Best effort: drag the shared tail hint forward so later
        // producers start at the open segment.
        tail_.compare_exchange_strong(s, next,
                                      std::memory_order_acq_rel);
        return next;
    }

    Segment *first_; ///< reclamation anchor (destructor walk)
    alignas(64) std::atomic<Segment *> head_;
    alignas(64) std::atomic<Segment *> tail_;
};

} // namespace turnpike

#endif // TURNPIKE_UTIL_MPMC_QUEUE_HH_
