/**
 * @file
 * Lightweight statistics primitives in the spirit of gem5's stats
 * package: named scalar counters, distributions, and aggregate
 * helpers (mean/geomean) used throughout the simulator and the
 * benchmark harnesses.
 */

#ifndef TURNPIKE_UTIL_STATS_HH_
#define TURNPIKE_UTIL_STATS_HH_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace turnpike {

/** Arithmetic mean of @p xs; 0 when empty. */
double mean(const std::vector<double> &xs);

/** Geometric mean of @p xs; requires all values > 0; 1.0 when empty. */
double geomean(const std::vector<double> &xs);

/**
 * A running distribution: tracks count, sum, min, max and supports
 * mean(). Used for per-run occupancy/latency measurements such as the
 * dynamic CLQ entry counts of Fig. 24.
 */
class Distribution
{
  public:
    // Both sample() overloads are inline: the pipeline records an
    // occupancy sample every issue cycle, so an out-of-line call
    // would dominate the cost of the four arithmetic ops here.

    /** Record one sample. */
    void sample(double v)
    {
        if (count_ == 0) {
            min_ = v;
            max_ = v;
        } else {
            min_ = v < min_ ? v : min_;
            max_ = v > max_ ? v : max_;
        }
        count_++;
        sum_ += v;
    }

    /**
     * Record @p n identical samples of @p v, exactly as n sample(v)
     * calls would. For integer-valued v (every distribution in the
     * simulator) the accumulated sum is bit-identical to n repeated
     * additions, which the fast-forwarded pipeline relies on when it
     * books skipped stall cycles in bulk.
     */
    void sample(double v, uint64_t n)
    {
        if (n == 0)
            return;
        if (count_ == 0) {
            min_ = v;
            max_ = v;
        } else {
            min_ = v < min_ ? v : min_;
            max_ = v > max_ ? v : max_;
        }
        count_ += n;
        sum_ += v * static_cast<double>(n);
    }

    /** Merge another distribution into this one. */
    void merge(const Distribution &other);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Arithmetic mean of the recorded samples; 0 when empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Reset to the empty state. */
    void reset();

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A power-of-two (log2) bucketed histogram over non-negative integer
 * samples. Bucket 0 holds the value 0; bucket k >= 1 holds values in
 * [2^(k-1), 2^k). The fixed geometry needs no configuration, covers
 * the full uint64_t range, and makes sample() two instructions —
 * cheap enough for per-region events (e.g. dynamic region length in
 * cycles for the stats registry's histogram dumps).
 */
class Histogram
{
  public:
    static constexpr size_t kNumBuckets = 65;

    /** Record @p n samples of value @p v. */
    void sample(uint64_t v, uint64_t n = 1)
    {
        buckets_[bucketOf(v)] += n;
        count_ += n;
    }

    /** Bucket index of value @p v. */
    static size_t bucketOf(uint64_t v)
    {
        return v == 0 ? 0 : 64 - static_cast<size_t>(
                                 __builtin_clzll(v));
    }

    /** Inclusive lower bound of bucket @p i. */
    static uint64_t bucketLo(size_t i)
    {
        return i == 0 ? 0 : uint64_t(1) << (i - 1);
    }

    /** Exclusive upper bound of bucket @p i (0 means "2^64"). */
    static uint64_t bucketHi(size_t i)
    {
        return i == 0 ? 1 : i >= 64 ? 0 : uint64_t(1) << i;
    }

    uint64_t count() const { return count_; }
    uint64_t bucketCount(size_t i) const { return buckets_[i]; }

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /** Reset to the empty state. */
    void reset();

  private:
    std::array<uint64_t, kNumBuckets> buckets_{};
    uint64_t count_ = 0;
};

/**
 * A named scalar counter group. Simulator components register the
 * counters they own; the runner snapshots them after a simulation.
 */
class StatSet
{
  public:
    /** Add @p delta (default 1) to the counter named @p name. */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Set counter @p name to @p value. */
    void set(const std::string &name, uint64_t value);

    /** Value of counter @p name; 0 if never touched. */
    uint64_t get(const std::string &name) const;

    /** All counters, sorted by name. */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

    /** Reset all counters to zero (keeps names). */
    void reset();

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace turnpike

#endif // TURNPIKE_UTIL_STATS_HH_
