/**
 * @file
 * Minimal JSON reader for the checkpoint loader (core/campaign.hh):
 * a recursive-descent parser into a small tree value. The repo's
 * json.hh is write-only (streaming writer); this is its read-side
 * counterpart, scoped to what turnpike's own artifacts need —
 * objects, arrays, strings with the standard escapes, numbers,
 * booleans and null.
 *
 * Numbers keep their raw source text alongside the double
 * conversion: checkpoint records carry uint64 counters (cycle
 * counts, 64-bit hashes serialized as decimal would lose precision
 * past 2^53 through a double), so integer consumers re-parse the
 * token with strtoull via JsonValue::u64().
 *
 * Parse failures return false with a byte-offset error message —
 * the checkpoint loader turns those into loud rejections, never
 * silent drops.
 */

#ifndef TURNPIKE_UTIL_JSON_READ_HH_
#define TURNPIKE_UTIL_JSON_READ_HH_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace turnpike {

struct JsonValue
{
    enum class Kind : uint8_t { Null, Bool, Number, String, Array,
                                Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** Raw number token (full-precision integer re-parse). */
    std::string raw;
    std::string str;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        for (const auto &kv : members)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }

    /** The number as a uint64, full precision; 0 if not a number. */
    uint64_t u64() const
    {
        if (kind != Kind::Number || raw.empty())
            return 0;
        return std::strtoull(raw.c_str(), nullptr, 10);
    }
};

namespace jsondetail {

struct Parser
{
    const char *p;
    const char *end;
    const char *begin;
    std::string *err;

    bool fail(const char *what)
    {
        if (err)
            *err = std::string(what) + " at byte " +
                std::to_string(p - begin);
        return false;
    }

    void skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            p++;
    }

    bool literal(const char *word, size_t n)
    {
        if (size_t(end - p) < n ||
            std::string(p, n) != std::string(word, n))
            return fail("bad literal");
        p += n;
        return true;
    }

    bool parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        p++;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (p >= end)
                return fail("dangling escape");
            char e = *p++;
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (end - p < 4)
                    return fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; i++) {
                    char h = *p++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode; surrogate pairs are passed through
                // as-is (turnpike's own writers never emit them).
                if (code < 0x80) {
                    out.push_back(char(code));
                } else if (code < 0x800) {
                    out.push_back(char(0xc0 | (code >> 6)));
                    out.push_back(char(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(char(0xe0 | (code >> 12)));
                    out.push_back(char(0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(char(0x80 | (code & 0x3f)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (p >= end)
            return fail("unterminated string");
        p++; // closing quote
        return true;
    }

    bool parseValue(JsonValue &v, int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            v.kind = JsonValue::Kind::Object;
            p++;
            skipWs();
            if (p < end && *p == '}') {
                p++;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                p++;
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                v.members.emplace_back(std::move(key),
                                       std::move(member));
                skipWs();
                if (p < end && *p == ',') {
                    p++;
                    continue;
                }
                if (p < end && *p == '}') {
                    p++;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            v.kind = JsonValue::Kind::Array;
            p++;
            skipWs();
            if (p < end && *p == ']') {
                p++;
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!parseValue(item, depth + 1))
                    return false;
                v.items.push_back(std::move(item));
                skipWs();
                if (p < end && *p == ',') {
                    p++;
                    continue;
                }
                if (p < end && *p == ']') {
                    p++;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            v.kind = JsonValue::Kind::String;
            return parseString(v.str);
          case 't':
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return literal("true", 4);
          case 'f':
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return literal("false", 5);
          case 'n':
            v.kind = JsonValue::Kind::Null;
            return literal("null", 4);
          default: {
            const char *start = p;
            if (p < end && (*p == '-' || *p == '+'))
                p++;
            while (p < end &&
                   ((*p >= '0' && *p <= '9') || *p == '.' ||
                    *p == 'e' || *p == 'E' || *p == '-' || *p == '+'))
                p++;
            if (p == start)
                return fail("unexpected character");
            v.kind = JsonValue::Kind::Number;
            v.raw.assign(start, p - start);
            char *numEnd = nullptr;
            v.number = std::strtod(v.raw.c_str(), &numEnd);
            if (!numEnd || *numEnd != '\0')
                return fail("malformed number");
            return true;
          }
        }
    }
};

} // namespace jsondetail

/**
 * Parse @p text as one JSON document into @p out. Trailing
 * non-whitespace is an error (a frame must be exactly one value).
 * On failure returns false and, when @p err is non-null, stores a
 * message with the byte offset of the problem.
 */
inline bool
parseJson(const std::string &text, JsonValue &out,
          std::string *err = nullptr)
{
    jsondetail::Parser parser{text.data(), text.data() + text.size(),
                              text.data(), err};
    out = JsonValue();
    if (!parser.parseValue(out, 0))
        return false;
    parser.skipWs();
    if (parser.p != parser.end)
        return parser.fail("trailing garbage");
    return true;
}

} // namespace turnpike

#endif // TURNPIKE_UTIL_JSON_READ_HH_
