/**
 * @file
 * Deterministic streaming JSON writer shared by the stats registry,
 * the JSONL tracer sink and the benchmark harnesses. Replaces the
 * ad-hoc fprintf emitters: one implementation owns escaping, number
 * formatting and comma/indent bookkeeping, so every dump in the repo
 * is valid JSON and byte-identical across runs with equal inputs.
 *
 * No DOM, no parsing: the writer streams tokens in caller order.
 * Doubles are formatted with "%.12g" (enough digits to round-trip
 * every value the simulator produces while keeping dumps readable);
 * identical inputs always produce identical bytes.
 */

#ifndef TURNPIKE_UTIL_JSON_HH_
#define TURNPIKE_UTIL_JSON_HH_

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace turnpike {

/**
 * Escape @p s for inclusion inside a JSON string literal.
 *
 * Control characters get \uXXXX (or the short \n/\t/\r forms);
 * well-formed UTF-8 multi-byte sequences pass through verbatim; any
 * byte that is not part of a valid sequence (stray continuation
 * bytes, overlong encodings, surrogate halves, truncated tails,
 * Latin-1 high bytes) is replaced with U+FFFD so every emitter in
 * the repo — stats, JSONL trace, chrome trace — produces valid
 * JSON no matter what ends up in a name or description.
 */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    size_t i = 0;
    const size_t n = s.size();
    while (i < n) {
        unsigned char c = static_cast<unsigned char>(s[i]);
        if (c < 0x80) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\t': out += "\\t"; break;
              case '\r': out += "\\r"; break;
              default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += static_cast<char>(c);
                }
            }
            i++;
            continue;
        }
        // Multi-byte lead: how many continuation bytes, and the
        // valid range of the first one (catches overlong encodings,
        // UTF-16 surrogates and > U+10FFFF).
        size_t len = 0;
        unsigned char lo = 0x80, hi = 0xbf;
        if (c >= 0xc2 && c <= 0xdf) {
            len = 1;
        } else if (c >= 0xe0 && c <= 0xef) {
            len = 2;
            if (c == 0xe0)
                lo = 0xa0;
            else if (c == 0xed)
                hi = 0x9f;
        } else if (c >= 0xf0 && c <= 0xf4) {
            len = 3;
            if (c == 0xf0)
                lo = 0x90;
            else if (c == 0xf4)
                hi = 0x8f;
        }
        bool ok = len > 0 && i + len < n;
        for (size_t k = 1; k <= len && ok; k++) {
            unsigned char cc = static_cast<unsigned char>(s[i + k]);
            unsigned char klo = (k == 1) ? lo : 0x80;
            unsigned char khi = (k == 1) ? hi : 0xbf;
            if (cc < klo || cc > khi)
                ok = false;
        }
        if (ok) {
            out.append(s, i, len + 1);
            i += len + 1;
        } else {
            out += "\\ufffd";
            i++;
        }
    }
    return out;
}

/**
 * Streaming JSON writer with optional pretty-printing. Containers
 * are opened/closed explicitly; the writer tracks nesting to place
 * commas, newlines and indentation. With indent_step = 0 the output
 * is a single line (the JSONL trace sink uses this).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out, int indent_step = 2)
        : out_(out), indent_step_(indent_step)
    {}

    ~JsonWriter()
    {
        TP_ASSERT(stack_.empty(),
                  "JsonWriter destroyed with %zu open containers",
                  stack_.size());
    }

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject() { open('{', false); }
    void endObject() { close('}'); }
    void beginArray() { open('[', true); }
    void endArray() { close(']'); }

    /** Emit an object key; the next value/container belongs to it. */
    void key(const std::string &k)
    {
        TP_ASSERT(!stack_.empty() && !stack_.back().isArray,
                  "JSON key '%s' outside an object", k.c_str());
        separate();
        out_ << '"' << jsonEscape(k) << "\":";
        if (indent_step_ > 0)
            out_ << ' ';
        have_key_ = true;
    }

    void value(const std::string &v)
    {
        separate();
        out_ << '"' << jsonEscape(v) << '"';
    }
    void value(const char *v) { value(std::string(v)); }
    void value(bool v)
    {
        separate();
        out_ << (v ? "true" : "false");
    }
    void value(uint64_t v)
    {
        separate();
        out_ << v;
    }
    void value(int64_t v)
    {
        separate();
        out_ << v;
    }
    void value(int v) { value(static_cast<int64_t>(v)); }
    void value(unsigned v) { value(static_cast<uint64_t>(v)); }
    void value(double v)
    {
        separate();
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        out_ << buf;
    }
    void null()
    {
        separate();
        out_ << "null";
    }

    /** key() + value() in one call. */
    template <typename T>
    void field(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }

    /** Finish the line of a one-line document (JSONL record). */
    void newline() { out_ << '\n'; }

  private:
    struct Frame
    {
        bool isArray;
        uint64_t items;
    };

    void separate()
    {
        if (have_key_) {
            // Value directly follows its key; no comma or newline.
            have_key_ = false;
            return;
        }
        if (stack_.empty())
            return;
        if (stack_.back().items > 0)
            out_ << ',';
        stack_.back().items++;
        indentNewline();
    }

    void open(char c, bool is_array)
    {
        separate();
        out_ << c;
        stack_.push_back({is_array, 0});
    }

    void close(char c)
    {
        TP_ASSERT(!stack_.empty(), "unbalanced JSON close '%c'", c);
        bool had_items = stack_.back().items > 0;
        stack_.pop_back();
        if (had_items)
            indentNewline();
        out_ << c;
    }

    void indentNewline()
    {
        if (indent_step_ <= 0)
            return;
        out_ << '\n';
        for (size_t i = 0; i < stack_.size(); i++)
            for (int j = 0; j < indent_step_; j++)
                out_ << ' ';
    }

    std::ostream &out_;
    int indent_step_;
    bool have_key_ = false;
    std::vector<Frame> stack_;
};

} // namespace turnpike

#endif // TURNPIKE_UTIL_JSON_HH_
