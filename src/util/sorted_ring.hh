/**
 * @file
 * Tiny ordered containers for the simulator hot path: a sorted ring
 * buffer of event times (pending acoustic detections) and a small
 * sorted id set (regions with unrecorded loads). Both replace
 * patterns that were O(n log n) or O(n) per cycle — std::sort after
 * every insertion, erase(begin()) per pop, linear std::find — with
 * binary-searched inserts and O(1) pops; element counts are tiny, so
 * a flat array beats any node-based structure.
 */

#ifndef TURNPIKE_UTIL_SORTED_RING_HH_
#define TURNPIKE_UTIL_SORTED_RING_HH_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace turnpike {

/**
 * A ring buffer of uint64_t event times kept in ascending order:
 * sorted insertion (binary search + shift within the ring), O(1)
 * front()/popFront(). Capacity grows by doubling and is always a
 * power of two so logical indices wrap with a mask.
 */
class SortedEventRing
{
  public:
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    /** Smallest queued time. */
    uint64_t front() const
    {
        TP_ASSERT(size_ > 0, "front() on empty ring");
        return buf_[head_];
    }

    /** Drop the smallest queued time. */
    void popFront()
    {
        TP_ASSERT(size_ > 0, "popFront() on empty ring");
        head_ = (head_ + 1) & mask();
        size_--;
    }

    /** Insert @p v, keeping ascending order. */
    void push(uint64_t v)
    {
        if (size_ == buf_.size())
            grow();
        size_t lo = 0;
        size_t hi = size_;
        while (lo < hi) {
            size_t mid = (lo + hi) / 2;
            if (at(mid) <= v)
                lo = mid + 1;
            else
                hi = mid;
        }
        for (size_t i = size_; i > lo; i--)
            at(i) = at(i - 1);
        at(lo) = v;
        size_++;
    }

    void clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    size_t mask() const { return buf_.size() - 1; }

    uint64_t &at(size_t logical)
    {
        return buf_[(head_ + logical) & mask()];
    }
    uint64_t at(size_t logical) const
    {
        return buf_[(head_ + logical) & mask()];
    }

    void grow()
    {
        std::vector<uint64_t> bigger(buf_.empty() ? 8
                                                  : buf_.size() * 2);
        for (size_t i = 0; i < size_; i++)
            bigger[i] = at(i);
        buf_.swap(bigger);
        head_ = 0;
    }

    std::vector<uint64_t> buf_;
    size_t head_ = 0;
    size_t size_ = 0;
};

/**
 * A set of uint64_t ids as a sorted flat vector: binary-searched
 * membership, duplicate-free insertion, erase by value.
 */
class SmallSortedSet
{
  public:
    bool empty() const { return ids_.empty(); }
    size_t size() const { return ids_.size(); }

    bool contains(uint64_t v) const
    {
        auto it = std::lower_bound(ids_.begin(), ids_.end(), v);
        return it != ids_.end() && *it == v;
    }

    /** Insert @p v if absent. */
    void insert(uint64_t v)
    {
        auto it = std::lower_bound(ids_.begin(), ids_.end(), v);
        if (it == ids_.end() || *it != v)
            ids_.insert(it, v);
    }

    /** Remove @p v if present. */
    void erase(uint64_t v)
    {
        auto it = std::lower_bound(ids_.begin(), ids_.end(), v);
        if (it != ids_.end() && *it == v)
            ids_.erase(it);
    }

    void clear() { ids_.clear(); }

  private:
    std::vector<uint64_t> ids_;
};

} // namespace turnpike

#endif // TURNPIKE_UTIL_SORTED_RING_HH_
