# Empty compiler generated dependencies file for fig26_region_codesize.
# This may be replaced when dependencies are built.
