file(REMOVE_RECURSE
  "CMakeFiles/fig26_region_codesize.dir/fig26_region_codesize.cc.o"
  "CMakeFiles/fig26_region_codesize.dir/fig26_region_codesize.cc.o.d"
  "fig26_region_codesize"
  "fig26_region_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_region_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
