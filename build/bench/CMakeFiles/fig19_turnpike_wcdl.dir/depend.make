# Empty dependencies file for fig19_turnpike_wcdl.
# This may be replaced when dependencies are built.
