file(REMOVE_RECURSE
  "CMakeFiles/fig19_turnpike_wcdl.dir/fig19_turnpike_wcdl.cc.o"
  "CMakeFiles/fig19_turnpike_wcdl.dir/fig19_turnpike_wcdl.cc.o.d"
  "fig19_turnpike_wcdl"
  "fig19_turnpike_wcdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_turnpike_wcdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
