file(REMOVE_RECURSE
  "CMakeFiles/fig22_sb_sweep.dir/fig22_sb_sweep.cc.o"
  "CMakeFiles/fig22_sb_sweep.dir/fig22_sb_sweep.cc.o.d"
  "fig22_sb_sweep"
  "fig22_sb_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_sb_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
