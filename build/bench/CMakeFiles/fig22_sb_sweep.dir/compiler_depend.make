# Empty compiler generated dependencies file for fig22_sb_sweep.
# This may be replaced when dependencies are built.
