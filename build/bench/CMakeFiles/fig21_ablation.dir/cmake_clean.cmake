file(REMOVE_RECURSE
  "CMakeFiles/fig21_ablation.dir/fig21_ablation.cc.o"
  "CMakeFiles/fig21_ablation.dir/fig21_ablation.cc.o.d"
  "fig21_ablation"
  "fig21_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
