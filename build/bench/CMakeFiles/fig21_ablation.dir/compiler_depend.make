# Empty compiler generated dependencies file for fig21_ablation.
# This may be replaced when dependencies are built.
