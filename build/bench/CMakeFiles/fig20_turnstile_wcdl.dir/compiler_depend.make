# Empty compiler generated dependencies file for fig20_turnstile_wcdl.
# This may be replaced when dependencies are built.
