file(REMOVE_RECURSE
  "CMakeFiles/fig20_turnstile_wcdl.dir/fig20_turnstile_wcdl.cc.o"
  "CMakeFiles/fig20_turnstile_wcdl.dir/fig20_turnstile_wcdl.cc.o.d"
  "fig20_turnstile_wcdl"
  "fig20_turnstile_wcdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_turnstile_wcdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
