# Empty dependencies file for fig15_warfree_ratio.
# This may be replaced when dependencies are built.
