file(REMOVE_RECURSE
  "CMakeFiles/fig15_warfree_ratio.dir/fig15_warfree_ratio.cc.o"
  "CMakeFiles/fig15_warfree_ratio.dir/fig15_warfree_ratio.cc.o.d"
  "fig15_warfree_ratio"
  "fig15_warfree_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_warfree_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
