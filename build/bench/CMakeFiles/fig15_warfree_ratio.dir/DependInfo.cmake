
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_warfree_ratio.cc" "bench/CMakeFiles/fig15_warfree_ratio.dir/fig15_warfree_ratio.cc.o" "gcc" "bench/CMakeFiles/fig15_warfree_ratio.dir/fig15_warfree_ratio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turnpike_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
