file(REMOVE_RECURSE
  "CMakeFiles/fig24_clq_occupancy.dir/fig24_clq_occupancy.cc.o"
  "CMakeFiles/fig24_clq_occupancy.dir/fig24_clq_occupancy.cc.o.d"
  "fig24_clq_occupancy"
  "fig24_clq_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_clq_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
