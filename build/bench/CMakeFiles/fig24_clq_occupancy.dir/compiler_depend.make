# Empty compiler generated dependencies file for fig24_clq_occupancy.
# This may be replaced when dependencies are built.
