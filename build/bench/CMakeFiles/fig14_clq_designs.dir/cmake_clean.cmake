file(REMOVE_RECURSE
  "CMakeFiles/fig14_clq_designs.dir/fig14_clq_designs.cc.o"
  "CMakeFiles/fig14_clq_designs.dir/fig14_clq_designs.cc.o.d"
  "fig14_clq_designs"
  "fig14_clq_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_clq_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
