# Empty dependencies file for ext_region_budget.
# This may be replaced when dependencies are built.
