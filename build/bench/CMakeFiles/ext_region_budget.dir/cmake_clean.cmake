file(REMOVE_RECURSE
  "CMakeFiles/ext_region_budget.dir/ext_region_budget.cc.o"
  "CMakeFiles/ext_region_budget.dir/ext_region_budget.cc.o.d"
  "ext_region_budget"
  "ext_region_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_region_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
