file(REMOVE_RECURSE
  "CMakeFiles/fig23_store_breakdown.dir/fig23_store_breakdown.cc.o"
  "CMakeFiles/fig23_store_breakdown.dir/fig23_store_breakdown.cc.o.d"
  "fig23_store_breakdown"
  "fig23_store_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_store_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
