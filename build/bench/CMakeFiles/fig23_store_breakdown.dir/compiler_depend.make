# Empty compiler generated dependencies file for fig23_store_breakdown.
# This may be replaced when dependencies are built.
