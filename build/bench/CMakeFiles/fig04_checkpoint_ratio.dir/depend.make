# Empty dependencies file for fig04_checkpoint_ratio.
# This may be replaced when dependencies are built.
