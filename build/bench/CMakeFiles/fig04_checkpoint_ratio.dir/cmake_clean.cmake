file(REMOVE_RECURSE
  "CMakeFiles/fig04_checkpoint_ratio.dir/fig04_checkpoint_ratio.cc.o"
  "CMakeFiles/fig04_checkpoint_ratio.dir/fig04_checkpoint_ratio.cc.o.d"
  "fig04_checkpoint_ratio"
  "fig04_checkpoint_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_checkpoint_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
