file(REMOVE_RECURSE
  "CMakeFiles/ext_fault_rate.dir/ext_fault_rate.cc.o"
  "CMakeFiles/ext_fault_rate.dir/ext_fault_rate.cc.o.d"
  "ext_fault_rate"
  "ext_fault_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fault_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
