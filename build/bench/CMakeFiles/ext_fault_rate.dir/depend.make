# Empty dependencies file for ext_fault_rate.
# This may be replaced when dependencies are built.
