file(REMOVE_RECURSE
  "CMakeFiles/table1_hw_cost.dir/table1_hw_cost.cc.o"
  "CMakeFiles/table1_hw_cost.dir/table1_hw_cost.cc.o.d"
  "table1_hw_cost"
  "table1_hw_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hw_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
