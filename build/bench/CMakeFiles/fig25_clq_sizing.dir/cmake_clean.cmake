file(REMOVE_RECURSE
  "CMakeFiles/fig25_clq_sizing.dir/fig25_clq_sizing.cc.o"
  "CMakeFiles/fig25_clq_sizing.dir/fig25_clq_sizing.cc.o.d"
  "fig25_clq_sizing"
  "fig25_clq_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_clq_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
