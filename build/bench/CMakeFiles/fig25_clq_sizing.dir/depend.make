# Empty dependencies file for fig25_clq_sizing.
# This may be replaced when dependencies are built.
