# Empty compiler generated dependencies file for fig18_sensor_latency.
# This may be replaced when dependencies are built.
