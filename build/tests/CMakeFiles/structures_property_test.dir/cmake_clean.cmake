file(REMOVE_RECURSE
  "CMakeFiles/structures_property_test.dir/structures_property_test.cc.o"
  "CMakeFiles/structures_property_test.dir/structures_property_test.cc.o.d"
  "structures_property_test"
  "structures_property_test.pdb"
  "structures_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structures_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
