# Empty compiler generated dependencies file for structures_property_test.
# This may be replaced when dependencies are built.
