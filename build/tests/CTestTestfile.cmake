# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/passes_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/structures_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
add_test(cli_list "/root/repo/build/src/turnpike-cli" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/src/turnpike-cli" "--workload" "CPU2006/mcf" "--scheme" "turnpike" "--wcdl" "20" "--icount" "20000")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_faults "/root/repo/build/src/turnpike-cli" "--workload" "SPLASH3/radix" "--faults" "2" "--icount" "20000")
set_tests_properties(cli_faults PROPERTIES  PASS_REGULAR_EXPRESSION "recovered to the golden image" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_dump "/root/repo/build/src/turnpike-cli" "--workload" "CPU2006/gcc" "--icount" "5000" "--dump-asm" "--dump-regions")
set_tests_properties(cli_dump PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
