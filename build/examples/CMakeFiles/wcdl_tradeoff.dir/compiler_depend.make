# Empty compiler generated dependencies file for wcdl_tradeoff.
# This may be replaced when dependencies are built.
