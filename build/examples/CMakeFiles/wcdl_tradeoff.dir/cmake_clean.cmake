file(REMOVE_RECURSE
  "CMakeFiles/wcdl_tradeoff.dir/wcdl_tradeoff.cpp.o"
  "CMakeFiles/wcdl_tradeoff.dir/wcdl_tradeoff.cpp.o.d"
  "wcdl_tradeoff"
  "wcdl_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcdl_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
