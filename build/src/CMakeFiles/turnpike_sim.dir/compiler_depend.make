# Empty compiler generated dependencies file for turnpike_sim.
# This may be replaced when dependencies are built.
