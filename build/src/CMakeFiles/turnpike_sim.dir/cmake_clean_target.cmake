file(REMOVE_RECURSE
  "libturnpike_sim.a"
)
