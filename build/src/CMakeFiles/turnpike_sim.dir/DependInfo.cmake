
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/turnpike_sim.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/turnpike_sim.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/clq.cc" "src/CMakeFiles/turnpike_sim.dir/sim/clq.cc.o" "gcc" "src/CMakeFiles/turnpike_sim.dir/sim/clq.cc.o.d"
  "/root/repo/src/sim/color_maps.cc" "src/CMakeFiles/turnpike_sim.dir/sim/color_maps.cc.o" "gcc" "src/CMakeFiles/turnpike_sim.dir/sim/color_maps.cc.o.d"
  "/root/repo/src/sim/fault_injector.cc" "src/CMakeFiles/turnpike_sim.dir/sim/fault_injector.cc.o" "gcc" "src/CMakeFiles/turnpike_sim.dir/sim/fault_injector.cc.o.d"
  "/root/repo/src/sim/pipeline.cc" "src/CMakeFiles/turnpike_sim.dir/sim/pipeline.cc.o" "gcc" "src/CMakeFiles/turnpike_sim.dir/sim/pipeline.cc.o.d"
  "/root/repo/src/sim/rbb.cc" "src/CMakeFiles/turnpike_sim.dir/sim/rbb.cc.o" "gcc" "src/CMakeFiles/turnpike_sim.dir/sim/rbb.cc.o.d"
  "/root/repo/src/sim/recovery.cc" "src/CMakeFiles/turnpike_sim.dir/sim/recovery.cc.o" "gcc" "src/CMakeFiles/turnpike_sim.dir/sim/recovery.cc.o.d"
  "/root/repo/src/sim/sensors.cc" "src/CMakeFiles/turnpike_sim.dir/sim/sensors.cc.o" "gcc" "src/CMakeFiles/turnpike_sim.dir/sim/sensors.cc.o.d"
  "/root/repo/src/sim/store_buffer.cc" "src/CMakeFiles/turnpike_sim.dir/sim/store_buffer.cc.o" "gcc" "src/CMakeFiles/turnpike_sim.dir/sim/store_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turnpike_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
