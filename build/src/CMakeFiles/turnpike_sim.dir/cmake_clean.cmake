file(REMOVE_RECURSE
  "CMakeFiles/turnpike_sim.dir/sim/cache.cc.o"
  "CMakeFiles/turnpike_sim.dir/sim/cache.cc.o.d"
  "CMakeFiles/turnpike_sim.dir/sim/clq.cc.o"
  "CMakeFiles/turnpike_sim.dir/sim/clq.cc.o.d"
  "CMakeFiles/turnpike_sim.dir/sim/color_maps.cc.o"
  "CMakeFiles/turnpike_sim.dir/sim/color_maps.cc.o.d"
  "CMakeFiles/turnpike_sim.dir/sim/fault_injector.cc.o"
  "CMakeFiles/turnpike_sim.dir/sim/fault_injector.cc.o.d"
  "CMakeFiles/turnpike_sim.dir/sim/pipeline.cc.o"
  "CMakeFiles/turnpike_sim.dir/sim/pipeline.cc.o.d"
  "CMakeFiles/turnpike_sim.dir/sim/rbb.cc.o"
  "CMakeFiles/turnpike_sim.dir/sim/rbb.cc.o.d"
  "CMakeFiles/turnpike_sim.dir/sim/recovery.cc.o"
  "CMakeFiles/turnpike_sim.dir/sim/recovery.cc.o.d"
  "CMakeFiles/turnpike_sim.dir/sim/sensors.cc.o"
  "CMakeFiles/turnpike_sim.dir/sim/sensors.cc.o.d"
  "CMakeFiles/turnpike_sim.dir/sim/store_buffer.cc.o"
  "CMakeFiles/turnpike_sim.dir/sim/store_buffer.cc.o.d"
  "libturnpike_sim.a"
  "libturnpike_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnpike_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
