file(REMOVE_RECURSE
  "CMakeFiles/turnpike_passes.dir/passes/checkpoint_pruning.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/checkpoint_pruning.cc.o.d"
  "CMakeFiles/turnpike_passes.dir/passes/checkpoint_sinking.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/checkpoint_sinking.cc.o.d"
  "CMakeFiles/turnpike_passes.dir/passes/eager_checkpointing.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/eager_checkpointing.cc.o.d"
  "CMakeFiles/turnpike_passes.dir/passes/induction_variable_merging.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/induction_variable_merging.cc.o.d"
  "CMakeFiles/turnpike_passes.dir/passes/instruction_scheduling.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/instruction_scheduling.cc.o.d"
  "CMakeFiles/turnpike_passes.dir/passes/loop_utils.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/loop_utils.cc.o.d"
  "CMakeFiles/turnpike_passes.dir/passes/lowering.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/lowering.cc.o.d"
  "CMakeFiles/turnpike_passes.dir/passes/pass_manager.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/pass_manager.cc.o.d"
  "CMakeFiles/turnpike_passes.dir/passes/region_formation.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/region_formation.cc.o.d"
  "CMakeFiles/turnpike_passes.dir/passes/register_allocation.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/register_allocation.cc.o.d"
  "CMakeFiles/turnpike_passes.dir/passes/strength_reduction.cc.o"
  "CMakeFiles/turnpike_passes.dir/passes/strength_reduction.cc.o.d"
  "libturnpike_passes.a"
  "libturnpike_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnpike_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
