file(REMOVE_RECURSE
  "libturnpike_passes.a"
)
