# Empty dependencies file for turnpike_passes.
# This may be replaced when dependencies are built.
