
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/checkpoint_pruning.cc" "src/CMakeFiles/turnpike_passes.dir/passes/checkpoint_pruning.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/checkpoint_pruning.cc.o.d"
  "/root/repo/src/passes/checkpoint_sinking.cc" "src/CMakeFiles/turnpike_passes.dir/passes/checkpoint_sinking.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/checkpoint_sinking.cc.o.d"
  "/root/repo/src/passes/eager_checkpointing.cc" "src/CMakeFiles/turnpike_passes.dir/passes/eager_checkpointing.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/eager_checkpointing.cc.o.d"
  "/root/repo/src/passes/induction_variable_merging.cc" "src/CMakeFiles/turnpike_passes.dir/passes/induction_variable_merging.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/induction_variable_merging.cc.o.d"
  "/root/repo/src/passes/instruction_scheduling.cc" "src/CMakeFiles/turnpike_passes.dir/passes/instruction_scheduling.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/instruction_scheduling.cc.o.d"
  "/root/repo/src/passes/loop_utils.cc" "src/CMakeFiles/turnpike_passes.dir/passes/loop_utils.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/loop_utils.cc.o.d"
  "/root/repo/src/passes/lowering.cc" "src/CMakeFiles/turnpike_passes.dir/passes/lowering.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/lowering.cc.o.d"
  "/root/repo/src/passes/pass_manager.cc" "src/CMakeFiles/turnpike_passes.dir/passes/pass_manager.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/pass_manager.cc.o.d"
  "/root/repo/src/passes/region_formation.cc" "src/CMakeFiles/turnpike_passes.dir/passes/region_formation.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/region_formation.cc.o.d"
  "/root/repo/src/passes/register_allocation.cc" "src/CMakeFiles/turnpike_passes.dir/passes/register_allocation.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/register_allocation.cc.o.d"
  "/root/repo/src/passes/strength_reduction.cc" "src/CMakeFiles/turnpike_passes.dir/passes/strength_reduction.cc.o" "gcc" "src/CMakeFiles/turnpike_passes.dir/passes/strength_reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turnpike_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
