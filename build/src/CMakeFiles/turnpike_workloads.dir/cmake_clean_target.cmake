file(REMOVE_RECURSE
  "libturnpike_workloads.a"
)
