file(REMOVE_RECURSE
  "CMakeFiles/turnpike_workloads.dir/workloads/kernels.cc.o"
  "CMakeFiles/turnpike_workloads.dir/workloads/kernels.cc.o.d"
  "CMakeFiles/turnpike_workloads.dir/workloads/suite.cc.o"
  "CMakeFiles/turnpike_workloads.dir/workloads/suite.cc.o.d"
  "libturnpike_workloads.a"
  "libturnpike_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnpike_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
