# Empty compiler generated dependencies file for turnpike_workloads.
# This may be replaced when dependencies are built.
