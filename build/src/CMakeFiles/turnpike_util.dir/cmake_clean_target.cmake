file(REMOVE_RECURSE
  "libturnpike_util.a"
)
