file(REMOVE_RECURSE
  "CMakeFiles/turnpike_util.dir/util/logging.cc.o"
  "CMakeFiles/turnpike_util.dir/util/logging.cc.o.d"
  "CMakeFiles/turnpike_util.dir/util/rng.cc.o"
  "CMakeFiles/turnpike_util.dir/util/rng.cc.o.d"
  "CMakeFiles/turnpike_util.dir/util/stats.cc.o"
  "CMakeFiles/turnpike_util.dir/util/stats.cc.o.d"
  "CMakeFiles/turnpike_util.dir/util/table.cc.o"
  "CMakeFiles/turnpike_util.dir/util/table.cc.o.d"
  "libturnpike_util.a"
  "libturnpike_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnpike_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
