# Empty dependencies file for turnpike_util.
# This may be replaced when dependencies are built.
