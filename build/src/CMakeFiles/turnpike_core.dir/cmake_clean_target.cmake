file(REMOVE_RECURSE
  "libturnpike_core.a"
)
