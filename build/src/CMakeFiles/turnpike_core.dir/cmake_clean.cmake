file(REMOVE_RECURSE
  "CMakeFiles/turnpike_core.dir/core/compiler.cc.o"
  "CMakeFiles/turnpike_core.dir/core/compiler.cc.o.d"
  "CMakeFiles/turnpike_core.dir/core/config.cc.o"
  "CMakeFiles/turnpike_core.dir/core/config.cc.o.d"
  "CMakeFiles/turnpike_core.dir/core/hwcost.cc.o"
  "CMakeFiles/turnpike_core.dir/core/hwcost.cc.o.d"
  "CMakeFiles/turnpike_core.dir/core/runner.cc.o"
  "CMakeFiles/turnpike_core.dir/core/runner.cc.o.d"
  "libturnpike_core.a"
  "libturnpike_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnpike_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
