# Empty dependencies file for turnpike_core.
# This may be replaced when dependencies are built.
