# Empty dependencies file for turnpike-cli.
# This may be replaced when dependencies are built.
