file(REMOVE_RECURSE
  "CMakeFiles/turnpike-cli.dir/tools/turnpike_cli.cc.o"
  "CMakeFiles/turnpike-cli.dir/tools/turnpike_cli.cc.o.d"
  "turnpike-cli"
  "turnpike-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnpike-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
