file(REMOVE_RECURSE
  "libturnpike_machine.a"
)
