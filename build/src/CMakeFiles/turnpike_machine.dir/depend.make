# Empty dependencies file for turnpike_machine.
# This may be replaced when dependencies are built.
