
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/mfunction.cc" "src/CMakeFiles/turnpike_machine.dir/machine/mfunction.cc.o" "gcc" "src/CMakeFiles/turnpike_machine.dir/machine/mfunction.cc.o.d"
  "/root/repo/src/machine/minstr.cc" "src/CMakeFiles/turnpike_machine.dir/machine/minstr.cc.o" "gcc" "src/CMakeFiles/turnpike_machine.dir/machine/minstr.cc.o.d"
  "/root/repo/src/machine/minterp.cc" "src/CMakeFiles/turnpike_machine.dir/machine/minterp.cc.o" "gcc" "src/CMakeFiles/turnpike_machine.dir/machine/minterp.cc.o.d"
  "/root/repo/src/machine/mprinter.cc" "src/CMakeFiles/turnpike_machine.dir/machine/mprinter.cc.o" "gcc" "src/CMakeFiles/turnpike_machine.dir/machine/mprinter.cc.o.d"
  "/root/repo/src/machine/mverifier.cc" "src/CMakeFiles/turnpike_machine.dir/machine/mverifier.cc.o" "gcc" "src/CMakeFiles/turnpike_machine.dir/machine/mverifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turnpike_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/turnpike_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
