file(REMOVE_RECURSE
  "CMakeFiles/turnpike_machine.dir/machine/mfunction.cc.o"
  "CMakeFiles/turnpike_machine.dir/machine/mfunction.cc.o.d"
  "CMakeFiles/turnpike_machine.dir/machine/minstr.cc.o"
  "CMakeFiles/turnpike_machine.dir/machine/minstr.cc.o.d"
  "CMakeFiles/turnpike_machine.dir/machine/minterp.cc.o"
  "CMakeFiles/turnpike_machine.dir/machine/minterp.cc.o.d"
  "CMakeFiles/turnpike_machine.dir/machine/mprinter.cc.o"
  "CMakeFiles/turnpike_machine.dir/machine/mprinter.cc.o.d"
  "CMakeFiles/turnpike_machine.dir/machine/mverifier.cc.o"
  "CMakeFiles/turnpike_machine.dir/machine/mverifier.cc.o.d"
  "libturnpike_machine.a"
  "libturnpike_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnpike_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
