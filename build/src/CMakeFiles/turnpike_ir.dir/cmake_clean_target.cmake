file(REMOVE_RECURSE
  "libturnpike_ir.a"
)
