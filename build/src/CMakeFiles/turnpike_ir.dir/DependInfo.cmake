
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/basic_block.cc" "src/CMakeFiles/turnpike_ir.dir/ir/basic_block.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/basic_block.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/CMakeFiles/turnpike_ir.dir/ir/builder.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/builder.cc.o.d"
  "/root/repo/src/ir/cfg.cc" "src/CMakeFiles/turnpike_ir.dir/ir/cfg.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/cfg.cc.o.d"
  "/root/repo/src/ir/dominators.cc" "src/CMakeFiles/turnpike_ir.dir/ir/dominators.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/dominators.cc.o.d"
  "/root/repo/src/ir/function.cc" "src/CMakeFiles/turnpike_ir.dir/ir/function.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/function.cc.o.d"
  "/root/repo/src/ir/instruction.cc" "src/CMakeFiles/turnpike_ir.dir/ir/instruction.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/instruction.cc.o.d"
  "/root/repo/src/ir/interpreter.cc" "src/CMakeFiles/turnpike_ir.dir/ir/interpreter.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/interpreter.cc.o.d"
  "/root/repo/src/ir/liveness.cc" "src/CMakeFiles/turnpike_ir.dir/ir/liveness.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/liveness.cc.o.d"
  "/root/repo/src/ir/loop_info.cc" "src/CMakeFiles/turnpike_ir.dir/ir/loop_info.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/loop_info.cc.o.d"
  "/root/repo/src/ir/module.cc" "src/CMakeFiles/turnpike_ir.dir/ir/module.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/module.cc.o.d"
  "/root/repo/src/ir/opcode.cc" "src/CMakeFiles/turnpike_ir.dir/ir/opcode.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/opcode.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/turnpike_ir.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/printer.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/CMakeFiles/turnpike_ir.dir/ir/verifier.cc.o" "gcc" "src/CMakeFiles/turnpike_ir.dir/ir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/turnpike_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
