file(REMOVE_RECURSE
  "CMakeFiles/turnpike_ir.dir/ir/basic_block.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/basic_block.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/builder.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/builder.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/cfg.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/cfg.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/dominators.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/dominators.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/function.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/function.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/instruction.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/instruction.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/interpreter.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/interpreter.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/liveness.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/liveness.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/loop_info.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/loop_info.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/module.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/module.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/opcode.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/opcode.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/printer.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/printer.cc.o.d"
  "CMakeFiles/turnpike_ir.dir/ir/verifier.cc.o"
  "CMakeFiles/turnpike_ir.dir/ir/verifier.cc.o.d"
  "libturnpike_ir.a"
  "libturnpike_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnpike_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
