# Empty compiler generated dependencies file for turnpike_ir.
# This may be replaced when dependencies are built.
