/**
 * @file
 * Observability-layer tests: phase-timer inclusive/exclusive nesting,
 * the chrome trace_event writer, campaign heartbeat telemetry (file
 * contract + final-equals-totals), telemetry perturbation-freedom,
 * and the jsonEscape UTF-8 torture cases.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/avf.hh"
#include "util/chrome_trace.hh"
#include "util/json.hh"
#include "util/phase_timer.hh"
#include "util/telemetry.hh"
#include "workloads/suite.hh"

using namespace turnpike;

namespace {

void
spin(std::chrono::milliseconds d)
{
    // Busy-wait: sleep_for can oversleep by whole scheduler quanta,
    // which would swamp the nesting arithmetic the tests check.
    auto until = std::chrono::steady_clock::now() + d;
    while (std::chrono::steady_clock::now() < until) {
    }
}

} // namespace

// ---------------------------------------------------------------
// Phase-timer nesting: exclusive time must exclude children.
// ---------------------------------------------------------------

TEST(PhaseNesting, ExclusiveExcludesChildren)
{
    PhaseProfile p;
    {
        ScopedPhaseTimer parent(&p, "parent");
        spin(std::chrono::milliseconds(5));
        {
            ScopedPhaseTimer child(&p, "child");
            spin(std::chrono::milliseconds(10));
        }
        {
            ScopedPhaseTimer child(&p, "child");
            spin(std::chrono::milliseconds(10));
        }
        spin(std::chrono::milliseconds(5));
    }
    const auto &e = p.entries();
    ASSERT_EQ(e.count("parent"), 1u);
    ASSERT_EQ(e.count("child"), 1u);
    const PhaseEntry &parent = e.at("parent");
    const PhaseEntry &child = e.at("child");
    EXPECT_EQ(parent.calls, 1u);
    EXPECT_EQ(child.calls, 2u);
    // Children are leaves: exclusive == inclusive.
    EXPECT_DOUBLE_EQ(child.seconds, child.exclusiveSeconds);
    EXPECT_GE(child.seconds, 0.020 * 0.9);
    // Parent inclusive covers everything; exclusive subtracts the
    // children exactly (same-thread stack accounting, no sampling).
    EXPECT_GE(parent.seconds, parent.exclusiveSeconds);
    EXPECT_NEAR(parent.seconds - parent.exclusiveSeconds,
                child.seconds, 1e-9);
    EXPECT_GE(parent.exclusiveSeconds, 0.010 * 0.9);
    EXPECT_LT(parent.exclusiveSeconds, parent.seconds);
}

TEST(PhaseNesting, CrossProfileNestingStillSubtracts)
{
    // The runner/compiler shape: parent books into one profile, the
    // nested child into another that is merged afterwards. The
    // per-thread timer stack is what links them, not the profile.
    PhaseProfile outer, inner;
    {
        ScopedPhaseTimer parent(&outer, "host.compile");
        ScopedPhaseTimer child(&inner, "compile.pass");
        spin(std::chrono::milliseconds(8));
    }
    outer.merge(inner);
    const PhaseEntry &parent = outer.entries().at("host.compile");
    const PhaseEntry &child = outer.entries().at("compile.pass");
    EXPECT_NEAR(parent.seconds - parent.exclusiveSeconds,
                child.seconds, 1e-9);
    EXPECT_LT(parent.exclusiveSeconds, parent.seconds * 0.5);
}

TEST(PhaseNesting, ManualAddIsLeaf)
{
    PhaseProfile p;
    p.add("host.simulate", 1.5);
    p.add("host.simulate", 0.5);
    const PhaseEntry &e = p.entries().at("host.simulate");
    EXPECT_DOUBLE_EQ(e.seconds, 2.0);
    EXPECT_DOUBLE_EQ(e.exclusiveSeconds, 2.0);
    EXPECT_EQ(e.calls, 2u);
}

TEST(PhaseNesting, NullProfileIsNoop)
{
    ScopedPhaseTimer t(nullptr, "ignored");
    // Nothing to assert beyond "does not crash / does not touch the
    // thread stack": a following nested timer must still pair up.
    PhaseProfile p;
    {
        ScopedPhaseTimer real(&p, "real");
    }
    EXPECT_DOUBLE_EQ(p.entries().at("real").seconds,
                     p.entries().at("real").exclusiveSeconds);
}

// ---------------------------------------------------------------
// Chrome trace writer.
// ---------------------------------------------------------------

TEST(ChromeTrace, DocumentStructure)
{
    std::ostringstream os;
    {
        ChromeTraceWriter w(os);
        w.processName(kChromePidHost, "turnpike host");
        w.threadName(kChromePidHost, kChromeTidMain, "main");
        w.completeEvent("trial 0", "trial", kChromePidHost,
                        chromeWorkerTid(0), 100, 250,
                        "\"outcome\": \"sdc\"");
        w.instantEvent("ff_window", "ff", kChromePidSim,
                       kChromeTidMain, 4242);
        EXPECT_EQ(w.eventsWritten(), 4u);
        w.finish();
        w.finish(); // idempotent
        EXPECT_EQ(w.eventsWritten(), 4u);
    }
    std::string doc = os.str();
    EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u) << doc;
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":250"), std::string::npos);
    EXPECT_NE(doc.find("\"outcome\": \"sdc\""), std::string::npos);
    // Exactly one document: finish() twice must not re-emit the
    // closing bracket.
    size_t first = doc.find("]");
    EXPECT_EQ(doc.find("]", first + 1), std::string::npos);
}

TEST(ChromeTrace, PhaseTimerEmitsSpanWhenActive)
{
    std::ostringstream os;
    ChromeTraceWriter w(os);
    setActiveChromeTrace(&w);
    PhaseProfile p;
    {
        ScopedPhaseTimer t(&p, "host.unit_phase");
        spin(std::chrono::milliseconds(1));
    }
    setActiveChromeTrace(nullptr);
    w.finish();
    EXPECT_EQ(w.eventsWritten(), 1u);
    EXPECT_NE(os.str().find("\"name\":\"host.unit_phase\""),
              std::string::npos);
    EXPECT_NE(os.str().find("\"cat\":\"phase\""), std::string::npos);
}

TEST(ChromeTrace, WorkerTidMapping)
{
    EXPECT_EQ(chromeWorkerTid(0), 1u);
    EXPECT_EQ(chromeWorkerTid(7), 8u);
    uint64_t before = threadChromeTid();
    setThreadChromeTid(chromeWorkerTid(3));
    EXPECT_EQ(threadChromeTid(), 4u);
    setThreadChromeTid(before);
}

// ---------------------------------------------------------------
// Campaign telemetry heartbeats.
// ---------------------------------------------------------------

namespace {

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream f(path);
    std::vector<std::string> lines;
    for (std::string l; std::getline(f, l);)
        if (!l.empty())
            lines.push_back(l);
    return lines;
}

long
extractInt(const std::string &line, const std::string &key)
{
    size_t pos = line.find("\"" + key + "\":");
    if (pos == std::string::npos)
        return -1;
    return std::strtol(line.c_str() + pos + key.size() + 3, nullptr,
                       10);
}

} // namespace

TEST(Telemetry, HeartbeatFileContract)
{
    const char *path = "telemetry_test_prog.jsonl";
    std::remove(path);
    CampaignTelemetry &tel = CampaignTelemetry::instance();
    tel.enable(path, /*interval_ms=*/10);
    tel.beginCampaign("unit", 6, {"alpha", "beta"});
    for (int i = 0; i < 6; i++) {
        tel.itemStarted(0, uint64_t(i));
        spin(std::chrono::milliseconds(8));
        tel.itemFinished(0, i < 4 ? 0 : 1);
    }
    tel.endCampaign();
    tel.disable();

    std::vector<std::string> lines = readLines(path);
    ASSERT_GE(lines.size(), 2u) << "need seq-0 heartbeat + final";
    long prevSeq = -1, prevDone = -1;
    for (const std::string &l : lines) {
        EXPECT_EQ(l.rfind("{\"schema\":\"turnpike-progress-v1\"", 0),
                  0u)
            << l;
        long seq = extractInt(l, "seq");
        long done = extractInt(l, "completed");
        EXPECT_GT(seq, prevSeq) << "seq must strictly increase: " << l;
        EXPECT_GE(done, prevDone) << "completed went backwards: " << l;
        EXPECT_GE(extractInt(l, "started"), done) << l;
        prevSeq = seq;
        prevDone = done;
    }
    // Final record carries the exact campaign totals.
    const std::string &last = lines.back();
    EXPECT_NE(last.find("\"type\":\"final\""), std::string::npos);
    EXPECT_EQ(extractInt(last, "completed"), 6);
    EXPECT_EQ(extractInt(last, "total"), 6);
    EXPECT_EQ(extractInt(last, "alpha"), 4);
    EXPECT_EQ(extractInt(last, "beta"), 2);
    std::remove(path);
}

TEST(Telemetry, DisabledIsNullAndHooksAreSafe)
{
    EXPECT_EQ(activeTelemetry(), nullptr);
    // Hook calls with telemetry disabled must be harmless (the
    // campaign code calls through a nullptr check, but the methods
    // themselves also tolerate a dead campaign).
    CampaignTelemetry &tel = CampaignTelemetry::instance();
    tel.itemStarted(0, 0);
    tel.itemFinished(0, 0);
}

TEST(Telemetry, CampaignResultsIdenticalOnOrOff)
{
    AvfCampaignConfig cfg;
    cfg.spec = findWorkload("SPLASH3", "radix");
    cfg.scheme = ResilienceConfig::turnpike(20);
    cfg.icount = 5000;
    cfg.trials = 4;
    cfg.seed = 99;
    cfg.sensorMissRate = 0.25;

    AvfReport off = runAvfCampaign(cfg);

    const char *path = "telemetry_test_avf_prog.jsonl";
    std::remove(path);
    CampaignTelemetry &tel = CampaignTelemetry::instance();
    tel.enable(path, 25);
    AvfReport on = runAvfCampaign(cfg);
    tel.disable();

    // Telemetry is observational: identical classification, counts
    // and cycle numbers with the hooks live.
    EXPECT_EQ(off.goldenCycles, on.goldenCycles);
    ASSERT_EQ(off.perTrial.size(), on.perTrial.size());
    for (size_t i = 0; i < off.perTrial.size(); i++) {
        EXPECT_EQ(off.perTrial[i].outcome, on.perTrial[i].outcome);
        EXPECT_EQ(off.perTrial[i].cycles, on.perTrial[i].cycles);
    }
    for (int t = 0; t < kNumFaultTargets; t++)
        for (int o = 0; o < kNumFaultOutcomes; o++)
            EXPECT_EQ(off.counts[t][o], on.counts[t][o]);

    // And the heartbeat final record matched the campaign size.
    std::vector<std::string> lines = readLines(path);
    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(extractInt(lines.back(), "completed"), 4);
    std::remove(path);
}

// ---------------------------------------------------------------
// jsonEscape UTF-8 torture.
// ---------------------------------------------------------------

TEST(JsonEscape, AsciiAndControlChars)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("\n\t\r"), "\\n\\t\\r");
    EXPECT_EQ(jsonEscape(std::string("\x01\x1f", 2)),
              "\\u0001\\u001f");
    EXPECT_EQ(jsonEscape(std::string("\0", 1)), "\\u0000");
}

TEST(JsonEscape, ValidUtf8PassesThrough)
{
    EXPECT_EQ(jsonEscape("\xc3\xa9"), "\xc3\xa9");          // é
    EXPECT_EQ(jsonEscape("\xe2\x82\xac"), "\xe2\x82\xac");  // €
    EXPECT_EQ(jsonEscape("\xf0\x9f\x92\xa9"),
              "\xf0\x9f\x92\xa9");                          // 💩
    EXPECT_EQ(jsonEscape("a\xc3\xa9z"), "a\xc3\xa9z");
}

TEST(JsonEscape, InvalidBytesBecomeReplacement)
{
    // Stray continuation byte.
    EXPECT_EQ(jsonEscape("\x80"), "\\ufffd");
    // Latin-1 high byte that is not a UTF-8 lead.
    EXPECT_EQ(jsonEscape("\xff"), "\\ufffd");
    // Overlong "/" (C0 AF): both bytes invalid individually.
    EXPECT_EQ(jsonEscape("\xc0\xaf"), "\\ufffd\\ufffd");
    // Overlong 3-byte (E0 80 80).
    EXPECT_EQ(jsonEscape("\xe0\x80\x80"),
              "\\ufffd\\ufffd\\ufffd");
    // UTF-16 surrogate half U+D800 (ED A0 80) must not pass.
    EXPECT_EQ(jsonEscape("\xed\xa0\x80"),
              "\\ufffd\\ufffd\\ufffd");
    // Beyond U+10FFFF (F5 ...).
    EXPECT_EQ(jsonEscape("\xf5\x80\x80\x80"),
              "\\ufffd\\ufffd\\ufffd\\ufffd");
    // Truncated tail at end of string.
    EXPECT_EQ(jsonEscape("ok\xe2\x82"), "ok\\ufffd\\ufffd");
    // Valid text resumes after damage.
    EXPECT_EQ(jsonEscape("a\x80z"), "a\\ufffdz");
}

TEST(JsonEscape, WriterProducesParseableStrings)
{
    std::ostringstream os;
    {
        JsonWriter jw(os, 0);
        jw.beginObject();
        jw.field("k", std::string("bad\x80mix\xc3\xa9\n"));
        jw.endObject();
    }
    EXPECT_EQ(os.str(), "{\"k\":\"bad\\ufffdmix\xc3\xa9\\n\"}");
}
