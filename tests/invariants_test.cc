/**
 * @file
 * Whole-suite structural invariants on compiled machine code: the
 * guarantees the runtime machinery depends on, checked statically
 * for every workload under several schemes.
 *
 *  - Store budget: no path between two region boundaries carries
 *    more stores (checkpoints included) than the store buffer can
 *    hold — otherwise the gated SB could deadlock.
 *  - Recovery completeness: every region's live-in registers are
 *    restored by its recovery program, and recovery programs only
 *    branch within bounds.
 *  - Checkpoint reach: every Ckpt names a physical register; every
 *    Boundary has metadata; every branch target is a valid PC.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/compiler.hh"
#include "core/runner.hh"
#include "machine/mverifier.hh"

namespace turnpike {
namespace {

/**
 * Max stores on any path since the last boundary, per PC, via
 * forward max-dataflow over the machine CFG. Saturates at cap.
 */
uint32_t
maxStoresPerRegion(const MachineFunction &mf, uint32_t cap)
{
    const auto &code = mf.code();
    std::vector<uint32_t> in(code.size(), 0);
    bool changed = true;
    uint32_t worst = 0;
    while (changed) {
        changed = false;
        for (size_t pc = 0; pc < code.size(); pc++) {
            const MInstr &mi = code[pc];
            uint32_t out = in[pc];
            if (mi.op == Op::Boundary)
                out = 0;
            else if (mi.op == Op::Store || mi.op == Op::Ckpt)
                out = std::min(out + 1, cap);
            worst = std::max(worst, out);
            auto push = [&](size_t to) {
                if (to < code.size() && out > in[to]) {
                    in[to] = out;
                    changed = true;
                }
            };
            switch (mi.op) {
              case Op::Halt:
                break;
              case Op::Jmp:
                push(mi.target);
                break;
              case Op::Br:
                push(mi.target);
                push(pc + 1);
                break;
              default:
                push(pc + 1);
                break;
            }
        }
    }
    return worst;
}

class CompiledInvariants
    : public ::testing::TestWithParam<WorkloadSpec>
{};

TEST_P(CompiledInvariants, StoreBudgetHoldsOnEveryPath)
{
    const WorkloadSpec &spec = GetParam();
    for (const ResilienceConfig &cfg :
         {ResilienceConfig::turnstile(10),
          ResilienceConfig::turnpike(10),
          ResilienceConfig::turnpike(50)}) {
        auto mod = buildWorkload(spec, 10000);
        CompiledProgram prog = compileWorkload(*mod, cfg);
        uint32_t worst = maxStoresPerRegion(*prog.mf, cfg.sbSize + 2);
        EXPECT_LE(worst, cfg.sbSize)
            << cfg.label << ": a region can overfill the "
            << cfg.sbSize << "-entry store buffer";
    }
}

TEST_P(CompiledInvariants, RecoveryRestoresEveryLiveIn)
{
    const WorkloadSpec &spec = GetParam();
    auto mod = buildWorkload(spec, 10000);
    CompiledProgram prog =
        compileWorkload(*mod, ResilienceConfig::turnpike(10));
    for (const RegionMeta &rm : prog.mf->regions()) {
        std::set<Reg> committed;
        for (size_t i = 0; i < rm.recovery.size(); i++) {
            const RecoveryOp &op = rm.recovery[i];
            if (op.kind == RecoveryOp::Kind::CommitReg)
                committed.insert(op.reg);
            if (op.kind == RecoveryOp::Kind::BrIfZero) {
                EXPECT_LE(i + 1 + static_cast<size_t>(op.skip),
                          rm.recovery.size());
            }
        }
        EXPECT_TRUE(committed.count(kFramePointer));
        for (Reg r : rm.liveIns)
            EXPECT_TRUE(committed.count(r))
                << "live-in r" << r << " not restored";
    }
}

TEST_P(CompiledInvariants, MachineCodeVerifies)
{
    const WorkloadSpec &spec = GetParam();
    for (const ResilienceConfig &cfg :
         {ResilienceConfig::baseline(),
          ResilienceConfig::fastReleasePruningLicm(10),
          ResilienceConfig::turnpike(10)}) {
        auto mod = buildWorkload(spec, 10000);
        CompiledProgram prog = compileWorkload(*mod, cfg);
        auto problems = verifyMachineFunction(*prog.mf);
        EXPECT_TRUE(problems.empty())
            << cfg.label << ": " << problems.front();
    }
}

std::string
workloadName(const ::testing::TestParamInfo<WorkloadSpec> &info)
{
    std::string s = info.param.suite + "_" + info.param.name;
    for (char &c : s)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(Suite, CompiledInvariants,
                         ::testing::ValuesIn(workloadSuite()),
                         workloadName);

} // namespace
} // namespace turnpike
