/**
 * @file
 * Tests for deterministic trial replay (core/replay.hh) and the
 * commit-stream capture underneath it (sim/pipeline.hh):
 *
 *  - the replay contract, per fault target: every harmful (SDC or
 *    Hang) trial of a campaign, replayed from its (seed, trial) key
 *    alone, reproduces the original outcome class, archHash and
 *    dataHash byte-for-byte;
 *  - reconstructed fault plans match the campaign's trial faults
 *    field-for-field;
 *  - commit-capture semantics: prefix hashes are prefix-consistent,
 *    the limit stops the run early, and windows capture the exact
 *    records a full capture sees.
 */

#include <gtest/gtest.h>

#include "core/replay.hh"

namespace turnpike {
namespace {

AvfCampaignConfig
smallCampaign(FaultTarget target)
{
    AvfCampaignConfig cfg;
    cfg.spec = findWorkload("SPLASH3", "radix");
    cfg.scheme = ResilienceConfig::turnstile(20);
    cfg.icount = 8000;
    cfg.trials = 24;
    cfg.seed = 301 + static_cast<uint64_t>(target);
    cfg.sensorMissRate = 0.5; // escaped strikes produce SDC/Hang
    cfg.targets = {target};
    return cfg;
}

/**
 * The heart of the replay contract: for every fault target, every
 * harmful trial of a live campaign must be reproducible from its
 * trial number alone — same outcome, same final memory image hash,
 * same final register-file hash.
 */
TEST(ReplayDeterminism, EveryTargetEveryHarmfulTrial)
{
    for (FaultTarget target : allFaultTargets()) {
        SCOPED_TRACE(faultTargetName(target));
        AvfCampaignConfig cfg = smallCampaign(target);
        AvfReport rep = runAvfCampaign(cfg);
        TrialReplayer replayer(cfg);

        EXPECT_EQ(replayer.cycleBudget(), rep.cycleBudget);
        ASSERT_EQ(rep.perTrial.size(), cfg.trials);

        uint32_t replayed = 0;
        for (uint32_t t = 0; t < cfg.trials; t++) {
            const AvfTrial &orig = rep.perTrial[t];
            bool harmful = orig.outcome == FaultOutcome::Sdc ||
                orig.outcome == FaultOutcome::Hang;
            // Replay a few harmless trials too (cheap extra cover),
            // but every harmful one.
            if (!harmful && t % 8 != 0)
                continue;
            SCOPED_TRACE("trial " + std::to_string(t));
            ReplayedTrial rt = replayer.replay(t);
            EXPECT_EQ(rt.outcome, orig.outcome);
            EXPECT_EQ(rt.run.pipe.cycles, orig.cycles);
            EXPECT_EQ(rt.run.pipe.recoveries, orig.recoveries);
            EXPECT_EQ(rt.run.pipe.detectedFaults, orig.detections);
            replayed++;
        }
        EXPECT_GT(replayed, 0u);
    }
}

TEST(ReplayDeterminism, ReconstructedFaultsMatchCampaign)
{
    AvfCampaignConfig cfg = smallCampaign(FaultTarget::Register);
    cfg.targets.clear(); // all targets, the common configuration
    AvfReport rep = runAvfCampaign(cfg);
    TrialReplayer replayer(cfg);
    for (uint32_t t = 0; t < cfg.trials; t++) {
        FaultEvent a = rep.perTrial[t].fault;
        FaultEvent b = replayer.trialFault(t);
        EXPECT_EQ(a.cycle, b.cycle);
        EXPECT_EQ(a.target, b.target);
        EXPECT_EQ(a.index, b.index);
        EXPECT_EQ(a.bit, b.bit);
        EXPECT_EQ(a.detectDelay, b.detectDelay);
        EXPECT_EQ(a.detected, b.detected);
    }
}

TEST(ReplayDeterminism, BackToBackReplaysAreByteIdentical)
{
    AvfCampaignConfig cfg = smallCampaign(FaultTarget::CacheData);
    TrialReplayer replayer(cfg);
    for (uint32_t t : {0u, 5u, 13u}) {
        ReplayedTrial a = replayer.replay(t);
        ReplayedTrial b = replayer.replay(t);
        EXPECT_EQ(a.outcome, b.outcome);
        EXPECT_EQ(a.run.dataHash, b.run.dataHash);
        EXPECT_EQ(a.run.archHash, b.run.archHash);
        EXPECT_EQ(a.run.pipe.cycles, b.run.pipe.cycles);
        EXPECT_EQ(a.run.pipe.insts, b.run.pipe.insts);
    }
}

TEST(CommitCapture, FullRunHashMatchesGoldenAndCountsCommits)
{
    AvfCampaignConfig cfg = smallCampaign(FaultTarget::Register);
    TrialReplayer replayer(cfg);

    CommitCapture a, b;
    replayer.goldenProbe(&a);
    replayer.goldenProbe(&b);
    EXPECT_EQ(a.committed, replayer.golden().pipe.insts);
    EXPECT_EQ(a.hash, b.hash);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_NE(a.hash, 0u);
}

TEST(CommitCapture, LimitStopsEarlyAndPrefixesAreConsistent)
{
    AvfCampaignConfig cfg = smallCampaign(FaultTarget::Register);
    TrialReplayer replayer(cfg);
    const uint64_t n = replayer.golden().pipe.insts;
    ASSERT_GT(n, 100u);

    // A limited probe stops at exactly the limit...
    CommitCapture half;
    half.limit = n / 2;
    RunResult hr = replayer.goldenProbe(&half);
    EXPECT_EQ(half.committed, n / 2);
    EXPECT_FALSE(hr.halted); // stopped, not halted
    EXPECT_LT(hr.pipe.cycles, replayer.golden().pipe.cycles);

    // ...and two probes at the same limit agree, while a longer
    // prefix hashes differently.
    CommitCapture again;
    again.limit = n / 2;
    replayer.goldenProbe(&again);
    EXPECT_EQ(half.hash, again.hash);
    CommitCapture longer;
    longer.limit = n / 2 + 1;
    replayer.goldenProbe(&longer);
    EXPECT_NE(half.hash, longer.hash);
}

TEST(CommitCapture, WindowMatchesFullStream)
{
    AvfCampaignConfig cfg = smallCampaign(FaultTarget::Register);
    TrialReplayer replayer(cfg);
    const uint64_t n = replayer.golden().pipe.insts;

    CommitCapture full;
    full.windowLo = 0;
    full.windowHi = n;
    replayer.goldenProbe(&full);
    ASSERT_EQ(full.window.size(), n);

    const uint64_t lo = n / 3, hi = n / 3 + 5;
    CommitCapture windowed;
    windowed.limit = hi;
    windowed.windowLo = lo;
    windowed.windowHi = hi;
    replayer.goldenProbe(&windowed);
    ASSERT_EQ(windowed.window.size(), hi - lo);
    for (uint64_t i = 0; i < hi - lo; i++) {
        const CommitRecord &w = windowed.window[i];
        const CommitRecord &f = full.window[lo + i];
        EXPECT_EQ(w.index, f.index);
        EXPECT_EQ(w.cycle, f.cycle);
        EXPECT_EQ(w.pc, f.pc);
        EXPECT_EQ(w.opcode, f.opcode);
        EXPECT_EQ(w.region, f.region);
        EXPECT_EQ(w.a, f.a);
        EXPECT_EQ(w.b, f.b);
        EXPECT_EQ(w.index, lo + i);
    }
}

TEST(ReplayConvenience, OneShotMatchesReplayer)
{
    AvfCampaignConfig cfg = smallCampaign(FaultTarget::Pc);
    TrialReplayer replayer(cfg);
    ReplayedTrial a = replayer.replay(3);
    ReplayedTrial b = replayTrial(cfg, 3);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.run.dataHash, b.run.dataHash);
    EXPECT_EQ(a.run.archHash, b.run.archHash);
    EXPECT_EQ(a.fault.cycle, b.fault.cycle);
    EXPECT_EQ(a.cycleBudget, b.cycleBudget);
}

} // namespace
} // namespace turnpike
