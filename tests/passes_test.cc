/**
 * @file
 * Unit tests for the compiler passes: DCE, strength reduction, LIVM,
 * region formation (+RegionMap and budget repair), register
 * allocation, eager checkpointing, pruning, sinking, scheduling and
 * lowering. Semantic preservation is checked against the reference
 * interpreter throughout.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/cfg.hh"
#include "ir/interpreter.hh"
#include "ir/liveness.hh"
#include "ir/verifier.hh"
#include "machine/minstr.hh"
#include "passes/checkpoint_pruning.hh"
#include "passes/checkpoint_sinking.hh"
#include "passes/eager_checkpointing.hh"
#include "passes/induction_variable_merging.hh"
#include "passes/instruction_scheduling.hh"
#include "passes/loop_utils.hh"
#include "passes/pass_manager.hh"
#include "passes/region_formation.hh"
#include "passes/register_allocation.hh"
#include "passes/strength_reduction.hh"

namespace turnpike {
namespace {

/** Loop storing mixed values into A, as the workload generator
 *  emits: per-use address computation base + (i << 3). */
std::unique_ptr<Module>
makeArrayLoop(int64_t trips = 20)
{
    auto mod = std::make_unique<Module>("arr");
    DataObject &a = mod->addData("A", 64);
    DataObject &src = mod->addData("B", 64, {5, 7, 9});
    Function &fn = mod->addFunction("main");
    IRBuilder b(fn);
    BlockId entry = b.newBlock("entry");
    BlockId body = b.newBlock("body");
    BlockId exit = b.newBlock("exit");

    b.setBlock(entry);
    Reg i = b.reg();
    b.liTo(i, 0);
    Reg base_a = b.li(static_cast<int64_t>(a.base));
    Reg base_b = b.li(static_cast<int64_t>(src.base));
    b.jmp(body);

    b.setBlock(body);
    Reg t1 = b.binImm(Op::Shl, i, 3);
    Reg addr_b = b.add(base_b, t1);
    Reg v = b.load(addr_b);
    Reg v2 = b.binImm(Op::Mul, v, 3);
    Reg t2 = b.binImm(Op::Shl, i, 3);
    Reg addr_a = b.add(base_a, t2);
    b.store(v2, addr_a);
    b.binImmTo(Op::Add, i, i, 1);
    Reg c = b.binImm(Op::CmpLt, i, trips);
    b.br(c, body, exit);

    b.setBlock(exit);
    b.halt();
    return mod;
}

uint64_t
goldenHash(const Module &mod)
{
    InterpResult r = interpret(mod, *mod.functions()[0]);
    EXPECT_EQ(r.reason, StopReason::Halted);
    return r.memory.dataHash(mod);
}

// ---------------------------------------------------------------- DCE

TEST(Dce, RemovesDeadChainsKeepsEffects)
{
    Module m("m");
    DataObject &out = m.addData("out", 1);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    Reg live = b.li(3);
    Reg dead1 = b.li(4);
    Reg dead2 = b.binImm(Op::Add, dead1, 1); // chain
    (void)dead2;
    Reg ob = b.li(static_cast<int64_t>(out.base));
    b.store(live, ob);
    b.halt();

    uint64_t before = goldenHash(m);
    uint64_t removed = runDeadCodeElimination(fn);
    EXPECT_EQ(removed, 2u);
    EXPECT_EQ(goldenHash(m), before);
}

TEST(Dce, KeepsCkptAndBoundary)
{
    Module m("m");
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    Reg x = b.li(3);
    fn.block(e).append(makeCkpt(x));
    fn.block(e).append(makeBoundary(0));
    b.halt();
    EXPECT_EQ(runDeadCodeElimination(fn), 0u);
    EXPECT_EQ(fn.block(e).size(), 4u);
}

// --------------------------------------------- strength reduction

TEST(StrengthReduction, CreatesPointerIv)
{
    auto mod = makeArrayLoop();
    Function &fn = *mod->functions()[0];
    uint64_t before = goldenHash(*mod);
    uint64_t created = runStrengthReduction(fn);
    EXPECT_EQ(created, 2u); // one pointer per array
    verifyOrDie(fn);
    EXPECT_EQ(goldenHash(*mod), before);

    // The loop body must no longer compute shl for addressing.
    int shl_count = 0;
    for (const Instruction &inst : fn.block(1).insts())
        if (inst.op == Op::Shl)
            shl_count++;
    EXPECT_EQ(shl_count, 0);
    // And there are now pointer increments (add reg, reg, #8).
    int ptr_incs = 0;
    for (const Instruction &inst : fn.block(1).insts())
        if (inst.op == Op::Add && inst.src0 == inst.dst &&
            inst.src1 == kNoReg && inst.imm == 8)
            ptr_incs++;
    EXPECT_EQ(ptr_incs, 2);
}

TEST(StrengthReduction, IgnoresLoopsWithoutPattern)
{
    Module m("m");
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    BlockId body = b.newBlock("body");
    BlockId x = b.newBlock("x");
    b.setBlock(e);
    Reg i = b.reg();
    b.liTo(i, 0);
    b.jmp(body);
    b.setBlock(body);
    b.binImmTo(Op::Add, i, i, 1);
    Reg c = b.binImm(Op::CmpLt, i, 5);
    b.br(c, body, x);
    b.setBlock(x);
    b.halt();
    EXPECT_EQ(runStrengthReduction(fn), 0u);
}

// ------------------------------------------------------------- LIVM

TEST(Livm, MergesDerivedPointerIv)
{
    auto mod = makeArrayLoop();
    Function &fn = *mod->functions()[0];
    runStrengthReduction(fn);
    uint64_t before = goldenHash(*mod);

    uint64_t merged = runInductionVariableMerging(fn);
    runDeadCodeElimination(fn);
    verifyOrDie(fn);
    EXPECT_GE(merged, 1u);
    EXPECT_EQ(goldenHash(*mod), before);
}

TEST(Livm, BasicIvAnalysis)
{
    auto mod = makeArrayLoop();
    Function &fn = *mod->functions()[0];
    runStrengthReduction(fn);
    Cfg cfg(fn);
    DominatorTree dt(cfg);
    LoopInfo li(cfg, dt);
    ASSERT_EQ(li.loops().size(), 1u);
    auto ivs = findBasicIvs(fn, li.loops()[0]);
    // i plus the two pointer IVs.
    EXPECT_EQ(ivs.size(), 3u);
    int step8 = 0;
    for (const auto &iv : ivs)
        if (iv.step == 8)
            step8++;
    EXPECT_EQ(step8, 2);
}

TEST(Livm, RespectsLiveOutIvs)
{
    // An IV whose final value is used after the loop must not merge.
    Module m("m");
    DataObject &out = m.addData("out", 1);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    BlockId body = b.newBlock("body");
    BlockId x = b.newBlock("x");
    b.setBlock(e);
    Reg i = b.reg();
    b.liTo(i, 0);
    Reg p = b.reg();
    b.liTo(p, 100);
    b.jmp(body);
    b.setBlock(body);
    b.binImmTo(Op::Add, i, i, 1);
    b.binImmTo(Op::Add, p, p, 2);
    Reg c = b.binImm(Op::CmpLt, i, 5);
    b.br(c, body, x);
    b.setBlock(x);
    Reg ob = b.li(static_cast<int64_t>(out.base));
    b.store(p, ob); // p live out of the loop
    b.halt();

    uint64_t before = goldenHash(m);
    runInductionVariableMerging(fn);
    EXPECT_EQ(goldenHash(m), before);
    // p's increment must still exist (merge rejected).
    bool has_p_inc = false;
    for (const Instruction &inst : fn.block(body).insts())
        if (inst.op == Op::Add && inst.dst == p && inst.imm == 2)
            has_p_inc = true;
    EXPECT_TRUE(has_p_inc);
}

TEST(LoopUtils, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0);
    EXPECT_EQ(log2Exact(8), 3);
    EXPECT_EQ(log2Exact(6), -1);
    EXPECT_EQ(log2Exact(0), -1);
    EXPECT_EQ(log2Exact(-4), -1);
}

// -------------------------------------------------- region formation

TEST(RegionFormation, EntryBoundaryAndLoopHeader)
{
    auto mod = makeArrayLoop();
    Function &fn = *mod->functions()[0];
    RegionFormationOptions opts;
    opts.storeBudget = 2;
    uint32_t n = runRegionFormation(fn, opts);
    EXPECT_GE(n, 2u);
    EXPECT_EQ(fn.block(fn.entry()).insts()[0].op, Op::Boundary);
    EXPECT_EQ(fn.block(1).insts()[0].op, Op::Boundary);
    EXPECT_EQ(fn.numRegions(), n);
}

TEST(RegionFormation, BudgetCutsStraightLine)
{
    Module m("m");
    DataObject &out = m.addData("out", 8);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg v = b.li(1);
    for (int i = 0; i < 6; i++)
        b.store(v, ob, 8 * i);
    b.halt();

    RegionFormationOptions opts;
    opts.storeBudget = 2;
    runRegionFormation(fn, opts);

    // No region segment may hold more than 2 stores.
    uint32_t count = 0, max_count = 0;
    for (const Instruction &inst : fn.block(e).insts()) {
        if (inst.op == Op::Boundary)
            count = 0;
        else if (inst.op == Op::Store)
            max_count = std::max(max_count, ++count);
    }
    EXPECT_LE(max_count, 2u);
}

TEST(RegionFormation, StoreFreeLoopKeptWholeOnlyWithFlag)
{
    // Reduction loop: body has no stores.
    auto make = [] {
        auto mod = std::make_unique<Module>("m");
        DataObject &a = mod->addData("A", 32, {1, 2, 3});
        DataObject &out = mod->addData("out", 1);
        Function &fn = mod->addFunction("f");
        IRBuilder b(fn);
        BlockId e = b.newBlock("e");
        BlockId body = b.newBlock("body");
        BlockId x = b.newBlock("x");
        b.setBlock(e);
        Reg i = b.reg();
        b.liTo(i, 0);
        Reg acc = b.reg();
        b.liTo(acc, 0);
        Reg base = b.li(static_cast<int64_t>(a.base));
        b.jmp(body);
        b.setBlock(body);
        Reg t = b.binImm(Op::Shl, i, 3);
        Reg p = b.add(base, t);
        Reg v = b.load(p);
        b.binTo(Op::Add, acc, acc, v);
        b.binImmTo(Op::Add, i, i, 1);
        Reg c = b.binImm(Op::CmpLt, i, 8);
        b.br(c, body, x);
        b.setBlock(x);
        Reg ob = b.li(static_cast<int64_t>(out.base));
        b.store(acc, ob);
        b.halt();
        return mod;
    };

    auto with_flag = make();
    RegionFormationOptions on;
    on.storeBudget = 2;
    on.keepStoreFreeLoopsWhole = true;
    runRegionFormation(*with_flag->functions()[0], on);
    EXPECT_NE(with_flag->functions()[0]->block(1).insts()[0].op,
              Op::Boundary);

    auto without_flag = make();
    RegionFormationOptions off;
    off.storeBudget = 2;
    runRegionFormation(*without_flag->functions()[0], off);
    EXPECT_EQ(without_flag->functions()[0]->block(1).insts()[0].op,
              Op::Boundary);
}

TEST(RegionMap, TracksRegionsAndMixedJoins)
{
    Module m("m");
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId a = b.newBlock("a");
    BlockId l = b.newBlock("l");
    BlockId r = b.newBlock("r");
    BlockId j = b.newBlock("j");
    b.setBlock(a);
    fn.block(a).append(makeBoundary(0));
    Reg c = b.li(1);
    b.br(c, l, r);
    b.setBlock(l);
    fn.block(l).append(makeBoundary(1));
    b.jmp(j);
    b.setBlock(r);
    b.jmp(j);
    b.setBlock(j);
    b.halt();

    RegionMap rmap(fn);
    EXPECT_EQ(rmap.regionAtExit(a), 0u);
    EXPECT_EQ(rmap.regionAtExit(l), 1u);
    EXPECT_EQ(rmap.regionAtExit(r), 0u);
    EXPECT_EQ(rmap.regionAtEntry(j), kMixedRegion);
    EXPECT_EQ(rmap.numRegions(), 2u);

    BlockId bb;
    size_t idx;
    rmap.boundaryPos(1, bb, idx);
    EXPECT_EQ(bb, l);
    EXPECT_EQ(idx, 0u);
}

TEST(RegionRepair, SplitsOverfullRegion)
{
    Module m("m");
    DataObject &out = m.addData("out", 8);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    fn.block(e).append(makeBoundary(0));
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg v = b.li(1);
    for (int i = 0; i < 6; i++)
        b.store(v, ob, 8 * i);
    b.halt();
    fn.setNumRegions(1);

    int repairs = 0;
    while (repairRegionBudget(fn, 4) && repairs < 10)
        repairs++;
    EXPECT_GE(repairs, 1);

    uint32_t count = 0, max_count = 0;
    for (const Instruction &inst : fn.block(e).insts()) {
        if (inst.op == Op::Boundary)
            count = 0;
        else if (inst.op == Op::Store)
            max_count = std::max(max_count, ++count);
    }
    EXPECT_LE(max_count, 4u);
}

// -------------------------------------------------- register allocation

TEST(RegisterAllocation, PreservesSemantics)
{
    auto mod = makeArrayLoop();
    Function &fn = *mod->functions()[0];
    uint64_t before = goldenHash(*mod);
    RaOptions opts;
    runRegisterAllocation(fn, opts);
    verifyOrDie(fn);
    EXPECT_EQ(fn.numRegs(), kNumPhysRegs);
    EXPECT_EQ(goldenHash(*mod), before);
    // All operands physical.
    for (BlockId b = 0; b < fn.numBlocks(); b++)
        for (const Instruction &inst : fn.block(b).insts()) {
            if (inst.src0 != kNoReg) {
                EXPECT_LT(inst.src0, kNumPhysRegs);
            }
            if (writesDst(inst.op)) {
                EXPECT_LT(inst.dst, kNumPhysRegs);
            }
        }
}

TEST(RegisterAllocation, SpillsUnderPressure)
{
    // More simultaneously-live values than allocatable registers.
    Module m("m");
    DataObject &out = m.addData("out", 30);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    Reg ob = b.li(static_cast<int64_t>(out.base));
    std::vector<Reg> vals;
    for (int i = 0; i < 28; i++)
        vals.push_back(b.li(i * 3 + 1));
    for (int i = 0; i < 28; i++)
        b.store(vals[static_cast<size_t>(i)], ob, 8 * i);
    b.halt();

    uint64_t before = goldenHash(m);
    RaOptions opts;
    opts.numAllocatable = 8;
    RaStats stats = runRegisterAllocation(fn, opts);
    EXPECT_GT(stats.spilledVregs, 0u);
    EXPECT_GT(stats.spillStores, 0u);
    verifyOrDie(fn);
    EXPECT_EQ(goldenHash(m), before);
    // Spill stores must be tagged.
    bool saw_spill = false;
    for (const Instruction &inst : fn.block(e).insts())
        if (inst.op == Op::Store && inst.skind == StoreKind::Spill)
            saw_spill = true;
    EXPECT_TRUE(saw_spill);
}

TEST(RegisterAllocation, StoreAwareSpillsReadersNotWriters)
{
    // Loop where coefficients are read 3x and accumulators are
    // written 1x + read 1x per iteration; under pressure the classic
    // allocator spills accumulators (cheapest) while the store-aware
    // one keeps them in registers.
    auto make = [] {
        auto mod = std::make_unique<Module>("m");
        DataObject &a = mod->addData("A", 64, {3, 5, 7, 9, 11});
        DataObject &out = mod->addData("out", 16);
        Function &fn = mod->addFunction("f");
        IRBuilder b(fn);
        BlockId e = b.newBlock("e");
        BlockId body = b.newBlock("body");
        BlockId x = b.newBlock("x");
        b.setBlock(e);
        Reg base = b.li(static_cast<int64_t>(a.base));
        std::vector<Reg> coeff, acc;
        for (int j = 0; j < 6; j++)
            coeff.push_back(b.load(base, 8 * j));
        for (int j = 0; j < 5; j++) {
            Reg r = b.reg();
            b.liTo(r, j);
            acc.push_back(r);
        }
        Reg i = b.reg();
        b.liTo(i, 0);
        b.jmp(body);
        b.setBlock(body);
        Reg t = b.binImm(Op::Shl, i, 3);
        Reg p = b.add(base, t);
        Reg v = b.load(p);
        for (int j = 0; j < 5; j++) {
            Reg c0 = coeff[static_cast<size_t>(j)];
            Reg c1 = coeff[static_cast<size_t>(j + 1) % 6];
            Reg c2 = coeff[static_cast<size_t>(j + 2) % 6];
            Reg t0 = b.mul(v, c0);
            Reg t1 = b.add(t0, c1);
            Reg t2 = b.bin(Op::Sub, t1, c2);
            b.binTo(Op::Add, acc[static_cast<size_t>(j)],
                    acc[static_cast<size_t>(j)], t2);
        }
        b.binImmTo(Op::Add, i, i, 1);
        Reg c = b.binImm(Op::CmpLt, i, 8);
        b.br(c, body, x);
        b.setBlock(x);
        Reg ob = b.li(static_cast<int64_t>(out.base));
        for (int j = 0; j < 5; j++)
            b.store(acc[static_cast<size_t>(j)], ob, 8 * j);
        b.halt();
        return mod;
    };

    auto classic_mod = make();
    uint64_t golden = goldenHash(*classic_mod);
    RaOptions classic;
    classic.numAllocatable = 10;
    RaStats cs = runRegisterAllocation(*classic_mod->functions()[0],
                                       classic);
    EXPECT_EQ(goldenHash(*classic_mod), golden);

    auto aware_mod = make();
    RaOptions aware;
    aware.numAllocatable = 10;
    aware.writeCostFactor = 3.0;
    RaStats as = runRegisterAllocation(*aware_mod->functions()[0],
                                       aware);
    EXPECT_EQ(goldenHash(*aware_mod), golden);

    // Count dynamic spill stores through the interpreter.
    InterpResult ci = interpret(*classic_mod,
                                *classic_mod->functions()[0]);
    InterpResult ai = interpret(*aware_mod,
                                *aware_mod->functions()[0]);
    EXPECT_LT(ai.stats.storesSpill, ci.stats.storesSpill)
        << "store-aware RA should eliminate spill stores "
        << "(classic static spills: " << cs.spillStores
        << ", aware: " << as.spillStores << ")";
}

// ------------------------------------------------ eager checkpointing

TEST(EagerCheckpointing, ChecksLiveOutDefsOnly)
{
    Module m("m");
    DataObject &out = m.addData("out", 2);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    fn.block(e).append(makeBoundary(0));
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg dead_after = b.li(10);       // consumed before boundary
    Reg live_across = b.li(20);      // used after next boundary
    Reg stored = b.binImm(Op::Add, dead_after, 1);
    b.store(stored, ob);
    fn.block(e).append(makeBoundary(1));
    b.store(live_across, ob, 8);
    b.halt();
    fn.setNumRegions(2);

    CkptStats stats = runEagerCheckpointing(fn);
    EXPECT_GT(stats.inserted, 0u);

    // live_across must be checkpointed before boundary 1; dead_after
    // must not be checkpointed.
    bool ckpt_live = false, ckpt_dead = false;
    for (const Instruction &inst : fn.block(e).insts()) {
        if (inst.op == Op::Ckpt && inst.src0 == live_across)
            ckpt_live = true;
        if (inst.op == Op::Ckpt && inst.src0 == dead_after)
            ckpt_dead = true;
    }
    EXPECT_TRUE(ckpt_live);
    EXPECT_FALSE(ckpt_dead);
}

TEST(EagerCheckpointing, OnlyLastDefPerRegionCheckpointed)
{
    // Fig. 3(b): a register redefined inside a region is only
    // checkpointed at its final (live-out) definition.
    Module m("m");
    DataObject &out = m.addData("out", 1);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    fn.block(e).append(makeBoundary(0));
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg r = b.reg();
    b.liTo(r, 1); // overwritten below; not live-out
    b.liTo(r, 2); // live-out definition
    fn.block(e).append(makeBoundary(1));
    b.store(r, ob);
    b.halt();
    fn.setNumRegions(2);

    runEagerCheckpointing(fn);
    int r_ckpts = 0;
    for (const Instruction &inst : fn.block(e).insts())
        if (inst.op == Op::Ckpt && inst.src0 == r)
            r_ckpts++;
    EXPECT_EQ(r_ckpts, 1);
}

TEST(EagerCheckpointing, RemoveAllCheckpoints)
{
    auto mod = makeArrayLoop();
    Function &fn = *mod->functions()[0];
    RaOptions ra;
    runRegisterAllocation(fn, ra);
    RegionFormationOptions rf;
    runRegionFormation(fn, rf);
    CkptStats stats = runEagerCheckpointing(fn);
    EXPECT_GT(stats.inserted, 0u);
    uint64_t removed = removeAllCheckpoints(fn);
    EXPECT_EQ(removed, stats.inserted);
    for (BlockId b = 0; b < fn.numBlocks(); b++)
        for (const Instruction &inst : fn.block(b).insts())
            EXPECT_NE(inst.op, Op::Ckpt);
}

// ------------------------------------------------------------ pruning

TEST(CheckpointPruning, PrunesConstantAndAffineDefs)
{
    // Region 0 defines k (constant) and d = k + 9, both live into
    // region 1: both checkpoints are reconstructible.
    Module m("m");
    DataObject &out = m.addData("out", 2);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    fn.block(e).append(makeBoundary(0));
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg k = b.li(17);
    Reg d = b.binImm(Op::Add, k, 9);
    b.store(k, ob, 0);
    fn.block(e).append(makeBoundary(1));
    b.store(d, ob, 8);
    Reg sum = b.bin(Op::Add, k, d);
    b.store(sum, ob, 0);
    b.halt();
    fn.setNumRegions(2);

    runEagerCheckpointing(fn);
    PruneResult pr = runCheckpointPruning(fn);
    // d = k + 9 must be pruned with a recipe keyed to region 1.
    bool d_pruned = pr.governed.count({1u, d}) > 0;
    EXPECT_TRUE(d_pruned);
    EXPECT_GE(pr.pruned, 1u);
    // The recipe ends with a CommitReg of d.
    if (d_pruned) {
        const RecoveryProgram &prog = pr.governed.at({1u, d});
        EXPECT_EQ(prog.back().kind, RecoveryOp::Kind::CommitReg);
        EXPECT_EQ(prog.back().reg, d);
    }
}

TEST(CheckpointPruning, KeepsLoadDefs)
{
    // Values produced by loads are never reconstructible.
    Module m("m");
    DataObject &a = m.addData("A", 2, {42});
    DataObject &out = m.addData("out", 1);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    fn.block(e).append(makeBoundary(0));
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg base = b.li(static_cast<int64_t>(a.base));
    Reg v = b.load(base);
    b.store(v, ob);
    fn.block(e).append(makeBoundary(1));
    b.store(v, ob);
    b.halt();
    fn.setNumRegions(2);

    runEagerCheckpointing(fn);
    PruneResult pr = runCheckpointPruning(fn);
    EXPECT_EQ(pr.governed.count({1u, v}), 0u);
    bool v_ckpt_alive = false;
    for (const Instruction &inst : fn.block(e).insts())
        if (inst.op == Op::Ckpt && inst.src0 == v)
            v_ckpt_alive = true;
    EXPECT_TRUE(v_ckpt_alive);
}

TEST(CheckpointPruning, RejectsMultipleReachingDefs)
{
    // Diamond with a def of r in each arm: a single static recipe
    // cannot be correct, so both checkpoints stay (until the Fig. 9
    // branch-replay extension handles them).
    Module m("m");
    DataObject &out = m.addData("out", 1);
    DataObject &in = m.addData("in", 1, {5});
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    BlockId l = b.newBlock("l");
    BlockId r_bb = b.newBlock("r");
    BlockId j = b.newBlock("j");
    b.setBlock(e);
    fn.block(e).append(makeBoundary(0));
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg ib = b.li(static_cast<int64_t>(in.base));
    Reg k = b.load(ib); // load-defined: k itself is unprunable
    Reg cond = b.binImm(Op::CmpLt, k, 10);
    Reg r = fn.newReg();
    b.br(cond, l, r_bb);
    b.setBlock(l);
    b.binImmTo(Op::Add, r, k, 1);
    b.jmp(j);
    b.setBlock(r_bb);
    b.binImmTo(Op::Mul, r, k, 2);
    b.jmp(j);
    b.setBlock(j);
    fn.block(j).append(makeBoundary(1));
    b.store(r, ob);
    b.store(k, ob); // keep k live at the recovery boundary
    b.halt();
    fn.setNumRegions(2);

    runEagerCheckpointing(fn);
    PruneResult pr = runCheckpointPruning(fn);
    EXPECT_EQ(pr.governed.count({1u, r}), 0u);
    EXPECT_GT(pr.rejected["multi-def"], 0u);
}

// ------------------------------------------------------------ sinking

TEST(CheckpointSinking, LoopSinkMovesToExit)
{
    // Store-free loop kept whole: per-iteration checkpoints sink to
    // the exit block (Fig. 10).
    Module m("m");
    DataObject &a = m.addData("A", 32, {1, 2, 3});
    DataObject &out = m.addData("out", 1);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    BlockId body = b.newBlock("body");
    BlockId x = b.newBlock("x");
    b.setBlock(e);
    Reg i = b.reg();
    b.liTo(i, 0);
    Reg acc = b.reg();
    b.liTo(acc, 0);
    Reg base = b.li(static_cast<int64_t>(a.base));
    b.jmp(body);
    b.setBlock(body);
    Reg t = b.binImm(Op::Shl, i, 3);
    Reg p = b.add(base, t);
    Reg v = b.load(p);
    b.binTo(Op::Add, acc, acc, v);
    b.binImmTo(Op::Add, i, i, 1);
    Reg c = b.binImm(Op::CmpLt, i, 8);
    b.br(c, body, x);
    b.setBlock(x);
    Reg ob = b.li(static_cast<int64_t>(out.base));
    b.store(acc, ob);
    b.store(acc, ob);
    b.store(acc, ob); // forces a budget cut => boundary after loop
    b.halt();

    RegionFormationOptions rf;
    rf.storeBudget = 2;
    rf.keepStoreFreeLoopsWhole = true;
    runRegionFormation(fn, rf);
    runEagerCheckpointing(fn);

    // There are per-iteration checkpoints inside the loop now.
    int in_loop = 0;
    for (const Instruction &inst : fn.block(body).insts())
        if (inst.op == Op::Ckpt)
            in_loop++;
    ASSERT_GT(in_loop, 0);

    SinkStats ss = runCheckpointSinking(fn);
    EXPECT_GT(ss.loopSunk, 0u);
    for (const Instruction &inst : fn.block(body).insts())
        EXPECT_NE(inst.op, Op::Ckpt) << "checkpoint left in loop";
    int at_exit = 0;
    for (const Instruction &inst : fn.block(x).insts())
        if (inst.op == Op::Ckpt)
            at_exit++;
    EXPECT_GT(at_exit, 0);
}

TEST(CheckpointSinking, DedupRemovesRedundant)
{
    Module m("m");
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    Reg r = b.li(1);
    fn.block(e).append(makeCkpt(r));
    fn.block(e).append(makeCkpt(r)); // same value: redundant
    b.halt();
    SinkStats ss = runCheckpointSinking(fn);
    EXPECT_EQ(ss.deduped, 1u);
    int ckpts = 0;
    for (const Instruction &inst : fn.block(e).insts())
        if (inst.op == Op::Ckpt)
            ckpts++;
    EXPECT_EQ(ckpts, 1);
}

TEST(CheckpointSinking, NeverCrossesBoundaryOrRedef)
{
    Module m("m");
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    Reg r = b.reg();
    b.liTo(r, 1);
    fn.block(e).append(makeCkpt(r));
    fn.block(e).append(makeBoundary(0));
    b.liTo(r, 2);
    b.halt();
    runCheckpointSinking(fn);
    // The checkpoint must still be before the boundary.
    const auto &insts = fn.block(e).insts();
    size_t ckpt_pos = 0, boundary_pos = 0;
    for (size_t i = 0; i < insts.size(); i++) {
        if (insts[i].op == Op::Ckpt)
            ckpt_pos = i;
        if (insts[i].op == Op::Boundary)
            boundary_pos = i;
    }
    EXPECT_LT(ckpt_pos, boundary_pos);
}

// --------------------------------------------------------- scheduling

TEST(InstructionScheduling, PreservesSemantics)
{
    auto mod = makeArrayLoop();
    Function &fn = *mod->functions()[0];
    uint64_t before = goldenHash(*mod);
    runInstructionScheduling(fn);
    verifyOrDie(fn);
    EXPECT_EQ(goldenHash(*mod), before);
}

TEST(InstructionScheduling, SeparatesLoadFromCkpt)
{
    // Fig. 11: independent instructions move between a load and the
    // dependent checkpoint store.
    Module m("m");
    DataObject &a = m.addData("A", 2, {42});
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    Reg base = b.li(static_cast<int64_t>(a.base));
    Reg x = b.li(3);
    Reg v = b.load(base);
    fn.block(e).append(makeCkpt(v));
    Reg y = b.binImm(Op::Add, x, 1);
    Reg z = b.binImm(Op::Shl, x, 2);
    (void)y;
    (void)z;
    b.halt();

    runInstructionScheduling(fn);
    const auto &insts = fn.block(e).insts();
    size_t load_pos = 0, ckpt_pos = 0;
    for (size_t i = 0; i < insts.size(); i++) {
        if (insts[i].op == Op::Load)
            load_pos = i;
        if (insts[i].op == Op::Ckpt)
            ckpt_pos = i;
    }
    EXPECT_GT(ckpt_pos, load_pos + 1)
        << "scheduler should hoist independents above the checkpoint";
}

TEST(InstructionScheduling, KeepsStoreOrder)
{
    Module m("m");
    DataObject &out = m.addData("out", 1);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg v1 = b.li(1);
    Reg v2 = b.li(2);
    b.store(v1, ob);
    b.store(v2, ob); // same address: order matters
    b.halt();
    uint64_t before = goldenHash(m);
    runInstructionScheduling(fn);
    EXPECT_EQ(goldenHash(m), before);
    InterpResult r = interpret(m, fn);
    EXPECT_EQ(r.memory.read(out.base), 2);
}

} // namespace
} // namespace turnpike

namespace turnpike {
namespace {

TEST(CheckpointPruning, DiamondBranchReplay)
{
    // Fig. 9: r is defined in both arms from the stable register k;
    // the predicate is live at the recovery boundary, so both arm
    // checkpoints are pruned and the recipe replays the branch.
    Module m("m");
    DataObject &out = m.addData("out", 4);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    BlockId l = b.newBlock("l");
    BlockId r_bb = b.newBlock("r");
    BlockId j = b.newBlock("j");
    b.setBlock(e);
    fn.block(e).append(makeBoundary(0));
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg k = b.li(5);
    Reg cond = b.binImm(Op::CmpLt, k, 10);
    Reg r = fn.newReg();
    b.br(cond, l, r_bb);
    b.setBlock(l);
    b.binImmTo(Op::Add, r, k, 9);
    b.jmp(j);
    b.setBlock(r_bb);
    b.binImmTo(Op::Mul, r, k, 3);
    b.jmp(j);
    b.setBlock(j);
    fn.block(j).append(makeBoundary(1));
    b.store(r, ob, 0);
    b.store(k, ob, 8);
    b.store(cond, ob, 16); // predicate live at the boundary
    b.halt();
    fn.setNumRegions(2);

    runEagerCheckpointing(fn);
    PruneResult pr = runCheckpointPruning(fn);
    EXPECT_GE(pr.diamonds, 1u);
    ASSERT_GT(pr.governed.count({1u, r}), 0u);
    // No checkpoint of r remains in either arm.
    for (BlockId arm : {l, r_bb})
        for (const Instruction &inst : fn.block(arm).insts())
            EXPECT_FALSE(inst.op == Op::Ckpt && inst.src0 == r);
    // The recipe replays the branch.
    const RecoveryProgram &prog = pr.governed.at({1u, r});
    bool has_branch = false;
    for (const RecoveryOp &op : prog)
        if (op.kind == RecoveryOp::Kind::BrIfZero)
            has_branch = true;
    EXPECT_TRUE(has_branch);
}

} // namespace
} // namespace turnpike
