/**
 * @file
 * Tests for the parallel campaign engine: the thread pool itself,
 * TURNPIKE_JOBS parsing, the determinism contract (parallel results
 * are hash-identical to the serial path, in submission order), and
 * the thread-safe bench helpers (BaselineCache once-semantics,
 * GeoMeans unknown-suite guard).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "bench/common.hh"
#include "core/parallel.hh"
#include "util/rng.hh"

namespace turnpike {
namespace {

/** Restores the previous TURNPIKE_JOBS value on scope exit. */
class ScopedJobs
{
  public:
    explicit ScopedJobs(const char *value)
    {
        const char *old = std::getenv("TURNPIKE_JOBS");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value)
            setenv("TURNPIKE_JOBS", value, 1);
        else
            unsetenv("TURNPIKE_JOBS");
    }

    ~ScopedJobs()
    {
        if (had_)
            setenv("TURNPIKE_JOBS", old_.c_str(), 1);
        else
            unsetenv("TURNPIKE_JOBS");
    }

  private:
    bool had_;
    std::string old_;
};

/** A small mixed grid: schemes, functional runs, and a faulted run. */
std::vector<RunRequest>
mixedGrid()
{
    constexpr uint64_t kInsts = 6000;
    std::vector<RunRequest> reqs;
    for (const char *name : {"mcf", "milc", "hmmer"}) {
        const WorkloadSpec &spec = findWorkload("CPU2006", name);
        reqs.push_back({spec, ResilienceConfig::baseline(), kInsts,
                        {}, false});
        reqs.push_back({spec, ResilienceConfig::turnstile(10),
                        kInsts, {}, false});
        reqs.push_back({spec, ResilienceConfig::turnpike(10), kInsts,
                        {}, false});
        reqs.push_back({spec, ResilienceConfig::fastRelease(20),
                        kInsts, {}, true});
    }
    // One faulted cell: the plan must thread through unchanged.
    Rng rng(4242);
    RunRequest faulted{findWorkload("SPLASH3", "radix"),
                       ResilienceConfig::turnpike(20), kInsts, {},
                       false};
    faulted.faults = makeFaultPlan(rng, 20000, 20, 2);
    reqs.push_back(std::move(faulted));
    return reqs;
}

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; i++)
        pool.submit([&count] { count++; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
    // The pool must survive a second batch after going idle.
    for (int i = 0; i < 10; i++)
        pool.submit([&count] { count++; });
    pool.wait();
    EXPECT_EQ(count.load(), 110);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait(); // nothing submitted: must not hang
    SUCCEED();
}

TEST(CampaignJobs, EnvParsing)
{
    {
        ScopedJobs env("3");
        EXPECT_EQ(campaignJobs(), 3u);
    }
    {
        ScopedJobs env("1");
        EXPECT_EQ(campaignJobs(), 1u);
    }
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    {
        ScopedJobs env(nullptr);
        EXPECT_EQ(campaignJobs(), hw);
    }
    for (const char *bad : {"bogus", "0", "-2", "4x"}) {
        ScopedJobs env(bad);
        testing::internal::CaptureStderr();
        EXPECT_EQ(campaignJobs(), hw) << "value '" << bad << "'";
        EXPECT_NE(testing::internal::GetCapturedStderr().find(
                      "TURNPIKE_JOBS"),
                  std::string::npos)
            << "no warning for value '" << bad << "'";
    }
}

TEST(ParallelRunner, ParallelHashEqualsSerialOnMixedGrid)
{
    std::vector<RunRequest> reqs = mixedGrid();

    std::vector<RunResult> serial, parallel;
    {
        ScopedJobs env("1");
        serial = runCampaign(reqs);
    }
    {
        ScopedJobs env("4");
        parallel = runCampaign(reqs);
    }

    ASSERT_EQ(serial.size(), reqs.size());
    ASSERT_EQ(parallel.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); i++) {
        SCOPED_TRACE("request " + std::to_string(i) + ": " +
                     serial[i].workload + " / " + serial[i].scheme);
        // Submission-order keying: result i is request i.
        EXPECT_EQ(parallel[i].workload, reqs[i].spec.suite + "/" +
                                            reqs[i].spec.name);
        EXPECT_EQ(parallel[i].scheme, reqs[i].cfg.label);
        // Bit-identical outcomes, hashes first.
        EXPECT_EQ(parallel[i].dataHash, serial[i].dataHash);
        EXPECT_EQ(parallel[i].goldenHash, serial[i].goldenHash);
        EXPECT_EQ(parallel[i].halted, serial[i].halted);
        EXPECT_EQ(parallel[i].pipe.cycles, serial[i].pipe.cycles);
        EXPECT_EQ(parallel[i].pipe.insts, serial[i].pipe.insts);
        EXPECT_EQ(parallel[i].pipe.recoveries,
                  serial[i].pipe.recoveries);
        EXPECT_EQ(parallel[i].dyn.insts, serial[i].dyn.insts);
        EXPECT_EQ(parallel[i].codeBytes, serial[i].codeBytes);
        EXPECT_DOUBLE_EQ(parallel[i].regionSizeAvg,
                         serial[i].regionSizeAvg);
    }
}

TEST(ParallelRunner, MoreJobsThanRequests)
{
    ScopedJobs env("16");
    std::vector<RunRequest> reqs = {
        {findWorkload("CPU2006", "mcf"), ResilienceConfig::turnpike(10),
         5000, {}, false},
        {findWorkload("CPU2006", "mcf"), ResilienceConfig::baseline(),
         5000, {}, true},
    };
    std::vector<RunResult> results = runCampaign(reqs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].halted);
    EXPECT_EQ(results[0].dataHash, results[0].goldenHash);
    EXPECT_EQ(results[1].scheme, "baseline");
}

TEST(ParallelRunner, EmptyCampaign)
{
    EXPECT_TRUE(runCampaign({}).empty());
}

TEST(BaselineCache, ConcurrentGetsYieldOneResult)
{
    ScopedJobs env("4");
    bench::BaselineCache cache(5000);
    const WorkloadSpec &spec = findWorkload("CPU2006", "astar");

    // Hammer the same key from several threads: the once-semantics
    // must hand every caller the same slot (one simulation, stable
    // address), not one run per racing thread.
    constexpr int kThreads = 8;
    const RunResult *seen[kThreads] = {nullptr};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++)
        threads.emplace_back(
            [&, t] { seen[t] = &cache.get(spec); });
    for (std::thread &t : threads)
        t.join();
    for (int t = 1; t < kThreads; t++)
        EXPECT_EQ(seen[t], seen[0]);
    EXPECT_TRUE(seen[0]->halted);
    EXPECT_EQ(seen[0]->scheme, "baseline");
}

TEST(BaselineCache, PrewarmMatchesGet)
{
    std::vector<WorkloadSpec> specs = {
        findWorkload("CPU2006", "mcf"),
        findWorkload("CPU2017", "leela"),
    };
    bench::BaselineCache warmed(5000);
    warmed.prewarm(specs);
    bench::BaselineCache lazy(5000);
    for (const WorkloadSpec &spec : specs) {
        const RunResult &w = warmed.get(spec);
        const RunResult &l = lazy.get(spec);
        EXPECT_EQ(w.dataHash, l.dataHash);
        EXPECT_EQ(w.pipe.cycles, l.pipe.cycles);
        // prewarm() filled the slot: get() must reuse it.
        EXPECT_EQ(&warmed.get(spec), &w);
    }
}

TEST(GeoMeans, KnownSuitesAndUnknownSuiteGuard)
{
    bench::GeoMeans g;
    g.add("CPU2006", 2.0);
    g.add("CPU2006", 8.0);
    EXPECT_DOUBLE_EQ(g.suite("CPU2006"), 4.0);
    EXPECT_DOUBLE_EQ(g.all(), 4.0);
    // A typo'd suite used to return a perfect 1.0 silently.
    EXPECT_DEATH(g.suite("CPU206"), "never add");
}

} // namespace
} // namespace turnpike
