/**
 * @file
 * Design-space explorer tests (core/explorer.hh) plus the hwcost and
 * sensor-sizing extensions it builds on:
 *
 *  - protection cost monotonicity in the protection level;
 *  - sensorsForWcdl: the returned deployment meets the deadline, is
 *    minimal (one fewer sensor misses it) and shrinks as the WCDL
 *    relaxes;
 *  - Pareto dominance on synthetic scores, including ties;
 *  - grid enumeration: size, fixed nested order, scheme mapping;
 *  - a tiny end-to-end sweep (sane scores, non-empty frontier);
 *  - explorer determinism at TURNPIKE_JOBS=1 vs 3;
 *  - exportParetoStats shape for the schema checker.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>

#include "core/explorer.hh"
#include "workloads/suite.hh"

namespace turnpike {
namespace {

// ----------------------------------------------------------- hw cost

TEST(ProtectCost, OverheadRatioMonotoneInLevel)
{
    double prev = -1;
    for (int i = 0; i < kNumProtectLevels; i++) {
        double r = protectOverheadRatio(static_cast<ProtectLevel>(i));
        EXPECT_GE(r, prev) << protectLevelName(
            static_cast<ProtectLevel>(i));
        prev = r;
    }
    EXPECT_EQ(protectOverheadRatio(ProtectLevel::None), 0.0);
    EXPECT_GT(protectOverheadRatio(ProtectLevel::Ldpc),
              protectOverheadRatio(ProtectLevel::Secded));
}

TEST(ProtectCost, CostGrowsWithLevelAndSize)
{
    HwCost none = protectCost(ProtectLevel::None, 256);
    EXPECT_EQ(none.areaUm2, 0.0);
    EXPECT_EQ(none.accessEnergyPj, 0.0);

    HwCost parity = protectCost(ProtectLevel::Parity, 256);
    HwCost secded = protectCost(ProtectLevel::Secded, 256);
    HwCost ldpc = protectCost(ProtectLevel::Ldpc, 256);
    EXPECT_GT(parity.areaUm2, 0.0);
    EXPECT_GT(secded.areaUm2, parity.areaUm2);
    EXPECT_GT(ldpc.areaUm2, secded.areaUm2);
    EXPECT_GT(ldpc.accessEnergyPj, parity.accessEnergyPj);

    HwCost big = protectCost(ProtectLevel::Secded, 65536);
    EXPECT_GT(big.areaUm2, secded.areaUm2);
}

TEST(ProtectCost, DetectorCostSumsTheProtectedStructures)
{
    DetectorConfig none;
    none.reg = ProtectLevel::None;
    EXPECT_EQ(detectorCost(none, 4, 65536).areaUm2, 0.0);

    DetectorConfig full;
    full.reg = ProtectLevel::Secded;
    full.sb = ProtectLevel::Secded;
    full.cache = ProtectLevel::Secded;
    DetectorConfig reg_only;
    reg_only.reg = ProtectLevel::Secded;
    double full_area = detectorCost(full, 4, 65536).areaUm2;
    double reg_area = detectorCost(reg_only, 4, 65536).areaUm2;
    EXPECT_GT(full_area, reg_area);
    // Register-file protection alone must match protectCost directly
    // (32 x 8 B architectural registers).
    EXPECT_DOUBLE_EQ(reg_area,
                     protectCost(ProtectLevel::Secded, 256).areaUm2);
}

// ------------------------------------------------------ sensor sizing

TEST(SensorsForWcdl, MeetsDeadlineMinimally)
{
    for (uint32_t wcdl : {5u, 10u, 20u, 40u, 100u}) {
        SensorConfig cfg = sensorsForWcdl(wcdl);
        EXPECT_LE(worstCaseDetectionLatency(cfg), wcdl)
            << "wcdl " << wcdl;
        if (cfg.numSensors > 1) {
            SensorConfig fewer = cfg;
            fewer.numSensors--;
            EXPECT_GT(worstCaseDetectionLatency(fewer), wcdl)
                << "deployment for wcdl " << wcdl
                << " is not minimal";
        }
    }
}

TEST(SensorsForWcdl, MonotoneInDeadline)
{
    uint32_t prev = UINT32_MAX;
    for (uint32_t wcdl : {5u, 10u, 20u, 40u, 100u, 400u}) {
        uint32_t n = sensorsForWcdl(wcdl).numSensors;
        EXPECT_LE(n, prev) << "wcdl " << wcdl;
        prev = n;
    }
}

// -------------------------------------------------------- dominance

PointScore
score(double area, double overhead, double vuln)
{
    PointScore s;
    s.areaUm2 = area;
    s.runtimeOverhead = overhead;
    s.vulnerability = vuln;
    return s;
}

TEST(ParetoFrontier, SyntheticDominance)
{
    std::vector<PointScore> s = {
        score(100, 1.10, 0.20), // on frontier: cheapest
        score(200, 1.05, 0.10), // on frontier: balanced
        score(250, 1.06, 0.15), // dominated by [1] on all three
        score(300, 1.01, 0.30), // on frontier: fastest
        score(150, 1.20, 0.05), // on frontier: safest
    };
    markParetoFrontier(s);
    EXPECT_TRUE(s[0].onFrontier);
    EXPECT_TRUE(s[1].onFrontier);
    EXPECT_FALSE(s[2].onFrontier);
    EXPECT_TRUE(s[3].onFrontier);
    EXPECT_TRUE(s[4].onFrontier);
}

TEST(ParetoFrontier, ExactTiesBothSurvive)
{
    // Equal on every objective: neither dominates (dominance needs a
    // strict improvement somewhere), so both stay on the frontier.
    std::vector<PointScore> s = {
        score(100, 1.10, 0.20),
        score(100, 1.10, 0.20),
        score(90, 1.10, 0.20), // strictly better area: dominates both
    };
    markParetoFrontier(s);
    EXPECT_FALSE(s[0].onFrontier);
    EXPECT_FALSE(s[1].onFrontier);
    EXPECT_TRUE(s[2].onFrontier);

    std::vector<PointScore> ties = {
        score(100, 1.10, 0.20),
        score(100, 1.10, 0.20),
    };
    markParetoFrontier(ties);
    EXPECT_TRUE(ties[0].onFrontier);
    EXPECT_TRUE(ties[1].onFrontier);
}

// ------------------------------------------------------------- grid

TEST(DesignGrid, SizeOrderAndLabels)
{
    ExplorerConfig cfg;
    cfg.wcdls = {10, 40};
    cfg.sbSizes = {4, 12};
    cfg.clqDesigns = {ClqDesign::Compact};
    cfg.clqEntries = {2};
    cfg.colorPools = {0, 2};
    cfg.detectors = {"acoustic-parity", "secded-full"};

    std::vector<DesignPoint> grid = designGrid(cfg);
    ASSERT_EQ(grid.size(), 2u * 2 * 1 * 1 * 2 * 2);
    // Innermost axis is the detector, outermost the WCDL.
    EXPECT_EQ(grid[0].wcdl, 10u);
    EXPECT_EQ(grid[0].detector.label, "acoustic-parity");
    EXPECT_EQ(grid[1].detector.label, "secded-full");
    EXPECT_EQ(grid[1].wcdl, 10u);
    EXPECT_EQ(grid[2].colorPool, 2u);
    EXPECT_EQ(grid.back().wcdl, 40u);
    EXPECT_EQ(grid.back().sbSize, 12u);
    EXPECT_EQ(grid.back().detector.label, "secded-full");

    // Labels are unique identities.
    std::set<std::string> labels;
    for (const DesignPoint &p : grid)
        EXPECT_TRUE(labels.insert(p.label()).second) << p.label();
    EXPECT_EQ(grid[0].label(),
              "wcdl10/sb4/clq-compact2/pool4/acoustic-parity");
}

TEST(DesignGrid, SchemeMapping)
{
    DesignPoint p;
    p.wcdl = 25;
    p.sbSize = 12;
    p.clqDesign = ClqDesign::Ideal;
    p.clqEntries = 6;
    p.colorPool = 2;
    ASSERT_TRUE(detectorByName("secded-full", p.detector));

    ResilienceConfig cfg = designScheme(p);
    EXPECT_EQ(cfg.wcdl, 25u);
    EXPECT_EQ(cfg.sbSize, 12u);
    EXPECT_EQ(cfg.clqDesign, ClqDesign::Ideal);
    EXPECT_EQ(cfg.clqEntries, 6u);
    EXPECT_EQ(cfg.colorPool, 2u);
    EXPECT_EQ(cfg.detector.label, "secded-full");
    EXPECT_TRUE(cfg.resilience);
}

TEST(StaticScore, AreaReflectsTheAxes)
{
    DesignPoint cheap;
    cheap.wcdl = 100; // few sensors
    DesignPoint tight = cheap;
    tight.wcdl = 5; // many sensors
    EXPECT_GT(staticScore(tight).sensors, staticScore(cheap).sensors);
    EXPECT_GT(staticScore(tight).areaUm2, staticScore(cheap).areaUm2);

    DesignPoint ecc = cheap;
    ASSERT_TRUE(detectorByName("ldpc-full", ecc.detector));
    EXPECT_GT(staticScore(ecc).areaUm2, staticScore(cheap).areaUm2);

    DesignPoint big_sb = cheap;
    big_sb.sbSize = 32;
    EXPECT_GT(staticScore(big_sb).areaUm2,
              staticScore(cheap).areaUm2);
}

// ------------------------------------------------------- end to end

ExplorerConfig
tinySweep()
{
    ExplorerConfig cfg;
    cfg.specs = {findWorkload("SPLASH3", "radix")};
    cfg.icount = 2000;
    cfg.trials = 2;
    cfg.seed = 11;
    cfg.wcdls = {10, 40};
    cfg.sbSizes = {4};
    cfg.detectors = {"acoustic-parity", "secded-full"};
    return cfg;
}

TEST(RunExplorer, TinySweepScoresAreSane)
{
    ExplorerConfig cfg = tinySweep();
    std::vector<PointScore> scores = runExplorer(cfg);
    ASSERT_EQ(scores.size(), designGrid(cfg).size());
    bool any_frontier = false;
    for (const PointScore &s : scores) {
        EXPECT_GT(s.sensors, 0u);
        EXPECT_GT(s.areaUm2, 0.0);
        EXPECT_GT(s.energyPj, 0.0);
        EXPECT_GT(s.runtimeOverhead, 0.0);
        EXPECT_GE(s.vulnerability, 0.0);
        EXPECT_LE(s.vulnerability, 1.0);
        any_frontier |= s.onFrontier;
    }
    EXPECT_TRUE(any_frontier);
    // The rendered table marks the frontier and names every point.
    std::string table = paretoTable(scores);
    EXPECT_NE(table.find("*"), std::string::npos);
    EXPECT_NE(table.find("secded-full"), std::string::npos);
}

TEST(RunExplorer, DeterministicAcrossJobs)
{
    ExplorerConfig cfg = tinySweep();

    const char *saved = std::getenv("TURNPIKE_JOBS");
    std::string saved_val = saved ? saved : "";
    setenv("TURNPIKE_JOBS", "1", 1);
    std::vector<PointScore> serial = runExplorer(cfg);
    setenv("TURNPIKE_JOBS", "3", 1);
    std::vector<PointScore> parallel = runExplorer(cfg);
    if (saved)
        setenv("TURNPIKE_JOBS", saved_val.c_str(), 1);
    else
        unsetenv("TURNPIKE_JOBS");

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); i++) {
        EXPECT_EQ(serial[i].point.label(), parallel[i].point.label());
        EXPECT_EQ(serial[i].sensors, parallel[i].sensors);
        EXPECT_EQ(serial[i].areaUm2, parallel[i].areaUm2);
        EXPECT_EQ(serial[i].runtimeOverhead,
                  parallel[i].runtimeOverhead) << i;
        EXPECT_EQ(serial[i].vulnerability, parallel[i].vulnerability)
            << i;
        EXPECT_EQ(serial[i].onFrontier, parallel[i].onFrontier) << i;
    }
}

TEST(ExportParetoStats, ShapeForTheSchemaChecker)
{
    ExplorerConfig cfg = tinySweep();
    std::vector<PointScore> scores = runExplorer(cfg);

    StatRegistry reg;
    exportParetoStats(reg, scores);
    std::ostringstream out;
    reg.dumpJson(out, /*include_host=*/false);
    const std::string dump = out.str();
    EXPECT_NE(dump.find("pareto.points"), std::string::npos);
    EXPECT_NE(dump.find("pareto.frontier_size"), std::string::npos);
    for (const char *key :
         {"pareto.frontier.0.wcdl", "pareto.frontier.0.sensors",
          "pareto.frontier.0.area_um2", "pareto.frontier.0.overhead",
          "pareto.frontier.0.vulnerability"})
        EXPECT_NE(dump.find(key), std::string::npos) << key;
}

} // namespace
} // namespace turnpike
