/**
 * @file
 * Tests for the pipeline event tracer and the remaining pipeline
 * corner behaviours: category filtering, recovery events appearing
 * under fault injection, equivalence of results with tracing on/off,
 * and cross-CLQ-design functional equivalence.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/compiler.hh"
#include "core/runner.hh"
#include "machine/minterp.hh"
#include "sim/pipeline.hh"
#include "sim/trace.hh"
#include "util/rng.hh"

namespace turnpike {
namespace {

PipelineResult
runTraced(const WorkloadSpec &spec, const ResilienceConfig &cfg,
          std::ostream *sink, uint32_t mask,
          const std::vector<FaultEvent> &faults = {})
{
    auto mod = buildWorkload(spec, 6000);
    CompiledProgram prog = compileWorkload(*mod, cfg);
    PipelineConfig pcfg = cfg.toPipelineConfig();
    std::unique_ptr<Tracer> tracer;
    if (sink) {
        tracer = std::make_unique<Tracer>(*sink, mask);
        pcfg.tracer = tracer.get();
    }
    InOrderPipeline pipe(*mod, *prog.mf, pcfg);
    return pipe.run(faults);
}

TEST(Trace, RegionEventsAppear)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "gcc");
    std::ostringstream out;
    runTraced(spec, ResilienceConfig::turnpike(10), &out,
              kTraceRegions);
    std::string text = out.str();
    EXPECT_NE(text.find("boundary"), std::string::npos);
    EXPECT_NE(text.find("verified"), std::string::npos);
    // Filtered categories stay silent.
    EXPECT_EQ(text.find("issue"), std::string::npos);
}

TEST(Trace, CategoryFilterSelectsStores)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "milc");
    std::ostringstream out;
    runTraced(spec, ResilienceConfig::turnpike(10), &out,
              kTraceStores);
    std::string text = out.str();
    EXPECT_NE(text.find("fast release"), std::string::npos);
    EXPECT_EQ(text.find("boundary"), std::string::npos);
}

TEST(Trace, RecoveryEventsUnderFaults)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "gcc");
    ResilienceConfig cfg = ResilienceConfig::turnpike(20);
    PipelineResult clean = runTraced(spec, cfg, nullptr, 0);
    Rng rng(3);
    auto plan = makeFaultPlan(rng, clean.stats.cycles, 20, 2);
    std::ostringstream out;
    PipelineResult r = runTraced(spec, cfg, &out, kTraceRecovery,
                                 plan);
    EXPECT_GT(r.stats.recoveries, 0u);
    std::string text = out.str();
    EXPECT_NE(text.find("flipped"), std::string::npos);
    EXPECT_NE(text.find("squashing"), std::string::npos);
}

TEST(Trace, TracingDoesNotChangeResults)
{
    const WorkloadSpec &spec = findWorkload("SPLASH3", "water-sp");
    ResilienceConfig cfg = ResilienceConfig::turnpike(10);
    std::ostringstream out;
    PipelineResult traced = runTraced(spec, cfg, &out, kTraceAll);
    PipelineResult plain = runTraced(spec, cfg, nullptr, 0);
    EXPECT_EQ(traced.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(traced.stats.insts, plain.stats.insts);
    auto mod = buildWorkload(spec, 6000);
    EXPECT_EQ(traced.memory.dataHash(*mod),
              plain.memory.dataHash(*mod));
    EXPECT_GT(out.str().size(), 1000u);
}

TEST(Pipeline, ClqDesignsFunctionallyEquivalent)
{
    // Ideal vs compact CLQ may differ in timing but never in the
    // final memory image.
    for (const char *name : {"milc", "gcc", "mcf"}) {
        const WorkloadSpec &spec = findWorkload("CPU2006", name);
        ResilienceConfig compact = ResilienceConfig::turnpike(10);
        ResilienceConfig ideal = compact;
        ideal.clqDesign = ClqDesign::Ideal;
        ideal.clqEntries = 4096;
        RunResult rc = runWorkload(spec, compact, 8000);
        RunResult ri = runWorkload(spec, ideal, 8000);
        EXPECT_EQ(rc.dataHash, ri.dataHash) << name;
    }
}

TEST(Pipeline, TinyRbbStallsButStaysCorrect)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "gcc");
    ResilienceConfig cfg = ResilienceConfig::turnstile(50);
    auto mod = buildWorkload(spec, 8000);
    CompiledProgram prog = compileWorkload(*mod, cfg);
    PipelineConfig pcfg = cfg.toPipelineConfig();
    pcfg.rbbEntries = 2; // force boundary stalls
    InOrderPipeline pipe(*mod, *prog.mf, pcfg);
    PipelineResult r = pipe.run();
    ASSERT_TRUE(r.halted);
    EXPECT_GT(r.stats.rbbFullStallCycles, 0u);
    InterpResult golden = interpretMachine(*mod, *prog.mf);
    EXPECT_EQ(r.memory.dataHash(*mod),
              golden.memory.dataHash(*mod));
}

TEST(Trace, ControlFlowIssueEventsAppear)
{
    // Br and Jmp leave issueCycle through an early redirect that
    // skips the shared bookkeeping, so their issue events are
    // emitted separately; this pins that they appear (with the
    // branch's own pc) and that every committed instruction except
    // the final Halt produces exactly one issue line.
    const WorkloadSpec &spec = findWorkload("CPU2006", "gcc");
    std::ostringstream out;
    PipelineResult r = runTraced(spec, ResilienceConfig::baseline(),
                                 &out, kTraceIssue);
    std::string text = out.str();
    EXPECT_NE(text.find(": br v"), std::string::npos);
    EXPECT_NE(text.find(": jmp ->"), std::string::npos);

    size_t issue_lines = 0;
    for (size_t pos = text.find(": issue: ");
         pos != std::string::npos;
         pos = text.find(": issue: ", pos + 1))
        issue_lines++;
    // Halt commits without a trace event; Boundary markers are
    // zero-width and never issue.
    EXPECT_EQ(issue_lines, r.stats.insts - 1);
}

TEST(Pipeline, ColorPoolExhaustionFallsBackSafely)
{
    // At a long WCDL many regions are in flight; per-register colors
    // run out and checkpoints quarantine — results must still match.
    const WorkloadSpec &spec = findWorkload("CPU2006", "libquan");
    ResilienceConfig cfg = ResilienceConfig::turnpike(50);
    RunResult r = runWorkload(spec, cfg, 8000);
    EXPECT_EQ(r.dataHash, r.goldenHash);
    // Some checkpoints should have fallen back to the quarantine.
    EXPECT_GT(r.pipe.storesQuarantined, 0u);
}

} // namespace
} // namespace turnpike
