/**
 * @file
 * Tests for the core orchestration layer: the ResilienceConfig
 * factory ladder, the compiler driver's pass statistics, the runner
 * API (functional vs pipeline agreement, environment knobs).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/compiler.hh"
#include "core/runner.hh"

namespace turnpike {
namespace {

TEST(Config, AblationLadderIsCumulative)
{
    auto ts = ResilienceConfig::turnstile(10);
    EXPECT_TRUE(ts.resilience);
    EXPECT_FALSE(ts.warFreeRelease);
    EXPECT_FALSE(ts.hwColoring);
    EXPECT_FALSE(ts.pruning || ts.licm || ts.scheduling ||
                 ts.storeAwareRa || ts.livm);

    auto war = ResilienceConfig::warFreeOnly(10);
    EXPECT_TRUE(war.warFreeRelease);
    EXPECT_FALSE(war.hwColoring);

    auto fr = ResilienceConfig::fastRelease(10);
    EXPECT_TRUE(fr.warFreeRelease && fr.hwColoring);
    EXPECT_FALSE(fr.pruning);

    auto pr = ResilienceConfig::fastReleasePruning(10);
    EXPECT_TRUE(pr.pruning);
    EXPECT_FALSE(pr.licm);

    auto li = ResilienceConfig::fastReleasePruningLicm(10);
    EXPECT_TRUE(li.pruning && li.licm);
    EXPECT_FALSE(li.scheduling);

    auto sc = ResilienceConfig::fastReleasePruningLicmSched(10);
    EXPECT_TRUE(sc.scheduling);
    EXPECT_FALSE(sc.storeAwareRa);

    auto ra = ResilienceConfig::fastReleasePruningLicmSchedRa(10);
    EXPECT_TRUE(ra.storeAwareRa);
    EXPECT_FALSE(ra.livm);

    auto tp = ResilienceConfig::turnpike(10);
    EXPECT_TRUE(tp.warFreeRelease && tp.hwColoring && tp.pruning &&
                tp.licm && tp.scheduling && tp.storeAwareRa &&
                tp.livm);

    auto base = ResilienceConfig::baseline();
    EXPECT_FALSE(base.resilience);
}

TEST(Config, WcdlPropagatesToPipeline)
{
    auto cfg = ResilienceConfig::turnpike(37);
    EXPECT_EQ(cfg.wcdl, 37u);
    PipelineConfig p = cfg.toPipelineConfig();
    EXPECT_EQ(p.wcdl, 37u);
    EXPECT_TRUE(p.hwColoring);
    EXPECT_EQ(p.sbSize, cfg.sbSize);
    EXPECT_EQ(p.clqEntries, cfg.clqEntries);
}

TEST(Compiler, StatsReflectEnabledPasses)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "bwaves");
    {
        auto mod = buildWorkload(spec, 10000);
        CompiledProgram p =
            compileWorkload(*mod, ResilienceConfig::turnstile(10));
        EXPECT_GT(p.stats.get("ckpt.inserted"), 0u);
        EXPECT_EQ(p.stats.get("ckpt.pruned"), 0u);
        EXPECT_EQ(p.stats.get("livm.merged"), 0u);
        EXPECT_GT(p.stats.get("regions"), 1u);
    }
    {
        auto mod = buildWorkload(spec, 10000);
        CompiledProgram p =
            compileWorkload(*mod, ResilienceConfig::turnpike(10));
        EXPECT_GT(p.stats.get("ckpt.pruned"), 0u);
        EXPECT_GT(p.stats.get("livm.merged"), 0u);
        EXPECT_GT(p.stats.get("sr.pointer_ivs"), 0u);
    }
    {
        auto mod = buildWorkload(spec, 10000);
        CompiledProgram p =
            compileWorkload(*mod, ResilienceConfig::baseline());
        EXPECT_EQ(p.stats.get("ckpt.inserted"), 0u);
        EXPECT_EQ(p.stats.get("regions"), 1u);
    }
}

TEST(Runner, InterpretAgreesWithPipelineOnFunctionalFacts)
{
    const WorkloadSpec &spec = findWorkload("CPU2017", "nab");
    ResilienceConfig cfg = ResilienceConfig::turnpike(10);
    RunResult fast = interpretWorkload(spec, cfg, 12000);
    RunResult full = runWorkload(spec, cfg, 12000);
    EXPECT_EQ(fast.goldenHash, full.goldenHash);
    EXPECT_EQ(fast.dyn.insts, full.dyn.insts);
    EXPECT_EQ(fast.dyn.storesTotal(), full.dyn.storesTotal());
    EXPECT_EQ(full.dataHash, full.goldenHash);
    // The functional run carries no pipeline stats.
    EXPECT_EQ(fast.pipe.cycles, 0u);
    EXPECT_GT(full.pipe.cycles, full.pipe.insts / 2);
}

TEST(Runner, CodeSizeFieldsConsistent)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "astar");
    RunResult r = interpretWorkload(spec,
                                    ResilienceConfig::turnpike(10),
                                    8000);
    EXPECT_GT(r.codeBytes, r.baselineBytes);
    EXPECT_GT(r.recoveryBytes, 0u);
    EXPECT_GE(r.codeBytes, r.recoveryBytes);
    EXPECT_GT(r.regionSizeAvg, 1.0);
}

TEST(Runner, BenchBudgetEnvOverride)
{
    setenv("TURNPIKE_BENCH_ICOUNT", "54321", 1);
    EXPECT_EQ(benchInstBudget(), 54321u);
    // Any value >= 1 is honored — small budgets used to be
    // silently discarded in favor of the 200000 default.
    setenv("TURNPIKE_BENCH_ICOUNT", "500", 1);
    EXPECT_EQ(benchInstBudget(), 500u);
    setenv("TURNPIKE_BENCH_ICOUNT", "1", 1);
    EXPECT_EQ(benchInstBudget(), 1u);
    unsetenv("TURNPIKE_BENCH_ICOUNT");
    EXPECT_EQ(benchInstBudget(), 200000u);
}

TEST(Runner, BenchBudgetWarnsOnUnparseableEnv)
{
    // A set-but-unusable value falls back to the default WITH a
    // diagnostic on stderr (it used to be silent).
    for (const char *bad : {"bogus", "12x", "0", "-5", ""}) {
        setenv("TURNPIKE_BENCH_ICOUNT", bad, 1);
        testing::internal::CaptureStderr();
        EXPECT_EQ(benchInstBudget(), 200000u) << "value '" << bad
                                              << "'";
        std::string err = testing::internal::GetCapturedStderr();
        EXPECT_NE(err.find("TURNPIKE_BENCH_ICOUNT"),
                  std::string::npos)
            << "no warning for value '" << bad << "'";
    }
    // Unset stays the silent default path.
    unsetenv("TURNPIKE_BENCH_ICOUNT");
    testing::internal::CaptureStderr();
    EXPECT_EQ(benchInstBudget(), 200000u);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Runner, FaultArgumentThreadsThrough)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "xalan");
    ResilienceConfig cfg = ResilienceConfig::turnpike(20);
    RunResult clean = runWorkload(spec, cfg, 10000);
    std::vector<FaultEvent> plan;
    FaultEvent ev;
    ev.cycle = clean.pipe.cycles / 2;
    ev.target = FaultTarget::Register;
    ev.index = 3;
    ev.bit = 11;
    ev.detectDelay = 5;
    plan.push_back(ev);
    RunResult r = runWorkload(spec, cfg, 10000, plan);
    EXPECT_GE(r.pipe.detectedFaults, 1u);
    EXPECT_GE(r.pipe.recoveries, 1u);
    EXPECT_EQ(r.dataHash, clean.goldenHash);
}

} // namespace
} // namespace turnpike
