/**
 * @file
 * Equivalence tests for the quiescent-cycle fast-forward: a run with
 * TURNPIKE_NO_FASTFORWARD=1 (the plain cycle-by-cycle loop) must
 * produce exactly the same PipelineStats and memory image as the
 * fast-forwarding run, on clean runs and under injected faults, for
 * every resilience scheme. This pins the event-horizon rule: every
 * skipped cycle is a byte-identical replay of the stalled cycle's
 * bookkeeping.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/compiler.hh"
#include "core/config.hh"
#include "machine/minterp.hh"
#include "sim/fault_injector.hh"
#include "sim/pipeline.hh"
#include "util/rng.hh"
#include "workloads/suite.hh"

namespace turnpike {
namespace {

PipelineResult
runOnce(const WorkloadSpec &spec, const ResilienceConfig &cfg,
        bool fastforward, const std::vector<FaultEvent> &faults)
{
    auto mod = buildWorkload(spec, 20000);
    CompiledProgram prog = compileWorkload(*mod, cfg);
    if (fastforward)
        unsetenv("TURNPIKE_NO_FASTFORWARD");
    else
        setenv("TURNPIKE_NO_FASTFORWARD", "1", 1);
    InOrderPipeline pipe(*mod, *prog.mf, cfg.toPipelineConfig());
    unsetenv("TURNPIKE_NO_FASTFORWARD");
    PipelineResult r = pipe.run(faults);
    EXPECT_TRUE(r.halted);
    return r;
}

void
expectSameDistribution(const Distribution &a, const Distribution &b,
                       const char *what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.sum(), b.sum()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
}

void
expectSameStats(const PipelineStats &a, const PipelineStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.storesApp, b.storesApp);
    EXPECT_EQ(a.storesSpill, b.storesSpill);
    EXPECT_EQ(a.storesCkpt, b.storesCkpt);
    EXPECT_EQ(a.storesQuarantined, b.storesQuarantined);
    EXPECT_EQ(a.storesWarFree, b.storesWarFree);
    EXPECT_EQ(a.ckptColored, b.ckptColored);
    EXPECT_EQ(a.sbFullStallCycles, b.sbFullStallCycles);
    EXPECT_EQ(a.dataHazardStallCycles, b.dataHazardStallCycles);
    EXPECT_EQ(a.rbbFullStallCycles, b.rbbFullStallCycles);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.boundaries, b.boundaries);
    EXPECT_EQ(a.clqOverflows, b.clqOverflows);
    EXPECT_EQ(a.detectedFaults, b.detectedFaults);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.recoveryCycles, b.recoveryCycles);
    expectSameDistribution(a.clqOccupancy, b.clqOccupancy,
                           "clqOccupancy");
    expectSameDistribution(a.sbOccupancy, b.sbOccupancy,
                           "sbOccupancy");
    expectSameDistribution(a.regionCycles, b.regionCycles,
                           "regionCycles");
}

void
checkEquivalence(const WorkloadSpec &spec,
                 const ResilienceConfig &cfg,
                 const std::vector<FaultEvent> &faults)
{
    auto mod = buildWorkload(spec, 20000);
    PipelineResult slow = runOnce(spec, cfg, false, faults);
    PipelineResult fast = runOnce(spec, cfg, true, faults);
    expectSameStats(slow.stats, fast.stats);
    EXPECT_EQ(slow.memory.dataHash(*mod), fast.memory.dataHash(*mod))
        << spec.name << "/" << cfg.label;
}

TEST(FastForward, CleanRunsMatchAcrossSchemesAndWorkloads)
{
    // The fig19 workload set at its three schemes; mcf and radix
    // stress long load-miss stalls, gcc branches, milc the SB.
    const char *names[] = {"gcc", "mcf", "milc"};
    for (const char *name : names) {
        const WorkloadSpec &spec = findWorkload("CPU2006", name);
        checkEquivalence(spec, ResilienceConfig::baseline(), {});
        checkEquivalence(spec, ResilienceConfig::turnstile(10), {});
        checkEquivalence(spec, ResilienceConfig::turnpike(10), {});
    }
    const WorkloadSpec &radix = findWorkload("SPLASH3", "radix");
    checkEquivalence(radix, ResilienceConfig::turnpike(20), {});
}

TEST(FastForward, FaultedRunsMatch)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "gcc");
    for (uint64_t seed : {7u, 21u, 99u}) {
        Rng rng(seed);
        ResilienceConfig cfg = ResilienceConfig::turnpike(10);
        // Horizon from a quick clean run so faults land mid-flight.
        PipelineResult clean = runOnce(spec, cfg, true, {});
        auto plan = makeFaultPlan(rng, clean.stats.cycles, 10, 3);
        checkEquivalence(spec, cfg, plan);
        checkEquivalence(spec, ResilienceConfig::turnstile(10),
                         plan);
    }
}

TEST(FastForward, EnvVarPinsCycleByCycleLoop)
{
    // Sanity: the two paths really are different code paths — the
    // no-fastforward run must still halt and produce plausible
    // cycle counts (regression guard for the env plumbing).
    const WorkloadSpec &spec = findWorkload("CPU2006", "mcf");
    PipelineResult slow =
        runOnce(spec, ResilienceConfig::baseline(), false, {});
    EXPECT_TRUE(slow.halted);
    EXPECT_GT(slow.stats.cycles, slow.stats.insts / 2);
}

} // namespace
} // namespace turnpike
