/**
 * @file
 * A tiny property-test harness on top of googletest: seeded random
 * generators, a fixed iteration budget and greedy counterexample
 * shrinking — no external dependencies beyond the repo's own Rng.
 *
 * Usage:
 *
 *   Property<uint32_t> p;
 *   p.name = "secded corrects any single flip";
 *   p.gen = [](Rng &rng) { return uint32_t(rng.below(72)); };
 *   p.holds = [](const uint32_t &bit) { ... return ok; };
 *   p.shrink = [](const uint32_t &bit) {     // optional
 *       return bit ? std::vector<uint32_t>{bit / 2, bit - 1}
 *                  : std::vector<uint32_t>{};
 *   };
 *   p.show = [](const uint32_t &bit) { return std::to_string(bit); };
 *   checkProperty(p);
 *
 * checkProperty draws `iterations` cases from `gen` (seeded, so a
 * failure reproduces exactly), checks `holds` on each, and on the
 * first failure repeatedly applies `shrink` — accepting any proposed
 * smaller case that still fails — until a fixpoint, then reports the
 * shrunken counterexample through ADD_FAILURE().
 */

#ifndef TURNPIKE_TESTS_PROPERTY_HH_
#define TURNPIKE_TESTS_PROPERTY_HH_

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hh"

namespace turnpike {
namespace proptest {

template <typename T>
struct Property
{
    /** Shown in the failure report. */
    std::string name = "unnamed property";
    /** Cases drawn per checkProperty call. */
    uint32_t iterations = 200;
    /** Generator seed: failures replay byte-for-byte. */
    uint64_t seed = 20260808;
    /** Draw one random case. */
    std::function<T(Rng &)> gen;
    /** The law under test: true = case passes. */
    std::function<bool(const T &)> holds;
    /**
     * Optional: propose strictly "smaller" variants of a failing
     * case. Each proposal that still fails becomes the new
     * counterexample; shrinking stops at a fixpoint (no proposal
     * fails). Cycles are the caller's responsibility to avoid —
     * always propose genuinely smaller cases.
     */
    std::function<std::vector<T>(const T &)> shrink;
    /** Optional: render a case for the failure message. */
    std::function<std::string(const T &)> show;
};

/**
 * Greedily shrink @p failing to a fixpoint: keep applying the first
 * still-failing proposal until no proposal fails. Bounded at 10000
 * accepted steps as a cycle backstop. Exposed for harness tests.
 */
template <typename T>
T
shrinkToFixpoint(const Property<T> &p, T failing)
{
    if (!p.shrink)
        return failing;
    for (int steps = 0; steps < 10000; steps++) {
        bool shrunk = false;
        for (const T &candidate : p.shrink(failing)) {
            if (!p.holds(candidate)) {
                failing = candidate;
                shrunk = true;
                break;
            }
        }
        if (!shrunk)
            break;
    }
    return failing;
}

/**
 * Run the property. Returns true when every case passed (so callers
 * can compose); failures are also reported through ADD_FAILURE with
 * the shrunken counterexample and the iteration that found it.
 */
template <typename T>
bool
checkProperty(const Property<T> &p)
{
    Rng rng(p.seed);
    for (uint32_t i = 0; i < p.iterations; i++) {
        T v = p.gen(rng);
        if (p.holds(v))
            continue;
        T smallest = shrinkToFixpoint(p, v);
        std::string rendered =
            p.show ? p.show(smallest) : std::string("<no show fn>");
        ADD_FAILURE() << "property '" << p.name << "' failed at "
                      << "iteration " << i << " (seed " << p.seed
                      << ")\n  shrunken counterexample: " << rendered;
        return false;
    }
    return true;
}

} // namespace proptest
} // namespace turnpike

#endif // TURNPIKE_TESTS_PROPERTY_HH_
