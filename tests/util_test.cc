/**
 * @file
 * Unit tests for the utility substrate: formatting, RNG, statistics
 * and table rendering.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace turnpike {
namespace {

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(strfmt("%.2f", 1.2345), "1.23");
    EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Strfmt, HandlesLongStrings)
{
    std::string big(5000, 'a');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), 5000u);
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; i++)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversSmallRange)
{
    Rng r(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 200; i++)
        seen.insert(r.below(4));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool lo = false, hi = false;
    for (int i = 0; i < 500; i++) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(13);
    for (int i = 0; i < 500; i++) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(15);
    for (int i = 0; i < 50; i++) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
}

TEST(Distribution, TracksMinMaxMeanCount)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    d.sample(2);
    d.sample(8);
    d.sample(5);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(Distribution, MergeCombines)
{
    Distribution a, b;
    a.sample(1);
    b.sample(9);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    Distribution empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
}

TEST(StatSet, IncSetGet)
{
    StatSet s;
    EXPECT_EQ(s.get("x"), 0u);
    s.inc("x");
    s.inc("x", 4);
    EXPECT_EQ(s.get("x"), 5u);
    s.set("x", 2);
    EXPECT_EQ(s.get("x"), 2u);
    s.reset();
    EXPECT_EQ(s.get("x"), 0u);
    EXPECT_EQ(s.all().size(), 1u);
}

TEST(Table, AlignedTextAndCsv)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string text = t.toText();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer"), std::string::npos);
    EXPECT_EQ(t.toCsv(), "name,value\na,1\nlonger,22\n");
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CellFormatting)
{
    EXPECT_EQ(cell(1.23456, 2), "1.23");
    EXPECT_EQ(cell(uint64_t(42)), "42");
    EXPECT_EQ(pct(0.1234), "12.3%");
    EXPECT_EQ(pct(0.5, 0), "50%");
}

} // namespace
} // namespace turnpike
