/**
 * @file
 * Tests for the campaign job model and checkpoint/resume layer
 * (core/campaign.hh):
 *
 *  - decomposition laws (coverage, disjointness, purity) as property
 *    tests;
 *  - schemeFingerprint / CampaignIdentity::key sensitivity to every
 *    knob that changes results;
 *  - checkpoint framing round-trips and writer/loader agreement;
 *  - the kill -9 torture: a checkpoint truncated at EVERY byte
 *    offset must load as a clean prefix (Ok or TruncatedTail) —
 *    never crash, never invent shards — and resuming from sampled
 *    truncations must reproduce the uninterrupted campaign
 *    byte-for-byte;
 *  - corruption (a malformed frame that IS newline-terminated, or
 *    an identity mismatch) must be a loud exit(1), never a merge;
 *  - report invariance across shard sizes and across forked
 *    multi-process mode (TURNPIKE_PROCS semantics).
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/avf.hh"
#include "core/campaign.hh"
#include "tests/property.hh"
#include "util/rng.hh"

namespace turnpike {
namespace {

TEST(ShardDecomposition, CoversExactlyOnceInOrder)
{
    proptest::Property<std::pair<uint32_t, uint32_t>> p;
    p.name = "shards tile [0, trials) exactly, in order";
    p.iterations = 300;
    p.gen = [](Rng &rng) {
        return std::make_pair(uint32_t(rng.below(5000)),
                              1 + uint32_t(rng.below(600)));
    };
    p.holds = [](const std::pair<uint32_t, uint32_t> &c) {
        uint32_t trials = c.first, s = c.second;
        auto shards = decomposeShards(trials, s);
        uint32_t next = 0;
        for (size_t i = 0; i < shards.size(); i++) {
            if (shards[i].shard != i)
                return false;
            if (shards[i].lo != next || shards[i].hi <= shards[i].lo)
                return false;
            if (shards[i].hi - shards[i].lo > s)
                return false;
            // Only the last shard may be short.
            if (i + 1 < shards.size() &&
                shards[i].hi - shards[i].lo != s)
                return false;
            next = shards[i].hi;
        }
        return next == trials;
    };
    p.show = [](const std::pair<uint32_t, uint32_t> &c) {
        return "trials=" + std::to_string(c.first) +
               " shard_trials=" + std::to_string(c.second);
    };
    checkProperty(p);
}

TEST(ShardDecomposition, EdgeCases)
{
    EXPECT_TRUE(decomposeShards(0, 4).empty());
    auto one = decomposeShards(3, 100);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].lo, 0u);
    EXPECT_EQ(one[0].hi, 3u);
    auto exact = decomposeShards(8, 4);
    ASSERT_EQ(exact.size(), 2u);
    EXPECT_EQ(exact[1].lo, 4u);
    EXPECT_EQ(exact[1].hi, 8u);
}

TEST(SchemeFingerprint, SeesThroughTheLabel)
{
    // The CLI mutates knobs underneath an unchanged label; the
    // fingerprint must still distinguish the campaigns.
    ResilienceConfig a = ResilienceConfig::turnpike(20);
    ResilienceConfig b = a;
    EXPECT_EQ(schemeFingerprint(a), schemeFingerprint(b));
    b.wcdl = 21;
    EXPECT_NE(schemeFingerprint(a), schemeFingerprint(b));
    b = a;
    b.sbSize = a.sbSize + 1;
    EXPECT_NE(schemeFingerprint(a), schemeFingerprint(b));
    b = a;
    b.detector.falsePosRate += 0.125;
    EXPECT_NE(schemeFingerprint(a), schemeFingerprint(b));
    b = a;
    b.detector.maxBurst += 1;
    EXPECT_NE(schemeFingerprint(a), schemeFingerprint(b));
}

TEST(CampaignIdentityKey, SensitiveToEveryField)
{
    CampaignIdentity base;
    base.workload = "SPLASH3/radix";
    base.scheme = "s";
    base.seed = 1;
    base.trials = 16;
    base.shardTrials = 4;
    base.icount = 8000;
    base.missRate = 0.25;
    base.hangFactor = 8;

    auto mutate = [&](auto fn) {
        CampaignIdentity m = base;
        fn(m);
        return m.key();
    };
    uint64_t k = base.key();
    EXPECT_NE(k, mutate([](CampaignIdentity &m) { m.seed = 2; }));
    EXPECT_NE(k, mutate([](CampaignIdentity &m) { m.trials = 17; }));
    EXPECT_NE(k,
              mutate([](CampaignIdentity &m) { m.shardTrials = 5; }));
    EXPECT_NE(k, mutate([](CampaignIdentity &m) { m.icount = 1; }));
    EXPECT_NE(k,
              mutate([](CampaignIdentity &m) { m.missRate = 0.5; }));
    EXPECT_NE(k,
              mutate([](CampaignIdentity &m) { m.hangFactor = 9; }));
    EXPECT_NE(k,
              mutate([](CampaignIdentity &m) { m.workload = "x"; }));
    EXPECT_NE(k, mutate([](CampaignIdentity &m) { m.scheme = "t"; }));
    // The golden signature is excluded (validated field-by-field).
    EXPECT_EQ(k, mutate([](CampaignIdentity &m) {
                  m.goldenCycles = 99;
              }));
}

/** A scratch path in the build dir, removed on destruction. */
struct ScratchFile
{
    explicit ScratchFile(const std::string &name) : path(name)
    {
        std::remove(path.c_str());
    }
    ~ScratchFile() { std::remove(path.c_str()); }
    std::string path;
};

CampaignIdentity
testIdentity()
{
    CampaignIdentity id;
    id.workload = "SPLASH3/radix";
    id.scheme = "fingerprint-goes-here";
    id.seed = 11;
    id.trials = 10;
    id.shardTrials = 4;
    id.icount = 8000;
    id.missRate = 0.25;
    id.hangFactor = 8;
    id.goldenCycles = 12345;
    id.goldenData = 0xdeadbeefcafef00dull;
    id.goldenArch = 0x0123456789abcdefull;
    id.goldenInsts = 8000;
    return id;
}

ShardRecord
testShard(const ShardRange &r)
{
    ShardRecord rec;
    rec.shard = r.shard;
    rec.lo = r.lo;
    rec.hi = r.hi;
    for (uint32_t t = r.lo; t < r.hi; t++) {
        rec.outcomes.push_back(uint8_t(t % 5));
        rec.cycles.push_back(10000 + t);
        rec.recoveries.push_back(t % 3);
        rec.detections.push_back(t % 2);
    }
    rec.eccCorrected = r.shard * 7;
    rec.eccDetected = r.shard * 3;
    rec.falseAlarms = r.shard;
    return rec;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Checkpoint, RoundTripsWriterToLoader)
{
    ScratchFile ck("campaign_test_roundtrip.ckpt");
    CampaignIdentity id = testIdentity();
    auto shards = decomposeShards(id.trials, id.shardTrials);

    CheckpointWriter w;
    w.openFresh(ck.path, id);
    for (const ShardRange &r : shards)
        w.appendShard(testShard(r));
    w.close();

    LoadedCheckpoint loaded = loadCheckpoint(ck.path, id);
    EXPECT_EQ(loaded.status, CheckpointStatus::Ok);
    ASSERT_EQ(loaded.shards.size(), shards.size());
    EXPECT_EQ(loaded.validBytes, slurp(ck.path).size());
    for (const ShardRange &r : shards) {
        ASSERT_TRUE(loaded.shards.count(r.shard));
        const ShardRecord &got = loaded.shards.at(r.shard);
        ShardRecord want = testShard(r);
        EXPECT_EQ(got.lo, want.lo);
        EXPECT_EQ(got.hi, want.hi);
        EXPECT_EQ(got.outcomes, want.outcomes);
        EXPECT_EQ(got.cycles, want.cycles);
        EXPECT_EQ(got.recoveries, want.recoveries);
        EXPECT_EQ(got.detections, want.detections);
        EXPECT_EQ(got.eccCorrected, want.eccCorrected);
        EXPECT_EQ(got.eccDetected, want.eccDetected);
        EXPECT_EQ(got.falseAlarms, want.falseAlarms);
    }
}

TEST(Checkpoint, MissingFileIsNoFile)
{
    LoadedCheckpoint loaded =
        loadCheckpoint("campaign_test_nonexistent.ckpt",
                       testIdentity());
    EXPECT_EQ(loaded.status, CheckpointStatus::NoFile);
    EXPECT_TRUE(loaded.shards.empty());
    EXPECT_EQ(loaded.validBytes, 0u);
}

/**
 * The kill -9 torture: a writer emits whole frames + fflush, so the
 * on-disk file a crash leaves behind is always a prefix of the full
 * checkpoint. Truncate at EVERY byte offset: the loader must accept
 * the intact frames and drop at most one torn tail — statuses other
 * than Ok/TruncatedTail (i.e. fatal) would mean a crash can brick
 * its own checkpoint.
 */
TEST(Checkpoint, TruncationAtEveryByteLoadsCleanPrefix)
{
    ScratchFile full("campaign_test_torture_full.ckpt");
    ScratchFile cut("campaign_test_torture_cut.ckpt");
    CampaignIdentity id = testIdentity();
    auto shards = decomposeShards(id.trials, id.shardTrials);

    CheckpointWriter w;
    w.openFresh(full.path, id);
    for (const ShardRange &r : shards)
        w.appendShard(testShard(r));
    w.close();
    const std::string bytes = slurp(full.path);
    ASSERT_GT(bytes.size(), 0u);

    // Frame boundaries: offsets just past each '\n'.
    std::vector<size_t> boundaries{0};
    for (size_t i = 0; i < bytes.size(); i++)
        if (bytes[i] == '\n')
            boundaries.push_back(i + 1);

    for (size_t cutAt = 0; cutAt <= bytes.size(); cutAt++) {
        std::ofstream out(cut.path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), std::streamsize(cutAt));
        out.close();

        LoadedCheckpoint loaded = loadCheckpoint(cut.path, id);
        bool onBoundary = std::find(boundaries.begin(),
                                    boundaries.end(),
                                    cutAt) != boundaries.end();
        SCOPED_TRACE("cut at byte " + std::to_string(cutAt));
        if (onBoundary)
            EXPECT_EQ(loaded.status, CheckpointStatus::Ok);
        else
            EXPECT_EQ(loaded.status,
                      CheckpointStatus::TruncatedTail);
        // The valid prefix is exactly the whole frames before the
        // cut; every recovered shard matches what was written.
        size_t wantValid = 0;
        for (size_t b : boundaries)
            if (b <= cutAt)
                wantValid = b;
        EXPECT_EQ(loaded.validBytes, wantValid);
        size_t wholeFrames = 0;
        for (size_t i = 0; i < cutAt; i++)
            if (bytes[i] == '\n')
                wholeFrames++;
        size_t wantShards = wholeFrames > 0 ? wholeFrames - 1 : 0;
        ASSERT_EQ(loaded.shards.size(), wantShards);
        for (const auto &kv : loaded.shards) {
            const ShardRecord &got = kv.second;
            ShardRecord want = testShard(shards[kv.first]);
            EXPECT_EQ(got.outcomes, want.outcomes);
            EXPECT_EQ(got.cycles, want.cycles);
        }
    }
}

TEST(Checkpoint, ResumeTruncatesTornTailBeforeAppending)
{
    ScratchFile ck("campaign_test_resume_tail.ckpt");
    CampaignIdentity id = testIdentity();
    auto shards = decomposeShards(id.trials, id.shardTrials);

    CheckpointWriter w;
    w.openFresh(ck.path, id);
    w.appendShard(testShard(shards[0]));
    w.close();
    // Simulate a kill -9 mid-write of shard 1: append half a frame.
    {
        std::ofstream out(ck.path,
                          std::ios::binary | std::ios::app);
        out << "999\t{\"schema\":\"turnpike-checkp";
    }

    LoadedCheckpoint loaded = loadCheckpoint(ck.path, id);
    EXPECT_EQ(loaded.status, CheckpointStatus::TruncatedTail);
    ASSERT_EQ(loaded.shards.size(), 1u);

    CheckpointWriter resume;
    resume.openResume(ck.path, id, loaded);
    resume.appendShard(testShard(shards[1]));
    resume.close();

    // The torn tail must be gone and both shards intact.
    LoadedCheckpoint reloaded = loadCheckpoint(ck.path, id);
    EXPECT_EQ(reloaded.status, CheckpointStatus::Ok);
    EXPECT_EQ(reloaded.shards.size(), 2u);
}

using CheckpointDeath = ::testing::Test;

TEST(CheckpointDeath, NewlineTerminatedCorruptionIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScratchFile ck("campaign_test_corrupt.ckpt");
    CampaignIdentity id = testIdentity();
    auto shards = decomposeShards(id.trials, id.shardTrials);
    CheckpointWriter w;
    w.openFresh(ck.path, id);
    w.appendShard(testShard(shards[0]));
    w.close();
    std::string bytes = slurp(ck.path);

    // Flip one byte inside the shard frame's JSON payload (not the
    // trailing newline): framed length no longer matches, or the
    // JSON no longer parses — either way the loader must exit(1).
    std::string corrupt = bytes;
    corrupt[corrupt.size() / 2] = '#';
    {
        std::ofstream out(ck.path,
                          std::ios::binary | std::ios::trunc);
        out << corrupt;
    }
    EXPECT_EXIT(loadCheckpoint(ck.path, id),
                ::testing::ExitedWithCode(1), "");
}

TEST(CheckpointDeath, IdentityMismatchIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ScratchFile ck("campaign_test_mismatch.ckpt");
    CampaignIdentity id = testIdentity();
    CheckpointWriter w;
    w.openFresh(ck.path, id);
    w.close();

    CampaignIdentity otherSeed = id;
    otherSeed.seed++;
    EXPECT_EXIT(loadCheckpoint(ck.path, otherSeed),
                ::testing::ExitedWithCode(1), "seed");

    CampaignIdentity otherGolden = id;
    otherGolden.goldenData++;
    EXPECT_EXIT(loadCheckpoint(ck.path, otherGolden),
                ::testing::ExitedWithCode(1), "golden");
}

// ---------------------------------------------------------------
// End-to-end invariance through the real campaign engine.
// ---------------------------------------------------------------

AvfCampaignConfig
smallCampaign()
{
    AvfCampaignConfig cfg;
    cfg.spec = findWorkload("SPLASH3", "radix");
    cfg.scheme = ResilienceConfig::turnpike(20);
    cfg.icount = 8000;
    cfg.trials = 10;
    cfg.seed = 11;
    cfg.sensorMissRate = 0.25;
    return cfg;
}

/** The deterministic stats dump (host section excluded). */
std::string
reportDump(const AvfReport &rep)
{
    StatRegistry reg;
    exportAvfStats(reg, rep);
    std::ostringstream ss;
    reg.dumpJson(ss, /*include_host=*/false);
    return ss.str();
}

TEST(CampaignEngine, ReportInvariantAcrossShardSizes)
{
    AvfCampaignConfig cfg = smallCampaign();
    cfg.shardTrials = 1;
    std::string one = reportDump(runAvfCampaign(cfg));
    cfg.shardTrials = 4;
    std::string four = reportDump(runAvfCampaign(cfg));
    cfg.shardTrials = 64; // one giant shard
    std::string all = reportDump(runAvfCampaign(cfg));
    EXPECT_EQ(one, four);
    EXPECT_EQ(one, all);
}

TEST(CampaignEngine, ReportInvariantAcrossProcessCounts)
{
    AvfCampaignConfig cfg = smallCampaign();
    cfg.shardTrials = 2;
    cfg.procs = 1;
    std::string inproc = reportDump(runAvfCampaign(cfg));
    cfg.procs = 2;
    std::string forked = reportDump(runAvfCampaign(cfg));
    EXPECT_EQ(inproc, forked);
}

TEST(CampaignEngine, CheckpointThenResumeReproducesStraightRun)
{
    ScratchFile ck("campaign_test_resume_e2e.ckpt");
    AvfCampaignConfig cfg = smallCampaign();
    cfg.shardTrials = 2;

    std::string straight = reportDump(runAvfCampaign(cfg));

    // Full checkpointed run, then replay the kill -9 at sampled
    // truncation points (a prefix of whole frames plus a torn tail)
    // and resume: the report must be byte-identical every time.
    cfg.checkpointFile = ck.path;
    std::string checkpointed = reportDump(runAvfCampaign(cfg));
    EXPECT_EQ(straight, checkpointed);
    const std::string bytes = slurp(ck.path);
    ASSERT_GT(bytes.size(), 0u);

    for (size_t cutAt :
         {size_t(0), bytes.size() / 4, bytes.size() / 2,
          bytes.size() - 2, bytes.size()}) {
        SCOPED_TRACE("cut at byte " + std::to_string(cutAt));
        {
            std::ofstream out(ck.path,
                              std::ios::binary | std::ios::trunc);
            out.write(bytes.data(), std::streamsize(cutAt));
        }
        AvfCampaignConfig rcfg = smallCampaign();
        rcfg.shardTrials = 2;
        rcfg.resumeFile = ck.path;
        EXPECT_EQ(straight, reportDump(runAvfCampaign(rcfg)));
        // And the resumed checkpoint is whole again: a header frame
        // plus one newline-terminated frame per shard, no torn tail.
        const std::string resumed = slurp(ck.path);
        ASSERT_FALSE(resumed.empty());
        EXPECT_EQ(resumed.back(), '\n');
        size_t frames = 0;
        for (char c : resumed)
            if (c == '\n')
                frames++;
        EXPECT_EQ(frames,
                  1 + decomposeShards(rcfg.trials, 2).size());
    }
}

} // namespace
} // namespace turnpike
