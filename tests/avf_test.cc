/**
 * @file
 * Tests for the Monte Carlo vulnerability campaign engine
 * (core/avf.hh) and the fault-plan generators feeding it:
 *
 *  - property tests over many seeds for makeFaultPlan's contract
 *    (sorted, spaced, strictly inside the horizon, bounded delays),
 *    including the degenerate inputs that used to escape it;
 *  - makeTrialFault determinism and field ranges, sensor-miss mode;
 *  - unit tests of the outcome classifier on hand-built run pairs;
 *  - an injection smoke over every FaultTarget (no crashes, with and
 *    without detection);
 *  - campaign determinism: identical outcome counts at
 *    TURNPIKE_JOBS=1 and TURNPIKE_JOBS=3 for a fixed seed.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/avf.hh"
#include "util/rng.hh"

namespace turnpike {
namespace {

TEST(FaultPlanProperty, InvariantsAcrossSeeds)
{
    for (uint64_t seed = 1; seed <= 120; seed++) {
        for (uint64_t horizon : {2ull, 10ull, 500ull, 60000ull}) {
            for (uint32_t wcdl : {1u, 10u, 30u}) {
                Rng rng(seed * 977 + horizon + wcdl);
                auto plan = makeFaultPlan(rng, horizon, wcdl, 6);
                SCOPED_TRACE("seed=" + std::to_string(seed) +
                             " horizon=" + std::to_string(horizon) +
                             " wcdl=" + std::to_string(wcdl));
                ASSERT_LE(plan.size(), 6u);
                const uint64_t min_gap = 4ull * wcdl + 16;
                for (size_t i = 0; i < plan.size(); i++) {
                    EXPECT_GT(plan[i].cycle, 0u);
                    EXPECT_LT(plan[i].cycle, horizon);
                    EXPECT_GE(plan[i].detectDelay, 1u);
                    EXPECT_LE(plan[i].detectDelay, wcdl);
                    EXPECT_TRUE(plan[i].detected);
                    if (i > 0) {
                        EXPECT_GT(plan[i].cycle,
                                  plan[i - 1].cycle + min_gap)
                            << "events must be sorted and spaced";
                    }
                }
            }
        }
    }
}

TEST(FaultPlanRegression, DegenerateInputsYieldEmptyPlans)
{
    Rng rng(42);
    EXPECT_TRUE(makeFaultPlan(rng, 0, 10, 5).empty());
    EXPECT_TRUE(makeFaultPlan(rng, 1, 10, 5).empty());
    EXPECT_TRUE(makeFaultPlan(rng, 100000, 10, 0).empty());
}

/**
 * Regression: the spacing bump used to push events past the horizon,
 * so a crowded plan could schedule strikes after the program halted
 * (and past the cycle budget of a campaign trial). Every returned
 * cycle must now be < horizon, at the cost of a shorter plan.
 */
TEST(FaultPlanRegression, CrowdedHorizonNeverExceeded)
{
    for (uint64_t seed = 1; seed <= 300; seed++) {
        for (uint64_t horizon : {2ull, 5ull, 40ull, 200ull}) {
            Rng rng(seed);
            auto plan = makeFaultPlan(rng, horizon, 10, 8);
            for (const FaultEvent &ev : plan)
                EXPECT_LT(ev.cycle, horizon)
                    << "seed " << seed << " horizon " << horizon;
        }
    }
}

TEST(FaultPlanProperty, AmpleHorizonKeepsAllEvents)
{
    // The historic property tests rely on full-size plans; the drop
    // logic must not shrink plans when the horizon has plenty of
    // room for the spacing.
    Rng rng(7);
    auto plan = makeFaultPlan(rng, 100000, 10, 8);
    EXPECT_EQ(plan.size(), 8u);
}

TEST(TrialFault, DeterministicInSeedAndTrial)
{
    const auto &targets = allFaultTargets();
    for (uint32_t trial = 0; trial < 50; trial++) {
        FaultEvent a = makeTrialFault(9, trial, 5000, 20, targets,
                                      0.3);
        FaultEvent b = makeTrialFault(9, trial, 5000, 20, targets,
                                      0.3);
        EXPECT_EQ(a.cycle, b.cycle);
        EXPECT_EQ(a.target, b.target);
        EXPECT_EQ(a.index, b.index);
        EXPECT_EQ(a.bit, b.bit);
        EXPECT_EQ(a.detectDelay, b.detectDelay);
        EXPECT_EQ(a.detected, b.detected);

        EXPECT_GT(a.cycle, 0u);
        EXPECT_LT(a.cycle, 5000u);
        EXPECT_GE(a.detectDelay, 1u);
        EXPECT_LE(a.detectDelay, 20u);
        EXPECT_LT(a.bit, 64u);
    }
}

TEST(TrialFault, StreamsVaryAndMissRateBites)
{
    const auto &targets = allFaultTargets();
    bool any_cycle_differs = false;
    uint32_t missed = 0, caught = 0;
    bool target_seen[kNumFaultTargets] = {};
    FaultEvent first = makeTrialFault(3, 0, 100000, 20, targets, 0.5);
    for (uint32_t trial = 0; trial < 400; trial++) {
        FaultEvent ev = makeTrialFault(3, trial, 100000, 20, targets,
                                       0.5);
        any_cycle_differs |= ev.cycle != first.cycle;
        target_seen[static_cast<int>(ev.target)] = true;
        (ev.detected ? caught : missed)++;
        // Miss rate zero must never produce an undetected strike.
        EXPECT_TRUE(makeTrialFault(3, trial, 100000, 20, targets, 0.0)
                        .detected);
    }
    EXPECT_TRUE(any_cycle_differs);
    EXPECT_GT(missed, 0u);
    EXPECT_GT(caught, 0u);
    for (int t = 0; t < kNumFaultTargets; t++)
        EXPECT_TRUE(target_seen[t])
            << "target " << faultTargetName(static_cast<FaultTarget>(t))
            << " never drawn in 400 trials";
}

RunResult
madeResult(bool halted, uint64_t recoveries, uint64_t data,
           uint64_t arch, uint64_t insts = 0)
{
    RunResult r;
    r.halted = halted;
    r.pipe.recoveries = recoveries;
    r.dataHash = data;
    r.archHash = arch;
    r.pipe.insts = insts;
    return r;
}

TEST(OutcomeClassifier, AllScenarios)
{
    RunResult golden = madeResult(true, 0, 0xAAAA, 0xBBBB);

    // Budget exhausted: Hang, whatever the hashes say.
    EXPECT_EQ(classifyOutcome(golden,
                              madeResult(false, 2, 0xAAAA, 0xBBBB)),
              FaultOutcome::Hang);
    // Rollback fired and the image matches: Recovered. The register
    // file may legitimately differ (dead registers are not restored),
    // so arch state is deliberately not compared here.
    EXPECT_EQ(classifyOutcome(golden,
                              madeResult(true, 1, 0xAAAA, 0x1234)),
              FaultOutcome::Recovered);
    // Rollback fired but the image diverged: detected-but-corrupted.
    EXPECT_EQ(classifyOutcome(golden,
                              madeResult(true, 1, 0xDEAD, 0xBBBB)),
              FaultOutcome::Sdc);
    // No recovery, image and arch state both match: Masked.
    EXPECT_EQ(classifyOutcome(golden,
                              madeResult(true, 0, 0xAAAA, 0xBBBB)),
              FaultOutcome::Masked);
    // No recovery, silent image corruption: SDC.
    EXPECT_EQ(classifyOutcome(golden,
                              madeResult(true, 0, 0xDEAD, 0xBBBB)),
              FaultOutcome::Sdc);
    // No recovery, silent register corruption: SDC.
    EXPECT_EQ(classifyOutcome(golden,
                              madeResult(true, 0, 0xAAAA, 0x1234)),
              FaultOutcome::Sdc);
}

/**
 * Regression: a strike that warps the PC to an early Halt can leave
 * both hashes matching (nothing more was written) while silently
 * dropping the tail of the computation. Matching hashes with a
 * different committed-instruction count must classify SDC, never
 * Masked.
 */
TEST(OutcomeClassifier, EarlyHaltWithMatchingHashesIsSdc)
{
    RunResult golden = madeResult(true, 0, 0xAAAA, 0xBBBB, 5000);

    EXPECT_EQ(classifyOutcome(golden, madeResult(true, 0, 0xAAAA,
                                                 0xBBBB, 1200)),
              FaultOutcome::Sdc);
    // An inflated count without recovery is just as truncated a
    // computation (re-execution without a logged recovery).
    EXPECT_EQ(classifyOutcome(golden, madeResult(true, 0, 0xAAAA,
                                                 0xBBBB, 9000)),
              FaultOutcome::Sdc);
    // Equal counts stay Masked...
    EXPECT_EQ(classifyOutcome(golden, madeResult(true, 0, 0xAAAA,
                                                 0xBBBB, 5000)),
              FaultOutcome::Masked);
    // ...and the recovery path is untouched: rollback re-execution
    // legitimately inflates the commit count.
    EXPECT_EQ(classifyOutcome(golden, madeResult(true, 2, 0xAAAA,
                                                 0xBBBB, 9000)),
              FaultOutcome::Recovered);
}

TEST(CycleBudget, SaturatesInsteadOfWrapping)
{
    // Normal case: factor * golden + slack.
    EXPECT_EQ(avfCycleBudget(8, 1000), 8 * 1000u + 100000u);
    // A factor that would overflow 64 bits clamps to the pipeline's
    // own maxCycles ceiling instead of wrapping to a tiny budget.
    EXPECT_EQ(avfCycleBudget(~0ull, 123456), kMaxTrialCycleBudget);
    EXPECT_EQ(avfCycleBudget(1ull << 40, 1ull << 40),
              kMaxTrialCycleBudget);
    // Saturation also applies near the ceiling (slack must not push
    // past it).
    EXPECT_EQ(avfCycleBudget(1, kMaxTrialCycleBudget - 1),
              kMaxTrialCycleBudget);
    // Zero-length golden run is fine.
    EXPECT_EQ(avfCycleBudget(8, 0), 100000u);
}

TEST(FaultTargets, EveryTargetInjectsWithoutCrashing)
{
    const WorkloadSpec &spec = findWorkload("SPLASH3", "radix");
    ResilienceConfig cfg = ResilienceConfig::turnpike(20);
    RunResult golden = runWorkload(spec, cfg, 8000);
    ASSERT_TRUE(golden.halted);
    const uint64_t budget = 8 * golden.pipe.cycles + 100000;

    std::vector<RunRequest> reqs;
    for (FaultTarget t : allFaultTargets()) {
        for (bool detected : {true, false}) {
            FaultEvent ev;
            ev.cycle = golden.pipe.cycles / 2 + 1;
            ev.target = t;
            ev.index = 123456789;
            ev.bit = 17;
            ev.detectDelay = 5;
            ev.detected = detected;
            RunRequest q{spec, cfg, 8000, {ev}, false,
                         {budget, true}};
            reqs.push_back(std::move(q));
        }
    }
    std::vector<RunResult> runs = runCampaign(reqs);
    for (size_t i = 0; i < runs.size(); i++) {
        SCOPED_TRACE(faultTargetName(reqs[i].faults[0].target));
        // A hung run is a legitimate outcome; a crash is not (the
        // campaign must survive any strike), and a finished run must
        // stay within the budget.
        if (runs[i].halted) {
            EXPECT_LE(runs[i].pipe.cycles, budget);
        }
        // Detected strikes must actually reach the recovery path.
        if (reqs[i].faults[0].detected && runs[i].halted) {
            EXPECT_GT(runs[i].pipe.detectedFaults, 0u);
        }
    }
}

TEST(AvfCampaign, CountsAreConsistent)
{
    AvfCampaignConfig cfg;
    cfg.spec = findWorkload("CPU2006", "mcf");
    cfg.scheme = ResilienceConfig::turnpike(20);
    cfg.icount = 8000;
    cfg.trials = 16;
    cfg.seed = 5;
    cfg.sensorMissRate = 0.3;
    AvfReport rep = runAvfCampaign(cfg);

    EXPECT_EQ(rep.trials, 16u);
    EXPECT_EQ(rep.perTrial.size(), 16u);
    uint64_t outcome_total = 0, injected_total = 0;
    for (int o = 0; o < kNumFaultOutcomes; o++)
        outcome_total +=
            rep.outcomeTotal(static_cast<FaultOutcome>(o));
    for (int t = 0; t < kNumFaultTargets; t++)
        injected_total += rep.injected[t];
    EXPECT_EQ(outcome_total, 16u);
    EXPECT_EQ(injected_total, 16u);
    EXPECT_GE(rep.vulnerability(), 0.0);
    EXPECT_LE(rep.vulnerability(), 1.0);
    EXPECT_GT(rep.cycleBudget, rep.goldenCycles);

    // Detected register/SB strikes are the paper's guarantee: never
    // silent corruption.
    for (const AvfTrial &trial : rep.perTrial) {
        bool classic = trial.fault.target == FaultTarget::Register ||
            trial.fault.target == FaultTarget::SbEntry;
        if (classic && trial.fault.detected) {
            EXPECT_NE(trial.outcome, FaultOutcome::Sdc)
                << "detected " << faultTargetName(trial.fault.target)
                << " strike at cycle " << trial.fault.cycle
                << " must recover";
        }
    }
}

TEST(AvfCampaign, DeterministicAcrossWorkerCounts)
{
    AvfCampaignConfig cfg;
    cfg.spec = findWorkload("SPLASH3", "radix");
    cfg.scheme = ResilienceConfig::turnstile(20);
    cfg.icount = 8000;
    cfg.trials = 12;
    cfg.seed = 11;
    cfg.sensorMissRate = 0.25;

    const char *saved = std::getenv("TURNPIKE_JOBS");
    std::string saved_val = saved ? saved : "";

    setenv("TURNPIKE_JOBS", "1", 1);
    AvfReport serial = runAvfCampaign(cfg);
    setenv("TURNPIKE_JOBS", "3", 1);
    AvfReport parallel = runAvfCampaign(cfg);

    if (saved)
        setenv("TURNPIKE_JOBS", saved_val.c_str(), 1);
    else
        unsetenv("TURNPIKE_JOBS");

    for (int t = 0; t < kNumFaultTargets; t++) {
        EXPECT_EQ(serial.injected[t], parallel.injected[t]);
        for (int o = 0; o < kNumFaultOutcomes; o++)
            EXPECT_EQ(serial.counts[t][o], parallel.counts[t][o])
                << faultTargetName(static_cast<FaultTarget>(t)) << "/"
                << faultOutcomeName(static_cast<FaultOutcome>(o));
    }
    ASSERT_EQ(serial.perTrial.size(), parallel.perTrial.size());
    for (size_t i = 0; i < serial.perTrial.size(); i++) {
        EXPECT_EQ(serial.perTrial[i].outcome,
                  parallel.perTrial[i].outcome);
        EXPECT_EQ(serial.perTrial[i].cycles,
                  parallel.perTrial[i].cycles);
    }
    EXPECT_EQ(avfReportTable(serial), avfReportTable(parallel));
}

TEST(AvfReportMerging, AddsCountsAndTrials)
{
    AvfReport a, b;
    a.scheme = "turnpike";
    a.trials = 10;
    a.counts[0][0] = 4;
    a.counts[1][2] = 6;
    a.injected[0] = 4;
    a.injected[1] = 6;
    b.scheme = "turnpike";
    b.trials = 5;
    b.counts[0][0] = 1;
    b.counts[1][3] = 4;
    b.injected[0] = 1;
    b.injected[1] = 4;

    a.merge(b);
    EXPECT_EQ(a.trials, 15u);
    EXPECT_EQ(a.counts[0][0], 5u);
    EXPECT_EQ(a.counts[1][2], 6u);
    EXPECT_EQ(a.counts[1][3], 4u);
    EXPECT_EQ(a.outcomeTotal(FaultOutcome::Masked), 5u);
    EXPECT_EQ(a.outcomeTotal(FaultOutcome::Sdc), 6u);
    EXPECT_EQ(a.outcomeTotal(FaultOutcome::Hang), 4u);
    EXPECT_DOUBLE_EQ(a.vulnerability(), 10.0 / 15.0);
}

} // namespace
} // namespace turnpike
