/**
 * @file
 * Unit tests for the machine layer: lowering (linearization, branch
 * targets, region metadata, recovery programs), the machine
 * verifier, the disassembler, and the functional interpreter —
 * cross-checked against the IR interpreter.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "machine/minterp.hh"
#include "machine/mprinter.hh"
#include "machine/mverifier.hh"
#include "passes/checkpoint_pruning.hh"
#include "passes/eager_checkpointing.hh"
#include "passes/lowering.hh"
#include "passes/region_formation.hh"
#include "passes/register_allocation.hh"

namespace turnpike {
namespace {

/** Post-RA diamond function with regions and checkpoints. */
std::unique_ptr<Module>
makeLoweredInput(Function **out_fn)
{
    auto mod = std::make_unique<Module>("m");
    DataObject &out = mod->addData("out", 4, {});
    Function &fn = mod->addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    BlockId l = b.newBlock("l");
    BlockId r = b.newBlock("r");
    BlockId j = b.newBlock("j");
    b.setBlock(e);
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg x = b.li(7);
    Reg c = b.binImm(Op::CmpLt, x, 5);
    b.br(c, l, r);
    b.setBlock(l);
    Reg a1 = b.binImm(Op::Add, x, 100);
    b.store(a1, ob);
    b.jmp(j);
    b.setBlock(r);
    Reg a2 = b.binImm(Op::Mul, x, 3);
    b.store(a2, ob, 8);
    b.jmp(j);
    b.setBlock(j);
    Reg fin = b.binImm(Op::Add, x, 1);
    b.store(fin, ob, 16);
    b.halt();

    RaOptions ra;
    runRegisterAllocation(fn, ra);
    RegionFormationOptions rf;
    rf.storeBudget = 1;
    runRegionFormation(fn, rf);
    runEagerCheckpointing(fn);
    *out_fn = &fn;
    return mod;
}

TEST(Lowering, ProducesVerifiableMachineCode)
{
    Function *fn;
    auto mod = makeLoweredInput(&fn);
    MachineFunction mf = lowerFunction(*fn, PruneResult());
    EXPECT_TRUE(verifyMachineFunction(mf).empty());
    EXPECT_EQ(mf.code()[0].op, Op::Boundary);
    EXPECT_GT(mf.regions().size(), 1u);
}

TEST(Lowering, MachineMatchesIrInterpreter)
{
    Function *fn;
    auto mod = makeLoweredInput(&fn);
    InterpResult ir = interpret(*mod, *fn);
    MachineFunction mf = lowerFunction(*fn, PruneResult());
    InterpResult mr = interpretMachine(*mod, mf);
    EXPECT_EQ(mr.reason, StopReason::Halted);
    EXPECT_EQ(ir.memory.dataHash(*mod), mr.memory.dataHash(*mod));
    EXPECT_EQ(ir.stats.storesApp, mr.stats.storesApp);
}

TEST(Lowering, BranchTargetsResolve)
{
    Function *fn;
    auto mod = makeLoweredInput(&fn);
    MachineFunction mf = lowerFunction(*fn, PruneResult());
    for (size_t pc = 0; pc < mf.code().size(); pc++) {
        const MInstr &mi = mf.code()[pc];
        if (mi.op == Op::Br || mi.op == Op::Jmp) {
            EXPECT_LT(mi.target, mf.code().size());
            EXPECT_NE(mi.target, pc);
        }
    }
}

TEST(Lowering, RegionMetadataConsistent)
{
    Function *fn;
    auto mod = makeLoweredInput(&fn);
    MachineFunction mf = lowerFunction(*fn, PruneResult());
    for (size_t rid = 0; rid < mf.regions().size(); rid++) {
        const RegionMeta &rm = mf.regions()[rid];
        ASSERT_LT(rm.entryPc, mf.code().size());
        EXPECT_EQ(mf.code()[rm.entryPc].op, Op::Boundary);
        EXPECT_EQ(static_cast<uint32_t>(mf.code()[rm.entryPc].imm),
                  rid);
        // Every live-in is restored by some CommitReg (fp always).
        for (Reg r : rm.liveIns) {
            bool restored = false;
            for (const RecoveryOp &op : rm.recovery)
                if (op.kind == RecoveryOp::Kind::CommitReg &&
                    op.reg == r)
                    restored = true;
            EXPECT_TRUE(restored) << "live-in r" << r
                                  << " of region " << rid;
        }
        // fp is rematerialized first.
        ASSERT_GE(rm.recovery.size(), 2u);
        EXPECT_EQ(rm.recovery[0].kind, RecoveryOp::Kind::Li);
        EXPECT_EQ(rm.recovery[1].kind, RecoveryOp::Kind::CommitReg);
        EXPECT_EQ(rm.recovery[1].reg, kFramePointer);
    }
}

TEST(Lowering, GovernedRecipeSplicedIntoRecovery)
{
    // Region 1's live-in d gets a reconstruction recipe instead of
    // a checkpoint load.
    Module m("m");
    DataObject &out = m.addData("out", 2);
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    fn.block(e).append(makeBoundary(0));
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg k = b.li(17);
    Reg d = b.binImm(Op::Add, k, 9);
    b.store(k, ob, 0);
    fn.block(e).append(makeBoundary(1));
    b.store(d, ob, 8);
    Reg s = b.bin(Op::Add, k, d);
    b.store(s, ob, 0);
    b.halt();
    fn.setNumRegions(2);
    runEagerCheckpointing(fn);
    PruneResult pr = runCheckpointPruning(fn);
    ASSERT_GT(pr.governed.count({1u, d}), 0u);

    MachineFunction mf = lowerFunction(fn, pr);
    const RegionMeta &rm = mf.region(1);
    bool has_bin = false;
    for (const RecoveryOp &op : rm.recovery)
        if (op.kind == RecoveryOp::Kind::Bin && op.op == Op::Add &&
            op.bImm && op.imm == 9)
            has_bin = true;
    EXPECT_TRUE(has_bin) << "recipe not spliced";
}

TEST(Lowering, CodeSizeAccounting)
{
    Function *fn;
    auto mod = makeLoweredInput(&fn);
    MachineFunction mf = lowerFunction(*fn, PruneResult());
    // Boundaries are free; everything else is 4 bytes.
    uint64_t expect = 0;
    uint64_t ckpt_bytes = 0;
    for (const MInstr &mi : mf.code()) {
        expect += mi.encodedBytes();
        if (mi.op == Op::Ckpt)
            ckpt_bytes += 4;
    }
    EXPECT_EQ(mf.codeBytes(), expect);
    EXPECT_EQ(mf.baselineBytes(), expect - ckpt_bytes);
    EXPECT_GT(mf.recoveryBytes(), 0u);
}

TEST(MachineVerifier, CatchesBadTargetAndMissingHalt)
{
    MachineFunction mf("bad");
    MInstr boundary;
    boundary.op = Op::Boundary;
    boundary.imm = 0;
    mf.code().push_back(boundary);
    MInstr jmp;
    jmp.op = Op::Jmp;
    jmp.target = 99;
    mf.code().push_back(jmp);
    mf.regions().resize(1);
    mf.regions()[0].entryPc = 0;
    auto problems = verifyMachineFunction(mf);
    EXPECT_GE(problems.size(), 2u); // bad target + no halt
}

TEST(MachineVerifier, RequiresLeadingBoundary)
{
    MachineFunction mf("bad");
    MInstr halt;
    halt.op = Op::Halt;
    mf.code().push_back(halt);
    auto problems = verifyMachineFunction(mf);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("boundary"), std::string::npos);
}

TEST(MachinePrinter, DisassemblesBranchesAndRecovery)
{
    Function *fn;
    auto mod = makeLoweredInput(&fn);
    MachineFunction mf = lowerFunction(*fn, PruneResult());
    std::string text = printMachineFunction(mf);
    EXPECT_NE(text.find("mfunc"), std::string::npos);
    EXPECT_NE(text.find("->"), std::string::npos);
    EXPECT_NE(text.find("region"), std::string::npos);
    EXPECT_NE(text.find("commit"), std::string::npos);
}

TEST(EvalAlu, MatchesSemantics)
{
    EXPECT_EQ(evalAlu(Op::Add, 2, 3), 5);
    EXPECT_EQ(evalAlu(Op::Sub, 2, 3), -1);
    EXPECT_EQ(evalAlu(Op::Div, 7, 0), 0);
    EXPECT_EQ(evalAlu(Op::Shl, 1, 65), 2); // shift masked to 6 bits
    EXPECT_EQ(evalAlu(Op::Shr, -8, 1), -4);
    EXPECT_EQ(evalAlu(Op::CmpLe, 3, 3), 1);
    EXPECT_EQ(evalAlu(Op::Mov, 9, 1), 9);
}

TEST(MachineInterp, CountsBoundariesSeparately)
{
    Function *fn;
    auto mod = makeLoweredInput(&fn);
    MachineFunction mf = lowerFunction(*fn, PruneResult());
    InterpResult r = interpretMachine(*mod, mf);
    EXPECT_GT(r.stats.boundaries, 0u);
    // Boundaries are not counted as instructions.
    uint64_t real = 0;
    for (const MInstr &mi : mf.code())
        if (mi.op != Op::Boundary)
            real++;
    EXPECT_LE(r.stats.insts, real + 1);
}

} // namespace
} // namespace turnpike
