/**
 * @file
 * Integration tests: every workload of the 36-benchmark suite,
 * compiled under every resilience scheme, must (a) pass IR and
 * machine verification, (b) produce the golden data-segment image in
 * the functional interpreter, and (c) produce the same image in the
 * cycle-level pipeline. Also checks the first-order performance
 * ordering the paper reports (Turnpike between baseline and
 * Turnstile).
 */

#include <gtest/gtest.h>

#include "core/runner.hh"

namespace turnpike {
namespace {

constexpr uint64_t kInsts = 15000;

std::vector<ResilienceConfig>
allSchemes()
{
    return {
        ResilienceConfig::baseline(),
        ResilienceConfig::turnstile(10),
        ResilienceConfig::warFreeOnly(10),
        ResilienceConfig::fastRelease(10),
        ResilienceConfig::fastReleasePruning(10),
        ResilienceConfig::fastReleasePruningLicm(10),
        ResilienceConfig::fastReleasePruningLicmSched(10),
        ResilienceConfig::fastReleasePruningLicmSchedRa(10),
        ResilienceConfig::turnpike(10),
    };
}

class AllWorkloads : public ::testing::TestWithParam<WorkloadSpec>
{};

TEST_P(AllWorkloads, EverySchemeMatchesGolden)
{
    const WorkloadSpec &spec = GetParam();
    RunResult base = runWorkload(spec, ResilienceConfig::baseline(),
                                 kInsts);
    ASSERT_TRUE(base.halted);
    ASSERT_EQ(base.dataHash, base.goldenHash)
        << "pipeline diverged from interpreter on baseline";

    for (const ResilienceConfig &cfg : allSchemes()) {
        RunResult r = runWorkload(spec, cfg, kInsts);
        EXPECT_TRUE(r.halted) << cfg.label;
        EXPECT_EQ(r.goldenHash, base.goldenHash)
            << "compiler changed program semantics: " << cfg.label;
        EXPECT_EQ(r.dataHash, base.goldenHash)
            << "pipeline diverged from golden: " << cfg.label;
    }
}

TEST_P(AllWorkloads, TurnpikeNoSlowerThanTurnstile)
{
    const WorkloadSpec &spec = GetParam();
    RunResult ts = runWorkload(spec, ResilienceConfig::turnstile(30),
                               kInsts);
    RunResult tp = runWorkload(spec, ResilienceConfig::turnpike(30),
                               kInsts);
    // 3% tolerance: at small instruction budgets a store-light
    // workload can land within noise of Turnstile.
    EXPECT_LE(static_cast<double>(tp.pipe.cycles),
              1.03 * static_cast<double>(ts.pipe.cycles))
        << "Turnpike slower than Turnstile at WCDL=30";
}

std::string
workloadName(const ::testing::TestParamInfo<WorkloadSpec> &info)
{
    std::string s = info.param.suite + "_" + info.param.name;
    for (char &c : s)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(Suite, AllWorkloads,
                         ::testing::ValuesIn(workloadSuite()),
                         workloadName);

} // namespace
} // namespace turnpike
