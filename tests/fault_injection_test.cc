/**
 * @file
 * Resilience property tests — the paper's core guarantee: any
 * single-event upset in an architectural register or an unverified
 * store-buffer entry, detected within the WCDL, is recovered by
 * region-level restart with the final data-segment image identical
 * to the fault-free golden image.
 *
 * The sweeps cover Turnstile and Turnpike (fast release + coloring),
 * several WCDLs, and many fault seeds per workload, validating in
 * particular the WAR-free fast-release argument (§4.3.1) and the
 * hardware-coloring corner case (§4.3.2). A negative test shows the
 * naive checkpoint release of Fig. 16 can corrupt recovery, which is
 * exactly why coloring exists.
 *
 * Each case is an independent simulation, so the whole grid is
 * executed as runCampaign() request vectors (clean runs first, then
 * the faulted runs derived from them) and only the assertions run
 * serially; TURNPIKE_JOBS=1 reproduces the old one-at-a-time order.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/parallel.hh"
#include "core/runner.hh"
#include "machine/mverifier.hh"
#include "sim/pipeline.hh"
#include "util/rng.hh"

namespace turnpike {
namespace {

constexpr uint64_t kInsts = 12000;

struct FaultCase
{
    std::string suite;
    std::string name;
    std::string scheme; ///< "turnstile" or "turnpike"
    uint32_t wcdl;
    uint64_t seed;
};

std::string
describe(const FaultCase &c)
{
    return c.suite + "/" + c.name + " " + c.scheme + " wcdl=" +
        std::to_string(c.wcdl) + " seed=" + std::to_string(c.seed);
}

/** Clean runs are shared by every seed of the same configuration. */
std::string
cleanKey(const FaultCase &c)
{
    return c.suite + "/" + c.name + "/" + c.scheme + "/" +
        std::to_string(c.wcdl);
}

ResilienceConfig
schemeFor(const FaultCase &c)
{
    if (c.scheme == "turnstile")
        return ResilienceConfig::turnstile(c.wcdl);
    if (c.scheme == "warfree")
        return ResilienceConfig::warFreeOnly(c.wcdl);
    if (c.scheme == "fastrelease")
        return ResilienceConfig::fastRelease(c.wcdl);
    if (c.scheme == "prune")
        return ResilienceConfig::fastReleasePruning(c.wcdl);
    if (c.scheme == "idealclq") {
        ResilienceConfig cfg = ResilienceConfig::turnpike(c.wcdl);
        cfg.clqDesign = ClqDesign::Ideal;
        cfg.clqEntries = 1u << 20;
        return cfg;
    }
    if (c.scheme == "bigsb") {
        ResilienceConfig cfg = ResilienceConfig::turnpike(c.wcdl);
        cfg.sbSize = 10;
        return cfg;
    }
    if (c.scheme == "tinyclq") {
        ResilienceConfig cfg = ResilienceConfig::turnpike(c.wcdl);
        cfg.clqEntries = 1;
        return cfg;
    }
    return ResilienceConfig::turnpike(c.wcdl);
}

std::vector<FaultCase>
faultCases()
{
    // A representative cross-section: pointer chasing (serial
    // dependence), streaming (WAR-free fast release), histogram
    // (real WAR dependences), spilling (RA interaction), branchy
    // (pruned checkpoints with recovery recipes).
    const std::vector<std::pair<std::string, std::string>> picks = {
        {"CPU2006", "mcf"},      {"CPU2006", "bwaves"},
        {"CPU2006", "gcc"},      {"CPU2006", "gemsfdtd"},
        {"CPU2017", "x264"},     {"CPU2017", "deepsjeng"},
        {"SPLASH3", "radix"},    {"SPLASH3", "water-sp"},
    };
    std::vector<FaultCase> cases;
    uint64_t seed = 77;
    for (const auto &[suite, name] : picks) {
        for (const char *scheme : {"turnstile", "turnpike"}) {
            for (uint32_t wcdl : {10u, 30u}) {
                for (int rep = 0; rep < 3; rep++)
                    cases.push_back({suite, name, scheme, wcdl,
                                     seed++});
            }
        }
        // Intermediate ablation steps and hardware variants: the
        // recovery guarantee must hold for every configuration, not
        // just the endpoints.
        for (const char *scheme :
             {"warfree", "fastrelease", "prune", "idealclq", "bigsb",
              "tinyclq"}) {
            cases.push_back({suite, name, scheme, 20u, seed++});
            cases.push_back({suite, name, scheme, 40u, seed++});
        }
    }
    return cases;
}

TEST(FaultRecoverySweep, RecoversToGoldenImageAcrossGrid)
{
    const std::vector<FaultCase> cases = faultCases();

    // Phase 1: one fault-free run per unique configuration, for the
    // golden hash and the cycle horizon of the fault plans.
    std::map<std::string, size_t> clean_index;
    std::vector<RunRequest> clean_reqs;
    for (const FaultCase &c : cases) {
        if (clean_index.emplace(cleanKey(c), clean_reqs.size())
                .second)
            clean_reqs.push_back({findWorkload(c.suite, c.name),
                                  schemeFor(c), kInsts, {}, false});
    }
    std::vector<RunResult> cleans = runCampaign(clean_reqs);
    for (size_t i = 0; i < cleans.size(); i++)
        ASSERT_TRUE(cleans[i].halted) << cleans[i].workload;

    // Phase 2: several upsets spread over each case's run.
    std::vector<RunRequest> fault_reqs;
    for (const FaultCase &c : cases) {
        const RunResult &clean = cleans[clean_index.at(cleanKey(c))];
        Rng rng(c.seed);
        RunRequest q{findWorkload(c.suite, c.name), schemeFor(c),
                     kInsts, {}, false};
        q.faults = makeFaultPlan(rng, clean.pipe.cycles, c.wcdl, 3);
        fault_reqs.push_back(std::move(q));
    }
    std::vector<RunResult> faulted = runCampaign(fault_reqs);

    for (size_t i = 0; i < cases.size(); i++) {
        SCOPED_TRACE(describe(cases[i]));
        const RunResult &clean =
            cleans[clean_index.at(cleanKey(cases[i]))];
        const RunResult &faulty = faulted[i];
        EXPECT_TRUE(faulty.halted);
        EXPECT_GT(faulty.pipe.recoveries, 0u)
            << "no recovery was exercised";
        EXPECT_EQ(faulty.dataHash, clean.goldenHash)
            << "recovered run diverged from the golden image";
        // Recovery costs cycles overall; tolerate small wins from
        // the squash instantly draining verified SB entries.
        EXPECT_GE(static_cast<double>(faulty.pipe.cycles),
                  0.99 * static_cast<double>(clean.pipe.cycles))
            << "recovery should not make the program notably faster";
    }
}

/**
 * Negative test (Fig. 16): releasing checkpoint stores without
 * coloring can overwrite the only valid checkpoint of a register
 * with an unverified (possibly corrupt) value; recovery then
 * restores garbage. We assert that the unsafe mode CAN diverge
 * where safe Turnpike never does, over the same fault plans.
 */
TEST(NaiveCkptRelease, Fig16CornerCanCorruptRecovery)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "hmmer");

    ResilienceConfig safe = ResilienceConfig::turnpike(20);
    ResilienceConfig naive = safe;
    naive.label = "naive";
    naive.hwColoring = false;
    naive.naiveCkptRelease = true;

    RunResult clean = runWorkload(spec, safe, kInsts);
    std::vector<RunRequest> reqs;
    for (uint64_t seed = 1; seed <= 20; seed++) {
        Rng rng(seed * 31337);
        auto plan = makeFaultPlan(rng, clean.pipe.cycles, 20, 3);
        reqs.push_back({spec, safe, kInsts, plan, false});
        reqs.push_back({spec, naive, kInsts, plan, false});
    }
    std::vector<RunResult> results = runCampaign(reqs);

    uint64_t safe_divergences = 0;
    uint64_t naive_divergences = 0;
    for (size_t i = 0; i < results.size(); i += 2) {
        if (results[i].dataHash != clean.goldenHash)
            safe_divergences++;
        if (results[i + 1].dataHash != clean.goldenHash)
            naive_divergences++;
    }
    EXPECT_EQ(safe_divergences, 0u)
        << "safe Turnpike must always recover";
    EXPECT_GT(naive_divergences, 0u)
        << "expected the Fig. 16 hazard to bite without coloring";
}

} // namespace
} // namespace turnpike
