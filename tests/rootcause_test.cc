/**
 * @file
 * Tests for SDC/Hang root-cause bisection (core/rootcause.hh):
 *
 *  - ground truth: a linear scan over fully captured commit streams
 *    must agree with the binary-search bisection on the divergence
 *    kind and index for every harmful trial of a campaign;
 *  - causality golden test: an undetected register strike at cycle c
 *    can only diverge at a commit at cycle >= c, and the analysis
 *    must attribute a concrete PC/opcode/region for Commit kinds;
 *  - full-report determinism at TURNPIKE_JOBS=1 vs 3, including the
 *    logical probe counts;
 *  - stats export: the rootcause.* namespace invariant
 *    attributed + state_only == analyzed, and report merging.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/rootcause.hh"

namespace turnpike {
namespace {

AvfCampaignConfig
harmfulCampaign()
{
    AvfCampaignConfig cfg;
    cfg.spec = findWorkload("SPLASH3", "radix");
    cfg.scheme = ResilienceConfig::turnstile(20);
    cfg.icount = 8000;
    cfg.trials = 16;
    cfg.seed = 77;
    cfg.sensorMissRate = 0.5;
    return cfg;
}

/** Full faulty commit stream of one trial. */
std::vector<CommitRecord>
fullFaultyStream(const TrialReplayer &replayer, uint32_t trial)
{
    CommitCapture cap;
    cap.windowLo = 0;
    cap.windowHi = ~0ull;
    replayer.replay(trial, nullptr, &cap);
    return cap.window;
}

/** Architectural equality (cycle excluded, like the prefix hash). */
bool
sameCommit(const CommitRecord &x, const CommitRecord &y)
{
    return x.pc == y.pc && x.opcode == y.opcode && x.a == y.a &&
        x.b == y.b;
}

/**
 * The bisection's ground truth: capture both streams whole, scan
 * linearly for the first divergent commit, and demand the binary
 * search lands on exactly the same (kind, index) — for every
 * harmful trial of a live campaign.
 */
TEST(Bisection, MatchesLinearScanReference)
{
    AvfCampaignConfig cfg = harmfulCampaign();
    AvfReport rep = runAvfCampaign(cfg);
    TrialReplayer replayer(cfg);
    GoldenPrefixCache cache;

    std::vector<CommitRecord> golden;
    {
        CommitCapture cap;
        cap.windowLo = 0;
        cap.windowHi = ~0ull;
        replayer.goldenProbe(&cap);
        golden = std::move(cap.window);
    }
    ASSERT_EQ(golden.size(), replayer.golden().pipe.insts);

    uint32_t harmful = 0;
    for (uint32_t t = 0; t < cfg.trials; t++) {
        FaultOutcome o = rep.perTrial[t].outcome;
        if (o != FaultOutcome::Sdc && o != FaultOutcome::Hang)
            continue;
        harmful++;
        SCOPED_TRACE("trial " + std::to_string(t));

        std::vector<CommitRecord> faulty =
            fullFaultyStream(replayer, t);
        const uint64_t m = std::min(golden.size(), faulty.size());
        uint64_t ref_index = m;
        DivergenceKind ref_kind;
        for (uint64_t i = 0; i < m; i++) {
            if (!sameCommit(golden[i], faulty[i])) {
                ref_index = i;
                break;
            }
        }
        if (ref_index < m)
            ref_kind = DivergenceKind::Commit;
        else if (faulty.size() == golden.size())
            ref_kind = DivergenceKind::StateOnly;
        else if (faulty.size() < golden.size())
            ref_kind = DivergenceKind::Truncated;
        else
            ref_kind = DivergenceKind::Extended;

        DivergencePoint dp = bisectDivergence(replayer, t, cache);
        EXPECT_EQ(dp.kind, ref_kind)
            << divergenceKindName(dp.kind) << " vs reference "
            << divergenceKindName(ref_kind);
        EXPECT_EQ(dp.index, ref_index);
        if (dp.kind == DivergenceKind::Commit) {
            EXPECT_TRUE(sameCommit(dp.golden, golden[ref_index]));
            EXPECT_TRUE(sameCommit(dp.faulty, faulty[ref_index]));
            EXPECT_FALSE(sameCommit(dp.golden, dp.faulty));
        }
        // log2(m) + the initial E(m) query bounds the probe count.
        uint32_t log2m = 0;
        while ((1ull << log2m) < m)
            log2m++;
        EXPECT_LE(dp.probes, log2m + 2);
    }
    ASSERT_GT(harmful, 0u) << "campaign produced nothing to bisect; "
                              "retune the test seed";
}

/**
 * Causality golden test: the faulted machine is bit-identical to
 * the golden run until its strike lands, so a strike at cycle c can
 * only diverge at a commit whose golden-side cycle is >= c —
 * whatever structure was hit. This pins the capture's cycle
 * bookkeeping and the attribution's use of the golden-side record.
 * (Register strikes can't serve here: they always set a parity bit,
 * so they are always caught and recovered, never SDC.)
 */
TEST(Bisection, DivergenceNeverPrecedesTheStrike)
{
    AvfCampaignConfig cfg = harmfulCampaign();
    AvfReport rep = runAvfCampaign(cfg);
    TrialReplayer replayer(cfg);
    GoldenPrefixCache cache;

    uint32_t commits_seen = 0;
    for (uint32_t t = 0; t < cfg.trials; t++) {
        FaultOutcome o = rep.perTrial[t].outcome;
        if (o != FaultOutcome::Sdc && o != FaultOutcome::Hang)
            continue;
        DivergencePoint dp = bisectDivergence(replayer, t, cache);
        if (dp.kind != DivergenceKind::Commit)
            continue;
        commits_seen++;
        EXPECT_GE(dp.golden.cycle, rep.perTrial[t].fault.cycle)
            << "trial " << t << " diverged before its own strike";
        EXPECT_NE(dp.golden.pc, kNoTracePc);
        EXPECT_NE(dp.golden.opcode, kNoTraceOp);
    }
    ASSERT_GT(commits_seen, 0u)
        << "no commit-kind divergence in the campaign; retune the "
           "test seed";
}

TEST(RootCauseAnalysis, AttributesEveryHarmfulTrial)
{
    AvfCampaignConfig cfg = harmfulCampaign();
    RootCauseReport rep = runRootCauseAnalysis(cfg);

    EXPECT_EQ(rep.trials, cfg.trials);
    EXPECT_EQ(rep.screen.trials, cfg.trials);
    EXPECT_EQ(rep.analyzed,
              rep.screen.outcomeTotal(FaultOutcome::Sdc) +
                  rep.screen.outcomeTotal(FaultOutcome::Hang));
    ASSERT_GT(rep.analyzed, 0u);
    EXPECT_EQ(rep.attributions.size(), rep.analyzed);

    uint64_t kind_total = 0;
    for (int k = 0; k < kNumDivergenceKinds; k++)
        kind_total += rep.kindCounts[k];
    EXPECT_EQ(kind_total, rep.analyzed);
    EXPECT_EQ(rep.attributed() +
                  rep.kindCounts[static_cast<int>(
                      DivergenceKind::StateOnly)],
              rep.analyzed);
    EXPECT_EQ(rep.inPrunedRegion + rep.inUnprunedRegion,
              rep.attributed());

    for (const RootCauseAttribution &a : rep.attributions) {
        EXPECT_TRUE(a.outcome == FaultOutcome::Sdc ||
                    a.outcome == FaultOutcome::Hang);
        if (a.kind != DivergenceKind::StateOnly) {
            // Every attributed trial names a concrete instruction.
            EXPECT_NE(a.pc, kNoTracePc);
            EXPECT_NE(a.opcode, kNoTraceOp);
            EXPECT_FALSE(a.opcodeName.empty());
            EXPECT_EQ(a.inPrunedRegion, a.regionPrunedLiveIns > 0);
        } else {
            EXPECT_EQ(a.pc, kNoTracePc);
        }
        EXPECT_GT(a.probes, 0u);
    }
}

TEST(RootCauseAnalysis, DeterministicAcrossWorkerCounts)
{
    AvfCampaignConfig cfg = harmfulCampaign();

    const char *saved = std::getenv("TURNPIKE_JOBS");
    std::string saved_val = saved ? saved : "";

    setenv("TURNPIKE_JOBS", "1", 1);
    RootCauseReport serial = runRootCauseAnalysis(cfg);
    setenv("TURNPIKE_JOBS", "3", 1);
    RootCauseReport parallel = runRootCauseAnalysis(cfg);

    if (saved)
        setenv("TURNPIKE_JOBS", saved_val.c_str(), 1);
    else
        unsetenv("TURNPIKE_JOBS");

    EXPECT_EQ(serial.analyzed, parallel.analyzed);
    EXPECT_EQ(serial.totalProbes, parallel.totalProbes);
    for (int k = 0; k < kNumDivergenceKinds; k++)
        EXPECT_EQ(serial.kindCounts[k], parallel.kindCounts[k]);
    EXPECT_EQ(serial.byOpcode, parallel.byOpcode);
    EXPECT_EQ(serial.byRegion, parallel.byRegion);
    ASSERT_EQ(serial.attributions.size(),
              parallel.attributions.size());
    for (size_t i = 0; i < serial.attributions.size(); i++) {
        const RootCauseAttribution &a = serial.attributions[i];
        const RootCauseAttribution &b = parallel.attributions[i];
        EXPECT_EQ(a.trial, b.trial);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.divergeIndex, b.divergeIndex);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.opcode, b.opcode);
        EXPECT_EQ(a.region, b.region);
        EXPECT_EQ(a.probes, b.probes);
    }
    EXPECT_EQ(rootCauseTable(serial), rootCauseTable(parallel));
}

TEST(RootCauseStats, ExportInvariantsAndSchema)
{
    AvfCampaignConfig cfg = harmfulCampaign();
    RootCauseReport rep = runRootCauseAnalysis(cfg);

    StatRegistry reg;
    reg.setMeta("workload", rep.workload);
    reg.setMeta("scheme", rep.scheme);
    exportAvfStats(reg, rep.screen);
    exportRootCauseStats(reg, rep);
    std::ostringstream out;
    reg.dumpJson(out, /*include_host=*/false);
    const std::string json = out.str();

    for (const char *key :
         {"rootcause.trials", "rootcause.analyzed",
          "rootcause.attributed", "rootcause.state_only",
          "rootcause.kind.commit", "rootcause.kind.truncated",
          "rootcause.kind.extended", "rootcause.kind.state_only",
          "rootcause.pruned_region", "rootcause.unpruned_region",
          "rootcause.probes", "rootcause.rate.attributed",
          "avf.trials"})
        EXPECT_NE(json.find(key), std::string::npos)
            << "missing " << key;
}

TEST(RootCauseReportMerging, AddsAggregates)
{
    RootCauseReport a, b;
    a.scheme = "turnpike";
    a.trials = 10;
    a.analyzed = 3;
    a.kindCounts[static_cast<int>(DivergenceKind::Commit)] = 2;
    a.kindCounts[static_cast<int>(DivergenceKind::StateOnly)] = 1;
    a.byOpcode["add"] = 2;
    a.inPrunedRegion = 1;
    a.inUnprunedRegion = 1;
    a.totalProbes = 30;
    a.screen.scheme = "turnpike";
    a.screen.trials = 10;
    b.scheme = "turnpike";
    b.trials = 8;
    b.analyzed = 2;
    b.kindCounts[static_cast<int>(DivergenceKind::Truncated)] = 2;
    b.byOpcode["add"] = 1;
    b.byOpcode["xor"] = 1;
    b.inPrunedRegion = 2;
    b.totalProbes = 25;
    b.screen.scheme = "turnpike";
    b.screen.trials = 8;

    a.merge(b);
    EXPECT_EQ(a.trials, 18u);
    EXPECT_EQ(a.analyzed, 5u);
    EXPECT_EQ(a.attributed(), 4u);
    EXPECT_EQ(a.byOpcode["add"], 3u);
    EXPECT_EQ(a.byOpcode["xor"], 1u);
    EXPECT_EQ(a.inPrunedRegion, 3u);
    EXPECT_EQ(a.totalProbes, 55u);
    EXPECT_EQ(a.screen.trials, 18u);
}

} // namespace
} // namespace turnpike
