/**
 * @file
 * End-to-end smoke tests: a small workload compiles under every
 * scheme, the compiled code computes the same result as the golden
 * interpreter, and the pipeline agrees.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"

namespace turnpike {
namespace {

TEST(Smoke, BaselineCompilesAndRuns)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "hmmer");
    RunResult r = runWorkload(spec, ResilienceConfig::baseline(),
                              20000);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.pipe.cycles, 0u);
    EXPECT_EQ(r.dataHash, r.goldenHash);
}

TEST(Smoke, TurnstileMatchesGolden)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "hmmer");
    RunResult base = runWorkload(spec, ResilienceConfig::baseline(),
                                 20000);
    RunResult ts = runWorkload(spec, ResilienceConfig::turnstile(10),
                               20000);
    EXPECT_EQ(ts.dataHash, base.dataHash);
    EXPECT_GT(ts.pipe.cycles, base.pipe.cycles);
}

TEST(Smoke, TurnpikeMatchesGoldenAndBeatsTurnstile)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "hmmer");
    RunResult base = runWorkload(spec, ResilienceConfig::baseline(),
                                 20000);
    RunResult ts = runWorkload(spec, ResilienceConfig::turnstile(10),
                               20000);
    RunResult tp = runWorkload(spec, ResilienceConfig::turnpike(10),
                               20000);
    EXPECT_EQ(tp.dataHash, base.dataHash);
    EXPECT_LT(tp.pipe.cycles, ts.pipe.cycles);
}

} // namespace
} // namespace turnpike
