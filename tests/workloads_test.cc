/**
 * @file
 * Tests for the workload suite: completeness (the paper's 36
 * benchmarks), determinism, scaling, and per-kernel semantics.
 */

#include <gtest/gtest.h>

#include <set>

#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "workloads/kernels.hh"
#include "workloads/suite.hh"

namespace turnpike {
namespace {

TEST(Suite, ThirtySixBenchmarksInPaperSuites)
{
    const auto &suite = workloadSuite();
    EXPECT_EQ(suite.size(), 36u);
    int cpu2006 = 0, cpu2017 = 0, splash = 0;
    std::set<std::string> keys;
    for (const WorkloadSpec &s : suite) {
        if (s.suite == "CPU2006")
            cpu2006++;
        else if (s.suite == "CPU2017")
            cpu2017++;
        else if (s.suite == "SPLASH3")
            splash++;
        EXPECT_TRUE(keys.insert(s.suite + "/" + s.name).second)
            << "duplicate " << s.name;
        EXPECT_GT(s.stream + s.copy + s.stencil + s.reduce +
                      s.ptrchase + s.branchy + s.hist + s.spill,
                  0)
            << s.name << " has no kernels";
    }
    EXPECT_EQ(cpu2006, 16);
    EXPECT_EQ(cpu2017, 13);
    EXPECT_EQ(splash, 7);
}

TEST(Suite, FindWorkloadLocatesAll)
{
    for (const WorkloadSpec &s : workloadSuite()) {
        const WorkloadSpec &found = findWorkload(s.suite, s.name);
        EXPECT_EQ(&found, &s);
    }
}

TEST(Suite, BuildsVerifiableModules)
{
    for (const WorkloadSpec &s : workloadSuite()) {
        auto mod = buildWorkload(s, 5000);
        ASSERT_EQ(mod->functions().size(), 1u);
        EXPECT_TRUE(verifyFunction(*mod->functions()[0]).empty())
            << s.name;
        EXPECT_GE(mod->data().size(), 4u);
    }
}

TEST(Suite, DeterministicConstruction)
{
    const WorkloadSpec &s = findWorkload("CPU2006", "gcc");
    auto a = buildWorkload(s, 8000);
    auto b = buildWorkload(s, 8000);
    InterpResult ra = interpret(*a, *a->functions()[0]);
    InterpResult rb = interpret(*b, *b->functions()[0]);
    EXPECT_EQ(ra.memory.dataHash(*a), rb.memory.dataHash(*b));
    EXPECT_EQ(ra.stats.insts, rb.stats.insts);
}

TEST(Suite, DifferentSeedsGiveDifferentData)
{
    WorkloadSpec a = findWorkload("CPU2006", "gcc");
    WorkloadSpec b = a;
    b.seed += 1;
    auto ma = buildWorkload(a, 8000);
    auto mb = buildWorkload(b, 8000);
    InterpResult ra = interpret(*ma, *ma->functions()[0]);
    InterpResult rb = interpret(*mb, *mb->functions()[0]);
    EXPECT_NE(ra.memory.dataHash(*ma), rb.memory.dataHash(*mb));
}

TEST(Suite, ScalesTowardInstructionTarget)
{
    const WorkloadSpec &s = findWorkload("CPU2006", "hmmer");
    auto small = buildWorkload(s, 10000);
    auto big = buildWorkload(s, 80000);
    InterpResult rs = interpret(*small, *small->functions()[0]);
    InterpResult rb = interpret(*big, *big->functions()[0]);
    EXPECT_GT(rb.stats.insts, 3 * rs.stats.insts);
    // Within a factor of ~4 of the request.
    EXPECT_GT(rb.stats.insts, 20000u);
    EXPECT_LT(rb.stats.insts, 320000u);
}

TEST(Suite, AllWorkloadsHaltFunctionally)
{
    for (const WorkloadSpec &s : workloadSuite()) {
        auto mod = buildWorkload(s, 4000);
        InterpResult r = interpret(*mod, *mod->functions()[0],
                                   5000000);
        EXPECT_EQ(r.reason, StopReason::Halted) << s.name;
        EXPECT_GT(r.stats.insts, 1000u) << s.name;
        EXPECT_GT(r.stats.storesApp, 0u) << s.name;
    }
}

TEST(Suite, PermutationIsFullCycle)
{
    // The pointer-chase Next array must be one cycle so the chase
    // visits distinct elements (miss-heavy behaviour).
    const WorkloadSpec &s = findWorkload("CPU2006", "mcf");
    auto mod = buildWorkload(s, 4000);
    const DataObject *next = nullptr;
    for (const DataObject &d : mod->data())
        if (d.name == "Next")
            next = &d;
    ASSERT_NE(next, nullptr);
    // Follow the permutation from 0; it must not revisit 0 early.
    std::set<int64_t> seen;
    int64_t idx = 0;
    for (uint64_t i = 0; i < next->words; i++) {
        ASSERT_GE(idx, 0);
        ASSERT_LT(static_cast<uint64_t>(idx), next->words);
        EXPECT_TRUE(seen.insert(idx).second)
            << "cycle shorter than the array";
        idx = next->init[static_cast<size_t>(idx)];
    }
    EXPECT_EQ(idx, 0); // closes the full cycle
}

TEST(Kernels, StoreDensityInSpecRange)
{
    // Calibration guard: across the suite, stores (without
    // checkpoints) should be roughly 5-20% of instructions, like the
    // paper's benchmarks.
    std::vector<double> densities;
    for (const WorkloadSpec &s : workloadSuite()) {
        auto mod = buildWorkload(s, 6000);
        InterpResult r = interpret(*mod, *mod->functions()[0]);
        densities.push_back(
            static_cast<double>(r.stats.storesTotal()) /
            static_cast<double>(r.stats.insts));
    }
    double avg = mean(densities);
    EXPECT_GT(avg, 0.04);
    EXPECT_LT(avg, 0.22);
}

} // namespace
} // namespace turnpike
