/**
 * @file
 * Tests for the observability layer: the JSON writer, the log2
 * histogram, the structured tracer (text and JSONL sinks, post-mortem
 * ring), interval time-series sampling, the stats registry and its
 * deterministic dumps, and the host phase profile.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/compiler.hh"
#include "core/parallel.hh"
#include "core/runner.hh"
#include "core/stats_export.hh"
#include "sim/pipeline.hh"
#include "sim/trace.hh"
#include "util/json.hh"
#include "util/phase_timer.hh"
#include "util/rng.hh"
#include "util/stat_registry.hh"

namespace turnpike {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("x\ny\tz"), "x\\ny\\tz");
    EXPECT_EQ(jsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, SingleLineObjectGolden)
{
    std::ostringstream out;
    {
        JsonWriter jw(out, 0);
        jw.beginObject();
        jw.field("name", "x");
        jw.field("n", uint64_t(7));
        jw.field("ok", true);
        jw.key("xs");
        jw.beginArray();
        jw.value(uint64_t(1));
        jw.value(uint64_t(2));
        jw.endArray();
        jw.endObject();
    }
    EXPECT_EQ(out.str(), "{\"name\":\"x\",\"n\":7,\"ok\":true,"
                         "\"xs\":[1,2]}");
}

TEST(Json, PrettyNestingIndents)
{
    std::ostringstream out;
    {
        JsonWriter jw(out);
        jw.beginObject();
        jw.key("inner");
        jw.beginObject();
        jw.field("a", uint64_t(1));
        jw.endObject();
        jw.endObject();
    }
    EXPECT_EQ(out.str(),
              "{\n  \"inner\": {\n    \"a\": 1\n  }\n}");
}

TEST(Json, DoubleUsesTwelveSignificantDigits)
{
    std::ostringstream out;
    {
        JsonWriter jw(out, 0);
        jw.beginArray();
        jw.value(0.5);
        jw.value(1.0 / 3.0);
        jw.endArray();
    }
    EXPECT_EQ(out.str(), "[0.5,0.333333333333]");
}

// ----------------------------------------------------------- Histogram

TEST(Histogram, Log2BucketGeometry)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(~uint64_t(0)), 64u);
    // Bucket bounds partition the value space: lo(i+1) == hi(i).
    for (size_t i = 0; i + 1 < Histogram::kNumBuckets; i++)
        EXPECT_EQ(Histogram::bucketLo(i + 1), Histogram::bucketHi(i))
            << i;
}

TEST(Histogram, SampleMergeReset)
{
    Histogram h;
    h.sample(0);
    h.sample(5, 3);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(Histogram::bucketOf(5)), 3u);

    Histogram other;
    other.sample(5);
    h.merge(other);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(Histogram::bucketOf(5)), 4u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

// -------------------------------------------------------------- Tracer

TEST(Tracer, TextSinkGolden)
{
    std::ostringstream out;
    Tracer t(out, kTraceAll, TraceFormat::Text);
    t.event(7, kTraceStores, "store", "quarantined [0x10]", 12,
            static_cast<uint16_t>(Op::Store), 16, 3);
    EXPECT_EQ(out.str(), "7: store: quarantined [0x10]\n");
}

TEST(Tracer, JsonlSinkGolden)
{
    std::ostringstream out;
    Tracer t(out, kTraceAll, TraceFormat::Jsonl);
    t.event(7, kTraceStores, "store", "quarantined [0x10]", 12,
            static_cast<uint16_t>(Op::Store), 16, 3);
    EXPECT_EQ(out.str(),
              "{\"cycle\":7,\"cat\":\"stores\",\"tag\":\"store\","
              "\"pc\":12,\"op\":\"st\",\"a\":16,\"b\":3,"
              "\"msg\":\"quarantined [0x10]\"}\n");
}

TEST(Tracer, JsonlOmitsSentinelPcAndOpcode)
{
    std::ostringstream out;
    Tracer t(out, kTraceAll, TraceFormat::Jsonl);
    t.event(3, kTraceRegions, "verify", "instance 1 verified");
    EXPECT_EQ(out.str(),
              "{\"cycle\":3,\"cat\":\"regions\",\"tag\":\"verify\","
              "\"a\":0,\"b\":0,\"msg\":\"instance 1 verified\"}\n");
}

TEST(Tracer, RingKeepsNewestEvents)
{
    std::ostringstream out;
    Tracer t(out, kTraceAll, TraceFormat::Text, 4);
    for (uint64_t c = 0; c < 6; c++)
        t.event(c, kTraceIssue, "issue", "x");
    ASSERT_EQ(t.ringSize(), 4u);
    EXPECT_EQ(t.ringAt(0).cycle, 2u); // oldest surviving
    EXPECT_EQ(t.ringAt(3).cycle, 5u); // newest
}

TEST(Tracer, PostmortemDumpsRingOldestFirst)
{
    std::ostringstream out;
    Tracer t(out, kTraceAll, TraceFormat::Text, 8);
    t.event(1, kTraceStores, "store", "a", 5,
            static_cast<uint16_t>(Op::Store), 64, 0);
    t.event(2, kTraceRegions, "region", "b");
    out.str(""); // only interested in the post-mortem rendering
    t.dumpPostmortem("panic");
    std::string text = out.str();
    EXPECT_NE(text.find("== postmortem (panic): last 2 events =="),
              std::string::npos);
    size_t first = text.find("1: stores/store pc=5 op=st a=64 b=0");
    size_t second = text.find("2: regions/region a=0 b=0");
    ASSERT_NE(first, std::string::npos) << text;
    ASSERT_NE(second, std::string::npos) << text;
    EXPECT_LT(first, second);
}

TEST(Tracer, CategoryNames)
{
    EXPECT_STREQ(traceCategoryName(kTraceIssue), "issue");
    EXPECT_STREQ(traceCategoryName(kTraceStalls), "stalls");
    EXPECT_STREQ(traceCategoryName(kTraceRecovery), "recovery");
}

// -------------------------------------------- stall events (satellite)

PipelineResult
runTraced(const char *suite, const char *name,
          const ResilienceConfig &cfg, std::ostream *sink,
          uint32_t mask, TraceFormat fmt = TraceFormat::Text,
          uint64_t interval = 0, bool per_region = false,
          const std::vector<FaultEvent> &faults = {})
{
    const WorkloadSpec &spec = findWorkload(suite, name);
    auto mod = buildWorkload(spec, 6000);
    CompiledProgram prog = compileWorkload(*mod, cfg);
    PipelineConfig pcfg = cfg.toPipelineConfig();
    pcfg.statsInterval = interval;
    pcfg.intervalPerRegion = per_region;
    std::unique_ptr<Tracer> tracer;
    if (sink) {
        tracer = std::make_unique<Tracer>(*sink, mask, fmt);
        pcfg.tracer = tracer.get();
    }
    InOrderPipeline pipe(*mod, *prog.mf, pcfg);
    return pipe.run(faults);
}

TEST(Trace, StallEventsAppear)
{
    // Turnstile quarantines every store: with the default tiny SB the
    // gated buffer fills and sb-full stall events must be emitted.
    std::ostringstream out;
    PipelineResult r = runTraced("CPU2006", "milc",
                                 ResilienceConfig::turnstile(10),
                                 &out, kTraceStalls);
    ASSERT_TRUE(r.halted);
    ASSERT_GT(r.stats.sbFullStallCycles, 0u);
    std::string text = out.str();
    EXPECT_NE(text.find(": stall: sb-full:"), std::string::npos);
    EXPECT_NE(text.find("waits for verification"),
              std::string::npos);
    // Filtered categories stay silent under the stalls mask.
    EXPECT_EQ(text.find(": issue: "), std::string::npos);
}

TEST(Trace, StallEventsJsonlParseable)
{
    std::ostringstream out;
    PipelineResult r = runTraced("CPU2006", "milc",
                                 ResilienceConfig::turnstile(10),
                                 &out, kTraceStalls,
                                 TraceFormat::Jsonl);
    ASSERT_TRUE(r.halted);
    std::istringstream in(out.str());
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        EXPECT_NE(line.find("\"cat\":\"stalls\""),
                  std::string::npos) << line;
        lines++;
    }
    EXPECT_GT(lines, 0u);
}

TEST(Trace, StallEventsDoNotChangeResults)
{
    ResilienceConfig cfg = ResilienceConfig::turnstile(10);
    std::ostringstream out;
    PipelineResult traced = runTraced("CPU2006", "milc", cfg, &out,
                                      kTraceStalls);
    PipelineResult plain = runTraced("CPU2006", "milc", cfg, nullptr,
                                     0);
    EXPECT_EQ(traced.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(traced.stats.sbFullStallCycles,
              plain.stats.sbFullStallCycles);
}

TEST(Trace, PostmortemDumpedOnRecovery)
{
    ResilienceConfig cfg = ResilienceConfig::turnpike(20);
    PipelineResult clean = runTraced("CPU2006", "gcc", cfg, nullptr,
                                     0);
    Rng rng(3);
    auto plan = makeFaultPlan(rng, clean.stats.cycles, 20, 2);
    std::ostringstream out;
    PipelineResult r = runTraced("CPU2006", "gcc", cfg, &out,
                                 kTraceRecovery, TraceFormat::Text,
                                 0, false, plan);
    ASSERT_GT(r.stats.recoveries, 0u);
    EXPECT_NE(out.str().find("== postmortem (recovery):"),
              std::string::npos);
}

// ----------------------------------------------------------- intervals

TEST(Intervals, CycleSamplingIsMonotone)
{
    PipelineResult r = runTraced("CPU2006", "mcf",
                                 ResilienceConfig::turnpike(10),
                                 nullptr, 0, TraceFormat::Text, 500);
    ASSERT_TRUE(r.halted);
    const auto &iv = r.stats.intervals;
    ASSERT_GT(iv.size(), 2u);
    for (size_t i = 1; i < iv.size(); i++) {
        EXPECT_GT(iv[i].cycle, iv[i - 1].cycle);
        EXPECT_GE(iv[i].insts, iv[i - 1].insts);
        EXPECT_GE(iv[i].sbFullStallCycles,
                  iv[i - 1].sbFullStallCycles);
        EXPECT_GE(iv[i].boundaries, iv[i - 1].boundaries);
    }
    EXPECT_LE(iv.back().insts, r.stats.insts);
}

TEST(Intervals, SamplingOffByDefault)
{
    PipelineResult r = runTraced("CPU2006", "mcf",
                                 ResilienceConfig::turnpike(10),
                                 nullptr, 0);
    EXPECT_TRUE(r.stats.intervals.empty());
}

TEST(Intervals, SamplingDoesNotChangeTiming)
{
    ResilienceConfig cfg = ResilienceConfig::turnpike(10);
    PipelineResult sampled = runTraced("CPU2006", "mcf", cfg, nullptr,
                                       0, TraceFormat::Text, 250);
    PipelineResult plain = runTraced("CPU2006", "mcf", cfg, nullptr,
                                     0);
    EXPECT_EQ(sampled.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(sampled.stats.insts, plain.stats.insts);
}

TEST(Intervals, PerRegionSampling)
{
    PipelineResult r = runTraced("CPU2006", "mcf",
                                 ResilienceConfig::turnpike(10),
                                 nullptr, 0, TraceFormat::Text, 10,
                                 /*per_region=*/true);
    ASSERT_TRUE(r.halted);
    const auto &iv = r.stats.intervals;
    ASSERT_GT(iv.size(), 0u);
    // Every sample lands on a multiple of 10 committed boundaries.
    for (const IntervalSample &s : iv)
        EXPECT_EQ(s.boundaries % 10, 0u) << s.cycle;
}

// ------------------------------------------------------------ registry

TEST(StatRegistry, TextAndJsonDumpScalars)
{
    StatRegistry reg;
    reg.setMeta("workload", "unit/test");
    reg.addScalar("sim.cycles", uint64_t(100), "cycles", "cycle");
    reg.addFormula("sim.ipc", "insts / cycles", [] { return 0.5; },
                   "ipc", "inst/cycle");
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.has("sim.cycles"));
    EXPECT_FALSE(reg.has("sim.insts"));

    std::ostringstream text;
    reg.dumpText(text);
    EXPECT_NE(text.str().find("sim.cycles"), std::string::npos);
    EXPECT_NE(text.str().find("# cycles (cycle)"),
              std::string::npos);
    EXPECT_NE(text.str().find("0.5"), std::string::npos);

    std::ostringstream json;
    reg.dumpJson(json);
    EXPECT_NE(json.str().find("\"schema\": \"turnpike-stats-v1\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"name\": \"sim.ipc\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"expr\": \"insts / cycles\""),
              std::string::npos);
}

TEST(StatRegistry, TimeSeriesRowArityIsChecked)
{
    StatRegistry reg;
    TimeSeries ts;
    ts.name = "x";
    ts.columns = {"a", "b"};
    ts.rows = {{1, 2}, {3, 4}};
    reg.addTimeSeries(std::move(ts));
    std::ostringstream json;
    reg.dumpJson(json);
    EXPECT_NE(json.str().find("\"rows\""), std::string::npos);
}

TEST(StatRegistry, ExportCoversAllSubsystems)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "mcf");
    RunResult r = runWorkload(spec, ResilienceConfig::turnpike(10),
                              8000);
    StatRegistry reg;
    exportRunStats(reg, r);
    for (const char *name :
         {"sim.cycles", "sim.insts", "sim.ipc",
          "sim.stall.sb_full_cycles", "sb.stores.app",
          "sb.stores.quarantined", "sb.occupancy",
          "colors.fast_released", "clq.overflows", "clq.occupancy",
          "rbb.regions_executed", "rbb.occupancy", "region.cycles",
          "region.cycles_hist", "cache.l1d.hits",
          "cache.l1d.miss_rate", "cache.l2.misses",
          "recovery.recoveries", "compile.regions",
          "compile.ckpt.inserted", "code.bytes"})
        EXPECT_TRUE(reg.has(name)) << name;
}

TEST(StatRegistry, DumpsAreDeterministicAcrossRuns)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "hmmer");
    ResilienceConfig cfg = ResilienceConfig::turnpike(10);
    auto dump = [&] {
        RunResult r = runWorkload(spec, cfg, 8000);
        StatRegistry reg;
        exportRunStats(reg, r);
        std::ostringstream out;
        reg.dumpJson(out, /*include_host=*/false);
        return out.str();
    };
    std::string first = dump();
    std::string second = dump();
    EXPECT_GT(first.size(), 1000u);
    EXPECT_EQ(first, second);
}

TEST(StatRegistry, CampaignDumpsMatchSerialRuns)
{
    // The registry dump of a campaign cell is byte-identical to the
    // same run executed serially, including under parallel workers.
    setenv("TURNPIKE_JOBS", "3", 1);
    std::vector<RunRequest> reqs;
    for (const char *name : {"mcf", "milc", "gcc"}) {
        RunRequest rq;
        rq.spec = findWorkload("CPU2006", name);
        rq.cfg = ResilienceConfig::turnpike(10);
        rq.targetDynInsts = 6000;
        reqs.push_back(std::move(rq));
    }
    std::vector<RunResult> par = runCampaign(reqs);
    setenv("TURNPIKE_JOBS", "1", 1);
    std::vector<RunResult> ser = runCampaign(reqs);
    unsetenv("TURNPIKE_JOBS");
    ASSERT_EQ(par.size(), ser.size());
    for (size_t i = 0; i < par.size(); i++) {
        StatRegistry a, b;
        exportRunStats(a, par[i]);
        exportRunStats(b, ser[i]);
        std::ostringstream oa, ob;
        a.dumpJson(oa, false);
        b.dumpJson(ob, false);
        EXPECT_EQ(oa.str(), ob.str()) << reqs[i].spec.name;
    }
}

// -------------------------------------------------------- host profile

TEST(PhaseProfile, ScopedTimerAccumulates)
{
    PhaseProfile p;
    {
        ScopedPhaseTimer t(&p, "x");
    }
    {
        ScopedPhaseTimer t(&p, "x");
    }
    ASSERT_FALSE(p.empty());
    const PhaseEntry &e = p.entries().at("x");
    EXPECT_EQ(e.calls, 2u);
    EXPECT_GE(e.seconds, 0.0);
    // Null profile: the timer is a no-op.
    ScopedPhaseTimer noop(nullptr, "y");
}

TEST(PhaseProfile, RunnerRecordsCompileAndSimulatePhases)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "mcf");
    RunResult r = runWorkload(spec, ResilienceConfig::turnpike(10),
                              6000);
    const auto &e = r.profile.entries();
    for (const char *phase :
         {"host.build_workload", "host.compile", "host.interpret",
          "host.simulate", "compile.register_allocation",
          "compile.checkpointing", "compile.lowering"})
        EXPECT_TRUE(e.count(phase)) << phase;
    // Turnpike enables pruning, so that pass must be timed too.
    EXPECT_TRUE(e.count("compile.checkpoint_pruning"));
}

} // namespace
} // namespace turnpike
