/**
 * @file
 * Unit tests for the mini-IR: instructions, blocks, builder,
 * verifier, CFG analyses (RPO, dominators, loops, liveness) and the
 * reference interpreter.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/cfg.hh"
#include "ir/dominators.hh"
#include "ir/interpreter.hh"
#include "ir/liveness.hh"
#include "ir/loop_info.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"

namespace turnpike {
namespace {

/** Build: entry -> loop(sum += A[i], 10 iterations) -> exit. */
std::unique_ptr<Module>
makeSumModule()
{
    auto mod = std::make_unique<Module>("sum");
    std::vector<int64_t> init;
    for (int i = 1; i <= 10; i++)
        init.push_back(i);
    DataObject &arr = mod->addData("A", 10, std::move(init));
    DataObject &out = mod->addData("Out", 1);

    Function &fn = mod->addFunction("main");
    IRBuilder b(fn);
    BlockId entry = b.newBlock("entry");
    BlockId body = b.newBlock("body");
    BlockId exit = b.newBlock("exit");

    b.setBlock(entry);
    Reg i = b.reg();
    b.liTo(i, 0);
    Reg sum = b.reg();
    b.liTo(sum, 0);
    Reg base = b.li(static_cast<int64_t>(arr.base));
    b.jmp(body);

    b.setBlock(body);
    Reg off = b.binImm(Op::Shl, i, 3);
    Reg addr = b.add(base, off);
    Reg v = b.load(addr);
    b.binTo(Op::Add, sum, sum, v);
    b.binImmTo(Op::Add, i, i, 1);
    Reg c = b.binImm(Op::CmpLt, i, 10);
    b.br(c, body, exit);

    b.setBlock(exit);
    Reg ob = b.li(static_cast<int64_t>(out.base));
    b.store(sum, ob);
    b.halt();
    return mod;
}

TEST(Instruction, ReadsWritesAndPrinting)
{
    Instruction add = makeBin(Op::Add, 3, 1, 2);
    EXPECT_TRUE(add.reads(1));
    EXPECT_TRUE(add.reads(2));
    EXPECT_FALSE(add.reads(3));
    EXPECT_TRUE(add.writes(3));
    EXPECT_EQ(add.numSrcs(), 2);
    EXPECT_EQ(add.toString(), "v3 = add v1, v2");

    Instruction st = makeStore(1, 2, 8);
    EXPECT_FALSE(writesDst(st.op));
    EXPECT_EQ(st.toString(), "st v1, [v2 + 8]");

    Instruction ck = makeCkpt(5);
    EXPECT_EQ(ck.skind, StoreKind::Ckpt);
    EXPECT_EQ(ck.toString(), "ckpt v5");

    EXPECT_EQ(makeBinImm(Op::Shl, 1, 0, 3).toString(),
              "v1 = shl v0, 3");
    EXPECT_EQ(makeBoundary(7).toString(), "rgn #7");
}

TEST(Opcode, Traits)
{
    EXPECT_TRUE(isBinary(Op::Add));
    EXPECT_TRUE(isBinary(Op::CmpLe));
    EXPECT_FALSE(isBinary(Op::Load));
    EXPECT_TRUE(isTerminator(Op::Halt));
    EXPECT_FALSE(isTerminator(Op::Store));
    EXPECT_TRUE(writesDst(Op::Li));
    EXPECT_FALSE(writesDst(Op::Ckpt));
    EXPECT_TRUE(isMemOp(Op::Store));
    EXPECT_FALSE(isMemOp(Op::Ckpt));
    EXPECT_GT(exLatency(Op::Div), exLatency(Op::Mul));
    EXPECT_GT(exLatency(Op::Mul), exLatency(Op::Add));
}

TEST(Opcode, BinaryRangeContiguous)
{
    // isBinary() is a range check over Add..CmpLe; this pins that
    // exactly the two-operand arithmetic/compare ops fall inside the
    // range, so reordering the Op enum cannot silently change it.
    const Op binary[] = {Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Shl,
                         Op::Shr, Op::And, Op::Or, Op::Xor, Op::CmpEq,
                         Op::CmpNe, Op::CmpLt, Op::CmpLe};
    uint32_t n = 0;
    for (uint32_t i = 0; i < static_cast<uint32_t>(Op::NumOps); i++) {
        Op op = static_cast<Op>(i);
        bool expect = false;
        for (Op b : binary)
            expect |= op == b;
        EXPECT_EQ(isBinary(op), expect) << opName(op);
        n += isBinary(op);
    }
    EXPECT_EQ(n, std::size(binary));
    EXPECT_EQ(static_cast<uint32_t>(Op::CmpLe) -
                  static_cast<uint32_t>(Op::Add) + 1,
              std::size(binary));
}

TEST(BasicBlock, InsertEraseTerminator)
{
    Function fn("f");
    BlockId b = fn.addBlock("b");
    BasicBlock &blk = fn.block(b);
    EXPECT_FALSE(blk.hasTerminator());
    blk.append(makeLi(fn.newReg(), 1));
    blk.append(makeHalt());
    EXPECT_TRUE(blk.hasTerminator());
    EXPECT_EQ(blk.terminator().op, Op::Halt);
    blk.insertAt(0, makeLi(fn.newReg(), 2));
    EXPECT_EQ(blk.size(), 3u);
    EXPECT_EQ(blk.insts()[0].imm, 2);
    blk.eraseAt(0);
    EXPECT_EQ(blk.insts()[0].imm, 1);
}

TEST(Layout, CheckpointSlots)
{
    EXPECT_EQ(layout::ckptSlot(0, 0), layout::kCkptBase);
    EXPECT_EQ(layout::ckptSlot(0, 1), layout::kCkptBase + 8);
    // Slots of different registers never collide.
    EXPECT_GE(layout::ckptSlot(1, 0),
              layout::ckptSlot(0, layout::kQuarantineColor) + 8);
    EXPECT_EQ(layout::kSlotsPerReg, layout::kNumColors + 1);
}

TEST(Module, DataObjectsStableAndAligned)
{
    Module m("m");
    DataObject &a = m.addData("a", 3, {1, 2, 3});
    DataObject &b = m.addData("b", 100);
    EXPECT_EQ(a.base % 64, 0u);
    EXPECT_EQ(b.base % 64, 0u);
    EXPECT_GE(b.base, a.base + 3 * 8);
    // References must stay valid after more allocations.
    for (int i = 0; i < 50; i++)
        m.addData("x" + std::to_string(i), 8);
    EXPECT_EQ(a.init.size(), 3u);
    EXPECT_EQ(a.name, "a");
}

TEST(Verifier, AcceptsWellFormed)
{
    auto mod = makeSumModule();
    EXPECT_TRUE(verifyFunction(*mod->functions()[0]).empty());
}

TEST(Verifier, CatchesMissingTerminator)
{
    Function fn("f");
    BlockId b = fn.addBlock("b");
    fn.block(b).append(makeLi(fn.newReg(), 1));
    auto problems = verifyFunction(fn);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesBadSuccessorArity)
{
    Function fn("f");
    BlockId b = fn.addBlock("b");
    fn.block(b).append(makeJmp());
    // Jmp with zero successors.
    EXPECT_FALSE(verifyFunction(fn).empty());
}

TEST(Verifier, CatchesOutOfRangeRegister)
{
    Function fn("f");
    BlockId b = fn.addBlock("b");
    Reg r = fn.newReg();
    fn.block(b).append(makeBin(Op::Add, r, 99, r));
    fn.block(b).append(makeHalt());
    EXPECT_FALSE(verifyFunction(fn).empty());
}

TEST(Cfg, RpoAndPreds)
{
    auto mod = makeSumModule();
    const Function &fn = *mod->functions()[0];
    Cfg cfg(fn);
    ASSERT_EQ(cfg.rpo().size(), 3u);
    EXPECT_EQ(cfg.rpo()[0], fn.entry());
    // body has two preds: entry and itself.
    EXPECT_EQ(cfg.preds(1).size(), 2u);
    EXPECT_TRUE(cfg.reachable(2));
}

TEST(Cfg, UnreachableBlockExcluded)
{
    Function fn("f");
    BlockId a = fn.addBlock("a");
    BlockId dead = fn.addBlock("dead");
    fn.block(a).append(makeHalt());
    fn.block(dead).append(makeHalt());
    Cfg cfg(fn);
    EXPECT_TRUE(cfg.reachable(a));
    EXPECT_FALSE(cfg.reachable(dead));
    EXPECT_EQ(cfg.rpo().size(), 1u);
}

TEST(Dominators, LoopDominance)
{
    auto mod = makeSumModule();
    const Function &fn = *mod->functions()[0];
    Cfg cfg(fn);
    DominatorTree dt(cfg);
    EXPECT_EQ(dt.idom(0), 0u);
    EXPECT_EQ(dt.idom(1), 0u);
    EXPECT_EQ(dt.idom(2), 1u);
    EXPECT_TRUE(dt.dominates(0, 2));
    EXPECT_TRUE(dt.dominates(1, 1));
    EXPECT_FALSE(dt.dominates(2, 1));
}

TEST(Dominators, Diamond)
{
    Function fn("f");
    BlockId a = fn.addBlock("a");
    BlockId l = fn.addBlock("l");
    BlockId r = fn.addBlock("r");
    BlockId j = fn.addBlock("j");
    Reg c = fn.newReg();
    fn.block(a).append(makeLi(c, 1));
    fn.block(a).append(makeBr(c));
    fn.block(a).succs() = {l, r};
    fn.block(l).append(makeJmp());
    fn.block(l).succs() = {j};
    fn.block(r).append(makeJmp());
    fn.block(r).succs() = {j};
    fn.block(j).append(makeHalt());
    Cfg cfg(fn);
    DominatorTree dt(cfg);
    EXPECT_EQ(dt.idom(j), a);
    EXPECT_FALSE(dt.dominates(l, j));
    EXPECT_FALSE(dt.dominates(r, j));
}

TEST(LoopInfo, FindsNaturalLoop)
{
    auto mod = makeSumModule();
    const Function &fn = *mod->functions()[0];
    Cfg cfg(fn);
    DominatorTree dt(cfg);
    LoopInfo li(cfg, dt);
    ASSERT_EQ(li.loops().size(), 1u);
    const Loop &loop = li.loops()[0];
    EXPECT_EQ(loop.header, 1u);
    EXPECT_EQ(loop.preheader, 0u);
    EXPECT_EQ(loop.exit, 2u);
    EXPECT_EQ(loop.depth, 1);
    EXPECT_EQ(li.depth(1), 1);
    EXPECT_EQ(li.depth(0), 0);
    EXPECT_EQ(li.innermostLoop(1), 0);
    EXPECT_EQ(li.innermostLoop(2), -1);
}

TEST(LoopInfo, NestedLoops)
{
    // entry -> outer(header) -> inner(header+latch) -> outer latch
    Function fn("f");
    BlockId e = fn.addBlock("e");
    BlockId oh = fn.addBlock("oh");
    BlockId ih = fn.addBlock("ih");
    BlockId ol = fn.addBlock("ol");
    BlockId x = fn.addBlock("x");
    Reg c = fn.newReg();
    fn.block(e).append(makeLi(c, 1));
    fn.block(e).append(makeJmp());
    fn.block(e).succs() = {oh};
    fn.block(oh).append(makeJmp());
    fn.block(oh).succs() = {ih};
    fn.block(ih).append(makeBr(c));
    fn.block(ih).succs() = {ih, ol};
    fn.block(ol).append(makeBr(c));
    fn.block(ol).succs() = {oh, x};
    fn.block(x).append(makeHalt());

    Cfg cfg(fn);
    DominatorTree dt(cfg);
    LoopInfo li(cfg, dt);
    ASSERT_EQ(li.loops().size(), 2u);
    EXPECT_EQ(li.depth(ih), 2);
    EXPECT_EQ(li.depth(oh), 1);
    int inner = li.innermostLoop(ih);
    EXPECT_EQ(li.loops()[static_cast<size_t>(inner)].header, ih);
}

TEST(RegSet, BasicOps)
{
    RegSet s(100);
    EXPECT_FALSE(s.contains(5));
    s.insert(5);
    s.insert(70);
    EXPECT_TRUE(s.contains(5));
    EXPECT_TRUE(s.contains(70));
    EXPECT_EQ(s.count(), 2u);
    s.erase(5);
    EXPECT_FALSE(s.contains(5));
    auto v = s.toVector();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 70u);

    RegSet t(100);
    t.insert(3);
    EXPECT_TRUE(s.unionWith(t));
    EXPECT_FALSE(s.unionWith(t));
    s.subtract(t);
    EXPECT_FALSE(s.contains(3));
}

TEST(Liveness, LoopCarriedValues)
{
    auto mod = makeSumModule();
    const Function &fn = *mod->functions()[0];
    Cfg cfg(fn);
    Liveness live(cfg);
    // i(v0), sum(v1) and base(v2) are live around the loop.
    EXPECT_TRUE(live.liveIn(1).contains(0));
    EXPECT_TRUE(live.liveIn(1).contains(1));
    EXPECT_TRUE(live.liveIn(1).contains(2));
    // sum is live out of the loop (stored in exit); i is not.
    EXPECT_TRUE(live.liveIn(2).contains(1));
    EXPECT_FALSE(live.liveIn(2).contains(0));
    // Nothing is live into the entry.
    EXPECT_EQ(live.liveIn(0).count(), 0u);
}

TEST(Liveness, LiveBeforeWalksBackward)
{
    auto mod = makeSumModule();
    const Function &fn = *mod->functions()[0];
    Cfg cfg(fn);
    Liveness live(cfg);
    const BasicBlock &body = fn.block(1);
    // Before the last instruction (br), the condition reg is live.
    Reg cond = body.terminator().src0;
    RegSet before_term = live.liveBefore(1, body.size() - 1);
    EXPECT_TRUE(before_term.contains(cond));
    // At index 0 the condition temp of this iteration is not yet
    // defined and thus not live.
    RegSet at_top = live.liveBefore(1, 0);
    EXPECT_FALSE(at_top.contains(cond));
}

TEST(Interpreter, ComputesSum)
{
    auto mod = makeSumModule();
    const Function &fn = *mod->functions()[0];
    InterpResult r = interpret(*mod, fn);
    EXPECT_EQ(r.reason, StopReason::Halted);
    uint64_t out_base = mod->data()[1].base;
    EXPECT_EQ(r.memory.read(out_base), 55);
    EXPECT_EQ(r.stats.loads, 10u);
    EXPECT_EQ(r.stats.storesApp, 1u);
    EXPECT_EQ(r.stats.branches, 10u);
}

TEST(Interpreter, StepLimitStops)
{
    Function fn("spin");
    BlockId b = fn.addBlock("b");
    fn.block(b).append(makeJmp());
    fn.block(b).succs() = {b};
    Module m("m");
    InterpResult r = interpret(m, fn, 100);
    EXPECT_EQ(r.reason, StopReason::StepLimit);
}

TEST(Interpreter, AluSemantics)
{
    Module m("m");
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    DataObject &out = m.addData("out", 12);
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg x = b.li(-7);
    Reg y = b.li(3);
    int64_t slot = 0;
    auto emit = [&](Op op) {
        Reg d = b.bin(op, x, y);
        b.store(d, ob, 8 * slot++);
    };
    emit(Op::Add);
    emit(Op::Sub);
    emit(Op::Mul);
    emit(Op::Div);
    emit(Op::Shr);
    emit(Op::And);
    emit(Op::Or);
    emit(Op::Xor);
    emit(Op::CmpEq);
    emit(Op::CmpNe);
    emit(Op::CmpLt);
    emit(Op::CmpLe);
    b.halt();

    InterpResult r = interpret(m, fn);
    int64_t expect[] = {-4, -10, -21, -2, -1, 1, -5, -6, 0, 1, 1, 1};
    for (int i = 0; i < 12; i++)
        EXPECT_EQ(r.memory.read(out.base + 8 * i), expect[i])
            << "slot " << i;
}

TEST(Interpreter, DivByZeroYieldsZero)
{
    Module m("m");
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    DataObject &out = m.addData("out", 1);
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg x = b.li(5);
    Reg z = b.li(0);
    Reg d = b.bin(Op::Div, x, z);
    b.store(d, ob);
    b.halt();
    InterpResult r = interpret(m, fn);
    EXPECT_EQ(r.memory.read(out.base), 0);
}

TEST(Interpreter, RegionSizeAccounting)
{
    Module m("m");
    Function &fn = m.addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    fn.block(e).append(makeBoundary(0));
    Reg x = b.li(1);
    Reg y = b.binImm(Op::Add, x, 1);
    fn.block(e).append(makeBoundary(1));
    Reg z = b.binImm(Op::Add, y, 1);
    (void)z;
    b.halt();
    InterpResult r = interpret(m, fn);
    EXPECT_EQ(r.stats.boundaries, 2u);
    // First region: li + add = 2 instructions.
    EXPECT_DOUBLE_EQ(r.stats.regionSize.max(), 2.0);
}

TEST(MemoryImage, HashChangesWithContent)
{
    Module m("m");
    m.addData("a", 2, {1, 2});
    MemoryImage img1;
    img1.loadModule(m);
    MemoryImage img2;
    img2.loadModule(m);
    EXPECT_EQ(img1.dataHash(m), img2.dataHash(m));
    img2.write(m.data()[0].base, 99);
    EXPECT_NE(img1.dataHash(m), img2.dataHash(m));
}

TEST(MemoryImage, UnwrittenReadsZero)
{
    MemoryImage img;
    EXPECT_EQ(img.read(0x1000), 0);
    img.write(0x1000, 5);
    EXPECT_EQ(img.read(0x1000), 5);
    auto range = img.dumpRange(0x1000, 2);
    EXPECT_EQ(range[0], 5);
    EXPECT_EQ(range[1], 0);
}

TEST(Printer, DumpsFunctionAndModule)
{
    auto mod = makeSumModule();
    std::string f = printFunction(*mod->functions()[0]);
    EXPECT_NE(f.find("func main"), std::string::npos);
    EXPECT_NE(f.find("ld ["), std::string::npos);
    std::string m = printModule(*mod);
    EXPECT_NE(m.find("data A"), std::string::npos);
}

} // namespace
} // namespace turnpike
