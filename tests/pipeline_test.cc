/**
 * @file
 * Behavioral tests for the cycle-level pipeline: functional
 * equivalence with the machine interpreter, hazard and gating
 * behaviour, WCDL monotonicity, fast-release effects, and the
 * paper's first-order phenomena (§3).
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "core/runner.hh"
#include "ir/builder.hh"
#include "machine/minterp.hh"
#include "passes/eager_checkpointing.hh"
#include "passes/lowering.hh"
#include "passes/region_formation.hh"
#include "passes/register_allocation.hh"
#include "sim/pipeline.hh"

namespace turnpike {
namespace {

constexpr uint64_t kInsts = 15000;

PipelineResult
runScheme(const WorkloadSpec &spec, const ResilienceConfig &cfg,
          uint64_t target = kInsts)
{
    auto mod = buildWorkload(spec, target);
    CompiledProgram prog = compileWorkload(*mod, cfg);
    InOrderPipeline pipe(*mod, *prog.mf, cfg.toPipelineConfig());
    return pipe.run();
}

TEST(Pipeline, MatchesFunctionalInterpreter)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "gobmk");
    auto mod = buildWorkload(spec, kInsts);
    CompiledProgram prog =
        compileWorkload(*mod, ResilienceConfig::turnpike(10));
    InterpResult golden = interpretMachine(*mod, *prog.mf);
    InOrderPipeline pipe(*mod, *prog.mf,
                         ResilienceConfig::turnpike(10)
                             .toPipelineConfig());
    PipelineResult pr = pipe.run();
    ASSERT_TRUE(pr.halted);
    EXPECT_EQ(pr.memory.dataHash(*mod),
              golden.memory.dataHash(*mod));
    EXPECT_EQ(pr.stats.insts, golden.stats.insts);
    EXPECT_EQ(pr.stats.loads, golden.stats.loads);
    EXPECT_EQ(pr.stats.storesTotal(), golden.stats.storesTotal());
}

TEST(Pipeline, InstCountIncludesHaltExcludesBoundaries)
{
    // Pins the PipelineStats::insts contract: every committed
    // instruction counts, the final Halt included, while Boundary
    // markers never do — in exact agreement with InterpStats::insts.
    auto mod = std::make_unique<Module>("m");
    DataObject &out = mod->addData("out", 2, {});
    Function &fn = mod->addFunction("f");
    IRBuilder b(fn);
    BlockId e = b.newBlock("e");
    b.setBlock(e);
    Reg ob = b.li(static_cast<int64_t>(out.base));
    Reg x = b.li(7);
    Reg y = b.binImm(Op::Add, x, 1);
    b.store(y, ob);
    b.halt();

    RaOptions ra;
    runRegisterAllocation(fn, ra);
    RegionFormationOptions rf;
    runRegionFormation(fn, rf);
    runEagerCheckpointing(fn);
    MachineFunction mf = lowerFunction(fn, PruneResult());

    // Straight-line code: every instruction commits exactly once.
    ASSERT_EQ(mf.code().back().op, Op::Halt);
    uint64_t expected = 0;
    for (const MInstr &mi : mf.code())
        if (mi.op != Op::Boundary)
            expected++;
    ASSERT_GE(expected, 5u); // li, li, add, store, halt at least

    InOrderPipeline pipe(*mod, mf,
                         ResilienceConfig::turnstile(10)
                             .toPipelineConfig());
    PipelineResult pr = pipe.run();
    ASSERT_TRUE(pr.halted);
    EXPECT_EQ(pr.stats.insts, expected);

    InterpResult ir = interpretMachine(*mod, mf);
    ASSERT_EQ(ir.reason, StopReason::Halted);
    EXPECT_EQ(ir.stats.insts, expected);
}

TEST(Pipeline, IpcWithinPlausibleRange)
{
    const WorkloadSpec &spec = findWorkload("CPU2017", "leela");
    PipelineResult r = runScheme(spec, ResilienceConfig::baseline());
    double ipc = static_cast<double>(r.stats.insts) /
        static_cast<double>(r.stats.cycles);
    EXPECT_GT(ipc, 0.2);
    EXPECT_LT(ipc, 2.0); // dual issue bound
}

TEST(Pipeline, BaselineHasNoGatingStalls)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "milc");
    PipelineResult r = runScheme(spec, ResilienceConfig::baseline());
    EXPECT_EQ(r.stats.sbFullStallCycles, 0u);
    EXPECT_EQ(r.stats.boundaries, 0u);
    EXPECT_EQ(r.stats.storesQuarantined, 0u);
}

TEST(Pipeline, TurnstileGatingCausesSbStalls)
{
    // §3.2: verification keeps the SB pressure long.
    const WorkloadSpec &spec = findWorkload("CPU2006", "libquan");
    PipelineResult r = runScheme(spec, ResilienceConfig::turnstile(30));
    EXPECT_GT(r.stats.sbFullStallCycles, 0u);
    EXPECT_GT(r.stats.storesQuarantined, 0u);
    EXPECT_GT(r.stats.boundaries, 0u);
}

TEST(Pipeline, TurnstileOverheadMonotonicInWcdl)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "hmmer");
    uint64_t prev = 0;
    for (uint32_t wcdl : {10u, 20u, 30u, 40u, 50u}) {
        PipelineResult r =
            runScheme(spec, ResilienceConfig::turnstile(wcdl));
        EXPECT_GE(r.stats.cycles, prev)
            << "Turnstile must not speed up with longer WCDL";
        prev = r.stats.cycles;
    }
}

TEST(Pipeline, FastReleaseReducesQuarantine)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "bwaves");
    PipelineResult ts = runScheme(spec, ResilienceConfig::turnstile(10));
    PipelineResult fr =
        runScheme(spec, ResilienceConfig::fastRelease(10));
    EXPECT_LT(fr.stats.storesQuarantined, ts.stats.storesQuarantined);
    EXPECT_GT(fr.stats.storesWarFree + fr.stats.ckptColored, 0u);
    EXPECT_LE(fr.stats.cycles, ts.stats.cycles);
}

TEST(Pipeline, HistogramStoresAreNotWarFree)
{
    // radix is histogram-heavy: its H[x] += 1 stores have real WAR
    // dependences the CLQ must catch.
    const WorkloadSpec &spec = findWorkload("SPLASH3", "radix");
    PipelineResult r = runScheme(spec, ResilienceConfig::turnpike(10));
    EXPECT_GT(r.stats.storesQuarantined, 0u)
        << "WAR stores must stay quarantined";
}

TEST(Pipeline, ColoringReleasesCheckpoints)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "soplex");
    ResilienceConfig no_color = ResilienceConfig::warFreeOnly(10);
    ResilienceConfig with_color = ResilienceConfig::fastRelease(10);
    PipelineResult a = runScheme(spec, no_color);
    PipelineResult b = runScheme(spec, with_color);
    EXPECT_EQ(a.stats.ckptColored, 0u);
    EXPECT_GT(b.stats.ckptColored, 0u);
    EXPECT_LE(b.stats.cycles, a.stats.cycles);
}

TEST(Pipeline, IdealClqAtLeastAsPreciseAsCompact)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "milc");
    ResilienceConfig compact = ResilienceConfig::fastRelease(10);
    ResilienceConfig ideal = compact;
    ideal.clqDesign = ClqDesign::Ideal;
    PipelineResult c = runScheme(spec, compact);
    PipelineResult i = runScheme(spec, ideal);
    EXPECT_GE(i.stats.storesWarFree, c.stats.storesWarFree);
}

TEST(Pipeline, LargerSbHelpsTurnstile)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "libquan");
    ResilienceConfig small = ResilienceConfig::turnstile(30);
    ResilienceConfig big = small;
    big.sbSize = 40;
    PipelineResult s = runScheme(spec, small);
    PipelineResult b = runScheme(spec, big);
    EXPECT_LT(b.stats.cycles, s.stats.cycles);
    EXPECT_LT(b.stats.sbFullStallCycles, s.stats.sbFullStallCycles);
}

TEST(Pipeline, SbOccupancyBounded)
{
    const WorkloadSpec &spec = findWorkload("CPU2017", "xz");
    PipelineResult r = runScheme(spec, ResilienceConfig::turnstile(20));
    EXPECT_LE(r.stats.sbOccupancy.max(), 4.0);
}

TEST(Pipeline, ClqOccupancyStaysSmall)
{
    // Fig. 24: on average about one populated CLQ entry.
    const WorkloadSpec &spec = findWorkload("CPU2006", "milc");
    ResilienceConfig cfg = ResilienceConfig::turnpike(10);
    cfg.clqEntries = 4;
    PipelineResult r = runScheme(spec, cfg);
    EXPECT_GT(r.stats.clqOccupancy.count(), 0u);
    EXPECT_LE(r.stats.clqOccupancy.mean(), 3.0);
    EXPECT_LE(r.stats.clqOccupancy.max(), 4.0);
}

TEST(Pipeline, RegionCyclesTracked)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "gcc");
    PipelineResult r = runScheme(spec, ResilienceConfig::turnstile(10));
    EXPECT_GT(r.stats.regionCycles.count(), 10u);
    EXPECT_GT(r.stats.regionCycles.mean(), 0.0);
}

TEST(Pipeline, RecoveryCountersStayZeroWithoutFaults)
{
    const WorkloadSpec &spec = findWorkload("CPU2006", "astar");
    PipelineResult r = runScheme(spec, ResilienceConfig::turnpike(10));
    EXPECT_EQ(r.stats.recoveries, 0u);
    EXPECT_EQ(r.stats.detectedFaults, 0u);
    EXPECT_EQ(r.stats.recoveryCycles, 0u);
}

TEST(Pipeline, WcdlTenBarelySlowsTurnpike)
{
    // The paper's headline: Turnpike at WCDL=10 is close to the
    // baseline. Allow a generous bound; the suite geomean is
    // tracked by the benches.
    const WorkloadSpec &spec = findWorkload("CPU2006", "omnetpp");
    PipelineResult base = runScheme(spec, ResilienceConfig::baseline());
    PipelineResult tp = runScheme(spec, ResilienceConfig::turnpike(10));
    double ratio = static_cast<double>(tp.stats.cycles) /
        static_cast<double>(base.stats.cycles);
    EXPECT_LT(ratio, 1.25);
}

} // namespace
} // namespace turnpike
