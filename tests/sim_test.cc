/**
 * @file
 * Unit tests for the simulator structures: caches, gated store
 * buffer, RBB, CLQ (both designs and the Fig. 13 automaton), color
 * maps (AC/UC/VC lifecycle including the Fig. 16/17 scenarios),
 * sensor model (Fig. 18 trends), recovery engine and fault plans.
 */

#include <gtest/gtest.h>

#include "core/hwcost.hh"
#include "sim/cache.hh"
#include "sim/clq.hh"
#include "sim/color_maps.hh"
#include "sim/fault_injector.hh"
#include "sim/rbb.hh"
#include "sim/recovery.hh"
#include "sim/sensors.hh"
#include "sim/store_buffer.hh"

namespace turnpike {
namespace {

// ------------------------------------------------------------- cache

TEST(Cache, HitAfterMiss)
{
    Cache c({1024, 2, 64, 2});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1008)); // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B lines, 2 sets (256B total).
    Cache c({256, 2, 64, 2});
    // Three lines mapping to set 0: 0, 128, 256.
    c.access(0);
    c.access(128);
    c.access(0);      // refresh 0's recency
    c.access(256);    // evicts 128
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(128));
    EXPECT_TRUE(c.probe(256));
}

TEST(Cache, FlushForgets)
{
    Cache c({1024, 2, 64, 2});
    c.access(0x40);
    c.flush();
    EXPECT_FALSE(c.probe(0x40));
}

TEST(CacheHierarchy, LatenciesEscalate)
{
    CacheHierarchy h({128, 2, 64, 2}, {256, 2, 64, 20}, 100);
    int first = h.loadLatency(0x2000);
    EXPECT_EQ(first, 100); // cold: misses both levels
    int second = h.loadLatency(0x2000);
    EXPECT_EQ(second, 2); // L1 hit
}

// ------------------------------------------------------- store buffer

TEST(StoreBuffer, FifoGating)
{
    StoreBuffer sb(2);
    EXPECT_TRUE(sb.empty());
    sb.push({0x100, 1, 0, StoreKind::App, false});
    sb.push({0x108, 2, 0, StoreKind::App, false});
    EXPECT_TRUE(sb.full());
    EXPECT_FALSE(sb.headReleasable());
    sb.release(0);
    ASSERT_TRUE(sb.headReleasable());
    SbEntry e = sb.pop();
    EXPECT_EQ(e.addr, 0x100u);
    EXPECT_EQ(sb.size(), 1u);
}

TEST(StoreBuffer, ReleaseIsPerRegion)
{
    StoreBuffer sb(4);
    sb.push({0x100, 1, 7, StoreKind::App, false});
    sb.push({0x108, 2, 8, StoreKind::App, false});
    sb.release(8);
    // Head belongs to region 7, still gated.
    EXPECT_FALSE(sb.headReleasable());
    sb.release(7);
    EXPECT_TRUE(sb.headReleasable());
}

TEST(StoreBuffer, YoungestForForwarding)
{
    StoreBuffer sb(4);
    sb.push({0x100, 1, 0, StoreKind::App, false});
    sb.push({0x100, 2, 1, StoreKind::App, false});
    sb.push({0x200, 3, 1, StoreKind::App, false});
    const SbEntry *e = sb.youngestFor(0x100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->value, 2);
    EXPECT_EQ(sb.youngestFor(0x300), nullptr);
}

// ----------------------------------------------------------------- RBB

TEST(Rbb, RegionLifecycle)
{
    Rbb rbb(8);
    EXPECT_TRUE(rbb.empty());
    uint64_t id0 = rbb.beginRegion(0, 100, 10);
    EXPECT_EQ(rbb.current().id, id0);
    EXPECT_FALSE(rbb.current().ended);
    uint64_t id1 = rbb.beginRegion(1, 150, 10);
    EXPECT_NE(id0, id1);
    // Region 0 ended at 150, verifies at 160.
    RegionInstance ri;
    EXPECT_FALSE(rbb.popVerified(159, ri));
    ASSERT_TRUE(rbb.popVerified(160, ri));
    EXPECT_EQ(ri.id, id0);
    EXPECT_EQ(ri.staticRegion, 0u);
    EXPECT_EQ(ri.endCycle, 150u);
    // The running instance never verifies.
    EXPECT_FALSE(rbb.popVerified(100000, ri));
}

TEST(Rbb, SquashReturnsAll)
{
    Rbb rbb(8);
    rbb.beginRegion(0, 0, 10);
    rbb.beginRegion(1, 5, 10);
    auto squashed = rbb.squash();
    EXPECT_EQ(squashed.size(), 2u);
    EXPECT_TRUE(rbb.empty());
    EXPECT_EQ(squashed.front().staticRegion, 0u);
}

TEST(Rbb, EndCurrentArmsTimer)
{
    Rbb rbb(8);
    rbb.beginRegion(0, 0, 10);
    rbb.endCurrent(20, 10);
    RegionInstance ri;
    EXPECT_FALSE(rbb.popVerified(29, ri));
    EXPECT_TRUE(rbb.popVerified(30, ri));
}

// ----------------------------------------------------------------- CLQ

TEST(Clq, WarDetectionCompactRange)
{
    Clq clq(ClqDesign::Compact, 2);
    clq.insertLoad(0, 0x100);
    clq.insertLoad(0, 0x140);
    // In range [0x100, 0x140]: conservative conflict.
    EXPECT_FALSE(clq.isWarFree(0x120));
    EXPECT_FALSE(clq.isWarFree(0x100));
    EXPECT_TRUE(clq.isWarFree(0x080));
    EXPECT_TRUE(clq.isWarFree(0x148));
}

TEST(Clq, IdealIsExact)
{
    Clq clq(ClqDesign::Ideal, 2);
    clq.insertLoad(0, 0x100);
    clq.insertLoad(0, 0x140);
    // 0x120 was never loaded: the ideal design knows.
    EXPECT_TRUE(clq.isWarFree(0x120));
    EXPECT_FALSE(clq.isWarFree(0x140));
}

TEST(Clq, ChecksAllUnverifiedRegions)
{
    Clq clq(ClqDesign::Compact, 4);
    clq.insertLoad(0, 0x100);
    clq.insertLoad(1, 0x200);
    EXPECT_FALSE(clq.isWarFree(0x100)); // older region's load
    EXPECT_FALSE(clq.isWarFree(0x200));
    clq.onRegionVerified(0);
    EXPECT_TRUE(clq.isWarFree(0x100));
    EXPECT_FALSE(clq.isWarFree(0x200));
}

TEST(Clq, OverflowAutomaton)
{
    Clq clq(ClqDesign::Compact, 2);
    clq.insertLoad(0, 0x100);
    clq.insertLoad(1, 0x200);
    EXPECT_TRUE(clq.enabled());
    // Third region overflows the 2-entry CLQ.
    clq.insertLoad(2, 0x300);
    EXPECT_FALSE(clq.enabled());
    EXPECT_EQ(clq.overflows(), 1u);
    EXPECT_FALSE(clq.isWarFree(0x999)); // disabled: cannot prove
    // Re-enable requires a region start with all priors verified.
    clq.onRegionStart(false);
    EXPECT_FALSE(clq.enabled());
    clq.onRegionStart(true);
    EXPECT_TRUE(clq.enabled());
    EXPECT_EQ(clq.entriesUsed(), 0u);
}

TEST(Clq, ResetReenables)
{
    Clq clq(ClqDesign::Compact, 1);
    clq.insertLoad(0, 0x100);
    clq.insertLoad(1, 0x200); // overflow
    EXPECT_FALSE(clq.enabled());
    clq.reset();
    EXPECT_TRUE(clq.enabled());
    EXPECT_TRUE(clq.isWarFree(0x100));
}

TEST(Clq, OccupancySampled)
{
    Clq clq(ClqDesign::Compact, 4);
    clq.insertLoad(0, 0x100);
    clq.insertLoad(1, 0x200);
    clq.insertLoad(1, 0x208);
    EXPECT_EQ(clq.occupancy().count(), 3u);
    EXPECT_DOUBLE_EQ(clq.occupancy().max(), 2.0);
}

TEST(Clq, OverflowWipesEntriesAndBlocksInsertions)
{
    // Fig. 13 regression: the overflow must wipe the queue
    // immediately (no stale ranges survive) and insertions must
    // stay blocked while disabled — including for regions that had
    // an entry before the overflow.
    Clq clq(ClqDesign::Compact, 2);
    clq.insertLoad(0, 0x100);
    clq.insertLoad(1, 0x200);
    EXPECT_EQ(clq.entriesUsed(), 2u);
    clq.insertLoad(2, 0x300); // overflow
    EXPECT_FALSE(clq.enabled());
    EXPECT_EQ(clq.entriesUsed(), 0u);
    clq.insertLoad(0, 0x108); // existing-region insert: still blocked
    clq.insertLoad(3, 0x400); // new-region insert: still blocked
    EXPECT_EQ(clq.entriesUsed(), 0u);
    EXPECT_EQ(clq.overflows(), 1u) << "blocked inserts are not "
                                      "fresh overflows";
}

TEST(Clq, ReenableStartsFromEmptyAndTracksAgain)
{
    Clq clq(ClqDesign::Compact, 2);
    clq.insertLoad(0, 0x100);
    clq.insertLoad(1, 0x200);
    clq.insertLoad(2, 0x300); // overflow
    clq.onRegionStart(true);  // all priors verified: re-enabled
    EXPECT_TRUE(clq.enabled());
    EXPECT_EQ(clq.entriesUsed(), 0u);
    // Pre-overflow history must be gone: 0x100 is provably WAR-free
    // again, and new loads are tracked from scratch.
    EXPECT_TRUE(clq.isWarFree(0x100));
    clq.insertLoad(3, 0x500);
    EXPECT_FALSE(clq.isWarFree(0x500));
    EXPECT_EQ(clq.entriesUsed(), 1u);
}

TEST(Clq, CompactRangeVsIdealExactListSemantics)
{
    // The same crafted address pattern, both designs: two loads at
    // the ends of a hole. Compact's [min, max] range conservatively
    // swallows the hole; Ideal's exact list does not. Outside the
    // range both agree.
    Clq compact(ClqDesign::Compact, 2);
    Clq ideal(ClqDesign::Ideal, 2);
    for (Clq *clq : {&compact, &ideal}) {
        clq->insertLoad(0, 0x1000);
        clq->insertLoad(0, 0x1040);
    }
    // Loaded addresses: both designs must flag them.
    EXPECT_FALSE(compact.isWarFree(0x1000));
    EXPECT_FALSE(ideal.isWarFree(0x1000));
    EXPECT_FALSE(compact.isWarFree(0x1040));
    EXPECT_FALSE(ideal.isWarFree(0x1040));
    // The hole: only the range check is (conservatively) wrong.
    EXPECT_FALSE(compact.isWarFree(0x1008));
    EXPECT_TRUE(ideal.isWarFree(0x1008));
    EXPECT_FALSE(compact.isWarFree(0x103f));
    EXPECT_TRUE(ideal.isWarFree(0x103f));
    // Outside [min, max]: both prove WAR-freedom.
    EXPECT_TRUE(compact.isWarFree(0x0ff8));
    EXPECT_TRUE(ideal.isWarFree(0x0ff8));
    EXPECT_TRUE(compact.isWarFree(0x1048));
    EXPECT_TRUE(ideal.isWarFree(0x1048));
}

// --------------------------------------------------------- color maps

TEST(ColorMaps, AssignExhaustRecycle)
{
    ColorMaps cm;
    EXPECT_EQ(cm.freeColors(3), layout::kNumColors);
    std::vector<int> got;
    for (int i = 0; i < layout::kNumColors; i++) {
        int c = cm.tryAssign(3);
        ASSERT_GE(c, 0);
        got.push_back(c);
    }
    EXPECT_EQ(cm.tryAssign(3), -1); // pool empty
    // Other registers are unaffected.
    EXPECT_GE(cm.tryAssign(4), 0);

    // Verify a region that used color got[0]: it becomes VC and the
    // *previous* VC (quarantine slot, unpooled) frees nothing.
    cm.applyVerified({{3u, got[0]}});
    EXPECT_EQ(cm.verifiedSlot(3), got[0]);
    // Verify another: got[1] becomes VC, got[0] returns to the pool.
    cm.applyVerified({{3u, got[1]}});
    EXPECT_EQ(cm.verifiedSlot(3), got[1]);
    EXPECT_EQ(cm.tryAssign(3), got[0]);
}

TEST(ColorMaps, Fig17Lifecycle)
{
    // Paper Fig. 17: two regions checkpoint r2 with different
    // colors; the first verifies, VC points at its slot; the second
    // is squashed, its color returns to the pool.
    ColorMaps cm;
    Reg r2 = 2;
    int black = cm.tryAssign(r2);
    int red = cm.tryAssign(r2);
    ASSERT_NE(black, red);
    EXPECT_EQ(cm.verifiedSlot(r2), layout::kQuarantineColor);
    cm.applyVerified({{r2, black}});
    EXPECT_EQ(cm.verifiedSlot(r2), black);
    // R1 squashed before verification: red is reclaimed, VC stays.
    cm.recycleUnverified({{r2, red}});
    EXPECT_EQ(cm.verifiedSlot(r2), black);
    EXPECT_EQ(cm.tryAssign(r2), red);
}

TEST(ColorMaps, QuarantineSlotVerification)
{
    ColorMaps cm;
    cm.applyVerified({{5u, layout::kQuarantineColor}});
    EXPECT_EQ(cm.verifiedSlot(5), layout::kQuarantineColor);
    EXPECT_EQ(cm.freeColors(5), layout::kNumColors);
}

TEST(ColorMaps, MultipleCheckpointsSameRegionLastWins)
{
    ColorMaps cm;
    int c0 = cm.tryAssign(1);
    int c1 = cm.tryAssign(1);
    cm.applyVerified({{1u, c0}, {1u, c1}});
    EXPECT_EQ(cm.verifiedSlot(1), c1);
    // c0 was superseded inside the same region: reclaimed.
    EXPECT_EQ(cm.tryAssign(1), c0);
}

// -------------------------------------------------------------- sensors

TEST(Sensors, PaperCalibrationPoint)
{
    // 300 sensors / 2.5 GHz / 1 mm^2 -> 10-cycle WCDL (paper §6.1).
    EXPECT_EQ(worstCaseDetectionLatency({300, 2.5, 1.0}), 10u);
}

TEST(Sensors, FewerSensorsLongerLatency)
{
    uint32_t w300 = worstCaseDetectionLatency({300, 2.5, 1.0});
    uint32_t w100 = worstCaseDetectionLatency({100, 2.5, 1.0});
    uint32_t w30 = worstCaseDetectionLatency({30, 2.5, 1.0});
    EXPECT_LT(w300, w100);
    EXPECT_LT(w100, w30);
    // Paper: 30 sensors give ~30 cycles.
    EXPECT_NEAR(w30, 30.0, 4.0);
}

TEST(Sensors, HigherClockLongerLatency)
{
    uint32_t w20 = worstCaseDetectionLatency({100, 2.0, 1.0});
    uint32_t w30 = worstCaseDetectionLatency({100, 3.0, 1.0});
    EXPECT_LT(w20, w30);
}

TEST(Sensors, AreaOverheadScale)
{
    EXPECT_NEAR(sensorAreaOverhead({300, 2.5, 1.0}), 0.01, 1e-9);
    EXPECT_NEAR(sensorAreaOverhead({30, 2.5, 1.0}), 0.001, 1e-9);
}

// ------------------------------------------------------------ recovery

TEST(RecoveryEngine, RestoresFromVerifiedColors)
{
    ColorMaps cm;
    int color = cm.tryAssign(5);
    cm.applyVerified({{5u, color}});

    MemoryImage mem;
    mem.write(layout::ckptSlot(5, color), 1234);

    RecoveryProgram prog;
    RecoveryOp ld;
    ld.kind = RecoveryOp::Kind::LoadCkpt;
    ld.t = 0;
    ld.reg = 5;
    prog.push_back(ld);
    RecoveryOp commit;
    commit.kind = RecoveryOp::Kind::CommitReg;
    commit.t = 0;
    commit.reg = 5;
    prog.push_back(commit);

    int64_t regs[kNumPhysRegs] = {0};
    uint64_t cost = executeRecovery(prog, cm, mem, regs);
    EXPECT_EQ(regs[5], 1234);
    EXPECT_GT(cost, 0u);
}

TEST(RecoveryEngine, BranchReplaySkips)
{
    // t0 = 0; if (t0 == 0) skip the bogus Li; commit 7.
    ColorMaps cm;
    MemoryImage mem;
    RecoveryProgram prog;
    RecoveryOp li0;
    li0.kind = RecoveryOp::Kind::Li;
    li0.t = 0;
    li0.imm = 0;
    prog.push_back(li0);
    RecoveryOp li7;
    li7.kind = RecoveryOp::Kind::Li;
    li7.t = 1;
    li7.imm = 7;
    prog.push_back(li7);
    RecoveryOp br;
    br.kind = RecoveryOp::Kind::BrIfZero;
    br.a = 0;
    br.skip = 1;
    prog.push_back(br);
    RecoveryOp bogus;
    bogus.kind = RecoveryOp::Kind::Li;
    bogus.t = 1;
    bogus.imm = 999;
    prog.push_back(bogus);
    RecoveryOp commit;
    commit.kind = RecoveryOp::Kind::CommitReg;
    commit.t = 1;
    commit.reg = 3;
    prog.push_back(commit);

    int64_t regs[kNumPhysRegs] = {0};
    executeRecovery(prog, cm, mem, regs);
    EXPECT_EQ(regs[3], 7);
}

// --------------------------------------------------------- fault plans

TEST(FaultPlan, SortedSpacedAndBounded)
{
    Rng rng(5);
    auto plan = makeFaultPlan(rng, 100000, 20, 8);
    ASSERT_EQ(plan.size(), 8u);
    for (size_t i = 1; i < plan.size(); i++) {
        EXPECT_GT(plan[i].cycle, plan[i - 1].cycle);
        EXPECT_GT(plan[i].cycle - plan[i - 1].cycle, 4ull * 20);
    }
    for (const FaultEvent &ev : plan) {
        EXPECT_GE(ev.detectDelay, 1u);
        EXPECT_LE(ev.detectDelay, 20u);
        EXPECT_LT(ev.bit, 64u);
    }
}

// ------------------------------------------------------------- hw cost

TEST(HwCost, MatchesTable1Anchors)
{
    HwCost sb4 = camStoreBufferCost(4);
    EXPECT_NEAR(sb4.areaUm2, 621.28, 0.5);
    EXPECT_NEAR(sb4.accessEnergyPj, 0.43099, 0.001);
    HwCost sb40 = camStoreBufferCost(40);
    EXPECT_NEAR(sb40.areaUm2, 3132.50, 1.0);
    EXPECT_NEAR(sb40.accessEnergyPj, 2.11525, 0.002);
    HwCost maps = colorMapsCost(32, 4);
    EXPECT_NEAR(maps.areaUm2, 36.651, 0.2);
    HwCost clq = clqCost(2);
    EXPECT_NEAR(clq.areaUm2, 24.434, 0.2);
}

TEST(HwCost, PaperRatios)
{
    HwCost sb4 = camStoreBufferCost(4);
    HwCost sb40 = camStoreBufferCost(40);
    HwCost tp = turnpikeCost(32, 4, 2);
    // Turnpike additions ~9.8% of the 4-entry SB (Table 1).
    EXPECT_NEAR(tp.areaUm2 / sb4.areaUm2, 0.098, 0.005);
    EXPECT_NEAR(tp.accessEnergyPj / sb4.accessEnergyPj, 0.097, 0.005);
    // A 40-entry SB is ~5x the area of the 4-entry one.
    EXPECT_NEAR(sb40.areaUm2 / sb4.areaUm2, 5.04, 0.05);
}

} // namespace
} // namespace turnpike
